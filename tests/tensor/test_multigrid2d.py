"""Tests for 2-D multigrid with zebra line relaxation (Listing 11)."""

import numpy as np
import pytest

from repro.compiler import clear_plan_cache
from repro.lang import ProcessorGrid
from repro.machine import Machine
from repro.tensor.multigrid2d import mg2_reference, mg2_solve
from repro.tensor.poisson import Coeffs2D, manufactured_2d, residual_norm_2d
from repro.session import Session


@pytest.fixture(autouse=True)
def _fresh():
    clear_plan_cache()
    yield
    clear_plan_cache()


def test_reference_residual_reduction_per_cycle():
    n = 32
    _, f = manufactured_2d(n)
    r_prev = residual_norm_2d(np.zeros_like(f), f)
    u = np.zeros_like(f)
    from repro.tensor.multigrid2d import mg2_vcycle_ref

    factors = []
    for _ in range(4):
        mg2_vcycle_ref(u, f, Coeffs2D())
        r = residual_norm_2d(u, f)
        factors.append(r / r_prev)
        r_prev = r
    # zebra + semicoarsening: healthy convergence factor
    assert max(factors) < 0.35


def test_reference_converges_to_manufactured():
    n = 32
    u_exact, f = manufactured_2d(n)
    u = mg2_reference(f, cycles=8)
    assert np.max(np.abs(u - u_exact)) < 1e-8


def test_reference_helmholtz_shifted():
    coeffs = Coeffs2D(a=1.0, b=1.0, c=-50.0)
    n = 16
    u_exact, f = manufactured_2d(n, coeffs)
    u = mg2_reference(f, cycles=8, coeffs=coeffs)
    assert np.max(np.abs(u - u_exact)) < 1e-8


@pytest.mark.parametrize("p", [1, 2, 4])
def test_distributed_matches_reference(p):
    n = 16
    _, f = manufactured_2d(n)
    m = Machine(n_procs=p)
    g = ProcessorGrid((p,))
    u, trace = mg2_solve(m, g, f, cycles=3)
    ref = mg2_reference(f, cycles=3)
    np.testing.assert_allclose(u, ref, rtol=1e-11, atol=1e-13)


def test_distributed_communicates_only_for_p_gt_1():
    n = 16
    _, f = manufactured_2d(n)
    m1 = Machine(n_procs=1)
    _, t1 = mg2_solve(m1, ProcessorGrid((1,)), f, cycles=1)
    assert t1.message_count() == 0
    clear_plan_cache()
    m2 = Machine(n_procs=4)
    _, t2 = mg2_solve(m2, ProcessorGrid((4,)), f, cycles=1)
    assert t2.message_count() > 0


def test_distributed_converges():
    n = 16
    u_exact, f = manufactured_2d(n)
    m = Machine(n_procs=2)
    u, _ = mg2_solve(m, ProcessorGrid((2,)), f, cycles=8)
    assert np.max(np.abs(u - u_exact)) < 1e-8


def test_level_marks_record_hierarchy():
    n = 16
    _, f = manufactured_2d(n)
    m = Machine(n_procs=2)
    _, trace = mg2_solve(m, ProcessorGrid((2,)), f, cycles=1)
    levels = {payload for payload, _ in trace.active_procs_by_payload("mg2/level").items()}
    assert (0, 16) in levels
    assert (1, 8) in levels
    assert (3, 2) in levels


def test_mg2_distributed_x_dimension():
    """MG2 with dist (block, block): line solves use the parallel kernel."""
    from repro.lang import DistArray
    from repro.tensor.multigrid2d import MG2

    n = 16
    _, f = manufactured_2d(n)
    clear_plan_cache()
    m = Machine(n_procs=4)
    g = ProcessorGrid((2, 2))
    u = DistArray(f.shape, g, dist=("block", "block"), name="u")
    F = DistArray(f.shape, g, dist=("block", "block"), name="F")
    F.from_global(f)
    mg = MG2(u, F, g)

    def prog(ctx):
        yield from mg.solve(ctx, 3)

    Session(m, g).run(prog)
    ref = mg2_reference(f, cycles=3)
    np.testing.assert_allclose(u.to_global(), ref, rtol=1e-10, atol=1e-12)
