"""Tests for the ADI iteration (Listings 7-8)."""

import numpy as np
import pytest

from repro.compiler import clear_plan_cache
from repro.lang import ProcessorGrid
from repro.machine import CostModel, Machine
from repro.tensor.adi import adi_reference, adi_solve, default_tau
from repro.tensor.poisson import Coeffs2D, manufactured_2d, residual_norm_2d


@pytest.fixture(autouse=True)
def _fresh():
    clear_plan_cache()
    yield
    clear_plan_cache()


def test_reference_converges_to_manufactured():
    n = 16
    u_exact, f = manufactured_2d(n)
    u = adi_reference(f, iters=60)
    assert np.max(np.abs(u - u_exact)) < 1e-6


def test_reference_residual_monotone_drop():
    n = 16
    _, f = manufactured_2d(n)
    r0 = residual_norm_2d(np.zeros_like(f), f)
    u = adi_reference(f, iters=10)
    r10 = residual_norm_2d(u, f)
    assert r10 < 0.2 * r0


def test_reference_helmholtz_coefficients():
    coeffs = Coeffs2D(a=2.0, b=0.5, c=-10.0)
    n = 16
    u_exact, f = manufactured_2d(n, coeffs)
    u = adi_reference(f, iters=80, coeffs=coeffs)
    assert np.max(np.abs(u - u_exact)) < 1e-5


@pytest.mark.parametrize("shape", [(1, 1), (2, 2), (4, 2)])
@pytest.mark.parametrize("pipelined", [False, True])
def test_distributed_matches_reference(shape, pipelined):
    n = 16
    _, f = manufactured_2d(n)
    m = Machine(n_procs=int(np.prod(shape)))
    g = ProcessorGrid(shape)
    u, _ = adi_solve(m, g, f, iters=4, pipelined=pipelined)
    ref = adi_reference(f, iters=4)
    np.testing.assert_allclose(u, ref, rtol=1e-10, atol=1e-12)


def test_distributed_converges():
    n = 16
    u_exact, f = manufactured_2d(n)
    m = Machine(n_procs=4)
    g = ProcessorGrid((2, 2))
    u, _ = adi_solve(m, g, f, iters=50)
    assert np.max(np.abs(u - u_exact)) < 1e-5


def test_pipelined_adi_is_faster():
    """Listing 8's claim: 'One can get better speed-ups with the pipelined
    version of the tridiagonal solver.'"""
    n = 32
    _, f = manufactured_2d(n)
    cost = CostModel.balanced()
    m1 = Machine(n_procs=16, cost=cost)
    _, t_plain = adi_solve(m1, ProcessorGrid((4, 4)), f, iters=2, pipelined=False)
    clear_plan_cache()
    m2 = Machine(n_procs=16, cost=cost)
    _, t_pipe = adi_solve(m2, ProcessorGrid((4, 4)), f, iters=2, pipelined=True)
    assert t_pipe.makespan() < t_plain.makespan()


def test_tau_default_positive():
    assert default_tau(16) > 0.0
    assert default_tau(64) < default_tau(16)
