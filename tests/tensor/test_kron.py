"""Tests for Kronecker-product utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor.kron import apply_along_axis, kron_matmat, kron_matvec, solve_along_axis
from repro.util.errors import ValidationError


def test_apply_along_axis_matches_matmul():
    rng = np.random.default_rng(0)
    A = rng.standard_normal((3, 4))
    x = rng.standard_normal((4, 5))
    np.testing.assert_allclose(apply_along_axis(A, x, 0), A @ x)
    B = rng.standard_normal((6, 5))
    np.testing.assert_allclose(apply_along_axis(B, x, 1), x @ B.T)


def test_kron_matvec_matches_dense_2d():
    rng = np.random.default_rng(1)
    A = rng.standard_normal((3, 3))
    B = rng.standard_normal((4, 4))
    x = rng.standard_normal((3, 4))
    dense = kron_matmat([A, B]) @ x.reshape(-1)
    np.testing.assert_allclose(kron_matvec([A, B], x).reshape(-1), dense, rtol=1e-12)


def test_kron_matvec_matches_dense_3d():
    rng = np.random.default_rng(2)
    mats = [rng.standard_normal((k, k)) for k in (2, 3, 4)]
    x = rng.standard_normal((2, 3, 4))
    dense = kron_matmat(mats) @ x.reshape(-1)
    np.testing.assert_allclose(kron_matvec(mats, x).reshape(-1), dense, rtol=1e-12)


def test_kron_rectangular():
    rng = np.random.default_rng(3)
    A = rng.standard_normal((5, 3))
    B = rng.standard_normal((2, 4))
    x = rng.standard_normal((3, 4))
    out = kron_matvec([A, B], x)
    assert out.shape == (5, 2)
    dense = kron_matmat([A, B]) @ x.reshape(-1)
    np.testing.assert_allclose(out.reshape(-1), dense, rtol=1e-12)


def test_solve_along_axis_inverts_apply():
    rng = np.random.default_rng(4)
    A = rng.standard_normal((4, 4)) + 4 * np.eye(4)
    x = rng.standard_normal((4, 6))
    y = apply_along_axis(A, x, 0)
    sol = solve_along_axis(lambda F: np.linalg.solve(A, F), y, 0)
    np.testing.assert_allclose(sol, x, rtol=1e-10)


def test_validation():
    A = np.eye(3)
    with pytest.raises(ValidationError):
        apply_along_axis(A, np.ones((4, 4)), 0)
    with pytest.raises(ValidationError):
        apply_along_axis(A, np.ones((3, 3)), 2)
    with pytest.raises(ValidationError):
        kron_matvec([A], np.ones((3, 3)))


@settings(max_examples=25)
@given(
    n1=st.integers(2, 5),
    n2=st.integers(2, 5),
    seed=st.integers(0, 2**31),
)
def test_property_kron_identity_factors(n1, n2, seed):
    """(I (x) B) then (A (x) I) equals (A (x) B)."""
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((n1, n1))
    B = rng.standard_normal((n2, n2))
    x = rng.standard_normal((n1, n2))
    via_modes = apply_along_axis(A, apply_along_axis(B, x, 1), 0)
    np.testing.assert_allclose(kron_matvec([A, B], x), via_modes, rtol=1e-10)
