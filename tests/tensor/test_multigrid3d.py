"""Tests for 3-D multigrid with zebra plane relaxation (Listings 9-10)."""

import numpy as np
import pytest

from repro.compiler import clear_plan_cache
from repro.lang import ProcessorGrid
from repro.machine import Machine
from repro.tensor.multigrid3d import mg3_reference, mg3_solve, mg3_vcycle_ref
from repro.tensor.poisson import Coeffs3D, manufactured_3d, residual_norm_3d


@pytest.fixture(autouse=True)
def _fresh():
    clear_plan_cache()
    yield
    clear_plan_cache()


def test_reference_residual_reduction_per_cycle():
    n = 16
    _, f = manufactured_3d(n)
    u = np.zeros_like(f)
    r_prev = residual_norm_3d(u, f)
    factors = []
    for _ in range(3):
        mg3_vcycle_ref(u, f, Coeffs3D(), plane_cycles=2)
        r = residual_norm_3d(u, f)
        factors.append(r / r_prev)
        r_prev = r
    # V(1,0) with no post-smoothing can bump the max-norm on the first
    # cycle; the asymptotic factor is what multigrid theory bounds.
    assert max(factors[1:]) < 0.35
    assert factors[-1] < 0.35


def test_reference_converges_to_manufactured():
    n = 8
    u_exact, f = manufactured_3d(n)
    u = mg3_reference(f, cycles=8)
    assert np.max(np.abs(u - u_exact)) < 1e-8


@pytest.mark.parametrize("shape,dist", [
    ((1, 1), ("*", "block", "block")),
    ((2, 2), ("*", "block", "block")),
    ((2,), ("*", "*", "block")),
    ((2, 2, 2), ("block", "block", "block")),
])
def test_distributed_matches_reference(shape, dist):
    n = 8
    _, f = manufactured_3d(n)
    m = Machine(n_procs=int(np.prod(shape)))
    g = ProcessorGrid(shape)
    u, trace = mg3_solve(m, g, f, cycles=2, dist=dist)
    ref = mg3_reference(f, cycles=2)
    np.testing.assert_allclose(u, ref, rtol=1e-10, atol=1e-12)


def test_distribution_ablation_same_numerics_different_comm():
    """Section 5: distribution choice changes comm, not results."""
    n = 8
    _, f = manufactured_3d(n)
    clear_plan_cache()
    m1 = Machine(n_procs=4)
    u1, t1 = mg3_solve(m1, ProcessorGrid((2, 2)), f, cycles=1,
                       dist=("*", "block", "block"))
    clear_plan_cache()
    m2 = Machine(n_procs=4)
    u2, t2 = mg3_solve(m2, ProcessorGrid((4,)), f, cycles=1,
                       dist=("*", "*", "block"))
    np.testing.assert_allclose(u1, u2, rtol=1e-10, atol=1e-12)
    assert t1.total_bytes() != t2.total_bytes()


def test_plane_marks_show_zebra_pattern():
    n = 8
    _, f = manufactured_3d(n)
    m = Machine(n_procs=4)
    _, trace = mg3_solve(m, ProcessorGrid((2, 2)), f, cycles=1)
    planes = trace.active_procs_by_payload("mg3/plane")
    level0 = sorted(k for (lvl, k) in planes if lvl == 0)
    assert level0 == [1, 2, 3, 4, 5, 6, 7]  # all interior planes visited


def test_distributed_converges():
    n = 8
    u_exact, f = manufactured_3d(n)
    m = Machine(n_procs=4)
    u, _ = mg3_solve(m, ProcessorGrid((2, 2)), f, cycles=6)
    assert np.max(np.abs(u - u_exact)) < 1e-7


def test_3d_distribution_parallel_line_solves():
    """Section 5: 'Had we used a three dimensional processor array there,
    the tridiagonal solves in mg2 would have been parallel.'"""
    n = 8
    _, f = manufactured_3d(n)
    clear_plan_cache()
    m = Machine(n_procs=8)
    u, trace = mg3_solve(m, ProcessorGrid((2, 2, 2)), f, cycles=1,
                         dist=("block", "block", "block"))
    ref = mg3_reference(f, cycles=1)
    np.testing.assert_allclose(u, ref, rtol=1e-10, atol=1e-12)
    # tridiagonal-solver traffic exists: tree reduction tags appear
    tri_msgs = [msg for msg in trace.messages
                if isinstance(msg.tag, tuple) and msg.tag and msg.tag[0] == "tri"]
    assert len(tri_msgs) > 0
