"""Tests for variable-coefficient ADI (section 4's closing remark)."""

import numpy as np
import pytest

from repro.compiler import clear_plan_cache
from repro.lang import ProcessorGrid
from repro.machine import Machine
from repro.tensor.adi_varcoef import (
    adi_varcoef_reference,
    adi_varcoef_solve,
    default_tau_varcoef,
    _apply_L,
)
from repro.util.errors import ValidationError


@pytest.fixture(autouse=True)
def _fresh():
    clear_plan_cache()
    yield
    clear_plan_cache()


def problem(n, seed=0):
    """Smoothly varying coefficients and a manufactured solution."""
    x = np.linspace(0, 1, n + 1)
    X, Y = np.meshgrid(x, x, indexing="ij")
    a = 1.0 + 0.5 * np.sin(np.pi * X) * np.cos(np.pi * Y)
    b = 1.5 + 0.5 * X * Y
    c = -2.0 * np.ones_like(X)
    u_exact = np.sin(np.pi * X) * np.sin(2 * np.pi * Y)
    u_exact[0] = u_exact[-1] = 0.0
    u_exact[:, 0] = u_exact[:, -1] = 0.0
    f = _apply_L(u_exact, a, b, c, n)
    return u_exact, f, a, b, c


def test_reference_converges():
    n = 16
    u_exact, f, a, b, c = problem(n)
    u = adi_varcoef_reference(f, a, b, c, iters=120)
    assert np.max(np.abs(u - u_exact)) < 1e-6


def test_reference_reduces_residual_fast():
    n = 16
    u_exact, f, a, b, c = problem(n)
    r0 = np.max(np.abs(f))
    u = adi_varcoef_reference(f, a, b, c, iters=15)
    r = np.max(np.abs((f - _apply_L(u, a, b, c, n))[1:-1, 1:-1]))
    assert r < 0.2 * r0


def test_constant_coefficients_match_plain_adi():
    from repro.tensor.adi import adi_reference

    n = 16
    rng = np.random.default_rng(5)
    f = 1e-2 * rng.standard_normal((n + 1, n + 1))
    f[0] = f[-1] = 0.0
    f[:, 0] = f[:, -1] = 0.0
    ones = np.ones_like(f)
    tau = 0.01
    u_var = adi_varcoef_reference(f, ones, ones, 0.0 * ones, iters=5, tau=tau)
    u_plain = adi_reference(f, iters=5, tau=tau)
    np.testing.assert_allclose(u_var, u_plain, rtol=1e-11, atol=1e-13)


@pytest.mark.parametrize("shape", [(1, 1), (2, 2)])
@pytest.mark.parametrize("pipelined", [False, True])
def test_distributed_matches_reference(shape, pipelined):
    n = 16
    _, f, a, b, c = problem(n)
    m = Machine(n_procs=int(np.prod(shape)))
    g = ProcessorGrid(shape)
    u, _ = adi_varcoef_solve(m, g, f, a, b, c, iters=3, pipelined=pipelined)
    ref = adi_varcoef_reference(f, a, b, c, iters=3)
    np.testing.assert_allclose(u, ref, rtol=1e-10, atol=1e-12)


def test_distributed_converges():
    n = 16
    u_exact, f, a, b, c = problem(n)
    m = Machine(n_procs=4)
    u, _ = adi_varcoef_solve(m, ProcessorGrid((2, 2)), f, a, b, c, iters=80)
    assert np.max(np.abs(u - u_exact)) < 1e-5


def test_validation():
    n = 8
    _, f, a, b, c = problem(n)
    with pytest.raises(ValidationError):
        default_tau_varcoef(n, -a, b)
    with pytest.raises(ValidationError):
        adi_varcoef_reference(f, a[:4], b, c, iters=1)
    m = Machine(n_procs=2)
    with pytest.raises(ValidationError):
        adi_varcoef_solve(m, ProcessorGrid((2,)), f, a, b, c, iters=1)
