"""Tests for Listing 3's Jacobi on the DSL."""

import numpy as np
import pytest

from repro.compiler import clear_plan_cache
from repro.lang import ProcessorGrid
from repro.machine import CostModel, Machine
from repro.tensor.jacobi import jacobi_kf1, jacobi_reference


@pytest.fixture(autouse=True)
def _fresh():
    clear_plan_cache()
    yield
    clear_plan_cache()


def poisson_f(n, scale=0.001, seed=0):
    rng = np.random.default_rng(seed)
    f = scale * rng.standard_normal((n + 1, n + 1))
    f[0] = f[-1] = 0.0
    f[:, 0] = f[:, -1] = 0.0
    return f


def test_reference_fixed_zero_for_zero_f():
    f = np.zeros((9, 9))
    np.testing.assert_array_equal(jacobi_reference(f, 5), 0.0)


@pytest.mark.parametrize("shape", [(1, 1), (2, 2), (4, 1)])
def test_kf1_matches_reference(shape):
    m = Machine(n_procs=int(np.prod(shape)))
    g = ProcessorGrid(shape)
    f = poisson_f(12)
    X, trace = jacobi_kf1(m, g, f, iters=7)
    np.testing.assert_allclose(X, jacobi_reference(f, 7), rtol=1e-12, atol=1e-14)


def test_distribution_change_is_one_line(capsys=None):
    """The paper's tuning claim: swap dist, same program, same numbers."""
    f = poisson_f(12, seed=1)
    results = {}
    for dist in [("block", "block"), ("cyclic", "cyclic"), ("block", "cyclic")]:
        clear_plan_cache()
        m = Machine(n_procs=4)
        g = ProcessorGrid((2, 2))
        X, _ = jacobi_kf1(m, g, f, iters=4, dist=dist)
        results[dist] = X
    base = results[("block", "block")]
    for dist, X in results.items():
        np.testing.assert_allclose(X, base, rtol=1e-12)


def test_block_jacobi_message_pattern_is_ghost_exchange():
    """Each interior processor exchanges with its 4 neighbors per sweep."""
    m = Machine(n_procs=4, cost=CostModel.balanced())
    g = ProcessorGrid((2, 2))
    f = poisson_f(8, seed=2)
    _, trace = jacobi_kf1(m, g, f, iters=1)
    # 2x2 grid: 8 edge-neighbor strips plus 4 one-element corner
    # transfers (the compiler's needed regions are per-dimension box
    # products, so corners are exchanged, as in many halo compilers)
    assert trace.message_count() == 12
    strips = [msg for msg in trace.messages if msg.nbytes > 8]
    corners = [msg for msg in trace.messages if msg.nbytes == 8]
    assert len(strips) == 8
    assert len(corners) == 4


def test_cyclic_jacobi_communicates_more():
    """The estimator's lesson: cyclic is terrible for stencils."""
    f = poisson_f(12, seed=3)
    clear_plan_cache()
    m1 = Machine(n_procs=4)
    _, t_block = jacobi_kf1(m1, ProcessorGrid((2, 2)), f, 1, dist=("block", "block"))
    clear_plan_cache()
    m2 = Machine(n_procs=4)
    _, t_cyc = jacobi_kf1(m2, ProcessorGrid((2, 2)), f, 1, dist=("cyclic", "cyclic"))
    assert t_cyc.total_bytes() > 4 * t_block.total_bytes()
