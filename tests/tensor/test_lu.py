"""Tests for distributed LU (the cyclic-distribution use case)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import clear_plan_cache
from repro.lang import ProcessorGrid
from repro.machine import Machine
from repro.tensor.lu import lu_distributed, lu_reference, lu_unpack
from repro.util.errors import ValidationError


@pytest.fixture(autouse=True)
def _fresh():
    clear_plan_cache()
    yield
    clear_plan_cache()


def dominant_matrix(n, seed=0):
    rng = np.random.default_rng(seed)
    A = rng.uniform(-1, 1, (n, n))
    A += np.diag(np.abs(A).sum(axis=1) + 1.0)
    return A


def test_reference_factors():
    A = dominant_matrix(12)
    LU = lu_reference(A)
    L, U = lu_unpack(LU)
    np.testing.assert_allclose(L @ U, A, rtol=1e-10)


def test_reference_zero_pivot():
    with pytest.raises(ValidationError):
        lu_reference(np.zeros((3, 3)))


@pytest.mark.parametrize("p", [1, 2, 3])
@pytest.mark.parametrize("dist", ["block", "cyclic"])
def test_distributed_matches_reference(p, dist):
    A = dominant_matrix(12, seed=p)
    m = Machine(n_procs=p)
    g = ProcessorGrid((p,))
    LU, trace = lu_distributed(m, g, A, dist=dist)
    np.testing.assert_allclose(LU, lu_reference(A), rtol=1e-10, atol=1e-12)


def test_cyclic_balances_load():
    """The paper's point: cyclic keeps processors busy through elimination."""
    A = dominant_matrix(24, seed=9)
    clear_plan_cache()
    m1 = Machine(n_procs=4)
    _, t_blk = lu_distributed(m1, ProcessorGrid((4,)), A, dist="block")
    clear_plan_cache()
    m2 = Machine(n_procs=4)
    _, t_cyc = lu_distributed(m2, ProcessorGrid((4,)), A, dist="cyclic")
    busy_blk = [t_blk.busy_time(r) for r in range(4)]
    busy_cyc = [t_cyc.busy_time(r) for r in range(4)]
    imb_blk = max(busy_blk) / (sum(busy_blk) / 4)
    imb_cyc = max(busy_cyc) / (sum(busy_cyc) / 4)
    assert imb_cyc < imb_blk


def test_validation():
    m = Machine(n_procs=4)
    with pytest.raises(ValidationError):
        lu_distributed(m, ProcessorGrid((2, 2)), dominant_matrix(8), dist="cyclic")
    with pytest.raises(ValidationError):
        lu_distributed(m, ProcessorGrid((2,)), np.ones((3, 4)))


@settings(max_examples=10, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=14),
    p=st.integers(min_value=1, max_value=3),
    seed=st.integers(0, 2**31),
)
def test_property_lu_solves_systems(n, p, seed):
    clear_plan_cache()
    A = dominant_matrix(n, seed=seed)
    rng = np.random.default_rng(seed + 1)
    x_true = rng.standard_normal(n)
    b = A @ x_true
    m = Machine(n_procs=p)
    LU, _ = lu_distributed(m, ProcessorGrid((p,)), A, dist="cyclic")
    L, U = lu_unpack(LU)
    y = np.linalg.solve(L, b)
    x = np.linalg.solve(U, y)
    np.testing.assert_allclose(x, x_true, rtol=1e-8)
