"""Property tests: elastic operations preserve bit-identity everywhere.

Two families, mirroring ``tests/compiler/test_stepplan_property.py``:

* checkpoint -> restore -> run is bit-identical to the uninterrupted
  run -- results, full trace (messages with timings, marks, computes),
  plan-accounting delta, and run counter -- swept over distributions
  (block / cyclic / blockcyclic) x overlap on/off x stencil shapes;
* a shrink + re-grow morph pair inserted at *any* point of a sweep
  sequence leaves results bit-identical to the unmorphed run, and the
  post-regrow run's trace matches an uninterrupted session's run on the
  final grid -- swept over distributions x source/destination grid
  sizes x morph points.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro import Machine, ProcessorGrid, Session
from repro.lang import Assign, BlockCyclic, DistArray, Doall, Owner, loopvars


def _dist_of(kind: str):
    if kind.startswith("blockcyclic"):
        return BlockCyclic(int(kind.rsplit("-", 1)[1]))
    return kind


def trace_sig(trace):
    return (
        [(m.src, m.dst, m.tag, m.nbytes, m.t_send, m.t_arrive, m.t_recv)
         for m in trace.messages],
        [(m.proc, m.label, m.payload) for m in trace.marks],
        [(c.proc, c.start, c.end, c.label) for c in trace.computes],
    )


def build_program(p, n, kind, off_l, off_r, seed):
    grid = ProcessorGrid((p,))
    X = DistArray((n,), grid, dist=(_dist_of(kind),), name="X")
    Y = DistArray((n,), grid, dist=(_dist_of(kind),), name="Y")
    rng = np.random.default_rng(seed)
    (i,) = loopvars("i")
    lo, hi = off_l, n - 1 - off_r
    loop = Doall(
        vars=(i,), ranges=[(lo, hi)], on=Owner(Y, (i,)),
        body=[Assign(Y[i], 0.5 * (X[i - off_l] + X[i + off_r]))],
        grid=grid,
    )
    loop2 = Doall(
        vars=(i,), ranges=[(lo, hi)], on=Owner(X, (i,)),
        body=[Assign(X[i], Y[i] + 1.0)],
        grid=grid,
    )
    sess = Session(Machine(n_procs=max(4, p)))
    prog = repro.compile([loop, loop2], session=sess)
    x0 = rng.standard_normal(n)
    return sess, prog, x0


@st.composite
def checkpoint_cases(draw):
    p = draw(st.integers(min_value=1, max_value=4))
    n = draw(st.integers(min_value=max(10, 3 * p), max_value=28))
    kind = draw(st.sampled_from(["block", "cyclic", "blockcyclic-2"]))
    off_l = draw(st.integers(min_value=1, max_value=2))
    off_r = draw(st.integers(min_value=1, max_value=2))
    overlap = draw(st.booleans())
    warm = draw(st.integers(min_value=1, max_value=3))
    tail = draw(st.integers(min_value=1, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return p, n, kind, off_l, off_r, overlap, warm, tail, seed


@given(checkpoint_cases())
@settings(max_examples=20, deadline=None)
def test_checkpoint_restore_run_bit_identical(case):
    p, n, kind, off_l, off_r, overlap, warm, tail, seed = case
    sess, prog, x0 = build_program(p, n, kind, off_l, off_r, seed)
    prog.run(X=x0, iters=warm, overlap=overlap)
    ck = sess.checkpoint()

    s0 = sess.stats()
    t_ref = prog.run(iters=tail, overlap=overlap)
    ref = {name: a.to_global().copy() for name, a in prog.arrays.items()}
    d_ref = {k: sess.stats()["plans"]["doall"][k] - s0["plans"]["doall"][k]
             for k in ("hits", "misses")}
    runs_ref = sess.stats()["runs"]

    sess.restore(repro.Checkpoint.from_bytes(ck.to_bytes()))
    s1 = sess.stats()
    t_again = prog.run(iters=tail, overlap=overlap)

    for name, want in ref.items():
        np.testing.assert_array_equal(prog.arrays[name].to_global(), want)
    assert trace_sig(t_again) == trace_sig(t_ref)
    assert {k: sess.stats()["plans"]["doall"][k] - s1["plans"]["doall"][k]
            for k in ("hits", "misses")} == d_ref
    assert sess.stats()["runs"] == runs_ref


@st.composite
def morph_cases(draw):
    p_hi = draw(st.sampled_from([2, 3, 4]))
    p_lo = draw(st.integers(min_value=1, max_value=p_hi - 1))
    n = draw(st.integers(min_value=max(10, 3 * p_hi), max_value=26))
    kind = draw(st.sampled_from(["block", "cyclic", "blockcyclic-2"]))
    total = draw(st.integers(min_value=2, max_value=5))
    cut = draw(st.integers(min_value=1, max_value=total - 1))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return p_hi, p_lo, n, kind, total, cut, seed


@given(morph_cases())
@settings(max_examples=15, deadline=None)
def test_morph_point_sweep_bit_identical(case):
    p_hi, p_lo, n, kind, total, cut, seed = case
    g_hi, g_lo = ProcessorGrid((p_hi,)), ProcessorGrid((p_lo,))

    # uninterrupted reference on the final grid
    ref_sess, ref_prog, x0 = build_program(p_hi, n, kind, 1, 1, seed)
    ref_prog.run(X=x0, iters=cut)
    ref_prog.run(iters=total - cut)
    t_ref = ref_prog.run()
    want = {name: a.to_global().copy() for name, a in ref_prog.arrays.items()}

    # the elastic twin: shrink after `cut` sweeps, then re-grow
    sess, prog, _ = build_program(p_hi, n, kind, 1, 1, seed)
    prog.run(X=x0, iters=cut)
    sess.morph(g_lo)
    assert prog.grid.key() == g_lo.key()
    prog.run(iters=total - cut)
    sess.morph(g_hi)
    t_final = prog.run()

    for name, a in prog.arrays.items():
        np.testing.assert_array_equal(a.to_global(), want[name])
    assert trace_sig(t_final) == trace_sig(t_ref)


@given(checkpoint_cases())
@settings(max_examples=10, deadline=None)
def test_checkpoint_survives_morph_round_trip(case):
    """checkpoint -> morph away and back -> restore == never left."""
    p, n, kind, off_l, off_r, overlap, warm, tail, seed = case
    sess, prog, x0 = build_program(p, n, kind, off_l, off_r, seed)
    prog.run(X=x0, iters=warm, overlap=overlap)
    ck = sess.checkpoint()
    t_ref = prog.run(iters=tail, overlap=overlap)
    ref = prog.arrays["X"].to_global().copy()

    other = ProcessorGrid((p + 1,)) if p < 4 else ProcessorGrid((2,))
    sess.morph(other)
    prog.run(iters=1)
    sess.restore(ck)
    assert prog.grid.key() == ProcessorGrid((p,)).key()
    t_again = prog.run(iters=tail, overlap=overlap)
    np.testing.assert_array_equal(prog.arrays["X"].to_global(), ref)
    assert trace_sig(t_again) == trace_sig(t_ref)
