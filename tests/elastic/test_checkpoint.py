"""Checkpoint/restore: durable session state, bit-identical resumption.

The contract pinned here: a restore that lands on the live layout is a
pure value write (caches stay warm, epochs untouched), so the run after
a restore is bit-identical -- results, full trace, plan accounting
deltas, run counter -- to the run the checkpoint preceded.  A restore
onto a *different* layout re-lays the arrays out first and re-freezes
the plans, same contract as any recompile.
"""

import numpy as np
import pytest

import repro
from repro import Checkpoint, Machine, ProcessorGrid, Session
from repro.util.errors import ValidationError

SRC = """
processors procs(2)
real x(0:15) dist (block)
real y(0:15) dist (block)
doall (i) = [1, 14] on owner(y(i))
  y(i) = 0.5*(x(i-1) + x(i+1))
end doall
doall (i) = [1, 14] on owner(x(i))
  x(i) = y(i)
end doall
"""


def trace_sig(trace):
    return (
        [(m.src, m.dst, m.tag, m.nbytes, m.t_send, m.t_arrive, m.t_recv)
         for m in trace.messages],
        [(m.proc, m.label, m.payload) for m in trace.marks],
        [(c.proc, c.start, c.end, c.label) for c in trace.computes],
    )


def plan_delta(before, after):
    return {
        k: after["plans"]["doall"][k] - before["plans"]["doall"][k]
        for k in ("hits", "misses")
    }


def fresh(n_procs=4):
    sess = Session(Machine(n_procs=n_procs))
    prog = repro.compile(SRC, session=sess)
    return sess, prog


# ----------------------------------------------------------------------
# Round trip on the live layout
# ----------------------------------------------------------------------


def test_round_trip_bit_identical_run():
    sess, prog = fresh()
    prog.run(x=np.arange(16.0), iters=3)
    ck = sess.checkpoint()
    s0 = sess.stats()
    t_ref = prog.run(iters=2)
    ref = {n: a.to_global().copy() for n, a in prog.arrays.items()}
    d_ref = plan_delta(s0, sess.stats())
    runs_ref = sess.stats()["runs"]

    sess.restore(ck)
    s1 = sess.stats()
    t2 = prog.run(iters=2)
    for n, want in ref.items():
        np.testing.assert_array_equal(prog.arrays[n].to_global(), want)
    assert trace_sig(t2) == trace_sig(t_ref)
    assert plan_delta(s1, sess.stats()) == d_ref
    assert sess.stats()["runs"] == runs_ref


def test_round_trip_through_bytes():
    sess, prog = fresh()
    prog.run(x=np.arange(16.0), iters=2)
    blob = sess.checkpoint().to_bytes()
    assert isinstance(blob, bytes)
    want = prog.arrays["y"].to_global().copy()
    prog.run(iters=5)  # diverge
    ck = Checkpoint.from_bytes(blob)
    sess.restore(ck)
    np.testing.assert_array_equal(prog.arrays["y"].to_global(), want)


def test_restore_into_fresh_process_twin():
    """A checkpoint restores into a *different* session that compiled
    the same program (the fresh-process scenario; pairing is
    structural, names and shapes verified)."""
    sess_a, prog_a = fresh()
    prog_a.run(x=np.arange(16.0), iters=4)
    blob = sess_a.checkpoint().to_bytes()
    t_ref = prog_a.run(iters=2)

    sess_b, prog_b = fresh()
    sess_b.restore(Checkpoint.from_bytes(blob))
    assert sess_b.runs == 1
    t_b = prog_b.run(iters=2)
    np.testing.assert_array_equal(
        prog_b.arrays["x"].to_global(), prog_a.arrays["x"].to_global()
    )
    assert trace_sig(t_b) == trace_sig(t_ref)


def test_history_and_runs_restored():
    sess, prog = fresh()
    prog.run(x=np.arange(16.0))
    prog.run()
    ck = sess.checkpoint()
    prog.run()
    prog.run()
    sess.restore(ck)
    assert sess.runs == 2
    assert len(sess.history) == 2
    assert trace_sig(sess.history[-1]) == trace_sig(ck.history[-1])


def test_describe_counts():
    sess, prog = fresh()
    prog.run(x=np.zeros(16))
    d = sess.checkpoint().describe()
    assert d["programs"] == 1 and d["arrays"] == 2
    assert d["grids"] == [(2,)]
    assert d["nbytes"] == 2 * 16 * 8
    assert d["version"] == 1


# ----------------------------------------------------------------------
# Cross-layout restore
# ----------------------------------------------------------------------


def test_restore_undoes_a_redistribution():
    sess, prog = fresh()
    prog.run(x=np.arange(16.0), iters=2)
    ck = sess.checkpoint()
    t_ref = prog.run()
    ref = prog.arrays["y"].to_global().copy()

    prog.arrays["x"].redistribute(("cyclic",))
    sess.cache.invalidate_array(prog.arrays["x"])
    sess.restore(ck)
    assert prog.arrays["x"].dist.spec_key() == ck.programs[0]["arrays"][0]["spec_key"] \
        or prog.arrays["x"].dist.spec_key() == ck.programs[0]["arrays"][1]["spec_key"]
    t2 = prog.run()
    np.testing.assert_array_equal(prog.arrays["y"].to_global(), ref)
    assert trace_sig(t2) == trace_sig(t_ref)


def test_restore_undoes_a_morph():
    sess, prog = fresh()
    prog.run(x=np.arange(16.0), iters=2)
    ck = sess.checkpoint()
    t_ref = prog.run()
    ref = prog.arrays["y"].to_global().copy()

    sess.morph(ProcessorGrid((4,)))
    prog.run()
    sess.restore(ck)
    assert prog.grid.shape == (2,)
    assert prog.arrays["x"].grid.key() == ProcessorGrid((2,)).key()
    t2 = prog.run()
    np.testing.assert_array_equal(prog.arrays["y"].to_global(), ref)
    assert trace_sig(t2) == trace_sig(t_ref)


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------


def test_restore_rejects_non_checkpoint_and_bad_bytes():
    sess, _ = fresh()
    with pytest.raises(ValidationError, match="needs a Checkpoint"):
        sess.restore({"not": "a checkpoint"})
    import pickle

    with pytest.raises(ValidationError, match="not a Checkpoint"):
        Checkpoint.from_bytes(pickle.dumps([1, 2, 3]))


def test_restore_rejects_version_skew():
    sess, prog = fresh()
    prog.run(x=np.zeros(16))
    ck = sess.checkpoint()
    ck.version = 99
    with pytest.raises(ValidationError, match="version 99"):
        Checkpoint.from_bytes(ck.to_bytes())


def test_restore_rejects_structural_mismatch():
    sess_a, prog_a = fresh()
    prog_a.run(x=np.zeros(16))
    ck = sess_a.checkpoint()

    other = Session(Machine(n_procs=4))
    repro.compile(SRC, session=other)
    repro.compile(SRC, session=other)  # two programs vs one
    with pytest.raises(ValidationError, match="live one"):
        other.restore(ck)

    shifted = Session(Machine(n_procs=4))
    prog_s = repro.compile(
        SRC.replace("real x(0:15)", "real x(0:13)").replace(
            "real y(0:15)", "real y(0:13)").replace("[1, 14]", "[1, 12]"),
        session=shifted,
    )
    prog_s.run(x=np.zeros(14))
    with pytest.raises(ValidationError, match="does not match live array"):
        shifted.restore(ck)


def test_checkpoint_rejects_parsub_programs():
    sess = Session(Machine(n_procs=2), ProcessorGrid((2,)))

    def routine(ctx):
        yield from iter(())

    prog = repro.compile(routine, session=sess)
    assert prog.routine is routine
    with pytest.raises(ValidationError, match="parsub"):
        sess.checkpoint()
    with pytest.raises(ValidationError, match="parsub"):
        sess.morph(ProcessorGrid((1,)))


def test_dead_programs_drop_out_of_scope():
    sess = Session(Machine(n_procs=4))
    prog = repro.compile(SRC, session=sess)
    extinct = repro.compile(SRC, session=sess)
    assert len(sess.live_programs()) == 2
    del extinct
    import gc

    gc.collect()
    assert sess.live_programs() == [prog]
    prog.run(x=np.zeros(16))
    assert sess.checkpoint().describe()["programs"] == 1
