"""Checkpoint integrity and incremental checkpoints (PR 10).

The serialized envelope (magic + CRC-32 + length) must catch what the
wire and the disk do to bytes: any single bit flip and any truncation
raise :class:`ValidationError` with a message saying *what* is wrong --
never an unpickling crash, never a silently wrong restore.  Incremental
checkpoints (per-array dirty deltas against a prior full snapshot --
chained boundary-to-boundary by the checkpointed-run drivers -- with a
sweep cursor) must hydrate via ``merged()`` to exactly the full
snapshot they elide.
"""

import pickle

import numpy as np
import pytest

import repro
from repro import Checkpoint, Machine, Session, faults
from repro.elastic import checkpoint, restore
from repro.util.errors import ValidationError

SRC = """
processors procs(2)
real x(0:15) dist (block)
real y(0:15) dist (block)
doall (i) = [1, 14] on owner(y(i))
  y(i) = 0.5*(x(i-1) + x(i+1))
end doall
doall (i) = [1, 14] on owner(x(i))
  x(i) = y(i) + 1.0
end doall
"""


def fresh(n_procs=4):
    sess = Session(Machine(n_procs=n_procs))
    return sess, repro.compile(SRC, session=sess)


def _blob():
    sess, prog = fresh()
    prog.run(x=np.arange(16.0), iters=2)
    return sess.checkpoint().to_bytes()


# ----------------------------------------------------------------------
# Envelope: checksum and truncation
# ----------------------------------------------------------------------


def test_bit_flip_anywhere_in_payload_is_detected():
    blob = _blob()
    for offset in (None, len(blob) // 2, len(blob) - 1):
        for bit in (0, 3, 7):
            damaged = faults.corrupt_checkpoint_bytes(
                blob, offset=offset, bit=bit
            )
            assert damaged != blob
            with pytest.raises(ValidationError, match="CRC-32 mismatch"):
                Checkpoint.from_bytes(damaged)
    # the pristine blob still restores: corruption never mutates input
    assert isinstance(Checkpoint.from_bytes(blob), Checkpoint)


def test_bit_flip_in_magic_reads_as_foreign_bytes():
    blob = _blob()
    damaged = faults.corrupt_checkpoint_bytes(blob, offset=0)
    with pytest.raises(ValidationError):
        Checkpoint.from_bytes(damaged)


def test_truncation_is_detected_with_clear_message():
    blob = _blob()
    with pytest.raises(ValidationError, match="truncated checkpoint"):
        Checkpoint.from_bytes(blob[: len(blob) // 2])
    with pytest.raises(ValidationError, match="shorter than the envelope"):
        Checkpoint.from_bytes(blob[:10])   # inside the header itself
    with pytest.raises(ValidationError, match="truncated checkpoint"):
        Checkpoint.from_bytes(blob[:-1])


def test_envelope_roundtrip_and_legacy_pickle_still_rejected():
    blob = _blob()
    ck = Checkpoint.from_bytes(blob)
    assert ck.to_bytes() == blob           # stable re-serialization
    # pre-envelope consumers: raw pickles still classify correctly
    with pytest.raises(ValidationError, match="not a Checkpoint"):
        Checkpoint.from_bytes(pickle.dumps([1, 2, 3]))


def test_corrupt_helper_validates_its_arguments():
    with pytest.raises(ValidationError):
        faults.corrupt_checkpoint_bytes(b"")
    with pytest.raises(ValidationError, match="out of range"):
        faults.corrupt_checkpoint_bytes(b"abc", offset=99)
    with pytest.raises(ValidationError, match="bit"):
        faults.corrupt_checkpoint_bytes(b"abc", offset=0, bit=8)


# ----------------------------------------------------------------------
# Incremental checkpoints: sweep cursor, deltas, hydration
# ----------------------------------------------------------------------


def test_incremental_elides_clean_arrays_and_merges_back():
    # f is read, never written: it stays clean across sweeps, so the
    # incremental delta must elide it (data=None) while x/y carry data
    src = """
    processors procs(2)
    real x(0:15) dist (block)
    real y(0:15) dist (block)
    real f(0:15) dist (block)
    doall (i) = [1, 14] on owner(y(i))
      y(i) = 0.5*(x(i-1) + x(i+1)) + f(i)
    end doall
    doall (i) = [1, 14] on owner(x(i))
      x(i) = y(i) + 1.0
    end doall
    """
    sess = Session(Machine(n_procs=4))
    prog = repro.compile(src, session=sess)
    prog.run(x=np.arange(16.0), f=np.full(16, 0.25), iters=1)
    base = checkpoint(sess, sweep=0)
    assert base.kind == "full" and base.sweep == 0

    prog.run(iters=2)
    inc = checkpoint(sess, sweep=2, base=base)
    assert inc.kind == "incremental" and inc.sweep == 2
    assert inc.base_id == base.ckpt_id
    # the delta is smaller than the base: clean arrays carry no data
    assert inc.describe()["nbytes"] < base.describe()["nbytes"]

    full = inc.merged(base)
    assert full.kind == "full" and full.sweep == 2
    want = {n: a.to_global().copy() for n, a in prog.arrays.items()}
    prog.run(iters=3)                      # drift away
    restore(sess, full)
    for n, a in prog.arrays.items():
        np.testing.assert_array_equal(a.to_global(), want[n])


def test_restore_incremental_via_base_kwarg_bit_identical():
    sess, prog = fresh()
    prog.run(x=np.linspace(0, 1, 16), iters=2)
    base = checkpoint(sess, sweep=0)
    prog.run(iters=1)
    inc = checkpoint(sess, sweep=1, base=base)
    t_ref = prog.run(iters=2)
    want = prog.arrays["x"].to_global().copy()

    restore(sess, inc, base=base)
    t_again = prog.run(iters=2)
    np.testing.assert_array_equal(prog.arrays["x"].to_global(), want)
    assert t_again.makespan() == t_ref.makespan()


def test_incremental_round_trips_through_bytes_with_identity():
    sess, prog = fresh()
    prog.run(x=np.arange(16.0))
    base = checkpoint(sess, sweep=0)
    prog.run(iters=1)
    inc = checkpoint(sess, sweep=1, base=base)

    inc2 = Checkpoint.from_bytes(inc.to_bytes())
    base2 = Checkpoint.from_bytes(base.to_bytes())
    assert inc2.base_id == base2.ckpt_id   # identity survives the wire
    merged = inc2.merged(base2)
    assert merged.describe()["sweep"] == 1
    want = prog.arrays["x"].to_global().copy()
    prog.run(iters=2)
    restore(sess, merged)
    np.testing.assert_array_equal(prog.arrays["x"].to_global(), want)


def test_incremental_guards_misuse():
    sess, prog = fresh()
    prog.run(x=np.zeros(16))
    base = checkpoint(sess, sweep=0)
    inc = checkpoint(sess, sweep=1, base=base)

    with pytest.raises(ValidationError, match="needs base="):
        restore(sess, inc)                 # incremental without its base
    with pytest.raises(ValidationError, match="full.*base snapshot"):
        checkpoint(sess, sweep=2, base=inc)  # delta against a delta
    with pytest.raises(ValidationError, match="base must be a full"):
        inc.merged(inc)
    with pytest.raises(ValidationError, match="incremental checkpoints"):
        base.merged(base)                  # merged() on a full snapshot
    other = checkpoint(sess, sweep=0)      # a different full snapshot
    with pytest.raises(ValidationError, match="wrong base"):
        inc.merged(other)


def test_checkpoint_every_runs_restorable_mid_run():
    """Program.run(checkpoint_every=) leaves a resumable cursor: restore
    the latest checkpoint, re-run the tail, get the same answer."""
    sess, prog = fresh()
    prog.run(x=np.arange(16.0), iters=6, checkpoint_every=2)
    want = prog.arrays["x"].to_global().copy()
    latest = prog.latest_checkpoint()
    assert latest.sweep == 6

    # the latest delta chains from the previous boundary, not sweep 0
    mid = prog.ckpt_latest                 # incremental at sweep 6
    assert mid.kind == "incremental"
    assert prog.ckpt_base.sweep == 4
    assert mid.base_id == prog.ckpt_base.ckpt_id
    # rewind to the sweep-4 chain base and replay the final leg
    restore(sess, prog.ckpt_base)
    prog.run(iters=2)
    np.testing.assert_array_equal(prog.arrays["x"].to_global(), want)
    prog.run(iters=3)                      # drift away
    restore(sess, latest)                  # jump straight to sweep 6
    np.testing.assert_array_equal(prog.arrays["x"].to_global(), want)


def test_incremental_deltas_chain_and_re_elide_quiescent_arrays():
    """Chained deltas diff against the *previous* boundary: an array
    that changed once and then went quiescent elides its data again at
    later boundaries (diffing every delta against the sweep-0 base
    would keep paying full copies forever)."""
    sess, prog = fresh()
    prog.run(x=np.arange(16.0), iters=1)
    base = checkpoint(sess, sweep=0)
    prog.run(iters=1)                      # x and y both change
    inc1 = checkpoint(sess, sweep=1, base=base)
    assert all(
        snap["data"] is not None for snap in inc1.programs[0]["arrays"]
    )
    full1 = inc1.merged(base)

    # no sweeps between the boundaries: against full1 everything is
    # clean again, even though it all differs from the sweep-0 base
    inc2 = checkpoint(sess, sweep=2, base=full1)
    assert inc2.base_id == full1.ckpt_id
    assert all(
        snap["data"] is None for snap in inc2.programs[0]["arrays"]
    )
    full2 = inc2.merged(full1)
    want = {n: a.to_global().copy() for n, a in prog.arrays.items()}
    prog.run(iters=2)                      # drift away
    restore(sess, full2)
    for n, a in prog.arrays.items():
        np.testing.assert_array_equal(a.to_global(), want[n])
