"""The morph drill: elastic shrink/re-grow with bit-identical resumption.

The headline scenario of ``repro.elastic``: a Jacobi program loses k
worker ranks mid-sweep, the run fails loudly, state is restored from a
checkpoint, the session *shrinks* onto the surviving ranks, continues,
later *re-grows* onto the full rank set -- and the final results and
the final-grid run trace are bit-identical to a run that was never
interrupted.  Exercised on the simulator and the multiprocessing
backend (whose worker pool must die and respawn across the morphs), on
the serving layer, and through the deprecated ``run_spmd`` shim.
"""

import numpy as np
import pytest

import repro
from repro import Machine, ProcessorGrid, Session
from repro.machine import mpbackend
from repro.serve import Server
from repro.util.errors import (
    MachineError,
    ReproDeprecationWarning,
    ValidationError,
)

N = 18
SRC = f"""
processors procs(4)
real X(0:{N - 1}, 0:{N - 1}) dist (block, *)
real F(0:{N - 1}, 0:{N - 1}) dist (block, *)
doall (i, j) = [1, {N - 2}] * [1, {N - 2}] on owner(X(i, j))
  X(i, j) = 0.25*(X(i+1, j) + X(i-1, j) + X(i, j+1) + X(i, j-1)) - F(i, j)
end doall
"""


def trace_sig(trace):
    return (
        [(m.src, m.dst, m.tag, m.nbytes, m.t_send, m.t_arrive, m.t_recv)
         for m in trace.messages],
        [(m.proc, m.label, m.payload) for m in trace.marks],
        [(c.proc, c.start, c.end, c.label) for c in trace.computes],
    )


def forcing():
    return np.random.default_rng(11).standard_normal((N, N))


def fresh(backend=None):
    sess = Session(Machine(n_procs=4), backend=backend)
    prog = repro.compile(SRC, session=sess)
    return sess, prog


# ----------------------------------------------------------------------
# The drill
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", [None, "multiprocessing"])
def test_morph_drill_bit_identical_to_uninterrupted(backend):
    """Kill k ranks mid-sweep (mp) / checkpoint-cut (simulator), shrink
    to the survivors, re-grow, and match an uninterrupted reference."""
    g4, g2 = ProcessorGrid((4,)), ProcessorGrid((2,))
    sess, prog = fresh(backend=backend)
    try:
        prog.run(X=np.zeros((N, N)), F=forcing(), iters=2)
        ck = sess.checkpoint()

        if backend == "multiprocessing":
            # ranks 2 and 3 die mid-sweep: the run must fail loudly
            # with per-rank sections, never hang.  Workers inherit the
            # fault spec at fork time, so respawn the pool armed.
            mpbackend._FAULT_INJECTION = {
                "rank": (2, 3), "sweep": 1, "action": "exit"
            }
            sess.close_backend()
            try:
                with pytest.raises(MachineError, match="-- rank "):
                    prog.run(iters=4)
            finally:
                mpbackend._FAULT_INJECTION = None

        # recover pre-fault state, shrink onto the survivors, continue
        sess.restore(ck)
        sess.morph(g2)
        assert prog.grid.key() == g2.key()
        prog.run(iters=2)

        # capacity returns: re-grow and finish
        sess.morph(g4)
        assert prog.grid.key() == g4.key()
        t_final = prog.run(iters=2)
        got = prog.arrays["X"].to_global().copy()
    finally:
        sess.close_backend()

    # the uninterrupted reference: same sweep totals, never morphed
    ref_sess, ref_prog = fresh(backend=backend)
    try:
        ref_prog.run(X=np.zeros((N, N)), F=forcing(), iters=2)
        ref_prog.run(iters=2)
        t_ref = ref_prog.run(iters=2)
        want = ref_prog.arrays["X"].to_global()
    finally:
        ref_sess.close_backend()

    np.testing.assert_array_equal(got, want)
    assert trace_sig(t_final) == trace_sig(t_ref)


def test_drill_sweeps_morph_points():
    """Bit-identity holds wherever the morph lands in the sweep
    sequence (total sweep count is all that matters)."""
    g4, g2 = ProcessorGrid((4,)), ProcessorGrid((2,))
    total = 6
    ref_sess, ref_prog = fresh()
    ref_prog.run(X=np.zeros((N, N)), F=forcing(), iters=total)
    want = ref_prog.arrays["X"].to_global()

    for cut in (1, 3, 5):
        sess, prog = fresh()
        prog.run(X=np.zeros((N, N)), F=forcing(), iters=cut)
        sess.morph(g2)
        prog.run(iters=total - cut)
        sess.morph(g4)
        np.testing.assert_array_equal(prog.arrays["X"].to_global(), want)


def test_morph_replays_repartitions_on_second_cycle():
    g4, g2 = ProcessorGrid((4,)), ProcessorGrid((2,))
    sess, prog = fresh()
    prog.run(X=np.zeros((N, N)), F=forcing(), iters=1)
    sess.morph(g2)
    sess.morph(g4)
    before = dict(sess.cache.by_direction["repartition"])
    sess.morph(g2)
    sess.morph(g4)
    after = sess.cache.by_direction["repartition"]
    assert after["misses"] == before["misses"], "morph cycle recompiled"
    assert after["hits"] > before["hits"]


def test_morph_noop_when_already_on_grid():
    g4 = ProcessorGrid((4,))
    sess, prog = fresh()
    prog.run(X=np.zeros((N, N)), F=forcing(), iters=1)
    assert sess.morph(g4) is None


def test_morph_respawns_mp_pool_on_new_rank_set():
    g4, g2 = ProcessorGrid((4,)), ProcessorGrid((2,))
    sess, prog = fresh(backend="multiprocessing")
    try:
        prog.run(X=np.zeros((N, N)), F=forcing(), iters=2)
        pool4 = sess._mp_backend._pool
        assert pool4 is not None and pool4.alive()
        sess.morph(g2)
        assert sess._mp_backend is None, "morph must quiesce worker pools"
        prog.run(iters=2)
        pool2 = sess._mp_backend._pool
        assert pool2 is not None and pool2 is not pool4
        assert set(pool2.ranks) == set(g2.linear)
    finally:
        sess.close_backend()


def test_morph_updates_session_default_grid():
    g2, g4 = ProcessorGrid((2,)), ProcessorGrid((4,))
    sess = Session(Machine(n_procs=4), g2)
    src2 = SRC.replace("procs(4)", "procs(2)")
    prog = repro.compile(src2, session=sess)
    prog.run(X=np.zeros((N, N)), F=forcing())
    sess.morph(g4)
    assert sess.grid.key() == g4.key()


def test_morph_refuses_section_programs():
    from repro.lang import Assign, DistArray, Doall, Owner, loopvars

    g = ProcessorGrid((2,))
    A = DistArray((6, 8), g, dist=("*", "block"), name="A")
    row = A[0, :]
    (j,) = loopvars("j")
    loop = Doall(vars=(j,), ranges=[(1, 6)], on=Owner(row, (j,)),
                 body=[Assign(row[j], row[j - 1] + 1.0)], grid=g)
    sess = Session(Machine(n_procs=4), g)
    prog = repro.compile(loop, session=sess)
    with pytest.raises(ValidationError, match="Section"):
        sess.morph(ProcessorGrid((4,)))
    assert prog.grid.key() == g.key(), "failed morph must not retarget"


# ----------------------------------------------------------------------
# Serving survives a morph
# ----------------------------------------------------------------------


def test_server_pool_survives_morph():
    g4 = ProcessorGrid((4,))
    with Server(machine=Machine(n_procs=4), threads=3) as srv:
        prog = srv.compile(SRC.replace("procs(4)", "procs(2)"))
        futs = [srv.submit(prog, X=np.zeros((N, N)), F=forcing())
                for _ in range(6)]
        for f in futs:
            f.result()
        srv.morph(prog, g4)
        assert prog.grid.key() == g4.key()
        futs = [srv.submit(prog, iters=2) for _ in range(6)]
        for f in futs:
            f.result()
        st = srv.stats()
        assert st["requests"] == 12 and st["failures"] == 0

        # the post-morph state matches a never-served equivalent
        sess = Session(Machine(n_procs=4))
        ref = repro.compile(SRC.replace("procs(4)", "procs(2)"), session=sess)
        for _ in range(6):
            ref.run(X=np.zeros((N, N)), F=forcing())
        sess.morph(g4)
        for _ in range(6):
            ref.run(iters=2)
        np.testing.assert_array_equal(
            srv.fetch(prog, "X")["X"], ref.arrays["X"].to_global()
        )


# ----------------------------------------------------------------------
# The deprecated run_spmd shim drives morphed programs bit-identically
# ----------------------------------------------------------------------


def test_run_spmd_shim_post_morph_bit_identity():
    g4 = ProcessorGrid((4,))
    # reference: Program.run on a morphed session
    sess, prog = fresh()
    prog.run(X=np.zeros((N, N)), F=forcing(), iters=1)
    sess.morph(g4)
    prog.run()
    want = prog.arrays["X"].to_global().copy()

    # twin with identical history, morphed the same way, but its
    # post-morph sweeps go through the deprecated launcher
    sess2, prog2 = fresh()
    prog2.run(X=np.zeros((N, N)), F=forcing(), iters=1)
    sess2.morph(g4)
    loops = list(prog2.loops)

    def legacy(ctx):
        for lp in loops:
            yield from ctx.doall(lp)

    machine = Machine(n_procs=4)
    with pytest.warns(ReproDeprecationWarning):
        repro.run_spmd(machine, g4, legacy)
    np.testing.assert_array_equal(prog2.arrays["X"].to_global(), want)

    # steady state: second shim sweep vs second Program sweep, message
    # for message and mark for mark
    with pytest.warns(ReproDeprecationWarning):
        t_shim = repro.run_spmd(machine, g4, legacy)
    t_ref = prog.run()
    np.testing.assert_array_equal(
        prog2.arrays["X"].to_global(), prog.arrays["X"].to_global()
    )
    assert trace_sig(t_shim) == trace_sig(t_ref)
