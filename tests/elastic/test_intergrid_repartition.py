"""Inter-grid repartition: moving a DistArray between processor grids.

The elastic primitive under everything in this directory: a repartition
whose destination grid differs from the source grid (grow or shrink the
rank set), executed collectively over the union of the two rank sets,
cached under the (from-layout, to-layout) pair key so morphing back is
a replay.
"""

import numpy as np
import pytest

import repro
from repro import DistArray, Machine, ProcessorGrid, Session
from repro.compiler.commsched import repartition_pieces
from repro.util.errors import ValidationError


def make_array(shape, grid, dist, seed=3):
    A = DistArray(shape, grid, dist=dist, name="A")
    A.from_global(np.random.default_rng(seed).standard_normal(shape))
    return A


# ----------------------------------------------------------------------
# Host-side redistribute(grid=...)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("src_p,dst_p", [(2, 4), (4, 2), (1, 4), (3, 2)])
def test_host_redistribute_moves_grids_1d(src_p, dst_p):
    g_src, g_dst = ProcessorGrid((src_p,)), ProcessorGrid((dst_p,))
    A = make_array((17,), g_src, ("block",))
    want = A.to_global().copy()
    epoch = A.comm_epoch
    A.redistribute(("block",), grid=g_dst)
    assert A.grid.key() == g_dst.key()
    assert A.dist.grid_shape == (dst_p,)
    assert A.comm_epoch > epoch, "grid move must retire stale schedules"
    np.testing.assert_array_equal(A.to_global(), want)
    # blocks now live exactly on the destination ranks
    assert set(A._blocks) == set(g_dst.linear)


def test_host_redistribute_2d_grid_change():
    g_src, g_dst = ProcessorGrid((2, 2)), ProcessorGrid((2, 1))
    A = make_array((8, 6), g_src, ("block", "block"))
    want = A.to_global().copy()
    A.redistribute(("block", "cyclic"), grid=g_dst)
    assert A.grid.shape == (2, 1)
    np.testing.assert_array_equal(A.to_global(), want)


def test_host_redistribute_replicated_onto_larger_grid():
    g_src, g_dst = ProcessorGrid((2,)), ProcessorGrid((4,))
    A = make_array((9,), g_src, ("*",))
    want = A.to_global().copy()
    A.redistribute(("block",), grid=g_dst)
    assert A.grid.key() == g_dst.key()
    np.testing.assert_array_equal(A.to_global(), want)


def test_same_key_different_shape_is_a_real_move():
    """(2,2) and (4,) share a rank set (and thus a grid key); moving
    between them must still re-lay blocks out, not no-op."""
    g_sq, g_flat = ProcessorGrid((2, 2)), ProcessorGrid((4,))
    A = make_array((8, 8), g_sq, ("block", "block"))
    want = A.to_global().copy()
    A.redistribute(("block", "*"), grid=g_flat)
    assert A.grid.shape == (4,)
    assert A.dist.grid_shape == (4,)
    np.testing.assert_array_equal(A.to_global(), want)


# ----------------------------------------------------------------------
# repartition_pieces across grids
# ----------------------------------------------------------------------


def test_pieces_cover_destination_exactly():
    from repro.lang.dist import Distribution

    g_src, g_dst = ProcessorGrid((3,)), ProcessorGrid((2,))
    A = make_array((13,), g_src, ("block",))
    new = Distribution(("cyclic",), A.shape, g_dst.shape)
    counts = np.zeros(13, dtype=int)
    for src, dst, src_locs, dst_locs in repartition_pieces(A, new, new_grid=g_dst):
        assert src in g_src.linear and dst in g_dst.linear
        n = np.asarray(src_locs[0]).size
        assert n == np.asarray(dst_locs[0]).size
        # count coverage through the destination's owned positions
        owned = new.owned_lists(g_dst.coords_of(dst))[0]
        counts[np.asarray(owned)[np.asarray(dst_locs[0])]] += 1
    np.testing.assert_array_equal(counts, np.ones(13, dtype=int))


def test_rank_filtered_pieces_union_matches_full_enumeration():
    from repro.lang.dist import Distribution

    g_src, g_dst = ProcessorGrid((2,)), ProcessorGrid((4,))
    A = make_array((11,), g_src, ("cyclic",))
    new = Distribution(("block",), A.shape, g_dst.shape)
    full = set()
    for src, dst, sl, dl in repartition_pieces(A, new, new_grid=g_dst):
        full.add((src, dst))
    union = set()
    for r in sorted(set(g_src.linear) | set(g_dst.linear)):
        for src, dst, sl, dl in repartition_pieces(A, new, rank=r, new_grid=g_dst):
            assert r in (src, dst)
            union.add((src, dst))
    assert union == full


# ----------------------------------------------------------------------
# SPMD ctx.redistribute(grid=...): collective over the union
# ----------------------------------------------------------------------


def test_spmd_intergrid_redistribute_and_replay():
    g2, g4 = ProcessorGrid((2,)), ProcessorGrid((4,))
    sess = Session(Machine(n_procs=4))
    A = make_array((19,), g2, ("block",))
    want = A.to_global().copy()
    union = g2.union(g4)

    def shrinkgrow(ctx, target, specs):
        yield from ctx.redistribute(A, specs, grid=target)

    trace = sess.run(shrinkgrow, g4, ("cyclic",), grid=union)
    assert A.grid.key() == g4.key()
    np.testing.assert_array_equal(A.to_global(), want)
    assert set(trace.schedule_directions()) == {"repartition"}

    sess.run(shrinkgrow, g2, ("block",), grid=union)
    # the second 2->4 flip replays the first's schedules
    before = dict(sess.cache.by_direction["repartition"])
    sess.run(shrinkgrow, g4, ("cyclic",), grid=union)
    after = sess.cache.by_direction["repartition"]
    assert after["misses"] == before["misses"], "grid flip replay recompiled"
    assert after["hits"] > before["hits"]
    np.testing.assert_array_equal(A.to_global(), want)


def test_stale_cross_grid_schedule_refuses_replay():
    """A frozen repartition schedule pinned before a grid move must
    refuse to replay against the moved array."""
    from repro.compiler.commsched import build_repartition_schedule
    from repro.lang.dist import Distribution

    g2, g4 = ProcessorGrid((2,)), ProcessorGrid((4,))
    A = make_array((8,), g2, ("block",))
    new = Distribution(("cyclic",), A.shape, g2.shape)
    sched = build_repartition_schedule(A, new, rank=0)
    A.redistribute(("block",), grid=g4)
    with pytest.raises(ValidationError, match="different grid"):
        sched.check_replayable(A)


def test_intergrid_needs_matching_ndim():
    g2 = ProcessorGrid((2,))
    A = make_array((8, 8), ProcessorGrid((2, 2)), ("block", "block"))
    with pytest.raises(Exception, match="grid ndim|distributed dims"):
        A.redistribute(("block", "block"), grid=g2)
