"""Serving robustness: admission control, deadlines, circuit breaker.

The Server must degrade *predictably* under abuse: excess load is
rejected at submit time with :class:`ServerOverloadError` (with a
retry-after hint) instead of queueing without bound; lapsed deadlines
fail the Future without ever leaking a pooled session; repeated backend
failures trip a circuit breaker that fast-rejects, half-opens after the
cooldown, and closes again on a successful probe; ``close()`` is
idempotent and refuses new work instead of deadlocking.

Blocking/failing request bodies are stubbed with Program-shaped objects
(the Server only touches ``program.run``), which makes every scenario
deterministic -- no sleeps standing in for synchronization.
"""

import threading
import time

import numpy as np
import pytest

from repro import Machine, MachineError, ServerOverloadError
from repro.serve import Server, SessionPool
from repro.util.errors import ReproError, ValidationError

SRC = """
processors procs(2)
real x(0:7) dist (block)
real y(0:7) dist (block)
doall (i) = [1, 6] on owner(y(i))
  y(i) = x(i-1) + x(i+1)
end doall
"""


class GatedProgram:
    """run() blocks until the gate opens -- a deterministic slow request."""

    def __init__(self):
        self.gate = threading.Event()
        self.started = threading.Semaphore(0)

    def run(self, *, session=None, **kw):
        self.started.release()
        assert self.gate.wait(timeout=30), "test gate never opened"
        return "done"


class FailingProgram:
    """run() raises: MachineError (backend-sick) or ValidationError."""

    def __init__(self, exc_type=MachineError):
        self.exc_type = exc_type

    def run(self, *, session=None, **kw):
        raise self.exc_type("injected request failure")


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------


def test_overload_rejects_excess_with_retry_after():
    slow = GatedProgram()
    with Server(machine=Machine(n_procs=2), threads=2, max_queue=1) as srv:
        futs = [srv.submit(slow) for _ in range(3)]   # capacity = 2 + 1
        slow.started.acquire(timeout=5)
        slow.started.acquire(timeout=5)
        with pytest.raises(ServerOverloadError) as ei:
            srv.submit(slow)
        assert ei.value.retry_after > 0.0
        assert "retry after" in str(ei.value)
        assert isinstance(ei.value, ReproError)
        assert srv.health()["status"] == "overloaded"

        # rejection sheds load without harming admitted requests
        slow.gate.set()
        assert [f.result(timeout=30) for f in futs] == ["done"] * 3
        st = srv.stats()
        assert st["requests"] == 3 and st["failures"] == 0
        assert st["rejected"] == 1 and st["inflight"] == 0
        # capacity freed: the server admits again
        assert srv.submit(slow).result(timeout=30) == "done"


def test_overloaded_server_never_deadlocks_and_p99_bounded():
    """Synthetic overload: a burst far beyond capacity. Every accepted
    request completes, every excess one is rejected, nothing hangs."""
    with Server(machine=Machine(n_procs=2), threads=2, max_queue=2) as srv:
        prog = srv.compile(SRC)
        accepted, rejected = [], 0
        for k in range(60):
            try:
                accepted.append(srv.submit(prog, x=np.full(8, float(k))))
            except ServerOverloadError as exc:
                assert exc.retry_after > 0.0
                rejected += 1
                time.sleep(0.002)   # clients back off; server drains
        for f in accepted:
            assert f.result(timeout=30).makespan() > 0.0
        st = srv.stats()
        assert st["requests"] == len(accepted) >= 4
        assert st["rejected"] == rejected
        assert st["inflight"] == 0 and st["failures"] == 0
        # accepted requests' tail latency is bounded by the queue depth,
        # not by the offered load: generous wall-clock sanity bound
        assert 0.0 < st["latency"]["p99"] < 10.0
        assert srv.health()["status"] == "ok"


def test_max_queue_zero_admits_only_executing_threads():
    slow = GatedProgram()
    srv = Server(machine=Machine(n_procs=2), threads=1, max_queue=0)
    try:
        fut = srv.submit(slow)
        slow.started.acquire(timeout=5)
        with pytest.raises(ServerOverloadError):
            srv.submit(slow)
        slow.gate.set()
        assert fut.result(timeout=30) == "done"
    finally:
        slow.gate.set()
        srv.close()


def test_server_validates_robustness_knobs():
    m = Machine(n_procs=2)
    with pytest.raises(ValidationError):
        Server(machine=m, max_queue=-1)
    with pytest.raises(ValidationError):
        Server(machine=m, circuit_threshold=0)
    with pytest.raises(ValidationError):
        Server(machine=m, circuit_cooldown=0.0)


# ----------------------------------------------------------------------
# Deadlines
# ----------------------------------------------------------------------


def test_deadline_expired_in_queue_fails_without_session_leak():
    slow = GatedProgram()
    srv = Server(machine=Machine(n_procs=2), threads=1)
    try:
        blocker = srv.submit(slow)
        slow.started.acquire(timeout=5)
        doomed = srv.submit(slow, deadline=0.05)
        time.sleep(0.1)            # let the deadline lapse in the queue
        slow.gate.set()
        assert blocker.result(timeout=30) == "done"
        with pytest.raises(TimeoutError, match="never checked out"):
            doomed.result(timeout=30)
        st = srv.stats()
        assert st["failures"] == 1 and st["inflight"] == 0
        # no session leaked: the pool is whole and serving
        assert srv.pool.free() == srv.pool.size
        assert srv.submit(slow).result(timeout=30) == "done"
    finally:
        slow.gate.set()
        srv.close()


def test_deadline_bounds_pool_checkout_wait():
    """Pool smaller than threads: the deadline covers session checkout,
    and a timed-out checkout returns the pool intact."""
    slow = GatedProgram()
    pool = SessionPool(1, machine=Machine(n_procs=2))
    srv = Server(pool, threads=2)
    try:
        holder = srv.submit(slow)
        slow.started.acquire(timeout=5)
        starved = srv.submit(slow, deadline=0.05)
        with pytest.raises(TimeoutError):
            starved.result(timeout=30)
        assert pool.free() == 0            # holder still owns it, no leak
        slow.gate.set()
        assert holder.result(timeout=30) == "done"
        assert pool.free() == 1
        assert srv.submit(slow).result(timeout=30) == "done"
    finally:
        slow.gate.set()
        srv.close()


def test_default_deadline_applies_when_submit_names_none():
    slow = GatedProgram()
    srv = Server(machine=Machine(n_procs=2), threads=1,
                 default_deadline=0.05)
    try:
        blocker = srv.submit(slow, deadline=30.0)
        slow.started.acquire(timeout=5)
        doomed = srv.submit(slow)          # inherits default_deadline
        time.sleep(0.1)
        slow.gate.set()
        assert blocker.result(timeout=30) == "done"
        with pytest.raises(TimeoutError):
            doomed.result(timeout=30)
    finally:
        slow.gate.set()
        srv.close()


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------


def test_circuit_trips_fast_rejects_then_half_opens_and_recovers():
    sick = FailingProgram(MachineError)
    with Server(machine=Machine(n_procs=2), threads=1,
                circuit_threshold=2, circuit_cooldown=0.15) as srv:
        for _ in range(2):
            with pytest.raises(MachineError):
                srv.submit(sick).result(timeout=30)
        # tripped: fast-reject with the cooldown as the hint
        with pytest.raises(ServerOverloadError, match="circuit breaker"):
            srv.submit(sick)
        h = srv.health()
        assert h["status"] == "circuit-open" and h["circuit"] == "open"

        time.sleep(0.2)                    # cooldown lapses
        assert srv.health()["circuit"] == "half-open"
        # the probe succeeds -> closed again, traffic flows
        prog = srv.compile(SRC)
        assert srv.run(prog, x=np.arange(8.0)).makespan() > 0.0
        h = srv.health()
        assert h["circuit"] == "closed" and h["status"] == "ok"
        st = srv.stats()
        assert st["failures"] == 2 and st["rejected"] == 1


def test_half_open_admits_one_probe_and_reopens_on_failure():
    sick = FailingProgram(MachineError)
    slow = GatedProgram()
    srv = Server(machine=Machine(n_procs=2), threads=2,
                 circuit_threshold=1, circuit_cooldown=0.1)
    try:
        with pytest.raises(MachineError):
            srv.submit(sick).result(timeout=30)
        time.sleep(0.15)
        probe = srv.submit(slow)           # the half-open probe
        slow.started.acquire(timeout=5)
        # a second request while the probe is in flight is rejected
        with pytest.raises(ServerOverloadError, match="half-open"):
            srv.submit(slow)
        slow.gate.set()
        assert probe.result(timeout=30) == "done"

        # a failing probe slams the circuit shut again
        with pytest.raises(MachineError):
            srv.submit(sick).result(timeout=30)
        time.sleep(0.15)
        with pytest.raises(MachineError):
            srv.submit(sick).result(timeout=30)   # half-open probe fails
        with pytest.raises(ServerOverloadError, match="circuit breaker"):
            srv.submit(slow)
    finally:
        slow.gate.set()
        srv.close()


def test_straggler_success_does_not_close_open_circuit():
    """A long request admitted before the breaker tripped that completes
    during the cooldown says nothing about current backend health: the
    circuit stays open until the cooldown/half-open probe sequence."""
    slow = GatedProgram()
    sick = FailingProgram(MachineError)
    srv = Server(machine=Machine(n_procs=2), threads=2,
                 circuit_threshold=1, circuit_cooldown=30.0)
    try:
        straggler = srv.submit(slow)       # admitted while closed
        slow.started.acquire(timeout=5)
        with pytest.raises(MachineError):
            srv.submit(sick).result(timeout=30)
        assert srv.health()["circuit"] == "open"
        slow.gate.set()
        assert straggler.result(timeout=30) == "done"
        assert srv.health()["circuit"] == "open"
        with pytest.raises(ServerOverloadError, match="circuit breaker"):
            srv.submit(slow)
    finally:
        slow.gate.set()
        srv.close()


def test_caller_errors_do_not_trip_the_circuit():
    bad = FailingProgram(ValidationError)
    with Server(machine=Machine(n_procs=2), threads=1,
                circuit_threshold=2) as srv:
        for _ in range(6):
            with pytest.raises(ValidationError):
                srv.submit(bad).result(timeout=30)
        assert srv.health()["circuit"] == "closed"
        assert srv.stats()["failures"] == 6
        prog = srv.compile(SRC)
        assert srv.run(prog, x=np.zeros(8)).makespan() > 0.0


# ----------------------------------------------------------------------
# close() hardening and health()
# ----------------------------------------------------------------------


def test_close_is_idempotent_and_submit_after_close_raises():
    srv = Server(machine=Machine(n_procs=2), threads=1)
    prog = srv.compile(SRC)
    srv.close()
    t0 = time.perf_counter()
    srv.close()                            # second close: immediate no-op
    srv.close()
    assert time.perf_counter() - t0 < 1.0
    with pytest.raises(ValidationError, match="closed"):
        srv.submit(prog, x=np.zeros(8))
    assert srv.health()["status"] == "closed"


def test_submit_racing_close_raises_validation_error():
    """close() landing between the admission check and the executor
    submit must still surface as the documented ValidationError, not
    the executor's RuntimeError, and must roll the in-flight slot back."""
    srv = Server(machine=Machine(n_procs=2), threads=1)
    prog = srv.compile(SRC)
    real_submit = srv._executor.submit

    def racing_submit(*args, **kwargs):
        srv.close()                        # shuts the executor down
        return real_submit(*args, **kwargs)

    srv._executor.submit = racing_submit
    with pytest.raises(ValidationError, match="closed"):
        srv.submit(prog, x=np.zeros(8))
    assert srv.stats()["inflight"] == 0
    srv.close()                            # still idempotent


def test_close_drains_inflight_then_later_close_returns():
    slow = GatedProgram()
    srv = Server(machine=Machine(n_procs=2), threads=1)
    fut = srv.submit(slow)
    slow.started.acquire(timeout=5)

    closer = threading.Thread(target=srv.close)
    closer.start()
    closer.join(timeout=0.2)
    assert closer.is_alive()               # draining: blocked on the gate
    slow.gate.set()
    closer.join(timeout=30)
    assert not closer.is_alive()
    assert fut.result(timeout=1) == "done"
    srv.close()                            # idempotent after the drain


def test_health_reports_backlog_and_pool():
    slow = GatedProgram()
    srv = Server(machine=Machine(n_procs=2), threads=1, max_queue=2)
    try:
        h0 = srv.health()
        assert h0 == {
            "status": "ok", "closed": False, "circuit": "closed",
            "inflight": 0, "queued": 0, "capacity": 3, "threads": 1,
            "pool_free": 1, "requests": 0, "failures": 0, "rejected": 0,
        }
        futs = [srv.submit(slow) for _ in range(3)]
        slow.started.acquire(timeout=5)
        h = srv.health()
        assert h["inflight"] == 3 and h["queued"] == 2
        assert h["status"] == "overloaded" and h["pool_free"] == 0
        slow.gate.set()
        for f in futs:
            f.result(timeout=30)
        h1 = srv.health()
        assert h1["status"] == "ok" and h1["requests"] == 3
        assert h1["pool_free"] == 1
    finally:
        slow.gate.set()
        srv.close()
