"""The serving layer: SessionPool, Server, and concurrent cache safety.

Covers the pool checkout discipline, the shared-cache
compile-once/serve-everyone contract, the threaded front end, and the
stress properties the tentpole claims: N threads hammering one shared
ScheduleCache corrupt nothing, lose no hits, and produce well-formed
traces; Session.history stays consistent under concurrent appends.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

import repro
from repro import Machine, ProcessorGrid, Session
from repro.lang import DistArray
from repro.serve import Server, SessionPool
from repro.util.errors import ValidationError

SRC = """
processors procs(2)
real x(0:7) dist (block)
real y(0:7) dist (block)
doall (i) = [1, 6] on owner(y(i))
  y(i) = x(i-1) + x(i+1)
end doall
"""


# ----------------------------------------------------------------------
# SessionPool checkout discipline
# ----------------------------------------------------------------------


def test_pool_checkout_blocks_and_times_out():
    pool = SessionPool(2, machine=Machine(n_procs=2))
    a, b = pool.acquire(), pool.acquire()
    assert a is not b
    with pytest.raises(TimeoutError):
        pool.acquire(timeout=0.01)
    pool.release(a)
    c = pool.acquire(timeout=1.0)
    assert c is a
    pool.release(b)
    pool.release(c)


def test_pool_release_rejects_foreign_and_double():
    pool = SessionPool(1, machine=Machine(n_procs=2))
    with pytest.raises(ValidationError):
        pool.release(Session(Machine(n_procs=2)))
    s = pool.acquire()
    pool.release(s)
    with pytest.raises(ValidationError):
        pool.release(s)


def test_pool_context_manager_returns_on_error():
    pool = SessionPool(1, machine=Machine(n_procs=2))
    with pytest.raises(RuntimeError):
        with pool.session():
            raise RuntimeError("boom")
    # the session came back
    with pool.session(timeout=0.1):
        pass


def test_pool_needs_positive_size():
    with pytest.raises(ValidationError):
        SessionPool(0, machine=Machine(n_procs=2))


# ----------------------------------------------------------------------
# Shared caches: compile once, serve everywhere
# ----------------------------------------------------------------------


def test_pool_sessions_share_one_cache_pair():
    pool = SessionPool(3, machine=Machine(n_procs=2))
    assert all(s.cache is pool.cache for s in pool.sessions)
    assert all(s.plans is pool.plans for s in pool.sessions)


def test_compile_once_replays_on_every_pooled_session():
    pool = SessionPool(3, machine=Machine(n_procs=2))
    prog = pool.compile(SRC)
    assert pool.plans.by_kind["doall"]["misses"] == 1
    for s in pool.sessions:
        prog.run(x=np.arange(8.0), session=s)
    # every launch replayed the one frozen analysis: no new compiles
    assert pool.plans.by_kind["doall"]["misses"] == 1
    assert pool.plans.by_kind["doall"]["hits"] >= 3
    assert pool.hit_rates()["doall"] > 0.5
    np.testing.assert_array_equal(
        prog.arrays["y"].to_global()[1:7],
        np.arange(8.0)[0:6] + np.arange(8.0)[2:8],
    )


def test_pooled_runs_default_cheap_marks():
    pool = SessionPool(1, machine=Machine(n_procs=2))
    prog = pool.compile(SRC)
    with pool.session() as s:
        trace = prog.run(x=np.zeros(8), session=s)
    assert trace.level == "cheap"
    assert any(k[0].startswith("commsched/") for k in trace.mark_counts)


# ----------------------------------------------------------------------
# Server front end
# ----------------------------------------------------------------------


def test_server_sync_and_async_requests():
    # max_queue: this test bursts 8 submits at 2 threads; the admission
    # -control default (2x threads) would reject the excess by design
    with Server(machine=Machine(n_procs=2), threads=2, max_queue=8) as srv:
        prog = srv.compile(SRC)
        trace = srv.run(prog, x=np.arange(8.0))
        assert trace.level == "cheap"
        futs = [srv.submit(prog, x=np.full(8, float(k))) for k in range(8)]
        for f in futs:
            assert f.result().makespan() > 0.0
        st = srv.stats()
        assert st["requests"] == 9 and st["failures"] == 0
        assert st["latency"]["p50"] > 0.0
        assert st["latency"]["p99"] >= st["latency"]["p50"]
        assert st["pool_size"] == st["threads"] == 2


def test_server_batched_requests_match_run():
    with Server(machine=Machine(n_procs=2), threads=2) as srv:
        prog = srv.compile(SRC)
        binds = [{"x": np.full(8, float(b))} for b in range(4)]
        res = srv.run_batch(prog, binds)
        ref = srv.compile(SRC)
        for b in binds:
            srv.run(ref, **b)
        np.testing.assert_array_equal(
            res["y"][-1], srv.fetch(ref, "y")["y"]
        )


def test_server_counts_failures_and_closes():
    srv = Server(machine=Machine(n_procs=2), threads=1)
    prog = srv.compile(SRC)
    with pytest.raises(ValidationError):
        srv.run(prog, nope=np.zeros(8))
    assert srv.stats()["failures"] == 1
    srv.close()
    with pytest.raises(ValidationError):
        srv.submit(prog, x=np.zeros(8))


def test_server_rejects_conflicting_pool_args():
    pool = SessionPool(1, machine=Machine(n_procs=2))
    with pytest.raises(ValidationError):
        Server(pool, machine=Machine(n_procs=2))
    with pytest.raises(ValidationError):
        Server(machine=Machine(n_procs=2), threads=0)


def test_concurrent_distinct_programs_share_schedules():
    """K distinct Programs compiled from one source: each compiles its
    own arrays' schedules, every later request replays from the shared
    cache regardless of which thread/session serves it."""
    with Server(machine=Machine(n_procs=2), threads=4,
                max_queue=32) as srv:
        progs = [srv.compile(SRC) for _ in range(4)]
        expect = {}
        futs = []
        for k in range(32):
            x = np.full(8, float(k))
            expect[k] = x[0:6] + x[2:8]
            futs.append((k, progs[k % 4], srv.submit(progs[k % 4], x=x)))
        for _, _, f in futs:
            f.result()
        st = srv.stats()
        assert st["requests"] == 32 and st["failures"] == 0
        # 4 compiles, 32 replays: the shared plan cache never recompiled
        assert srv.pool.plans.by_kind["doall"]["misses"] == 4
        # each program's final state is one of ITS requests' results --
        # never another program's (requests don't run in submission
        # order, but Program.lock keeps every run internally consistent)
        for j, prog in enumerate(progs):
            got = srv.fetch(prog, "y")["y"][1:7]
            mine = [expect[k] for k in range(32) if k % 4 == j]
            assert any(np.array_equal(got, want) for want in mine)


# ----------------------------------------------------------------------
# Edge cases: timeouts, close with queued work, failed-run fetch
# ----------------------------------------------------------------------


def test_acquire_timeout_expiry_releases_nothing():
    """A timed-out acquire must not corrupt the free list: the session
    still comes back to whoever holds it, and later acquires succeed."""
    pool = SessionPool(1, machine=Machine(n_procs=2))
    held = pool.acquire()
    t0 = threading.Event()
    results = {}

    def contender():
        t0.set()
        try:
            pool.acquire(timeout=0.05)
            results["got"] = True
        except TimeoutError as e:
            results["err"] = str(e)

    t = threading.Thread(target=contender)
    t.start()
    t0.wait()
    t.join()
    assert "err" in results and "pool of 1" in results["err"]
    pool.release(held)
    # the expiry left the pool consistent: checkout works again
    with pool.session(timeout=0.5) as s:
        assert s is held


def test_server_close_drains_queued_submits():
    """close() must let already-queued requests finish (drain, not
    drop): every Future resolves, and submits after close are refused."""
    with_results = []
    srv = Server(machine=Machine(n_procs=2), threads=1, max_queue=6)
    prog = srv.compile(SRC)
    futs = [srv.submit(prog, x=np.full(8, float(k))) for k in range(6)]
    srv.close()
    for f in futs:
        with_results.append(f.result(timeout=30))
    assert len(with_results) == 6
    assert all(t.makespan() > 0.0 for t in with_results)
    assert srv.stats()["requests"] == 6
    with pytest.raises(ValidationError, match="closed"):
        srv.submit(prog, x=np.zeros(8))
    with pytest.raises(ValidationError, match="closed"):
        srv.morph(prog, ProcessorGrid((2,)))


def test_fetch_after_failed_run_sees_last_good_state():
    """A failed request must neither wedge the pool nor tear the
    program's arrays: fetch() returns the last successful run's state
    and later requests succeed."""
    with Server(machine=Machine(n_procs=2), threads=2) as srv:
        prog = srv.compile(SRC)
        srv.run(prog, x=np.arange(8.0))
        good = srv.fetch(prog, "y")["y"]

        fut = srv.submit(prog, nope=np.zeros(8))
        with pytest.raises(ValidationError, match="unknown binding"):
            fut.result()
        assert srv.stats()["failures"] == 1
        np.testing.assert_array_equal(srv.fetch(prog, "y")["y"], good)

        # the pool session came back despite the failure
        trace = srv.run(prog, x=np.arange(8.0))
        assert trace.makespan() > 0.0
        assert srv.stats()["requests"] == 3


def test_fetch_unknown_array_raises_cleanly():
    with Server(machine=Machine(n_procs=2), threads=1) as srv:
        prog = srv.compile(SRC)
        srv.run(prog, x=np.zeros(8))
        with pytest.raises(KeyError):
            srv.fetch(prog, "zz")
        # the program lock was released by the failed fetch
        assert prog.lock.acquire(timeout=1)
        prog.lock.release()


# ----------------------------------------------------------------------
# Stress: one shared ScheduleCache under many threads
# ----------------------------------------------------------------------


def test_shared_schedule_cache_thread_stress():
    """N threads x M runs of a warmed cached_gather against ONE shared
    ScheduleCache: exact hit/miss accounting (no lost or spurious
    entries), correct gathered values on every run, well-formed traces.
    """
    p, threads, runs = 2, 4, 10
    g = ProcessorGrid((p,))
    A = DistArray((16,), g, dist=("block",), name="A")
    values = np.arange(16.0)
    A.from_global(values)
    idx = {0: np.array([[15], [9]]), 1: np.array([[0], [3]])}
    pool = SessionPool(threads, machine=Machine(n_procs=p), grid=g)
    failures: list[str] = []

    def prog(ctx):
        got = yield from ctx.cached_gather(g, A, idx[ctx.rank])
        want = values[idx[ctx.rank][:, 0]]
        if not np.array_equal(np.asarray(got).reshape(-1), want):
            failures.append(f"rank {ctx.rank}: {got} != {want}")

    with pool.session() as s:
        s.run(prog)  # warm: one schedule per rank
    assert pool.cache.by_direction["gather"] == {"hits": 0, "misses": p}

    def worker():
        with pool.session() as s:
            return [s.run(prog) for _ in range(runs)]

    with ThreadPoolExecutor(max_workers=threads) as ex:
        traces = [t for f in [ex.submit(worker) for _ in range(threads)]
                  for t in f.result()]

    assert not failures
    # exact accounting: every one of the threads*runs*p probes hit the
    # warmed schedules; nothing was rebuilt or evicted
    assert pool.cache.by_direction["gather"] == {
        "hits": threads * runs * p, "misses": p,
    }
    assert len(pool.cache) == p
    # hit rate under concurrency is the single-thread rate (1.0 warm)
    assert pool.hit_rates()["gather"] == (threads * runs) / (threads * runs + 1)
    # traces are well-formed: the replay round's messages all completed
    for t in traces:
        assert len(t.messages) == p
        assert all(m.t_recv >= m.t_send for m in t.messages)


def test_session_history_safe_under_concurrent_runs():
    """Concurrent launches on ONE Session: the run counter misses
    nothing and the bounded history never tears."""
    threads, runs = 8, 6
    s = Session(Machine(n_procs=1), ProcessorGrid((1,)), max_history=16)

    def prog(ctx):
        yield from iter(())

    def worker():
        for _ in range(runs):
            s.run(prog)

    ts = [threading.Thread(target=worker) for _ in range(threads)]
    for t in ts:
        t.start()
    for t in ts:
        t.join()
    assert s.runs == threads * runs
    assert len(s.history) == 16
    assert all(tr is not None for tr in s.history)


def test_run_ids_and_tags_stay_unique_under_threads():
    """Two concurrent launches sharing one cache must never collide on
    run ids (they scope per-run cache decisions)."""
    from repro.lang.context import next_run_id

    ids: list = []

    def grab():
        ids.extend(next_run_id() for _ in range(500))

    ts = [threading.Thread(target=grab) for _ in range(8)]
    for t in ts:
        t.start()
    for t in ts:
        t.join()
    assert len(set(ids)) == len(ids) == 8 * 500


def test_programs_run_concurrently_results_uncorrupted():
    """Interleaved requests against distinct Programs keep per-program
    results consistent (Program.lock serializes per program only)."""
    with Server(machine=Machine(n_procs=2), threads=4,
                max_queue=32) as srv:
        progs = {k: srv.compile(SRC) for k in range(3)}
        futs = []
        for rep in range(10):
            for k, prog in progs.items():
                x = np.full(8, float(10 * rep + k))
                futs.append(srv.submit(prog, x=x))
        for f in futs:
            f.result()
        for k, prog in progs.items():
            got = srv.fetch(prog, "y")["y"][1:7]
            mine = [np.full(6, 2.0 * (10 * rep + k)) for rep in range(10)]
            assert any(np.array_equal(got, want) for want in mine)
