"""Integration: several parallel algorithms composed in one SPMD program.

The point of the paper's parsub/processor-slice design is modularity:
library routines compose without the caller managing channels.  These
tests run multiple algorithms back-to-back and nested in a single
machine run, checking that implicit tag management keeps every message
matched and the numerics equal the sequential composition.
"""

import numpy as np
import pytest

from repro.compiler import clear_plan_cache
from repro.lang import Assign, DistArray, Doall, Owner, ProcessorGrid, loopvars
from repro.machine import CostModel, Machine
from repro.tensor.jacobi import build_jacobi_loop, jacobi_reference
from repro.tensor.multigrid2d import MG2, mg2_reference
from repro.tensor.poisson import manufactured_2d
from repro.session import Session


@pytest.fixture(autouse=True)
def _fresh():
    clear_plan_cache()
    yield
    clear_plan_cache()


def test_jacobi_then_multigrid_same_machine():
    """Two library solvers in sequence inside one SPMD program."""
    n = 16
    _, f = manufactured_2d(n)
    m = Machine(n_procs=2, cost=CostModel.balanced())
    g = ProcessorGrid((1, 2))

    X = DistArray(f.shape, g, dist=("block", "block"), name="X")
    F1 = DistArray(f.shape, g, dist=("block", "block"), name="F1")
    F1.from_global(f)
    jac = build_jacobi_loop(X, F1, n, g)

    g1 = ProcessorGrid((2,))
    u = DistArray(f.shape, g1, dist=("*", "block"), name="u")
    F2 = DistArray(f.shape, g1, dist=("*", "block"), name="F2")
    F2.from_global(f)
    mg = MG2(u, F2, g1)

    def program(ctx):
        # both stages share one ctx: tags are keyed per grid, so the 2-D
        # Jacobi grid and the 1-D mg2 grid cannot collide
        for _ in range(3):
            yield from ctx.doall(jac)
        yield from mg.solve(ctx, 2)

    Session(m, g).run(program)
    np.testing.assert_allclose(X.to_global(), jacobi_reference(f, 3), rtol=1e-12)
    np.testing.assert_allclose(u.to_global(), mg2_reference(f, 2), rtol=1e-10, atol=1e-13)


def test_concurrent_subgrid_work_does_not_cross_talk():
    """Disjoint grid columns run different loops concurrently."""
    m = Machine(n_procs=4)
    g = ProcessorGrid((2, 2))
    n = 8
    A = DistArray((n, n), g, dist=("block", "block"), name="A")
    A.from_global(np.arange(64.0).reshape(8, 8))
    i, j = loopvars("i j")
    col_loops = {}
    for cj in range(2):
        col = g[:, cj]
        sec0 = A  # full array lives on the full grid; use per-column temp
        T = DistArray((n,), col, dist=("block",), name=f"T{cj}")
        T.from_global(np.full(n, float(cj)))
        (k,) = loopvars("k")
        col_loops[cj] = (
            Doall((k,), [(1, n - 2)], Owner(T, (k,)),
                  [Assign(T[k], 0.5 * (T[k - 1] + T[k + 1]) + float(cj))], col),
            T,
        )

    def program(ctx):
        cj = g.coords_of(ctx.rank)[1]
        loop, _ = col_loops[cj]
        for _ in range(4):
            yield from ctx.doall(loop)

    Session(m, g).run(program)
    for cj in range(2):
        _, T = col_loops[cj]
        ref = np.full(8, float(cj))
        for _ in range(4):
            new = ref.copy()
            new[1:-1] = 0.5 * (ref[:-2] + ref[2:]) + float(cj)
            ref = new
        np.testing.assert_allclose(T.to_global(), ref, rtol=1e-12)


def test_mg3_plane_solves_overlap_in_time():
    """Plane solves on different processor columns overlap (section 5)."""
    from repro.tensor.multigrid3d import mg3_solve
    from repro.tensor.poisson import manufactured_3d

    n = 8
    _, f = manufactured_3d(n)
    m = Machine(n_procs=4, cost=CostModel.hypercube_1989())
    _, trace = mg3_solve(m, ProcessorGrid((2, 2)), f, cycles=1)
    marks = trace.marks_with("mg3/plane")
    # group plane-relaxation mark times by processor column
    col_of = {0: 0, 2: 0, 1: 1, 3: 1}
    spans = {0: [], 1: []}
    for mk in marks:
        spans[col_of[mk.proc]].append(mk.time)
    lo0, hi0 = min(spans[0]), max(spans[0])
    lo1, hi1 = min(spans[1]), max(spans[1])
    # the two columns' plane-relaxation windows overlap
    assert max(lo0, lo1) < min(hi0, hi1)
