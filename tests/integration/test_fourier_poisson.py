"""Integration: FFT kernel + tridiagonal kernel composed into a solver."""

import numpy as np
import pytest

from repro.machine import CostModel, Machine
from repro.tensor.fourier_poisson import (
    apply_operator,
    fourier_poisson_reference,
    fourier_poisson_solve,
)
from repro.util.errors import ValidationError


def problem(nx, ny, seed=0):
    rng = np.random.default_rng(seed)
    f = rng.standard_normal((nx, ny + 1))
    f -= f.mean(axis=0)  # remove the x-constant mode's mean per line
    f[:, 0] = 0.0
    f[:, -1] = 0.0
    return f


def test_reference_satisfies_equation():
    f = problem(16, 12)
    u = fourier_poisson_reference(f)
    r = f - apply_operator(u)
    assert np.max(np.abs(r[:, 1:-1])) < 1e-9


def test_reference_dirichlet_boundaries():
    f = problem(8, 8, seed=1)
    u = fourier_poisson_reference(f)
    assert np.max(np.abs(u[:, 0])) < 1e-12
    assert np.max(np.abs(u[:, -1])) < 1e-12


@pytest.mark.parametrize("p", [1, 2, 4])
def test_distributed_matches_reference(p):
    f = problem(16, 10, seed=p)
    m = Machine(n_procs=p, cost=CostModel.balanced())
    u, trace = fourier_poisson_solve(m, f, p)
    ref = fourier_poisson_reference(f)
    np.testing.assert_allclose(u, ref, rtol=1e-9, atol=1e-10)


def test_distributed_communicates_for_fft():
    f = problem(16, 6, seed=7)
    m = Machine(n_procs=4)
    _, trace = fourier_poisson_solve(m, f, 4)
    assert trace.message_count() > 0


def test_validation():
    m = Machine(n_procs=2)
    with pytest.raises(ValidationError):
        fourier_poisson_solve(m, problem(12, 8), 2)  # nx not power of two
    with pytest.raises(ValidationError):
        fourier_poisson_solve(Machine(n_procs=3), problem(16, 8), 3)
