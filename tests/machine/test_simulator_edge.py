"""Edge-case tests for the event simulator."""

import numpy as np
import pytest

from repro.machine import (
    ANY,
    Barrier,
    Compute,
    CostModel,
    Machine,
    Now,
    Recv,
    Send,
)
from repro.machine.ops import payload_nbytes
from repro.util.errors import DeadlockError, MachineError, ValidationError


def fast():
    return Machine(
        n_procs=3,
        cost=CostModel(alpha=1.0, beta=0.0, gamma_hop=0.0, flop_time=1.0, send_overhead=0.0),
    )


def test_any_src_specific_tag():
    m = fast()
    got = []

    def sender(rank):
        def p():
            yield Compute(seconds=float(rank))
            yield Send(0, rank, tag="wanted" if rank == 2 else "other")

        return p()

    def receiver():
        got.append((yield Recv(src=ANY, tag="wanted")))
        got.append((yield Recv(src=ANY, tag="other")))

    m.run({0: receiver(), 1: sender(1), 2: sender(2)})
    assert got == [2, 1]


def test_specific_src_any_tag():
    m = fast()
    got = []

    def sender():
        yield Send(0, "a", tag="t1")
        yield Send(0, "b", tag="t2")

    def receiver():
        got.append((yield Recv(src=1, tag=ANY)))
        got.append((yield Recv(src=1, tag=ANY)))

    def idle():
        return
        yield  # pragma: no cover

    m.run({0: receiver(), 1: sender(), 2: idle()})
    assert sorted(got) == ["a", "b"]


def test_zero_cost_ops_make_progress():
    cost = CostModel.zero_comm().scaled(flop_time=0.0)
    m = Machine(n_procs=2, cost=cost)
    got = {}

    def p0():
        for k in range(50):
            yield Send(1, k, tag=k)
        yield Compute(flops=100)

    def p1():
        vals = []
        for k in range(50):
            vals.append((yield Recv(src=0, tag=k)))
        got["vals"] = vals

    trace = m.run({0: p0(), 1: p1()})
    assert got["vals"] == list(range(50))
    assert trace.makespan() == 0.0


def test_barrier_then_messages():
    m = fast()
    times = {}

    def prog(rank):
        def p():
            yield Compute(seconds=float(rank))
            yield Barrier(group=(0, 1, 2), tag="sync")
            if rank == 0:
                yield Send(1, "x", tag="post")
            elif rank == 1:
                yield Recv(src=0, tag="post")
            times[rank] = yield Now()

        return p()

    m.run({r: prog(r) for r in range(3)})
    assert times[2] == 2.0
    assert times[1] == 3.0  # barrier release at 2.0 + 1.0 message latency


def test_self_send_receive():
    m = fast()
    got = {}

    def p0():
        yield Send(0, 7, tag="self")
        got["v"] = yield Recv(src=0, tag="self")

    def idle():
        return
        yield  # pragma: no cover

    m.run({0: p0(), 1: idle(), 2: idle()})
    assert got["v"] == 7


def test_three_way_deadlock_names_everyone():
    m = fast()

    def p(rank):
        def gen():
            yield Recv(src=(rank + 1) % 3, tag="ring")

        return gen()

    with pytest.raises(DeadlockError) as exc:
        m.run({r: p(r) for r in range(3)})
    assert set(exc.value.blocked) == {0, 1, 2}


def test_payload_nbytes_estimates():
    assert payload_nbytes(None) == 0
    assert payload_nbytes(1.5) == 8
    assert payload_nbytes(np.zeros(10)) == 80
    assert payload_nbytes([1.0, 2.0]) == 24
    assert payload_nbytes({"a": 1.0}) > 8
    assert payload_nbytes((np.zeros(2), np.ones(3))) == 8 + 16 + 24


def test_explicit_nbytes_override():
    m = fast()

    def p0():
        yield Send(1, None, tag=0, nbytes=1000)

    def p1():
        yield Recv(src=0, tag=0)

    def idle():
        return
        yield  # pragma: no cover

    trace = m.run({0: p0(), 1: p1(), 2: idle()})
    assert trace.messages[0].nbytes == 1000


def test_machine_requires_size_or_topology():
    with pytest.raises(MachineError):
        Machine()
    with pytest.raises(MachineError):
        from repro.machine import Ring

        Machine(n_procs=3, topology=Ring(4))


def test_compute_validation():
    with pytest.raises(ValidationError):
        Compute()
    with pytest.raises(ValidationError):
        Compute(flops=1, seconds=1.0)
    with pytest.raises(ValidationError):
        Compute(flops=-1)
