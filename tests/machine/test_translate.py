"""Tests for rank translation of node programs onto grid slices."""

import numpy as np

from repro.machine import Barrier, Compute, Machine, Recv, Send
from repro.machine.translate import translate_ranks


def test_sends_and_recvs_remapped():
    m = Machine(n_procs=6)
    group = [4, 1, 5]  # internal ranks 0,1,2 -> machine ranks 4,1,5
    got = {}

    def inner(internal_rank):
        if internal_rank == 0:
            yield Send(1, "hello", tag="t")
            got["reply"] = yield Recv(src=2, tag="u")
        elif internal_rank == 1:
            v = yield Recv(src=0, tag="t")
            yield Send(2, v + "!", tag="v")
        else:
            v = yield Recv(src=1, tag="v")
            yield Send(0, v + "?", tag="u")

    def idle():
        return
        yield  # pragma: no cover

    programs = {group[r]: translate_ranks(inner(r), group) for r in range(3)}
    for r in range(6):
        programs.setdefault(r, idle())
    trace = m.run(programs)
    assert got["reply"] == "hello!?"
    pairs = {(msg.src, msg.dst) for msg in trace.messages}
    assert pairs == {(4, 1), (1, 5), (5, 4)}


def test_barrier_group_translated():
    m = Machine(n_procs=4)
    group = [3, 0]

    def inner(internal_rank):
        yield Compute(seconds=float(internal_rank))
        yield Barrier(group=(0, 1), tag="b")

    def idle():
        return
        yield  # pragma: no cover

    programs = {group[r]: translate_ranks(inner(r), group) for r in range(2)}
    programs[1] = idle()
    programs[2] = idle()
    trace = m.run(programs)  # would raise if barrier groups mismatched
    assert trace.makespan() == 1.0


def test_return_value_forwarded():
    m = Machine(n_procs=2)
    out = {}

    def inner():
        yield Compute(seconds=1.0)
        return 42

    def outer():
        value = yield from translate_ranks(inner(), [1])
        out["v"] = value

    def idle():
        return
        yield  # pragma: no cover

    m.run({1: outer(), 0: idle()})
    assert out["v"] == 42


def test_identity_translation_is_transparent():
    m = Machine(n_procs=2)
    got = {}

    def a():
        yield Send(1, np.arange(3.0), tag=0)

    def b():
        got["v"] = yield Recv(src=0, tag=0)

    m.run({0: translate_ranks(a(), [0, 1]), 1: translate_ranks(b(), [0, 1])})
    np.testing.assert_array_equal(got["v"], [0.0, 1.0, 2.0])
