"""Unit tests for the alpha-beta-hop cost model."""

import pytest

from repro.machine import CostModel
from repro.util.errors import ValidationError


def test_message_time_components():
    cm = CostModel(alpha=1.0, beta=0.5, gamma_hop=0.25, flop_time=0.0)
    assert cm.message_time(0, 0) == 1.0
    assert cm.message_time(4, 0) == 1.0 + 2.0
    assert cm.message_time(4, 2) == 1.0 + 2.0 + 0.5


def test_message_time_words_uses_word_size():
    cm = CostModel(alpha=0.0, beta=1.0, gamma_hop=0.0, word_bytes=8)
    assert cm.message_time_words(3, 0) == 24.0


def test_compute_time():
    cm = CostModel(flop_time=2.0)
    assert cm.compute_time(5) == 10.0
    assert cm.compute_time(0) == 0.0


def test_negative_inputs_rejected():
    cm = CostModel()
    with pytest.raises(ValidationError):
        cm.message_time(-1)
    with pytest.raises(ValidationError):
        cm.message_time(1, -1)
    with pytest.raises(ValidationError):
        cm.compute_time(-1)


def test_invalid_parameters_rejected():
    with pytest.raises(ValidationError):
        CostModel(alpha=-1.0)
    with pytest.raises(ValidationError):
        CostModel(word_bytes=0)


def test_scaled_returns_modified_copy():
    cm = CostModel.balanced()
    cm2 = cm.scaled(alpha=0.0)
    assert cm2.alpha == 0.0
    assert cm.alpha != 0.0
    assert cm2.beta == cm.beta


@pytest.mark.parametrize(
    "preset",
    [CostModel.hypercube_1989, CostModel.balanced, CostModel.fast_network, CostModel.zero_comm],
)
def test_presets_construct(preset):
    cm = preset()
    assert cm.message_time(100, 2) >= 0.0


def test_hypercube_preset_is_latency_dominated():
    cm = CostModel.hypercube_1989()
    # one word costs mostly latency
    assert cm.alpha > 10 * cm.beta * cm.word_bytes


def test_zero_comm_preset_free_messages():
    cm = CostModel.zero_comm()
    assert cm.message_time(10**6, 10) == 0.0
    assert cm.compute_time(10) > 0.0
