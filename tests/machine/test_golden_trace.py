"""Golden-trace regression tests for the simulator's communication volume.

Each scenario runs a fixed, fully deterministic workload and pins the
*exact* message counts, byte volumes, and Mark records.  Purpose: the
vectorized schedule executor (and any future rewrite of the
communication layers) must not silently change what goes over the wire.
If one of these numbers moves, the change is either a bug or a
deliberate protocol change that must update the golden values here --
with a commit message explaining the delta.
"""

from collections import Counter

import numpy as np

from repro.compiler import ScheduleCache, clear_plan_cache
from repro.kernels.substructured import (
    ShuffleMapping,
    clear_routing_cache,
    substructured_tri_solve,
)
from repro.lang import Assign, DistArray, Doall, Owner, ProcessorGrid, loopvars
from repro.machine import Machine
from repro.session import Session


def _dominant_system(n, seed):
    rng = np.random.default_rng(seed)
    b = rng.uniform(-1, 1, n)
    c = rng.uniform(-1, 1, n)
    a = np.abs(b) + np.abs(c) + rng.uniform(1.0, 2.0, n)
    f = rng.uniform(-5, 5, n)
    return b, a, c, f


def test_golden_substructured_tri_solve():
    """n=16, p=4, shuffle mapping: 10 messages, 400 bytes, fixed marks."""
    clear_routing_cache()
    b, a, c, f = _dominant_system(16, seed=3)
    x, trace = substructured_tri_solve(b, a, c, f, p=4, mapping_cls=ShuffleMapping)

    # numerics first: the trace only matters for a correct solve
    A = np.diag(a) + np.diag(b[1:], -1) + np.diag(c[:-1], 1)
    np.testing.assert_allclose(A @ x, f, atol=1e-9)

    assert trace.message_count() == 10
    assert trace.total_bytes() == 400
    labels = Counter(m.label for m in trace.marks)
    assert labels == Counter(
        {
            "tri/reduce": 6,
            "tri/subst": 6,
            "tri/apex": 1,
            "commsched/build": 1,  # first rank builds the tree routing
            "commsched/hit": 3,  # the other three ranks reuse it
        }
    )
    # the reduction marks reconstruct the data-flow graph levels exactly
    by_level = trace.active_procs_by_payload("tri/reduce")
    assert by_level == {(0, 0): [0, 1, 2, 3], (0, 1): [2, 3]}


def test_golden_doall_stencil_sweeps():
    """3 sweeps of a 3-point stencil on p=3: 12 messages of 8 bytes."""
    clear_plan_cache()
    n, p, sweeps = 12, 3, 3
    g = ProcessorGrid((p,))
    u = DistArray((n,), g, dist=("block",), name="u")
    v = DistArray((n,), g, dist=("block",), name="v")
    u.from_global(np.arange(float(n)))
    (i,) = loopvars("i")
    loop = Doall(
        vars=(i,),
        ranges=[(1, n - 2)],
        on=Owner(v, (i,)),
        body=[Assign(v[i], 0.5 * (u[i - 1] + u[i + 1]))],
        grid=g,
    )

    def prog(ctx):
        for _ in range(sweeps):
            yield from ctx.doall(loop)

    trace = Session(Machine(n_procs=p), g).run(prog)
    expect = np.arange(float(n))
    expect[0] = expect[-1] = 0.0
    np.testing.assert_array_equal(v.to_global(), expect)

    # 2 interior block boundaries x 2 directions x 3 sweeps, one
    # 8-byte ghost value each: the frozen executor must not coalesce,
    # split, or pad differently than the original per-sweep derivation.
    assert trace.message_count() == 12
    assert trace.total_bytes() == 96
    # one plan compile (first rank to execute), every other execution
    # replays; each execution announces the plan ("doall") and its frozen
    # gather schedules ("gather") -- the read path's unified direction mark
    assert trace.schedule_counts() == {"build": 2, "hit": 2 * (p * sweeps - 1)}
    assert trace.schedule_counts("gather") == {"build": 1, "hit": p * sweeps - 1}
    sched_marks = [(m.label, m.payload) for m in trace.schedule_events()]
    assert sched_marks[0] == ("commsched/build", ("doall", "i"))
    assert sched_marks[1] == ("commsched/build", ("gather", "u"))
    assert all(
        mark in (("commsched/hit", ("doall", "i")), ("commsched/hit", ("gather", "u")))
        for mark in sched_marks[2:]
    )


def test_golden_cached_gather_sweeps():
    """Build + 2 replays on p=2: exactly 8 messages, 64 bytes."""
    g = ProcessorGrid((2,))
    A = DistArray((8,), g, dist=("block",), name="A")
    A.from_global(np.arange(8.0))
    cache = ScheduleCache()
    idx = {0: np.array([[7]]), 1: np.array([[0]])}
    got = {0: [], 1: []}

    def prog(ctx):
        for _ in range(3):
            vals = yield from ctx.cached_gather(g, A, idx[ctx.rank], cache=cache)
            got[ctx.rank].append(float(vals[0]))

    trace = Session(Machine(n_procs=2), g).run(prog)
    assert got == {0: [7.0, 7.0, 7.0], 1: [0.0, 0.0, 0.0]}
    # build sweep: 2 requests + 2 replies; each replay: 2 value messages
    assert trace.message_count() == 8
    assert trace.total_bytes() == 64
    assert trace.schedule_counts() == {"miss": 2, "hit": 4}
    # per-message golden: every wire payload is one 8-byte element/index row
    assert sorted({m.nbytes for m in trace.messages}) == [8]
