"""Tests for trace analysis and rendering."""

from repro.machine import Compute, Machine, Mark, Recv, Send
from repro.machine.trace import ComputeRecord, Trace


def test_utilization_and_busy():
    t = Trace(n_procs=2)
    t.computes.append(ComputeRecord(0, 0.0, 4.0))
    t.computes.append(ComputeRecord(1, 0.0, 2.0))
    t.finish_times = {0: 4.0, 1: 2.0}
    assert t.makespan() == 4.0
    assert t.busy_time(0) == 4.0
    assert t.utilization(1) == 0.5
    assert t.utilization() == (4.0 + 2.0) / (4.0 * 2)


def test_empty_trace_is_safe():
    t = Trace(n_procs=3)
    assert t.makespan() == 0.0
    assert t.utilization() == 0.0
    assert t.message_count() == 0
    assert "P0" in t.gantt()


def test_gantt_render_marks_busy_regions():
    t = Trace(n_procs=1)
    t.computes.append(ComputeRecord(0, 0.0, 1.0))
    t.finish_times = {0: 2.0}
    g = t.gantt(width=20)
    assert "#" in g
    assert "makespan" in g


def test_summary_keys():
    m = Machine(n_procs=2)

    def p0():
        yield Compute(seconds=1.0)
        yield Send(1, None, tag=0)

    def p1():
        yield Recv(src=0, tag=0)

    trace = m.run({0: p0(), 1: p1()})
    s = trace.summary()
    assert set(s) == {"makespan", "utilization", "messages", "bytes", "busy_time"}
    assert s["messages"] == 1.0


def test_marks_prefixed_and_grouping():
    m = Machine(n_procs=2)

    def prog(rank):
        def p():
            yield Mark("phase/a", payload=1)
            yield Mark("phase/b", payload=1)

        return p()

    trace = m.run({0: prog(0), 1: prog(1)})
    assert len(trace.marks_prefixed("phase/")) == 4
    grouped = trace.active_procs_by_payload("phase/a")
    assert grouped == {1: [0, 1]}


def test_comm_time_accumulates():
    m = Machine(n_procs=2)

    def p0():
        yield Send(1, 3.0, tag=0)

    def p1():
        yield Recv(src=0, tag=0)

    trace = m.run({0: p0(), 1: p1()})
    assert trace.comm_time() > 0.0
    assert trace.total_bytes() == 8


def test_overlap_fraction_counts_compute_during_inbound_flight():
    from repro.machine.trace import MessageRecord

    t = Trace(n_procs=2)
    # proc 1 computes [0, 4]; two inbound messages fly [0, 1] and
    # [0.5, 2] (merged: [0, 2]); an outbound one must not count
    t.computes.append(ComputeRecord(1, 0.0, 4.0))
    t.messages.append(MessageRecord(0, 1, "a", 8, 1, 0.0, 1.0))
    t.messages.append(MessageRecord(0, 1, "b", 8, 1, 0.5, 2.0))
    t.messages.append(MessageRecord(1, 0, "c", 8, 1, 0.0, 4.0))
    assert t.overlap_fraction() == 0.5


def test_overlap_fraction_empty_and_no_overlap():
    from repro.machine.trace import MessageRecord

    assert Trace(n_procs=1).overlap_fraction() == 0.0
    t = Trace(n_procs=2)
    t.computes.append(ComputeRecord(1, 2.0, 3.0))  # after the flight
    t.messages.append(MessageRecord(0, 1, "a", 8, 1, 0.0, 1.0))
    assert t.overlap_fraction() == 0.0
