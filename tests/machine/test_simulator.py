"""Unit tests for the event-driven simulator."""

import numpy as np
import pytest

from repro.machine import (
    ANY,
    Barrier,
    Compute,
    CostModel,
    Machine,
    Mark,
    Now,
    Recv,
    Ring,
    Send,
)
from repro.util.errors import DeadlockError, MachineError


def simple_machine(n=2, **cost_kwargs):
    cost = CostModel(
        alpha=1.0,
        beta=0.0,
        gamma_hop=0.0,
        flop_time=1.0,
        send_overhead=0.0,
        **cost_kwargs,
    )
    return Machine(n_procs=n, cost=cost)


def test_single_proc_compute_advances_clock():
    m = simple_machine(1)

    def prog():
        yield Compute(flops=5)
        t = yield Now()
        assert t == 5.0

    trace = m.run({0: prog()})
    assert trace.makespan() == 5.0
    assert trace.busy_time(0) == 5.0


def test_ping_message_value_and_timing():
    m = simple_machine(2)
    got = {}

    def sender():
        yield Send(1, 42, tag="x")

    def receiver():
        got["v"] = yield Recv(src=0, tag="x")

    trace = m.run({0: sender(), 1: receiver()})
    assert got["v"] == 42
    assert trace.message_count() == 1
    # alpha=1, receiver idle at t=0, so arrival/receive at t=1
    assert trace.messages[0].t_arrive == 1.0
    assert trace.messages[0].t_recv == 1.0


def test_numpy_payload_is_snapshotted():
    m = simple_machine(2)
    arr = np.arange(4.0)
    got = {}

    def sender():
        yield Send(1, arr, tag=0)
        arr[:] = -1.0  # mutation after send must not be visible

    def receiver():
        got["v"] = yield Recv(src=0, tag=0)

    m.run({0: sender(), 1: receiver()})
    np.testing.assert_array_equal(got["v"], [0.0, 1.0, 2.0, 3.0])


def test_recv_wildcards():
    m = simple_machine(3)
    got = []

    def sender(rank, dst):
        def prog():
            yield Compute(seconds=float(rank))  # stagger send times
            yield Send(dst, rank, tag=rank)

        return prog()

    def receiver():
        a = yield Recv(src=ANY, tag=ANY)
        b = yield Recv(src=ANY, tag=ANY)
        got.extend([a, b])

    m.run({0: receiver(), 1: sender(1, 0), 2: sender(2, 0)})
    assert got == [1, 2]  # earliest arrival matched first


def test_fifo_per_channel():
    m = simple_machine(2)
    got = []

    def sender():
        yield Send(1, "first", tag="t")
        yield Send(1, "second", tag="t")

    def receiver():
        got.append((yield Recv(src=0, tag="t")))
        got.append((yield Recv(src=0, tag="t")))

    m.run({0: sender(), 1: receiver()})
    assert got == ["first", "second"]


def test_message_cost_uses_hops():
    cost = CostModel(alpha=1.0, beta=0.0, gamma_hop=10.0, flop_time=0.0, send_overhead=0.0)
    m = Machine(topology=Ring(4), cost=cost)

    def sender():
        yield Send(2, None, tag=0)  # 2 hops on a 4-ring

    def receiver():
        yield Recv(src=0, tag=0)

    def idle():
        return
        yield  # pragma: no cover

    trace = m.run({0: sender(), 2: receiver(), 1: idle(), 3: idle()})
    assert trace.messages[0].t_arrive == 1.0 + 20.0
    assert trace.messages[0].hops == 2


def test_deadlock_detected_with_diagnosis():
    m = simple_machine(2)

    def p0():
        yield Recv(src=1, tag="never")

    def p1():
        yield Recv(src=0, tag="never")

    with pytest.raises(DeadlockError) as exc:
        m.run({0: p0(), 1: p1()})
    assert 0 in exc.value.blocked
    assert 1 in exc.value.blocked


def test_mismatched_tag_deadlocks():
    m = simple_machine(2)

    def p0():
        yield Send(1, 1, tag="a")
        yield Recv(src=1, tag="done")

    def p1():
        yield Recv(src=0, tag="b")  # wrong tag: never matches

    with pytest.raises(DeadlockError):
        m.run({0: p0(), 1: p1()})


def test_barrier_aligns_clocks():
    m = simple_machine(3)
    times = {}

    def prog(rank):
        def p():
            yield Compute(seconds=float(rank) * 3)
            yield Barrier(group=(0, 1, 2), tag="b1")
            times[rank] = yield Now()

        return p()

    m.run({r: prog(r) for r in range(3)})
    assert times == {0: 6.0, 1: 6.0, 2: 6.0}


def test_barrier_member_check():
    m = simple_machine(2)

    def p0():
        yield Barrier(group=(1,), tag="b")

    def p1():
        yield Barrier(group=(1,), tag="b")

    with pytest.raises(MachineError):
        m.run({0: p0(), 1: p1()})


def test_marks_recorded_with_time_and_payload():
    m = simple_machine(1)

    def prog():
        yield Compute(seconds=2.0)
        yield Mark("phase", payload=7)

    trace = m.run({0: prog()})
    marks = trace.marks_with("phase")
    assert len(marks) == 1
    assert marks[0].time == 2.0
    assert marks[0].payload == 7


def test_send_to_unprogrammed_rank_raises():
    m = simple_machine(2)

    def p0():
        yield Send(1, 0, tag=0)

    with pytest.raises(MachineError):
        m.run({0: p0()})


def test_unconsumed_message_raises():
    m = simple_machine(2)

    def p0():
        yield Send(1, 0, tag=0)

    def p1():
        yield Compute(seconds=100.0)  # never receives

    with pytest.raises(MachineError):
        m.run({0: p0(), 1: p1()})


def test_factory_interface():
    m = simple_machine(4)

    def make(rank):
        def prog():
            yield Compute(seconds=1.0 + rank)

        return prog()

    trace = m.run(make)
    assert trace.makespan() == 4.0


def test_determinism_same_trace_twice():
    cost = CostModel(alpha=0.5, beta=0.01, gamma_hop=0.1, flop_time=1.0, send_overhead=0.2)

    def build():
        m = Machine(topology=Ring(4), cost=cost)

        def prog(rank):
            def p():
                yield Compute(flops=rank + 1)
                yield Send((rank + 1) % 4, np.full(3, rank, dtype=float), tag="c")
                v = yield Recv(src=(rank - 1) % 4, tag="c")
                yield Compute(flops=float(v[0]) + 1)

            return p()

        return m.run(prog)

    t1, t2 = build(), build()
    assert t1.makespan() == t2.makespan()
    assert [(msg.src, msg.dst) for msg in t1.messages] == [
        (msg.src, msg.dst) for msg in t2.messages
    ]
