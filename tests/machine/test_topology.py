"""Unit tests for interconnect topologies."""

import networkx as nx
import pytest

from repro.machine import Complete, Hypercube, Line, Mesh2D, Ring, Torus2D
from repro.machine.topology import GraphTopology
from repro.util.errors import ValidationError


def test_complete_hops():
    t = Complete(5)
    assert t.hops(0, 0) == 0
    assert t.hops(0, 4) == 1
    assert t.diameter() == 1


def test_line_hops():
    t = Line(6)
    assert t.hops(0, 5) == 5
    assert t.hops(3, 3) == 0
    assert t.neighbors(0) == [1]
    assert t.neighbors(3) == [2, 4]


def test_ring_wraps():
    t = Ring(8)
    assert t.hops(0, 7) == 1
    assert t.hops(0, 4) == 4
    assert t.diameter() == 4


def test_mesh2d_manhattan():
    t = Mesh2D(3, 4)
    assert t.n_procs == 12
    assert t.hops(t.rank_of(0, 0), t.rank_of(2, 3)) == 5
    assert t.coords(7) == (1, 3)


def test_torus2d_wraps_both_dims():
    t = Torus2D(4, 4)
    assert t.hops(t.rank_of(0, 0), t.rank_of(3, 3)) == 2
    assert t.hops(t.rank_of(0, 0), t.rank_of(2, 2)) == 4


def test_hypercube_popcount():
    t = Hypercube(3)
    assert t.n_procs == 8
    assert t.hops(0b000, 0b111) == 3
    assert t.hops(0b101, 0b100) == 1
    assert sorted(t.neighbors(0)) == [1, 2, 4]


def test_hypercube_for_procs_rounds_up():
    assert Hypercube.for_procs(5).n_procs == 8
    assert Hypercube.for_procs(8).n_procs == 8
    assert Hypercube.for_procs(1).n_procs == 1


def test_graph_topology_shortest_paths():
    g = nx.path_graph(4)
    t = GraphTopology(g)
    assert t.hops(0, 3) == 3
    assert t.neighbors(1) == [0, 2]


def test_graph_topology_rejects_disconnected():
    g = nx.Graph()
    g.add_nodes_from(range(4))
    g.add_edge(0, 1)
    g.add_edge(2, 3)
    with pytest.raises(ValidationError):
        GraphTopology(g)


def test_rank_bounds_checked():
    t = Ring(4)
    with pytest.raises(ValidationError):
        t.hops(0, 4)
    with pytest.raises(ValidationError):
        t.hops(-1, 0)


def test_mesh_coords_validated():
    t = Mesh2D(2, 2)
    with pytest.raises(ValidationError):
        t.rank_of(2, 0)
