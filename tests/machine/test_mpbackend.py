"""The multiprocessing backend and the simulator-fidelity fixes it exposed.

Building a second backend that must match the simulator bit-for-bit
turned several latent simulator behaviors into contracts:

* run ids must be unique across *processes* (forked workers inherit the
  counter);
* published trace records are immutable -- consume times are stamped by
  rebuilding, never mutating;
* ``_snapshot``/``freeze_payload`` accept read-only views whose whole
  base chain is frozen, without weakening copy semantics for views of
  live storage;
* :class:`~repro.util.errors.DeadlockError` reports each stuck rank's
  undelivered mailbox keys, so cross-backend protocol drift is
  diagnosable from the exception alone.

Bit-identity of the backend itself (results, traces, accounting) is
pinned in ``tests/compiler/test_stepplan.py``, parametrized over
backends; this file covers the backend's machinery and those contracts.
"""

import multiprocessing
import os

import numpy as np
import pytest

import repro
from repro import (
    DistArray,
    Machine,
    MultiprocessingBackend,
    ProcessorGrid,
    Session,
)
from repro.compiler.commsched import freeze_payload
from repro.lang import Assign, Doall, Owner, loopvars
from repro.lang.context import next_run_id
from repro.machine.ops import Recv, Send, frozen_by_value
from repro.machine.simulator import _snapshot
from repro.machine.trace import Trace
from repro.util.errors import DeadlockError, ValidationError


def jacobi_program(n, w, backend=None, session_kw=()):
    grid = ProcessorGrid((w, 1))
    X = DistArray((n, n), grid, dist=("block", "block"), name="X")
    F = DistArray((n, n), grid, dist=("block", "block"), name="F")
    F.from_global(np.random.default_rng(7).standard_normal((n, n)))
    i, j = loopvars("i j")
    loop = Doall(
        vars=(i, j), ranges=[(1, n - 2), (1, n - 2)], on=Owner(X, (i, j)),
        body=[Assign(
            X[i, j],
            0.25 * (X[i + 1, j] + X[i - 1, j] + X[i, j + 1] + X[i, j - 1])
            - F[i, j],
        )],
        grid=grid,
    )
    sess = Session(Machine(n_procs=w), grid, backend=backend,
                   **dict(session_kw))
    return repro.compile(loop, session=sess), X


# ----------------------------------------------------------------------
# Backend selection and lifecycle
# ----------------------------------------------------------------------


def test_backend_validation():
    with pytest.raises(ValidationError, match="unknown backend"):
        Session(backend="threads")
    sess = Session(Machine(n_procs=2), ProcessorGrid((2,)))
    with pytest.raises(ValidationError, match="unknown backend"):
        sess.run(lambda ctx: iter(()), backend="threads")
    with pytest.raises(ValidationError, match="not both"):
        MultiprocessingBackend(Machine(n_procs=2), n_procs=2)


def test_backend_instance_supplies_machine():
    """An explicit Backend instance stands in for the machine it wraps."""
    with MultiprocessingBackend(n_procs=2) as backend:
        assert backend.n_procs == 2
        grid = ProcessorGrid((2,))
        X = DistArray((10,), grid, dist=("block",), name="X")
        (i,) = loopvars("i")
        loop = Doall(vars=(i,), ranges=[(1, 8)], on=Owner(X, (i,)),
                     body=[Assign(X[i], X[i - 1] + 1.0)], grid=grid)
        sess = Session(grid=grid, backend=backend)
        prog = repro.compile(loop, session=sess)
        trace = prog.run()
        assert trace.message_count() > 0
        assert sess.runs == 1


def test_pool_persists_across_runs_and_close_restores_blocks():
    prog, X = jacobi_program(12, 2, backend="multiprocessing")
    prog.run(iters=2)
    backend = prog.session._mp_backend
    pool = backend._pool
    assert pool is not None and pool.alive()
    prog.run(iters=2)
    assert backend._pool is pool, "steady-state reruns must reuse the pool"
    result = X.to_global().copy()
    backend.close()
    assert backend._pool is None
    # blocks were un-adopted: data survives, and further runs respawn
    np.testing.assert_array_equal(X.to_global(), result)
    prog.run(iters=1)
    assert backend._pool is not None and backend._pool is not pool
    backend.close()


def test_mp_accounting_matches_simulator():
    pa, _ = jacobi_program(12, 2, backend=None)
    pb, _ = jacobi_program(12, 2, backend="multiprocessing")
    for iters in (3, 1, 4):
        pa.run(iters=iters)
        pb.run(iters=iters)
    pb.session._mp_backend.close()
    assert pa.session.stats() == pb.session.stats()
    assert pa.session.hit_rates() == pb.session.hit_rates()


def test_mp_generic_run_delegates_to_inner_machine():
    backend = MultiprocessingBackend(n_procs=2)

    def sender():
        yield Send(1, np.arange(3.0), tag="t")

    def receiver():
        got = yield Recv(src=0, tag="t")
        np.testing.assert_array_equal(got, np.arange(3.0))

    trace = backend.run({0: sender(), 1: receiver()})
    assert trace.message_count() == 1
    backend.close()


# ----------------------------------------------------------------------
# Fault injection: workers dying mid-sweep fail loudly and recover
# ----------------------------------------------------------------------


@pytest.fixture
def inject_fault():
    """Arm the backend's test-only fault hook; always disarmed after.

    Workers inherit the spec at *fork* time, so arm before the first
    run (or close the pool so it respawns armed).
    """
    from repro.machine import mpbackend

    def arm(**spec):
        mpbackend._FAULT_INJECTION = spec

    yield arm
    mpbackend._FAULT_INJECTION = None


def test_worker_exception_reports_per_rank_traceback(inject_fault):
    """A worker raising mid-sweep: MachineError with that rank's full
    traceback, peers broken out of the barrier, nothing hangs."""
    from repro.util.errors import MachineError

    inject_fault(rank=1, sweep=1, action="raise")
    prog, X = jacobi_program(12, 2, backend="multiprocessing")
    with pytest.raises(MachineError) as exc_info:
        prog.run(iters=3)
    msg = str(exc_info.value)
    assert "-- rank 1 --" in msg
    assert "injected fault on rank 1 at sweep 1" in msg
    assert "RuntimeError" in msg, "per-rank sections carry the traceback"


def test_worker_killed_outright_fails_loudly_not_hangs(inject_fault):
    """A worker dying without a goodbye (os._exit, as the OOM killer
    would): the parent must detect the death, break the surviving
    ranks out of the sweep barrier, and raise -- never deadlock."""
    from repro.util.errors import MachineError

    inject_fault(rank=1, sweep=0, action="exit")
    prog, X = jacobi_program(12, 2, backend="multiprocessing")
    with pytest.raises(MachineError) as exc_info:
        prog.run(iters=2)
    msg = str(exc_info.value)
    assert "-- rank 1 --" in msg
    assert "died" in msg


def test_pool_respawns_cleanly_after_worker_failure(inject_fault):
    """After a failure closed the pool, the next run respawns workers
    and produces correct results (matching the simulator)."""
    from repro.machine import mpbackend
    from repro.util.errors import MachineError

    inject_fault(rank=0, sweep=0, action="raise")
    prog, X = jacobi_program(12, 2, backend="multiprocessing")
    with pytest.raises(MachineError):
        prog.run(iters=2)
    backend = prog.session._mp_backend
    failed_pool = backend._pool
    assert failed_pool is None or not failed_pool.alive(), \
        "a failed pool must be torn down"
    mpbackend._FAULT_INJECTION = None

    ref, Xr = jacobi_program(12, 2, backend=None)
    ref.run(iters=2)
    prog.run(iters=2)
    assert backend._pool is not None and backend._pool.alive()
    assert backend._pool is not failed_pool
    np.testing.assert_array_equal(X.to_global(), Xr.to_global())
    backend.close()


def test_fault_hook_inert_when_disarmed():
    """The hook's disarmed state is the hot path: no behavior change."""
    from repro.machine.mpbackend import _maybe_inject_fault

    _maybe_inject_fault(0, 0)  # no spec: returns without effect
    pa, Xa = jacobi_program(12, 2, backend=None)
    pb, Xb = jacobi_program(12, 2, backend="multiprocessing")
    pa.run(iters=2)
    pb.run(iters=2)
    pb.session._mp_backend.close()
    np.testing.assert_array_equal(Xa.to_global(), Xb.to_global())


# ----------------------------------------------------------------------
# Run ids: unique across processes (forked workers inherit the counter)
# ----------------------------------------------------------------------


def test_run_ids_keyed_by_pid():
    rid = next_run_id()
    assert rid[0] == os.getpid()
    assert next_run_id() != rid


def test_run_ids_unique_across_forked_processes():
    """A forked child inherits the parent's counter state; ids must
    still never collide (two backends running concurrently allocate
    from different processes)."""
    parent_ids = [next_run_id() for _ in range(4)]
    ctx = multiprocessing.get_context("fork")
    queue = ctx.Queue()

    def child(q):
        q.put([next_run_id() for _ in range(4)])

    proc = ctx.Process(target=child, args=(queue,))
    proc.start()
    child_ids = queue.get(timeout=30)
    proc.join(timeout=30)
    assert set(parent_ids).isdisjoint(child_ids)
    # and the parent's own stream is unaffected
    assert next_run_id() not in parent_ids + child_ids


# ----------------------------------------------------------------------
# Trace records: stamped by rebuilding, never by mutation
# ----------------------------------------------------------------------


def test_stamp_recv_rebuilds_record_never_mutates():
    """A caller observing the trace mid-run holds the published record;
    stamping the consume time must replace the list entry, leaving the
    observed object (and its hash) untouched."""
    trace = Trace(n_procs=2)
    captured = {}

    def sender():
        yield Send(1, np.arange(3.0), tag="t")
        # the send is published (and the receiver has not run yet):
        # grab the record exactly as a mid-run observer would
        captured["rec"] = trace.messages[0]
        captured["hash"] = hash(captured["rec"])

    def receiver():
        yield Recv(src=0, tag="t")

    Machine(n_procs=2).run({0: sender(), 1: receiver()}, trace=trace)
    old = captured["rec"]
    assert old.t_recv is None, "published record was mutated in place"
    assert hash(old) == captured["hash"]
    new = trace.messages[0]
    assert new is not old
    assert new.t_recv is not None
    assert (new.src, new.dst, new.tag, new.nbytes, new.hops,
            new.t_send, new.t_arrive) == (
        old.src, old.dst, old.tag, old.nbytes, old.hops,
        old.t_send, old.t_arrive)


# ----------------------------------------------------------------------
# Snapshot/freeze: frozen base chains pass through, live views copy
# ----------------------------------------------------------------------


def test_snapshot_accepts_views_of_frozen_base():
    """A read-only view of a frozen owning array is by-value already:
    no surviving reference can mutate it, so neither _snapshot nor
    freeze_payload may copy it."""
    frozen = freeze_payload(np.arange(10.0))
    view = frozen[2:6]
    assert not view.flags.writeable and view.base is frozen
    assert frozen_by_value(view)
    assert _snapshot(view) is view
    assert freeze_payload(view) is view
    # chains of views resolve through to the owning array
    deeper = view[1:3]
    assert frozen_by_value(deeper)
    assert _snapshot(deeper) is deeper


def test_snapshot_still_copies_readonly_views_of_live_storage():
    """The other half of the contract, unweakened: read-only is not
    by-value when anything up the base chain is writable."""
    live = np.zeros(6)
    readonly = live[1:5].view()
    readonly.flags.writeable = False
    assert not frozen_by_value(readonly)
    snap = _snapshot(readonly)
    live[:] = 9.0
    np.testing.assert_array_equal(snap, np.zeros(4))
    frozen = freeze_payload(readonly)
    np.testing.assert_array_equal(frozen, np.full(4, 9.0))
    live[:] = -1.0
    np.testing.assert_array_equal(frozen, np.full(4, 9.0))


# ----------------------------------------------------------------------
# Deadlock diagnostics: pending mailbox keys
# ----------------------------------------------------------------------


def test_deadlock_error_lists_pending_mailbox_keys():
    """A tag near-miss hangs the receiver; the exception must show the
    message sitting undelivered in its mailbox."""
    def sender():
        yield Send(1, np.zeros(2), tag="right")

    def receiver():
        yield Recv(src=0, tag="wrong")

    with pytest.raises(DeadlockError) as exc_info:
        Machine(n_procs=2).run({0: sender(), 1: receiver()})
    err = exc_info.value
    assert err.blocked[1] == (0, "wrong")
    assert err.pending[1] == [(0, "right")]
    message = str(err)
    assert "undelivered mailbox" in message
    assert "'right'" in message


def test_deadlock_error_empty_mailbox_reported():
    def receiver():
        yield Recv(src=1, tag="never")

    def other():
        yield Recv(src=0, tag="never")

    with pytest.raises(DeadlockError) as exc_info:
        Machine(n_procs=2).run({0: receiver(), 1: other()})
    err = exc_info.value
    assert err.pending == {0: [], 1: []}
    assert "undelivered mailbox: empty" in str(err)
