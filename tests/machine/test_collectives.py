"""Unit tests for tree collectives over arbitrary processor groups."""

import operator

import numpy as np
import pytest

from repro.machine import CostModel, Machine
from repro.machine import collectives as coll


def run_group(n, group, body):
    """Run ``body(rank)`` on every rank of an n-proc machine; idle others."""
    m = Machine(
        n_procs=n,
        cost=CostModel(alpha=1.0, beta=0.001, flop_time=1.0, send_overhead=0.0, gamma_hop=0.0),
    )
    results = {}

    def make(rank):
        def prog():
            if rank in group:
                results[rank] = yield from body(rank)

        return prog()

    m.run(make), results
    return results


@pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 8])
def test_bcast_all_sizes(size):
    group = list(range(size))

    def body(rank):
        return coll.bcast(rank, group, "payload" if rank == 0 else None, root=0, tag="b")

    results = run_group(size, group, body)
    assert all(v == "payload" for v in results.values())
    assert len(results) == size


def test_bcast_nonzero_root_and_sparse_group():
    group = [1, 3, 6]

    def body(rank):
        return coll.bcast(rank, group, rank if rank == 3 else None, root=3, tag="b")

    results = run_group(8, group, body)
    assert results == {1: 3, 3: 3, 6: 3}


@pytest.mark.parametrize("size", [1, 2, 3, 5, 8])
def test_reduce_sum(size):
    group = list(range(size))

    def body(rank):
        return coll.reduce(rank, group, rank + 1, root=0, tag="r")

    results = run_group(size, group, body)
    assert results[0] == size * (size + 1) // 2
    for r in group[1:]:
        assert results[r] is None


def test_reduce_max_nonzero_root():
    group = [0, 2, 4, 5]

    def body(rank):
        return coll.reduce(rank, group, rank, root=4, tag="r", op=max)

    results = run_group(6, group, body)
    assert results[4] == 5


@pytest.mark.parametrize("size", [1, 2, 4, 7])
def test_allreduce(size):
    group = list(range(size))

    def body(rank):
        return coll.allreduce(rank, group, rank + 1, tag="a", op=operator.add)

    results = run_group(size, group, body)
    expected = size * (size + 1) // 2
    assert all(v == expected for v in results.values())


def test_allreduce_numpy_arrays():
    group = [0, 1, 2]

    def body(rank):
        return coll.allreduce(rank, group, np.full(3, float(rank)), tag="a", op=operator.add)

    results = run_group(3, group, body)
    for v in results.values():
        np.testing.assert_array_equal(v, [3.0, 3.0, 3.0])


@pytest.mark.parametrize("size", [1, 2, 3, 6])
def test_gather_preserves_group_order(size):
    group = list(range(size))

    def body(rank):
        return coll.gather(rank, group, rank * 10, root=0, tag="g")

    results = run_group(size, group, body)
    assert results[0] == [r * 10 for r in group]


def test_scatter_round_trip():
    group = [0, 1, 2, 3]
    items = ["a", "b", "c", "d"]

    def body(rank):
        return coll.scatter(rank, group, items if rank == 0 else None, root=0, tag="s")

    results = run_group(4, group, body)
    assert [results[r] for r in group] == items


def test_allgather():
    group = [0, 1, 2]

    def body(rank):
        return coll.allgather(rank, group, rank**2, tag="ag")

    results = run_group(3, group, body)
    assert all(v == [0, 1, 4] for v in results.values())


def test_barrier_via_messages_completes():
    group = [0, 1, 2, 3, 4]

    def body(rank):
        return coll.barrier_via_messages(rank, group, tag="bar")

    results = run_group(5, group, body)
    assert len(results) == 5


def test_bcast_log_depth_timing():
    """Binomial broadcast finishes in ceil(log2 p) message latencies."""
    size = 8
    group = list(range(size))
    m = Machine(
        n_procs=size,
        cost=CostModel(alpha=1.0, beta=0.0, gamma_hop=0.0, flop_time=0.0, send_overhead=0.0),
    )

    def make(rank):
        def prog():
            yield from coll.bcast(rank, group, 1, root=0, tag="b")

        return prog()

    trace = m.run(make)
    assert trace.makespan() == pytest.approx(3.0)  # log2(8) rounds
