"""Property-based tests: collectives on arbitrary processor groups."""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import CostModel, Machine
from repro.machine import collectives as coll


def run_group(n, group, body):
    m = Machine(
        n_procs=n,
        cost=CostModel(alpha=0.1, beta=0.0, gamma_hop=0.0, flop_time=0.0, send_overhead=0.0),
    )
    results = {}

    def make(rank):
        def prog():
            if rank in group:
                results[rank] = yield from body(rank)

        return prog()

    m.run(make)
    return results


group_strategy = st.integers(min_value=1, max_value=9).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=1,
            max_size=n,
            unique=True,
        ),
        st.integers(0, 100),
    )
)


@settings(max_examples=40, deadline=None)
@given(params=group_strategy)
def test_property_allreduce_any_group(params):
    n, group, salt = params
    vals = {r: float((r + 1) * (salt + 1) % 17) for r in group}

    def body(rank):
        return coll.allreduce(rank, group, vals[rank], tag=("p", salt))

    results = run_group(n, group, body)
    expected = sum(vals.values())
    assert all(abs(v - expected) < 1e-12 for v in results.values())
    assert set(results) == set(group)


@settings(max_examples=40, deadline=None)
@given(params=group_strategy)
def test_property_bcast_any_root(params):
    n, group, salt = params
    root = group[salt % len(group)]

    def body(rank):
        data = ("payload", salt) if rank == root else None
        return coll.bcast(rank, group, data, root=root, tag=("b", salt))

    results = run_group(n, group, body)
    assert all(v == ("payload", salt) for v in results.values())


@settings(max_examples=30, deadline=None)
@given(params=group_strategy)
def test_property_gather_scatter_roundtrip(params):
    n, group, salt = params
    root = group[0]
    items = [f"item{r}" for r in group]

    def body(rank):
        def gen():
            got = yield from coll.scatter(
                rank, group, items if rank == root else None, root=root, tag=("s", salt)
            )
            back = yield from coll.gather(rank, group, got, root=root, tag=("g", salt))
            return back

        return gen()

    results = run_group(n, group, body)
    assert results[root] == items
    for r in group:
        if r != root:
            assert results[r] is None
