"""Tests for the cached binomial-tree routing tables of collectives."""

import numpy as np
import pytest

from repro.machine import CostModel, Machine
from repro.machine import collectives as coll
from repro.machine.collectives import (
    TreeTable,
    clear_tree_tables,
    get_tree_table,
    tree_table_stats,
)
from repro.util.errors import ValidationError


@pytest.fixture(autouse=True)
def _fresh_tables():
    clear_tree_tables()
    yield
    clear_tree_tables()


def run_group(n, group, body):
    m = Machine(
        n_procs=n,
        cost=CostModel(alpha=1.0, beta=0.001, flop_time=1.0, send_overhead=0.0,
                       gamma_hop=0.0),
    )
    results = {}

    def make(rank):
        def prog():
            if rank in group:
                results[rank] = yield from body(rank)

        return prog()

    return m.run(make), results


@pytest.mark.parametrize("size", [1, 2, 3, 5, 8])
@pytest.mark.parametrize("rpos", [0, 1])
def test_table_matches_inline_derivation(size, rpos):
    """The tabulated routing must equal the seed's per-call derivation."""
    if rpos >= size:
        pytest.skip("root position outside group")
    group = list(range(10, 10 + size))
    root = group[rpos]
    table = TreeTable(group, root)

    def rank_at(pos):
        return group[(pos + rpos) % size]

    for me in range(size):
        # bcast: recv from me - 2**floor(log2 me); sends at steps > me
        if me == 0:
            assert table.bcast_recv[me] is None
        else:
            up = 1 << (me.bit_length() - 1)
            assert table.bcast_recv[me] == rank_at(me - up)
        step, sends = 1, []
        while step < size:
            if me < step and me + step < size:
                sends.append((rank_at(me + step), me + step))
            step <<= 1
        assert table.bcast_sends[me] == sends
        # reduce: children below the lowest set bit, parent at it
        step, children = 1, []
        while step < size:
            if me % (2 * step) == step:
                assert table.reduce_parent[me] == (rank_at(me - step), me - step, step)
                break
            if me + step < size:
                children.append((rank_at(me + step), step))
            step <<= 1
        else:
            assert table.reduce_parent[me] is None
        assert table.reduce_children[me] == children


def test_tables_are_cached_per_group_and_root():
    group = [0, 1, 2, 3]

    def body(rank):
        a = yield from coll.bcast(rank, group, rank == 0 or None, root=0, tag="b1")
        b = yield from coll.bcast(rank, group, rank == 0 or None, root=0, tag="b2")
        c = yield from coll.reduce(rank, group, 1, root=0, tag="r1")
        d = yield from coll.bcast(rank, group, "x" if rank == 2 else None, root=2, tag="b3")
        return (a, b, c, d)

    run_group(4, group, body)
    stats = tree_table_stats()
    # (group, 0) built once and reused across bcast/bcast/reduce; the
    # root-2 broadcast needs its own table
    assert stats["entries"] == 2
    assert stats["builds"] == 2
    assert stats["hits"] == 4 * 4 - 2  # every later per-rank call hits

    table, cached = get_tree_table(tuple(group), 0)
    assert cached and table.root == 0
    clear_tree_tables()
    assert tree_table_stats() == {"entries": 0, "hits": 0, "builds": 0}


def test_cached_collectives_produce_same_results():
    """Second invocation (pure table replay) matches the first."""
    group = [1, 3, 4, 6]

    def body(rank):
        first = yield from coll.allreduce(rank, group, rank, tag="a1")
        second = yield from coll.allreduce(rank, group, rank, tag="a2")
        return (first, second)

    _, results = run_group(8, group, body)
    for r in group:
        assert results[r] == (14, 14)


def test_non_member_rank_rejected():
    table = TreeTable([0, 2, 4], 0)
    with pytest.raises(ValidationError, match="not in group"):
        table.pos_of(1)


def test_bcast_array_payload_through_table():
    group = list(range(6))
    payload = np.arange(5.0)

    def body(rank):
        got = yield from coll.bcast(
            rank, group, payload if rank == 4 else None, root=4, tag="b"
        )
        return got

    _, results = run_group(6, group, body)
    for r in group:
        np.testing.assert_array_equal(results[r], payload)
