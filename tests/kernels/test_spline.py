"""Tests for cubic spline fitting."""

import numpy as np
import pytest
from scipy.interpolate import CubicSpline

from repro.kernels.spline import cubic_spline_coeffs, spline_eval, spline_system
from repro.util.errors import ValidationError


def test_spline_interpolates_knots():
    x = np.linspace(0, 1, 12)
    y = np.sin(2 * np.pi * x)
    M, _ = cubic_spline_coeffs(x, y)
    np.testing.assert_allclose(spline_eval(x, y, M, x), y, atol=1e-10)


def test_natural_boundary_conditions():
    x = np.linspace(0, 2, 9)
    y = x**3 - x
    M, _ = cubic_spline_coeffs(x, y)
    assert abs(M[0]) < 1e-12
    assert abs(M[-1]) < 1e-12


def test_matches_scipy_natural_spline():
    x = np.linspace(0, 3, 15)
    y = np.exp(-x) * np.cos(3 * x)
    M, _ = cubic_spline_coeffs(x, y)
    cs = CubicSpline(x, y, bc_type="natural")
    xq = np.linspace(0, 3, 200)
    np.testing.assert_allclose(spline_eval(x, y, M, xq), cs(xq), atol=1e-9)


def test_parallel_solve_matches_serial():
    x = np.linspace(0, 1, 64)
    y = np.sin(4 * x) + 0.3 * x
    M_serial, _ = cubic_spline_coeffs(x, y, p=1)
    M_par, trace = cubic_spline_coeffs(x, y, p=4)
    np.testing.assert_allclose(M_par, M_serial, rtol=1e-8, atol=1e-10)
    assert trace is not None and trace.message_count() > 0


def test_quadratic_reproduced_inside():
    """A spline through smooth data approximates it well between knots."""
    x = np.linspace(0, 1, 30)
    y = np.sin(np.pi * x)
    M, _ = cubic_spline_coeffs(x, y)
    xq = np.linspace(0.1, 0.9, 50)
    np.testing.assert_allclose(spline_eval(x, y, M, xq), np.sin(np.pi * xq), atol=1e-4)


def test_validation_errors():
    with pytest.raises(ValidationError):
        spline_system([0.0, 1.0], [1.0, 2.0])  # too few knots
    with pytest.raises(ValidationError):
        spline_system([0.0, 1.0, 0.5], [1.0, 2.0, 3.0])  # not increasing
    x = np.linspace(0, 1, 5)
    y = x.copy()
    M, _ = cubic_spline_coeffs(x, y)
    with pytest.raises(ValidationError):
        spline_eval(x, y, M, np.array([1.5]))  # out of range
