"""Unit and property tests for the sequential Thomas solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.thomas import (
    build_tridiagonal_dense,
    thomas_factor_count,
    thomas_solve,
    thomas_solve_many,
)
from repro.util.errors import ValidationError


def dominant_system(n, rng):
    b = rng.uniform(-1, 1, n)
    c = rng.uniform(-1, 1, n)
    a = np.abs(b) + np.abs(c) + rng.uniform(1.0, 2.0, n)
    f = rng.uniform(-5, 5, n)
    return b, a, c, f


def test_identity_system():
    n = 5
    x = thomas_solve(np.zeros(n), np.ones(n), np.zeros(n), np.arange(5.0))
    np.testing.assert_allclose(x, np.arange(5.0))


def test_known_small_system():
    # [[2,1,0],[1,2,1],[0,1,2]] x = [4,8,8] -> x = [1,2,3]
    b = np.array([0.0, 1.0, 1.0])
    a = np.array([2.0, 2.0, 2.0])
    c = np.array([1.0, 1.0, 0.0])
    f = np.array([4.0, 8.0, 8.0])
    np.testing.assert_allclose(thomas_solve(b, a, c, f), [1.0, 2.0, 3.0])


def test_matches_dense_solve():
    rng = np.random.default_rng(1)
    b, a, c, f = dominant_system(40, rng)
    A = build_tridiagonal_dense(b, a, c)
    np.testing.assert_allclose(thomas_solve(b, a, c, f), np.linalg.solve(A, f), rtol=1e-10)


def test_many_rhs_matches_single():
    rng = np.random.default_rng(2)
    b, a, c, _ = dominant_system(20, rng)
    F = rng.uniform(-1, 1, (20, 7))
    X = thomas_solve_many(b, a, c, F)
    for j in range(7):
        np.testing.assert_allclose(X[:, j], thomas_solve(b, a, c, F[:, j]), rtol=1e-12)


def test_single_row():
    assert thomas_solve([0.0], [4.0], [0.0], [8.0])[0] == 2.0


def test_empty_system():
    assert thomas_solve([], [], [], []).size == 0


def test_zero_pivot_raises():
    with pytest.raises(ValidationError):
        thomas_solve([0.0, 1.0], [0.0, 1.0], [0.0, 0.0], [1.0, 1.0])


def test_length_mismatch_raises():
    with pytest.raises(ValidationError):
        thomas_solve([0.0], [1.0, 1.0], [0.0, 0.0], [1.0, 1.0])


def test_flop_count_monotone():
    assert thomas_factor_count(0) == 0
    assert thomas_factor_count(1) == 1
    assert thomas_factor_count(10) == 73
    assert thomas_factor_count(20) > thomas_factor_count(10)


@settings(max_examples=40)
@given(n=st.integers(min_value=1, max_value=60), seed=st.integers(0, 2**31))
def test_property_residual_small(n, seed):
    """Ax - f is tiny for random diagonally dominant systems."""
    rng = np.random.default_rng(seed)
    b, a, c, f = dominant_system(n, rng)
    x = thomas_solve(b, a, c, f)
    A = build_tridiagonal_dense(b, a, c)
    np.testing.assert_allclose(A @ x, f, rtol=1e-8, atol=1e-8)
