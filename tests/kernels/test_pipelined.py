"""Tests for the pipelined multi-system solver (Listing 6)."""

import numpy as np
import pytest

from repro.kernels.pipelined import (
    pipelined_multi_tri_solve,
    sequential_multi_tri_solve,
)
from repro.kernels.substructured import ContiguousMapping
from repro.kernels.thomas import thomas_solve
from repro.machine import CostModel, Machine
from repro.util.errors import ValidationError


def dominant_systems(m, n, seed=0):
    rng = np.random.default_rng(seed)
    B = rng.uniform(-1, 1, (m, n))
    C = rng.uniform(-1, 1, (m, n))
    A = np.abs(B) + np.abs(C) + rng.uniform(1.0, 2.0, (m, n))
    F = rng.uniform(-5, 5, (m, n))
    return B, A, C, F


def reference(B, A, C, F):
    return np.stack([thomas_solve(B[s], A[s], C[s], F[s]) for s in range(len(A))])


@pytest.mark.parametrize("p", [1, 2, 4, 8])
def test_pipelined_matches_thomas(p):
    B, A, C, F = dominant_systems(5, 32, seed=p)
    X, _ = pipelined_multi_tri_solve(B, A, C, F, p)
    np.testing.assert_allclose(X, reference(B, A, C, F), rtol=1e-8)


@pytest.mark.parametrize("p", [1, 2, 4])
def test_sequential_matches_thomas(p):
    B, A, C, F = dominant_systems(4, 24, seed=p + 50)
    X, _ = sequential_multi_tri_solve(B, A, C, F, p)
    np.testing.assert_allclose(X, reference(B, A, C, F), rtol=1e-8)


def test_pipelined_contiguous_mapping_also_correct():
    B, A, C, F = dominant_systems(3, 32, seed=9)
    X, _ = pipelined_multi_tri_solve(B, A, C, F, 8, mapping_cls=ContiguousMapping)
    np.testing.assert_allclose(X, reference(B, A, C, F), rtol=1e-8)


def test_single_system_matches_substructured():
    B, A, C, F = dominant_systems(1, 32, seed=10)
    X, _ = pipelined_multi_tri_solve(B, A, C, F, 4)
    np.testing.assert_allclose(X[0], thomas_solve(B[0], A[0], C[0], F[0]), rtol=1e-8)


def test_pipelined_beats_sequential_makespan():
    """Listing 6's point: pipelining lowers makespan for many systems."""
    B, A, C, F = dominant_systems(16, 128, seed=11)
    p = 8
    cost = CostModel.balanced()
    _, t_seq = sequential_multi_tri_solve(
        B, A, C, F, p, machine=Machine(n_procs=p, cost=cost)
    )
    _, t_pipe = pipelined_multi_tri_solve(
        B, A, C, F, p, machine=Machine(n_procs=p, cost=cost)
    )
    assert t_pipe.makespan() < t_seq.makespan()


def test_pipelined_improves_utilization():
    """'More of the processors are kept busy' (section 3)."""
    B, A, C, F = dominant_systems(16, 128, seed=12)
    p = 8
    cost = CostModel.balanced()
    _, t_seq = sequential_multi_tri_solve(
        B, A, C, F, p, machine=Machine(n_procs=p, cost=cost)
    )
    _, t_pipe = pipelined_multi_tri_solve(
        B, A, C, F, p, machine=Machine(n_procs=p, cost=cost)
    )
    assert t_pipe.utilization() > t_seq.utilization()


def test_shape_validation():
    B, A, C, F = dominant_systems(2, 16)
    with pytest.raises(ValidationError):
        pipelined_multi_tri_solve(B[:1], A, C, F, 2)
    with pytest.raises(ValidationError):
        pipelined_multi_tri_solve(B, A, C, F, 16)  # n < 2p


def test_uneven_blocks_multi():
    B, A, C, F = dominant_systems(3, 27, seed=13)
    X, _ = pipelined_multi_tri_solve(B, A, C, F, 4)
    np.testing.assert_allclose(X, reference(B, A, C, F), rtol=1e-8)
