"""Tests for the cyclic reduction baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.cyclic_reduction import (
    cyclic_reduction_solve,
    distributed_cyclic_reduction,
)
from repro.kernels.thomas import thomas_solve


def dominant_system(n, seed):
    rng = np.random.default_rng(seed)
    b = rng.uniform(-1, 1, n)
    c = rng.uniform(-1, 1, n)
    a = np.abs(b) + np.abs(c) + rng.uniform(1.0, 2.0, n)
    f = rng.uniform(-5, 5, n)
    return b, a, c, f


@pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 17, 64])
def test_sequential_cr_matches_thomas(n):
    b, a, c, f = dominant_system(n, n)
    np.testing.assert_allclose(
        cyclic_reduction_solve(b, a, c, f), thomas_solve(b, a, c, f), rtol=1e-8
    )


@settings(max_examples=30)
@given(n=st.integers(min_value=1, max_value=100), seed=st.integers(0, 2**31))
def test_property_cr_equals_thomas(n, seed):
    b, a, c, f = dominant_system(n, seed)
    np.testing.assert_allclose(
        cyclic_reduction_solve(b, a, c, f),
        thomas_solve(b, a, c, f),
        rtol=1e-6,
        atol=1e-8,
    )


@pytest.mark.parametrize("p", [1, 2, 4])
@pytest.mark.parametrize("n", [8, 19, 32])
def test_distributed_cr_matches_thomas(p, n):
    b, a, c, f = dominant_system(n, n * 10 + p)
    x, trace = distributed_cyclic_reduction(b, a, c, f, p)
    np.testing.assert_allclose(x, thomas_solve(b, a, c, f), rtol=1e-8)


def test_distributed_cr_communicates_each_level():
    b, a, c, f = dominant_system(64, 3)
    _, trace = distributed_cyclic_reduction(b, a, c, f, 4)
    assert trace.message_count() > 0
