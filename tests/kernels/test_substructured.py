"""Tests for the substructured parallel tridiagonal solver (Figures 1-5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.substructured import (
    ContiguousMapping,
    ShuffleMapping,
    local_reduce,
    reduce_four_rows,
    solve_reduced_pairs,
    substructured_tri_solve,
)
from repro.kernels.thomas import thomas_solve
from repro.machine import CostModel, Machine
from repro.util.errors import ValidationError


def dominant_system(n, rng):
    b = rng.uniform(-1, 1, n)
    c = rng.uniform(-1, 1, n)
    a = np.abs(b) + np.abs(c) + rng.uniform(1.0, 2.0, n)
    f = rng.uniform(-5, 5, n)
    return b, a, c, f


# ----------------------------------------------------------------------
# Local reduction (Figure 1)
# ----------------------------------------------------------------------


def test_local_reduce_block_structure():
    """After reduction, interior rows couple only (first, self, last)."""
    rng = np.random.default_rng(3)
    n = 8
    b, a, c, f = dominant_system(n, rng)
    red = local_reduce(b, a, c, f)
    x = thomas_solve(b, a, c, f)  # true solution of the isolated block
    # boundary rows must be consistent: first row couples x[-1(ext)], x0, x[n-1]
    # with no external neighbors, first = (b0, a0, g0 | f0) means
    # a0*x0 + g0*x[n-1] = f0 (b0 multiplies a nonexistent row)
    lhs_first = red.first[1] * x[0] + red.first[2] * x[-1]
    np.testing.assert_allclose(lhs_first, red.first[3], rtol=1e-9)
    lhs_last = red.last[0] * x[0] + red.last[1] * x[-1]
    np.testing.assert_allclose(lhs_last, red.last[3], rtol=1e-9)
    # interior identity: e_i x0 + a_i x_i + g_i x_last = f_i
    for i in range(1, n - 1):
        lhs = red.e[i] * x[0] + red.a[i] * x[i] + red.g[i] * x[-1]
        np.testing.assert_allclose(lhs, red.f[i], rtol=1e-9)


def test_local_reduce_interior_solve_roundtrip():
    rng = np.random.default_rng(4)
    b, a, c, f = dominant_system(10, rng)
    x = thomas_solve(b, a, c, f)
    red = local_reduce(b, a, c, f)
    recovered = red.interior_solve(x[0], x[-1])
    np.testing.assert_allclose(recovered, x, rtol=1e-9)


def test_local_reduce_minimum_block():
    rng = np.random.default_rng(5)
    b, a, c, f = dominant_system(2, rng)
    red = local_reduce(b, a, c, f)
    assert red.m == 2
    x = thomas_solve(b, a, c, f)
    np.testing.assert_allclose(red.interior_solve(x[0], x[1]), x)


def test_local_reduce_rejects_tiny_block():
    with pytest.raises(ValidationError):
        local_reduce([0.0], [1.0], [0.0], [1.0])


def test_reduced_pairs_form_tridiagonal_of_2p():
    """Figure 1's claim: boundary rows form a 2p tridiagonal system."""
    rng = np.random.default_rng(6)
    n, p = 16, 4
    b, a, c, f = dominant_system(n, rng)
    x_true = thomas_solve(b, a, c, f)
    m = n // p
    pairs = []
    for q in range(p):
        sl = slice(q * m, (q + 1) * m)
        red = local_reduce(b[sl], a[sl], c[sl], f[sl])
        pairs.append((red.first, red.last))
    x_red = solve_reduced_pairs(pairs)
    # reduced solution = true solution at block boundary rows
    expected = np.concatenate([[x_true[q * m], x_true[(q + 1) * m - 1]] for q in range(p)])
    np.testing.assert_allclose(x_red, expected, rtol=1e-8)


def test_reduce_four_rows_matches_direct(use_p=2):
    """Figure 2: four rows reduce to two preserving the solution."""
    rng = np.random.default_rng(7)
    n, p = 8, 2
    b, a, c, f = dominant_system(n, rng)
    x_true = thomas_solve(b, a, c, f)
    m = n // p
    reds = [
        local_reduce(b[q * m : (q + 1) * m], a[q * m : (q + 1) * m],
                     c[q * m : (q + 1) * m], f[q * m : (q + 1) * m])
        for q in range(p)
    ]
    first, last, saved = reduce_four_rows(
        (reds[0].first, reds[0].last), (reds[1].first, reds[1].last)
    )
    # new pair rows must be satisfied by (x[0], x[n-1]) with no externals
    np.testing.assert_allclose(first[1] * x_true[0] + first[2] * x_true[-1], first[3], rtol=1e-8)
    np.testing.assert_allclose(last[0] * x_true[0] + last[1] * x_true[-1], last[3], rtol=1e-8)
    # saved interior recovers the two middle boundary values
    x4 = saved.interior_solve(x_true[0], x_true[-1])
    np.testing.assert_allclose(x4, [x_true[0], x_true[m - 1], x_true[m], x_true[-1]], rtol=1e-8)


# ----------------------------------------------------------------------
# Mappings (Figure 5)
# ----------------------------------------------------------------------


def test_contiguous_mapping_layout():
    m = ContiguousMapping(8)
    assert [m.pair_rank(0, j) for j in range(8)] == list(range(8))
    assert [m.pair_rank(1, j) for j in range(4)] == [0, 2, 4, 6]
    assert [m.pair_rank(2, j) for j in range(2)] == [0, 4]
    assert m.pair_rank(3, 0) == 0


def test_shuffle_mapping_disjoint_levels():
    m = ShuffleMapping(8)
    level1 = {m.pair_rank(1, j) for j in range(4)}
    level2 = {m.pair_rank(2, j) for j in range(2)}
    level3 = {m.pair_rank(3, 0)}
    assert level1 == {4, 5, 6, 7}
    assert level2 == {2, 3}
    assert level3 == {1}
    assert level1 & level2 == set()
    assert level2 & level3 == set()


def test_mapping_requires_power_of_two():
    with pytest.raises(ValidationError):
        ShuffleMapping(6)


# ----------------------------------------------------------------------
# Full parallel solve
# ----------------------------------------------------------------------


@pytest.mark.parametrize("p", [1, 2, 4, 8])
@pytest.mark.parametrize("mapping", [ContiguousMapping, ShuffleMapping])
def test_parallel_solve_matches_thomas(p, mapping):
    rng = np.random.default_rng(p * 10 + 1)
    n = 32
    b, a, c, f = dominant_system(n, rng)
    x, trace = substructured_tri_solve(b, a, c, f, p, mapping_cls=mapping)
    np.testing.assert_allclose(x, thomas_solve(b, a, c, f), rtol=1e-8)


def test_uneven_blocks():
    rng = np.random.default_rng(11)
    n, p = 37, 4  # non-divisible
    b, a, c, f = dominant_system(n, rng)
    x, _ = substructured_tri_solve(b, a, c, f, p)
    np.testing.assert_allclose(x, thomas_solve(b, a, c, f), rtol=1e-8)


def test_n_too_small_raises():
    with pytest.raises(ValidationError):
        substructured_tri_solve(np.ones(6), np.ones(6) * 3, np.ones(6), np.ones(6), 4)


def test_active_processor_counts_halve():
    """Figure 3: active processors halve at each reduction step."""
    rng = np.random.default_rng(12)
    n, p = 64, 8
    b, a, c, f = dominant_system(n, rng)
    _, trace = substructured_tri_solve(b, a, c, f, p)
    by_step = trace.active_procs_by_payload("tri/reduce")
    counts = {level: len(procs) for (sys, level), procs in by_step.items()}
    assert counts[0] == 8
    assert counts[1] == 4
    assert counts[2] == 2
    apex = trace.active_procs_by_payload("tri/apex")
    assert len(apex[(0, 3)]) == 1


def test_substitution_counts_double():
    rng = np.random.default_rng(13)
    n, p = 64, 8
    b, a, c, f = dominant_system(n, rng)
    _, trace = substructured_tri_solve(b, a, c, f, p)
    by_step = trace.active_procs_by_payload("tri/subst")
    counts = {level: len(procs) for (sys, level), procs in by_step.items()}
    assert counts[2] == 2
    assert counts[1] == 4
    assert counts[0] == 8


def test_deterministic_trace():
    rng = np.random.default_rng(14)
    n, p = 32, 4
    b, a, c, f = dominant_system(n, rng)
    _, t1 = substructured_tri_solve(b, a, c, f, p)
    _, t2 = substructured_tri_solve(b, a, c, f, p)
    assert t1.makespan() == t2.makespan()
    assert t1.message_count() == t2.message_count()


def test_parallel_faster_than_sequential_for_large_n():
    """Simulated speedup: parallel time < sequential Thomas time at large n."""
    rng = np.random.default_rng(15)
    n, p = 4096, 16
    b, a, c, f = dominant_system(n, rng)
    cost = CostModel.balanced()
    x, trace = substructured_tri_solve(b, a, c, f, p, machine=Machine(n_procs=p, cost=cost))
    seq_time = cost.compute_time(8 * n)  # Thomas ~ 8n flops
    assert trace.makespan() < seq_time
    np.testing.assert_allclose(x, thomas_solve(b, a, c, f), rtol=1e-7)


@settings(max_examples=20, deadline=None)
@given(
    logp=st.integers(min_value=0, max_value=4),
    extra=st.integers(min_value=0, max_value=30),
    seed=st.integers(0, 2**31),
)
def test_property_parallel_equals_sequential(logp, extra, seed):
    p = 1 << logp
    n = 2 * p + extra
    rng = np.random.default_rng(seed)
    b, a, c, f = dominant_system(n, rng)
    x, _ = substructured_tri_solve(b, a, c, f, p)
    np.testing.assert_allclose(x, thomas_solve(b, a, c, f), rtol=1e-6, atol=1e-8)
