"""Tests for the binary-exchange FFT kernel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.fft import parallel_fft
from repro.machine import Hypercube, Machine
from repro.util.errors import ValidationError


@pytest.mark.parametrize("n", [2, 4, 16, 64])
@pytest.mark.parametrize("p", [1, 2, 4])
def test_fft_matches_numpy(n, p):
    if p > n:
        pytest.skip("p > n")
    rng = np.random.default_rng(n + p)
    x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    X, _ = parallel_fft(x, p)
    np.testing.assert_allclose(X, np.fft.fft(x), rtol=1e-9, atol=1e-9)


def test_fft_p_equals_n():
    rng = np.random.default_rng(7)
    x = rng.standard_normal(8)
    X, _ = parallel_fft(x, 8)
    np.testing.assert_allclose(X, np.fft.fft(x), rtol=1e-9, atol=1e-9)


def test_fft_real_signal_symmetry():
    rng = np.random.default_rng(8)
    x = rng.standard_normal(32)
    X, _ = parallel_fft(x, 4)
    np.testing.assert_allclose(X[1:], np.conj(X[1:][::-1]), rtol=1e-8, atol=1e-8)


def test_fft_on_hypercube_topology():
    """Cross-stage exchanges are single-hop on a hypercube."""
    rng = np.random.default_rng(9)
    x = rng.standard_normal(64)
    m = Machine(topology=Hypercube(3))
    X, trace = parallel_fft(x, 8, machine=m)
    np.testing.assert_allclose(X, np.fft.fft(x), rtol=1e-9, atol=1e-9)
    exchange = [msg for msg in trace.messages if msg.tag[0] == "fft"]
    assert exchange and all(msg.hops == 1 for msg in exchange)


def test_fft_rejects_bad_sizes():
    with pytest.raises(ValidationError):
        parallel_fft(np.ones(12), 2)
    with pytest.raises(ValidationError):
        parallel_fft(np.ones(16), 3)
    with pytest.raises(ValidationError):
        parallel_fft(np.ones(4), 8)


@settings(max_examples=20)
@given(
    logn=st.integers(min_value=1, max_value=7),
    logp=st.integers(min_value=0, max_value=3),
    seed=st.integers(0, 2**31),
)
def test_property_fft_linearity_and_match(logn, logp, seed):
    n, p = 1 << logn, 1 << logp
    if p > n:
        return
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n)
    X, _ = parallel_fft(x, p)
    np.testing.assert_allclose(X, np.fft.fft(x), rtol=1e-7, atol=1e-7)
