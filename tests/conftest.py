"""Shared test harness: a hang guard for the concurrency-heavy suites.

The elastic / serve / supervise suites exercise forked worker pools,
barriers, and thread pools -- the failure mode of a bug there is a
*hang*, not a traceback.  ``pytest-timeout`` is not in the toolchain,
so this conftest arms :func:`faulthandler.dump_traceback_later` around
each test in those directories: a test exceeding the budget dumps every
thread's stack to stderr and hard-exits the process instead of wedging
CI until the job-level timeout.

``REPRO_TEST_TIMEOUT`` overrides the per-test budget in seconds
(``0`` disables the guard entirely).
"""

import faulthandler
import os

import pytest

#: directories whose tests get the guard (hang-prone suites only --
#: arming faulthandler around every fast unit test is pointless churn)
_GUARDED = ("elastic", "serve", "supervise")

_DEFAULT_TIMEOUT = 180.0


def _budget() -> float:
    raw = os.environ.get("REPRO_TEST_TIMEOUT", "").strip()
    if not raw:
        return _DEFAULT_TIMEOUT
    try:
        return float(raw)
    except ValueError:
        return _DEFAULT_TIMEOUT


@pytest.fixture(autouse=True)
def hang_guard(request):
    """Per-test watchdog: dump all stacks and exit on a hang."""
    timeout = _budget()
    path = getattr(request.node, "path", None)
    guarded = path is not None and path.parent.name in _GUARDED
    if timeout <= 0 or not guarded:
        yield
        return
    faulthandler.dump_traceback_later(timeout, exit=True)
    try:
        yield
    finally:
        faulthandler.cancel_dump_traceback_later()
