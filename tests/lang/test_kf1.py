"""Tests for the KF1 surface-syntax front end."""

import numpy as np
import pytest

from repro.compiler import clear_plan_cache
from repro.lang.kf1 import parse_program
from repro.machine import Machine
from repro.tensor.jacobi import jacobi_reference
from repro.util.errors import CompileError
from repro.session import Session

JACOBI = """
processors procs(2, 2)
real X(0:12, 0:12) dist (block, block)
real f(0:12, 0:12) dist (block, block)

doall (i, j) = [1, 11] * [1, 11] on owner(X(i, j))
  X(i, j) = 0.25*(X(i+1, j) + X(i-1, j) + X(i, j+1) + X(i, j-1)) - f(i, j)
end doall
"""


@pytest.fixture(autouse=True)
def _fresh():
    clear_plan_cache()
    yield
    clear_plan_cache()


def test_parse_jacobi_listing():
    prog = parse_program(JACOBI)
    assert prog.grid.shape == (2, 2)
    assert set(prog.arrays) == {"X", "f"}
    assert prog.arrays["X"].shape == (13, 13)
    assert len(prog.loops) == 1
    loop = prog.loops[0]
    assert [v.name for v in loop.vars] == ["i", "j"]
    assert loop.ranges == ((1, 11, 1), (1, 11, 1))


def test_parsed_jacobi_runs_and_matches_reference():
    prog = parse_program(JACOBI)
    rng = np.random.default_rng(0)
    f = 1e-3 * rng.standard_normal((13, 13))
    f[0] = f[-1] = 0.0
    f[:, 0] = f[:, -1] = 0.0
    prog.arrays["f"].from_global(f)
    m = Machine(n_procs=4)

    def spmd(ctx):
        for _ in range(5):
            yield from ctx.doall(prog.loops[0])

    Session(m, prog.grid).run(spmd)
    np.testing.assert_allclose(
        prog.arrays["X"].to_global(), jacobi_reference(f, 5), rtol=1e-12
    )


def test_star_dist_and_owner_star():
    text = """
processors procs(2)
real u(0:8, 0:8) dist (*, block)
real t(0:8, 0:8) dist (*, block)
doall (i, j) = [1, 7] * [2, 6, 2] on owner(u(*, j))
  t(i, j) = u(i, j-1) + u(i, j+1)
end doall
"""
    prog = parse_program(text)
    loop = prog.loops[0]
    assert loop.ranges[1] == (2, 6, 2)
    u = prog.arrays["u"]
    assert u.grid_dim_of(0) is None
    assert prog.loops[0].on.idx[0] is None


def test_rational_subscript_parses():
    text = """
processors procs(2)
real u(0:8) dist (block)
real v(0:4) dist (block)
doall (k) = [2, 6, 2] on owner(u(k))
  u(k) = u(k) + v(k/2)
end doall
"""
    prog = parse_program(text)
    u = prog.arrays["u"]
    v = prog.arrays["v"]
    v.from_global(np.array([0.0, 10.0, 20.0, 30.0, 40.0]))
    m = Machine(n_procs=2)

    def spmd(ctx):
        yield from ctx.doall(prog.loops[0])

    Session(m, prog.grid).run(spmd)
    out = u.to_global()
    np.testing.assert_array_equal(out[2:8:2], [10.0, 20.0, 30.0])
    assert out[8] == 0.0  # k=8 outside the inclusive range [2, 6]


def test_onproc_clause():
    text = """
processors procs(4)
real T(0:15) dist (block)
doall (ip) = [0, 3] on procs(ip)
  T(4*ip) = T(4*ip+1) + 1
end doall
"""
    prog = parse_program(text)
    T = prog.arrays["T"]
    T.from_global(np.arange(16.0))
    m = Machine(n_procs=4)

    def spmd(ctx):
        yield from ctx.doall(prog.loops[0])

    Session(m, prog.grid).run(spmd)
    out = T.to_global()
    np.testing.assert_array_equal(out[0::4], np.arange(16.0)[1::4] + 1.0)


def test_replicated_default_declaration():
    text = """
processors procs(2)
real s(0:3)
"""
    prog = parse_program(text)
    assert prog.arrays["s"].replicated


def test_comments_ignored():
    text = """
! header comment
processors procs(2)
real A(0:7) dist (block)   ! trailing comment
doall (i) = [1, 6] on owner(A(i))
  A(i) = A(i) * 2
end doall
"""
    prog = parse_program(text)
    assert len(prog.loops) == 1


def test_errors():
    with pytest.raises(CompileError):
        parse_program("real A(0:3) dist (block)")  # no processors
    with pytest.raises(CompileError):
        parse_program("processors p(2)\nprocessors q(2)")
    with pytest.raises(CompileError):
        parse_program(
            "processors procs(2)\nreal A(0:7) dist (block)\n"
            "doall (i) = [0, 7] on owner(B(i))\n  A(i) = A(i)\nend doall"
        )
    with pytest.raises(CompileError):
        parse_program(
            "processors procs(2)\nreal A(0:7) dist (block)\n"
            "doall (i) = [0, 7] on owner(A(i))\n  A(i) = A(i)"
        )  # missing end doall
    with pytest.raises(CompileError):
        parse_program("processors procs(2)\nreal A(1:7) dist (block)")


def test_loop_var_outside_subscript_rejected():
    text = """
processors procs(2)
real A(0:7) dist (block)
doall (i) = [0, 7] on owner(A(i))
  A(i) = i
end doall
"""
    with pytest.raises(CompileError):
        parse_program(text)
