"""Unit tests for affine index and value expressions."""


import numpy as np
import pytest

from repro.lang import DistArray, ProcessorGrid, loopvars
from repro.lang.expr import AffineExpr, Assign, BinOp, Const, Ref
from repro.util.errors import CompileError


def test_loopvar_arithmetic_builds_affine():
    (i,) = loopvars("i")
    e = 2 * i + 3
    assert isinstance(e, AffineExpr)
    np.testing.assert_array_equal(e.evaluate({"i": np.arange(4)}), [3, 5, 7, 9])


def test_affine_subtraction_and_negation():
    i, j = loopvars("i j")
    e = i - j - 1
    env = {"i": np.array([5]), "j": np.array([2])}
    assert e.evaluate(env)[0] == 2
    e2 = -i + 10
    assert e2.evaluate({"i": np.array([4])})[0] == 6


def test_affine_rational_exact_division():
    (k,) = loopvars("k")
    e = k / 2
    np.testing.assert_array_equal(e.evaluate({"k": np.array([0, 2, 4])}), [0, 1, 2])
    e2 = (k + 1) / 2
    np.testing.assert_array_equal(e2.evaluate({"k": np.array([1, 3])}), [1, 2])


def test_affine_inexact_division_raises():
    (k,) = loopvars("k")
    e = k / 2
    with pytest.raises(CompileError):
        e.evaluate({"k": np.array([1])})


def test_affine_broadcasting_shapes():
    i, j = loopvars("i j")
    e = i + j
    env = {"i": np.arange(3).reshape(3, 1), "j": np.arange(4).reshape(1, 4)}
    out = e.evaluate(env)
    assert out.shape == (3, 4)
    assert out[2, 3] == 5


def test_affine_disallows_var_products():
    i, j = loopvars("i j")
    with pytest.raises(CompileError):
        _ = AffineExpr.of(i) * AffineExpr.of(j)


def test_affine_key_is_stable():
    (i,) = loopvars("i")
    assert (2 * i + 1).key() == (2 * i + 1).key()
    assert (2 * i + 1).key() != (2 * i).key()


def grid_and_array():
    g = ProcessorGrid((2,))
    X = DistArray((8,), g, dist=("block",), name="X")
    return g, X


def test_ref_built_by_subscription():
    _, X = grid_and_array()
    (i,) = loopvars("i")
    r = X[i + 1]
    assert isinstance(r, Ref)
    assert r.array is X
    assert r.vars() == {i}


def test_ref_wrong_arity():
    _, X = grid_and_array()
    i, j = loopvars("i j")
    with pytest.raises(Exception):
        Ref(X, (i, j))


def test_value_expr_flop_count():
    _, X = grid_and_array()
    (i,) = loopvars("i")
    e = 0.25 * (X[i + 1] + X[i - 1]) - X[i]
    # three binary ops: +, *, -
    assert e.flops() == 3


def test_const_coercion_and_keys():
    _, X = grid_and_array()
    (i,) = loopvars("i")
    e = X[i] + 1
    assert isinstance(e, BinOp)
    assert isinstance(e.right, Const)
    assert e.key() == (X[i] + 1).key()


def test_assign_requires_ref_lhs():
    _, X = grid_and_array()
    (i,) = loopvars("i")
    a = Assign(X[i], X[i] + 1.0)
    assert a.lhs.array is X
    with pytest.raises(CompileError):
        Assign(Const(1.0), X[i])  # type: ignore[arg-type]
