"""Unit and property tests for distribution primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.dist import (
    Block,
    BlockCyclic,
    Cyclic,
    Distribution,
    Star,
)
from repro.util.errors import DistributionError


def test_block_bounds_even_split_matches_paper():
    # paper: l_i = (i-1)n/p + 1 .. u_i = i n/p (1-indexed inclusive)
    b = Block().bind(12, 4)
    assert [b.owned_range(c) for c in range(4)] == [(0, 3), (3, 6), (6, 9), (9, 12)]


def test_block_uneven_front_loads_remainder():
    b = Block().bind(10, 4)
    sizes = [b.local_size(c) for c in range(4)]
    assert sizes == [3, 3, 2, 2]
    assert sum(sizes) == 10


def test_block_owner_and_local_index_vectorized():
    b = Block().bind(10, 4)
    idx = np.arange(10)
    owners = b.owner(idx)
    for i in range(10):
        lo, hi = b.owned_range(int(owners[i]))
        assert lo <= i < hi
    loc = b.local_index(idx)
    assert loc.max() < max(b.local_size(c) for c in range(4))


def test_cyclic_round_robin():
    c = Cyclic().bind(10, 3)
    assert list(c.owner(np.arange(6))) == [0, 1, 2, 0, 1, 2]
    assert list(c.local_index(np.array([0, 3, 6, 9]))) == [0, 1, 2, 3]
    assert [c.local_size(k) for k in range(3)] == [4, 3, 3]


def test_cyclic_owned_indices():
    c = Cyclic().bind(7, 3)
    np.testing.assert_array_equal(c.owned_indices(1), [1, 4])


def test_cyclic_has_no_contiguous_range():
    c = Cyclic().bind(10, 3)
    with pytest.raises(DistributionError):
        c.owned_range(0)


def test_blockcyclic_generalizes():
    bc = BlockCyclic(2).bind(8, 2)
    np.testing.assert_array_equal(bc.owner(np.arange(8)), [0, 0, 1, 1, 0, 0, 1, 1])
    np.testing.assert_array_equal(bc.owned_indices(0), [0, 1, 4, 5])
    assert bc.local_size(0) == 4
    np.testing.assert_array_equal(bc.local_index(np.array([0, 1, 4, 5])), [0, 1, 2, 3])


def test_star_owns_everything():
    s = Star().bind(5, 1)
    assert s.local_size() == 5
    assert s.owned_range() == (0, 5)
    np.testing.assert_array_equal(s.local_index(np.arange(5)), np.arange(5))


def test_distribution_dim_count_rule():
    # paper: number of distributed dims must equal grid ndim
    Distribution(("block", "block"), (4, 4), (2, 2))
    Distribution(("*", "block", "block"), (4, 4, 4), (2, 2))
    with pytest.raises(DistributionError):
        Distribution(("block",), (4,), (2, 2))
    with pytest.raises(DistributionError):
        Distribution(("block", "block", "block"), (4, 4, 4), (2, 2))


def test_distribution_replicated_when_all_star():
    d = Distribution(("*", "*"), (3, 3), (2, 2))
    assert d.replicated
    assert d.local_shape((0, 0)) == (3, 3)
    assert d.local_shape((1, 1)) == (3, 3)


def test_distribution_owner_coords():
    d = Distribution(("*", "block", "cyclic"), (2, 8, 6), (2, 3))
    assert d.owner_coords((0, 0, 0)) == (0, 0)
    assert d.owner_coords((1, 7, 4)) == (1, 1)


def test_distribution_unknown_name():
    with pytest.raises(DistributionError):
        Distribution(("diagonal",), (4,), (2,))


# ----------------------------------------------------------------------
# Property-based: distributions partition indices exactly
# ----------------------------------------------------------------------

dist_strategy = st.sampled_from(["block", "cyclic", "bc2", "bc3"])


def make_bound(name, n, p):
    if name == "block":
        return Block().bind(n, p)
    if name == "cyclic":
        return Cyclic().bind(n, p)
    if name == "bc2":
        return BlockCyclic(2).bind(n, p)
    return BlockCyclic(3).bind(n, p)


@settings(max_examples=60)
@given(
    n=st.integers(min_value=0, max_value=200),
    p=st.integers(min_value=1, max_value=17),
    name=dist_strategy,
)
def test_partition_property(n, p, name):
    """owned_indices over all coords partitions range(n) exactly."""
    bd = make_bound(name, n, p)
    seen = np.concatenate([bd.owned_indices(c) for c in range(p)]) if p else []
    assert sorted(seen) == list(range(n))
    # and owner() agrees with owned_indices
    for c in range(p):
        idx = bd.owned_indices(c)
        if idx.size:
            assert np.all(bd.owner(idx) == c)
    # local sizes sum to n
    assert sum(bd.local_size(c) for c in range(p)) == n


@settings(max_examples=60)
@given(
    n=st.integers(min_value=1, max_value=200),
    p=st.integers(min_value=1, max_value=17),
    name=dist_strategy,
)
def test_local_index_injective_per_owner(n, p, name):
    """global -> (owner, local) is a bijection onto local storage."""
    bd = make_bound(name, n, p)
    for c in range(p):
        idx = bd.owned_indices(c)
        loc = np.asarray(bd.local_index(idx))
        assert len(np.unique(loc)) == idx.size
        if idx.size:
            assert loc.min() >= 0
            assert loc.max() < bd.local_size(c)
