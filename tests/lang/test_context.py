"""Tests for the SPMD context: tags, collectives, run_spmd."""


import pytest

from repro.lang import KaliCtx, ProcessorGrid, run_spmd
from repro.machine import Compute, Machine
from repro.util.errors import ValidationError


def test_ctx_requires_membership():
    g = ProcessorGrid((2,))
    with pytest.raises(ValidationError):
        KaliCtx(5, g)


def test_tags_deterministic_per_grid():
    g = ProcessorGrid((2, 2))
    c0 = KaliCtx(0, g)
    c3 = KaliCtx(3, g)
    assert c0.next_tag(g) == c3.next_tag(g)
    assert c0.next_tag(g) == c3.next_tag(g)
    # different grids have independent counters
    col = g[:, 0]
    t_col = c0.next_tag(col)
    t_full = c0.next_tag(g)
    assert t_col != t_full


def test_ctx_allreduce():
    m = Machine(n_procs=4)
    g = ProcessorGrid((4,))
    results = {}

    def prog(ctx):
        total = yield from ctx.allreduce(g, ctx.rank + 1)
        results[ctx.rank] = total

    run_spmd(m, g, prog)
    assert all(v == 10 for v in results.values())


def test_ctx_allreduce_max_on_subgrid():
    m = Machine(n_procs=4)
    g = ProcessorGrid((2, 2))
    col = g[:, 1]
    results = {}

    def prog(ctx):
        if col.contains(ctx.rank):
            v = yield from ctx.allreduce(col, float(ctx.rank), op=max)
            results[ctx.rank] = v
        else:
            yield Compute(seconds=0.0)

    run_spmd(m, g, prog)
    assert results == {1: 3.0, 3: 3.0}


def test_ctx_bcast_and_gather():
    m = Machine(n_procs=3)
    g = ProcessorGrid((3,))
    results = {}

    def prog(ctx):
        v = yield from ctx.bcast(g, "seed" if ctx.rank == 1 else None, root=1)
        items = yield from ctx.gather(g, ctx.rank * 2, root=0)
        results[ctx.rank] = (v, items)

    run_spmd(m, g, prog)
    assert all(v == "seed" for v, _ in results.values())
    assert results[0][1] == [0, 2, 4]
    assert results[1][1] is None


def test_run_spmd_grid_too_big():
    m = Machine(n_procs=2)
    g = ProcessorGrid((4,))
    with pytest.raises(ValidationError):
        run_spmd(m, g, lambda ctx: iter(()))


def test_run_spmd_returns_trace():
    m = Machine(n_procs=2)
    g = ProcessorGrid((2,))

    def prog(ctx):
        yield Compute(seconds=2.0)

    trace = m and run_spmd(m, g, prog)
    assert trace.makespan() == 2.0
    assert trace.busy_time(0) == 2.0
