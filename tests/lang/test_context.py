"""Tests for the SPMD context: tags, collectives, Session.run."""


import pytest

from repro import Session
from repro.lang import KaliCtx, ProcessorGrid, run_spmd
from repro.machine import Compute, Machine
from repro.util.errors import ReproDeprecationWarning, ValidationError


def test_ctx_requires_membership():
    g = ProcessorGrid((2,))
    with pytest.raises(ValidationError):
        KaliCtx(5, g)


def test_tags_deterministic_per_grid():
    g = ProcessorGrid((2, 2))
    c0 = KaliCtx(0, g)
    c3 = KaliCtx(3, g)
    assert c0.next_tag(g) == c3.next_tag(g)
    assert c0.next_tag(g) == c3.next_tag(g)
    # different grids have independent counters
    col = g[:, 0]
    t_col = c0.next_tag(col)
    t_full = c0.next_tag(g)
    assert t_col != t_full


def test_ctx_allreduce():
    m = Machine(n_procs=4)
    g = ProcessorGrid((4,))
    results = {}

    def prog(ctx):
        total = yield from ctx.allreduce(g, ctx.rank + 1)
        results[ctx.rank] = total

    Session(m, g).run(prog)
    assert all(v == 10 for v in results.values())


def test_ctx_allreduce_max_on_subgrid():
    m = Machine(n_procs=4)
    g = ProcessorGrid((2, 2))
    col = g[:, 1]
    results = {}

    def prog(ctx):
        if col.contains(ctx.rank):
            v = yield from ctx.allreduce(col, float(ctx.rank), op=max)
            results[ctx.rank] = v
        else:
            yield Compute(seconds=0.0)

    Session(m, g).run(prog)
    assert results == {1: 3.0, 3: 3.0}


def test_ctx_bcast_and_gather():
    m = Machine(n_procs=3)
    g = ProcessorGrid((3,))
    results = {}

    def prog(ctx):
        v = yield from ctx.bcast(g, "seed" if ctx.rank == 1 else None, root=1)
        items = yield from ctx.gather(g, ctx.rank * 2, root=0)
        results[ctx.rank] = (v, items)

    Session(m, g).run(prog)
    assert all(v == "seed" for v, _ in results.values())
    assert results[0][1] == [0, 2, 4]
    assert results[1][1] is None


def test_session_run_grid_too_big():
    m = Machine(n_procs=2)
    g = ProcessorGrid((4,))
    with pytest.raises(ValidationError):
        Session(m, g).run(lambda ctx: iter(()))


def test_session_run_needs_machine_and_grid():
    with pytest.raises(ValidationError):
        Session().run(lambda ctx: iter(()))
    with pytest.raises(ValidationError):
        Session(Machine(n_procs=2)).run(lambda ctx: iter(()))


def test_session_run_returns_trace_and_records_history():
    m = Machine(n_procs=2)
    g = ProcessorGrid((2,))

    def prog(ctx):
        yield Compute(seconds=2.0)

    s = Session(m, g)
    trace = s.run(prog)
    assert trace.makespan() == 2.0
    assert trace.busy_time(0) == 2.0
    assert s.history == [trace]


def test_run_spmd_shim_warns_and_runs():
    m = Machine(n_procs=2)
    g = ProcessorGrid((2,))

    def prog(ctx):
        yield Compute(seconds=2.0)

    with pytest.warns(ReproDeprecationWarning):
        trace = run_spmd(m, g, prog)
    assert trace.makespan() == 2.0
    with pytest.warns(ReproDeprecationWarning):
        with pytest.raises(ValidationError):
            run_spmd(Machine(n_procs=2), ProcessorGrid((4,)), lambda ctx: iter(()))


# ----------------------------------------------------------------------
# Concurrency: the serving layer drives contexts/counters from threads
# ----------------------------------------------------------------------


def test_next_run_id_unique_under_threads():
    """Run ids scope per-run cache decisions; two concurrent launches
    (serving threads) must never share one."""
    import threading
    from repro.lang.context import next_run_id

    ids: list = []

    def grab():
        ids.extend(next_run_id() for _ in range(1000))

    threads = [threading.Thread(target=grab) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(set(ids)) == len(ids) == 8000


def test_next_tag_never_duplicates_under_threads():
    """Regression for the read-modify-write tag counter: a context
    driven from several threads must hand out every tag exactly once
    (a duplicate silently aliases two collectives' message streams)."""
    import threading

    g = ProcessorGrid((2,))
    sub = g[0:1]
    ctx = KaliCtx(0, g)
    tags: list = []

    def grab():
        out = []
        for _ in range(1000):
            out.append(ctx.next_tag(g))
            out.append(ctx.next_tag(sub))
        tags.extend(out)

    threads = [threading.Thread(target=grab) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(set(tags)) == len(tags) == 16000
