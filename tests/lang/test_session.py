"""Session/Program API: isolation, replay, shim fidelity, key identity.

Covers the compile-and-run contract:

* two Sessions over the same arrays never share schedule or plan
  entries (isolation by construction);
* ``Program.run()`` twice on one Session replays (gather hit rate > 0
  on the second run) with bit-identical results, while a fresh Session
  starts at zero hits;
* the deprecated ``run_spmd`` / session-less ``KaliCtx.doall`` shims
  produce bit-identical traces and hit rates to the Session path on the
  Jacobi golden stencil;
* plan-cache keys are immune to CPython id() reuse (regression for the
  ``id(array)`` aliasing bug).
"""

import gc

import numpy as np
import pytest

import repro
from repro import Machine, ProcessorGrid, Session
from repro.compiler.commsched import clear_schedule_cache
from repro.compiler.schedule import clear_plan_cache
from repro.lang import Assign, DistArray, Doall, KaliCtx, Owner, loopvars, run_spmd
from repro.tensor.jacobi import build_jacobi_loop, jacobi_reference
from repro.util.errors import ReproDeprecationWarning, ValidationError


def _stencil_loop(g, n=12, name_prefix=""):
    u = DistArray((n,), g, dist=("block",), name=name_prefix + "u")
    v = DistArray((n,), g, dist=("block",), name=name_prefix + "v")
    u.from_global(np.arange(float(n)))
    (i,) = loopvars("i")
    loop = Doall(
        vars=(i,),
        ranges=[(1, n - 2)],
        on=Owner(v, (i,)),
        body=[Assign(v[i], u[i - 1] + u[i + 1])],
        grid=g,
    )
    return loop, u, v


def _trace_fingerprint(trace):
    """Everything observable about a trace, for bit-identity checks."""
    return (
        [(c.proc, c.start, c.end, c.label) for c in trace.computes],
        [
            (m.src, m.dst, m.tag, m.nbytes, m.hops, m.t_send, m.t_arrive)
            for m in trace.messages
        ],
        [(m.proc, m.time, m.label, m.payload) for m in trace.marks],
        dict(trace.finish_times),
    )


# ----------------------------------------------------------------------
# Isolation
# ----------------------------------------------------------------------


def test_two_sessions_never_share_schedules():
    """Caches warmed in one Session are invisible to another."""
    p = 2
    g = ProcessorGrid((p,))
    loop, u, v = _stencil_loop(g)

    def prog(ctx):
        yield from ctx.doall(loop)

    s1 = Session(Machine(n_procs=p), g)
    s2 = Session(Machine(n_procs=p), g)
    t1a = s1.run(prog)
    t1b = s1.run(prog)
    # second run in s1 replays: no build events at all
    assert "build" not in t1b.schedule_counts()
    assert s1.plans.kind_stats()["doall"]["misses"] == 1
    # a different Session starts cold: it must compile its own plan
    assert len(s2.plans) == 0 and s2.stats()["schedules"]["hits"] == 0
    t2 = s2.run(prog)
    assert t2.schedule_counts()["build"] >= 1
    assert s2.plans.kind_stats()["doall"]["misses"] == 1
    # and the two sessions' caches hold separate entries
    assert s1.plans is not s2.plans and s1.cache is not s2.cache
    assert _trace_fingerprint(t1a) == _trace_fingerprint(t2)


def test_two_sessions_cached_gather_isolated():
    p = 2
    g = ProcessorGrid((p,))
    A = DistArray((8,), g, dist=("block",), name="A")
    A.from_global(np.arange(8.0))
    idx = {0: np.array([[7]]), 1: np.array([[0]])}

    def prog(ctx):
        yield from ctx.cached_gather(g, A, idx[ctx.rank])

    s1 = Session(Machine(n_procs=p), g)
    s2 = Session(Machine(n_procs=p), g)
    s1.run(prog)
    s1.run(prog)
    assert s1.cache.by_direction["gather"] == {"hits": p, "misses": p}
    # the second session sees none of s1's schedules
    s2.run(prog)
    assert s2.cache.by_direction["gather"] == {"hits": 0, "misses": p}
    assert len(s1.cache) == p and len(s2.cache) == p


# ----------------------------------------------------------------------
# Program replay (acceptance criteria)
# ----------------------------------------------------------------------


def test_program_run_twice_replays_with_bit_identical_results():
    """Two runs of one Program: the second is pure replay (gather hit
    rate > 0, zero compiles) and bit-identical; a fresh Session starts
    at zero hits."""
    n, p, iters = 33, 2, 5
    rng = np.random.default_rng(3)
    f = 1e-3 * rng.standard_normal((n, n))

    session = Session(Machine(n_procs=p * p))
    assert session.stats()["schedules"]["hits"] == 0  # fresh: zero hits
    assert session.plans.stats()["hits"] == 0

    grid = ProcessorGrid((p, p))
    X = DistArray((n, n), grid, dist=("block", "block"), name="X")
    F = DistArray((n, n), grid, dist=("block", "block"), name="F")
    loop = build_jacobi_loop(X, F, n - 1, grid)
    program = session.compile(loop)

    t1 = program.run(F=f, X=np.zeros((n, n)), iters=iters)
    x1 = X.to_global().copy()
    t2 = program.run(X=np.zeros((n, n)), iters=iters)
    x2 = X.to_global().copy()

    assert t2.schedule_hit_rate("gather") > 0
    assert "build" not in t2.schedule_counts()
    # pure-doall programs report their replay ratio in hit_rates too
    assert program.stats()["hit_rates"]["doall"] > 0.9
    np.testing.assert_array_equal(x1, x2)
    np.testing.assert_allclose(x1, jacobi_reference(f, iters), rtol=1e-12)

    # a fresh Session compiling the same source starts cold again
    fresh = Session(Machine(n_procs=p * p))
    assert fresh.stats()["schedules"]["hits"] == 0
    assert fresh.plans.stats() == {"entries": 0, "hits": 0, "misses": 0}


def test_kf1_source_compiles_and_runs():
    src = """
processors procs(2)
real a(0:9) dist (block)
real b(0:9) dist (block)
doall (i) = [1, 8] on owner(b(i))
  b(i) = 2*a(i-1) + a(i+1)
end doall
"""
    prog = repro.compile(src, machine=Machine(n_procs=2))
    a = np.arange(10.0)
    prog.run(a=a)
    expect = 2 * a[0:8] + a[2:10]
    np.testing.assert_array_equal(prog.arrays["b"].to_global()[1:9], expect)
    # the parsed KF1Program object compiles too
    parsed = repro.parse_program(src)
    prog2 = parsed.compile(machine=Machine(n_procs=2))
    prog2.run(a=a)
    np.testing.assert_array_equal(
        prog2.arrays["b"].to_global(), prog.arrays["b"].to_global()
    )


def test_program_estimate_schedules_stats_explain():
    n, p = 17, 2
    g = ProcessorGrid((p,))
    loop, u, v = _stencil_loop(g, n=n)
    session = Session(Machine(n_procs=p), g)
    program = session.compile(loop)

    # estimate wraps predicted_time; overlapped never exceeds serialized
    est = program.estimate()
    assert est > 0
    assert program.estimate(overlap=True) <= est
    # frozen schedules are visible before any run
    scheds = program.schedules()
    assert len(scheds["gather"]) == p and scheds["scatter"] == []
    assert all(s.direction == "gather" for s in scheds["gather"])
    # explain names the loop and the per-rank wire volumes
    text = program.explain()
    assert "doall[i]" in text and "rank 0" in text
    # stats reflect the session's accounting
    program.run()
    st = program.stats()
    assert st["runs"] == 1
    assert st["plans"]["doall"]["misses"] == 1


def test_program_parsub_and_errors():
    p = 2
    g = ProcessorGrid((p,))
    seen = []

    def routine(ctx, tag):
        seen.append((ctx.rank, tag))
        yield from ()

    prog = repro.compile(routine, machine=Machine(n_procs=p), grid=g)
    prog.run("hello")
    assert sorted(seen) == [(0, "hello"), (1, "hello")]
    with pytest.raises(ValidationError, match="compiled loops"):
        prog.explain()
    with pytest.raises(ValidationError, match="compiled loops"):
        prog.schedules()

    loop, u, v = _stencil_loop(g)
    lprog = repro.compile(loop, machine=Machine(n_procs=p))
    with pytest.raises(ValidationError, match="unknown binding"):
        lprog.run(nosuch=np.zeros(12))
    with pytest.raises(ValidationError, match="positional"):
        lprog.run(1)
    with pytest.raises(ValidationError, match="cannot compile"):
        repro.compile(42)


def test_program_guard_rails():
    """Conflicting machines, duplicate array names, and parsub overlap
    are loud errors, not silent surprises."""
    p = 2
    g = ProcessorGrid((p,))
    loop, u, v = _stencil_loop(g)
    session = Session(Machine(n_procs=p), g)
    with pytest.raises(ValidationError, match="pass machine to the Session"):
        repro.compile(loop, session=session, machine=Machine(n_procs=p))
    with pytest.raises(ValidationError, match="grid mismatch"):
        repro.compile(loop, session=session, grid=ProcessorGrid((1,)))

    # two distinct arrays under one name compile and run fine, but the
    # shared name cannot be bound (which array would it mean?)
    loop2, _, _ = _stencil_loop(g)  # same names, different arrays
    prog2 = session.compile([loop, loop2])
    assert prog2.ambiguous_names == {"u", "v"}
    prog2.run()  # positional-free run needs no names
    with pytest.raises(ValidationError, match="ambiguous"):
        prog2.run(u=np.zeros(12))

    def routine(ctx):
        yield from ()

    prog = repro.compile(routine, machine=Machine(n_procs=p), grid=g)
    with pytest.raises(ValidationError, match="overlap applies to loop"):
        prog.run(overlap=True)


def test_history_bounded_but_runs_counted():
    p = 2
    g = ProcessorGrid((p,))
    s = Session(Machine(n_procs=p), g, max_history=3)

    def prog(ctx):
        yield from ()

    for _ in range(5):
        s.run(prog)
    assert len(s.history) == 3
    assert s.runs == 5 and s.stats()["runs"] == 5


def test_run_spmd_shim_forwards_routine_args_verbatim():
    """The legacy signature passes positional and keyword args straight
    to the routine (the shim must not let Session.run capture them)."""
    g = ProcessorGrid((2,))
    seen = []

    def routine(ctx, scale, offset=0):
        seen.append((ctx.rank, scale, offset))
        yield from ()

    with pytest.warns(ReproDeprecationWarning):
        run_spmd(Machine(n_procs=2), g, routine, 2, offset=7)
    assert seen == [(0, 2, 7), (1, 2, 7)]


def test_adi_line_plans_visible_in_session_stats():
    """The ADI line-solver plans ride in the session's PlanCache."""
    from repro.tensor.adi import adi_solve

    n, p = 16, 2
    rng = np.random.default_rng(5)
    f = 1e-3 * rng.standard_normal((n + 1, n + 1))
    session = Session()
    adi_solve(
        Machine(n_procs=p * p), ProcessorGrid((p, p)), f, iters=3,
        session=session,
    )
    kinds = session.plans.kind_stats()
    assert "adi-line" in kinds and "doall" in kinds
    # one line plan per (axis, rank) compiled, then replayed every sweep
    assert kinds["adi-line"]["misses"] == 2 * p * p
    assert kinds["adi-line"]["hits"] == 2 * p * p * 2  # iters-1 replays


# ----------------------------------------------------------------------
# Shim fidelity
# ----------------------------------------------------------------------


def _jacobi_session_trace(n, p, iters, f):
    grid = ProcessorGrid((p, p))
    X = DistArray((n, n), grid, dist=("block", "block"), name="X")
    F = DistArray((n, n), grid, dist=("block", "block"), name="F")
    F.from_global(f)
    loop = build_jacobi_loop(X, F, n - 1, grid)

    def prog(ctx):
        for _ in range(iters):
            yield from ctx.doall(loop)

    trace = Session(Machine(n_procs=p * p), grid).run(prog)
    return X.to_global(), trace


def test_run_spmd_shim_bit_identical_to_session_path():
    """The deprecated launcher must match the Session path exactly:
    same trace events, same schedule hit rates, same results."""
    n, p, iters = 17, 2, 3
    rng = np.random.default_rng(11)
    f = 1e-3 * rng.standard_normal((n, n))

    x_new, t_new = _jacobi_session_trace(n, p, iters, f)

    clear_plan_cache()
    clear_schedule_cache()
    grid = ProcessorGrid((p, p))
    X = DistArray((n, n), grid, dist=("block", "block"), name="X")
    F = DistArray((n, n), grid, dist=("block", "block"), name="F")
    F.from_global(f)
    loop = build_jacobi_loop(X, F, n - 1, grid)

    def prog(ctx):
        for _ in range(iters):
            yield from ctx.doall(loop)

    with pytest.warns(ReproDeprecationWarning):
        t_old = run_spmd(Machine(n_procs=p * p), grid, prog)
    clear_plan_cache()

    np.testing.assert_array_equal(X.to_global(), x_new)
    assert _trace_fingerprint(t_old) == _trace_fingerprint(t_new)
    assert t_old.schedule_hit_rate("gather") == t_new.schedule_hit_rate("gather")
    assert t_old.schedule_counts() == t_new.schedule_counts()


def test_sessionless_ctx_doall_shim_bit_identical():
    """Hand-wired KaliCtx programs (no Session) still execute through
    the default caches, warn, and match the Session path exactly."""
    n, p, iters = 17, 2, 2
    rng = np.random.default_rng(13)
    f = 1e-3 * rng.standard_normal((n, n))

    x_new, t_new = _jacobi_session_trace(n, p, iters, f)

    clear_plan_cache()
    clear_schedule_cache()
    grid = ProcessorGrid((p, p))
    X = DistArray((n, n), grid, dist=("block", "block"), name="X")
    F = DistArray((n, n), grid, dist=("block", "block"), name="F")
    F.from_global(f)
    loop = build_jacobi_loop(X, F, n - 1, grid)

    def prog(ctx):
        for _ in range(iters):
            yield from ctx.doall(loop)

    machine = Machine(n_procs=p * p)
    programs = {r: prog(KaliCtx(r, grid, run_id=None)) for r in grid.linear}
    with pytest.warns(ReproDeprecationWarning):
        t_old = machine.run(programs)
    clear_plan_cache()

    np.testing.assert_array_equal(X.to_global(), x_new)
    assert _trace_fingerprint(t_old) == _trace_fingerprint(t_new)


# ----------------------------------------------------------------------
# Cache-key identity: uid, never id()
# ----------------------------------------------------------------------


def test_plan_keys_survive_id_reuse():
    """CPython reuses object addresses after GC: a freed array's plan
    key must never alias a live one's.  Regression for keying Owner/Ref
    on id(array): allocate a batch of arrays, record their Owner keys by
    address, free them, allocate a fresh batch -- some land on recycled
    addresses -- and check that no freed array's key matches a live
    one's (under id() keys they collide exactly)."""
    g = ProcessorGrid((2,))
    (i,) = loopvars("i")

    def batch(n):
        return [DistArray((8,), g, dist=("block",), name="u") for _ in range(n)]

    old = batch(100)
    old_keys = {id(a): Owner(a, (i,)).key() for a in old}
    del old
    gc.collect()

    reused = 0
    for a in batch(300):
        stale_key = old_keys.get(id(a))
        if stale_key is None:
            continue
        reused += 1
        assert Owner(a, (i,)).key() != stale_key, (
            "id() reuse aliased a freed array's plan key with a live one's"
        )
        assert a[i].key() != ("ref",) + stale_key[1:]
    if reused == 0:
        pytest.skip("allocator never recycled an address; nothing to check")


def test_owner_and_ref_keys_use_uid():
    g = ProcessorGrid((2,))
    A = DistArray((8,), g, dist=("block",), name="A")
    (i,) = loopvars("i")
    assert A.uid in Owner(A, (i,)).key()
    assert A.uid in A[i].key()
    assert id(A) not in Owner(A, (i,)).key()
