"""Tests for owner-to-owner redistribution (repartition TransferSchedules).

Covers the acceptance contract: round-trip value preservation across
block/cyclic/block-cyclic layouts, bit-identity of schedule replay vs.
first build, cache hits on repeated layout flips, and the golden-trace
assertion that repartition moves strictly fewer bytes than the old
gather-to-all path.
"""

import numpy as np
import pytest

from repro.compiler import ScheduleCache, repartition_pieces
from repro.lang import BlockCyclic, DistArray, ProcessorGrid
from repro.lang.dist import Distribution
from repro.machine import Machine
from repro.util.errors import ValidationError
from repro.session import Session


# ----------------------------------------------------------------------
# Host-side path (DistArray.redistribute)
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "layouts",
    [
        [("cyclic",), ("block",)],
        [(BlockCyclic(3),), ("cyclic",), ("block",)],
    ],
)
def test_host_roundtrip_preserves_values_1d(layouts):
    n, p = 23, 4  # deliberately not a multiple of p
    g = ProcessorGrid((p,))
    A = DistArray((n,), g, dist=("block",), name="A")
    ref = np.sin(np.arange(float(n)))
    A.from_global(ref)
    for dist in layouts:
        A.redistribute(dist)
        np.testing.assert_array_equal(A.to_global(), ref)


def test_host_roundtrip_preserves_values_2d():
    g = ProcessorGrid((2, 2))
    A = DistArray((7, 9), g, dist=("block", "block"), name="A")
    ref = np.arange(63.0).reshape(7, 9)
    A.from_global(ref)
    for dist in [("cyclic", "block"), (BlockCyclic(2), "cyclic"), ("block", "block")]:
        A.redistribute(dist)
        np.testing.assert_array_equal(A.to_global(), ref)


def test_host_redistribute_replicated_roundtrip():
    p = 3
    g = ProcessorGrid((p,))
    A = DistArray((10,), g, name="A")  # replicated
    ref = np.arange(10.0)
    A.from_global(ref)
    A.redistribute(("block",))
    np.testing.assert_array_equal(A.to_global(), ref)
    A.redistribute(("*",))
    np.testing.assert_array_equal(A.to_global(), ref)
    for rank in g.linear:  # every rank holds the full copy again
        np.testing.assert_array_equal(A.local(rank), ref)


def test_pieces_partition_the_array():
    """Every element of the new layout is written exactly once."""
    n, p = 12, 3
    g = ProcessorGrid((p,))
    A = DistArray((n,), g, dist=("block",), name="A")
    new_dist = Distribution(("cyclic",), A.shape, g.shape)
    seen = {r: np.zeros(new_dist.local_shape(g.coords_of(r)), dtype=int) for r in g.linear}
    for _src, dst, _src_locs, dst_locs in repartition_pieces(A, new_dist):
        seen[dst][dst_locs] += 1
    for r in g.linear:
        np.testing.assert_array_equal(seen[r], 1)


# ----------------------------------------------------------------------
# Collective path (ctx.redistribute)
# ----------------------------------------------------------------------


def _flip_program(A, dists, cache, out=None):
    def prog(ctx):
        for k, dist in enumerate(dists):
            yield from ctx.redistribute(A, dist, cache=cache)
            if out is not None and ctx.rank == 0:
                out.append(A.to_global().copy())

    return prog


def test_collective_redistribute_preserves_values_and_bumps_epoch():
    n, p = 16, 4
    g = ProcessorGrid((p,))
    A = DistArray((n,), g, dist=("block",), name="A")
    ref = np.arange(float(n)) * 2.0
    A.from_global(ref)
    cache = ScheduleCache()
    epoch0 = A.comm_epoch

    Session(Machine(n_procs=p), g).run(_flip_program(A, [("cyclic",)], cache))
    assert A.dist.spec_key() == (("cyclic",),)
    assert A.comm_epoch == epoch0 + 1  # one bump per collective, not per rank
    np.testing.assert_array_equal(A.to_global(), ref)


def test_repeated_flips_hit_schedule_cache():
    n, p = 16, 4
    g = ProcessorGrid((p,))
    A = DistArray((n,), g, dist=("block",), name="A")
    A.from_global(np.arange(float(n)))
    cache = ScheduleCache()
    flips = [("cyclic",), ("block",)] * 3

    trace = Session(Machine(n_procs=p), g).run(_flip_program(A, flips, cache))
    # two distinct transitions build once each; the other four replay
    assert cache.direction_stats() == {
        "repartition": {"hits": 4 * p, "misses": 2 * p}
    }
    assert trace.schedule_counts("repartition") == {"hit": 4 * p, "miss": 2 * p}
    np.testing.assert_array_equal(A.to_global(), np.arange(float(n)))


def test_replay_is_bit_identical_to_first_build():
    """The replayed flips must move byte-identical messages and produce
    byte-identical blocks, even with values mutated between flips."""
    n, p = 24, 3
    g = ProcessorGrid((p,))
    flips = [("cyclic",), ("block",)]

    def run(cache, sweeps):
        A = DistArray((n,), g, dist=("block",), name="A")
        A.from_global(np.arange(float(n)) * 0.5)
        traces = []
        for _ in range(sweeps):
            t = Session(Machine(n_procs=p), g).run(_flip_program(A, flips, cache))
            traces.append(t)
        return A, traces

    cache = ScheduleCache()
    A, traces = run(cache, 2)
    build_msgs = sorted((m.src, m.dst, m.nbytes) for m in traces[0].messages)
    replay_msgs = sorted((m.src, m.dst, m.nbytes) for m in traces[1].messages)
    assert build_msgs == replay_msgs  # replay == build on the wire

    fresh, (t_fresh,) = run(ScheduleCache(), 1)
    np.testing.assert_array_equal(A.to_global(), fresh.to_global())


def test_replay_observes_current_values():
    """Schedules cache the moves, not the data."""
    n, p = 12, 2
    g = ProcessorGrid((p,))
    A = DistArray((n,), g, dist=("block",), name="A")
    cache = ScheduleCache()
    for k in range(3):
        A.from_global(np.arange(float(n)) + 100.0 * k)
        Session(Machine(n_procs=p), g).run(_flip_program(A, [("cyclic",), ("block",)], cache))
        np.testing.assert_array_equal(A.to_global(), np.arange(float(n)) + 100.0 * k)


def test_consecutive_repartitions_with_message_free_flips():
    """Regression: a rank can race past one repartition's commit barrier
    into the next repartition before slower ranks run their (no-op)
    commit of the first.  When the second flip has no receives for that
    rank (same-layout flip, or relayout from a replicated source), it
    stages immediately -- staging keyed only by rank used to mix the two
    collectives' blocks and abort with '1/p ranks staged'."""
    n, p = 16, 4
    g = ProcessorGrid((p,))
    A = DistArray((n,), g, dist=("block",), name="A")
    ref = np.arange(float(n))
    A.from_global(ref)
    cache = ScheduleCache()

    # same-layout second flip: every rank's schedule is a pure self-move
    Session(Machine(n_procs=p), g).run(_flip_program(A, [("cyclic",), ("cyclic",)], cache))
    np.testing.assert_array_equal(A.to_global(), ref)

    # replicated -> distributed: again no receives anywhere
    B = DistArray((n,), g, name="B")
    B.from_global(ref)
    Session(Machine(n_procs=p), g).run(_flip_program(B, [("*",), ("block",)], cache))
    np.testing.assert_array_equal(B.to_global(), ref)
    assert B.dist.spec_key() == (("block",),)


def test_redistribute_of_section_rejected():
    """Sections inherit their base's layout: repartitioning one must be
    a loud ValidationError, not an AttributeError mid-simulation."""
    g = ProcessorGrid((2,))
    u = DistArray((4, 8), g, dist=("*", "block"), name="u")
    sec = u[0, :]
    cache = ScheduleCache()

    def prog(ctx):
        yield from ctx.redistribute(sec, ("block",), cache=cache)

    with pytest.raises(ValidationError, match="only whole DistArrays"):
        Session(Machine(n_procs=2), g).run(prog)


def test_collective_redistribute_invalidates_sections_and_gathers():
    n, p = 16, 2
    g = ProcessorGrid((p,))
    u = DistArray((4, n), g, dist=("*", "block"), name="u")
    u.from_global(np.arange(4.0 * n).reshape(4, n))
    sec = u[0, :]
    cache = ScheduleCache()
    idx = {0: np.array([[0, n - 1]]), 1: np.array([[1, 0]])}

    def prog(ctx):
        yield from ctx.cached_gather(g, u, idx[ctx.rank], cache=cache)
        yield from ctx.redistribute(u, ("*", "cyclic"), cache=cache)

    Session(Machine(n_procs=p), g).run(prog)
    # gather schedules of the old layout are gone; repartition schedules stay
    assert all(s.direction == "repartition" for s in cache._entries.values())
    with pytest.raises(ValidationError, match="stale section"):
        sec.local(0)


# ----------------------------------------------------------------------
# Golden trace: owner-to-owner beats gather-to-all
# ----------------------------------------------------------------------


def _gather_to_all_relayout(machine, A, dist):
    """The seed's redistribution strategy, spelled as messages: gather
    every block to a root, assemble the global array, broadcast it, and
    re-slice locally -- what ``to_global()``/``from_global()`` would
    cost if the host-side loops were real communication."""
    g = A.grid
    new_dist = Distribution(dist, A.shape, g.shape)
    shape = A.shape

    def prog(ctx):
        me = ctx.rank
        blocks = yield from ctx.gather(g, np.ascontiguousarray(A.local(me)), root=g.linear[0])
        if ctx.rank == g.linear[0]:
            full = np.zeros(shape, dtype=A.dtype)
            for rank, block in zip(g.linear, blocks):
                full[np.ix_(*A.owned_lists(rank))] = block
        else:
            full = None
        full = yield from ctx.bcast(g, full, root=g.linear[0])
        mine = new_dist.owned_lists(g.coords_of(me))
        A._stage_repartition(me, np.ascontiguousarray(full[np.ix_(*mine)]), "g2a")
        from repro.machine.ops import Barrier

        yield Barrier(group=tuple(g.linear), tag="g2a-commit")
        A._commit_repartition(new_dist, "g2a")

    return Session(machine, g).run(prog)


def test_golden_repartition_beats_gather_to_all():
    """n=12, p=3, block -> cyclic: exactly 6 owner-to-owner messages of
    48 total bytes, strictly fewer than the gather-to-all relayout."""
    n, p = 12, 3
    g = ProcessorGrid((p,))
    ref = np.arange(float(n))

    A = DistArray((n,), g, dist=("block",), name="A")
    A.from_global(ref)
    cache = ScheduleCache()
    t_sched = Session(Machine(n_procs=p), g).run(_flip_program(A, [("cyclic",)], cache))
    np.testing.assert_array_equal(A.to_global(), ref)

    B = DistArray((n,), g, dist=("block",), name="B")
    B.from_global(ref)
    t_g2a = _gather_to_all_relayout(Machine(n_procs=p), B, ("cyclic",))
    np.testing.assert_array_equal(B.to_global(), ref)
    assert B.dist.spec_key() == A.dist.spec_key()

    # golden: every off-diagonal old-block/new-block intersection is one
    # element here -> 6 messages x 8 bytes
    assert t_sched.message_count() == 6
    assert t_sched.total_bytes() == 48
    # the old path ships whole blocks to the root plus the whole array
    # down the broadcast tree
    assert t_g2a.total_bytes() == 2 * 4 * 8 + 2 * n * 8
    assert t_sched.total_bytes() < t_g2a.total_bytes()
    assert t_sched.message_count() == t_g2a.message_count() + 2
    # owner-to-owner: no repartition message ever carries the full array
    assert all(m.nbytes < n * 8 for m in t_sched.messages)
