"""Unit tests for processor grids and slicing."""

import numpy as np
import pytest

from repro.lang import ProcessorGrid
from repro.util.errors import ValidationError


def test_grid_basic_layout():
    g = ProcessorGrid((2, 3))
    assert g.size == 6
    assert g.shape == (2, 3)
    assert g.linear == [0, 1, 2, 3, 4, 5]
    assert g.rank_at((1, 2)) == 5
    assert g.coords_of(4) == (1, 1)


def test_grid_1d_from_int():
    g = ProcessorGrid(4)
    assert g.shape == (4,)
    assert g.rank_at((3,)) == 3


def test_slice_column_drops_dim():
    g = ProcessorGrid((2, 3))
    col = g[:, 1]
    assert col.shape == (2,)
    assert col.linear == [1, 4]


def test_slice_row():
    g = ProcessorGrid((2, 3))
    row = g[0]
    assert row.shape == (3,)
    assert row.linear == [0, 1, 2]


def test_single_processor_slice_is_1d_grid():
    g = ProcessorGrid((2, 2))
    one = g[1, 1]
    assert one.shape == (1,)
    assert one.linear == [3]


def test_contains_and_subset():
    g = ProcessorGrid((2, 2))
    col = g[:, 0]
    assert col.contains(2)
    assert not col.contains(1)
    assert col.is_subset_of(g)
    assert not g.is_subset_of(col)


def test_key_and_equality():
    g1 = ProcessorGrid((2, 2))
    g2 = ProcessorGrid((2, 2))
    assert g1 == g2
    assert g1.key() == g2.key()
    assert hash(g1) == hash(g2)
    assert g1[:, 0] != g1[:, 1]


def test_coords_of_missing_rank_raises():
    g = ProcessorGrid((2, 2))
    with pytest.raises(ValidationError):
        g.coords_of(9)


def test_bad_shapes_rejected():
    with pytest.raises(ValidationError):
        ProcessorGrid((0, 2))
    with pytest.raises(ValidationError):
        ProcessorGrid((2,), ranks=np.array([1, 1]))


def test_explicit_ranks_roundtrip():
    g = ProcessorGrid((2,), ranks=np.array([5, 3]))
    assert g.rank_at((0,)) == 5
    assert g.coords_of(3) == (1,)
