"""Unit tests for distributed arrays and sections."""

import numpy as np
import pytest

from repro.lang import DistArray, ProcessorGrid
from repro.util.errors import ValidationError


def test_block_block_local_shapes():
    g = ProcessorGrid((2, 2))
    X = DistArray((8, 8), g, dist=("block", "block"))
    for rank in g.linear:
        assert X.local(rank).shape == (4, 4)


def test_star_block_local_shapes():
    g = ProcessorGrid((3,))
    X = DistArray((5, 9), g, dist=("*", "block"))
    assert X.local(0).shape == (5, 3)


def test_replicated_default():
    g = ProcessorGrid((2, 2))
    s = DistArray((3,), g)  # no dist clause: replicated (paper rule)
    assert s.replicated
    for rank in g.linear:
        assert s.local(rank).shape == (3,)


def test_global_roundtrip_block():
    g = ProcessorGrid((2, 2))
    X = DistArray((6, 6), g, dist=("block", "block"))
    ref = np.arange(36, dtype=float).reshape(6, 6)
    X.from_global(ref)
    np.testing.assert_array_equal(X.to_global(), ref)


def test_global_roundtrip_cyclic():
    g = ProcessorGrid((3,))
    X = DistArray((10,), g, dist=("cyclic",))
    ref = np.arange(10.0)
    X.from_global(ref)
    np.testing.assert_array_equal(X.to_global(), ref)
    np.testing.assert_array_equal(X.local(1), [1.0, 4.0, 7.0])


def test_owner_rank_matches_layout():
    g = ProcessorGrid((2, 2))
    X = DistArray((8, 8), g, dist=("block", "block"))
    assert X.owner_rank((0, 0)) == 0
    assert X.owner_rank((7, 7)) == 3
    assert X.owner_rank((0, 7)) == 1


def test_get_set_global():
    g = ProcessorGrid((2,))
    X = DistArray((8,), g, dist=("block",))
    X.set_global((5,), 3.5)
    assert X.get_global((5,)) == 3.5
    assert X.local(1)[1] == 3.5


def test_set_global_replicated_writes_all_copies():
    g = ProcessorGrid((2,))
    s = DistArray((4,), g)
    s.set_global((2,), 9.0)
    assert s.local(0)[2] == 9.0
    assert s.local(1)[2] == 9.0


def test_section_fixes_distributed_dim():
    g = ProcessorGrid((2, 2))
    u = DistArray((4, 8, 8), g, dist=("*", "block", "block"), name="u")
    plane = u[:, :, 5]
    assert plane.shape == (4, 8)
    # dim2 owner of 5 is grid column 1 -> plane lives on procs[:, 1]
    assert plane.grid.linear == [1, 3]
    assert plane.local(1).shape == (4, 4)


def test_section_views_share_memory():
    g = ProcessorGrid((2,))
    u = DistArray((4, 8), g, dist=("*", "block"), name="u")
    col = u[:, 2]
    col.local(0)[1] = 7.0
    assert u.local(0)[1, 2] == 7.0


def test_section_global_roundtrip():
    g = ProcessorGrid((2, 2))
    u = DistArray((3, 4, 4), g, dist=("*", "block", "block"))
    ref = np.arange(48, dtype=float).reshape(3, 4, 4)
    u.from_global(ref)
    plane = u[:, :, 1]
    np.testing.assert_array_equal(plane.to_global(), ref[:, :, 1])


def test_section_row_of_2d():
    g = ProcessorGrid((2, 2))
    r = DistArray((8, 8), g, dist=("block", "block"), name="r")
    row = r[3, :]
    assert row.shape == (8,)
    assert row.grid.linear == [0, 1]  # row 3 owned by grid row 0
    assert row.local(0).shape == (4,)


def test_section_rejects_partial_slices():
    g = ProcessorGrid((2,))
    X = DistArray((8, 8), g, dist=("*", "block"))
    with pytest.raises(ValidationError):
        X[0:4, :]


def test_section_out_of_bounds():
    g = ProcessorGrid((2,))
    X = DistArray((8, 8), g, dist=("*", "block"))
    with pytest.raises(ValidationError):
        X[:, 8]


def test_nonowner_local_raises():
    g = ProcessorGrid((2, 2))
    X = DistArray((8, 8), g, dist=("block", "block"))
    with pytest.raises(ValidationError):
        X.local(99)


def test_section_of_redistributed_base_is_stale():
    """Sections snapshot the base layout; redistribution must make them
    error loudly instead of silently reading the wrong ranks."""
    import pytest

    from repro.util.errors import ValidationError

    g = ProcessorGrid((2,))
    u = DistArray((4, 6), g, dist=("block", "*"), name="u")
    u.from_global(np.arange(24.0).reshape(4, 6))
    sec = u[0, :]
    assert float(sec.local(sec.grid.linear[0])[1]) == 1.0

    u.redistribute(("*", "block"))
    with pytest.raises(ValidationError, match="stale section"):
        sec.local(sec.grid.linear[0])
    with pytest.raises(ValidationError, match="stale section"):
        sec.grid_dim_of(0)

    # a fresh slice of the new layout works
    fresh = u[0, :]
    assert float(fresh.local(fresh.grid.linear[0])[1]) == 1.0
