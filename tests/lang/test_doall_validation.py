"""Validation paths of the doall IR and on-clauses."""

import pytest

from repro.lang import (
    Assign,
    Const,
    DistArray,
    Doall,
    OnProc,
    Owner,
    ProcessorGrid,
    loopvars,
)
from repro.util.errors import CompileError, ValidationError


def setup():
    g = ProcessorGrid((2, 2))
    X = DistArray((8, 8), g, dist=("block", "block"), name="X")
    i, j = loopvars("i j")
    return g, X, i, j


def test_duplicate_loop_vars_rejected():
    g, X, i, j = setup()
    i2 = loopvars("i")[0]
    with pytest.raises(ValidationError):
        Doall((i, i2), [(0, 3), (0, 3)], Owner(X, (i, i2)),
              [Assign(X[i, i2], Const(1.0))], g)


def test_range_arity_mismatch():
    g, X, i, j = setup()
    with pytest.raises(ValidationError):
        Doall((i, j), [(0, 3)], Owner(X, (i, j)), [Assign(X[i, j], Const(1.0))], g)


def test_bad_range_tuple():
    g, X, i, j = setup()
    with pytest.raises(ValidationError):
        Doall((i,), [(0,)], Owner(X, (i, 0)), [Assign(X[i, 0], Const(1.0))], g)
    with pytest.raises(ValidationError):
        Doall((i,), [(0, 3, 0)], Owner(X, (i, 0)), [Assign(X[i, 0], Const(1.0))], g)


def test_empty_body_rejected():
    g, X, i, j = setup()
    with pytest.raises(ValidationError):
        Doall((i, j), [(0, 3), (0, 3)], Owner(X, (i, j)), [], g)


def test_non_assign_body_rejected():
    g, X, i, j = setup()
    with pytest.raises(ValidationError):
        Doall((i, j), [(0, 3), (0, 3)], Owner(X, (i, j)), ["X[i,j]=1"], g)


def test_on_clause_must_be_clause():
    g, X, i, j = setup()
    with pytest.raises(ValidationError):
        Doall((i, j), [(0, 3), (0, 3)], "owner", [Assign(X[i, j], Const(1.0))], g)


def test_owner_arity_checked():
    g, X, i, j = setup()
    with pytest.raises(CompileError):
        Owner(X, (i,))


def test_onproc_arity_checked():
    g, X, i, j = setup()
    (ip,) = loopvars("ip")
    with pytest.raises(CompileError):
        OnProc(g, (ip,))


def test_array_outside_grid_rejected():
    g, X, i, j = setup()
    col = g[:, 0]
    with pytest.raises(CompileError):
        # loop grid is the column but X lives on the full grid
        Doall((i, j), [(0, 7), (0, 7)], Owner(X, (i, j)),
              [Assign(X[i, j], Const(1.0))], col)


def test_key_stability_and_distinction():
    g, X, i, j = setup()
    body = [Assign(X[i, j], X[i, j] + 1.0)]
    l1 = Doall((i, j), [(0, 3), (0, 3)], Owner(X, (i, j)), body, g)
    l2 = Doall((i, j), [(0, 3), (0, 3)], Owner(X, (i, j)), body, g)
    l3 = Doall((i, j), [(0, 4), (0, 3)], Owner(X, (i, j)), body, g)
    assert l1.key() == l2.key()
    assert l1.key() != l3.key()


def test_arrays_enumerates_reads_and_writes():
    g, X, i, j = setup()
    Y = DistArray((8, 8), g, dist=("block", "block"), name="Y")
    loop = Doall((i, j), [(0, 7), (0, 7)], Owner(X, (i, j)),
                 [Assign(Y[i, j], X[i, j])], g)
    names = sorted(a.name for a in loop.arrays())
    assert names == ["X", "Y"]
