"""Tests for the sequential and message-passing baselines and LoC counts."""

import numpy as np
import pytest

from repro.baselines import (
    count_loc,
    jacobi_message_passing,
    jacobi_sequential,
    loc_report,
    mp_jacobi_node,
)
from repro.machine import Machine
from repro.tensor.jacobi import jacobi_reference
from repro.util.errors import ValidationError


def poisson_f(n, seed=0):
    rng = np.random.default_rng(seed)
    f = 0.01 * rng.standard_normal((n + 1, n + 1))
    f[0] = f[-1] = 0.0
    f[:, 0] = f[:, -1] = 0.0
    return f


def test_sequential_matches_reference():
    f = poisson_f(10)
    np.testing.assert_allclose(jacobi_sequential(f, 6), jacobi_reference(f, 6))


@pytest.mark.parametrize("p", [1, 2, 3])
def test_message_passing_matches_sequential(p):
    f = poisson_f(12, seed=p)
    m = Machine(n_procs=p * p)
    X, trace = jacobi_message_passing(m, p, f, iters=5)
    np.testing.assert_allclose(X, jacobi_sequential(f, 5), rtol=1e-13, atol=1e-15)


def test_message_passing_neighbor_messages_only():
    f = poisson_f(12, seed=9)
    m = Machine(n_procs=9)
    _, trace = jacobi_message_passing(m, 3, f, iters=1)
    # 3x3 grid: 12 interior edges, 2 messages each
    assert trace.message_count() == 24
    for msg in trace.messages:
        si, sj = divmod(msg.src, 3)
        di, dj = divmod(msg.dst, 3)
        assert abs(si - di) + abs(sj - dj) == 1  # strict 4-neighbor pattern


def test_message_passing_validates():
    f = poisson_f(4)
    with pytest.raises(ValidationError):
        jacobi_message_passing(Machine(n_procs=4), 4, f, 1)  # machine too small
    with pytest.raises(ValidationError):
        jacobi_message_passing(Machine(n_procs=100), 4, f[:3, :], 1)


def test_count_loc_ignores_docs_comments_blanks():
    def tiny(x):
        """Docstring should not count."""
        # comment
        y = x + 1

        return y

    assert count_loc(tiny) == 3  # def, assign, return


def test_loc_report_ratio_shape():
    """The paper's claim: MP version is several times the sequential one."""
    from repro.tensor.jacobi import build_jacobi_loop, jacobi_kf1

    report = loc_report(
        {
            "sequential": jacobi_sequential,
            "message_passing": [mp_jacobi_node, jacobi_message_passing],
            "kf1": [build_jacobi_loop, jacobi_kf1],
        }
    )
    assert report["message_passing"] > 3 * report["sequential"]
    assert report["kf1"] < report["message_passing"]
