"""The prune-then-execute tuner against the simulator's synthetic clock.

On the sim clock the estimator's claims are checkable exactly: the
per-sweep message and byte counts it reads off the frozen transfer
schedules must match the executed trace *to the byte*, and its
predicted time is a per-rank serial upper bound the executed makespan
must come in under.  A hypothesis sweep over stencil programs then
pins the headline safety property: the tuner's winner is never
predicted worse than the program's own (seed) layout -- tuning can
refuse to move, but never recommends a predicted regression.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro import Machine, Session, TuneSpace, tune
from repro.machine import CostModel
from repro.util.errors import ValidationError

N = 20


def _jacobi_src(n=N):
    return f"""
processors procs(2, 2)
real X(0:{n}, 0:{n}) dist (block, block)
real F(0:{n}, 0:{n}) dist (block, block)
doall (i, j) = [1, {n - 1}] * [1, {n - 1}] on owner(X(i, j))
  X(i, j) = 0.25*(X(i+1, j) + X(i-1, j) + X(i, j+1) + X(i, j-1)) - F(i, j)
end doall
"""


def _adi_src(n=N):
    return f"""
processors procs(2, 2)
real X(0:{n}, 0:{n}) dist (block, block)
real F(0:{n}, 0:{n}) dist (block, block)
doall (i, j) = [1, {n - 1}] * [1, {n - 1}] on owner(X(i, j))
  X(i, j) = 0.5*(X(i, j-1) + X(i, j+1)) - F(i, j)
end doall
doall (i, j) = [1, {n - 1}] * [1, {n - 1}] on owner(X(i, j))
  X(i, j) = 0.5*(X(i-1, j) + X(i+1, j)) - F(i, j)
end doall
"""


def _compiled(src, n=N, seed=5):
    sess = Session(Machine(n_procs=4, cost=CostModel.hypercube_1989()))
    prog = repro.compile(src, session=sess)
    rng = np.random.default_rng(seed)
    prog.arrays["X"].from_global(np.zeros((n + 1, n + 1)))
    prog.arrays["F"].from_global(1e-3 * rng.standard_normal((n + 1, n + 1)))
    return sess, prog


@pytest.mark.parametrize("src", [_jacobi_src(), _adi_src()],
                         ids=["jacobi", "adi"])
def test_sim_clock_prediction_bounds(src):
    sess, prog = _compiled(src)
    result = tune(prog, iters=3)
    assert result.mode == "sim"
    executed = [c for c in result.candidates if c.executed]
    assert executed and len(executed) == result.n_executed <= result.budget
    for c in executed:
        # comm volumes are exact: read off the same frozen schedules
        # the executor replays
        assert c.measured_msgs == c.pred_msgs
        assert c.measured_bytes == c.pred_bytes
        # predicted time is a serial upper bound on the makespan
        assert c.measured <= c.predicted * (1 + 1e-9)
    assert result.mean_error() is not None
    # the winner really executed, and the seed always did too
    assert result.winner.executed and result.seed.executed
    # every executed candidate computed the same answer
    outs = [c.program.arrays["X"].to_global() for c in executed]
    for out in outs[1:]:
        assert np.allclose(out, outs[0])


def test_budget_zero_predicts_only():
    sess, prog = _compiled(_jacobi_src())
    result = tune(prog, budget=0)
    assert result.n_executed == 0
    assert result.winner is result.ranked()[0]
    assert result.mean_error() is None


def test_apply_moves_the_program():
    sess, prog = _compiled(_jacobi_src())
    result = tune(prog, iters=2)
    want = result.winner.program.arrays["X"].to_global().copy()
    result.apply()
    assert prog.grid.shape == result.winner.grid_shape
    prog.run(iters=2)
    assert np.array_equal(prog.arrays["X"].to_global(), want)


def test_tune_refuses_foreign_session():
    sess, prog = _compiled(_jacobi_src())
    with pytest.raises(ValidationError):
        tune(prog, session=Session(Machine(n_procs=4)))


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=8, max_value=24),
    dist=st.sampled_from([("block", "block"), ("block", "*"),
                          ("*", "block"), ("cyclic", "cyclic")]),
    shape=st.sampled_from([(2, 2), (4,), (1, 4), (4, 1)]),
    off=st.integers(min_value=1, max_value=2),
)
def test_winner_never_predicted_worse_than_seed(n, dist, shape, off):
    """The hypothesis sweep: whatever layout a program starts in, the
    tuner's recommendation is never predicted slower than staying put."""
    # skip infeasible seed pairings (distributed dims must match grid rank)
    n_dist = sum(1 for s in dist if s != "*")
    if n_dist != len(shape):
        return
    procs = ", ".join(str(s) for s in shape)
    clause = "(" + ", ".join(dist) + ")"
    src = f"""
processors procs({procs})
real X(0:{n}, 0:{n}) dist {clause}
real F(0:{n}, 0:{n}) dist {clause}
doall (i, j) = [{off}, {n - off}] * [{off}, {n - off}] on owner(X(i, j))
  X(i, j) = 0.5*(X(i-{off}, j) + X(i, j+{off})) - F(i, j)
end doall
"""
    sess = Session(Machine(n_procs=4, cost=CostModel.hypercube_1989()))
    prog = repro.compile(src, session=sess)
    prog.arrays["X"].from_global(np.zeros((n + 1, n + 1)))
    prog.arrays["F"].from_global(np.full((n + 1, n + 1), 0.25))
    result = tune(prog, iters=1, space=TuneSpace(overlap=(False,)))
    assert result.winner.predicted <= result.seed.predicted * (1 + 1e-9)
    assert result.seed.executed
    assert result.winner.measured <= result.seed.measured
