"""Calibration fits are deterministic, auditable, and versioned.

The measurement half of ``repro.machine.calibrate`` times real host
seconds and cannot be pinned; the *fit* half can and is: a fixed
sample table must always produce the same ``CalibratedCostModel``,
round-trip losslessly through its wire formats, and refuse tables from
an incompatible calibration version.
"""

import pickle

import pytest

from repro.machine.calibrate import (
    CALIBRATION_VERSION,
    CalibratedCostModel,
    Sample,
    fit_calibration,
)
from repro.machine.costmodel import CostModel
from repro.util.errors import ValidationError

#: a fixed, hand-made sample table: compute lines with known slope and
#: intercept (seconds = 1e-6 + 2e-9 * flops for every family), and
#: transfer residuals on the plane seconds = 1e-5*msgs + 1e-9*nbytes
FIXED_SAMPLES = (
    Sample("compute", "stencil", flops=1000, seconds=1e-6 + 2e-9 * 1000),
    Sample("compute", "stencil", flops=4000, seconds=1e-6 + 2e-9 * 4000),
    Sample("compute", "stencil", flops=16000, seconds=1e-6 + 2e-9 * 16000),
    Sample("compute", "axpy", flops=1000, seconds=1e-6 + 2e-9 * 1000),
    Sample("compute", "axpy", flops=4000, seconds=1e-6 + 2e-9 * 4000),
    Sample("compute", "scale", flops=2000, seconds=1e-6 + 2e-9 * 2000),
    Sample("compute", "scale", flops=8000, seconds=1e-6 + 2e-9 * 8000),
    Sample("transfer", "simulator", flops=100, msgs=2, nbytes=1024,
           seconds=1e-6 + 2e-9 * 100 + 1e-5 * 2 + 1e-9 * 1024),
    Sample("transfer", "simulator", flops=100, msgs=8, nbytes=1024,
           seconds=1e-6 + 2e-9 * 100 + 1e-5 * 8 + 1e-9 * 1024),
    Sample("transfer", "simulator", flops=100, msgs=2, nbytes=65536,
           seconds=1e-6 + 2e-9 * 100 + 1e-5 * 2 + 1e-9 * 65536),
    Sample("transfer", "simulator", flops=100, msgs=8, nbytes=65536,
           seconds=1e-6 + 2e-9 * 100 + 1e-5 * 8 + 1e-9 * 65536),
)


def test_fit_is_deterministic():
    a = fit_calibration(FIXED_SAMPLES, host="h", backend="simulator")
    b = fit_calibration(FIXED_SAMPLES, host="h", backend="simulator")
    assert a == b
    assert a.flop_time == b.flop_time
    assert a.alpha == b.alpha and a.beta == b.beta
    assert a.sweep_overhead == b.sweep_overhead
    assert a.ufunc_flop_times == b.ufunc_flop_times
    # shuffling the table leaves the fitted model unchanged up to float
    # summation order: the fit groups by family, never by position
    shuffled = FIXED_SAMPLES[::-1]
    c = fit_calibration(shuffled, host="h", backend="simulator")
    assert c.flop_time == pytest.approx(a.flop_time, rel=1e-12)
    assert c.alpha == pytest.approx(a.alpha, rel=1e-12)
    assert c.beta == pytest.approx(a.beta, rel=1e-12)
    assert c.sweep_overhead == pytest.approx(a.sweep_overhead, rel=1e-12)


def test_fit_recovers_planted_coefficients():
    cal = fit_calibration(FIXED_SAMPLES, host="h")
    assert cal.flop_time == pytest.approx(2e-9, rel=1e-6)
    assert cal.sweep_overhead == pytest.approx(1e-6, rel=1e-6)
    assert cal.alpha == pytest.approx(1e-5, rel=1e-3)
    assert cal.beta == pytest.approx(1e-9, rel=1e-3)
    # the synthetic table lies exactly on the fitted lines
    r2 = dict(cal.r2)
    assert r2["compute"] == pytest.approx(1.0, abs=1e-9)
    assert r2["transfer"] == pytest.approx(1.0, abs=1e-6)
    # unused postal-model terms are pinned at zero on a host fit
    assert cal.send_overhead == 0.0 and cal.gamma_hop == 0.0


def test_fit_report_residuals_match_model():
    cal = fit_calibration(FIXED_SAMPLES, host="h")
    rep = cal.fit_report()
    assert rep["version"] == CALIBRATION_VERSION
    assert len(rep["residuals"]) == len(FIXED_SAMPLES)
    for row in rep["residuals"]:
        assert row["residual_s"] == pytest.approx(0.0, abs=1e-9)
    assert len(rep["samples"]) == len(FIXED_SAMPLES)


def test_wire_roundtrips(tmp_path):
    cal = fit_calibration(FIXED_SAMPLES, host="h", backend="multiprocessing")
    # dict / JSON file
    again = CalibratedCostModel.from_dict(cal.to_dict())
    assert again == cal and again.samples == cal.samples
    path = str(tmp_path / "cal.json")
    assert CalibratedCostModel.load(cal.save(path)) == cal
    # pickle (how a Checkpoint ships it)
    assert pickle.loads(pickle.dumps(cal)) == cal
    # it is a real CostModel: the simulator clock can consume it
    assert isinstance(cal, CostModel)


def test_version_gate():
    cal = fit_calibration(FIXED_SAMPLES, host="h")
    data = cal.to_dict()
    data["version"] = CALIBRATION_VERSION + 1
    with pytest.raises(ValidationError):
        CalibratedCostModel.from_dict(data)
    data = cal.to_dict()
    data["mystery_field"] = 7
    with pytest.raises(ValidationError):
        CalibratedCostModel.from_dict(data)


def test_fit_needs_compute_samples():
    with pytest.raises(ValidationError):
        fit_calibration([Sample("transfer", "simulator", msgs=1,
                                nbytes=8, seconds=1e-5)])
