"""``Session.morph("auto")`` -- the tuner-picked morph is just a morph.

``morph("auto")`` asks the tuner which grid the session's live
programs should run on, then performs an ordinary elastic morph to it.
The contract pinned here: the auto morph is *bit-identical* -- results
and subsequent run trace -- to an explicit ``morph(grid)`` to the same
chosen grid, on the simulator and the multiprocessing backend alike,
and the evidence lands on ``session.last_tune``.
"""

import numpy as np
import pytest

import repro
from repro import Machine, ProcessorGrid, Session
from repro.serve import Server
from repro.tune import TuneResult
from repro.util.errors import ValidationError

N = 18
SRC = f"""
processors procs(2, 2)
real X(0:{N - 1}, 0:{N - 1}) dist (block, block)
real F(0:{N - 1}, 0:{N - 1}) dist (block, block)
doall (i, j) = [1, {N - 2}] * [1, {N - 2}] on owner(X(i, j))
  X(i, j) = 0.25*(X(i+1, j) + X(i-1, j) + X(i, j+1) + X(i, j-1)) - F(i, j)
end doall
"""


def trace_sig(trace):
    return (
        [(m.src, m.dst, m.tag, m.nbytes, m.t_send, m.t_arrive, m.t_recv)
         for m in trace.messages],
        [(m.proc, m.label, m.payload) for m in trace.marks],
        [(c.proc, c.start, c.end, c.label) for c in trace.computes],
    )


def forcing():
    return 1e-3 * np.random.default_rng(13).standard_normal((N, N))


def fresh(backend=None):
    sess = Session(Machine(n_procs=4), backend=backend)
    prog = repro.compile(SRC, session=sess)
    return sess, prog


@pytest.mark.parametrize("backend", [None, "multiprocessing"])
def test_morph_auto_bit_identical_to_explicit(backend):
    # the auto path: warm sweeps, then let the tuner pick the grid
    sess, prog = fresh(backend=backend)
    try:
        prog.run(X=np.zeros((N, N)), F=forcing(), iters=2)
        sess.morph("auto")
        chosen = prog.grid.shape
        assert isinstance(sess.last_tune, TuneResult)
        assert sess.last_tune.winner.grid_shape == chosen
        t_auto = prog.run(iters=2)
        got = prog.arrays["X"].to_global().copy()
    finally:
        sess.close_backend()

    # the explicit path: an ordinary morph to the same chosen grid
    ref_sess, ref_prog = fresh(backend=backend)
    try:
        ref_prog.run(X=np.zeros((N, N)), F=forcing(), iters=2)
        ref_sess.morph(ProcessorGrid(chosen))
        assert ref_prog.grid.shape == chosen
        t_ref = ref_prog.run(iters=2)
        want = ref_prog.arrays["X"].to_global()
    finally:
        ref_sess.close_backend()

    np.testing.assert_array_equal(got, want)
    assert trace_sig(t_auto) == trace_sig(t_ref)


def test_morph_auto_noop_when_already_best():
    """When the tuner picks the grid the session is already on, the
    morph is a no-op and everything keeps running bit-identically."""
    sess, prog = fresh()
    prog.run(X=np.zeros((N, N)), F=forcing(), iters=2)
    sess.morph("auto")
    first = prog.grid.shape
    before = prog.arrays["X"].to_global().copy()
    sess.morph("auto")  # already on the tuner's pick: must hold still
    assert prog.grid.shape == first
    np.testing.assert_array_equal(prog.arrays["X"].to_global(), before)


def test_morph_rejects_unknown_string():
    sess, _ = fresh()
    with pytest.raises(ValidationError):
        sess.morph("fastest")


def test_server_morph_auto_passthrough():
    """``Server.morph(prog, "auto")`` quiesces the pool, lets the tuner
    pick, and keeps serving bit-identical runs on the chosen grid."""
    with Server(machine=Machine(n_procs=4), threads=2) as srv:
        prog = srv.compile(SRC)
        srv.run(prog, X=np.zeros((N, N)), F=forcing(), iters=2)
        srv.morph(prog, "auto")
        chosen = prog.grid.shape
        assert isinstance(prog.session.last_tune, TuneResult)
        assert prog.session.last_tune.winner.grid_shape == chosen
        t_auto = srv.run(prog, iters=2)
        got = prog.arrays["X"].to_global().copy()

    with Server(machine=Machine(n_procs=4), threads=2) as ref_srv:
        ref = ref_srv.compile(SRC)
        ref_srv.run(ref, X=np.zeros((N, N)), F=forcing(), iters=2)
        ref_srv.morph(ref, ProcessorGrid(chosen))
        t_ref = ref_srv.run(ref, iters=2)
        want = ref.arrays["X"].to_global()

    np.testing.assert_array_equal(got, want)
    assert trace_sig(t_auto) == trace_sig(t_ref)
