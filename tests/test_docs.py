"""Documentation health: runnable doctests and unbroken intra-repo links.

Mirrors the CI docs job locally so a broken ``>>>`` example or a moved
file referenced from ``docs/`` or the README fails tier-1, not just CI.
"""

import doctest
import glob
import importlib
import importlib.util
import os

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _load_tool(name):
    path = os.path.join(REPO_ROOT, "tools", f"{name}.py")
    spec = importlib.util.spec_from_file_location(name, path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


run_doctests = _load_tool("run_doctests")
check_doc_links = _load_tool("check_doc_links")
check_public_api = _load_tool("check_public_api")


@pytest.mark.parametrize("module_name", run_doctests.DEFAULT_MODULES)
def test_public_api_doctests(module_name):
    mod = importlib.import_module(module_name)
    result = doctest.testmod(mod, verbose=False)
    assert result.failed == 0, f"{result.failed} doctest failure(s) in {module_name}"
    assert result.attempted > 0, f"no doctest examples found in {module_name}"


def _markdown_files():
    files = sorted(glob.glob(os.path.join(REPO_ROOT, "docs", "*.md")))
    files.append(os.path.join(REPO_ROOT, "README.md"))
    return files


def test_docs_tree_exists():
    names = {os.path.basename(p) for p in _markdown_files()}
    assert "architecture.md" in names
    assert "schedule-lifecycle.md" in names
    assert "api.md" in names


def test_public_api_matches_docs():
    """repro.__all__ must be exactly the documented surface: no
    accidental exports, no doc omissions, no dangling names."""
    assert check_public_api.check() == []


def test_public_api_checker_catches_drift(tmp_path):
    """The checker must flag an undocumented export and a phantom doc
    entry (guard against a regex that silently matches nothing)."""
    names = [n for n in __import__("repro").__all__ if n != "Session"]
    doc = tmp_path / "api.md"
    doc.write_text(
        "## Public surface\n\n"
        + " ".join(f"`{n}`" for n in names)
        + " `not_exported_anywhere`\n"
    )
    problems = check_public_api.check(str(doc))
    assert any("not_exported_anywhere" in p and "not exported" in p for p in problems)
    assert any("Session" in p and "not documented" in p for p in problems)


@pytest.mark.parametrize(
    "path", _markdown_files(), ids=[os.path.basename(p) for p in _markdown_files()]
)
def test_intra_repo_links_resolve(path):
    broken = check_doc_links.broken_links(path)
    assert not broken, f"broken links in {path}: {broken}"


def test_link_checker_catches_broken_links(tmp_path):
    """The checker must flag a dead target, and a stray unpaired
    backtick earlier in the file must not swallow the link."""
    doc = tmp_path / "x.md"
    doc.write_text(
        "a stray ` backtick\n\n[broken](does-not-exist.md)\n\nlater `code` span\n"
    )
    broken = check_doc_links.broken_links(str(doc))
    assert [t for t, _ in broken] == ["does-not-exist.md"]
    ok = tmp_path / "y.md"
    ok.write_text("see `[not](a-link.md)` in code, and [real](x.md)\n")
    assert check_doc_links.broken_links(str(ok)) == []
