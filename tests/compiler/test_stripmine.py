"""Unit tests for strip-mining iteration sets."""

import numpy as np
import pytest

from repro.compiler.stripmine import stripmine
from repro.lang import Assign, DistArray, Doall, OnProc, Owner, ProcessorGrid, loopvars
from repro.util.errors import CompileError


def make_loop_1d(n=12, p=4, dist="block", rng=None):
    g = ProcessorGrid((p,))
    X = DistArray((n,), g, dist=(dist,), name="X")
    (i,) = loopvars("i")
    lo, hi = rng if rng else (0, n - 1)
    loop = Doall(
        vars=(i,),
        ranges=[(lo, hi)],
        on=Owner(X, (i,)),
        body=[Assign(X[i], X[i] + 1.0)],
        grid=g,
    )
    return g, X, loop


def test_block_owner_stripmine_partitions():
    g, X, loop = make_loop_1d()
    sets = stripmine(loop)
    all_idx = np.concatenate([sets[r].arrays["i"] for r in g.linear])
    np.testing.assert_array_equal(np.sort(all_idx), np.arange(12))
    np.testing.assert_array_equal(sets[0].arrays["i"], [0, 1, 2])


def test_interior_range_respected():
    g, X, loop = make_loop_1d(rng=(1, 10))
    sets = stripmine(loop)
    np.testing.assert_array_equal(sets[0].arrays["i"], [1, 2])
    np.testing.assert_array_equal(sets[3].arrays["i"], [9, 10])


def test_cyclic_owner_stripmine():
    g, X, loop = make_loop_1d(dist="cyclic")
    sets = stripmine(loop)
    np.testing.assert_array_equal(sets[1].arrays["i"], [1, 5, 9])


def test_shifted_owner_expression():
    g = ProcessorGrid((4,))
    X = DistArray((12,), g, dist=("block",), name="X")
    (i,) = loopvars("i")
    loop = Doall(
        vars=(i,),
        ranges=[(0, 10)],
        on=Owner(X, (i + 1,)),  # iteration i runs where X[i+1] lives
        body=[Assign(X[i + 1], X[i] * 1.0)],
        grid=g,
    )
    sets = stripmine(loop)
    np.testing.assert_array_equal(sets[0].arrays["i"], [0, 1])  # owns X[0..2]
    np.testing.assert_array_equal(sets[1].arrays["i"], [2, 3, 4])


def test_strided_range():
    g, X, loop = make_loop_1d()
    (k,) = loopvars("k")
    loop2 = Doall(
        vars=(k,),
        ranges=[(0, 11, 2)],
        on=Owner(X, (k,)),
        body=[Assign(X[k], X[k] + 1.0)],
        grid=g,
    )
    sets = stripmine(loop2)
    np.testing.assert_array_equal(sets[0].arrays["k"], [0, 2])
    np.testing.assert_array_equal(sets[1].arrays["k"], [4])


def test_2d_owner_box_product():
    g = ProcessorGrid((2, 2))
    X = DistArray((8, 8), g, dist=("block", "block"), name="X")
    i, j = loopvars("i j")
    loop = Doall(
        vars=(i, j),
        ranges=[(1, 6), (1, 6)],
        on=Owner(X, (i, j)),
        body=[Assign(X[i, j], X[i, j] + 1.0)],
        grid=g,
    )
    sets = stripmine(loop)
    s0 = sets[0]
    np.testing.assert_array_equal(s0.arrays["i"], [1, 2, 3])
    np.testing.assert_array_equal(s0.arrays["j"], [1, 2, 3])
    assert s0.count() == 9
    assert sets[3].count() == 9
    total = sum(sets[r].count() for r in g.linear)
    assert total == 36


def test_onproc_explicit_placement():
    g = ProcessorGrid((4,))
    T = DistArray((16,), g, dist=("block",), name="T")
    (ip,) = loopvars("ip")
    loop = Doall(
        vars=(ip,),
        ranges=[(0, 3)],
        on=OnProc(g, (ip,)),
        body=[Assign(T[4 * ip], T[4 * ip] + 1.0)],
        grid=g,
    )
    sets = stripmine(loop)
    for r in range(4):
        np.testing.assert_array_equal(sets[r].arrays["ip"], [r])


def test_onproc_unconstrained_dim_replicates():
    g = ProcessorGrid((2, 2))
    T = DistArray((8, 8), g, dist=("block", "block"), name="T")
    (ip,) = loopvars("ip")
    loop = Doall(
        vars=(ip,),
        ranges=[(0, 1)],
        on=OnProc(g, (ip, None)),  # on procs(ip, *)
        body=[Assign(T[4 * ip, 0], T[4 * ip, 0] + 1.0)],
        grid=g,
    )
    sets = stripmine(loop)
    # both procs in each grid row execute the row's iteration
    np.testing.assert_array_equal(sets[0].arrays["ip"], [0])
    np.testing.assert_array_equal(sets[1].arrays["ip"], [0])
    np.testing.assert_array_equal(sets[2].arrays["ip"], [1])
    np.testing.assert_array_equal(sets[3].arrays["ip"], [1])


def test_owner_star_dim_means_unconstrained():
    g = ProcessorGrid((2, 2))
    r_arr = DistArray((8, 8), g, dist=("block", "block"), name="r")
    (i,) = loopvars("i")
    loop = Doall(
        vars=(i,),
        ranges=[(0, 7)],
        on=Owner(r_arr, (i, None)),  # owner(r(i, *))
        body=[Assign(r_arr[i, 0], r_arr[i, 0] + 1.0)],
        grid=g,
    )
    sets = stripmine(loop)
    # grid dim 0 constrained by i, dim 1 unconstrained
    np.testing.assert_array_equal(sets[0].arrays["i"], [0, 1, 2, 3])
    np.testing.assert_array_equal(sets[1].arrays["i"], [0, 1, 2, 3])
    np.testing.assert_array_equal(sets[2].arrays["i"], [4, 5, 6, 7])


def test_multi_var_on_expr_rejected():
    g = ProcessorGrid((4,))
    X = DistArray((12,), g, dist=("block",), name="X")
    i, j = loopvars("i j")
    loop = Doall(
        vars=(i, j),
        ranges=[(0, 3), (0, 3)],
        on=Owner(X, (i + j,)),
        body=[Assign(X[i + j], X[i + j] + 1.0)],
        grid=g,
    )
    with pytest.raises(CompileError):
        stripmine(loop)


def test_constant_owner_expr_selects_one_proc():
    g = ProcessorGrid((4,))
    X = DistArray((12,), g, dist=("block",), name="X")
    (i,) = loopvars("i")
    loop = Doall(
        vars=(i,),
        ranges=[(0, 11)],
        on=Owner(X, (0,)),  # every invocation on owner of X[0] = proc 0
        body=[Assign(X[i], X[i] + 1.0)],
        grid=g,
    )
    sets = stripmine(loop)
    assert sets[0].count() == 12
    assert sets[1].count() == 0
    assert sets[1].empty
