"""Property test: cached-schedule replay is bit-identical to the
uncached inspector gather for arbitrary distributions and request sets,
including ranks that request nothing.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import ScheduleCache, inspector_gather
from repro.lang import BlockCyclic, DistArray, ProcessorGrid
from repro.machine import Machine
from repro.session import Session


def _dist_of(kind: str):
    if kind.startswith("blockcyclic"):
        return BlockCyclic(int(kind.rsplit("-", 1)[1]))
    return kind


@st.composite
def gather_cases(draw):
    p = draw(st.integers(min_value=1, max_value=4))
    n = draw(st.integers(min_value=p, max_value=24))
    kind = draw(
        st.sampled_from(["block", "cyclic", "blockcyclic-2", "blockcyclic-3"])
    )
    # per-rank request lists; empty lists exercise the no-request path
    index_lists = [
        draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1), min_size=0, max_size=8
            )
        )
        for _ in range(p)
    ]
    seed = draw(st.integers(min_value=0, max_value=2**16))
    sweeps = draw(st.integers(min_value=2, max_value=3))
    return p, n, kind, index_lists, seed, sweeps


@given(gather_cases())
@settings(max_examples=30, deadline=None)
def test_cached_replay_bit_identical(case):
    p, n, kind, index_lists, seed, sweeps = case
    rng = np.random.default_rng(seed)
    values = rng.standard_normal(n)
    idx = {
        r: np.asarray(lst, dtype=np.int64).reshape(-1, 1)
        for r, lst in enumerate(index_lists)
    }

    def fresh_array(g):
        A = DistArray((n,), g, dist=(_dist_of(kind),), name="A")
        A.from_global(values)
        return A

    # -- uncached reference ------------------------------------------------
    g = ProcessorGrid((p,))
    A = fresh_array(g)
    reference = {}

    def prog_uncached(ctx):
        reference[ctx.rank] = yield from inspector_gather(ctx, g, A, idx[ctx.rank])

    Session(Machine(n_procs=p), g).run(prog_uncached)

    # -- cached: one build sweep + replays ---------------------------------
    A2 = fresh_array(g)
    cache = ScheduleCache()
    replays = {r: [] for r in range(p)}

    def prog_cached(ctx):
        for _ in range(sweeps):
            vals = yield from ctx.cached_gather(g, A2, idx[ctx.rank], cache=cache)
            replays[ctx.rank].append(vals)

    trace = Session(Machine(n_procs=p), g).run(prog_cached)

    for r in range(p):
        for vals in replays[r]:
            assert vals.dtype == reference[r].dtype
            np.testing.assert_array_equal(reference[r], vals)
    # every rank misses exactly once, then always hits
    assert cache.misses == p
    assert cache.hits == p * (sweeps - 1)
    assert trace.schedule_hit_rate() == pytest.approx((sweeps - 1) / sweeps)


@given(gather_cases())
@settings(max_examples=15, deadline=None)
def test_replay_never_sends_more_messages(case):
    """Replay sweeps never exceed the message count of a fresh inspection."""
    p, n, kind, index_lists, seed, sweeps = case
    idx = {
        r: np.asarray(lst, dtype=np.int64).reshape(-1, 1)
        for r, lst in enumerate(index_lists)
    }

    def fresh_array(g):
        A = DistArray((n,), g, dist=(_dist_of(kind),), name="A")
        A.from_global(np.arange(float(n)))
        return A

    g = ProcessorGrid((p,))

    A = fresh_array(g)

    def prog_uncached(ctx):
        yield from inspector_gather(ctx, g, A, idx[ctx.rank])

    t_un = Session(Machine(n_procs=p), g).run(prog_uncached)
    per_sweep = t_un.message_count()

    A2 = fresh_array(g)
    cache = ScheduleCache()

    def prog_cached(ctx):
        for _ in range(sweeps):
            yield from ctx.cached_gather(g, A2, idx[ctx.rank], cache=cache)

    t_ca = Session(Machine(n_procs=p), g).run(prog_cached)
    replay_msgs = t_ca.message_count() - per_sweep
    # build sweep == uncached sweep; each replay costs at most half of one
    # fresh inspection (it drops the entire request round and empty replies)
    if sweeps > 1:
        assert replay_msgs <= (sweeps - 1) * per_sweep // 2
