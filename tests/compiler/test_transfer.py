"""Tests for the bidirectional TransferSchedule subsystem: the scatter
(doall remote-write) direction and the shared executor/vocabulary.

The gather direction is covered by test_commsched.py; the repartition
direction by tests/lang/test_redistribute.py.  Here: frozen scatter
schedules replay bit-identically to a fresh compile, remote-write
messages carry values only (no index lists on the wire), and the trace
reports gather and scatter directions separately.
"""

import numpy as np
import pytest

from repro.compiler import (
    ScheduleCache,
    TransferSchedule,
    clear_plan_cache,
    estimate_doall,
)
from repro.compiler.schedule import get_analysis
from repro.lang import (
    Assign,
    DistArray,
    Doall,
    Owner,
    ProcessorGrid,
    loopvars,
)
from repro.machine import Machine
from repro.util.errors import ValidationError
from repro.session import Session


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


def _reversal_loop(g, n=8):
    """B[i] = A[n-1-i]: every interior write lands on another rank."""
    A = DistArray((n,), g, dist=("block",), name="A")
    B = DistArray((n,), g, dist=("block",), name="B")
    A.from_global(np.arange(float(n)))
    (i,) = loopvars("i")
    loop = Doall(
        (i,), [(0, n - 1)], Owner(A, (n - 1 - i,)), [Assign(B[i], A[n - 1 - i])], g
    )
    return A, B, loop


def test_unknown_direction_rejected():
    with pytest.raises(ValidationError, match="unknown transfer direction"):
        TransferSchedule("sideways")


def test_write_plans_are_frozen_scatter_schedules():
    g = ProcessorGrid((4,))
    _A, B, loop = _reversal_loop(g)
    analysis, _ = get_analysis(loop)
    assert analysis.has_remote_writes
    for rank in g.linear:
        ts = analysis.write_plans[0][rank].transfer
        assert ts is not None and ts.direction == "scatter"
        # sends select into the flat value vector; recvs carry frozen
        # local-block coordinates
        for _dst, sel in ts.sends:
            assert sel.dtype == np.int64 and sel.ndim == 1
        for _src, locs in ts.recvs:
            assert len(locs) == B.ndim and locs[0].dtype == np.int64


def test_scatter_replay_bit_identical_to_rebuild():
    """Re-executing a cached loop replays the frozen scatter schedule;
    the result must be bit-identical to a fresh compile of the same
    loop, and the wire traffic must be byte-identical too."""
    n, p, sweeps = 8, 4, 3

    def run(n_sweeps):
        clear_plan_cache()
        g = ProcessorGrid((p,))
        A, B, loop = _reversal_loop(g, n)

        def prog(ctx):
            for _ in range(n_sweeps):
                yield from ctx.doall(loop)

        trace = Session(Machine(n_procs=p), g).run(prog)
        return B.to_global(), trace

    fresh, t1 = run(1)
    replayed, t3 = run(sweeps)
    np.testing.assert_array_equal(fresh, replayed)
    np.testing.assert_array_equal(fresh, np.arange(float(n))[::-1])
    # every sweep (compile or replay) moves exactly the same messages
    assert t3.message_count() == sweeps * t1.message_count()
    assert t3.total_bytes() == sweeps * t1.total_bytes()
    per_sweep = sorted((m.src, m.dst, m.nbytes) for m in t1.messages)
    replay_last = sorted(
        (m.src, m.dst, m.nbytes) for m in t3.messages[-t1.message_count():]
    )
    assert per_sweep == replay_last


def test_remote_write_messages_carry_values_only():
    """The frozen schedule removes index lists from the wire: each
    remote-write message is exactly its values' bytes."""
    n, p = 8, 4
    g = ProcessorGrid((p,))
    _A, _B, loop = _reversal_loop(g, n)

    def prog(ctx):
        yield from ctx.doall(loop)

    trace = Session(Machine(n_procs=p), g).run(prog)
    # reversal on block layout: every rank ships its 2 iterations' writes
    # (2 elements) to the mirror rank, plus ghost reads of 2 elements
    assert all(m.nbytes % 8 == 0 for m in trace.messages)
    write_msgs = [m for m in trace.messages if m.tag[1].startswith("wr")]
    assert len(write_msgs) == p  # one coalesced value message per rank
    assert all(m.nbytes == 2 * 8 for m in write_msgs)  # 2 float64 values, no lists


def test_scatter_direction_reported_separately():
    n, p, sweeps = 8, 2, 3
    g = ProcessorGrid((p,))
    A, _B, loop = _reversal_loop(g, n)
    cache = ScheduleCache()
    idx = {0: np.array([[n - 1]]), 1: np.array([[0]])}

    def prog(ctx):
        for _ in range(sweeps):
            yield from ctx.doall(loop)
            yield from ctx.cached_gather(g, A, idx[ctx.rank], cache=cache)

    trace = Session(Machine(n_procs=p), g).run(prog)
    directions = trace.schedule_directions()
    assert set(directions) == {"doall", "scatter", "gather"}
    # gather: first sweep misses on both ranks, later sweeps hit
    assert trace.schedule_counts("gather") == {
        "miss": p, "hit": p * (sweeps - 1)
    }
    # scatter rides the doall plan: one compile, every other execution hits
    assert trace.schedule_counts("scatter") == {
        "build": 1, "hit": p * sweeps - 1
    }
    assert trace.schedule_hit_rate("scatter") > trace.schedule_hit_rate("gather")
    # unfiltered reporting still aggregates everything
    total = sum(sum(v.values()) for v in directions.values())
    assert sum(trace.schedule_counts().values()) == total


def test_local_write_loops_emit_no_scatter_marks():
    n, p = 12, 3
    g = ProcessorGrid((p,))
    u = DistArray((n,), g, dist=("block",), name="u")
    (i,) = loopvars("i")
    loop = Doall((i,), [(0, n - 1)], Owner(u, (i,)), [Assign(u[i], u[i] + 1.0)], g)

    def prog(ctx):
        yield from ctx.doall(loop)

    trace = Session(Machine(n_procs=p), g).run(prog)
    assert trace.schedule_counts("scatter") == {}
    assert trace.schedule_counts("doall") == {"build": 1, "hit": p - 1}


def test_estimator_exact_for_remote_writes():
    """Value-only write messages make the write side exactly predictable."""
    n, p = 8, 4
    g = ProcessorGrid((p,))
    _A, _B, loop = _reversal_loop(g, n)
    est = estimate_doall(loop)

    def prog(ctx):
        yield from ctx.doall(loop)

    trace = Session(Machine(n_procs=p), g).run(prog)
    assert est.total_messages() == trace.message_count()
    assert est.total_bytes() == trace.total_bytes()


def test_local_box_store_is_open_mesh_not_per_point():
    """The all-local store freezes O(extent-per-dim) open-mesh boxes,
    not O(points) coordinate arrays (memory regression guard)."""
    n, p = 16, 4
    g = ProcessorGrid((2, 2))
    X = DistArray((n, n), g, dist=("block", "block"), name="X")
    i, j = loopvars("i j")
    loop = Doall(
        (i, j), [(1, n - 2), (1, n - 2)], Owner(X, (i, j)),
        [Assign(X[i, j], X[i, j] * 2.0)], g,
    )
    analysis, _ = get_analysis(loop)
    for rank in g.linear:
        wplan = analysis.write_plans[0][rank]
        assert wplan.transfer is None  # no messages on the write side
        locs, perm, shape = wplan.local_box
        n_points = analysis.iters[rank].count()
        coords_stored = sum(int(np.asarray(d).size) for d in locs)
        assert coords_stored < n_points  # box, not per-point
        assert shape[0] * shape[1] == n_points
        assert perm == (0, 1)


def test_transposed_lhs_box_store_numerics():
    """A transposing lhs (X[j, i]) must map the iteration box through
    the frozen permutation correctly."""
    n = 8
    g = ProcessorGrid((2, 2))
    X = DistArray((n, n), g, dist=("block", "block"), name="X")
    Y = DistArray((n, n), g, dist=("block", "block"), name="Y")
    ref = np.arange(float(n * n)).reshape(n, n)
    Y.from_global(ref)
    i, j = loopvars("i j")
    loop = Doall(
        (i, j), [(0, n - 1), (0, n - 1)], Owner(X, (j, i)),
        [Assign(X[j, i], Y[i, j])], g,
    )

    def prog(ctx):
        yield from ctx.doall(loop)

    Session(Machine(n_procs=4), g).run(prog)
    np.testing.assert_array_equal(X.to_global(), ref.T)


def test_non_box_lhs_falls_back_to_flat_store():
    """An iteration axis absent from the lhs (colliding writes) cannot
    box-decompose; the per-sweep flat fallback must still be correct."""
    n, p = 8, 2
    g = ProcessorGrid((p,))
    A = DistArray((n,), g, dist=("block",), name="A")
    B = DistArray((n,), g, dist=("block",), name="B")
    B.from_global(np.arange(float(n)))
    i, j = loopvars("i j")
    # j never appears on the lhs: each A[i] is written |j| times with
    # the same value
    loop = Doall(
        (i, j), [(0, n - 1), (0, 2)], Owner(A, (i,)),
        [Assign(A[i], B[i] + 1.0)], g,
    )
    analysis, _ = get_analysis(loop)
    for rank in g.linear:
        if not analysis.iters[rank].empty:
            assert analysis.write_plans[0][rank].local_box is None

    def prog(ctx):
        yield from ctx.doall(loop)

    Session(Machine(n_procs=p), g).run(prog)
    np.testing.assert_array_equal(A.to_global(), np.arange(float(n)) + 1.0)


def test_empty_rank_still_receives_remote_writes():
    """A rank with no iterations must still consume writes into its block."""
    n, p = 8, 2
    g = ProcessorGrid((p,))
    A = DistArray((n,), g, dist=("block",), name="A")
    B = DistArray((n,), g, dist=("block",), name="B")
    A.from_global(np.arange(float(n)))
    (i,) = loopvars("i")
    # all iterations owned by rank 0 (A[0..3] block), writes go to B[i+4]
    loop = Doall((i,), [(0, 3)], Owner(A, (i,)), [Assign(B[i + 4], A[i])], g)

    def prog(ctx):
        yield from ctx.doall(loop)

    Session(Machine(n_procs=p), g).run(prog)
    np.testing.assert_array_equal(B.to_global()[4:], np.arange(4.0))
