"""Tests for cached communication schedules (inspector -> executor).

Covers the tentpole contract: schedule build/replay is bit-identical to
a fresh inspector gather, cache hits/misses behave as keyed, and
redistribution invalidates stale schedules.
"""

import numpy as np
import pytest

from repro.compiler import (
    ScheduleCache,
    build_gather_schedule,
    execute_gather,
    inspector_gather,
    schedule_key,
)
from repro.compiler.commsched import DEFAULT_CACHE, clear_schedule_cache
from repro.lang import BlockCyclic, DistArray, ProcessorGrid
from repro.machine import Machine
from repro.session import Session
from repro.util.errors import ValidationError


def _random_indices(rng, n, ndim, count):
    return rng.integers(0, n, size=(count, ndim))


def _run_uncached(p, array_factory, index_of):
    m = Machine(n_procs=p)
    g = ProcessorGrid((p,))
    A = array_factory(g)
    results = {}

    def prog(ctx):
        results[ctx.rank] = yield from inspector_gather(ctx, g, A, index_of(ctx.rank))

    trace = Session(m, g).run(prog)
    return results, trace


def _run_cached(p, array_factory, index_of, sweeps=3, cache=None):
    m = Machine(n_procs=p)
    g = ProcessorGrid((p,))
    A = array_factory(g)
    cache = cache if cache is not None else ScheduleCache()
    results = {r: [] for r in range(p)}

    def prog(ctx):
        for _ in range(sweeps):
            vals = yield from ctx.cached_gather(g, A, index_of(ctx.rank), cache=cache)
            results[ctx.rank].append(vals)

    trace = Session(m, g).run(prog)
    return results, trace, cache


@pytest.mark.parametrize("dist", ["block", "cyclic", BlockCyclic(3)])
def test_replay_matches_fresh_inspection(dist):
    n, p = 24, 3
    rng = np.random.default_rng(7)
    idx = {r: _random_indices(rng, n, 1, 5 + r) for r in range(p)}

    def make(g):
        A = DistArray((n,), g, dist=(dist,), name="A")
        A.from_global(rng.standard_normal(n))
        return A

    # array values must agree between the two runs
    rng_a = np.random.default_rng(42)
    vals = rng_a.standard_normal(n)

    def make_fixed(g):
        A = DistArray((n,), g, dist=(dist,), name="A")
        A.from_global(vals)
        return A

    uncached, _ = _run_uncached(p, make_fixed, lambda r: idx[r])
    cached, _, _ = _run_cached(p, make_fixed, lambda r: idx[r], sweeps=3)
    for r in range(p):
        for sweep_vals in cached[r]:
            np.testing.assert_array_equal(uncached[r], sweep_vals)


def test_replay_observes_current_values():
    """Schedules cache the *pattern*, not the data: replays see updates."""
    n, p = 16, 2
    m = Machine(n_procs=p)
    g = ProcessorGrid((p,))
    A = DistArray((n,), g, dist=("block",), name="A")
    A.from_global(np.arange(float(n)))
    cache = ScheduleCache()
    got = {r: [] for r in range(p)}
    idx = {0: np.array([[15]]), 1: np.array([[0]])}
    group = tuple(g.linear)

    def prog(ctx):
        from repro.machine.ops import Barrier

        for sweep in range(2):
            vals = yield from ctx.cached_gather(g, A, idx[ctx.rank], cache=cache)
            got[ctx.rank].append(float(vals[0]))
            yield Barrier(group=group, tag=("mutate", sweep))
            A.local(ctx.rank)[...] += 100.0
            yield Barrier(group=group, tag=("mutated", sweep))

    Session(m, g).run(prog)
    assert got[0] == [15.0, 115.0]
    assert got[1] == [0.0, 100.0]


def test_cache_hit_miss_semantics():
    n, p, sweeps = 20, 4, 4
    rng = np.random.default_rng(3)
    idx = {r: _random_indices(rng, n, 1, 4) for r in range(p)}

    def make(g):
        A = DistArray((n,), g, dist=("block",), name="A")
        A.from_global(np.arange(float(n)))
        return A

    _, trace, cache = _run_cached(p, make, lambda r: idx[r], sweeps=sweeps)
    # first sweep misses on every rank, every later sweep hits everywhere
    assert cache.misses == p
    assert cache.hits == p * (sweeps - 1)
    counts = trace.schedule_counts()
    assert counts["miss"] == p
    assert counts["hit"] == p * (sweeps - 1)
    assert trace.schedule_hit_rate() == pytest.approx((sweeps - 1) / sweeps)


def test_changed_pattern_misses():
    """A new index pattern on all ranks is a fresh collective build."""
    n, p = 20, 2
    m = Machine(n_procs=p)
    g = ProcessorGrid((p,))
    A = DistArray((n,), g, dist=("block",), name="A")
    A.from_global(np.arange(float(n)))
    cache = ScheduleCache()

    def prog(ctx):
        yield from ctx.cached_gather(g, A, np.array([[1], [2]]), cache=cache)
        yield from ctx.cached_gather(g, A, np.array([[3], [4]]), cache=cache)
        yield from ctx.cached_gather(g, A, np.array([[1], [2]]), cache=cache)

    Session(m, g).run(prog)
    assert cache.misses == 2 * p  # two distinct patterns
    assert cache.hits == p  # third call replays the first pattern


def test_invalidation_after_redistribution():
    n, p = 24, 2
    m = Machine(n_procs=p)
    g = ProcessorGrid((p,))
    A = DistArray((n,), g, dist=("block",), name="A")
    values = np.arange(float(n)) * 3.0
    A.from_global(values)
    cache = ScheduleCache()
    idx = {0: np.array([[23], [1], [12]]), 1: np.array([[0], [13]])}
    collected = []

    def prog(ctx):
        vals = yield from ctx.cached_gather(g, A, idx[ctx.rank], cache=cache)
        collected.append((ctx.rank, "pre", vals.copy()))

    Session(m, g).run(prog)
    assert cache.misses == p and cache.hits == 0

    # redistribute: same values, new layout -> old schedules must not hit
    epoch_before = A.comm_epoch
    A.redistribute(("cyclic",))
    assert A.comm_epoch == epoch_before + 1
    np.testing.assert_array_equal(A.to_global(), values)

    m2 = Machine(n_procs=p)

    def prog2(ctx):
        vals = yield from ctx.cached_gather(g, A, idx[ctx.rank], cache=cache)
        collected.append((ctx.rank, "post", vals.copy()))

    Session(m2, g).run(prog2)
    assert cache.misses == 2 * p  # rebuilt against the new layout
    pre = {r: v for r, t, v in collected if t == "pre"}
    post = {r: v for r, t, v in collected if t == "post"}
    for r in range(p):
        np.testing.assert_array_equal(pre[r], post[r])


def test_stale_schedule_replay_raises():
    """Directly replaying a schedule after redistribution is an error."""
    n, p = 16, 2
    m = Machine(n_procs=p)
    g = ProcessorGrid((p,))
    A = DistArray((n,), g, dist=("block",), name="A")
    A.from_global(np.arange(float(n)))
    scheds = {}

    def build(ctx):
        sched, _ = yield from build_gather_schedule(
            ctx, g, A, np.array([[n - 1 - ctx.rank]])
        )
        scheds[ctx.rank] = sched

    Session(m, g).run(build)
    A.redistribute(("cyclic",))

    def replay(ctx):
        yield from execute_gather(ctx, scheds[ctx.rank], A)

    with pytest.raises(ValidationError, match="stale gather schedule"):
        Session(Machine(n_procs=p), g).run(replay)


def test_empty_request_ranks():
    n, p = 18, 3
    only = {0: np.array([[17], [5]]), 1: None, 2: np.empty((0, 1), dtype=np.int64)}

    def make(g):
        A = DistArray((n,), g, dist=("cyclic",), name="A")
        A.from_global(np.arange(float(n)) * 2.0)
        return A

    cached, trace, _ = _run_cached(p, make, lambda r: only[r], sweeps=2)
    np.testing.assert_array_equal(cached[0][0], [34.0, 10.0])
    np.testing.assert_array_equal(cached[0][1], [34.0, 10.0])
    assert cached[1][0].size == 0 and cached[2][0].size == 0


def test_replay_halves_messages():
    """Replay skips the request round and empty replies entirely."""
    n, p = 32, 4
    idx = {r: np.array([[(r + 1) * 8 % n]]) for r in range(p)}  # one remote owner each

    def make(g):
        A = DistArray((n,), g, dist=("block",), name="A")
        A.from_global(np.arange(float(n)))
        return A

    _, t_un = _run_uncached(p, make, lambda r: idx[r])
    _, t_ca, _ = _run_cached(p, make, lambda r: idx[r], sweeps=2)
    per_sweep_uncached = t_un.message_count()  # 2 * p * (p - 1)
    assert per_sweep_uncached == 2 * p * (p - 1)
    replay_msgs = t_ca.message_count() - per_sweep_uncached  # second sweep only
    assert replay_msgs == p  # one coalesced value message per requester
    assert replay_msgs * 2 <= per_sweep_uncached


def test_replay_preserves_dtype():
    n, p = 12, 2

    def make(g):
        A = DistArray((n,), g, dist=("block",), name="A", dtype=np.int32)
        A.from_global(np.arange(n, dtype=np.int32))
        return A

    idx = {0: np.array([[11]]), 1: np.array([[0]])}
    cached, _, _ = _run_cached(p, make, lambda r: idx[r], sweeps=2)
    for r in range(p):
        for vals in cached[r]:
            assert vals.dtype == np.int32


def test_schedule_key_includes_rank_and_epoch():
    g = ProcessorGrid((2,))
    A = DistArray((8,), g, dist=("block",), name="A")
    idx = np.array([[1]])
    k0 = schedule_key(g, A, idx, 0)
    k1 = schedule_key(g, A, idx, 1)
    assert k0 != k1
    A.invalidate_schedules()
    assert schedule_key(g, A, idx, 0) != k0


def test_2d_gather_replay():
    p = 2
    m = Machine(n_procs=p)
    g = ProcessorGrid((p,))
    A = DistArray((4, 6), g, dist=("*", "block"), name="A")
    ref = np.arange(24.0).reshape(4, 6)
    A.from_global(ref)
    cache = ScheduleCache()
    results = {r: [] for r in range(p)}
    idx = {0: np.array([[0, 0], [3, 5], [2, 2]]), 1: np.array([[1, 4]])}

    def prog(ctx):
        for _ in range(3):
            vals = yield from ctx.cached_gather(g, A, idx[ctx.rank], cache=cache)
            results[ctx.rank].append(vals)

    Session(m, g).run(prog)
    for vals in results[0]:
        np.testing.assert_array_equal(vals, [ref[0, 0], ref[3, 5], ref[2, 2]])
    for vals in results[1]:
        np.testing.assert_array_equal(vals, [ref[1, 4]])


def test_default_cache_and_clear():
    clear_schedule_cache()
    n, p = 12, 2
    m = Machine(n_procs=p)
    g = ProcessorGrid((p,))
    A = DistArray((n,), g, dist=("block",), name="A")
    A.from_global(np.arange(float(n)))

    def prog(ctx):
        yield from ctx.cached_gather(g, A, np.array([[n - 1 - ctx.rank]]),
                                     cache=DEFAULT_CACHE)
        yield from ctx.cached_gather(g, A, np.array([[n - 1 - ctx.rank]]),
                                     cache=DEFAULT_CACHE)

    Session(m, g).run(prog)
    assert DEFAULT_CACHE.hits == p and DEFAULT_CACHE.misses == p
    clear_schedule_cache()
    assert len(DEFAULT_CACHE) == 0 and DEFAULT_CACHE.hits == 0


def test_cache_eviction_bound():
    cache = ScheduleCache(max_entries=2)
    n, p = 12, 1
    m = Machine(n_procs=p)
    g = ProcessorGrid((p,))
    A = DistArray((n,), g, dist=("block",), name="A")
    A.from_global(np.arange(float(n)))

    def prog(ctx):
        for j in range(4):
            yield from ctx.cached_gather(g, A, np.array([[j]]), cache=cache)

    Session(m, g).run(prog)
    assert len(cache) == 2
    assert cache.evictions == 2


def test_divergent_pattern_with_miss_verdict_rebuilds_consistently():
    """SPMD discipline: the per-call verdict is collective.  When the
    first rank to reach the call misses (it changed its pattern), every
    rank rebuilds -- including ranks whose old schedule is still cached
    -- so the protocols match and the values are correct."""
    g = ProcessorGrid((2,))
    A = DistArray((8,), g, dist=("block",), name="A")
    A.from_global(np.arange(8.0))
    cache = ScheduleCache()
    got = {}

    def prog(ctx):
        yield from ctx.cached_gather(g, A, np.array([[7 - 7 * ctx.rank]]), cache=cache)
        # rank 0 (which reaches the call first) changes its pattern;
        # rank 1 keeps its old one
        idx = np.array([[3]]) if ctx.rank == 0 else np.array([[0]])
        got[ctx.rank] = yield from ctx.cached_gather(g, A, idx, cache=cache)

    Session(Machine(n_procs=2), g).run(prog)
    assert float(got[0][0]) == 3.0
    assert float(got[1][0]) == 0.0
    # second call was a consistent rebuild on both ranks
    assert cache.misses == 4 and cache.hits == 0


def test_divergent_pattern_with_hit_verdict_raises():
    """Opposite orientation: the first rank hits (kept its pattern) but a
    later rank brings a request set with no schedule in the replayed
    collective -- a loud, specific error instead of a deadlock."""
    g = ProcessorGrid((2,))
    A = DistArray((8,), g, dist=("block",), name="A")
    A.from_global(np.arange(8.0))
    cache = ScheduleCache()

    def prog(ctx):
        yield from ctx.cached_gather(g, A, np.array([[7 - 7 * ctx.rank]]), cache=cache)
        # rank 1 changes its pattern; rank 0 (first to the call) does not
        idx = np.array([[7]]) if ctx.rank == 0 else np.array([[4]])
        yield from ctx.cached_gather(g, A, idx, cache=cache)

    with pytest.raises(ValidationError, match="divergent index pattern"):
        Session(Machine(n_procs=2), g).run(prog)


def test_eviction_is_group_atomic():
    """Capacity pressure must never evict only some ranks' schedules of
    one collective build: that would make the next call a hit on some
    ranks and a miss on others (a protocol mismatch).  Regression test:
    p=3 with max_entries=4 alternating two patterns used to crash."""
    n, p = 24, 3
    g = ProcessorGrid((p,))
    A = DistArray((n,), g, dist=("block",), name="A")
    A.from_global(np.arange(float(n)))
    cache = ScheduleCache(max_entries=4)  # not a multiple of p
    pat_a = {r: np.array([[(r * 7) % n]]) for r in range(p)}
    pat_b = {r: np.array([[(r * 5 + 1) % n]]) for r in range(p)}
    got = {r: [] for r in range(p)}

    def prog(ctx):
        for pat in (pat_a, pat_b, pat_a, pat_b):
            vals = yield from ctx.cached_gather(g, A, pat[ctx.rank], cache=cache)
            got[ctx.rank].append(vals.copy())

    Session(Machine(n_procs=p), g).run(prog)  # must not deadlock/crash
    for r in range(p):
        np.testing.assert_array_equal(got[r][0], got[r][2])
        np.testing.assert_array_equal(got[r][1], got[r][3])
        assert got[r][0][0] == float((r * 7) % n)
        assert got[r][1][0] == float((r * 5 + 1) % n)
    assert len(cache) <= 4
    # every eviction removed a whole collective (p entries at a time)
    assert cache.evictions % p == 0


def test_oversized_collective_does_not_self_evict():
    """A single collective larger than the cache stays intact (the cache
    runs over capacity rather than splitting the in-flight group)."""
    n, p = 16, 4
    g = ProcessorGrid((p,))
    A = DistArray((n,), g, dist=("block",), name="A")
    A.from_global(np.arange(float(n)))
    cache = ScheduleCache(max_entries=2)  # smaller than one collective
    idx = {r: np.array([[(r + 1) * 3 % n]]) for r in range(p)}

    def prog(ctx):
        for _ in range(3):
            yield from ctx.cached_gather(g, A, idx[ctx.rank], cache=cache)

    trace = Session(Machine(n_procs=p), g).run(prog)
    # one consistent build, then consistent hits everywhere
    assert trace.schedule_counts() == {"miss": p, "hit": 2 * p}


def test_redistribute_purges_orphaned_doall_plans():
    """Plan-cache keys embed the comm epoch, so redistribution orphans
    old entries; they must be purged, not leaked, across repeated
    redistributions."""
    from repro.lang import Assign, Doall, Owner, loopvars

    n, p = 12, 2
    g = ProcessorGrid((p,))
    u = DistArray((n,), g, dist=("block",), name="u")
    v = DistArray((n,), g, dist=("block",), name="v")
    u.from_global(np.arange(float(n)))
    (i,) = loopvars("i")
    loop = Doall(vars=(i,), ranges=[(1, n - 2)], on=Owner(v, (i,)),
                 body=[Assign(v[i], u[i - 1] + u[i + 1])], grid=g)

    def prog(ctx):
        yield from ctx.doall(loop)

    session = Session(grid=g)
    for k in range(4):
        session.run(prog, machine=Machine(n_procs=p))
        assert len(session.plans) == 1  # exactly the live layout's plan
        # host-side redistribution must reach session-owned plan caches
        u.redistribute(("cyclic",) if k % 2 == 0 else ("block",))
        v.redistribute(("cyclic",) if k % 2 == 0 else ("block",))
        assert len(session.plans) == 0  # orphaned plan purged, not leaked


def test_aborted_run_does_not_poison_later_runs():
    """A verdict left unconsumed by a crashed run must not be matched by
    the next run's identical tag sequence on the same cache."""
    g = ProcessorGrid((2,))
    A = DistArray((8,), g, dist=("block",), name="A")
    A.from_global(np.arange(8.0))
    cache = ScheduleCache()

    def diverging(ctx):
        yield from ctx.cached_gather(g, A, np.array([[7 - 7 * ctx.rank]]), cache=cache)
        idx = np.array([[7]]) if ctx.rank == 0 else np.array([[4]])
        yield from ctx.cached_gather(g, A, idx, cache=cache)

    with pytest.raises(ValidationError, match="divergent index pattern"):
        Session(Machine(n_procs=2), g).run(diverging)

    # same cache, same array, same tag sequence -- a consistent program
    # must run cleanly and get the correct verdicts
    got = {}

    def consistent(ctx):
        got[ctx.rank] = []
        for _ in range(2):
            v = yield from ctx.cached_gather(
                g, A, np.array([[6 - 5 * ctx.rank]]), cache=cache
            )
            got[ctx.rank].append(float(v[0]))

    Session(Machine(n_procs=2), g).run(consistent)
    assert got == {0: [6.0, 6.0], 1: [1.0, 1.0]}


def test_straggler_store_cannot_recreate_evicted_group():
    """A rank's late store after its collective's group was evicted must
    not re-create the group with a subset of ranks (a later identical
    call would split into hit/miss across ranks)."""
    n, p = 16, 2
    g = ProcessorGrid((p,))
    A = DistArray((n,), g, dist=("block",), name="A")
    A.from_global(np.arange(float(n)))
    cache = ScheduleCache(max_entries=2)
    scheds = {}

    def build(ctx):
        sched, _ = yield from build_gather_schedule(
            ctx, g, A, np.array([[n - 1 - ctx.rank]])
        )
        scheds[ctx.rank] = sched

    Session(Machine(n_procs=p), g).run(build)
    cache.store(scheds[0])
    cache.store(scheds[1])
    assert len(cache) == 2

    # a second collective's stores evict the first group entirely...
    def build2(ctx):
        sched, _ = yield from build_gather_schedule(
            ctx, g, A, np.array([[ctx.rank]])
        )
        scheds[("b", ctx.rank)] = sched

    Session(Machine(n_procs=p), g).run(build2)
    cache.store(scheds[("b", 0)])
    cache.store(scheds[("b", 1)])
    assert len(cache) == 2  # first group evicted wholesale

    # ...so a straggler re-store of one first-group member is rejected
    cache.store(scheds[0])
    assert len(cache) == 2
    assert scheds[0].key not in cache._entries


def test_invalidate_array_reaches_section_schedules():
    """Invalidating a base array purges schedules built on its sections."""
    p = 2
    g = ProcessorGrid((p,))
    u = DistArray((4, 6), g, dist=("*", "block"), name="u")
    u.from_global(np.arange(24.0).reshape(4, 6))
    sec = u[0, :]
    cache = ScheduleCache()
    idx = {0: np.array([[5]]), 1: np.array([[0]])}

    def prog(ctx):
        yield from ctx.cached_gather(g, sec, idx[ctx.rank], cache=cache)

    Session(Machine(n_procs=p), g).run(prog)
    assert len(cache) == p
    assert cache.invalidate_array(u) == p  # base invalidation reaches them
    assert len(cache) == 0


def test_fingerprint_hashed_once_per_gather_call(monkeypatch):
    """The index fingerprint is the one per-call hash: the probe key, the
    mark payload, and the built schedule's stored fingerprint all share
    a single computation (replays used to hash twice or thrice)."""
    from repro.compiler import commsched

    calls = {"n": 0}
    real = commsched.index_fingerprint

    def counting(indices):
        calls["n"] += 1
        return real(indices)

    monkeypatch.setattr(commsched, "index_fingerprint", counting)

    p = 2
    g = ProcessorGrid((p,))
    A = DistArray((10,), g, dist=("block",), name="A")
    A.from_global(np.arange(10.0))
    cache = ScheduleCache()
    idx = {0: np.array([[1], [7]]), 1: np.array([[3]])}
    sweeps = 4

    def prog(ctx):
        for _ in range(sweeps):
            yield from ctx.cached_gather(g, A, idx[ctx.rank], cache=cache)

    trace = Session(Machine(n_procs=p), g).run(prog)
    # one hash per rank per collective call -- build and replay alike
    assert calls["n"] == p * sweeps
    # the replay marks carry the schedule's stored fingerprint
    hits = [m for m in trace.marks if m.label == "commsched/hit"]
    misses = [m for m in trace.marks if m.label == "commsched/miss"]
    assert len(hits) == p * (sweeps - 1) and len(misses) == p
    by_rank_fp = {m.proc: m.payload[2] for m in misses}
    for m in hits:
        assert m.payload[2] == by_rank_fp[m.proc]
