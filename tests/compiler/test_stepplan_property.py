"""Property test: the compiled replay fast path is bit-identical to the
interpreted executor across distributions, stencil shapes, overlap
modes, and mid-run redistribution.

For every drawn case the same program runs once with ``compiled=True``
(frozen StepPlans) and once with ``compiled=False`` (the interpreted
reference).  Results, the full message stream (sources, destinations,
tags, byte counts, timings), marks, compute charges, and the schedule /
plan hit accounting must agree exactly -- not approximately.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro import Machine, ProcessorGrid, Session
from repro.lang import Assign, BlockCyclic, DistArray, Doall, Owner, loopvars


def _dist_of(kind: str):
    if kind.startswith("blockcyclic"):
        return BlockCyclic(int(kind.rsplit("-", 1)[1]))
    return kind


def trace_sig(trace):
    return (
        [(m.src, m.dst, m.tag, m.nbytes, m.t_send, m.t_arrive, m.t_recv)
         for m in trace.messages],
        [(m.proc, m.label, m.payload) for m in trace.marks],
        [(c.proc, c.start, c.end, c.label) for c in trace.computes],
    )


@st.composite
def stencil_cases(draw):
    p = draw(st.integers(min_value=1, max_value=4))
    n = draw(st.integers(min_value=max(8, 2 * p), max_value=24))
    kind = draw(st.sampled_from(["block", "cyclic", "blockcyclic-2"]))
    write_kind = draw(st.sampled_from(["same", "block", "cyclic"]))
    off_l = draw(st.integers(min_value=1, max_value=2))
    off_r = draw(st.integers(min_value=1, max_value=2))
    overlap = draw(st.booleans())
    iters = draw(st.integers(min_value=1, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return p, n, kind, write_kind, off_l, off_r, overlap, iters, seed


@given(stencil_cases())
@settings(max_examples=25, deadline=None)
def test_compiled_equals_interpreted(case):
    p, n, kind, write_kind, off_l, off_r, overlap, iters, seed = case
    values = np.random.default_rng(seed).standard_normal(n)
    wkind = kind if write_kind == "same" else write_kind

    def run(compiled):
        g = ProcessorGrid((p,))
        u = DistArray((n,), g, dist=(_dist_of(kind),), name="u")
        v = DistArray((n,), g, dist=(_dist_of(wkind),), name="v")
        u.from_global(values)
        (i,) = loopvars("i")
        loop = Doall(
            vars=(i,),
            ranges=[(off_l, n - 1 - off_r)],
            on=Owner(u, (i,)),
            body=[Assign(v[i], 2.0 * u[i - off_l] - u[i + off_r] + 0.5)],
            grid=g,
        )
        sess = Session(Machine(n_procs=p), g, compiled=compiled)
        prog = repro.compile(loop, session=sess)
        trace = prog.run(iters=iters, overlap=overlap)
        return v.to_global(), trace, prog.session

    xa, ta, sa = run(True)
    xb, tb, sb = run(False)
    np.testing.assert_array_equal(xa, xb)
    assert trace_sig(ta) == trace_sig(tb)
    # cache accounting (plan hits, schedule hit rates) must agree too
    assert sa.plans.kind_stats() == sb.plans.kind_stats()
    assert ta.schedule_hit_rate() == tb.schedule_hit_rate()
    assert ta.schedule_directions() == tb.schedule_directions()


@st.composite
def redistribution_cases(draw):
    p = draw(st.integers(min_value=2, max_value=4))
    n = draw(st.integers(min_value=2 * p + 4, max_value=20))
    kinds = draw(
        st.lists(st.sampled_from(["block", "cyclic", "blockcyclic-2"]),
                 min_size=2, max_size=3, unique=True)
    )
    sweeps = draw(st.integers(min_value=1, max_value=2))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return p, n, kinds, sweeps, seed


@given(redistribution_cases())
@settings(max_examples=15, deadline=None)
def test_equivalence_across_mid_run_redistribution(case):
    """Layout flips mid-run orphan the plans; both executors rebuild to
    the same answers, messages, and marks."""
    p, n, kinds, sweeps, seed = case
    values = np.random.default_rng(seed).standard_normal(n)

    def run(compiled):
        g = ProcessorGrid((p,))
        u = DistArray((n,), g, dist=(_dist_of(kinds[0]),), name="u")
        v = DistArray((n,), g, dist=(_dist_of(kinds[0]),), name="v")
        u.from_global(values)
        (i,) = loopvars("i")
        loop = Doall(
            vars=(i,),
            ranges=[(1, n - 2)],
            on=Owner(u, (i,)),
            body=[Assign(v[i], 0.5 * (u[i - 1] + u[i + 1]))],
            grid=g,
        )
        sess = Session(Machine(n_procs=p), g, compiled=compiled)

        def program(ctx):
            for kind in kinds[1:] + kinds[:1]:
                for _ in range(sweeps):
                    yield from ctx.doall(loop)
                yield from ctx.redistribute(u, (_dist_of(kind),))

        trace = sess.run(program)
        return u.to_global(), v.to_global(), trace

    ua, va, ta = run(True)
    ub, vb, tb = run(False)
    np.testing.assert_array_equal(ua, ub)
    np.testing.assert_array_equal(va, vb)
    assert trace_sig(ta) == trace_sig(tb)
