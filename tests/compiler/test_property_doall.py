"""Property-based tests: compiled doall loops vs a sequential oracle.

For randomly generated affine stencil loops -- random distributions,
grid shapes, ranges, strides, offsets and coefficient structure -- the
distributed execution must match a straightforward numpy evaluation
with copy-in/copy-out semantics.  This is the compiler's end-to-end
correctness property: strip-mining + communication generation +
copy-in/copy-out == sequential semantics, for every distribution.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import clear_plan_cache
from repro.lang import (
    Assign,
    DistArray,
    Doall,
    OnProc,
    Owner,
    ProcessorGrid,
    loopvars,
)
from repro.machine import Machine
from repro.session import Session


@pytest.fixture(autouse=True)
def _fresh():
    clear_plan_cache()
    yield
    clear_plan_cache()


def run_loop(machine, grid, loop):
    def prog(ctx):
        yield from ctx.doall(loop)

    return Session(machine, grid).run(prog)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=6, max_value=40),
    p=st.integers(min_value=1, max_value=5),
    dist=st.sampled_from(["block", "cyclic"]),
    off1=st.integers(min_value=-2, max_value=2),
    off2=st.integers(min_value=-2, max_value=2),
    step=st.integers(min_value=1, max_value=3),
    seed=st.integers(0, 2**31),
)
def test_property_1d_stencil(n, p, dist, off1, off2, step, seed):
    """A[i] = c1*A[i+off1] + c2*B[i+off2] over a strided interior range."""
    rng = np.random.default_rng(seed)
    a0 = rng.standard_normal(n)
    b0 = rng.standard_normal(n)
    lo = max(0, -off1, -off2)
    hi = min(n - 1, n - 1 - off1, n - 1 - off2)
    if hi < lo:
        return
    m = Machine(n_procs=p)
    g = ProcessorGrid((p,))
    A = DistArray((n,), g, dist=(dist,), name="A")
    B = DistArray((n,), g, dist=(dist,), name="B")
    A.from_global(a0)
    B.from_global(b0)
    (i,) = loopvars("i")
    loop = Doall(
        (i,), [(lo, hi, step)], Owner(A, (i,)),
        [Assign(A[i], 0.5 * A[i + off1] + 2.0 * B[i + off2])],
        g,
    )
    run_loop(m, g, loop)
    expected = a0.copy()
    idx = np.arange(lo, hi + 1, step)
    expected[idx] = 0.5 * a0[idx + off1] + 2.0 * b0[idx + off2]
    np.testing.assert_allclose(A.to_global(), expected, rtol=1e-12, atol=1e-12)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=6, max_value=24),
    pshape=st.sampled_from([(1, 1), (2, 1), (2, 2), (3, 2)]),
    d0=st.sampled_from(["block", "cyclic"]),
    d1=st.sampled_from(["block", "cyclic"]),
    oi=st.integers(min_value=-1, max_value=1),
    oj=st.integers(min_value=-1, max_value=1),
    seed=st.integers(0, 2**31),
)
def test_property_2d_stencil(n, pshape, d0, d1, oi, oj, seed):
    """X[i,j] = X[i+oi,j] - X[i,j+oj] + F[i,j] on the interior."""
    rng = np.random.default_rng(seed)
    x0 = rng.standard_normal((n, n))
    f0 = rng.standard_normal((n, n))
    m = Machine(n_procs=int(np.prod(pshape)))
    g = ProcessorGrid(pshape)
    X = DistArray((n, n), g, dist=(d0, d1), name="X")
    F = DistArray((n, n), g, dist=(d0, d1), name="F")
    X.from_global(x0)
    F.from_global(f0)
    i, j = loopvars("i j")
    loop = Doall(
        (i, j), [(1, n - 2), (1, n - 2)], Owner(X, (i, j)),
        [Assign(X[i, j], X[i + oi, j] - X[i, j + oj] + F[i, j])],
        g,
    )
    run_loop(m, g, loop)
    expected = x0.copy()
    ii = np.arange(1, n - 1)
    expected[np.ix_(ii, ii)] = (
        x0[np.ix_(ii + oi, ii)] - x0[np.ix_(ii, ii + oj)] + f0[np.ix_(ii, ii)]
    )
    np.testing.assert_allclose(X.to_global(), expected, rtol=1e-12, atol=1e-12)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=8, max_value=32),
    p=st.integers(min_value=1, max_value=4),
    coeff=st.integers(min_value=2, max_value=3),
    seed=st.integers(0, 2**31),
)
def test_property_coarsening_index(n, p, coeff, seed):
    """u[k] += v[k/coeff] over k = 0, coeff, 2*coeff, ... (semi-coarsening)."""
    rng = np.random.default_rng(seed)
    nc = (n - 1) // coeff + 1
    u0 = rng.standard_normal(n)
    v0 = rng.standard_normal(nc)
    m = Machine(n_procs=p)
    g = ProcessorGrid((p,))
    U = DistArray((n,), g, dist=("block",), name="U")
    V = DistArray((nc,), g, dist=("block",), name="V")
    U.from_global(u0)
    V.from_global(v0)
    (k,) = loopvars("k")
    hi = (nc - 1) * coeff
    loop = Doall(
        (k,), [(0, hi, coeff)], Owner(U, (k,)),
        [Assign(U[k], U[k] + V[k / coeff])],
        g,
    )
    run_loop(m, g, loop)
    expected = u0.copy()
    idx = np.arange(0, hi + 1, coeff)
    expected[idx] += v0[idx // coeff]
    np.testing.assert_allclose(U.to_global(), expected, rtol=1e-12)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=8, max_value=24),
    p=st.integers(min_value=2, max_value=4),
    dist=st.sampled_from(["block", "cyclic"]),
    seed=st.integers(0, 2**31),
)
def test_property_permutation_remote_writes(n, p, dist, seed):
    """B[i] = A[n-1-i] under OnProc placement: exercises write scatter."""
    rng = np.random.default_rng(seed)
    a0 = rng.standard_normal(n)
    m = Machine(n_procs=p)
    g = ProcessorGrid((p,))
    A = DistArray((n,), g, dist=(dist,), name="A")
    B = DistArray((n,), g, dist=(dist,), name="B")
    A.from_global(a0)
    (i,) = loopvars("i")
    loop = Doall(
        (i,), [(0, n - 1)], Owner(A, (i,)),
        [Assign(B[i], A[(n - 1) - i])],
        g,
    )
    run_loop(m, g, loop)
    np.testing.assert_allclose(B.to_global(), a0[::-1], rtol=1e-12)


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=8, max_value=20),
    p=st.integers(min_value=2, max_value=4),
    seed=st.integers(0, 2**31),
)
def test_property_onproc_blocks(n, p, seed):
    """OnProc loops writing per-processor slots (Listing 4's tmp arrays)."""
    rng = np.random.default_rng(seed)
    a0 = rng.standard_normal(4 * p)
    m = Machine(n_procs=p)
    g = ProcessorGrid((p,))
    T = DistArray((4 * p,), g, dist=("block",), name="T")
    T.from_global(a0)
    (ip,) = loopvars("ip")
    loop = Doall(
        (ip,), [(0, p - 1)], OnProc(g, (ip,)),
        [Assign(T[4 * ip], T[4 * ip + 3] * 2.0)],
        g,
    )
    run_loop(m, g, loop)
    expected = a0.copy()
    expected[0 :: 4] = a0[3 :: 4] * 2.0
    np.testing.assert_allclose(T.to_global(), expected, rtol=1e-12)


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=10, max_value=30),
    p=st.integers(min_value=1, max_value=4),
    seed=st.integers(0, 2**31),
)
def test_property_multi_statement_copy_in(n, p, seed):
    """Several statements all read pre-loop values (copy-in/copy-out)."""
    rng = np.random.default_rng(seed)
    a0 = rng.standard_normal(n)
    m = Machine(n_procs=p)
    g = ProcessorGrid((p,))
    A = DistArray((n,), g, dist=("block",), name="A")
    B = DistArray((n,), g, dist=("block",), name="B")
    A.from_global(a0)
    (i,) = loopvars("i")
    loop = Doall(
        (i,), [(1, n - 2)], Owner(A, (i,)),
        [
            Assign(B[i], A[i - 1] + A[i + 1]),
            Assign(A[i], A[i] * 3.0),
            Assign(B[i], B[i] + A[i]),   # reads OLD B and OLD A
        ],
        g,
    )
    run_loop(m, g, loop)
    idx = np.arange(1, n - 1)
    expected_a = a0.copy()
    expected_a[idx] = a0[idx] * 3.0
    expected_b = np.zeros(n)
    expected_b[idx] = 0.0 + a0[idx]  # old B was zero; then B[i]=oldB+oldA
    np.testing.assert_allclose(A.to_global(), expected_a, rtol=1e-12)
    np.testing.assert_allclose(B.to_global(), expected_b, rtol=1e-12, atol=1e-12)
