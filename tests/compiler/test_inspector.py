"""Tests for the runtime inspector/executor (irregular gathers)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import DistArray, ProcessorGrid
from repro.compiler import inspector_gather
from repro.machine import Machine
from repro.util.errors import ValidationError
from repro.session import Session


def gather_on_all(n, p, dist, index_lists):
    """Run a collective inspector gather; index_lists[rank] -> (m, 1) idx."""
    m = Machine(n_procs=p)
    g = ProcessorGrid((p,))
    A = DistArray((n,), g, dist=(dist,), name="A")
    A.from_global(np.arange(float(n)) * 10.0)
    results = {}

    def prog(ctx):
        idx = index_lists.get(ctx.rank)
        arr = None if idx is None else np.asarray(idx, dtype=np.int64).reshape(-1, 1)
        results[ctx.rank] = yield from inspector_gather(ctx, g, A, arr)

    Session(m, g).run(prog)
    return results


@pytest.mark.parametrize("dist", ["block", "cyclic"])
def test_gather_arbitrary_indices(dist):
    results = gather_on_all(
        12, 3, dist,
        {0: [11, 0, 5], 1: [3, 3], 2: []},
    )
    np.testing.assert_array_equal(results[0], [110.0, 0.0, 50.0])
    np.testing.assert_array_equal(results[1], [30.0, 30.0])
    assert results[2].size == 0


def test_gather_2d_indices():
    m = Machine(n_procs=2)
    g = ProcessorGrid((2,))
    A = DistArray((4, 6), g, dist=("*", "block"), name="A")
    ref = np.arange(24.0).reshape(4, 6)
    A.from_global(ref)
    results = {}

    def prog(ctx):
        if ctx.rank == 0:
            idx = np.array([[0, 0], [3, 5], [2, 2]])
        else:
            idx = np.array([[1, 4]])
        results[ctx.rank] = yield from inspector_gather(ctx, g, A, idx)

    Session(m, g).run(prog)
    np.testing.assert_array_equal(results[0], [ref[0, 0], ref[3, 5], ref[2, 2]])
    np.testing.assert_array_equal(results[1], [ref[1, 4]])


def test_gather_requires_round_trip_messages():
    m = Machine(n_procs=2)
    g = ProcessorGrid((2,))
    A = DistArray((8,), g, dist=("block",), name="A")
    A.from_global(np.arange(8.0))

    def prog(ctx):
        idx = np.array([[7 - ctx.rank * 7]])  # each wants the other's element
        yield from inspector_gather(ctx, g, A, idx)

    trace = Session(m, g).run(prog)
    # two rounds (request + reply), both directions
    assert trace.message_count() == 4


def test_gather_shape_validation():
    m = Machine(n_procs=1)
    g = ProcessorGrid((1,))
    A = DistArray((8,), g, dist=("block",), name="A")

    def prog(ctx):
        with pytest.raises(ValidationError):
            yield from inspector_gather(ctx, g, A, np.zeros((2, 3), dtype=np.int64))
        return
        yield  # pragma: no cover

    Session(m, g).run(prog)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=40),
    p=st.integers(min_value=1, max_value=5),
    dist=st.sampled_from(["block", "cyclic"]),
    seed=st.integers(0, 2**31),
)
def test_property_gather_matches_direct_read(n, p, dist, seed):
    rng = np.random.default_rng(seed)
    lists = {
        r: rng.integers(0, n, size=rng.integers(0, 6)).tolist() for r in range(p)
    }
    results = gather_on_all(n, p, dist, lists)
    for r in range(p):
        np.testing.assert_array_equal(
            results[r], np.array([i * 10.0 for i in lists[r]])
        )


@pytest.mark.parametrize("dtype", [np.int32, np.float32, np.complex128])
def test_gather_preserves_dtype(dtype):
    """Gathered values (including empty replies) carry the array dtype."""
    m = Machine(n_procs=3)
    g = ProcessorGrid((3,))
    A = DistArray((12,), g, dist=("block",), name="A", dtype=dtype)
    A.from_global((np.arange(12) * 3).astype(dtype))
    results = {}

    # rank 0 gathers from everyone, rank 1 from nobody, rank 2 locally:
    # owners must reply to empty requests with dtype-correct empties.
    idx = {0: [11, 0, 4], 1: [], 2: [8]}

    def prog(ctx):
        arr = np.asarray(idx[ctx.rank], dtype=np.int64).reshape(-1, 1)
        results[ctx.rank] = yield from inspector_gather(ctx, g, A, arr)

    Session(m, g).run(prog)
    for r in range(3):
        assert results[r].dtype == np.dtype(dtype)
    np.testing.assert_array_equal(results[0], np.array([33, 0, 12], dtype=dtype))
    assert results[1].size == 0
    np.testing.assert_array_equal(results[2], np.array([24], dtype=dtype))


def test_reply_payloads_carry_array_dtype_on_wire():
    """Every reply payload -- including the empty reply to a rank that
    requested nothing -- must carry the array dtype, not float64."""
    from repro.machine.ops import Send

    m = Machine(n_procs=2)
    g = ProcessorGrid((2,))
    A = DistArray((8,), g, dist=("block",), name="A", dtype=np.int16)
    A.from_global(np.arange(8, dtype=np.int16))
    seen = {}
    reply_payloads = []

    def prog(ctx):
        # only rank 0 requests anything; rank 1 still sends an (empty) reply
        idx = np.array([[7]]) if ctx.rank == 0 else None
        inner = inspector_gather(ctx, g, A, idx)
        # interpose on the op stream to capture the actual wire payloads
        value = None
        try:
            while True:
                op = inner.send(value)
                if isinstance(op, Send) and op.tag[1] == "rep":
                    reply_payloads.append(op.data)
                value = yield op
        except StopIteration as stop:
            seen[ctx.rank] = stop.value

    trace = Session(m, g).run(prog)
    assert len(reply_payloads) == 2  # one reply each way, one of them empty
    for payload in reply_payloads:
        assert payload.dtype == np.int16
    sizes = sorted(p.size for p in reply_payloads)
    assert sizes == [0, 1]
    # the one-element int16 reply occupies 2 bytes on the wire, not 8
    assert sorted(msg.nbytes for msg in trace.messages if msg.tag[1] == "rep") == [0, 2]
    assert seen[0].dtype == np.int16 and seen[1].dtype == np.int16
