"""End-to-end tests: compiled doall loops running on the simulated machine."""

import numpy as np
import pytest

from repro.compiler import clear_plan_cache, estimate_doall
from repro.lang import (
    Assign,
    DistArray,
    Doall,
    Owner,
    ProcessorGrid,
    loopvars,
)
from repro.machine import CostModel, Machine
from repro.util.errors import CompileError
from repro.session import Session


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


def machine(n):
    return Machine(n_procs=n, cost=CostModel.balanced())


def run_loop(m, grid, loop, sweeps=1):
    def prog(ctx):
        for _ in range(sweeps):
            yield from ctx.doall(loop)

    return Session(m, grid).run(prog)


def test_pointwise_no_comm():
    m = machine(4)
    g = ProcessorGrid((4,))
    X = DistArray((16,), g, dist=("block",), name="X")
    X.from_global(np.arange(16.0))
    (i,) = loopvars("i")
    loop = Doall((i,), [(0, 15)], Owner(X, (i,)), [Assign(X[i], X[i] * 2.0)], g)
    trace = run_loop(m, g, loop)
    np.testing.assert_array_equal(X.to_global(), np.arange(16.0) * 2)
    assert trace.message_count() == 0


def test_shift_left_matches_copy_in_semantics():
    """Paper's example: A(i) = A(i+1) must read old values (copy-in)."""
    m = machine(4)
    g = ProcessorGrid((4,))
    A = DistArray((16,), g, dist=("block",), name="A")
    A.from_global(np.arange(16.0))
    (i,) = loopvars("i")
    loop = Doall((i,), [(0, 14)], Owner(A, (i,)), [Assign(A[i], A[i + 1])], g)
    run_loop(m, g, loop)
    expected = np.arange(16.0)
    expected[:15] = expected[1:16].copy()
    np.testing.assert_array_equal(A.to_global(), expected)


def test_shift_needs_one_ghost_message_per_boundary():
    m = machine(4)
    g = ProcessorGrid((4,))
    A = DistArray((16,), g, dist=("block",), name="A")
    (i,) = loopvars("i")
    loop = Doall((i,), [(0, 14)], Owner(A, (i,)), [Assign(A[i], A[i + 1])], g)
    trace = run_loop(m, g, loop)
    # procs 0..2 each receive one element from their right neighbor
    assert trace.message_count() == 3
    assert all(msg.nbytes == 8 for msg in trace.messages)


def test_jacobi_2d_step_matches_numpy():
    m = machine(4)
    g = ProcessorGrid((2, 2))
    n = 10
    X = DistArray((n, n), g, dist=("block", "block"), name="X")
    F = DistArray((n, n), g, dist=("block", "block"), name="F")
    rng = np.random.default_rng(0)
    x0 = rng.standard_normal((n, n))
    f0 = rng.standard_normal((n, n))
    X.from_global(x0)
    F.from_global(f0)
    i, j = loopvars("i j")
    stencil = 0.25 * (X[i + 1, j] + X[i - 1, j] + X[i, j + 1] + X[i, j - 1]) - F[i, j]
    loop = Doall(
        (i, j), [(1, n - 2), (1, n - 2)], Owner(X, (i, j)), [Assign(X[i, j], stencil)], g
    )
    run_loop(m, g, loop)
    expected = x0.copy()
    expected[1:-1, 1:-1] = (
        0.25 * (x0[2:, 1:-1] + x0[:-2, 1:-1] + x0[1:-1, 2:] + x0[1:-1, :-2])
        - f0[1:-1, 1:-1]
    )
    np.testing.assert_allclose(X.to_global(), expected, rtol=1e-14)


def test_jacobi_multiple_sweeps_match_reference():
    m = machine(4)
    g = ProcessorGrid((2, 2))
    n = 8
    X = DistArray((n, n), g, dist=("block", "block"), name="X")
    F = DistArray((n, n), g, dist=("block", "block"), name="F")
    x0 = np.linspace(0, 1, n * n).reshape(n, n)
    f0 = np.full((n, n), 0.01)
    X.from_global(x0)
    F.from_global(f0)
    i, j = loopvars("i j")
    stencil = 0.25 * (X[i + 1, j] + X[i - 1, j] + X[i, j + 1] + X[i, j - 1]) - F[i, j]
    loop = Doall(
        (i, j), [(1, n - 2), (1, n - 2)], Owner(X, (i, j)), [Assign(X[i, j], stencil)], g
    )
    run_loop(m, g, loop, sweeps=5)
    ref = x0.copy()
    for _ in range(5):
        new = ref.copy()
        new[1:-1, 1:-1] = (
            0.25 * (ref[2:, 1:-1] + ref[:-2, 1:-1] + ref[1:-1, 2:] + ref[1:-1, :-2])
            - f0[1:-1, 1:-1]
        )
        ref = new
    np.testing.assert_allclose(X.to_global(), ref, rtol=1e-13)


def test_cyclic_distribution_same_numerics():
    """Distribution changes must not change results (paper's tuning claim)."""
    n = 12
    results = {}
    for dist in ["block", "cyclic"]:
        clear_plan_cache()
        m = machine(3)
        g = ProcessorGrid((3,))
        A = DistArray((n,), g, dist=(dist,), name="A")
        A.from_global(np.arange(float(n)))
        (i,) = loopvars("i")
        loop = Doall(
            (i,), [(1, n - 2)], Owner(A, (i,)),
            [Assign(A[i], 0.5 * (A[i - 1] + A[i + 1]))], g,
        )
        run_loop(m, g, loop)
        results[dist] = A.to_global()
    np.testing.assert_allclose(results["block"], results["cyclic"])


def test_remote_writes_via_onproc():
    """unshuffle-style permutation: writes land on other processors."""
    m = machine(4)
    g = ProcessorGrid((4,))
    A = DistArray((8,), g, dist=("block",), name="A")
    B = DistArray((8,), g, dist=("block",), name="B")
    A.from_global(np.arange(8.0))
    (i,) = loopvars("i")
    # B[i] = A[7 - i]: reversal; B writes happen on owner of A[7-i]
    loop = Doall(
        (i,), [(0, 7)], Owner(A, (7 - i,)), [Assign(B[i], A[7 - i])], g
    )
    run_loop(m, g, loop)
    np.testing.assert_array_equal(B.to_global(), np.arange(8.0)[::-1])


def test_semicoarsening_rational_index():
    """intrp3-style k/2 subscript on a strided loop."""
    m = machine(2)
    g = ProcessorGrid((2,))
    u = DistArray((9,), g, dist=("block",), name="u")
    v = DistArray((5,), g, dist=("block",), name="v")
    v.from_global(np.array([0.0, 10.0, 20.0, 30.0, 40.0]))
    (k,) = loopvars("k")
    loop = Doall((k,), [(2, 8, 2)], Owner(u, (k,)), [Assign(u[k], u[k] + v[k / 2])], g)
    run_loop(m, g, loop)
    out = u.to_global()
    np.testing.assert_array_equal(out[2::2], [10.0, 20.0, 30.0, 40.0])
    np.testing.assert_array_equal(out[1::2], 0.0)


def test_two_statement_body_copy_in():
    """Both statements read pre-loop values."""
    m = machine(2)
    g = ProcessorGrid((2,))
    A = DistArray((8,), g, dist=("block",), name="A")
    B = DistArray((8,), g, dist=("block",), name="B")
    A.from_global(np.arange(8.0))
    (i,) = loopvars("i")
    loop = Doall(
        (i,), [(0, 7)], Owner(A, (i,)),
        [Assign(B[i], A[i] * 2.0), Assign(A[i], A[i] + 100.0)],
        g,
    )
    run_loop(m, g, loop)
    np.testing.assert_array_equal(B.to_global(), np.arange(8.0) * 2)
    np.testing.assert_array_equal(A.to_global(), np.arange(8.0) + 100.0)


def test_replicated_read_no_comm():
    m = machine(2)
    g = ProcessorGrid((2,))
    A = DistArray((8,), g, dist=("block",), name="A")
    C = DistArray((8,), g, name="C")  # replicated
    C.from_global(np.arange(8.0))
    (i,) = loopvars("i")
    loop = Doall((i,), [(0, 7)], Owner(A, (i,)), [Assign(A[i], C[i] * 3.0)], g)
    trace = run_loop(m, g, loop)
    np.testing.assert_array_equal(A.to_global(), np.arange(8.0) * 3)
    assert trace.message_count() == 0


def test_replicated_write_rejected():
    m = machine(2)
    g = ProcessorGrid((2,))
    A = DistArray((8,), g, dist=("block",), name="A")
    C = DistArray((8,), g, name="C")
    (i,) = loopvars("i")
    loop = Doall((i,), [(0, 7)], Owner(A, (i,)), [Assign(C[i], A[i])], g)
    with pytest.raises(CompileError):
        run_loop(m, g, loop)


def test_out_of_bounds_read_rejected():
    m = machine(2)
    g = ProcessorGrid((2,))
    A = DistArray((8,), g, dist=("block",), name="A")
    (i,) = loopvars("i")
    loop = Doall((i,), [(0, 7)], Owner(A, (i,)), [Assign(A[i], A[i + 1])], g)
    with pytest.raises(CompileError):
        run_loop(m, g, loop)


def test_section_loop_on_subgrid():
    """Plane solve: a doall over a section runs on the section's grid."""
    m = machine(4)
    g = ProcessorGrid((2, 2))
    u = DistArray((6, 8, 8), g, dist=("*", "block", "block"), name="u")
    ref = np.arange(6 * 8 * 8, dtype=float).reshape(6, 8, 8)
    u.from_global(ref)
    plane = u[:, :, 3]  # owned by grid column 0 (dim2 block: 3 < 4)
    sub = plane.grid
    i, j = loopvars("i j")
    loop = Doall(
        (i, j), [(0, 5), (0, 7)], Owner(plane, (None, j)),
        [Assign(plane[i, j], plane[i, j] * 2.0)], sub,
    )

    def prog(ctx):
        if sub.contains(ctx.rank):
            yield from ctx.doall(loop)

    Session(m, g).run(prog)
    expected = ref.copy()
    expected[:, :, 3] *= 2.0
    np.testing.assert_array_equal(u.to_global(), expected)


def test_estimator_matches_trace_for_jacobi():
    """Static estimate message/byte counts equal the executed trace's."""
    m = machine(4)
    g = ProcessorGrid((2, 2))
    n = 12
    X = DistArray((n, n), g, dist=("block", "block"), name="X")
    i, j = loopvars("i j")
    stencil = 0.25 * (X[i + 1, j] + X[i - 1, j] + X[i, j + 1] + X[i, j - 1])
    loop = Doall(
        (i, j), [(1, n - 2), (1, n - 2)], Owner(X, (i, j)), [Assign(X[i, j], stencil)], g
    )
    est = estimate_doall(loop)
    trace = run_loop(m, g, loop)
    assert est.total_messages() == trace.message_count()
    assert est.total_bytes() == trace.total_bytes()
    assert est.load_imbalance() == 1.0


def test_estimator_report_renders():
    g = ProcessorGrid((2,))
    A = DistArray((8,), g, dist=("block",), name="A")
    (i,) = loopvars("i")
    loop = Doall((i,), [(0, 6)], Owner(A, (i,)), [Assign(A[i], A[i + 1])], g)
    est = estimate_doall(loop)
    text = est.report(CostModel.balanced())
    assert "predicted time" in text
    assert "efficiency" in text
