"""Dedicated tests for the static performance estimator."""

import pytest

from repro.compiler import clear_plan_cache, estimate_doall
from repro.lang import Assign, DistArray, Doall, Owner, ProcessorGrid, Ref, loopvars
from repro.machine import CostModel


@pytest.fixture(autouse=True)
def _fresh():
    clear_plan_cache()
    yield
    clear_plan_cache()


def stencil_loop(n, p, dist):
    g = ProcessorGrid((p,))
    A = DistArray((n,), g, dist=(dist,), name="A")
    (i,) = loopvars("i")
    loop = Doall(
        (i,), [(1, n - 2)], Owner(A, (i,)),
        [Assign(A[i], 0.5 * (A[i - 1] + A[i + 1]))], g,
    )
    return loop


def test_pointwise_loop_no_messages():
    g = ProcessorGrid((4,))
    A = DistArray((16,), g, dist=("block",), name="A")
    (i,) = loopvars("i")
    loop = Doall((i,), [(0, 15)], Owner(A, (i,)), [Assign(A[i], A[i] * 2.0)], g)
    est = estimate_doall(loop)
    assert est.total_messages() == 0
    assert est.total_bytes() == 0
    assert est.total_flops() == 16 * 2  # one mul + one store per point


def test_block_stencil_message_counts():
    est = estimate_doall(stencil_loop(16, 4, "block"))
    # interior procs exchange both edges; end procs one each: 6 messages
    assert est.total_messages() == 6
    assert est.total_bytes() == 6 * 8


def test_cyclic_stencil_floods():
    est_block = estimate_doall(stencil_loop(24, 4, "block"))
    est_cyc = estimate_doall(stencil_loop(24, 4, "cyclic"))
    assert est_cyc.total_bytes() > 5 * est_block.total_bytes()


def test_predicted_time_decreases_with_cheap_comm():
    est = estimate_doall(stencil_loop(64, 4, "block"))
    slow = est.predicted_time(CostModel.hypercube_1989())
    fast = est.predicted_time(CostModel.fast_network())
    assert fast < slow


def test_efficiency_bounds():
    est = estimate_doall(stencil_loop(64, 4, "block"))
    eff = est.predicted_efficiency(CostModel.fast_network())
    assert 0.0 < eff <= 1.0
    worse = est.predicted_efficiency(CostModel.hypercube_1989())
    assert worse <= eff


def test_imbalance_detects_triangular_iteration():
    """The LU motivation: a shrinking range starves block, not cyclic."""
    n, p = 32, 4
    imb = {}
    for dist in ("block", "cyclic"):
        clear_plan_cache()
        g = ProcessorGrid((p,))
        A = DistArray((n, n), g, dist=(dist, "*"), name="A")
        i, j = loopvars("i j")
        k = n // 2  # late elimination step: only rows k+1.. remain
        loop = Doall(
            (i, j), [(k + 1, n - 1), (k + 1, n - 1)], Owner(A, (i, None)),
            [Assign(A[i, j], A[i, j] - A[i, k] * Ref(A, (k, k)))], g,
        )
        imb[dist] = estimate_doall(loop).load_imbalance()
    assert imb["block"] > 1.9   # half the procs idle
    assert imb["cyclic"] < 1.2


def test_report_lists_every_rank():
    est = estimate_doall(stencil_loop(16, 4, "block"))
    text = est.report(CostModel.balanced())
    for r in range(4):
        assert f"\n{r:>4} " in "\n" + text or f" {r} " in text
    assert "efficiency" in text


def test_estimate_empty_loop_grid_rank():
    """Ranks with no iterations appear with zero work."""
    g = ProcessorGrid((4,))
    A = DistArray((16,), g, dist=("block",), name="A")
    (i,) = loopvars("i")
    loop = Doall((i,), [(0, 3)], Owner(A, (i,)), [Assign(A[i], A[i] + 1.0)], g)
    est = estimate_doall(loop)
    per = {r.rank: r for r in est.per_rank}
    assert per[0].iterations == 4
    assert per[3].iterations == 0
    assert per[3].flops == 0
