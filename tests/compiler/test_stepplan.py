"""The compiled replay fast path: StepPlan equivalence and lifecycle.

``compiled=True`` (the default) replays frozen per-rank StepPlans;
``compiled=False`` runs the interpreted reference executor.  Everything
observable -- array results, message streams, marks, compute charges,
cache accounting -- must be bit-identical between the two.  These tests
pin that, plus the plan-lifecycle guarantees (stale plans dropped on
redistribution) and the snapshot-elision and cheap-marks machinery that
ride along.
"""

import numpy as np
import pytest

import repro
from repro import Machine, ProcessorGrid, Session
from repro.compiler.commgen import StepPlan, freeze_positions
from repro.compiler.commsched import freeze_payload
from repro.compiler.schedule import _eval_expr, drop_plans_for_array
from repro.lang import Assign, DistArray, Doall, Owner, loopvars
from repro.lang.expr import compile_expr
from repro.machine.ops import Recv, Send
from repro.machine.simulator import _snapshot


def trace_sig(trace):
    """Everything two equivalent executions must agree on, bit for bit."""
    return (
        [(m.src, m.dst, m.tag, m.nbytes, m.t_send, m.t_arrive, m.t_recv)
         for m in trace.messages],
        [(m.proc, m.label, m.payload) for m in trace.marks],
        [(c.proc, c.start, c.end, c.label) for c in trace.computes],
        dict(trace.finish_times),
    )


def stencil_program(n, p, dist=("block", "block"), compiled=True, backend=None):
    grid = ProcessorGrid((p, p))
    X = DistArray((n, n), grid, dist=dist, name="X")
    F = DistArray((n, n), grid, dist=dist, name="F")
    F.from_global(np.random.default_rng(5).standard_normal((n, n)))
    i, j = loopvars("i j")
    body = [Assign(
        X[i, j],
        0.25 * (X[i + 1, j] + X[i - 1, j] + X[i, j + 1] + X[i, j - 1]) - F[i, j],
    )]
    loop = Doall(vars=(i, j), ranges=[(1, n - 2), (1, n - 2)],
                 on=Owner(X, (i, j)), body=body, grid=grid)
    sess = Session(Machine(n_procs=p * p), grid, compiled=compiled,
                   backend=backend)
    return repro.compile(loop, session=sess), X


def close_backend(prog):
    """Release a session's multiprocessing worker pool, if it spawned one."""
    if prog.session._mp_backend is not None:
        prog.session._mp_backend.close()


# The bit-identity contract holds across *executors* (compiled vs
# interpreted) and across *backends* (event-driven simulator vs real
# shared-memory worker processes): every parametrized case below is
# compared against the interpreted simulator reference.
BACKENDS = [None, "multiprocessing"]


# ----------------------------------------------------------------------
# Equivalence
# ----------------------------------------------------------------------


@pytest.mark.parametrize("overlap", [False, True])
@pytest.mark.parametrize("backend", BACKENDS)
def test_stencil_bit_identical(overlap, backend):
    pa, Xa = stencil_program(20, 2, compiled=True, backend=backend)
    pb, Xb = stencil_program(20, 2, compiled=False)
    ta = pa.run(iters=4, overlap=overlap)
    tb = pb.run(iters=4, overlap=overlap)
    close_backend(pa)
    np.testing.assert_array_equal(Xa.to_global(), Xb.to_global())
    assert trace_sig(ta) == trace_sig(tb)


@pytest.mark.parametrize("backend", BACKENDS)
def test_remote_write_bit_identical(backend):
    """Mismatched layouts force scatter schedules; every executor and
    backend must agree with the interpreted simulator reference."""
    def run(compiled, backend=None):
        g = ProcessorGrid((4,))
        A = DistArray((17,), g, dist=("block",), name="A")
        B = DistArray((17,), g, dist=("cyclic",), name="B")
        A.from_global(np.arange(17.0))
        (i,) = loopvars("i")
        loop = Doall(vars=(i,), ranges=[(1, 15)], on=Owner(A, (i,)),
                     body=[Assign(B[i], A[i - 1] + 2.0 * A[i + 1])], grid=g)
        sess = Session(Machine(n_procs=4), g, compiled=compiled,
                       backend=backend)
        prog = repro.compile(loop, session=sess)
        trace = prog.run(iters=3)
        close_backend(prog)
        return B.to_global(), trace

    xa, ta = run(True, backend)
    xb, tb = run(False)
    np.testing.assert_array_equal(xa, xb)
    assert trace_sig(ta) == trace_sig(tb)


def test_diagonal_flat_store_bit_identical():
    """A[i, i] is not box-decomposable: the frozen flat-store path."""
    def run(compiled):
        g = ProcessorGrid((2,))
        A = DistArray((9, 9), g, dist=("block", "*"), name="A")
        B = DistArray((9, 9), g, dist=("block", "*"), name="B")
        B.from_global(np.random.default_rng(1).standard_normal((9, 9)))
        (i,) = loopvars("i")
        loop = Doall(vars=(i,), ranges=[(0, 8)], on=Owner(A, (i, 0)),
                     body=[Assign(A[i, i], B[i, i] * 3.0 - 1.0)], grid=g)
        sess = Session(Machine(n_procs=2), g, compiled=compiled)
        prog = repro.compile(loop, session=sess)
        trace = prog.run(iters=2)
        return A.to_global(), trace

    xa, ta = run(True)
    xb, tb = run(False)
    np.testing.assert_array_equal(xa, xb)
    assert trace_sig(ta) == trace_sig(tb)


def test_strided_ranges_bit_identical():
    """Stride-2 loops (zebra sweeps) defeat the slice fast path cleanly."""
    def run(compiled):
        g = ProcessorGrid((2,))
        u = DistArray((16,), g, dist=("cyclic",), name="u")
        v = DistArray((16,), g, dist=("cyclic",), name="v")
        u.from_global(np.arange(16.0))
        (i,) = loopvars("i")
        loop = Doall(vars=(i,), ranges=[(1, 14, 2)], on=Owner(v, (i,)),
                     body=[Assign(v[i], u[i - 1] + u[i + 1])], grid=g)
        sess = Session(Machine(n_procs=2), g, compiled=compiled)
        prog = repro.compile(loop, session=sess)
        trace = prog.run(iters=3)
        return v.to_global(), trace

    xa, ta = run(True)
    xb, tb = run(False)
    np.testing.assert_array_equal(xa, xb)
    assert trace_sig(ta) == trace_sig(tb)


def test_plan_accounting_identical():
    """Fast-path as-if hits keep PlanCache stats equal to per-sweep probes."""
    pa, _ = stencil_program(16, 2, compiled=True)
    pb, _ = stencil_program(16, 2, compiled=False)
    pa.run(iters=5)
    pb.run(iters=5)
    assert (pa.session.plans.kind_stats()["doall"]
            == pb.session.plans.kind_stats()["doall"])
    pa.run(iters=3)
    pb.run(iters=3)
    assert (pa.session.plans.kind_stats()["doall"]
            == pb.session.plans.kind_stats()["doall"])
    assert pa.session.hit_rates()["doall"] == pb.session.hit_rates()["doall"]


# ----------------------------------------------------------------------
# Plan lifecycle: redistribution must retire compiled closures
# ----------------------------------------------------------------------


def test_step_plans_dropped_with_analysis():
    prog, X = stencil_program(16, 2, compiled=True)
    prog.run(iters=2)
    plans = prog.session.plans
    (entry,) = [v for (kind, _), (v, _) in plans._entries.items() if kind == "doall"]
    assert entry.step_plans, "compiled run must have built step plans"
    assert drop_plans_for_array(X) >= 1
    assert not [k for k in plans._entries if k[0] == "doall"]


@pytest.mark.parametrize("backend", BACKENDS)
def test_redistribute_between_runs_regression(backend):
    """Layout flips between runs: the compiled path must rebuild, never
    write through a closure captured against the old blocks -- and the
    multiprocessing backend must respawn its worker pool (epoch-keyed),
    never sweep against stale shared-memory adoptions."""
    def run(compiled, backend=None):
        g = ProcessorGrid((2,))
        u = DistArray((13,), g, dist=("block",), name="u")
        v = DistArray((13,), g, dist=("block",), name="v")
        u.from_global(np.arange(13.0))
        (i,) = loopvars("i")
        loop = Doall(vars=(i,), ranges=[(1, 11)], on=Owner(v, (i,)),
                     body=[Assign(v[i], 0.5 * (u[i - 1] + u[i + 1]))], grid=g)
        sess = Session(Machine(n_procs=2), g, compiled=compiled,
                       backend=backend)
        prog = repro.compile(loop, session=sess)
        out = []
        prog.run(iters=2)
        out.append(v.to_global().copy())
        u.redistribute(("cyclic",))
        v.redistribute(("cyclic",))
        prog.run(iters=2)
        out.append(v.to_global().copy())
        u.redistribute(("block",))
        v.redistribute(("block",))
        prog.run(iters=2)
        out.append(v.to_global().copy())
        close_backend(prog)
        return out

    for a, b in zip(run(True, backend), run(False)):
        np.testing.assert_array_equal(a, b)


@pytest.mark.parametrize("backend", BACKENDS)
def test_redistribute_mid_run_bit_identical(backend):
    """Parsub programs (opaque generators, mid-run repartitions) run on
    the backend's inner reference machine; the trace must not care."""
    def run(compiled, backend=None):
        g = ProcessorGrid((2,))
        u = DistArray((12,), g, dist=("block",), name="u")
        v = DistArray((12,), g, dist=("block",), name="v")
        u.from_global(np.arange(12.0))
        (i,) = loopvars("i")
        loop = Doall(vars=(i,), ranges=[(1, 10)], on=Owner(v, (i,)),
                     body=[Assign(v[i], 0.5 * (u[i - 1] + u[i + 1]))], grid=g)
        sess = Session(Machine(n_procs=2), g, compiled=compiled,
                       backend=backend)

        def program(ctx):
            yield from ctx.doall(loop)
            yield from ctx.redistribute(u, ("cyclic",))
            yield from ctx.doall(loop)
            yield from ctx.redistribute(u, ("block",))
            yield from ctx.doall(loop)

        trace = sess.run(program)
        if sess._mp_backend is not None:
            sess._mp_backend.close()
        return v.to_global(), trace

    xa, ta = run(True, backend)
    xb, tb = run(False)
    np.testing.assert_array_equal(xa, xb)
    assert trace_sig(ta) == trace_sig(tb)


def test_stale_section_still_fails_loudly_when_compiled():
    """Redistributing a base must not let a compiled plan silently reuse
    a stale Section; the Section freshness check still fires."""
    from repro.util.errors import ValidationError

    g = ProcessorGrid((2,))
    A = DistArray((8, 4), g, dist=("block", "*"), name="A")
    B = DistArray((8,), g, dist=("block",), name="B")
    sect = A[:, 1]
    (i,) = loopvars("i")
    loop = Doall(vars=(i,), ranges=[(1, 6)], on=Owner(B, (i,)),
                 body=[Assign(B[i], sect[i] + 1.0)], grid=g)
    sess = Session(Machine(n_procs=2), g, compiled=True)
    prog = repro.compile(loop, session=sess)
    prog.run()
    A.redistribute(("cyclic", "*"))
    with pytest.raises(ValidationError, match="stale section"):
        prog.run()


# ----------------------------------------------------------------------
# Snapshot elision
# ----------------------------------------------------------------------


def test_copy_in_semantics_survive_snapshot_elision():
    """The sender overwrites X in phase 4 of the same sweep its ghosts
    were sent; receivers must still observe the pre-sweep values."""
    pa, Xa = stencil_program(12, 2, compiled=True)
    pb, Xb = stencil_program(12, 2, compiled=False)
    pa.run(iters=6)
    pb.run(iters=6)
    np.testing.assert_array_equal(Xa.to_global(), Xb.to_global())


def test_snapshot_skips_frozen_copies_mutable():
    frozen = freeze_payload(np.arange(4.0))
    assert _snapshot(frozen) is frozen
    live = np.arange(4.0)
    copy = _snapshot(live)
    assert copy is not live
    copy_view = _snapshot(live[1:])
    assert copy_view.base is not live


def test_freeze_payload_copies_views():
    base = np.arange(10.0)
    view = base[2:6]
    frozen = freeze_payload(view)
    assert not frozen.flags.writeable
    base[:] = -1.0  # later mutation must not reach the frozen payload
    np.testing.assert_array_equal(frozen, [2.0, 3.0, 4.0, 5.0])


def test_snapshot_copies_readonly_views_of_live_memory():
    """A read-only *view* (broadcast_to of a mutable buffer) is not
    by-value: the sender can still mutate it through the base, so the
    simulator must copy it -- only owning frozen arrays skip."""
    base = np.zeros(4)
    view = np.broadcast_to(base, (4,))
    assert not view.flags.writeable  # the trap: read-only but aliased
    snap = _snapshot(view)
    base[:] = 9.0
    np.testing.assert_array_equal(snap, np.zeros(4))

    def sender():
        x = np.zeros(4)
        yield Send(1, np.broadcast_to(x, (4,)), tag="t")
        x[:] = 9.0

    def receiver():
        got = yield Recv(src=0, tag="t")
        np.testing.assert_array_equal(got, np.zeros(4))

    Machine(n_procs=2).run({0: sender(), 1: receiver()})


def test_adhoc_send_still_deep_copied():
    """Hand-written node programs sending live buffers keep by-value
    semantics: the simulator still snapshots writeable payloads."""
    buf = np.zeros(3)

    def sender(ctx_rank=0):
        yield Send(1, buf, tag="t")
        buf[:] = 9.0

    def receiver():
        got = yield Recv(src=0, tag="t")
        assert got.sum() == 0.0, "receiver saw the sender's later mutation"

    Machine(n_procs=2).run({0: sender(), 1: receiver()})


# ----------------------------------------------------------------------
# compile_expr / freeze_positions units
# ----------------------------------------------------------------------


def test_compile_expr_matches_interpreter():
    g = ProcessorGrid((1,))
    A = DistArray((6,), g, dist=("block",), name="A")
    (i,) = loopvars("i")
    expr = (2.0 * A[i] - A[i + 1]) / (A[i - 1] + 3.0) + (-A[i])
    vals = {0: np.array([1.0, 2.0]), 1: np.array([4.0, 5.0]),
            2: np.array([7.0, 8.0])}

    offs = {}
    for ref in expr.refs():
        offs[id(ref)] = int(ref.idx[0].const)

    fn = compile_expr(expr, resolve=lambda ref: lambda: vals[offs[id(ref)] + 1])

    class FakeWs:
        def fetch(self, idx):
            return vals[int(np.asarray(idx[0]).reshape(-1)[0])]

    class FakeIters:
        def env(self):
            return {"i": np.array([1])}

    ref_result = _eval_expr(expr, {id(A): FakeWs()}, FakeIters())
    np.testing.assert_array_equal(np.asarray(fn()), np.asarray(ref_result))


def test_freeze_positions_contiguous_box():
    pos = (np.arange(3).reshape(3, 1), np.arange(2, 6).reshape(1, 4))
    assert freeze_positions(pos) == (slice(0, 3), slice(2, 6))
    buf = np.arange(50.0).reshape(5, 10)
    np.testing.assert_array_equal(buf[freeze_positions(pos)], buf[pos])


def test_freeze_positions_rejects_non_boxes():
    # strided run
    assert freeze_positions((np.array([0, 2, 4]),)) is None
    # diagonal: both entries vary along axis 0
    diag = (np.arange(3).reshape(3, 1), np.arange(3).reshape(3, 1))
    assert freeze_positions(diag) is None
    # shape infidelity: slice form would add a dimension
    assert freeze_positions((np.arange(3), np.asarray(2))) is None
    # empty
    assert freeze_positions((np.empty((0,), dtype=np.int64),)) is None


def test_step_plan_is_memoized_per_rank():
    prog, _ = stencil_program(12, 2, compiled=True)
    prog.run()
    plans = prog.session.plans
    (analysis,) = [v for (kind, _), (v, _) in plans._entries.items()
                   if kind == "doall"]
    assert analysis.step_plan(0) is analysis.step_plan(0)
    assert isinstance(analysis.step_plan(1), StepPlan)
    assert set(analysis.step_plans) == {0, 1, 2, 3}


# ----------------------------------------------------------------------
# Cheap-marks mode
# ----------------------------------------------------------------------


def test_cheap_marks_counts_match_full():
    pa, _ = stencil_program(14, 2, compiled=True)
    full = pa.run(iters=4)
    cheap = pa.run(iters=4, marks="cheap")
    assert cheap.level == "cheap"
    assert full.level == "full"
    # no per-op schedule marks were materialized...
    assert cheap.schedule_events() == []
    assert cheap.mark_counts
    # ...but every count, rate, and wire number is unchanged
    assert cheap.schedule_counts() == full.schedule_counts()
    assert cheap.schedule_counts("gather") == full.schedule_counts("gather")
    assert cheap.schedule_directions() == full.schedule_directions()
    assert cheap.schedule_hit_rate() == full.schedule_hit_rate()
    assert cheap.message_count() == full.message_count()
    assert cheap.total_bytes() == full.total_bytes()


def test_cheap_marks_for_gather_and_repartition():
    g = ProcessorGrid((2,))
    A = DistArray((10,), g, dist=("block",), name="A")
    A.from_global(np.arange(10.0))
    idx = np.array([[1], [8], [3]])

    def program(ctx):
        yield from ctx.cached_gather(g, A, idx)
        yield from ctx.cached_gather(g, A, idx)
        yield from ctx.redistribute(A, ("cyclic",))

    full_t = Session(Machine(n_procs=2), g).run(program)
    A2 = DistArray((10,), g, dist=("block",), name="A")
    A2.from_global(np.arange(10.0))

    def program2(ctx):
        yield from ctx.cached_gather(g, A2, idx)
        yield from ctx.cached_gather(g, A2, idx)
        yield from ctx.redistribute(A2, ("cyclic",))

    cheap_t = Session(Machine(n_procs=2), g, marks="cheap").run(program2)
    assert cheap_t.level == "cheap"
    assert cheap_t.schedule_counts("gather") == full_t.schedule_counts("gather")
    assert (cheap_t.schedule_counts("repartition")
            == full_t.schedule_counts("repartition"))
    assert cheap_t.schedule_hit_rate("gather") == full_t.schedule_hit_rate("gather")
    assert cheap_t.message_count() == full_t.message_count()


def test_marks_validation():
    from repro.util.errors import ValidationError

    with pytest.raises(ValidationError, match="marks"):
        Session(marks="nope")
    g = ProcessorGrid((1,))
    from repro.lang.context import KaliCtx

    with pytest.raises(ValidationError, match="marks"):
        KaliCtx(0, g, session=Session(), marks="loud")
