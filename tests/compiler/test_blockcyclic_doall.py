"""End-to-end doall execution under block-cyclic distributions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import clear_plan_cache
from repro.lang import (
    Assign,
    BlockCyclic,
    DistArray,
    Doall,
    Owner,
    ProcessorGrid,
    loopvars,
)
from repro.machine import Machine
from repro.session import Session


@pytest.fixture(autouse=True)
def _fresh():
    clear_plan_cache()
    yield
    clear_plan_cache()


def run_loop(m, grid, loop):
    def prog(ctx):
        yield from ctx.doall(loop)

    return Session(m, grid).run(prog)


@pytest.mark.parametrize("block", [1, 2, 3])
def test_blockcyclic_stencil(block):
    n, p = 20, 3
    m = Machine(n_procs=p)
    g = ProcessorGrid((p,))
    A = DistArray((n,), g, dist=(BlockCyclic(block),), name="A")
    a0 = np.arange(float(n))
    A.from_global(a0)
    (i,) = loopvars("i")
    loop = Doall(
        (i,), [(1, n - 2)], Owner(A, (i,)),
        [Assign(A[i], 0.5 * (A[i - 1] + A[i + 1]))], g,
    )
    run_loop(m, g, loop)
    expected = a0.copy()
    expected[1:-1] = 0.5 * (a0[:-2] + a0[2:])
    np.testing.assert_allclose(A.to_global(), expected, rtol=1e-13)


def test_blockcyclic_2d_mixed_with_block():
    n = 12
    m = Machine(n_procs=4)
    g = ProcessorGrid((2, 2))
    X = DistArray((n, n), g, dist=(BlockCyclic(2), "block"), name="X")
    x0 = np.arange(float(n * n)).reshape(n, n)
    X.from_global(x0)
    i, j = loopvars("i j")
    loop = Doall(
        (i, j), [(1, n - 2), (1, n - 2)], Owner(X, (i, j)),
        [Assign(X[i, j], X[i - 1, j] + X[i, j + 1])], g,
    )
    run_loop(m, g, loop)
    expected = x0.copy()
    ii = np.arange(1, n - 1)
    expected[np.ix_(ii, ii)] = x0[np.ix_(ii - 1, ii)] + x0[np.ix_(ii, ii + 1)]
    np.testing.assert_allclose(X.to_global(), expected, rtol=1e-13)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=6, max_value=30),
    p=st.integers(min_value=1, max_value=4),
    block=st.integers(min_value=1, max_value=4),
    off=st.integers(min_value=-2, max_value=2),
    seed=st.integers(0, 2**31),
)
def test_property_blockcyclic_shift(n, p, block, off, seed):
    clear_plan_cache()
    rng = np.random.default_rng(seed)
    a0 = rng.standard_normal(n)
    lo, hi = max(0, -off), min(n - 1, n - 1 - off)
    if hi < lo:
        return
    m = Machine(n_procs=p)
    g = ProcessorGrid((p,))
    A = DistArray((n,), g, dist=(BlockCyclic(block),), name="A")
    B = DistArray((n,), g, dist=(BlockCyclic(block),), name="B")
    A.from_global(a0)
    (i,) = loopvars("i")
    loop = Doall((i,), [(lo, hi)], Owner(A, (i,)), [Assign(B[i], A[i + off])], g)
    run_loop(m, g, loop)
    idx = np.arange(lo, hi + 1)
    expected = np.zeros(n)
    expected[idx] = a0[idx + off]
    np.testing.assert_allclose(B.to_global(), expected, rtol=1e-13)
