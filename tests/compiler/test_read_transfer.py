"""Read-path unification and comm/compute overlap regressions.

PR 3 replaced the ReadPlan's private frozen gather/scatter arrays with
gather-direction :class:`~repro.compiler.commsched.TransferSchedule`
objects, so the doall read path replays through the same transfer
executor as the write side and repartition.  These tests pin the three
properties the switch must preserve or add:

* bit-identity: doall results are unchanged by the unification;
* trace vocabulary: reads announce themselves as ``("gather", ...)``
  schedule events, so per-direction reuse reporting covers them;
* overlap: the overlap-aware executor finishes in strictly less
  simulated time than the serialized send-then-compute sum, without
  changing a single byte on the wire.
"""

import numpy as np
import pytest

from repro.compiler.commgen import LoopAnalysis, ReadPlan
from repro.compiler.commsched import TransferSchedule
from repro.compiler.estimate import estimate_doall
from repro.compiler.schedule import clear_plan_cache, get_analysis
from repro.lang import (
    Assign,
    DistArray,
    Doall,
    Owner,
    ProcessorGrid,
    loopvars,
)
from repro.machine import Machine
from repro.machine.costmodel import CostModel
from repro.tensor.jacobi import build_jacobi_loop, jacobi_reference
from repro.session import Session


def _stencil_loop(n, p):
    g = ProcessorGrid((p,))
    u = DistArray((n,), g, dist=("block",), name="u")
    v = DistArray((n,), g, dist=("block",), name="v")
    u.from_global(np.arange(float(n)))
    (i,) = loopvars("i")
    loop = Doall(
        vars=(i,),
        ranges=[(1, n - 2)],
        on=Owner(v, (i,)),
        body=[Assign(v[i], 0.5 * (u[i - 1] + u[i + 1]))],
        grid=g,
    )
    return g, u, v, loop


def _run_jacobi(n, p, iters, overlap, cost=None):
    clear_plan_cache()
    rng = np.random.default_rng(7)
    f = 1e-3 * rng.standard_normal((n, n))
    grid = ProcessorGrid((p, p))
    X = DistArray((n, n), grid, dist=("block", "block"), name="X")
    F = DistArray((n, n), grid, dist=("block", "block"), name="F")
    F.from_global(f)
    loop = build_jacobi_loop(X, F, n - 1, grid)

    def prog(ctx):
        for _ in range(iters):
            yield from ctx.doall(loop, overlap=overlap)

    machine = Machine(
        n_procs=p * p, cost=cost if cost is not None else CostModel.hypercube_1989()
    )
    trace = Session(machine, grid).run(prog)
    return X.to_global(), trace, loop, f


# ----------------------------------------------------------------------
# Unification: the frozen read plan IS a gather TransferSchedule
# ----------------------------------------------------------------------


def test_readplan_freezes_into_gather_transfer():
    clear_plan_cache()
    _, u, _, loop = _stencil_loop(12, 3)
    analysis = LoopAnalysis(loop)
    for plans in analysis.read_plans:
        for rank, plan in plans.items():
            ts = plan.transfer
            assert ts is not None
            assert isinstance(ts, TransferSchedule)
            assert ts.direction == "gather"
            assert ts.rank == rank
    assert analysis.has_read_transfers
    # the private frozen arrays of PR 1 are gone for good
    for name in ("send_locs", "own_locs", "own_pos", "recv_pos"):
        assert name not in ReadPlan.__slots__


def test_doall_results_bit_identical_after_unification():
    """The unified read path must reproduce the sequential reference
    bit-for-bit (same float ops, same order, same ghost values)."""
    n, p, iters = 17, 2, 5
    x_kf1, _, _, f = _run_jacobi(n, p, iters, overlap=False)
    x_ref = jacobi_reference(f, iters)
    assert np.array_equal(x_kf1, x_ref)


def test_overlap_mode_bit_identical_and_same_wire():
    """Overlap changes when time is charged, never values or messages."""
    n, p, iters = 17, 2, 4
    x_ser, t_ser, _, _ = _run_jacobi(n, p, iters, overlap=False)
    x_ovl, t_ovl, _, _ = _run_jacobi(n, p, iters, overlap=True)
    assert np.array_equal(x_ser, x_ovl)
    assert t_ovl.message_count() == t_ser.message_count()
    assert t_ovl.total_bytes() == t_ser.total_bytes()
    # byte-identical per-message wire content
    assert sorted(m.nbytes for m in t_ovl.messages) == sorted(
        m.nbytes for m in t_ser.messages
    )


# ----------------------------------------------------------------------
# Golden trace: reads emit ("gather", ...) schedule events
# ----------------------------------------------------------------------


def test_golden_reads_emit_gather_direction_marks():
    clear_plan_cache()
    n, p, sweeps = 12, 3, 2
    g, u, v, loop = _stencil_loop(n, p)

    def prog(ctx):
        for _ in range(sweeps):
            yield from ctx.doall(loop)

    trace = Session(Machine(n_procs=p), g).run(prog)
    # first executing rank compiles (build), every later execution replays
    assert trace.schedule_counts("gather") == {"build": 1, "hit": p * sweeps - 1}
    gather_events = trace.schedule_events("gather")
    assert all(m.payload == ("gather", "u") for m in gather_events)
    # reuse is visible from the second sweep on
    assert trace.schedule_hit_rate("gather") == pytest.approx(
        (p * sweeps - 1) / (p * sweeps)
    )
    assert "gather" in trace.schedule_directions()


# ----------------------------------------------------------------------
# Overlap: simulated time < serialized send+compute sum
# ----------------------------------------------------------------------


def test_overlap_beats_serialized_executor():
    n, p, iters = 33, 2, 6
    _, t_ser, _, _ = _run_jacobi(n, p, iters, overlap=False)
    _, t_ovl, _, _ = _run_jacobi(n, p, iters, overlap=True)
    assert t_ovl.makespan() < t_ser.makespan()
    # the hidden compute shows up as overlap, and the serialized
    # executor has (nearly) none to begin with
    assert t_ovl.overlap_fraction() > t_ser.overlap_fraction()
    assert t_ovl.overlap_fraction() > 0.2


def test_overlap_never_slower_across_cost_models():
    """Wire content is identical and compute is merely front-loaded, so
    overlapped makespan can never exceed the serialized one."""
    for cost in (
        CostModel.hypercube_1989(),
        CostModel.balanced(),
        CostModel.fast_network(),
        CostModel.zero_comm(),
    ):
        _, t_ser, _, _ = _run_jacobi(17, 2, 3, overlap=False, cost=cost)
        _, t_ovl, _, _ = _run_jacobi(17, 2, 3, overlap=True, cost=cost)
        assert t_ovl.makespan() <= t_ser.makespan() + 1e-12


# ----------------------------------------------------------------------
# Estimator: overlapped critical path, not the serialized sum
# ----------------------------------------------------------------------


def test_interior_counts_derived_from_analysis():
    clear_plan_cache()
    _, _, _, loop = _stencil_loop(12, 3)
    analysis, _ = get_analysis(loop)
    # 10 iteration points on p=3 blocks of 4: every rank's interior is
    # its block minus the points reading a neighbor's ghost value
    assert sum(analysis.interior_count(r) for r in analysis.ranks) > 0
    for r, iters in analysis.iters.items():
        assert 0 <= analysis.interior_count(r) <= iters.count()
    # boundary points (reading across a block edge) exist on every rank
    assert any(
        analysis.interior_count(r) < analysis.iters[r].count()
        for r in analysis.ranks
    )


def test_estimate_predicts_overlapped_time():
    clear_plan_cache()
    n, p, iters = 33, 2, 6
    cost = CostModel.hypercube_1989()
    _, t_ovl, loop, _ = _run_jacobi(n, p, iters, overlap=True, cost=cost)
    _, t_ser, loop_s, _ = _run_jacobi(n, p, iters, overlap=False, cost=cost)
    est = estimate_doall(loop)
    pred_ser = est.predicted_time(cost)
    pred_ovl = est.predicted_time(cost, overlap=True)
    # overlap hides work, so its critical path is predicted shorter
    assert pred_ovl < pred_ser
    # and never shorter than compute alone (nothing is free)
    assert pred_ovl >= max(r.compute_time(cost) for r in est.per_rank)
    # the overlapped prediction tracks the overlapped run at least as
    # exactly as the serialized prediction tracks the serialized run
    # (both are critical-path upper bounds per sweep)
    sim_ovl = t_ovl.makespan() / iters
    sim_ser = t_ser.makespan() / iters
    assert pred_ovl >= sim_ovl * 0.95
    err_ovl = abs(pred_ovl - sim_ovl) / sim_ovl
    err_ser = abs(pred_ser - sim_ser) / sim_ser
    assert err_ovl <= err_ser + 1e-9


def test_estimate_overlap_stable_across_redistribution():
    """The lazy interior derivation must consult the analysis-time
    layout snapshot, not the arrays' live distribution: an estimate
    frozen under one layout keeps predicting that layout even if the
    arrays are redistributed before the overlapped prediction is asked
    for."""
    clear_plan_cache()
    n, p = 25, 2
    cost = CostModel.hypercube_1989()
    grid = ProcessorGrid((p, p))
    X = DistArray((n, n), grid, dist=("block", "block"), name="X")
    F = DistArray((n, n), grid, dist=("block", "block"), name="F")
    loop = build_jacobi_loop(X, F, n - 1, grid)

    est_eager = estimate_doall(loop)
    expected = est_eager.predicted_time(cost, overlap=True)  # resolves now

    clear_plan_cache()
    est_lazy = estimate_doall(loop)  # interior still unresolved ...
    X.redistribute(("cyclic", "cyclic"))
    F.redistribute(("cyclic", "cyclic"))
    assert est_lazy.predicted_time(cost, overlap=True) == expected


def test_overlap_with_remote_writes():
    """Remote-write (scatter) values are produced after compute, so they
    cannot hide interior compute: the overlapped prediction must charge
    them as a serialized tail, and the overlap-mode executor must stay
    bit-identical with remote writes in play."""
    clear_plan_cache()
    n, p = 16, 4
    cost = CostModel.hypercube_1989()

    def build():
        g = ProcessorGrid((p,))
        a = DistArray((n,), g, dist=("block",), name="a")
        c = DistArray((n,), g, dist=("block",), name="c")
        a.from_global(np.arange(float(n)))
        (i,) = loopvars("i")
        # lhs index shifted off the on clause: writes cross rank borders
        loop = Doall(
            vars=(i,),
            ranges=[(0, n - 3)],
            on=Owner(a, (i,)),
            body=[Assign(c[i + 2], a[i] + 1.0)],
            grid=g,
        )
        return g, c, loop

    results = {}
    for overlap in (False, True):
        clear_plan_cache()
        g, c, loop = build()

        def prog(ctx, loop=loop, overlap=overlap):
            yield from ctx.doall(loop, overlap=overlap)

        Session(Machine(n_procs=p, cost=cost), g).run(prog)
        results[overlap] = c.to_global()
    assert np.array_equal(results[False], results[True])

    clear_plan_cache()
    _, _, loop = build()
    est = estimate_doall(loop)
    # the loop really has scatter-direction inbound messages
    assert any(r.msgs_in > r.gather_msgs_in for r in est.per_rank)
    # the scatter tail is charged serially after the (un)hidden compute
    for r in est.per_rank:
        assert r.overlapped_time(cost) >= (
            r.compute_time(cost) + r.scatter_tail_time(cost)
        )
    assert est.predicted_time(cost, overlap=True) <= est.predicted_time(cost)


def test_estimate_read_volumes_exact():
    """Read-side message/byte predictions come off the frozen gather
    schedules and must match the executed trace exactly."""
    clear_plan_cache()
    n, p, iters = 17, 2, 3
    _, trace, loop, _ = _run_jacobi(n, p, iters, overlap=False)
    est = estimate_doall(loop)
    assert est.total_messages() * iters == trace.message_count()
    assert est.total_bytes() * iters == trace.total_bytes()
