"""Batched ensemble execution (``Program.run_batch``).

The contract under test: running one compiled Program over B parameter
bindings as a single batched sweep is **bit-identical** to running it B
times, one binding at a time, from the same starting state -- while
replaying the frozen schedules once per sweep (same wire message count
as a single run, payload slots widened by the batch factor).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro import Machine, ProcessorGrid, Session
from repro.lang import Assign, BlockCyclic, DistArray, Doall, Owner, loopvars
from repro.session import BatchResult, run_batch
from repro.util.errors import ValidationError

SRC = """
processors procs({p})
real x(0:{m}) dist ({dist})
real y(0:{m}) dist (block)
doall (i) = [1, {hi}] on owner(y(i))
  y(i) = x(i-1) + 2.0*x(i+1)
end doall
"""


def _prog(p=2, n=8, dist="block"):
    src = SRC.format(p=p, m=n - 1, hi=n - 2, dist=dist)
    return repro.compile(src, session=Session(Machine(n_procs=p)))


def _bindings(nb, n=8, seed=0):
    rng = np.random.default_rng(seed)
    return [{"x": rng.standard_normal(n)} for _ in range(nb)]


def _looped_reference(prog, bindings, **kwargs):
    """Per-binding run loop from the program's pre-call state."""
    arrays = {}
    for loop in prog.loops:
        for arr in loop.arrays():
            arrays[arr.uid] = arr
    snap = {
        (uid, r): arr.local(r).copy()
        for uid, arr in arrays.items() for r in prog.grid.linear
    }
    out = []
    for b in bindings:
        for (uid, r), saved in snap.items():
            arrays[uid].local(r)[...] = saved
        prog.run(**b, **kwargs)
        out.append({
            name: arr.to_global().copy() for name, arr in prog.arrays.items()
        })
    return out


# ----------------------------------------------------------------------
# Semantics
# ----------------------------------------------------------------------


def test_run_batch_matches_looped_runs():
    prog, ref_prog = _prog(), _prog()
    binds = _bindings(5)
    ref = _looped_reference(ref_prog, binds)
    res = prog.run_batch(binds)
    assert isinstance(res, BatchResult)
    assert len(res) == 5 and sorted(res.keys()) == ["x", "y"]
    for b in range(5):
        np.testing.assert_array_equal(res["y"][b], ref[b]["y"])
        np.testing.assert_array_equal(res["x"][b], binds[b]["x"])


def test_run_batch_leaves_last_member_state_like_a_loop():
    prog, ref_prog = _prog(), _prog()
    binds = _bindings(3)
    for b in binds:
        ref_prog.run(**b)
    prog.run_batch(binds)
    np.testing.assert_array_equal(
        prog.arrays["y"].to_global(), ref_prog.arrays["y"].to_global()
    )


def test_run_batch_message_count_equals_single_run():
    """The tentpole wire property: batching widens payloads, it never
    multiplies messages."""
    prog, single = _prog(p=3, n=12), _prog(p=3, n=12)
    binds = _bindings(8, n=12)
    t1 = single.run(**binds[0])
    res = prog.run_batch(binds)
    assert len(res.trace.messages) == len(t1.messages)
    assert [(m.src, m.dst) for m in res.trace.messages] == \
        [(m.src, m.dst) for m in t1.messages]
    # payload slots widen by exactly the batch factor
    for mb, m1 in zip(res.trace.messages, t1.messages):
        assert mb.nbytes == 8 * m1.nbytes


def test_run_batch_iters_and_overlap():
    prog, ref_prog = _prog(p=2, n=10), _prog(p=2, n=10)
    binds = _bindings(4, n=10, seed=3)
    ref = _looped_reference(ref_prog, binds, iters=3, overlap=True)
    res = prog.run_batch(binds, iters=3, overlap=True)
    for b in range(4):
        np.testing.assert_array_equal(res["y"][b], ref[b]["y"])


def test_module_level_run_batch_delegates():
    prog = _prog()
    res = run_batch(prog, _bindings(2))
    assert isinstance(res, BatchResult) and len(res) == 2


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------


def test_run_batch_rejects_bad_inputs():
    prog = _prog()
    with pytest.raises(ValidationError):
        prog.run_batch([])
    with pytest.raises(ValidationError):
        prog.run_batch([{"nope": np.zeros(8)}])
    with pytest.raises(ValidationError):
        prog.run_batch(_bindings(2), iters=0)


def test_run_batch_rejects_parsub_programs():
    sess = Session(Machine(n_procs=2), ProcessorGrid((2,)))
    prog = repro.compile(lambda ctx: iter(()), session=sess)
    with pytest.raises(ValidationError):
        prog.run_batch([{}])


# ----------------------------------------------------------------------
# Property: bit-identity across distributions, overlap, batch sizes
# ----------------------------------------------------------------------


def _dist_of(kind: str):
    if kind.startswith("blockcyclic"):
        return BlockCyclic(int(kind.rsplit("-", 1)[1]))
    return kind


@st.composite
def batch_cases(draw):
    p = draw(st.integers(min_value=1, max_value=4))
    n = draw(st.integers(min_value=max(8, 2 * p), max_value=20))
    kind = draw(st.sampled_from(["block", "cyclic", "blockcyclic-2"]))
    wkind = draw(st.sampled_from(["same", "block", "cyclic"]))
    nb = draw(st.integers(min_value=1, max_value=6))
    overlap = draw(st.booleans())
    iters = draw(st.integers(min_value=1, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return p, n, kind, wkind, nb, overlap, iters, seed


def _make(p, n, kind, wkind):
    g = ProcessorGrid((p,))
    u = DistArray((n,), g, dist=(_dist_of(kind),), name="u")
    v = DistArray((n,), g, dist=(_dist_of(wkind),), name="v")
    (i,) = loopvars("i")
    loop = Doall(
        vars=(i,),
        ranges=[(1, n - 2)],
        on=Owner(u, (i,)),
        body=[Assign(v[i], 2.0 * u[i - 1] - u[i + 1] + 0.5)],
        grid=g,
    )
    return repro.compile(loop, session=Session(Machine(n_procs=p), g))


@given(batch_cases())
@settings(max_examples=25, deadline=None)
def test_run_batch_bit_identical_to_looped(case):
    p, n, kind, wkind, nb, overlap, iters, seed = case
    wkind = kind if wkind == "same" else wkind
    rng = np.random.default_rng(seed)
    binds = [{"u": rng.standard_normal(n)} for _ in range(nb)]

    batched = _make(p, n, kind, wkind)
    looped = _make(p, n, kind, wkind)
    ref = _looped_reference(looped, binds, iters=iters, overlap=overlap)
    res = batched.run_batch(binds, iters=iters, overlap=overlap)
    for b in range(nb):
        np.testing.assert_array_equal(res["v"][b], ref[b]["v"])
        np.testing.assert_array_equal(res["u"][b], ref[b]["u"])


@given(st.sampled_from(["block", "cyclic", "blockcyclic-2"]),
       st.integers(min_value=0, max_value=2**16))
@settings(max_examples=10, deadline=None)
def test_run_batch_survives_redistribution_between_calls(kind, seed):
    """A layout flip between batched calls orphans the cached plans;
    the rebuilt batched plans still match the looped reference."""
    p, n, nb = 2, 12, 3
    rng = np.random.default_rng(seed)
    binds = [{"u": rng.standard_normal(n)} for _ in range(nb)]

    def run_one(batch):
        g = ProcessorGrid((p,))
        u = DistArray((n,), g, dist=("block",), name="u")
        v = DistArray((n,), g, dist=("block",), name="v")
        (i,) = loopvars("i")
        loop = Doall(
            vars=(i,), ranges=[(1, n - 2)], on=Owner(u, (i,)),
            body=[Assign(v[i], 0.5 * (u[i - 1] + u[i + 1]))], grid=g,
        )
        sess = Session(Machine(n_procs=p), g)
        prog = repro.compile(loop, session=sess)
        outs = []

        def sweep():
            if batch:
                outs.append({k: res[k] for res in [prog.run_batch(binds)]
                             for k in res.keys()})
            else:
                ref = _looped_reference(prog, binds)
                outs.append({
                    name: np.stack([r[name] for r in ref])
                    for name in ref[0]
                })

        sweep()
        sess.run(lambda ctx: ctx.redistribute(u, (_dist_of(kind),)))
        sweep()
        return outs

    a, b = run_one(True), run_one(False)
    for res_a, res_b in zip(a, b):
        for name in res_a:
            np.testing.assert_array_equal(res_a[name], res_b[name])
