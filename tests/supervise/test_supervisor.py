"""The self-healing runtime: Supervisor, SupervisorPolicy, RecoveryLog.

Three layers of coverage:

* real-fault drills -- ``repro.faults.kill_rank`` kills multiprocessing
  ranks mid-Jacobi and the Supervisor must deliver results
  bit-identical to an uninterrupted run, resuming from the latest
  checkpoint (never sweep 0);
* deterministic fault drills against a test-local ``FlakyBackend``
  (raises ``MachineError`` on scheduled run indices *after* mutating
  state, emulating a torn run) -- retry budget, degradation to the
  simulator, gave-up propagation, RecoveryLog accounting;
* policy/plumbing units -- backoff series, validation, stats surfacing,
  ``Program.run(checkpoint_every=)`` and ``latest_checkpoint()``.
"""

import numpy as np
import pytest

import repro
from repro import (
    Machine,
    MachineError,
    RecoveryLog,
    Session,
    Supervisor,
    SupervisorPolicy,
    ValidationError,
    faults,
)
from repro.machine.backend import Backend

SRC = """
processors procs(2)
real x(0:15) dist (block)
real y(0:15) dist (block)
doall (i) = [1, 14] on owner(y(i))
  y(i) = 0.5*(x(i-1) + x(i+1))
end doall
doall (i) = [1, 14] on owner(x(i))
  x(i) = y(i) + 0.25*x(i)
end doall
"""

JACOBI = """
processors procs(4)
real X(0:17, 0:17) dist (block, *)
real F(0:17, 0:17) dist (block, *)
doall (i, j) = [1, 16] * [1, 16] on owner(X(i, j))
  X(i, j) = 0.25*(X(i+1, j) + X(i-1, j) + X(i, j+1) + X(i, j-1)) - F(i, j)
end doall
"""


def _fresh(src=SRC, n_procs=4, backend=None):
    sess = Session(Machine(n_procs=n_procs), backend=backend)
    return sess, repro.compile(src, session=sess)


def _policy(**kw):
    kw.setdefault("sleep", lambda s: None)
    kw.setdefault("seed", 0)
    kw.setdefault("backoff_base", 0.01)
    return SupervisorPolicy(**kw)


class FlakyBackend(Backend):
    """Delegates to the simulator, then fails on scheduled run indices.

    The failure is raised *after* the run mutated array state -- a torn
    run -- so bit-identity of the supervised result proves the
    Supervisor actually restored the checkpoint rather than just
    re-running.
    """

    def __init__(self, machine, fail_on=(), ranks=(1,)):
        self.machine = machine
        self.topology = machine.topology
        self.cost = machine.cost
        self.fail_on = set(fail_on)
        self.failed_ranks = tuple(ranks)
        self.calls = 0

    def run(self, programs, ranks=None):
        call = self.calls
        self.calls += 1
        trace = self.machine.run(programs, ranks)
        if call in self.fail_on:
            err = MachineError(f"flaky backend: injected failure #{call}")
            err.failed_ranks = self.failed_ranks
            raise err
        return trace


# ----------------------------------------------------------------------
# Real-fault drill: killed multiprocessing ranks, bit-identical recovery
# ----------------------------------------------------------------------


def test_supervised_mp_run_survives_killed_ranks_bit_identical():
    rng = np.random.default_rng(7)
    f = 1e-3 * rng.standard_normal((18, 18))

    ref_sess, ref = _fresh(JACOBI)
    ref.run(X=np.zeros((18, 18)), F=f, iters=8)
    want = ref.arrays["X"].to_global().copy()

    sess, prog = _fresh(JACOBI, backend="multiprocessing")
    sup = Supervisor(sess, _policy(max_retries=3))
    try:
        with faults.kill_rank((2, 3), sweep=3, times=1) as fault:
            sup.run(prog, X=np.zeros((18, 18)), F=f, iters=8,
                    checkpoint_every=2)
    finally:
        sess.close_backend()

    np.testing.assert_array_equal(prog.arrays["X"].to_global(), want)
    assert fault.fired and fault.remaining == 0
    summary = sess.stats()["recovery"]
    assert summary["retries"] == 1 and summary["gave_up"] == 0
    # resumed from the latest checkpoint, not from sweep 0: the kill at
    # worker sweep 3 lands in the second 2-sweep leg, after the sweep-2
    # incremental checkpoint
    assert summary["last"]["sweep"] == 2
    assert summary["last"]["action"] == "retry"
    assert summary["last"]["ranks"]
    assert not sup.degraded


def test_supervised_mp_run_delayed_death_still_recovers():
    sess, prog = _fresh(SRC, n_procs=2, backend="multiprocessing")
    ref_sess, ref = _fresh(SRC, n_procs=2)
    x0 = np.arange(16.0)
    ref.run(x=x0, iters=4)
    want = ref.arrays["x"].to_global().copy()

    sup = Supervisor(sess, _policy(max_retries=2))
    try:
        with faults.kill_rank(1, sweep=1, delay_s=0.05, times=1):
            sup.run(prog, x=x0, iters=4, checkpoint_every=1)
    finally:
        sess.close_backend()
    np.testing.assert_array_equal(prog.arrays["x"].to_global(), want)
    assert sess.stats()["recovery"]["retries"] == 1


# ----------------------------------------------------------------------
# Deterministic drills on FlakyBackend
# ----------------------------------------------------------------------


def test_torn_run_restored_and_result_bit_identical():
    ref_sess, ref = _fresh()
    x0 = np.linspace(-1.0, 1.0, 16)
    ref.run(x=x0, iters=6)
    want = ref.arrays["x"].to_global().copy()

    sess, prog = _fresh()
    flaky = FlakyBackend(sess.machine, fail_on={1, 3})
    sup = Supervisor(sess, _policy(max_retries=4))
    sup.run(prog, x=x0, iters=6, checkpoint_every=2, backend=flaky)

    np.testing.assert_array_equal(prog.arrays["x"].to_global(), want)
    log = sup.log
    assert log.retries == 2 and log.gave_up == 0
    assert [e.action for e in log] == ["retry", "retry"]
    # each retry resumed from the sweep cursor of its latest checkpoint
    assert [e.sweep for e in log] == [2, 4]
    assert all(e.ranks == (1,) for e in log)


def test_retry_budget_exhaustion_reraises_and_logs_gave_up():
    sess, prog = _fresh()
    # every call fails; degrade_after > max_retries so degradation
    # cannot mask the exhaustion
    flaky = FlakyBackend(sess.machine, fail_on=set(range(100)))
    sup = Supervisor(sess, _policy(max_retries=2, degrade_after=10))
    with pytest.raises(MachineError, match="injected failure"):
        sup.run(prog, x=np.zeros(16), iters=4, checkpoint_every=1,
                backend=flaky)
    log = sup.log
    assert log.retries == 2 and log.gave_up == 1
    assert [e.action for e in log] == ["retry", "retry", "gave-up"]
    assert sess.stats()["recovery"]["gave_up"] == 1


def test_degrades_to_simulator_with_loud_warning_and_finishes():
    ref_sess, ref = _fresh()
    x0 = np.arange(16.0) / 4.0
    ref.run(x=x0, iters=5)
    want = ref.arrays["x"].to_global().copy()

    sess, prog = _fresh()
    flaky = FlakyBackend(sess.machine, fail_on=set(range(100)))
    sup = Supervisor(sess, _policy(max_retries=5, degrade_after=2))
    with pytest.warns(RuntimeWarning, match="degrading the remaining"):
        sup.run(prog, x=x0, iters=5, checkpoint_every=2, backend=flaky)

    np.testing.assert_array_equal(prog.arrays["x"].to_global(), want)
    assert sup.degraded
    log = sup.log
    assert log.degradations == 1
    assert [e.action for e in log] == ["retry", "degrade"]
    assert log.events[-1].backend == "simulator"
    # degradation is sticky: the next supervised run starts on the
    # simulator and never touches the flaky backend again
    calls_before = flaky.calls
    sup.run(prog, x=x0, iters=1, backend=flaky)
    assert flaky.calls == calls_before
    sup.reset_degradation()
    assert not sup.degraded


def test_consecutive_counter_resets_on_success():
    """Two isolated failures never degrade when degrade_after=2 needs
    them *consecutive*."""
    sess, prog = _fresh()
    flaky = FlakyBackend(sess.machine, fail_on={0, 2})
    sup = Supervisor(sess, _policy(max_retries=5, degrade_after=2))
    sup.run(prog, x=np.zeros(16), iters=4, checkpoint_every=1,
            backend=flaky)
    assert sup.log.retries == 2
    assert sup.log.degradations == 0
    assert not sup.degraded


def test_supervised_run_batch_retries_whole_batch():
    sess, prog = _fresh()
    binds = [{"x": np.full(16, float(b))} for b in range(3)]
    ref_sess, ref = _fresh()
    ref_res = ref.run_batch(binds, iters=2)

    calls = {"n": 0}
    orig = prog.run_batch

    def flaky_batch(bindings, **kw):
        calls["n"] += 1
        if calls["n"] == 1:
            err = MachineError("batch backend fell over")
            err.failed_ranks = (0, 1)
            raise err
        return orig(bindings, **kw)

    prog.run_batch = flaky_batch
    sup = Supervisor(sess, _policy(max_retries=2))
    res = sup.run_batch(prog, binds, iters=2)
    assert calls["n"] == 2
    np.testing.assert_array_equal(res["x"][-1], ref_res["x"][-1])
    assert sup.log.retries == 1
    assert sup.log.events[-1].sweep == 0


def test_run_batch_recovery_restores_pre_batch_state_not_stale_checkpoint():
    """A mid-run checkpoint left behind by an *earlier* checkpointed run
    must never be the batch retry's restore target: recovery resumes
    from the pre-batch snapshot the supervised call itself took."""
    sess, prog = _fresh()
    prog.run(x=np.arange(16.0), iters=2, checkpoint_every=1)
    stale = prog.latest_checkpoint()       # sweep-2 state of the old run
    assert stale is not None
    prog.run(iters=3)                      # state moves past the stale cursor
    pre_batch = prog.arrays["x"].to_global().copy()
    stale_x = next(
        s["data"] for s in stale.programs[0]["arrays"] if s["name"] == "x"
    )
    assert not np.array_equal(pre_batch, stale_x)

    calls = {"n": 0}
    seen = {}
    orig = prog.run_batch

    def flaky_batch(bindings, **kw):
        calls["n"] += 1
        if calls["n"] == 1:
            # torn batch: scribble state, then fail
            prog.arrays["x"].from_global(np.full(16, -99.0))
            err = MachineError("batch backend fell over")
            err.failed_ranks = (1,)
            raise err
        seen["x"] = prog.arrays["x"].to_global().copy()
        return orig(bindings, **kw)

    prog.run_batch = flaky_batch
    sup = Supervisor(sess, _policy(max_retries=2))
    sup.run_batch(prog, [{"x": np.zeros(16)}], iters=1)
    assert calls["n"] == 2
    np.testing.assert_array_equal(seen["x"], pre_batch)


def test_fault_budget_ignores_unrelated_pool_failures():
    """A pool failure the armed fault did not cause (a genuine crash on
    another rank) is recorded but never consumes the firing budget."""
    from repro.machine import mpbackend

    f = faults.kill_rank(1, sweep=1, times=1)
    f.arm()
    try:
        f._observe((3,))                    # unrelated rank died
        assert f.remaining == 1
        assert f.fired == [(3,)]            # observed, not charged
        assert mpbackend._FAULT_INJECTION is f.spec   # still armed
        f._observe((1, 2))                  # the armed rank died
        assert f.remaining == 0
        assert mpbackend._FAULT_INJECTION is None     # budget spent
    finally:
        f.disarm()


# ----------------------------------------------------------------------
# Policy, log, and plumbing units
# ----------------------------------------------------------------------


def test_policy_backoff_series_and_cap():
    p = SupervisorPolicy(backoff_base=0.1, backoff_factor=2.0,
                         backoff_max=0.5, jitter=0.0)
    assert [round(p.backoff(n), 3) for n in range(1, 6)] == \
        [0.1, 0.2, 0.4, 0.5, 0.5]
    # jitter stretches, never shrinks, and is seeded
    pj = SupervisorPolicy(backoff_base=0.1, jitter=0.5, seed=42)
    vals = [pj.backoff(1) for _ in range(8)]
    assert all(0.1 <= v <= 0.15 for v in vals)
    pj2 = SupervisorPolicy(backoff_base=0.1, jitter=0.5, seed=42)
    assert vals == [pj2.backoff(1) for _ in range(8)]


@pytest.mark.parametrize("kw", [
    {"max_retries": -1},
    {"degrade_after": 0},
    {"checkpoint_every": 0},
    {"jitter": -0.1},
])
def test_policy_validates_knobs(kw):
    with pytest.raises(ValidationError):
        SupervisorPolicy(**kw)


def test_supervisor_rejects_bad_run_args():
    sess, prog = _fresh()
    sup = Supervisor(sess)
    with pytest.raises(ValidationError, match="iters"):
        sup.run(prog, iters=0)
    with pytest.raises(ValidationError, match="checkpoint_every"):
        sup.run(prog, iters=1, checkpoint_every=0)


def test_recovery_log_ring_is_bounded_counters_exact():
    from repro.supervise import _MAX_EVENTS, RecoveryEvent

    log = RecoveryLog()
    n = _MAX_EVENTS + 40
    for k in range(n):
        log.record(RecoveryEvent(
            cause="c", ranks=(0,), sweep=k, backoff_s=0.0,
            attempt=k + 1, action="retry", backend="simulator",
        ))
    assert len(log) == _MAX_EVENTS
    assert log.retries == n
    assert log.summary()["last"]["sweep"] == n - 1


def test_stats_surfaces_recovery_none_until_supervised():
    sess, _ = _fresh()
    assert sess.stats()["recovery"] is None
    sup = Supervisor(sess)
    assert sess.stats()["recovery"] == sup.log.summary()
    assert sess.stats()["recovery"]["retries"] == 0


def test_unsupervised_success_equals_plain_run():
    """No faults: the supervised run is plain run() plus checkpoints."""
    ref_sess, ref = _fresh()
    x0 = np.arange(16.0)
    t_ref = ref.run(x=x0, iters=5)
    want = ref.arrays["x"].to_global().copy()

    sess, prog = _fresh()
    sup = Supervisor(sess, _policy())
    t = sup.run(prog, x=x0, iters=5, checkpoint_every=2)
    np.testing.assert_array_equal(prog.arrays["x"].to_global(), want)
    assert len(sup.log) == 0
    # the returned trace is the final leg's (1 sweep of the 2+2+1 legs)
    assert t.makespan() > 0.0 and t_ref.makespan() > 0.0


# ----------------------------------------------------------------------
# Program.run(checkpoint_every=) and latest_checkpoint()
# ----------------------------------------------------------------------


def test_run_checkpoint_every_bit_identical_and_cursor_advances():
    ref_sess, ref = _fresh()
    x0 = np.linspace(0.0, 3.0, 16)
    ref.run(x=x0, iters=7)
    want = ref.arrays["x"].to_global().copy()

    sess, prog = _fresh()
    prog.run(x=x0, iters=7, checkpoint_every=3)
    np.testing.assert_array_equal(prog.arrays["x"].to_global(), want)
    latest = prog.latest_checkpoint()
    assert latest is not None
    assert latest.sweep == 7
    assert latest.kind == "full"          # hydrated view
    assert prog.ckpt_latest.kind == "incremental"
    # deltas chain: the latest diffs against the previous boundary's
    # hydrated snapshot (sweep 6 of the 3+3+1 legs), not sweep 0
    assert prog.ckpt_base.sweep == 6
    assert prog.ckpt_latest.base_id == prog.ckpt_base.ckpt_id


def test_run_checkpoint_every_validates():
    sess, prog = _fresh()
    with pytest.raises(ValidationError, match="checkpoint_every"):
        prog.run(x=np.zeros(16), checkpoint_every=0)
    assert prog.latest_checkpoint() is None
