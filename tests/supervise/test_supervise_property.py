"""Property tests: supervised recovery is bit-identity-preserving.

Mirrors ``tests/elastic/test_elastic_property.py``: one program family
swept over distributions (block / cyclic / blockcyclic) x grid sizes x
stencil offsets, here with *faults injected* -- a FlakyBackend tears a
scheduled subset of the run legs (state mutated, then
``MachineError``), swept over kill points x checkpoint intervals.  The
Supervisor must always deliver results bit-identical to an
uninterrupted simulator run, resume every retry from the latest
checkpoint's sweep cursor (never a sweep it already passed), and stay
inside the retry budget.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro import Machine, MachineError, ProcessorGrid, Session
from repro import Supervisor, SupervisorPolicy
from repro.lang import Assign, BlockCyclic, DistArray, Doall, Owner, loopvars
from repro.machine.backend import Backend


def _dist_of(kind: str):
    if kind.startswith("blockcyclic"):
        return BlockCyclic(int(kind.rsplit("-", 1)[1]))
    return kind


def build_program(p, n, kind, off_l, off_r, seed):
    grid = ProcessorGrid((p,))
    X = DistArray((n,), grid, dist=(_dist_of(kind),), name="X")
    Y = DistArray((n,), grid, dist=(_dist_of(kind),), name="Y")
    rng = np.random.default_rng(seed)
    (i,) = loopvars("i")
    lo, hi = off_l, n - 1 - off_r
    loop = Doall(
        vars=(i,), ranges=[(lo, hi)], on=Owner(Y, (i,)),
        body=[Assign(Y[i], 0.5 * (X[i - off_l] + X[i + off_r]))],
        grid=grid,
    )
    loop2 = Doall(
        vars=(i,), ranges=[(lo, hi)], on=Owner(X, (i,)),
        body=[Assign(X[i], Y[i] + 1.0)],
        grid=grid,
    )
    sess = Session(Machine(n_procs=max(4, p)))
    prog = repro.compile([loop, loop2], session=sess)
    x0 = rng.standard_normal(n)
    return sess, prog, x0


class FlakyBackend(Backend):
    """Simulator delegate that tears scheduled run calls (see
    tests/supervise/test_supervisor.py)."""

    def __init__(self, machine, fail_on):
        self.machine = machine
        self.topology = machine.topology
        self.cost = machine.cost
        self.fail_on = set(fail_on)
        self.calls = 0

    def run(self, programs, ranks=None):
        call = self.calls
        self.calls += 1
        trace = self.machine.run(programs, ranks)
        if call in self.fail_on:
            err = MachineError(f"flaky backend: injected failure #{call}")
            err.failed_ranks = (call % self.machine.n_procs,)
            raise err
        return trace


@st.composite
def recovery_cases(draw):
    p = draw(st.integers(min_value=1, max_value=4))
    n = draw(st.integers(min_value=max(10, 3 * p), max_value=24))
    kind = draw(st.sampled_from(["block", "cyclic", "blockcyclic-2"]))
    off_l = draw(st.integers(min_value=1, max_value=2))
    off_r = draw(st.integers(min_value=1, max_value=2))
    iters = draw(st.integers(min_value=2, max_value=7))
    every = draw(st.integers(min_value=1, max_value=iters))
    legs = -(-iters // every)
    # tear up to 2 of the legs; a retried leg gets a fresh call index,
    # so indices may also land on retry calls -- both are fair game as
    # long as the total stays under the budget
    kills = draw(st.sets(
        st.integers(min_value=0, max_value=legs + 1),
        min_size=1, max_size=2,
    ))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return p, n, kind, off_l, off_r, iters, every, frozenset(kills), seed


@given(recovery_cases())
@settings(max_examples=25, deadline=None)
def test_supervised_recovery_bit_identical_within_budget(case):
    p, n, kind, off_l, off_r, iters, every, kills, seed = case

    ref_sess, ref_prog, x0 = build_program(p, n, kind, off_l, off_r, seed)
    ref_prog.run(X=x0, iters=iters)
    want = {name: a.to_global().copy() for name, a in ref_prog.arrays.items()}

    sess, prog, _ = build_program(p, n, kind, off_l, off_r, seed)
    flaky = FlakyBackend(sess.machine, kills)
    budget = len(kills) + 1
    sup = Supervisor(sess, SupervisorPolicy(
        max_retries=budget, degrade_after=budget + 1,
        backoff_base=0.0, jitter=0.0, sleep=lambda s: None,
    ))
    sup.run(prog, X=x0, iters=iters, checkpoint_every=every, backend=flaky)

    for name, a in prog.arrays.items():
        np.testing.assert_array_equal(a.to_global(), want[name])

    log = sup.log
    # budget respected, nothing gave up or degraded
    assert log.retries <= budget
    assert log.gave_up == 0 and log.degradations == 0
    assert log.retries == len([k for k in kills if k < flaky.calls])
    # every retry resumed from a checkpointed sweep cursor: a multiple
    # of the leg size, strictly before the run's end, never regressing
    cursors = [e.sweep for e in log]
    assert all(c % every == 0 or c == iters for c in cursors)
    assert cursors == sorted(cursors)
    assert all(0 <= c < iters for c in cursors)


@given(recovery_cases())
@settings(max_examples=10, deadline=None)
def test_supervised_equals_plain_checkpointed_run_without_faults(case):
    """The degenerate sweep: no faults -> supervised == plain run()."""
    p, n, kind, off_l, off_r, iters, every, _, seed = case

    ref_sess, ref_prog, x0 = build_program(p, n, kind, off_l, off_r, seed)
    ref_prog.run(X=x0, iters=iters)
    want = ref_prog.arrays["X"].to_global().copy()

    sess, prog, _ = build_program(p, n, kind, off_l, off_r, seed)
    sup = Supervisor(sess, SupervisorPolicy(sleep=lambda s: None))
    sup.run(prog, X=x0, iters=iters, checkpoint_every=every)
    np.testing.assert_array_equal(prog.arrays["X"].to_global(), want)
    assert len(sup.log) == 0
    assert prog.latest_checkpoint().sweep == iters
