"""Pipelined multi-system tridiagonal solver (Listing 6).

When m tridiagonal systems must be solved (as in ADI, where every grid
line in a direction carries one), the tree reduction can be software
pipelined: with the shuffle mapping each tree level occupies a distinct
processor group, so level l works on system s while level l+1 works on
system s-1.  This keeps "more of the processors busy" (section 3) --
the claim benchmarked by ``bench_pipeline_util``.

Two drivers are provided:

* :func:`sequential_multi_tri_solve` -- the non-pipelined reference:
  systems solved one after another with a barrier between them (each
  ``call tri`` completes before the next begins);
* :func:`pipelined_multi_tri_solve` -- the Listing 6 restructuring:
  every processor streams all m systems through each of its tree roles.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.substructured import (
    Mapping,
    ShuffleMapping,
    _holdings,
    local_reduce,
    reduce_flops,
    reduce_four_rows,
    solve_reduced_pairs,
    tri_node_program,
    SUBST_FLOPS_PER_ROW,
    THOMAS_FLOPS_PER_ROW,
)
from repro.kernels.thomas import thomas_solve
from repro.machine.ops import Barrier, Compute, Mark, Recv, Send
from repro.machine.simulator import Machine
from repro.session import launch
from repro.util.errors import ValidationError
from repro.util.indexing import block_bounds


def _validate(B, A, C, F, p):
    B, A, C, F = (np.asarray(x, dtype=float) for x in (B, A, C, F))
    if not (B.shape == A.shape == C.shape == F.shape) or A.ndim != 2:
        raise ValidationError("B, A, C, F must share one (m, n) shape")
    m, n = A.shape
    if p < 1:
        raise ValidationError("p must be >= 1")
    if n < 2 * p:
        raise ValidationError(f"n={n} too small for p={p} (need n >= 2p)")
    return B, A, C, F, m, n


def sequential_multi_tri_solve(
    B: np.ndarray,
    A: np.ndarray,
    C: np.ndarray,
    F: np.ndarray,
    p: int,
    machine: Machine | None = None,
    mapping_cls=ShuffleMapping,
    session=None,
):
    """Solve m systems one after another (non-pipelined baseline)."""
    B, A, C, F, m, n = _validate(B, A, C, F, p)
    mapping = mapping_cls(p)
    if machine is None:
        machine = Machine(n_procs=p)
    bounds = [block_bounds(n, p, r) for r in range(p)]
    outs: list[dict[int, np.ndarray]] = [{} for _ in range(m)]
    group = tuple(range(p))

    def make(rank):
        def prog():
            lo, hi = bounds[rank]
            for s in range(m):
                blk = (B[s, lo:hi], A[s, lo:hi], C[s, lo:hi], F[s, lo:hi])
                yield from tri_node_program(rank, p, blk, mapping, outs[s], sys_id=s)
                if p > 1:
                    yield Barrier(group=group, tag=("seqtri_done", s))

        return prog()

    trace = launch({r: make(r) for r in range(p)}, machine, session)
    return _assemble(outs, bounds, m, n), trace


def pipelined_node_program(
    rank: int,
    p: int,
    blocks: list[tuple],
    mapping: Mapping,
    outs: list[dict[int, np.ndarray]],
    sys_ids: list | None = None,
):
    """Listing 6: stream all systems through each of this rank's roles.

    ``sys_ids`` optionally namespaces message tags per system (defaults
    to the system index) so concurrent or repeated solves cannot alias.
    """
    nsys = len(blocks)
    ids = list(sys_ids) if sys_ids is not None else list(range(nsys))
    if len(ids) != nsys:
        raise ValidationError("sys_ids must match the number of systems")
    k = mapping.k

    if p == 1:
        for s, (b, a, c, f) in enumerate(blocks):
            yield Compute(flops=THOMAS_FLOPS_PER_ROW * len(a), label="thomas")
            outs[s][rank] = thomas_solve(b, a, c, f)
        return

    # ---- Phase A: local reductions, all systems -------------------------
    reds = []
    pair_at: dict[tuple, tuple] = {}
    saved: dict[tuple, object] = {}
    for s, (b, a, c, f) in enumerate(blocks):
        yield Mark("mtri/reduce", payload=(s, 0))
        red = local_reduce(b, a, c, f)
        yield Compute(flops=reduce_flops(len(a)), label="local_reduce")
        reds.append(red)
        my_pair = (red.first, red.last)
        pair_at[(s, 0, rank)] = my_pair
        parent = mapping.pair_rank(1, rank // 2) if k >= 2 else mapping.pair_rank(k, 0)
        if parent != rank:
            yield Send(parent, np.concatenate(my_pair), tag=("tri", ids[s], "up", 0, rank))

    # ---- Phase B: tree reductions, streaming systems ---------------------
    for level in range(1, k):
        for j in _holdings(mapping, rank, level):
            for s in range(nsys):
                yield Mark("mtri/reduce", payload=(s, level))
                pa = yield from _obtain_sys_pair(
                    rank, mapping, level - 1, 2 * j, pair_at, s, ids[s]
                )
                pb = yield from _obtain_sys_pair(
                    rank, mapping, level - 1, 2 * j + 1, pair_at, s, ids[s]
                )
                first, last, sred = reduce_four_rows(pa, pb)
                yield Compute(flops=reduce_flops(4), label="tree_reduce")
                saved[(s, level, j)] = sred
                pair_at[(s, level, j)] = (first, last)
                dest = (
                    mapping.pair_rank(level + 1, j // 2)
                    if level + 1 < k
                    else mapping.pair_rank(k, 0)
                )
                if dest != rank:
                    yield Send(
                        dest,
                        np.concatenate((first, last)),
                        tag=("tri", ids[s], "up", level, j),
                    )

    # ---- Apex ------------------------------------------------------------
    apex = mapping.pair_rank(k, 0)
    top = k - 1
    if rank == apex:
        for s in range(nsys):
            yield Mark("mtri/apex", payload=(s, k))
            pa = yield from _obtain_sys_pair(rank, mapping, top, 0, pair_at, s, ids[s])
            pb = yield from _obtain_sys_pair(rank, mapping, top, 1, pair_at, s, ids[s])
            x4 = solve_reduced_pairs([pa, pb])
            yield Compute(flops=THOMAS_FLOPS_PER_ROW * 4, label="apex_thomas")
            for idx, j in enumerate((0, 1)):
                vals = x4[2 * idx : 2 * idx + 2]
                holder = mapping.pair_rank(top, j)
                if holder == rank:
                    pair_at[("x", s, top, j)] = vals
                else:
                    yield Send(holder, vals, tag=("tri", ids[s], "dn", top, j))

    # ---- Substitution: descend, streaming systems -------------------------
    for level in range(k - 1, 0, -1):
        for j in _holdings(mapping, rank, level):
            for s in range(nsys):
                yield Mark("mtri/subst", payload=(s, level))
                key = ("x", s, level, j)
                if key in pair_at:
                    x_first, x_last = pair_at[key]
                else:
                    src = apex if level == top else mapping.pair_rank(level + 1, j // 2)
                    vals = yield Recv(src=src, tag=("tri", ids[s], "dn", level, j))
                    x_first, x_last = vals
                x4 = saved[(s, level, j)].interior_solve(float(x_first), float(x_last))
                yield Compute(flops=SUBST_FLOPS_PER_ROW * 2, label="tree_subst")
                for cj, vals in ((2 * j, x4[0:2]), (2 * j + 1, x4[2:4])):
                    holder = mapping.pair_rank(level - 1, cj)
                    if holder == rank:
                        pair_at[("x", s, level - 1, cj)] = vals
                    else:
                        yield Send(holder, vals, tag=("tri", ids[s], "dn", level - 1, cj))

    # ---- Final block interiors, all systems --------------------------------
    for s in range(nsys):
        yield Mark("mtri/subst", payload=(s, 0))
        key = ("x", s, 0, rank)
        if key in pair_at:
            xb = pair_at[key]
        else:
            src = mapping.pair_rank(1, rank // 2) if k >= 2 else apex
            xb = yield Recv(src=src, tag=("tri", ids[s], "dn", 0, rank))
        x_block = reds[s].interior_solve(float(xb[0]), float(xb[1]))
        yield Compute(flops=SUBST_FLOPS_PER_ROW * len(x_block), label="block_subst")
        outs[s][rank] = x_block


def _obtain_sys_pair(rank, mapping, level, j, pair_at, s, sid=None):
    holder = mapping.pair_rank(level, j)
    if holder == rank:
        return pair_at[(s, level, j)]
    data = yield Recv(src=holder, tag=("tri", sid if sid is not None else s, "up", level, j))
    return (data[:4], data[4:])


def pipelined_multi_tri_solve(
    B: np.ndarray,
    A: np.ndarray,
    C: np.ndarray,
    F: np.ndarray,
    p: int,
    machine: Machine | None = None,
    mapping_cls=ShuffleMapping,
    session=None,
):
    """Solve m systems with the pipelined restructuring of Listing 6."""
    B, A, C, F, m, n = _validate(B, A, C, F, p)
    mapping = mapping_cls(p)
    if machine is None:
        machine = Machine(n_procs=p)
    bounds = [block_bounds(n, p, r) for r in range(p)]
    outs: list[dict[int, np.ndarray]] = [{} for _ in range(m)]

    def make(rank):
        lo, hi = bounds[rank]
        blocks = [
            (B[s, lo:hi], A[s, lo:hi], C[s, lo:hi], F[s, lo:hi]) for s in range(m)
        ]
        return pipelined_node_program(rank, p, blocks, mapping, outs)

    trace = launch({r: make(r) for r in range(p)}, machine, session)
    return _assemble(outs, bounds, m, n), trace


def _assemble(outs, bounds, m, n) -> np.ndarray:
    X = np.empty((m, n))
    for s in range(m):
        for r, (lo, hi) in enumerate(bounds):
            X[s, lo:hi] = outs[s][r]
    return X
