"""Sequential Thomas algorithm for tridiagonal systems.

The system is given by three diagonals ``b`` (lower), ``a`` (main),
``c`` (upper) and right-hand side ``f``; row i reads

    b[i] * x[i-1] + a[i] * x[i] + c[i] * x[i+1] = f[i]

with ``b[0]`` and ``c[n-1]`` ignored.  The paper assumes the matrix can
be factored without pivoting (e.g. diagonally dominant); we validate
against zero pivots.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ValidationError


def thomas_solve(
    b: np.ndarray, a: np.ndarray, c: np.ndarray, f: np.ndarray
) -> np.ndarray:
    """Solve one tridiagonal system by LU without pivoting.

    All inputs are 1-D arrays of equal length n; returns x of length n.
    """
    b = np.asarray(b, dtype=float)
    a = np.asarray(a, dtype=float)
    c = np.asarray(c, dtype=float)
    f = np.asarray(f, dtype=float)
    n = a.shape[0]
    if not (b.shape[0] == c.shape[0] == f.shape[0] == n):
        raise ValidationError("diagonals and rhs must have equal length")
    if n == 0:
        return np.empty(0)
    cp = np.empty(n)
    fp = np.empty(n)
    denom = a[0]
    if denom == 0.0:
        raise ValidationError("zero pivot in Thomas algorithm at row 0")
    cp[0] = c[0] / denom
    fp[0] = f[0] / denom
    for i in range(1, n):
        denom = a[i] - b[i] * cp[i - 1]
        if denom == 0.0:
            raise ValidationError(f"zero pivot in Thomas algorithm at row {i}")
        cp[i] = c[i] / denom
        fp[i] = (f[i] - b[i] * fp[i - 1]) / denom
    x = np.empty(n)
    x[-1] = fp[-1]
    for i in range(n - 2, -1, -1):
        x[i] = fp[i] - cp[i] * x[i + 1]
    return x


def thomas_solve_many(
    b: np.ndarray, a: np.ndarray, c: np.ndarray, F: np.ndarray
) -> np.ndarray:
    """Solve the same tridiagonal matrix against many right-hand sides.

    ``F`` has shape (n, m); returns X of the same shape.  Used by zebra
    line relaxation where each line shares constant coefficients.
    """
    b = np.asarray(b, dtype=float)
    a = np.asarray(a, dtype=float)
    c = np.asarray(c, dtype=float)
    F = np.asarray(F, dtype=float)
    n = a.shape[0]
    if F.shape[0] != n:
        raise ValidationError("rhs rows must match system size")
    if n == 0:
        return np.empty_like(F)
    cp = np.empty(n)
    Fp = np.empty_like(F)
    denom = a[0]
    if denom == 0.0:
        raise ValidationError("zero pivot at row 0")
    cp[0] = c[0] / denom
    Fp[0] = F[0] / denom
    for i in range(1, n):
        denom = a[i] - b[i] * cp[i - 1]
        if denom == 0.0:
            raise ValidationError(f"zero pivot at row {i}")
        cp[i] = c[i] / denom
        Fp[i] = (F[i] - b[i] * Fp[i - 1]) / denom
    X = np.empty_like(F)
    X[-1] = Fp[-1]
    for i in range(n - 2, -1, -1):
        X[i] = Fp[i] - cp[i] * X[i + 1]
    return X


def thomas_factor_count(n: int) -> int:
    """Flop count of one Thomas solve of size n (8n-7 for n >= 1)."""
    if n <= 0:
        return 0
    return max(8 * n - 7, 1)


def build_tridiagonal_dense(
    b: np.ndarray, a: np.ndarray, c: np.ndarray
) -> np.ndarray:
    """Dense matrix from the three diagonals (testing helper)."""
    n = len(a)
    A = np.zeros((n, n))
    A[np.arange(n), np.arange(n)] = a
    A[np.arange(1, n), np.arange(n - 1)] = b[1:]
    A[np.arange(n - 1), np.arange(1, n)] = c[:-1]
    return A
