"""The paper's substructured parallel tridiagonal solver (section 3).

A variant of Sameh's "spike" algorithm, structured exactly as Figures
1-4 describe:

* **Local reduction** (Figure 1): each processor eliminates the interior
  of its block of rows.  Forward elimination removes the lower diagonal
  while introducing fill-in in the block's first column (``e``); reverse
  elimination removes the upper diagonal with fill-in in the block's
  last column (``g``).  The block's first and last rows then couple only
  to each other and to neighboring blocks, so the boundary rows of all p
  blocks form a tridiagonal system of 2p equations.
* **Tree reduction** (Figures 2-3): pairs of boundary-row pairs are
  mailed together; four adjacent rows reduce to two by the same
  elimination, halving the reduced system log2(p)-1 times until four
  rows remain, solved by the sequential Thomas algorithm.
* **Substitution** (Figure 4): solved boundary values descend the tree;
  each saved four-row system yields its two interior values, and finally
  each processor recovers its block interior.

Two mappings of the data-flow graph onto processors are provided
(Figure 5): :class:`ContiguousMapping` (pair j of level l on processor
j * 2**l) and :class:`ShuffleMapping` (level l served by the processor
group [p/2**l, p/2**(l-1)), so distinct levels occupy distinct
processors -- the property that enables pipelining multiple systems).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels.thomas import thomas_solve
from repro.machine.ops import Compute, Mark, Recv, Send
from repro.machine.simulator import Machine
from repro.session import launch
from repro.util.errors import ValidationError
from repro.util.indexing import block_bounds

# Flop model for the cost accounting (per row of work).
REDUCE_FLOPS_PER_ROW = 12
SUBST_FLOPS_PER_ROW = 5
THOMAS_FLOPS_PER_ROW = 8


@dataclass
class ReducedBlock:
    """Output of one local block reduction.

    ``first`` and ``last`` are the boundary rows as (lower, diag, upper,
    rhs) 4-vectors, where ``first.lower`` couples the previous block's
    last row and ``last.upper`` couples the next block's first row.
    ``e``, ``g``, ``a``, ``f`` hold the interior elimination results for
    the substitution phase: row i of the interior satisfies

        e[i] * x_first + a[i] * x[i] + g[i] * x_last = f[i].
    """

    first: np.ndarray
    last: np.ndarray
    e: np.ndarray
    g: np.ndarray
    a: np.ndarray
    f: np.ndarray

    @property
    def m(self) -> int:
        return len(self.a)

    def interior_solve(self, x_first: float, x_last: float) -> np.ndarray:
        """All block values given the solved boundary values (Figure 4)."""
        m = self.m
        x = np.empty(m)
        x[0] = x_first
        x[-1] = x_last
        if m > 2:
            sl = slice(1, m - 1)
            x[sl] = (self.f[sl] - self.e[sl] * x_first - self.g[sl] * x_last) / self.a[sl]
        return x


def local_reduce(
    b: np.ndarray, a: np.ndarray, c: np.ndarray, f: np.ndarray
) -> ReducedBlock:
    """Reduce one block of rows to its two boundary equations (Figure 1).

    Inputs are this block's slices of the global diagonals; ``b[0]`` and
    ``c[-1]`` are the couplings to the neighboring blocks (kept intact).
    """
    b = np.asarray(b, dtype=float).copy()
    a = np.asarray(a, dtype=float).copy()
    c = np.asarray(c, dtype=float).copy()
    f = np.asarray(f, dtype=float).copy()
    m = len(a)
    if m < 2:
        raise ValidationError("local_reduce requires blocks of at least 2 rows")
    e = np.zeros(m)
    g = np.zeros(m)
    e[1] = b[1]
    # Forward sweep: eliminate the lower diagonal, fill column `first`.
    for i in range(2, m):
        if a[i - 1] == 0.0:
            raise ValidationError(f"zero pivot during forward reduction (row {i - 1})")
        mfac = b[i] / a[i - 1]
        a[i] -= mfac * c[i - 1]
        e[i] = -mfac * e[i - 1]
        f[i] -= mfac * f[i - 1]
    # Reverse sweep: eliminate the upper diagonal, fill column `last`.
    if m >= 2:
        g[m - 2] = c[m - 2]
    for i in range(m - 3, -1, -1):
        if a[i + 1] == 0.0:
            raise ValidationError(f"zero pivot during reverse reduction (row {i + 1})")
        mfac = c[i] / a[i + 1]
        g[i] = -mfac * g[i + 1]
        f[i] -= mfac * f[i + 1]
        if i == 0:
            a[0] -= mfac * e[1]
        else:
            e[i] -= mfac * e[i + 1]
    first = np.array([b[0], a[0], g[0], f[0]])
    last = np.array([e[m - 1], a[m - 1], c[m - 1], f[m - 1]])
    return ReducedBlock(first=first, last=last, e=e, g=g, a=a, f=f)


def reduce_flops(m: int) -> float:
    return REDUCE_FLOPS_PER_ROW * max(m, 0)


def pair_rows_to_tridiagonal(pairs: list[tuple[np.ndarray, np.ndarray]]):
    """Assemble the reduced 2q-row tridiagonal system from q boundary pairs."""
    q = len(pairs)
    n = 2 * q
    b = np.zeros(n)
    a = np.zeros(n)
    c = np.zeros(n)
    f = np.zeros(n)
    for k, (first, last) in enumerate(pairs):
        b[2 * k], a[2 * k], c[2 * k], f[2 * k] = first
        b[2 * k + 1], a[2 * k + 1], c[2 * k + 1], f[2 * k + 1] = last
    return b, a, c, f


def reduce_four_rows(
    pair_a: tuple[np.ndarray, np.ndarray], pair_b: tuple[np.ndarray, np.ndarray]
) -> tuple[np.ndarray, np.ndarray, ReducedBlock]:
    """Reduce two adjacent boundary pairs (four rows) to one pair (Figure 2).

    Returns (new_first, new_last, saved) where ``saved`` lets the
    substitution phase recover the two interior rows.
    """
    b, a, c, f = pair_rows_to_tridiagonal([pair_a, pair_b])
    red = local_reduce(b, a, c, f)
    return red.first, red.last, red


def solve_reduced_pairs(pairs: list[tuple[np.ndarray, np.ndarray]]) -> np.ndarray:
    """Directly solve the reduced system of the given boundary pairs.

    Sequential reference used at the tree apex and in tests; the outer
    couplings (first pair's lower, last pair's upper) are ignored, as
    they reference rows outside the full matrix.
    """
    b, a, c, f = pair_rows_to_tridiagonal(pairs)
    return thomas_solve(b, a, c, f)


# ----------------------------------------------------------------------
# Mappings of the data-flow graph onto processors (Figure 5)
# ----------------------------------------------------------------------


class Mapping:
    """Assignment of tree-level pairs to processor ranks."""

    name = "abstract"

    def __init__(self, p: int):
        if p < 1 or (p & (p - 1)) != 0:
            raise ValidationError(f"mappings require a power-of-two p, got {p}")
        self.p = p
        self.k = p.bit_length() - 1  # log2 p

    def pair_rank(self, level: int, j: int) -> int:
        """Rank holding pair ``j`` of tree level ``level`` (level 0 = blocks)."""
        raise NotImplementedError

    def routing_key(self):
        """Hashable identity for the routing-schedule cache.

        Two mappings with equal keys must answer ``pair_rank``
        identically.  The default covers mappings fully determined by
        (class, p); subclasses carrying extra constructor state (a
        seed, a permutation, ...) must include it here or their cached
        routings will alias.
        """
        return (type(self), self.p)

    def npairs(self, level: int) -> int:
        return self.p >> level


class ContiguousMapping(Mapping):
    """Naive mapping: pair j of level l stays on processor j * 2**l.

    Processor 0 serves every level; higher-numbered processors idle
    early -- the left-hand data-flow layout of Figure 5.
    """

    name = "contiguous"

    def pair_rank(self, level: int, j: int) -> int:
        if not 0 <= j < self.npairs(level) and not (level == self.k and j == 0):
            raise ValidationError(f"pair {j} invalid at level {level}")
        return j * (1 << level) if level <= self.k else 0


class ShuffleMapping(Mapping):
    """Shuffle/unshuffle mapping (Figure 5): levels on disjoint groups.

    Level l >= 1 is served by ranks [p/2**l, p/2**(l-1)); pair j of that
    level sits on rank p/2**l + j.  Because distinct levels use distinct
    processors, a stream of systems pipelines through the tree keeping
    most processors busy -- the advantage claimed in section 3.
    """

    name = "shuffle"

    def pair_rank(self, level: int, j: int) -> int:
        if level == 0:
            return j
        base = self.p >> level
        if base == 0:
            base = 1
        return base + j


# ----------------------------------------------------------------------
# Cached tree-routing schedule
# ----------------------------------------------------------------------


class TreeRouting:
    """Precomputed communication schedule of one reduction tree.

    The mapping functions answer "where does pair j of level l live?"
    one query at a time; every solve (and every system of a pipelined
    multi-solve) used to re-derive the same answers.  A ``TreeRouting``
    tabulates them once per (mapping class, p): per-rank holdings at
    each level, the upward destination of every pair, and the apex --
    the tri solver's analogue of a cached inspector/executor schedule.
    """

    __slots__ = ("name", "p", "k", "apex", "_rank_of", "_holdings", "_up_dest")

    def __init__(self, mapping: Mapping):
        self.name = mapping.name
        self.p = mapping.p
        self.k = mapping.k
        self.apex = mapping.pair_rank(self.k, 0)
        self._rank_of: dict[tuple[int, int], int] = {(self.k, 0): self.apex}
        self._holdings: dict[int, dict[int, list[int]]] = {}
        self._up_dest: dict[tuple[int, int], int] = {}
        for level in range(self.k):
            per_rank: dict[int, list[int]] = {}
            for j in range(mapping.npairs(level)):
                holder = mapping.pair_rank(level, j)
                self._rank_of[(level, j)] = holder
                per_rank.setdefault(holder, []).append(j)
                if level + 1 < self.k:
                    self._up_dest[(level, j)] = mapping.pair_rank(level + 1, j // 2)
                else:
                    self._up_dest[(level, j)] = self.apex
            self._holdings[level] = per_rank

    def rank_of(self, level: int, j: int) -> int:
        """Rank holding pair ``j`` of ``level`` (tabulated)."""
        return self._rank_of[(level, j)]

    def up_dest(self, level: int, j: int) -> int:
        """Rank consuming the reduced pair ``j`` of ``level``."""
        return self._up_dest[(level, j)]

    def holdings(self, rank: int, level: int) -> list[int]:
        """Pairs this rank holds at ``level``."""
        return self._holdings.get(level, {}).get(rank, [])


_ROUTING_CACHE: dict[tuple, TreeRouting] = {}


def get_routing(mapping: Mapping) -> tuple[TreeRouting, bool]:
    """Cached routing keyed by ``mapping.routing_key()``; returns
    (routing, was_cached)."""
    key = mapping.routing_key()
    routing = _ROUTING_CACHE.get(key)
    if routing is not None:
        return routing, True
    routing = TreeRouting(mapping)
    _ROUTING_CACHE[key] = routing
    return routing, False


def clear_routing_cache() -> None:
    """Drop all cached tree routings (mostly for tests)."""
    _ROUTING_CACHE.clear()


# ----------------------------------------------------------------------
# SPMD node program
# ----------------------------------------------------------------------


def _holdings(mapping: Mapping, rank: int, level: int) -> list[int]:
    """Pairs this rank holds at ``level`` (served from the routing cache)."""
    return get_routing(mapping)[0].holdings(rank, level)


def tri_node_program(
    rank: int,
    p: int,
    block: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    mapping: Mapping,
    out: dict[int, np.ndarray],
    sys_id=0,
):
    """Node program of one processor for one substructured solve.

    ``block`` is this rank's (b, a, c, f) row slices; the solved block
    values are stored into ``out[rank]`` on completion.  ``sys_id``
    namespaces message tags so several solves can run concurrently.
    """
    b, a, c, f = block
    m = len(a)
    k = mapping.k

    if p == 1:
        yield Compute(flops=THOMAS_FLOPS_PER_ROW * m, label="thomas")
        out[rank] = thomas_solve(b, a, c, f)
        return

    routing, was_cached = get_routing(mapping)
    yield Mark(
        "commsched/hit" if was_cached else "commsched/build",
        payload=("tri-routing", mapping.name, p),
    )

    # ---- Phase A: local reduction (Figure 1) --------------------------
    yield Mark("tri/reduce", payload=(sys_id, 0))
    red = local_reduce(b, a, c, f)
    yield Compute(flops=reduce_flops(m), label="local_reduce")
    my_pair = (red.first, red.last)

    # route my level-0 pair toward its level-1 parent
    parent = routing.up_dest(0, rank)
    saved: dict[tuple[int, int], ReducedBlock] = {}
    pair_at: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {(0, rank): my_pair}
    if parent != rank:
        yield Send(parent, np.concatenate(my_pair), tag=("tri", sys_id, "up", 0, rank))

    # ---- Phase B: tree reduction (Figures 2-3) -------------------------
    for level in range(1, k):
        for j in routing.holdings(rank, level):
            yield Mark("tri/reduce", payload=(sys_id, level))
            pa = yield from _obtain_pair(rank, mapping, level - 1, 2 * j, pair_at, sys_id)
            pb = yield from _obtain_pair(rank, mapping, level - 1, 2 * j + 1, pair_at, sys_id)
            first, last, sred = reduce_four_rows(pa, pb)
            yield Compute(flops=reduce_flops(4), label="tree_reduce")
            saved[(level, j)] = sred
            pair_at[(level, j)] = (first, last)
            dest = routing.up_dest(level, j)
            if dest != rank:
                yield Send(
                    dest, np.concatenate((first, last)), tag=("tri", sys_id, "up", level, j)
                )

    # ---- Apex: solve the final four rows by Thomas ---------------------
    apex = routing.apex
    top_level = k - 1
    if rank == apex:
        yield Mark("tri/apex", payload=(sys_id, k))
        pa = yield from _obtain_pair(rank, mapping, top_level, 0, pair_at, sys_id)
        pb = yield from _obtain_pair(rank, mapping, top_level, 1, pair_at, sys_id)
        x4 = solve_reduced_pairs([pa, pb])
        yield Compute(flops=THOMAS_FLOPS_PER_ROW * 4, label="apex_thomas")
        for idx, j in enumerate((0, 1)):
            vals = x4[2 * idx : 2 * idx + 2]
            holder = routing.rank_of(top_level, j)
            if holder == rank:
                pair_at[("x", top_level, j)] = vals
            else:
                yield Send(holder, vals, tag=("tri", sys_id, "dn", top_level, j))

    # ---- Substitution: descend the tree (Figure 4) ----------------------
    for level in range(k - 1, 0, -1):
        for j in routing.holdings(rank, level):
            yield Mark("tri/subst", payload=(sys_id, level))
            key = ("x", level, j)
            if key in pair_at:
                x_first, x_last = pair_at[key]
            else:
                vals = yield Recv(
                    src=routing.up_dest(level, j),
                    tag=("tri", sys_id, "dn", level, j),
                )
                x_first, x_last = vals
            sred = saved[(level, j)]
            x4 = sred.interior_solve(x_first, x_last)
            yield Compute(flops=SUBST_FLOPS_PER_ROW * 2, label="tree_subst")
            for cj, vals in ((2 * j, x4[0:2]), (2 * j + 1, x4[2:4])):
                holder = routing.rank_of(level - 1, cj)
                if holder == rank:
                    pair_at[("x", level - 1, cj)] = vals
                else:
                    yield Send(holder, vals, tag=("tri", sys_id, "dn", level - 1, cj))

    # ---- Phase C: recover my block interior -----------------------------
    yield Mark("tri/subst", payload=(sys_id, 0))
    key = ("x", 0, rank)
    if key in pair_at:
        xb = pair_at[key]
    else:
        xb = yield Recv(src=routing.up_dest(0, rank), tag=("tri", sys_id, "dn", 0, rank))
    x_block = red.interior_solve(float(xb[0]), float(xb[1]))
    yield Compute(flops=SUBST_FLOPS_PER_ROW * m, label="block_subst")
    out[rank] = x_block


def _obtain_pair(rank, mapping, level, j, pair_at, sys_id):
    """Local lookup or receive of pair j at ``level`` (generator helper)."""
    holder = mapping.pair_rank(level, j)
    if holder == rank:
        return pair_at[(level, j)]
    data = yield Recv(src=holder, tag=("tri", sys_id, "up", level, j))
    return (data[:4], data[4:])


# ----------------------------------------------------------------------
# High-level driver
# ----------------------------------------------------------------------


def substructured_tri_solve(
    b: np.ndarray,
    a: np.ndarray,
    c: np.ndarray,
    f: np.ndarray,
    p: int,
    machine: Machine | None = None,
    mapping_cls=ShuffleMapping,
    session=None,
):
    """Solve a tridiagonal system on ``p`` simulated processors.

    Returns ``(x, trace)``: the global solution vector and the machine
    trace (timing, messages, Mark events for the data-flow figures).
    """
    n = len(a)
    if p < 1:
        raise ValidationError("p must be >= 1")
    if n < 2 * p:
        raise ValidationError(f"n={n} too small for p={p} (need n >= 2p)")
    mapping = mapping_cls(p)
    if machine is None:
        machine = Machine(n_procs=p)
    if machine.n_procs < p:
        raise ValidationError("machine too small for requested p")
    out: dict[int, np.ndarray] = {}
    bounds = [block_bounds(n, p, r) for r in range(p)]

    def make(rank):
        lo, hi = bounds[rank]
        blk = (b[lo:hi], a[lo:hi], c[lo:hi], f[lo:hi])
        return tri_node_program(rank, p, blk, mapping, out)

    trace = launch({r: make(r) for r in range(p)}, machine, session)
    x = np.empty(n)
    for r in range(p):
        lo, hi = bounds[r]
        x[lo:hi] = out[r]
    return x, trace
