"""Cubic spline fitting kernel.

Spline fitting is the first application domain the paper names for
tensor product algorithms ("widely used in spline fitting ...").  A
natural cubic spline interpolant reduces to a tridiagonal solve for the
knot second derivatives -- exactly the kernel of section 3 -- so the
parallel solvers plug in directly.  Tensor-product surface fitting
(fit along x lines, then along y lines) is built on this in
``examples/spline_surface.py``.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.substructured import substructured_tri_solve
from repro.kernels.thomas import thomas_solve
from repro.machine.simulator import Machine
from repro.util.errors import ValidationError


def spline_system(x: np.ndarray, y: np.ndarray):
    """Tridiagonal system for natural-spline knot second derivatives.

    Given knots ``x`` (strictly increasing) and values ``y``, returns
    (b, a, c, f) of size n whose solution M satisfies the natural cubic
    spline continuity conditions with M[0] = M[n-1] = 0.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    n = len(x)
    if n < 3:
        raise ValidationError("spline fitting needs at least 3 knots")
    if np.any(np.diff(x) <= 0):
        raise ValidationError("knots must be strictly increasing")
    h = np.diff(x)
    b = np.zeros(n)
    a = np.ones(n)
    c = np.zeros(n)
    f = np.zeros(n)
    # interior continuity equations
    b[1:-1] = h[:-1]
    a[1:-1] = 2.0 * (h[:-1] + h[1:])
    c[1:-1] = h[1:]
    f[1:-1] = 6.0 * ((y[2:] - y[1:-1]) / h[1:] - (y[1:-1] - y[:-2]) / h[:-1])
    # natural boundary: M[0] = M[-1] = 0 (rows are identity)
    return b, a, c, f


def cubic_spline_coeffs(
    x: np.ndarray,
    y: np.ndarray,
    p: int = 1,
    machine: Machine | None = None,
):
    """Knot second derivatives M of the natural cubic spline.

    With ``p > 1`` the tridiagonal solve runs on the simulated machine
    using the substructured parallel solver; returns (M, trace) then,
    else (M, None).
    """
    b, a, c, f = spline_system(x, y)
    if p <= 1:
        return thomas_solve(b, a, c, f), None
    M, trace = substructured_tri_solve(b, a, c, f, p, machine=machine)
    return M, trace


def spline_eval(
    x: np.ndarray, y: np.ndarray, M: np.ndarray, xq: np.ndarray
) -> np.ndarray:
    """Evaluate the natural cubic spline at query points ``xq``."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    M = np.asarray(M, dtype=float)
    xq = np.asarray(xq, dtype=float)
    if np.any(xq < x[0]) or np.any(xq > x[-1]):
        raise ValidationError("query points outside the knot range")
    h = np.diff(x)
    k = np.clip(np.searchsorted(x, xq, side="right") - 1, 0, len(x) - 2)
    dx = xq - x[k]
    dx1 = x[k + 1] - xq
    hk = h[k]
    return (
        M[k] * dx1**3 / (6 * hk)
        + M[k + 1] * dx**3 / (6 * hk)
        + (y[k] / hk - M[k] * hk / 6) * dx1
        + (y[k + 1] / hk - M[k + 1] * hk / 6) * dx
    )
