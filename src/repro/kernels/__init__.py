"""One-dimensional kernel algorithms (paper section 3).

The paper's thesis is that multi-dimensional tensor product algorithms
are built by combining one-dimensional "kernel" routines.  This package
provides the kernels:

* :mod:`repro.kernels.thomas` -- the sequential tridiagonal solve used
  at the root of the reduction tree and inside zebra relaxation;
* :mod:`repro.kernels.substructured` -- the paper's substructured
  (spike-variant) parallel tridiagonal solver, Listing 4 / Figures 1-5;
* :mod:`repro.kernels.pipelined` -- the pipelined multi-system solver,
  Listing 6;
* :mod:`repro.kernels.cyclic_reduction` -- cyclic reduction, the classic
  alternative parallel tridiagonal algorithm, used as a baseline;
* :mod:`repro.kernels.fft` and :mod:`repro.kernels.spline` -- the other
  1-D kernels the paper names (FFT, cubic spline fitting).
"""

from repro.kernels.thomas import thomas_solve, thomas_factor_count
from repro.kernels.substructured import (
    local_reduce,
    solve_reduced_pairs,
    substructured_tri_solve,
    tri_node_program,
    ContiguousMapping,
    ShuffleMapping,
)
from repro.kernels.pipelined import (
    pipelined_multi_tri_solve,
    sequential_multi_tri_solve,
)
from repro.kernels.cyclic_reduction import (
    cyclic_reduction_solve,
    distributed_cyclic_reduction,
)
from repro.kernels.fft import parallel_fft, fft_node_program
from repro.kernels.spline import cubic_spline_coeffs, spline_eval

__all__ = [
    "thomas_solve",
    "thomas_factor_count",
    "local_reduce",
    "solve_reduced_pairs",
    "substructured_tri_solve",
    "tri_node_program",
    "ContiguousMapping",
    "ShuffleMapping",
    "pipelined_multi_tri_solve",
    "sequential_multi_tri_solve",
    "cyclic_reduction_solve",
    "distributed_cyclic_reduction",
    "parallel_fft",
    "fft_node_program",
    "cubic_spline_coeffs",
    "spline_eval",
]
