"""Cyclic reduction: the classic alternative parallel tridiagonal solver.

Used as a baseline against the paper's substructured algorithm (the
paper cites Johnsson's survey [8] of parallel tridiagonal methods).
Odd-even cyclic reduction halves the system log2(n) times; it exposes
fine-grained parallelism but needs a reduction step count proportional
to log n rather than log p and communicates at every level.

Two forms are provided: a sequential reference (numerics) and a
block-distributed node program on the simulated machine (timing
comparisons in ``bench_tri_speedup``).
"""

from __future__ import annotations

import numpy as np

from repro.machine.ops import Compute, Recv, Send
from repro.machine.simulator import Machine
from repro.session import launch
from repro.util.errors import ValidationError
from repro.util.indexing import block_bounds

CR_FLOPS_PER_ROW = 17


def cyclic_reduction_solve(
    b: np.ndarray, a: np.ndarray, c: np.ndarray, f: np.ndarray
) -> np.ndarray:
    """Sequential odd-even cyclic reduction (any n >= 1)."""
    b = np.asarray(b, dtype=float).copy()
    a = np.asarray(a, dtype=float).copy()
    c = np.asarray(c, dtype=float).copy()
    f = np.asarray(f, dtype=float).copy()
    n = len(a)
    if n == 0:
        return np.empty(0)
    # Work on index lists; at each level the "active" rows are reduced.
    active = np.arange(n)
    stack = []
    while len(active) > 1:
        even = active[::2]
        odd = active[1::2]
        stack.append((active.copy(), even.copy(), odd.copy()))
        # eliminate even-positioned rows, keeping odd-positioned ones
        alpha = np.zeros(len(odd))
        beta = np.zeros(len(odd))
        prev = even[: len(odd)]  # row above each odd row
        nxt = active[2::2]  # row below each odd row (may be shorter)
        with np.errstate(divide="raise"):
            alpha = b[odd] / a[prev]
        a[odd] = a[odd] - alpha * c[prev]
        f[odd] = f[odd] - alpha * f[prev]
        b[odd] = -alpha * b[prev]
        has_next = np.arange(len(odd)) < len(nxt)
        idx = odd[has_next]
        nn = nxt[: len(idx)]
        beta = c[idx] / a[nn]
        a[idx] = a[idx] - beta * b[nn]
        f[idx] = f[idx] - beta * f[nn]
        c[idx] = -beta * c[nn]
        active = odd
    x = np.zeros(n)
    if a[active[0]] == 0.0:
        raise ValidationError("zero pivot in cyclic reduction")
    x[active[0]] = f[active[0]] / a[active[0]]
    solved = np.zeros(n, dtype=bool)
    solved[active[0]] = True
    while stack:
        full, even, odd = stack.pop()
        # back-substitute the even-positioned rows
        for pos, i in enumerate(even):
            left = full[2 * pos - 1] if 2 * pos - 1 >= 0 else None
            right = full[2 * pos + 1] if 2 * pos + 1 < len(full) else None
            val = f[i]
            if left is not None:
                val -= b[i] * x[left]
            if right is not None:
                val -= c[i] * x[right]
            if a[i] == 0.0:
                raise ValidationError("zero pivot in cyclic reduction substitution")
            x[i] = val / a[i]
            solved[i] = True
    return x


def cr_node_program(rank, p, n, rows, out, levels_meta):
    """Block-distributed cyclic reduction node program.

    ``rows`` maps global row index -> [b, a, c, f] for this rank's block.
    Remote row values needed at each level are exchanged point-to-point.
    This is deliberately a straightforward translation -- the baseline a
    1989 programmer would write -- not an optimized variant.
    """
    my_rows = dict(rows)
    x_known: dict[int, float] = {}

    def owner(i: int) -> int:
        base, extra = divmod(n, p)
        split = extra * (base + 1)
        if i < split:
            return i // (base + 1)
        return extra + (i - split) // base if base else 0

    for level, (active, even, odd) in enumerate(levels_meta):
        # rows I hold that are odd (stay active): need row above and below
        mine_odd = [int(i) for i in odd if int(i) in my_rows]
        needed: dict[int, list[int]] = {}
        pos_of = {int(v): k for k, v in enumerate(active)}
        for i in mine_odd:
            pos = pos_of[i]
            for np_pos in (pos - 1, pos + 1):
                if 0 <= np_pos < len(active):
                    gi = int(active[np_pos])
                    if gi not in my_rows:
                        needed.setdefault(owner(gi), []).append(gi)
        # everyone also serves requests: deterministic — compute who needs my rows
        serve: dict[int, list[int]] = {}
        for q in range(p):
            if q == rank:
                continue
            for i in (int(v) for v in odd):
                if owner(i) != q:
                    continue
                pos = pos_of[i]
                for np_pos in (pos - 1, pos + 1):
                    if 0 <= np_pos < len(active):
                        gi = int(active[np_pos])
                        if gi in my_rows and owner(gi) == rank:
                            serve.setdefault(q, []).append(gi)
        for q in sorted(serve):
            payload = {gi: my_rows[gi].copy() for gi in serve[q]}
            yield Send(q, payload, tag=("cr", level, rank))
        remote_rows: dict[int, np.ndarray] = {}
        for q in sorted(needed):
            data = yield Recv(src=q, tag=("cr", level, q))
            remote_rows.update(data)

        def row(i):
            return my_rows[i] if i in my_rows else remote_rows[i]

        nflops = 0
        for i in mine_odd:
            pos = pos_of[i]
            r = my_rows[i]
            if pos - 1 >= 0:
                above = row(int(active[pos - 1]))
                alpha = r[0] / above[1]
                r[1] -= alpha * above[2]
                r[3] -= alpha * above[3]
                r[0] = -alpha * above[0]
                nflops += 8
            if pos + 1 < len(active):
                below = row(int(active[pos + 1]))
                beta = r[2] / below[1]
                r[1] -= beta * below[0]
                r[3] -= beta * below[3]
                r[2] = -beta * below[2]
                nflops += 8
        if nflops:
            yield Compute(flops=nflops, label="cr_reduce")

    # back substitution: mirror the levels in reverse
    final_active = levels_meta[-1][2] if levels_meta else np.arange(n)
    root = int(final_active[0]) if len(final_active) else 0
    if root in my_rows:
        r = my_rows[root]
        x_known[root] = r[3] / r[1]
        yield Compute(flops=1, label="cr_root")

    for level in range(len(levels_meta) - 1, -1, -1):
        active, even, odd = levels_meta[level]
        pos_of = {int(v): k for k, v in enumerate(active)}
        # even rows are solved at this level using neighbors' x values
        mine_even = [int(i) for i in even if int(i) in my_rows]
        needed_x: dict[int, list[int]] = {}
        for i in mine_even:
            pos = pos_of[i]
            for np_pos in (pos - 1, pos + 1):
                if 0 <= np_pos < len(active):
                    gi = int(active[np_pos])
                    if gi not in my_rows:
                        needed_x.setdefault(owner(gi), []).append(gi)
        serve_x: dict[int, list[int]] = {}
        for q in range(p):
            if q == rank:
                continue
            for i in (int(v) for v in even):
                if owner(i) != q:
                    continue
                pos = pos_of[i]
                for np_pos in (pos - 1, pos + 1):
                    if 0 <= np_pos < len(active):
                        gi = int(active[np_pos])
                        if owner(gi) == rank:
                            serve_x.setdefault(q, []).append(gi)
        for q in sorted(serve_x):
            payload = {gi: x_known[gi] for gi in serve_x[q]}
            yield Send(q, payload, tag=("crx", level, rank))
        remote_x: dict[int, float] = {}
        for q in sorted(needed_x):
            data = yield Recv(src=q, tag=("crx", level, q))
            remote_x.update(data)

        def xval(i):
            return x_known[i] if i in x_known else remote_x[i]

        nflops = 0
        for i in mine_even:
            pos = pos_of[i]
            r = my_rows[i]
            val = r[3]
            if pos - 1 >= 0:
                val -= r[0] * xval(int(active[pos - 1]))
                nflops += 2
            if pos + 1 < len(active):
                val -= r[2] * xval(int(active[pos + 1]))
                nflops += 2
            x_known[i] = val / r[1]
            nflops += 1
        if nflops:
            yield Compute(flops=nflops, label="cr_subst")

    out[rank] = x_known


def distributed_cyclic_reduction(
    b: np.ndarray,
    a: np.ndarray,
    c: np.ndarray,
    f: np.ndarray,
    p: int,
    machine: Machine | None = None,
    session=None,
):
    """Run block-distributed cyclic reduction; returns (x, trace)."""
    n = len(a)
    if p < 1:
        raise ValidationError("p must be >= 1")
    if machine is None:
        machine = Machine(n_procs=p)
    # Precompute the level structure (identical on every rank).
    levels_meta = []
    active = np.arange(n)
    while len(active) > 1:
        even = active[::2]
        odd = active[1::2]
        levels_meta.append((active.copy(), even.copy(), odd.copy()))
        active = odd
    out: dict[int, dict[int, float]] = {}

    def make(rank):
        lo, hi = block_bounds(n, p, rank)
        rows = {
            int(i): np.array([b[i], a[i], c[i], f[i]], dtype=float)
            for i in range(lo, hi)
        }
        return cr_node_program(rank, p, n, rows, out, levels_meta)

    trace = launch({r: make(r) for r in range(p)}, machine, session)
    x = np.empty(n)
    for r in range(p):
        for i, v in out[r].items():
            x[i] = v
    return x, trace
