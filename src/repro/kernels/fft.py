"""Parallel binary-exchange FFT kernel.

The paper lists Fast Fourier Transforms among the one-dimensional
"kernel" routines tensor product algorithms are built from (section 3).
This module implements the hypercube-era binary-exchange radix-2 DIF
FFT: with n points block-distributed over p = 2**d processors, the first
log2(p) butterfly stages pair whole blocks across hypercube dimensions
(one block exchange each), and the remaining log2(n/p) stages are local.
A distributed bit-reversal permutation returns natural ordering.
"""

from __future__ import annotations

import numpy as np

from repro.machine.ops import Compute, Recv, Send
from repro.machine.simulator import Machine
from repro.session import launch
from repro.util.errors import ValidationError

FFT_FLOPS_PER_BUTTERFLY = 10


def _is_pow2(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


def _bit_reverse_indices(n: int) -> np.ndarray:
    bits = n.bit_length() - 1
    idx = np.arange(n)
    rev = np.zeros(n, dtype=np.int64)
    for b in range(bits):
        rev |= ((idx >> b) & 1) << (bits - 1 - b)
    return rev


def _dif_stage(block: np.ndarray, offset: int, h: int, n: int) -> np.ndarray:
    """Apply one DIF butterfly stage (half-size h) to a local block.

    ``offset`` is the block's global start index.  Only valid when the
    stage is entirely local (h < block size divides cleanly).
    """
    nb = len(block)
    out = block.copy()
    g = np.arange(nb)
    gidx = g + offset
    j = gidx % (2 * h)
    lower = j < h
    # pairs are local by construction
    u = block[lower]
    v = block[~lower]
    w = np.exp(-2j * np.pi * (gidx[lower] % (2 * h) % h) / (2 * h))
    out[lower] = u + v
    out[~lower] = (u - v) * w
    return out


def fft_node_program(rank: int, p: int, n: int, block: np.ndarray, out: dict):
    """Node program: binary-exchange FFT of this rank's block."""
    nb = n // p
    x = np.asarray(block, dtype=complex).copy()
    offset = rank * nb
    h = n // 2
    # --- cross-processor stages: h >= nb -------------------------------
    while h >= nb:
        partner = rank ^ (h // nb)
        yield Send(partner, x, tag=("fft", h, rank))
        other = yield Recv(src=partner, tag=("fft", h, partner))
        j = (np.arange(nb) + offset) % (2 * h)
        if rank < partner:  # I hold the "upper wing" u; partner holds v
            x = x + other
        else:
            w = np.exp(-2j * np.pi * (j % h) / (2 * h))
            x = (other - x) * w
        yield Compute(flops=FFT_FLOPS_PER_BUTTERFLY * nb, label="fft_exchange_stage")
        h //= 2
    # --- local stages ----------------------------------------------------
    while h >= 1:
        x = _dif_stage(x, offset, h, n)
        yield Compute(flops=FFT_FLOPS_PER_BUTTERFLY * nb // 2, label="fft_local_stage")
        h //= 2
    # --- distributed bit reversal ----------------------------------------
    rev = _bit_reverse_indices(n)
    dest_global = rev[offset : offset + nb]
    dest_proc = dest_global // nb
    outbox: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    for q in range(p):
        sel = np.nonzero(dest_proc == q)[0]
        if sel.size:
            outbox[q] = (dest_global[sel] % nb, x[sel])
    final = np.empty(nb, dtype=complex)
    if rank in outbox:
        loc, vals = outbox[rank]
        final[loc] = vals
    for q in range(p):
        if q == rank or q not in outbox:
            continue
        yield Send(q, outbox[q], tag=("fftrev", rank))
    # receive from every rank that sends to me (deterministic: recompute)
    for q in range(p):
        if q == rank:
            continue
        q_dest = rev[q * nb : (q + 1) * nb] // nb
        if np.any(q_dest == rank):
            loc, vals = yield Recv(src=q, tag=("fftrev", q))
            final[loc] = vals
    out[rank] = final


def parallel_fft(
    x: np.ndarray, p: int, machine: Machine | None = None, session=None
) -> tuple[np.ndarray, "object"]:
    """Distributed FFT of ``x`` over ``p`` simulated processors.

    Returns (X, trace) where X matches ``numpy.fft.fft(x)``.
    """
    x = np.asarray(x, dtype=complex)
    n = len(x)
    if not _is_pow2(n):
        raise ValidationError(f"FFT size must be a power of two, got {n}")
    if not _is_pow2(p) or p > n:
        raise ValidationError(f"p must be a power of two <= n, got {p}")
    if machine is None:
        machine = Machine(n_procs=p)
    nb = n // p
    out: dict[int, np.ndarray] = {}

    def make(rank):
        return fft_node_program(rank, p, n, x[rank * nb : (rank + 1) * nb], out)

    trace = launch({r: make(r) for r in range(p)}, machine, session)
    X = np.concatenate([out[r] for r in range(p)])
    return X, trace
