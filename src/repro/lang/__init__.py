"""KF1-style language layer: processor arrays, distributed data, doall loops.

This subpackage is the paper's contribution, recast as an embedded Python
DSL (see DESIGN.md).  The user supplies exactly the three pieces of
information KF1 asks for -- a processor array, per-dimension data
distributions, and ``doall`` loops with ``on`` clauses -- and the
mini-compiler in :mod:`repro.compiler` produces all message passing.
"""

from repro.lang.procs import ProcessorGrid
from repro.lang.dist import Block, Cyclic, BlockCyclic, Star, Distribution
from repro.lang.array import DistArray
from repro.lang.expr import (
    LoopVar,
    loopvars,
    AffineExpr,
    Expr,
    Ref,
    Const,
    BinOp,
    Assign,
)
from repro.lang.doall import Doall, Owner, OnProc
from repro.lang.context import KaliCtx, run_spmd
from repro.lang.kf1 import KF1Program, parse_program

__all__ = [
    "ProcessorGrid",
    "Block",
    "Cyclic",
    "BlockCyclic",
    "Star",
    "Distribution",
    "DistArray",
    "LoopVar",
    "loopvars",
    "AffineExpr",
    "Expr",
    "Ref",
    "Const",
    "BinOp",
    "Assign",
    "Doall",
    "Owner",
    "OnProc",
    "KaliCtx",
    "run_spmd",
    "KF1Program",
    "parse_program",
]
