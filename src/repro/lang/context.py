"""SPMD execution context and the legacy launch shim.

A parallel subroutine (the paper's ``parsub``) is a Python generator
function ``def routine(ctx, ...)`` executed by every rank of a processor
grid; ``yield from`` composes nested parsubs and compiled doall
segments.  :class:`KaliCtx` carries the rank plus per-grid tag counters
so that implicitly generated messages match across ranks, mirroring the
compiler-assigned channel identities of real KF1.

Every context belongs to a :class:`~repro.session.Session`, which owns
the caches its collective operations consult (compiled doall plans,
transfer schedules, run identities).  A context built *without* a
session -- the legacy hand-wired path, and the deprecated
:func:`run_spmd` launcher -- falls back to the implicit default Session
backed by the historical process-global caches, so old code keeps its
exact behavior while new code gets isolation by construction.
"""

from __future__ import annotations

import itertools
import operator
import os
import warnings
from typing import Any, Callable

from repro.lang.procs import ProcessorGrid
from repro.machine import collectives
from repro.machine.simulator import Machine
from repro.machine.trace import Trace
from repro.util.errors import ReproDeprecationWarning, ValidationError

#: Launch-identity counter behind :func:`next_run_id`; all ranks of one
#: launch share one id, which scopes collective cache decisions to that
#: run (per-grid tag counters restart every run, so tags alone recur).
#: ``itertools.count`` hands out each integer exactly once even under
#: free-threaded concurrent ``next()`` calls, so no lock is needed.
_RUN_IDS = itertools.count()


def next_run_id() -> tuple[int, int]:
    """Allocate a launch identity unique *across processes and threads*.

    Run ids scope :class:`~repro.compiler.commsched.ScheduleCache`
    per-run decision logs and repartition staging tokens, so two
    concurrent launches must never share one.  A bare ``c = c + 1``
    counter fails that twice over: a worker process forked by the
    multiprocessing backend inherits the parent's counter state and
    would re-issue the same integers, and two serving threads
    (:mod:`repro.serve`) racing the read-increment-write would collide
    within one process.  Keying the id by ``(pid, counter)`` with an
    atomic ``itertools.count`` makes collisions impossible no matter
    which process or thread allocates -- ids are only ever used as
    opaque hashable tokens, never ordered or arithmetic'd on.
    """
    return (os.getpid(), next(_RUN_IDS))


class KaliCtx:
    """Per-rank execution context for SPMD parallel subroutines.

    ``session`` is the :class:`~repro.session.Session` whose caches the
    context's collective operations (``doall``, ``cached_gather``,
    ``redistribute``) consult; :meth:`Session.run` wires it
    automatically.  A session-less context falls back to the
    process-global default caches (deprecated; kept for the legacy
    hand-wired path).
    """

    def __init__(
        self,
        rank: int,
        grid: ProcessorGrid,
        run_id: int | None = None,
        session=None,
        compiled: bool | None = None,
        marks: str | None = None,
    ):
        if not grid.contains(rank):
            raise ValidationError(f"rank {rank} not in grid {grid.shape}")
        self.rank = rank
        self.grid = grid
        self.run_id = run_id
        self.session = session
        #: executor mode for doall loops: True replays compiled
        #: StepPlans, False runs the interpreted reference path.
        #: Defaults to the Session's setting (True without one).
        self.compiled = (
            compiled if compiled is not None
            else getattr(session, "compiled", True)
        )
        #: "full" records every schedule Mark; "cheap" aggregates them
        #: into :attr:`mark_counts` (no per-op mark objects on the hot
        #: path; the Session folds the counts into the trace).
        self.marks = (
            marks if marks is not None else getattr(session, "marks", "full")
        )
        if self.marks not in ("full", "cheap"):
            raise ValidationError(
                f"marks must be 'full' or 'cheap', got {self.marks!r}"
            )
        #: (label, direction) -> count, filled in cheap-marks mode.
        self.mark_counts: dict[tuple, int] = {}
        #: per-grid tag allocators; ``itertools.count`` objects, so
        #: allocation is atomic (see :meth:`next_tag`).
        self._counters: dict[tuple, itertools.count] = {}

    def count_mark(self, label: str, direction: str) -> None:
        """Aggregate one schedule event (cheap-marks mode)."""
        key = (label, direction)
        counts = self.mark_counts
        counts[key] = counts.get(key, 0) + 1

    # -- tag discipline --------------------------------------------------

    def next_tag(self, grid: ProcessorGrid) -> tuple:
        """Deterministic tag shared by all ranks of ``grid``.

        Every rank of ``grid`` executes the same sequence of collective
        operations on it (SPMD discipline), so a per-grid counter yields
        identical tags on all members without communication.

        Allocation is atomic: the bare ``c = get(); put(c + 1)``
        read-modify-write would hand two threads the same tag if a
        context were ever driven concurrently (``dict.setdefault`` plus
        ``next()`` on an ``itertools.count`` never lose an increment),
        so the serving layer cannot silently alias two collectives'
        message streams.
        """
        k = grid.key()
        counter = self._counters.get(k)
        if counter is None:
            counter = self._counters.setdefault(k, itertools.count())
        return ("kali", k, next(counter))

    # -- session plumbing --------------------------------------------------

    def _schedule_cache(self, override=None, op: str = "collective"):
        """Transfer-schedule cache for this context's collectives.

        An explicit ``override`` always wins; a Session-bound context
        uses its Session's cache.  A session-less context with no
        override is the deprecated path: it warns and falls back to the
        process-global default (commsched resolves ``None``), the same
        shim contract as :meth:`doall`.
        """
        if override is not None:
            return override
        if self.session is not None:
            return self.session.cache
        warnings.warn(
            f"KaliCtx.{op} without a Session or explicit cache uses the "
            "deprecated process-global schedule cache; launch via "
            "repro.Session(...).run(...) or pass cache=",
            ReproDeprecationWarning,
            stacklevel=3,
        )
        return None  # commsched falls back to the process-global default

    # -- compiled loops ---------------------------------------------------

    def doall(self, loop, overlap: bool = False, compiled: bool | None = None):
        """Execute a doall loop; yields machine ops (use ``yield from``).

        With ``overlap=True`` the executor charges the loop's interior
        iteration points (whose reads are all locally owned) *before*
        blocking on ghost receives, modeling computation overlapping
        with in-flight communication; the messages themselves are
        byte-identical to the serialized mode.  See
        :func:`repro.compiler.schedule.execute_doall`.

        ``compiled`` overrides this context's executor mode for one
        call: True replays the loop's frozen
        :class:`~repro.compiler.commgen.StepPlan` (the default), False
        runs the interpreted reference executor -- same results, same
        trace, the fast path just skips the per-sweep AST walk.

        The loop's compiled plan (and its frozen TransferSchedules)
        lives in this context's Session plan cache; compile loops ahead
        of time with :func:`repro.compile` to warm it explicitly.  On a
        session-less context this is a deprecated shim over the
        process-global default plan cache.
        """
        from repro.compiler.schedule import execute_doall

        if self.session is None:
            warnings.warn(
                "KaliCtx.doall without a Session uses the deprecated "
                "process-global plan cache; launch via "
                "repro.Session(...).run(...) or repro.compile(...).run()",
                ReproDeprecationWarning,
                stacklevel=2,
            )
        return execute_doall(self, loop, overlap=overlap, compiled=compiled)

    # -- irregular gathers ------------------------------------------------

    def cached_gather(self, grid: ProcessorGrid, array, indices, cache=None):
        """Collective irregular gather with schedule caching.

        First call with a given index pattern runs the full two-round
        inspection; repeats replay the cached schedule with one round of
        coalesced value messages.  ``cache`` defaults to this context's
        Session cache (for a session-less context, the process-wide
        :data:`repro.compiler.commsched.DEFAULT_CACHE`).  Yields machine
        ops (use ``yield from``); evaluates to the gathered values.
        """
        from repro.compiler.commsched import cached_inspector_gather

        return cached_inspector_gather(
            self, grid, array, indices,
            cache=self._schedule_cache(cache, op="cached_gather"),
        )

    # -- redistribution ----------------------------------------------------

    def redistribute(self, array, dist, cache=None, grid=None):
        """Collective owner-to-owner repartition of ``array`` to ``dist``.

        Every rank of ``array.grid`` must call this (SPMD discipline).
        Each rank sends only the intersections of its old block with the
        new owners' blocks -- the full array is never materialized --
        and the repartition schedule is cached (keyed on the layout
        pair, not the comm epoch), so repeated flips between two layouts
        replay without re-deriving the moves.  ``cache`` defaults to
        this context's Session cache (for a session-less context, the
        process-wide :data:`repro.compiler.commsched.DEFAULT_CACHE`).
        Yields machine ops (use ``yield from``).

        ``grid`` additionally moves the array to a *different*
        processor grid (grow or shrink the rank set -- the elastic
        morphing primitive, see :mod:`repro.elastic`); the call is then
        collective over the union of the old and new rank sets, and the
        cached schedule keys on the (from-grid+specs, to-grid+specs)
        pair so morphing back is a replay.

        >>> import numpy as np
        >>> from repro import DistArray, ProcessorGrid, Session
        >>> from repro.machine import Machine
        >>> grid = ProcessorGrid((2,))
        >>> A = DistArray((4,), grid, dist=("block",), name="A")
        >>> A.from_global(np.arange(4.0))
        >>> def prog(ctx):
        ...     yield from ctx.redistribute(A, ("cyclic",))
        >>> trace = Session(Machine(n_procs=2), grid).run(prog)
        >>> A.dist.spec_key()
        (('cyclic',),)
        >>> A.to_global()                      # values survive the relayout
        array([0., 1., 2., 3.])
        >>> sorted(trace.schedule_directions())
        ['repartition']
        """
        from repro.compiler.commsched import cached_repartition

        return cached_repartition(
            self, array, dist,
            cache=self._schedule_cache(cache, op="redistribute"),
            new_grid=grid,
        )

    # -- collectives over grids -------------------------------------------

    def allreduce(self, grid: ProcessorGrid, value: Any, op: Callable = operator.add):
        tag = self.next_tag(grid)
        return collectives.allreduce(self.rank, grid.linear, value, tag=tag, op=op)

    def bcast(self, grid: ProcessorGrid, value: Any, *, root: int):
        tag = self.next_tag(grid)
        return collectives.bcast(self.rank, grid.linear, value, root=root, tag=tag)

    def gather(self, grid: ProcessorGrid, value: Any, *, root: int):
        tag = self.next_tag(grid)
        return collectives.gather(self.rank, grid.linear, value, root=root, tag=tag)


def run_spmd(
    machine: Machine,
    grid: ProcessorGrid,
    routine: Callable,
    *args: Any,
    **kwargs: Any,
) -> Trace:
    """Deprecated launcher: run ``routine`` on every rank of ``grid``.

    This was the launch of the paper's main program before compile and
    run became first-class: it routes through the implicit default
    :class:`~repro.session.Session` (whose caches are the historical
    process-global ones), so its traces are bit-identical to the
    pre-Session behavior.  New code should hold an explicit Session --
    ``Session(machine, grid).run(routine, ...)`` -- or compile a Program
    via :func:`repro.compile`; see ``docs/api.md`` for the migration
    table.
    """
    warnings.warn(
        "run_spmd is deprecated: use repro.Session(machine, grid).run(...) "
        "or repro.compile(...).run() (see docs/api.md)",
        ReproDeprecationWarning,
        stacklevel=2,
    )
    from repro.session import default_session

    # _launch_routine, not run: the legacy signature forwards *all*
    # kwargs to the routine, including ones named machine or grid.
    return default_session()._launch_routine(machine, grid, routine, args, kwargs)
