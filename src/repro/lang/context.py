"""SPMD execution context and runner.

A parallel subroutine (the paper's ``parsub``) is a Python generator
function ``def routine(ctx, ...)`` executed by every rank of a processor
grid; ``yield from`` composes nested parsubs and compiled doall
segments.  :class:`KaliCtx` carries the rank plus per-grid tag counters
so that implicitly generated messages match across ranks, mirroring the
compiler-assigned channel identities of real KF1.
"""

from __future__ import annotations

import itertools
import operator
from typing import Any, Callable

from repro.lang.procs import ProcessorGrid
from repro.machine import collectives
from repro.machine.simulator import Machine
from repro.machine.trace import Trace
from repro.util.errors import ValidationError


#: Per-process launch identities; all ranks of one ``run_spmd`` launch
#: share one id, which scopes collective cache decisions to that run
#: (per-grid tag counters restart every run, so tags alone recur).
_RUN_IDS = itertools.count()


class KaliCtx:
    """Per-rank execution context for SPMD parallel subroutines."""

    def __init__(self, rank: int, grid: ProcessorGrid, run_id: int | None = None):
        if not grid.contains(rank):
            raise ValidationError(f"rank {rank} not in grid {grid.shape}")
        self.rank = rank
        self.grid = grid
        self.run_id = run_id
        self._counters: dict[tuple, int] = {}

    # -- tag discipline --------------------------------------------------

    def next_tag(self, grid: ProcessorGrid) -> tuple:
        """Deterministic tag shared by all ranks of ``grid``.

        Every rank of ``grid`` executes the same sequence of collective
        operations on it (SPMD discipline), so a per-grid counter yields
        identical tags on all members without communication.
        """
        k = grid.key()
        c = self._counters.get(k, 0)
        self._counters[k] = c + 1
        return ("kali", k, c)

    # -- compiled loops ---------------------------------------------------

    def doall(self, loop, overlap: bool = False):
        """Execute a doall loop; yields machine ops (use ``yield from``).

        With ``overlap=True`` the executor charges the loop's interior
        iteration points (whose reads are all locally owned) *before*
        blocking on ghost receives, modeling computation overlapping
        with in-flight communication; the messages themselves are
        byte-identical to the serialized mode.  See
        :func:`repro.compiler.schedule.execute_doall`.
        """
        from repro.compiler.schedule import execute_doall

        return execute_doall(self, loop, overlap=overlap)

    # -- irregular gathers ------------------------------------------------

    def cached_gather(self, grid: ProcessorGrid, array, indices, cache=None):
        """Collective irregular gather with schedule caching.

        First call with a given index pattern runs the full two-round
        inspection; repeats replay the cached schedule with one round of
        coalesced value messages.  ``cache`` defaults to the process-wide
        :data:`repro.compiler.commsched.DEFAULT_CACHE`.  Yields machine
        ops (use ``yield from``); evaluates to the gathered values.
        """
        from repro.compiler.commsched import cached_inspector_gather

        return cached_inspector_gather(self, grid, array, indices, cache=cache)

    # -- redistribution ----------------------------------------------------

    def redistribute(self, array, dist, cache=None):
        """Collective owner-to-owner repartition of ``array`` to ``dist``.

        Every rank of ``array.grid`` must call this (SPMD discipline).
        Each rank sends only the intersections of its old block with the
        new owners' blocks -- the full array is never materialized --
        and the repartition schedule is cached (keyed on the layout
        pair, not the comm epoch), so repeated flips between two layouts
        replay without re-deriving the moves.  ``cache`` defaults to the
        process-wide :data:`repro.compiler.commsched.DEFAULT_CACHE`.
        Yields machine ops (use ``yield from``).

        >>> import numpy as np
        >>> from repro.lang import DistArray, ProcessorGrid, run_spmd
        >>> from repro.machine import Machine
        >>> grid = ProcessorGrid((2,))
        >>> A = DistArray((4,), grid, dist=("block",), name="A")
        >>> A.from_global(np.arange(4.0))
        >>> def prog(ctx):
        ...     yield from ctx.redistribute(A, ("cyclic",))
        >>> trace = run_spmd(Machine(n_procs=2), grid, prog)
        >>> A.dist.spec_key()
        (('cyclic',),)
        >>> A.to_global()                      # values survive the relayout
        array([0., 1., 2., 3.])
        >>> sorted(trace.schedule_directions())
        ['repartition']
        """
        from repro.compiler.commsched import cached_repartition

        return cached_repartition(self, array, dist, cache=cache)

    # -- collectives over grids -------------------------------------------

    def allreduce(self, grid: ProcessorGrid, value: Any, op: Callable = operator.add):
        tag = self.next_tag(grid)
        return collectives.allreduce(self.rank, grid.linear, value, tag=tag, op=op)

    def bcast(self, grid: ProcessorGrid, value: Any, *, root: int):
        tag = self.next_tag(grid)
        return collectives.bcast(self.rank, grid.linear, value, root=root, tag=tag)

    def gather(self, grid: ProcessorGrid, value: Any, *, root: int):
        tag = self.next_tag(grid)
        return collectives.gather(self.rank, grid.linear, value, root=root, tag=tag)


def run_spmd(
    machine: Machine,
    grid: ProcessorGrid,
    routine: Callable,
    *args: Any,
    **kwargs: Any,
) -> Trace:
    """Run ``routine(ctx, *args, **kwargs)`` on every rank of ``grid``.

    This is the launch of the paper's main program: the "real" processor
    array is ``grid`` and the top-level parsub is ``routine``.
    """
    if grid.size > machine.n_procs:
        raise ValidationError(
            f"grid of {grid.size} procs exceeds machine size {machine.n_procs}"
        )
    run_id = next(_RUN_IDS)
    programs = {
        rank: routine(KaliCtx(rank, grid, run_id=run_id), *args, **kwargs)
        for rank in grid.linear
    }
    return machine.run(programs)
