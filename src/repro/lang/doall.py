"""The doall loop IR: range products, on clauses, loop objects.

A ``Doall`` is the paper's

    doall 100 (i, j) = [1, n] * [1, n] on owner(X(i, j))
        X(i, j) = ...
    100 continue

Ranges here are *inclusive* (lo, hi) or (lo, hi, step) pairs, matching
the Fortran listings; they are normalized to half-open form internally.
"""

from __future__ import annotations

from typing import Sequence

from repro.lang.array import BaseDistArray
from repro.lang.expr import AffineExpr, Assign, LoopVar, Ref
from repro.lang.procs import ProcessorGrid
from repro.util.errors import CompileError, ValidationError


class OnClause:
    """Base class of doall ``on`` clauses."""

    def key(self):
        raise NotImplementedError


class Owner(OnClause):
    """``on owner(X(i, j))``: run each invocation where the element lives.

    ``idx`` entries are affine expressions or ``None`` for star-slices,
    e.g. ``Owner(r, (i, None))`` is the paper's ``owner(r(i, *))``.
    """

    def __init__(self, array: BaseDistArray, idx: Sequence):
        self.array = array
        self.idx = tuple(
            None if e is None else AffineExpr.of(e) for e in idx
        )
        if len(self.idx) != array.ndim:
            raise CompileError(
                f"owner() over {array.ndim}-d array needs {array.ndim} subscripts"
            )

    @staticmethod
    def of(ref: Ref) -> "Owner":
        """Build from an existing Ref: ``Owner.of(X[i, j])``."""
        return Owner(ref.array, ref.idx)

    def key(self):
        # uid, not id(): object addresses recycle after GC, and a plan
        # keyed on a dead array's id must never hit for a live one.  No
        # fallback -- a uid-less array must fail loudly, not alias None.
        return (
            "owner",
            self.array.uid,
            getattr(self.array, "comm_epoch", 0),
            tuple(None if e is None else e.key() for e in self.idx),
        )


class OnProc(OnClause):
    """``on procs(ip)``: run invocation on an explicit grid coordinate.

    ``coord_exprs`` gives one affine expression per grid dimension (or
    ``None`` to leave a grid dimension unconstrained, replicating the
    iteration across it, as in ``on procs(ip, *)``).
    """

    def __init__(self, grid: ProcessorGrid, coord_exprs: Sequence):
        self.grid = grid
        self.coord_exprs = tuple(
            None if e is None else AffineExpr.of(e) for e in coord_exprs
        )
        if len(self.coord_exprs) != grid.ndim:
            raise CompileError(
                f"OnProc needs {grid.ndim} coordinate expressions for this grid"
            )

    def key(self):
        return (
            "onproc",
            self.grid.key(),
            tuple(None if e is None else e.key() for e in self.coord_exprs),
        )


class Doall:
    """A parallel loop nest over a product of inclusive strided ranges.

    Parameters
    ----------
    vars:
        Loop variables, outermost first.
    ranges:
        One ``(lo, hi)`` or ``(lo, hi, step)`` *inclusive* range per var.
    on:
        An :class:`Owner` or :class:`OnProc` clause.
    body:
        List of :class:`~repro.lang.expr.Assign` statements.  All rhs
        reads observe pre-loop values (copy-in/copy-out).
    grid:
        Processor grid executing the loop; every rank of this grid must
        execute the loop (SPMD discipline) and it must contain the grids
        of every referenced array.
    """

    def __init__(
        self,
        vars: Sequence[LoopVar],
        ranges: Sequence[tuple],
        on: OnClause,
        body: Sequence[Assign],
        grid: ProcessorGrid,
    ):
        self.vars = tuple(vars)
        if len(self.vars) != len(set(v.name for v in self.vars)):
            raise ValidationError("duplicate loop variable names")
        norm = []
        for r in ranges:
            if len(r) == 2:
                lo, hi = r
                step = 1
            elif len(r) == 3:
                lo, hi, step = r
            else:
                raise ValidationError(f"range {r!r} must be (lo, hi[, step])")
            if step <= 0:
                raise ValidationError(f"range step must be positive, got {step}")
            norm.append((int(lo), int(hi), int(step)))
        if len(norm) != len(self.vars):
            raise ValidationError("one range required per loop variable")
        self.ranges = tuple(norm)
        if not isinstance(on, OnClause):
            raise ValidationError("on must be an Owner or OnProc clause")
        self.on = on
        self.body = list(body)
        if not self.body:
            raise ValidationError("doall body must contain at least one statement")
        for st in self.body:
            if not isinstance(st, Assign):
                raise ValidationError(f"doall body statement {st!r} is not Assign")
        self.grid = grid
        # A Doall is immutable once built (vars/ranges/on/body are fixed;
        # plan caching depends on that), so the referenced-array set and
        # the structural key can be derived once and memoized.
        self._arrays = self._scan_arrays()
        self._key_cache: tuple | None = None
        for arr in self._arrays:
            if not arr.grid.is_subset_of(grid):
                raise CompileError(
                    f"array {arr.name!r} lives on ranks outside the loop grid; "
                    "every owner must execute the doall"
                )

    def _scan_arrays(self) -> list[BaseDistArray]:
        seen: dict[int, BaseDistArray] = {}
        for st in self.body:
            for ref in [st.lhs] + st.rhs.refs():
                seen.setdefault(id(ref.array), ref.array)
        if isinstance(self.on, Owner):
            seen.setdefault(id(self.on.array), self.on.array)
        return list(seen.values())

    def arrays(self) -> list[BaseDistArray]:
        """All distinct arrays referenced by the loop (reads and writes)."""
        return list(self._arrays)

    def key(self):
        """Structural identity for plan caching.

        Includes each referenced array's ``comm_epoch`` (via the Ref and
        Owner keys), so redistributing an array automatically retires the
        plans compiled against its old layout.

        The loop structure is immutable, so the only key component that
        can move between calls is the epoch vector; the full key walk (a
        traversal of every statement's expression tree) runs once per
        epoch state and is replayed from a one-entry memo afterwards --
        the probe on the steady-state replay path costs an epoch scan,
        not a tree walk.
        """
        epochs = tuple(getattr(a, "comm_epoch", 0) for a in self._arrays)
        cached = self._key_cache
        if cached is not None and cached[0] == epochs:
            return cached[1]
        key = (
            tuple(v.name for v in self.vars),
            self.ranges,
            self.on.key(),
            tuple(st.key() for st in self.body),
            self.grid.key(),
        )
        self._key_cache = (epochs, key)
        return key

    def invalidate_plan(self) -> None:
        """Drop this loop's cached analysis/communication schedule."""
        from repro.compiler.schedule import drop_plan

        drop_plan(self)
        self._key_cache = None
