"""Data distribution primitives: block, cyclic, block-cyclic, star.

A per-dimension distribution maps one array extent onto one processor
grid dimension.  ``Star`` (the paper's ``*``) leaves a dimension
undistributed: every processor of the grid stores the full extent.
The number of non-star dimensions must equal the grid's ndim -- the
rule stated in section 2 of the paper.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import DistributionError
from repro.util.indexing import block_bounds, ceil_div


class DimDist:
    """Distribution of a single array dimension over ``p`` processors."""

    #: True when this dimension occupies a processor-grid dimension.
    distributed: bool = True

    def bind(self, extent: int, nprocs: int) -> "BoundDim":
        raise NotImplementedError

    def spec_key(self):
        """Hashable structural identity used in plan caching."""
        raise NotImplementedError


class BoundDim:
    """A DimDist bound to a concrete extent and processor count."""

    extent: int
    nprocs: int
    distributed: bool = True

    def owner(self, index):
        """Owning processor coordinate(s) for global index (vectorized)."""
        raise NotImplementedError

    def local_index(self, index):
        """Local storage index for global index (vectorized)."""
        raise NotImplementedError

    def local_size(self, coord: int) -> int:
        """Number of elements stored by processor coordinate ``coord``."""
        raise NotImplementedError

    def owned_indices(self, coord: int) -> np.ndarray:
        """Sorted global indices owned by ``coord``."""
        raise NotImplementedError

    def owned_range(self, coord: int) -> tuple[int, int]:
        """Half-open contiguous owned range; raises for non-contiguous."""
        raise DistributionError(
            f"{type(self).__name__} does not own contiguous ranges"
        )


# ----------------------------------------------------------------------
# Block
# ----------------------------------------------------------------------


class Block(DimDist):
    """Contiguous balanced blocks: the paper's ``block`` pattern."""

    def bind(self, extent: int, nprocs: int) -> "BoundBlock":
        return BoundBlock(extent, nprocs)

    def spec_key(self):
        return ("block",)

    def __repr__(self) -> str:  # pragma: no cover
        return "Block()"


class BoundBlock(BoundDim):
    def __init__(self, extent: int, nprocs: int):
        if extent < 0:
            raise DistributionError(f"negative extent {extent}")
        if nprocs <= 0:
            raise DistributionError(f"nonpositive nprocs {nprocs}")
        self.extent = extent
        self.nprocs = nprocs
        self._bounds = [block_bounds(extent, nprocs, c) for c in range(nprocs)]
        # Precomputed owner lookup table (extent is modest in simulation).
        self._owner = np.empty(max(extent, 1), dtype=np.int64)
        for c, (lo, hi) in enumerate(self._bounds):
            self._owner[lo:hi] = c
        self._lo = np.array([b[0] for b in self._bounds], dtype=np.int64)

    def owner(self, index):
        return self._owner[index]

    def local_index(self, index):
        index = np.asarray(index)
        return index - self._lo[self._owner[index]]

    def local_size(self, coord: int) -> int:
        lo, hi = self._bounds[coord]
        return hi - lo

    def owned_indices(self, coord: int) -> np.ndarray:
        lo, hi = self._bounds[coord]
        return np.arange(lo, hi, dtype=np.int64)

    def owned_range(self, coord: int) -> tuple[int, int]:
        return self._bounds[coord]


# ----------------------------------------------------------------------
# Cyclic
# ----------------------------------------------------------------------


class Cyclic(DimDist):
    """Round-robin distribution: the paper's ``cyclic`` pattern."""

    def bind(self, extent: int, nprocs: int) -> "BoundCyclic":
        return BoundCyclic(extent, nprocs)

    def spec_key(self):
        return ("cyclic",)

    def __repr__(self) -> str:  # pragma: no cover
        return "Cyclic()"


class BoundCyclic(BoundDim):
    def __init__(self, extent: int, nprocs: int):
        if extent < 0:
            raise DistributionError(f"negative extent {extent}")
        if nprocs <= 0:
            raise DistributionError(f"nonpositive nprocs {nprocs}")
        self.extent = extent
        self.nprocs = nprocs

    def owner(self, index):
        return np.asarray(index) % self.nprocs

    def local_index(self, index):
        return np.asarray(index) // self.nprocs

    def local_size(self, coord: int) -> int:
        if coord >= self.extent:
            return 0
        return ceil_div(self.extent - coord, self.nprocs)

    def owned_indices(self, coord: int) -> np.ndarray:
        return np.arange(coord, self.extent, self.nprocs, dtype=np.int64)


# ----------------------------------------------------------------------
# Block-cyclic
# ----------------------------------------------------------------------


class BlockCyclic(DimDist):
    """Blocks of fixed size dealt round-robin (generalizes both patterns)."""

    def __init__(self, block: int):
        if block <= 0:
            raise DistributionError(f"block size must be positive, got {block}")
        self.block = block

    def bind(self, extent: int, nprocs: int) -> "BoundBlockCyclic":
        return BoundBlockCyclic(extent, nprocs, self.block)

    def spec_key(self):
        return ("blockcyclic", self.block)

    def __repr__(self) -> str:  # pragma: no cover
        return f"BlockCyclic({self.block})"


class BoundBlockCyclic(BoundDim):
    def __init__(self, extent: int, nprocs: int, block: int):
        self.extent = extent
        self.nprocs = nprocs
        self.block = block

    def owner(self, index):
        return (np.asarray(index) // self.block) % self.nprocs

    def local_index(self, index):
        index = np.asarray(index)
        blk = index // self.block
        return (blk // self.nprocs) * self.block + index % self.block

    def local_size(self, coord: int) -> int:
        full, rem = divmod(self.extent, self.block)
        # count of blocks owned by coord among blocks 0..full-1, plus remainder
        nblocks = full // self.nprocs + (1 if full % self.nprocs > coord else 0)
        size = nblocks * self.block
        if rem and full % self.nprocs == coord:
            size += rem
        return size

    def owned_indices(self, coord: int) -> np.ndarray:
        idx = np.arange(self.extent, dtype=np.int64)
        return idx[self.owner(idx) == coord]


# ----------------------------------------------------------------------
# Star (undistributed)
# ----------------------------------------------------------------------


class Star(DimDist):
    """Undistributed dimension (the paper's ``*``): replicated extent."""

    distributed = False

    def bind(self, extent: int, nprocs: int) -> "BoundStar":
        return BoundStar(extent)

    def spec_key(self):
        return ("*",)

    def __repr__(self) -> str:  # pragma: no cover
        return "Star()"


class BoundStar(BoundDim):
    distributed = False

    def __init__(self, extent: int):
        self.extent = extent
        self.nprocs = 1

    def owner(self, index):
        return np.zeros_like(np.asarray(index))

    def local_index(self, index):
        return np.asarray(index)

    def local_size(self, coord: int = 0) -> int:
        return self.extent

    def owned_indices(self, coord: int = 0) -> np.ndarray:
        return np.arange(self.extent, dtype=np.int64)

    def owned_range(self, coord: int = 0) -> tuple[int, int]:
        return (0, self.extent)


# ----------------------------------------------------------------------
# Whole-array distribution
# ----------------------------------------------------------------------

_NAMES = {
    "block": Block,
    "cyclic": Cyclic,
    "*": Star,
    "star": Star,
}


def _as_dimdist(spec) -> DimDist:
    if isinstance(spec, DimDist):
        return spec
    if isinstance(spec, str):
        try:
            return _NAMES[spec.lower()]()
        except KeyError:
            raise DistributionError(f"unknown distribution name {spec!r}") from None
    raise DistributionError(f"bad distribution spec {spec!r}")


class Distribution:
    """Per-dimension distribution of an array over a processor grid.

    ``dims[k]`` describes array dimension ``k``.  The i-th *non-star*
    dimension maps to grid dimension i; the paper requires their count to
    equal the grid's ndim.  An all-star distribution replicates the array
    on every grid processor.
    """

    def __init__(self, dims, shape: tuple[int, ...], grid_shape: tuple[int, ...]):
        dims = tuple(_as_dimdist(d) for d in dims)
        if len(dims) != len(shape):
            raise DistributionError(
                f"{len(dims)} distribution specs for array of ndim {len(shape)}"
            )
        n_distributed = sum(1 for d in dims if d.distributed)
        if n_distributed > 0 and n_distributed != len(grid_shape):
            raise DistributionError(
                f"{n_distributed} distributed dims must match grid ndim "
                f"{len(grid_shape)} (paper section 2 rule)"
            )
        self.specs = dims
        self.shape = tuple(shape)
        self.grid_shape = tuple(grid_shape)
        self.replicated = n_distributed == 0
        self.bound: list[BoundDim] = []
        self.grid_dim_of: list[int | None] = []
        g = 0
        for d, n in zip(dims, shape):
            if d.distributed:
                self.bound.append(d.bind(n, grid_shape[g]))
                self.grid_dim_of.append(g)
                g += 1
            else:
                self.bound.append(d.bind(n, 1))
                self.grid_dim_of.append(None)

    # ------------------------------------------------------------------

    @property
    def ndim(self) -> int:
        return len(self.bound)

    def dim(self, k: int) -> BoundDim:
        return self.bound[k]

    def owner_coords(self, index: tuple) -> tuple:
        """Grid coordinates owning a global index tuple (distributed dims)."""
        coords = [0] * len(self.grid_shape)
        for k, bd in enumerate(self.bound):
            g = self.grid_dim_of[k]
            if g is not None:
                coords[g] = int(bd.owner(index[k]))
        return tuple(coords)

    def local_shape(self, grid_coords: tuple) -> tuple[int, ...]:
        out = []
        for k, bd in enumerate(self.bound):
            g = self.grid_dim_of[k]
            out.append(bd.local_size(grid_coords[g] if g is not None else 0))
        return tuple(out)

    def owned_lists(self, grid_coords: tuple) -> list[np.ndarray]:
        """Per-dimension sorted global indices stored at ``grid_coords``.

        The one shared answer to "which box does this processor hold" --
        used by global assembly/scatter, repartition move derivation,
        and benchmarks alike, so ownership semantics live in one place.
        """
        return [
            bd.owned_indices(grid_coords[g] if g is not None else 0)
            for bd, g in zip(self.bound, self.grid_dim_of)
        ]

    def local_index(self, index: tuple) -> tuple:
        return tuple(int(bd.local_index(index[k])) for k, bd in enumerate(self.bound))

    def spec_key(self):
        return tuple(d.spec_key() for d in self.specs)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Distribution({', '.join(repr(s) for s in self.specs)})"
