"""Processor arrays (the paper's ``processors procs(p, p)`` declaration).

A :class:`ProcessorGrid` is an n-dimensional arrangement of machine ranks.
Only one "real" grid exists per program (the paper's real-estate agent);
slices of it are passed to parallel subroutines, e.g. ``procs[:, jp]`` is
the KF1 ``procs(*, jp)`` column passed to a plane solver.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ValidationError


class ProcessorGrid:
    """An n-dimensional array of machine ranks.

    Parameters
    ----------
    shape:
        Grid shape; the grid holds ``prod(shape)`` ranks.
    ranks:
        Optional explicit rank array (used internally by slicing).  By
        default ranks ``0 .. prod(shape)-1`` are laid out in C order.
    """

    def __init__(self, shape: tuple[int, ...] | int, ranks: np.ndarray | None = None):
        if isinstance(shape, int):
            shape = (shape,)
        shape = tuple(int(s) for s in shape)
        if any(s <= 0 for s in shape):
            raise ValidationError(f"grid shape must be positive, got {shape}")
        if ranks is None:
            ranks = np.arange(int(np.prod(shape)), dtype=np.int64).reshape(shape)
        else:
            ranks = np.asarray(ranks, dtype=np.int64)
            if ranks.shape != shape:
                raise ValidationError(
                    f"ranks shape {ranks.shape} does not match grid shape {shape}"
                )
            flat = ranks.reshape(-1)
            if len(np.unique(flat)) != flat.size:
                raise ValidationError("grid contains duplicate ranks")
        self.shape = shape
        self.ranks = ranks
        self.ranks.setflags(write=False)

    # ------------------------------------------------------------------

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        return int(np.prod(self.shape))

    @property
    def linear(self) -> list[int]:
        """All machine ranks of this grid in C order."""
        return [int(r) for r in self.ranks.reshape(-1)]

    def rank_at(self, coords: tuple[int, ...]) -> int:
        """Machine rank at grid coordinates."""
        if len(coords) != self.ndim:
            raise ValidationError(
                f"expected {self.ndim} coords, got {len(coords)}"
            )
        for c, s in zip(coords, self.shape):
            if not 0 <= c < s:
                raise ValidationError(f"grid coords {coords} outside shape {self.shape}")
        return int(self.ranks[tuple(coords)])

    def coords_of(self, rank: int) -> tuple[int, ...]:
        """Grid coordinates of a machine rank (must belong to the grid)."""
        pos = np.argwhere(self.ranks == rank)
        if len(pos) == 0:
            raise ValidationError(f"rank {rank} not in grid {self.shape}")
        return tuple(int(x) for x in pos[0])

    def contains(self, rank: int) -> bool:
        return bool(np.any(self.ranks == rank))

    # ------------------------------------------------------------------
    # Slicing: procs[:, jp] etc.
    # ------------------------------------------------------------------

    def __getitem__(self, key) -> "ProcessorGrid":
        """Slice the grid; integer indices drop dimensions (KF1 ``procs(*, jp)``).

        The result is always a ProcessorGrid; a fully indexed grid becomes a
        0-d grid is not allowed -- at least one dimension must remain, so a
        single processor is a shape-(1,) grid.
        """
        if not isinstance(key, tuple):
            key = (key,)
        if len(key) > self.ndim:
            raise ValidationError(f"too many indices for grid of ndim {self.ndim}")
        sub = self.ranks[key]
        if sub.ndim == 0:
            sub = sub.reshape(1)
        return ProcessorGrid(sub.shape, ranks=np.ascontiguousarray(sub))

    def row(self, *coords_prefix: int) -> "ProcessorGrid":
        """Convenience: fix leading dims, keep the rest."""
        return self[tuple(coords_prefix)]

    # ------------------------------------------------------------------

    def key(self) -> tuple[int, ...]:
        """Hashable identity: the tuple of member ranks (used for tags)."""
        return tuple(self.linear)

    def __eq__(self, other) -> bool:
        return isinstance(other, ProcessorGrid) and (
            self.shape == other.shape and np.array_equal(self.ranks, other.ranks)
        )

    def __hash__(self) -> int:
        return hash((self.shape, self.key()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessorGrid(shape={self.shape}, ranks={self.linear})"

    def is_subset_of(self, other: "ProcessorGrid") -> bool:
        return set(self.linear) <= set(other.linear)

    def union(self, other: "ProcessorGrid") -> "ProcessorGrid":
        """Smallest grid containing both rank sets (1-D, sorted ranks).

        The launch grid of an inter-grid collective: a repartition
        between two grids needs every rank of either to participate, so
        the union is what the morphing machinery runs tags and barriers
        over.  When the rank sets are equal the receiver is returned
        as-is (same key, same tag counters).

        >>> ProcessorGrid((2, 2)).union(ProcessorGrid((2,))).shape
        (4,)
        >>> ProcessorGrid((2,)).union(ProcessorGrid((2,))).shape
        (2,)
        """
        mine, theirs = set(self.linear), set(other.linear)
        if mine == theirs:
            return self
        merged = sorted(mine | theirs)
        return ProcessorGrid((len(merged),), ranks=np.asarray(merged, dtype=np.int64))
