"""Distributed arrays and their sections.

A :class:`DistArray` is the KF1 ``real X(0:n, 0:n) dist (block, block)``
declaration.  Storage is one local numpy block per processor of the
owning grid.  Subscripting with loop variables builds a
:class:`~repro.lang.expr.Ref` AST node; subscripting with slices/ints
builds a :class:`Section` (the paper's ``u(*, *, k)`` array slice passed
to a parallel subroutine) whose local data are numpy *views* into the
parent's blocks.
"""

from __future__ import annotations

import itertools
from typing import Any

import numpy as np

from repro.lang.dist import BoundDim, Distribution
from repro.lang.expr import AffineExpr, LoopVar, Ref
from repro.lang.procs import ProcessorGrid
from repro.util.errors import ValidationError


def _is_index_expr(x) -> bool:
    return isinstance(x, (LoopVar, AffineExpr))


#: Process-wide array identities for communication-schedule cache keys.
_UIDS = itertools.count()


class BaseDistArray:
    """Interface shared by :class:`DistArray` and :class:`Section`.

    The compiler only uses this protocol: shape/dtype, the owning grid,
    per-dimension bound distributions, and per-rank local views.  Every
    array additionally carries two communication-schedule cache hooks: a
    process-unique ``uid`` and a ``comm_epoch`` that is bumped whenever
    the data layout changes (see :meth:`invalidate_schedules`), which
    orphans every cached schedule and loop plan built against the old
    layout.
    """

    name: str
    shape: tuple[int, ...]
    dtype: Any
    grid: ProcessorGrid

    @property
    def ndim(self) -> int:
        return len(self.shape)

    # -- communication-schedule cache hooks -----------------------------

    @property
    def comm_epoch(self) -> int:
        """Layout generation: schedules keyed on an older epoch are stale."""
        return getattr(self, "_comm_epoch", 0)

    def invalidate_schedules(self) -> None:
        """Declare every communication schedule for this array stale.

        Called automatically on redistribution; call it manually after
        any out-of-band change to the array's layout.  Cached gather
        schedules and compiled doall plans key on ``comm_epoch``, so
        bumping it makes them unreachable (they are rebuilt on next
        use); the orphaned doall plans and default-cache gather
        schedules are purged eagerly so they do not accumulate across
        repeated redistributions.  User-owned
        :class:`~repro.compiler.commsched.ScheduleCache` instances
        should be purged explicitly via ``cache.invalidate_array(arr)``.
        """
        self._comm_epoch = self.comm_epoch + 1
        from repro.compiler.commsched import DEFAULT_CACHE
        from repro.compiler.schedule import drop_plans_for_array

        drop_plans_for_array(self)
        DEFAULT_CACHE.invalidate_array(self)

    def dim(self, k: int) -> BoundDim:
        """Bound distribution of array dimension ``k``."""
        raise NotImplementedError

    def grid_dim_of(self, k: int) -> int | None:
        """Grid dimension fed by array dim ``k`` (None for star dims)."""
        raise NotImplementedError

    def local(self, rank: int) -> np.ndarray:
        """This rank's local block (a numpy array or view)."""
        raise NotImplementedError

    @property
    def replicated(self) -> bool:
        return all(self.grid_dim_of(k) is None for k in range(self.ndim))

    # -- indexing ------------------------------------------------------

    def __getitem__(self, key):
        if not isinstance(key, tuple):
            key = (key,)
        if len(key) != self.ndim:
            raise ValidationError(
                f"{self.ndim}-d array indexed with {len(key)} subscripts"
            )
        if any(_is_index_expr(k) for k in key):
            if not all(_is_index_expr(k) or isinstance(k, (int, np.integer)) for k in key):
                raise ValidationError(
                    "cannot mix loop-variable subscripts with slices"
                )
            return Ref(self, key)
        return Section(self, key)

    # -- whole-array helpers (testing / setup) --------------------------

    def owner_rank(self, index: tuple) -> int:
        """Machine rank owning a global element (first owner if replicated)."""
        coords = [0] * self.grid.ndim
        for k in range(self.ndim):
            g = self.grid_dim_of(k)
            if g is not None:
                coords[g] = int(self.dim(k).owner(index[k]))
        return self.grid.rank_at(tuple(coords))

    def owner_ranks_vec(self, idx_arrays: tuple) -> np.ndarray:
        """Vectorized owner ranks for broadcastable index arrays."""
        coords = [np.zeros(1, dtype=np.int64)] * self.grid.ndim
        for k in range(self.ndim):
            g = self.grid_dim_of(k)
            if g is not None:
                coords[g] = self.dim(k).owner(idx_arrays[k])
        shape = np.broadcast_shapes(*(np.shape(c) for c in coords))
        out = self.grid.ranks[tuple(np.broadcast_to(c, shape) for c in coords)]
        return out

    def local_index(self, index: tuple) -> tuple:
        return tuple(int(self.dim(k).local_index(index[k])) for k in range(self.ndim))

    def get_global(self, index: tuple):
        """Read one element by global index (test helper)."""
        rank = self.owner_rank(index)
        return self.local(rank)[self.local_index(index)]

    def set_global(self, index: tuple, value) -> None:
        """Write one element by global index on every owner (test helper)."""
        for rank in self.owner_ranks_of(index):
            self.local(rank)[self.local_index(index)] = value

    def owner_ranks_of(self, index: tuple) -> list[int]:
        """All ranks storing a global element (several when replicated dims)."""
        free = [g for g in range(self.grid.ndim)]
        coords: list[list[int]] = [[]] * self.grid.ndim
        fixed = {}
        for k in range(self.ndim):
            g = self.grid_dim_of(k)
            if g is not None:
                fixed[g] = int(self.dim(k).owner(index[k]))
        ranks = []
        grid_shape = self.grid.shape
        def rec(g, acc):
            if g == self.grid.ndim:
                ranks.append(self.grid.rank_at(tuple(acc)))
                return
            if g in fixed:
                rec(g + 1, acc + [fixed[g]])
            else:
                for c in range(grid_shape[g]):
                    rec(g + 1, acc + [c])
        rec(0, [])
        return ranks

    def owned_lists(self, rank: int) -> list[np.ndarray]:
        """Per-dimension sorted global indices stored by ``rank``.

        Protocol-level fallback for Sections, whose dims/grid mapping go
        through ``dim()``/``grid_dim_of()`` indirection; DistArray
        overrides this to delegate to its Distribution, the one place
        ownership semantics live.
        """
        coords = self.grid.coords_of(rank)
        out = []
        for k in range(self.ndim):
            g = self.grid_dim_of(k)
            out.append(self.dim(k).owned_indices(coords[g] if g is not None else 0))
        return out

    def to_global(self) -> np.ndarray:
        """Assemble the full global array (test/benchmark helper)."""
        out = np.zeros(self.shape, dtype=self.dtype)
        for rank in self.grid.linear:
            out[np.ix_(*self.owned_lists(rank))] = self.local(rank)
        return out

    def from_global(self, arr: np.ndarray) -> None:
        """Scatter a full global array into the local blocks."""
        arr = np.asarray(arr, dtype=self.dtype)
        if arr.shape != self.shape:
            raise ValidationError(f"shape {arr.shape} != array shape {self.shape}")
        for rank in self.grid.linear:
            self.local(rank)[...] = arr[np.ix_(*self.owned_lists(rank))]


class DistArray(BaseDistArray):
    """A distributed array: ``DistArray((n, n), grid, dist=("block", "block"))``.

    Parameters
    ----------
    shape:
        Global shape.
    grid:
        Owning processor grid (or a slice of the real grid).
    dist:
        Per-dimension specs: ``"block"``, ``"cyclic"``, ``"*"`` or DimDist
        instances.  Defaults to all-``"*"`` (replicated), matching the
        paper's rule for arrays without a distribution clause.
    """

    def __init__(
        self,
        shape: tuple[int, ...] | int,
        grid: ProcessorGrid,
        dist=None,
        dtype=np.float64,
        name: str = "A",
    ):
        if isinstance(shape, int):
            shape = (shape,)
        self.shape = tuple(int(s) for s in shape)
        if any(s < 0 for s in self.shape):
            raise ValidationError(f"negative extent in shape {self.shape}")
        self.grid = grid
        self.dtype = np.dtype(dtype)
        self.name = name
        if dist is None:
            dist = ("*",) * len(self.shape)
        self.uid = next(_UIDS)
        self._comm_epoch = 0
        self.dist = Distribution(dist, self.shape, grid.shape)
        self._blocks: dict[int, np.ndarray] = {}
        for rank in grid.linear:
            coords = grid.coords_of(rank)
            self._blocks[rank] = np.zeros(
                self.dist.local_shape(coords), dtype=self.dtype
            )

    def redistribute(self, dist, grid: ProcessorGrid | None = None) -> None:
        """Re-lay the array out with a new distribution, preserving values.

        The paper's arrays are statically distributed, but schedule
        caching makes layout a cached artifact, so redistribution must be
        an explicit, invalidating operation: local blocks are rebuilt for
        the new distribution and :meth:`invalidate_schedules` bumps the
        comm epoch so every cached gather schedule and doall plan keyed
        on the old layout is rebuilt on next use.

        ``grid`` moves the array to a *different* processor grid in the
        same step (the elastic grow/shrink primitive): the new blocks
        live on ``grid``'s ranks, assembled from the old grid's blocks.

        Data movement is owner-to-owner: each new block is assembled
        from the intersections of the old blocks with it (the same
        per-dimension box intersections the repartition TransferSchedule
        compiles), never by materializing the global array.  This is the
        host-side path for use outside SPMD programs; inside a node
        program use ``ctx.redistribute(array, dist)``, which moves the
        same intersections as simulated messages and caches the
        schedule for replay.
        """
        from repro.compiler.commsched import repartition_pieces

        new_grid = grid if grid is not None else self.grid
        new_dist = Distribution(dist, self.shape, new_grid.shape)
        new_blocks = {
            rank: np.zeros(
                new_dist.local_shape(new_grid.coords_of(rank)), dtype=self.dtype
            )
            for rank in new_grid.linear
        }
        pieces = repartition_pieces(self, new_dist, new_grid=new_grid)
        for src, dst, src_locs, dst_locs in pieces:
            new_blocks[dst][dst_locs] = self._blocks[src][src_locs]
        self.grid = new_grid
        self.dist = new_dist
        self._blocks = new_blocks
        self.invalidate_schedules()

    # -- collective repartition staging protocol ------------------------
    #
    # ``execute_repartition`` runs once per rank inside the simulator;
    # the array object is shared by every simulated rank, so the layout
    # swap must happen exactly once, after every rank has finished
    # reading its old block.  Each rank stages its new-layout block here
    # and the first rank resumed after the commit barrier installs them.
    # Staging is keyed by a per-collective token (run id + call tag):
    # ranks of one repartition can race past its commit barrier into the
    # *next* repartition before slower ranks run their (no-op) commit of
    # the first, so blocks from consecutive collectives must never land
    # in the same staging dict.

    def _stage_repartition(self, rank: int, block: np.ndarray, token) -> None:
        staging = getattr(self, "_staged_blocks", None)
        if staging is None:
            staging = self._staged_blocks = {}
        staging.setdefault(token, {})[rank] = block

    def _commit_repartition(
        self, new_dist: Distribution, token,
        new_grid: ProcessorGrid | None = None,
    ) -> None:
        staging = getattr(self, "_staged_blocks", None)
        staged = staging.pop(token, None) if staging is not None else None
        if staged is None:
            return  # an earlier-resumed rank already committed this call
        grid = new_grid if new_grid is not None else self.grid
        if len(staged) != grid.size:
            raise ValidationError(
                f"repartition of {self.name!r} committed with "
                f"{len(staged)}/{grid.size} ranks staged; every rank "
                "of the destination grid must run the collective repartition"
            )
        self.grid = grid
        self.dist = new_dist
        self._blocks = staged
        self.invalidate_schedules()

    def dim(self, k: int) -> BoundDim:
        return self.dist.dim(k)

    def grid_dim_of(self, k: int) -> int | None:
        return self.dist.grid_dim_of[k]

    def owned_lists(self, rank: int) -> list[np.ndarray]:
        return self.dist.owned_lists(self.grid.coords_of(rank))

    def local(self, rank: int) -> np.ndarray:
        try:
            return self._blocks[rank]
        except KeyError:
            raise ValidationError(
                f"rank {rank} does not own a block of array {self.name!r}"
            ) from None

    def fill(self, value: float) -> None:
        for b in self._blocks.values():
            b.fill(value)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"DistArray({self.name!r}, shape={self.shape}, "
            f"dist={self.dist!r}, grid={self.grid.shape})"
        )


class Section(BaseDistArray):
    """A slice of a DistArray: fixed dims drop out, slice dims remain.

    Only full slices (``:``) are supported for kept dimensions -- exactly
    the paper's ``u(*, *, k)`` usage.  Fixing a distributed dimension
    restricts the owning grid to the matching hyperplane, which is how a
    plane solve inherits a lower-dimensional processor array.
    """

    def __init__(self, base: BaseDistArray, key: tuple):
        if len(key) != base.ndim:
            raise ValidationError("section key must cover every dimension")
        self.base = base
        self.uid = next(_UIDS)
        # Snapshot of the base layout this section was sliced from: the
        # grid restriction and dim mapping below are derived from it, so
        # the section must refuse to operate if the base is re-laid out.
        self._base_dist = getattr(base, "dist", None)
        self.name = f"{base.name}[section]"
        kept: list[int] = []
        fixed: dict[int, int] = {}
        for k, item in enumerate(key):
            if isinstance(item, slice):
                if item != slice(None):
                    raise ValidationError(
                        "only full slices ':' are supported in sections"
                    )
                kept.append(k)
            elif isinstance(item, (int, np.integer)):
                idx = int(item)
                if not 0 <= idx < base.shape[k]:
                    raise ValidationError(
                        f"index {idx} out of bounds for dim {k} of {base.shape}"
                    )
                fixed[k] = idx
            else:
                raise ValidationError(f"bad section subscript {item!r}")
        self.kept = kept
        self.fixed = fixed
        self.shape = tuple(base.shape[k] for k in kept)
        self.dtype = base.dtype

        # Grid restriction: fixing a distributed dim pins that grid dim.
        grid_key: list = [slice(None)] * base.grid.ndim
        for k, idx in fixed.items():
            g = base.grid_dim_of(k)
            if g is not None:
                grid_key[g] = int(base.dim(k).owner(idx))
        self.grid = base.grid[tuple(grid_key)]

        # Map kept array dims to the restricted grid's dims, in order.
        remaining_grid_dims = [
            g for g in range(base.grid.ndim)
            if not isinstance(grid_key[g], int)
        ]
        self._grid_dim_map: list[int | None] = []
        for k in kept:
            g = base.grid_dim_of(k)
            if g is None:
                self._grid_dim_map.append(None)
            else:
                self._grid_dim_map.append(remaining_grid_dims.index(g))

    @property
    def comm_epoch(self) -> int:
        """Sections share their base array's layout generation."""
        return self.base.comm_epoch

    def invalidate_schedules(self) -> None:
        self.base.invalidate_schedules()

    def _check_fresh(self) -> None:
        """Refuse to operate on a section of a redistributed base.

        The grid restriction and dim mapping were computed from the
        layout at slicing time; using them against a new layout would
        silently read the wrong ranks.  Re-slice the base instead.
        """
        base = self.base
        if isinstance(base, Section):
            base._check_fresh()
        elif getattr(base, "dist", self._base_dist) is not self._base_dist:
            raise ValidationError(
                f"stale section of {base.name!r}: the base array was "
                "redistributed after this section was created; take a "
                "fresh section of the new layout"
            )

    def dim(self, k: int) -> BoundDim:
        self._check_fresh()
        return self.base.dim(self.kept[k])

    def grid_dim_of(self, k: int) -> int | None:
        self._check_fresh()
        return self._grid_dim_map[k]

    def local(self, rank: int) -> np.ndarray:
        self._check_fresh()
        block = self.base.local(rank)
        sel: list = []
        for k in range(self.base.ndim):
            if k in self.fixed:
                sel.append(int(self.base.dim(k).local_index(self.fixed[k])))
            else:
                sel.append(slice(None))
        return block[tuple(sel)]

    def __repr__(self) -> str:  # pragma: no cover
        return f"Section({self.base!r}, fixed={self.fixed})"
