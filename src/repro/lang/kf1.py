"""A front end for a small KF1 (Kali Fortran 1) subset.

The paper stresses that "most numerical programmers are more comfortable
with a Fortran-like syntax" -- the constructs are presented as KF1
listings, not as an API.  This module parses the subset of KF1 used by
the listings into the library's IR so that programs can be written
nearly verbatim:

    processors procs(2, 2)
    real X(0:16, 0:16) dist (block, block)
    real f(0:16, 0:16) dist (block, block)

    doall (i, j) = [1, 15] * [1, 15] on owner(X(i, j))
      X(i, j) = 0.25*(X(i+1, j) + X(i-1, j) + X(i, j+1) + X(i, j-1)) - f(i, j)
    end doall

Supported statements:

* ``processors name(e, ...)`` -- the processor array (one per program);
* ``real name(lo:hi, ...) [dist (spec, ...)]`` -- array declarations
  with ``block`` / ``cyclic`` / ``*`` distribution clauses (omitted
  clause = replicated, as in the paper);
* ``doall (v, ...) = [lo, hi[, step]] * ... on <on-clause>`` ...
  ``end doall`` -- with ``owner(A(e, *, ...))`` or ``procs(e, ...)``
  on-clauses and one or more assignment statements in the body.

Ranges are inclusive, Fortran-style.  Expressions support + - * /,
parentheses, numeric literals, and array references with affine
subscripts (including ``k/2``).  ``parse_program`` returns a
:class:`KF1Program` with the grid, the arrays, and the loops in order.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.lang.array import DistArray
from repro.lang.doall import Doall, OnProc, Owner
from repro.lang.expr import AffineExpr, Assign, Expr, LoopVar, Ref, as_expr
from repro.lang.procs import ProcessorGrid
from repro.util.errors import CompileError


@dataclass
class KF1Program:
    """Result of parsing: grid, named arrays, loops in program order.

    A parsed listing is directly executable: :meth:`compile` lowers it
    into a :class:`~repro.session.Program` whose communication
    schedules are frozen immediately, and whose ``run(**bindings)``
    loads named arrays from global numpy values and launches the loops
    in program order -- no hand-wiring of contexts or launchers.
    """

    grid: ProcessorGrid
    arrays: dict[str, DistArray] = field(default_factory=dict)
    loops: list[Doall] = field(default_factory=list)

    def compile(self, session=None, *, machine=None):
        """Lower this listing into an executable Program.

        Equivalent to ``repro.compile(self, session=session,
        machine=machine)``; see :func:`repro.session.compile`.
        """
        from repro.session import compile as compile_program

        return compile_program(self, session=session, machine=machine)


# ----------------------------------------------------------------------
# Tokenizer for expressions
# ----------------------------------------------------------------------

_TOKEN = re.compile(
    r"\s*(?:(?P<num>\d+\.\d*|\.\d+|\d+)|(?P<name>[A-Za-z_]\w*)"
    r"|(?P<op>[()+\-*/,:])|(?P<star>\*))"
)


def _tokenize(text: str) -> list[str]:
    out = []
    pos = 0
    while pos < len(text):
        m = _TOKEN.match(text, pos)
        if m is None or m.end() == pos:
            rest = text[pos:].strip()
            if not rest:
                break
            raise CompileError(f"KF1: cannot tokenize {rest!r}")
        out.append(m.group().strip())
        pos = m.end()
    return [t for t in out if t]


class _ExprParser:
    """Recursive-descent parser for KF1 body/subscript expressions."""

    def __init__(self, tokens: list[str], arrays: dict[str, DistArray],
                 vars: dict[str, LoopVar]):
        self.toks = tokens
        self.pos = 0
        self.arrays = arrays
        self.vars = vars

    def peek(self) -> str | None:
        return self.toks[self.pos] if self.pos < len(self.toks) else None

    def take(self, expect: str | None = None) -> str:
        tok = self.peek()
        if tok is None:
            raise CompileError("KF1: unexpected end of expression")
        if expect is not None and tok != expect:
            raise CompileError(f"KF1: expected {expect!r}, found {tok!r}")
        self.pos += 1
        return tok

    # expression := term (('+'|'-') term)*
    def expr(self):
        node = self.term()
        while self.peek() in ("+", "-"):
            op = self.take()
            rhs = self.term()
            node = _combine(op, node, rhs)
        return node

    # term := factor (('*'|'/') factor)*
    def term(self):
        node = self.factor()
        while self.peek() in ("*", "/"):
            op = self.take()
            rhs = self.factor()
            node = _combine(op, node, rhs)
        return node

    # factor := num | name | name '(' args ')' | '(' expr ')' | '-' factor
    def factor(self):
        tok = self.peek()
        if tok == "(":
            self.take()
            node = self.expr()
            self.take(")")
            return node
        if tok == "-":
            self.take()
            return _combine("-", 0, self.factor())
        if tok == "+":
            self.take()
            return self.factor()
        tok = self.take()
        if re.fullmatch(r"\d+\.\d*|\.\d+|\d+", tok):
            return float(tok) if ("." in tok) else int(tok)
        if not re.fullmatch(r"[A-Za-z_]\w*", tok):
            raise CompileError(f"KF1: unexpected token {tok!r}")
        if self.peek() == "(":
            # array reference
            if tok not in self.arrays:
                raise CompileError(f"KF1: undeclared array {tok!r}")
            self.take("(")
            idx = [self.subscript()]
            while self.peek() == ",":
                self.take(",")
                idx.append(self.subscript())
            self.take(")")
            return Ref(self.arrays[tok], tuple(idx))
        # scalar name: loop variable
        if tok in self.vars:
            return self.vars[tok]
        raise CompileError(f"KF1: unknown name {tok!r}")

    def subscript(self):
        node = self.expr()
        if isinstance(node, (Expr,)):
            raise CompileError("KF1: array subscripts must be affine")
        return AffineExpr.of(node) if not isinstance(node, AffineExpr) else node


def _combine(op: str, left, right):
    """Combine two parsed operands, staying affine when possible."""
    if not isinstance(left, Expr) and not isinstance(right, Expr):
        # try affine algebra first (subscripts); fall back to value expr
        try:
            if op == "+":
                return _as_affine_or_num(left) + _as_affine_or_num(right)
            if op == "-":
                return _as_affine_or_num(left) - _as_affine_or_num(right)
            if op == "*":
                return _as_affine_or_num(left) * _as_affine_or_num(right)
            if op == "/":
                return _as_affine_or_num(left) / _as_affine_or_num(right)
        except (CompileError, TypeError):
            pass
    lexpr = left if isinstance(left, Expr) else _to_value(left)
    rexpr = right if isinstance(right, Expr) else _to_value(right)
    if op == "+":
        return lexpr + rexpr
    if op == "-":
        return lexpr - rexpr
    if op == "*":
        return lexpr * rexpr
    return lexpr / rexpr


def _as_affine_or_num(x):
    if isinstance(x, (LoopVar, AffineExpr)):
        return AffineExpr.of(x) if isinstance(x, LoopVar) else x
    if isinstance(x, int):
        return x
    if isinstance(x, float):
        if float(x).is_integer():
            return int(x)
        raise CompileError("not affine")
    raise CompileError("not affine")


def _to_value(x) -> Expr:
    if isinstance(x, (LoopVar, AffineExpr)):
        raise CompileError(
            "KF1: loop variables may appear only inside array subscripts"
        )
    return as_expr(x)


# ----------------------------------------------------------------------
# Statement-level parser
# ----------------------------------------------------------------------

_PROCS = re.compile(r"^processors\s+(\w+)\s*\(([^)]*)\)\s*$")
_REAL = re.compile(r"^real\s+(\w+)\s*\(([^)]*)\)\s*(?:dist\s*\(([^)]*)\))?\s*$")
_DOALL = re.compile(r"^doall\s*\(([^)]*)\)\s*=\s*(.*?)\s+on\s+(.*)$")
_RANGE = re.compile(r"\[\s*([^\],]+)\s*,\s*([^\],]+)\s*(?:,\s*([^\]]+))?\s*\]")
_OWNER = re.compile(r"^owner\s*\(\s*(\w+)\s*\(([^)]*)\)\s*\)$")
_ONPROC = re.compile(r"^(\w+)\s*\(([^)]*)\)$")


def parse_program(text: str) -> KF1Program:
    """Parse a KF1 program (see module docstring for the subset)."""
    lines = []
    for raw in text.splitlines():
        line = raw.split("!")[0].rstrip()  # Fortran-style comments
        line = re.sub(r"^\s*[cC]\s\s*.*$", "", line)
        if line.strip():
            lines.append(line.strip())

    grid: ProcessorGrid | None = None
    grid_name = None
    arrays: dict[str, DistArray] = {}
    loops: list[Doall] = []
    idx = 0
    while idx < len(lines):
        line = lines[idx]
        m = _PROCS.match(line)
        if m:
            if grid is not None:
                raise CompileError(
                    "KF1: only one real processors declaration is allowed"
                )
            grid_name = m.group(1)
            shape = tuple(int(x) for x in m.group(2).split(","))
            grid = ProcessorGrid(shape)
            idx += 1
            continue
        m = _REAL.match(line)
        if m:
            if grid is None:
                raise CompileError("KF1: declare processors before arrays")
            name = m.group(1)
            dims = []
            for d in m.group(2).split(","):
                d = d.strip()
                if ":" in d:
                    lo, hi = d.split(":")
                    if int(lo) != 0:
                        raise CompileError("KF1: array lower bounds must be 0")
                    dims.append(int(hi) + 1)
                else:
                    dims.append(int(d))
            dist = None
            if m.group(3) is not None:
                dist = tuple(s.strip() for s in m.group(3).split(","))
            arrays[name] = DistArray(tuple(dims), grid, dist=dist, name=name)
            idx += 1
            continue
        m = _DOALL.match(line)
        if m:
            if grid is None:
                raise CompileError("KF1: declare processors before doall")
            var_names = [v.strip() for v in m.group(1).split(",")]
            vars_map = {v: LoopVar(v) for v in var_names}
            ranges = []
            for rm in _RANGE.finditer(m.group(2)):
                lo, hi, step = rm.group(1), rm.group(2), rm.group(3)
                ranges.append(
                    (int(lo), int(hi)) if step is None else (int(lo), int(hi), int(step))
                )
            if len(ranges) != len(var_names):
                raise CompileError("KF1: one range required per loop variable")
            on = _parse_on(m.group(3).strip(), arrays, vars_map, grid, grid_name)
            # body until 'end doall'
            body = []
            idx += 1
            while idx < len(lines) and lines[idx].lower() != "end doall":
                body.append(_parse_assign(lines[idx], arrays, vars_map))
                idx += 1
            if idx == len(lines):
                raise CompileError("KF1: missing 'end doall'")
            idx += 1  # skip end doall
            loops.append(
                Doall(
                    vars=tuple(vars_map[v] for v in var_names),
                    ranges=ranges,
                    on=on,
                    body=body,
                    grid=grid,
                )
            )
            continue
        raise CompileError(f"KF1: cannot parse line {line!r}")
    if grid is None:
        raise CompileError("KF1: program has no processors declaration")
    return KF1Program(grid=grid, arrays=arrays, loops=loops)


def _parse_on(text: str, arrays, vars_map, grid, grid_name):
    m = _OWNER.match(text)
    if m:
        name = m.group(1)
        if name not in arrays:
            raise CompileError(f"KF1: owner() of undeclared array {name!r}")
        idx = []
        for part in m.group(2).split(","):
            part = part.strip()
            if part == "*":
                idx.append(None)
            else:
                p = _ExprParser(_tokenize(part), arrays, vars_map)
                idx.append(p.subscript())
        return Owner(arrays[name], tuple(idx))
    m = _ONPROC.match(text)
    if m and m.group(1) == grid_name:
        exprs = []
        for part in m.group(2).split(","):
            part = part.strip()
            if part == "*":
                exprs.append(None)
            else:
                p = _ExprParser(_tokenize(part), arrays, vars_map)
                exprs.append(p.subscript())
        return OnProc(grid, tuple(exprs))
    raise CompileError(f"KF1: cannot parse on-clause {text!r}")


def _parse_assign(line: str, arrays, vars_map) -> Assign:
    if "=" not in line:
        raise CompileError(f"KF1: expected assignment, found {line!r}")
    lhs_text, rhs_text = line.split("=", 1)
    lp = _ExprParser(_tokenize(lhs_text), arrays, vars_map)
    lhs = lp.factor()
    if not isinstance(lhs, Ref):
        raise CompileError(f"KF1: assignment target must be an array reference")
    rp = _ExprParser(_tokenize(rhs_text), arrays, vars_map)
    rhs = rp.expr()
    if rp.peek() is not None:
        raise CompileError(f"KF1: trailing tokens in {rhs_text!r}")
    if not isinstance(rhs, Expr):
        rhs = _to_value(rhs)
    return Assign(lhs, rhs)
