"""Expression AST for doall loop bodies.

Two small languages live here:

* **Affine index expressions** over loop variables (``i + 1``, ``4*ip - 3``,
  ``k/2``), with exact rational coefficients so semi-coarsening indices like
  ``(k+1)/2`` evaluate exactly on strided iteration sets.  These appear as
  array subscripts and in ``on`` clauses.
* **Value expressions**: arithmetic over array references and constants,
  e.g. the Jacobi stencil.  The compiler evaluates these vectorized over
  each processor's local iteration set and counts flops for the cost model.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any

import numpy as np

from repro.util.errors import CompileError


# ----------------------------------------------------------------------
# Affine index expressions
# ----------------------------------------------------------------------


class AffineExpr:
    """Exact affine form ``sum(coeff[v] * v) + const`` over loop variables."""

    __slots__ = ("coeffs", "const")

    def __init__(self, coeffs: dict | None = None, const=0):
        self.coeffs: dict[LoopVar, Fraction] = {
            v: Fraction(c) for v, c in (coeffs or {}).items() if c != 0
        }
        self.const = Fraction(const)

    # -- algebra --------------------------------------------------------

    @staticmethod
    def of(value) -> "AffineExpr":
        if isinstance(value, AffineExpr):
            return value
        if isinstance(value, LoopVar):
            return AffineExpr({value: 1})
        if isinstance(value, (int, np.integer)):
            return AffineExpr(const=int(value))
        if isinstance(value, Fraction):
            return AffineExpr(const=value)
        raise CompileError(f"cannot use {value!r} as an affine index expression")

    def __add__(self, other):
        other = AffineExpr.of(other)
        coeffs = dict(self.coeffs)
        for v, c in other.coeffs.items():
            coeffs[v] = coeffs.get(v, Fraction(0)) + c
        return AffineExpr(coeffs, self.const + other.const)

    __radd__ = __add__

    def __neg__(self):
        return AffineExpr({v: -c for v, c in self.coeffs.items()}, -self.const)

    def __sub__(self, other):
        return self + (-AffineExpr.of(other))

    def __rsub__(self, other):
        return AffineExpr.of(other) + (-self)

    def __mul__(self, other):
        if isinstance(other, (int, np.integer, Fraction)):
            k = Fraction(other)
            return AffineExpr({v: c * k for v, c in self.coeffs.items()}, self.const * k)
        raise CompileError("affine expressions may only be scaled by constants")

    __rmul__ = __mul__

    def __truediv__(self, other):
        if isinstance(other, (int, np.integer, Fraction)) and other != 0:
            return self * (Fraction(1) / Fraction(other))
        raise CompileError("affine expressions may only be divided by constants")

    def __floordiv__(self, other):
        # Exact division: valid only when the result is integral on the
        # iteration set (checked at evaluation time).  KF1's k/2 idiom.
        return self.__truediv__(other)

    # -- queries ---------------------------------------------------------

    def vars(self) -> set["LoopVar"]:
        return set(self.coeffs)

    def is_constant(self) -> bool:
        return not self.coeffs

    def single_var(self) -> "LoopVar | None":
        if len(self.coeffs) == 1:
            return next(iter(self.coeffs))
        return None

    def evaluate(self, env: dict) -> np.ndarray:
        """Evaluate over numpy integer arrays in ``env`` (broadcastable).

        Raises :class:`CompileError` if the rational result is not exactly
        integral for every point.
        """
        num = np.zeros((), dtype=np.int64)
        den = 1
        # Accumulate over a common denominator for exactness.
        for v, c in self.coeffs.items():
            den = den * c.denominator // np.gcd(den, c.denominator)
        den = int(np.lcm(den, self.const.denominator))
        total = None
        for v, c in self.coeffs.items():
            if v.name not in env:
                raise CompileError(f"loop variable {v.name!r} unbound")
            term = env[v.name] * int(c * den)
            total = term if total is None else total + term
        const_term = int(self.const * den)
        total = const_term if total is None else total + const_term
        total = np.asarray(total)
        if den != 1:
            if np.any(total % den != 0):
                raise CompileError(
                    f"affine index {self!r} is not integral on the iteration set"
                )
            total = total // den
        return total.astype(np.int64)

    def key(self):
        items = tuple(
            sorted(((v.name, (c.numerator, c.denominator)) for v, c in self.coeffs.items()))
        )
        return (items, (self.const.numerator, self.const.denominator))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = [f"{c}*{v.name}" for v, c in sorted(self.coeffs.items(), key=lambda x: x[0].name)]
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts)


class LoopVar:
    """A doall loop variable; arithmetic builds :class:`AffineExpr`."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __add__(self, other):
        return AffineExpr.of(self) + other

    __radd__ = __add__

    def __sub__(self, other):
        return AffineExpr.of(self) - other

    def __rsub__(self, other):
        return AffineExpr.of(other) - AffineExpr.of(self)

    def __mul__(self, other):
        return AffineExpr.of(self) * other

    __rmul__ = __mul__

    def __truediv__(self, other):
        return AffineExpr.of(self) / other

    def __floordiv__(self, other):
        return AffineExpr.of(self) // other

    def __neg__(self):
        return -AffineExpr.of(self)

    def __hash__(self) -> int:
        return hash(("loopvar", self.name))

    def __eq__(self, other) -> bool:
        return isinstance(other, LoopVar) and self.name == other.name

    def __repr__(self) -> str:  # pragma: no cover
        return self.name


def loopvars(names: str) -> tuple[LoopVar, ...]:
    """``i, j = loopvars("i j")``"""
    return tuple(LoopVar(n) for n in names.replace(",", " ").split())


# ----------------------------------------------------------------------
# Value expressions
# ----------------------------------------------------------------------


class Expr:
    """Base of value expressions; supports arithmetic operator overloading."""

    def __add__(self, other):
        return BinOp("+", self, as_expr(other))

    def __radd__(self, other):
        return BinOp("+", as_expr(other), self)

    def __sub__(self, other):
        return BinOp("-", self, as_expr(other))

    def __rsub__(self, other):
        return BinOp("-", as_expr(other), self)

    def __mul__(self, other):
        return BinOp("*", self, as_expr(other))

    def __rmul__(self, other):
        return BinOp("*", as_expr(other), self)

    def __truediv__(self, other):
        return BinOp("/", self, as_expr(other))

    def __rtruediv__(self, other):
        return BinOp("/", as_expr(other), self)

    def __neg__(self):
        return BinOp("-", Const(0.0), self)

    # -- analysis --------------------------------------------------------

    def refs(self) -> list["Ref"]:
        """All array references in the expression tree."""
        raise NotImplementedError

    def flops(self) -> int:
        """Floating point operations per evaluation point."""
        raise NotImplementedError

    def key(self):
        """Hashable structural identity (plan caching)."""
        raise NotImplementedError


def as_expr(value) -> Expr:
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, float, np.integer, np.floating)):
        return Const(float(value))
    raise CompileError(f"cannot use {value!r} in a doall body expression")


class Const(Expr):
    __slots__ = ("value",)

    def __init__(self, value: float):
        self.value = float(value)

    def refs(self) -> list["Ref"]:
        return []

    def flops(self) -> int:
        return 0

    def key(self):
        return ("const", self.value)

    def __repr__(self) -> str:  # pragma: no cover
        return repr(self.value)


class Ref(Expr):
    """Reference ``A[e0, e1, ...]`` with affine index expressions."""

    __slots__ = ("array", "idx")

    def __init__(self, array: Any, idx: tuple):
        self.array = array
        self.idx = tuple(AffineExpr.of(e) for e in idx)
        if len(self.idx) != array.ndim:
            raise CompileError(
                f"{array.ndim}-d array indexed with {len(self.idx)} subscripts"
            )

    def refs(self) -> list["Ref"]:
        return [self]

    def flops(self) -> int:
        return 0

    def vars(self) -> set[LoopVar]:
        out: set[LoopVar] = set()
        for e in self.idx:
            out |= e.vars()
        return out

    def key(self):
        # The array's comm epoch is part of the identity so that cached
        # loop plans die with the layout they were compiled against.
        # The process-unique ``uid`` (never ``id()``: CPython reuses
        # addresses after GC, so a freed array could alias a live one's
        # cached plans) pins which array this is.  No fallback: an array
        # without a uid must fail loudly, not share key component None.
        return (
            "ref",
            self.array.uid,
            getattr(self.array, "comm_epoch", 0),
            tuple(e.key() for e in self.idx),
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"{getattr(self.array, 'name', 'A')}[{', '.join(map(repr, self.idx))}]"


class BinOp(Expr):
    __slots__ = ("op", "left", "right")

    _ops = {"+", "-", "*", "/"}

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in self._ops:
            raise CompileError(f"unsupported operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def refs(self) -> list[Ref]:
        return self.left.refs() + self.right.refs()

    def flops(self) -> int:
        return 1 + self.left.flops() + self.right.flops()

    def key(self):
        return ("bin", self.op, self.left.key(), self.right.key())

    def __repr__(self) -> str:  # pragma: no cover
        return f"({self.left!r} {self.op} {self.right!r})"


#: numpy ufuncs behind each BinOp operator -- bound once at lowering
#: time so a compiled expression never consults this table per call.
UFUNCS = {"+": np.add, "-": np.subtract, "*": np.multiply, "/": np.divide}


def compile_expr(expr: Expr, resolve):
    """Lower a value expression into a closure (the compiled fast path).

    ``resolve(ref)`` is called once per :class:`Ref` *now*, at lowering
    time, and must return a zero-argument callable producing that
    reference's current values (vectorized over the iteration set --
    typically a pre-bound fancy-index or slice read of a gather
    workspace).  The returned closure re-evaluates the whole expression
    on each call through pre-bound numpy ufuncs: no AST walk, no
    operator dispatch, no affine index evaluation at call time.

    The tree-walking interpreter
    (:func:`repro.compiler.schedule._eval_expr`) remains the reference
    semantics; the two paths must agree bit-for-bit, which the
    equivalence tests assert over random expression trees.

    >>> import numpy as np
    >>> e = as_expr(2.0) * as_expr(3.0) - as_expr(1.0)
    >>> fn = compile_expr(e, resolve=lambda ref: None)
    >>> float(fn())
    5.0

    **Batch axis.**  Because the closure is a chain of pre-bound numpy
    ufuncs, a *leading batch axis* threads through for free: when the
    resolve closures hand back ``(B,) + shape`` reads instead of
    ``shape`` ones -- which is exactly what a batched
    :class:`~repro.compiler.commgen.StepPlan` pre-binds for
    ``Program.run_batch`` -- the same compiled closure evaluates all
    ``B`` ensemble members in one vectorized call, constants
    broadcasting across the new axis untouched:

    >>> from types import SimpleNamespace
    >>> A = SimpleNamespace(ndim=1, uid=0)
    >>> e = Ref(A, (AffineExpr(const=0),)) * as_expr(2.0)
    >>> batched = np.array([[1.0], [10.0]])        # B=2 members
    >>> fn = compile_expr(e, resolve=lambda ref: lambda: batched)
    >>> fn()
    array([[ 2.],
           [20.]])
    """
    if isinstance(expr, Const):
        value = expr.value
        return lambda: value
    if isinstance(expr, Ref):
        return resolve(expr)
    if isinstance(expr, BinOp):
        op = UFUNCS[expr.op]
        left = compile_expr(expr.left, resolve)
        right = compile_expr(expr.right, resolve)
        return lambda: op(left(), right())
    raise CompileError(f"cannot compile expression {expr!r}")


class Assign:
    """One statement ``lhs[...] = rhs`` inside a doall body.

    Copy-in/copy-out semantics: the rhs of every statement in the body
    reads array values from before the loop started.
    """

    __slots__ = ("lhs", "rhs")

    def __init__(self, lhs: Ref, rhs):
        if not isinstance(lhs, Ref):
            raise CompileError("assignment target must be an array reference")
        self.lhs = lhs
        self.rhs = as_expr(rhs)

    def key(self):
        return ("assign", self.lhs.key(), self.rhs.key())

    def __repr__(self) -> str:  # pragma: no cover
        return f"{self.lhs!r} = {self.rhs!r}"
