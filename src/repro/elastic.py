"""Elastic processor-set morphing and durable session state.

The paper's claim is that one program runs unchanged across machine
layouts because communication is compiled from the distribution clauses;
this module extends the claim to layouts that change *mid-run* -- the
Varuna-style elasticity a long-lived deployment needs when capacity
appears or vanishes.  Three primitives, all built on machinery that
already existed:

* :func:`checkpoint` / :func:`restore` -- serialize a Session's run
  state (array contents, layouts, grids, comm epochs, run history) into
  a :class:`Checkpoint` and load it back, into the same Session or a
  freshly compiled twin.  A restore that lands on the current layout is
  a pure value write -- caches stay warm, so replay after restore is
  bit-identical to the uninterrupted run; a restore onto a different
  layout re-lays the arrays out and re-freezes the loop plans, the same
  recompile-or-replay contract every run already honors.

* :func:`morph` -- move a Session's live programs onto a *different*
  processor grid (grow or shrink the rank set).  In-flight work is
  drained (every program's run lock is held), multiprocessing worker
  pools are quiesced so shared-memory blocks return to private storage,
  every live array is repartitioned old-grid -> new-grid through the
  cached inter-grid repartition path (one SPMD launch over the union of
  the rank sets -- morphing back replays the same schedules), the loops
  are rebuilt on the new grid, and their plans are re-frozen so the
  first post-morph run is already a replay.  Worker pools respawn
  lazily on the new rank set at the next multiprocessing run.

Invariants, lifecycle, and failure modes are documented in
``docs/elasticity.md``; the morph drill and the checkpoint round-trip
property tests live in ``tests/elastic/``.
"""

from __future__ import annotations

import itertools
import os
import pickle
import struct
import zlib
from contextlib import ExitStack

import numpy as np

from repro.lang.doall import Doall, OnProc
from repro.lang.procs import ProcessorGrid
from repro.util.errors import ValidationError

#: Checkpoint wire-format version; bump on incompatible layout changes.
CHECKPOINT_VERSION = 1

#: ``to_bytes`` envelope: magic + crc32 + payload length, then pickle.
#: Bytes without the magic are read as a legacy un-enveloped pickle.
_MAGIC = b"RPCKPT1\x00"
_HEADER = struct.Struct("<IQ")

#: process-local checkpoint identities (incremental deltas name their
#: base by id, so a merge against the wrong base fails loudly)
_CKPT_IDS = itertools.count(1)


def _new_ckpt_id() -> str:
    return f"{os.getpid()}-{next(_CKPT_IDS)}"


class Checkpoint:
    """A Session's serialized run state.

    Produced by :func:`checkpoint` / :meth:`repro.Session.checkpoint`;
    consumed by :func:`restore`.  Holds, per live program, one snapshot
    per storage array -- global values, per-dimension distribution
    specs, owning grid, comm epoch -- plus the session's run counter
    and trace history.  The whole object round-trips through
    :meth:`to_bytes` / :meth:`from_bytes` (pickle: numpy blocks, dist
    specs, grids, and traces are all plain data).

    A checkpoint matches programs *structurally*: restore pairs the
    target session's live programs with the snapshot's, in compile
    order, and each program's arrays in loop-traversal order -- so a
    checkpoint also restores into a fresh process that compiled the
    same program (names and shapes are verified, not assumed).
    """

    def __init__(self, runs: int, history: list, programs: list,
                 calibration=None, *, sweep: int = 0, kind: str = "full",
                 base_id: str | None = None):
        self.version = CHECKPOINT_VERSION
        #: session launch counter at capture time
        self.runs = runs
        #: traces of the session's launch history at capture time
        self.history = history
        #: one dict per live program: grid + ordered array snapshots
        self.programs = programs
        #: the session's host calibration
        #: (:class:`~repro.machine.calibrate.CalibratedCostModel`) at
        #: capture time, or None -- restoring carries it over, so a
        #: restored session keeps autotuning without re-profiling.
        #: Read with ``getattr(ckpt, "calibration", None)`` so pickles
        #: written before this field existed still load.
        self.calibration = calibration
        #: sweep cursor: sweeps completed (within the checkpointed run
        #: span) when this snapshot was taken -- recovery resumes here
        self.sweep = int(sweep)
        #: ``"full"`` (every array's values present) or ``"incremental"``
        #: (values elided for arrays unchanged since the base snapshot)
        self.kind = kind
        #: identity of this snapshot / of an incremental delta's base
        self.ckpt_id = _new_ckpt_id()
        self.base_id = base_id

    def to_bytes(self) -> bytes:
        """Serialize; inverse of :meth:`from_bytes`.

        The pickle payload is wrapped in a checksummed envelope (magic,
        CRC-32, payload length) so truncated or bit-flipped bytes fail
        with a clear :class:`ValidationError` at load time instead of
        an opaque unpickling error -- or, worse, silently wrong state.
        """
        payload = pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)
        crc = zlib.crc32(payload) & 0xFFFFFFFF
        return _MAGIC + _HEADER.pack(crc, len(payload)) + payload

    @classmethod
    def from_bytes(cls, data: bytes) -> "Checkpoint":
        data = bytes(data)
        if data[:len(_MAGIC)] == _MAGIC:
            head_end = len(_MAGIC) + _HEADER.size
            if len(data) < head_end:
                raise ValidationError(
                    f"truncated checkpoint: {len(data)} bytes is shorter "
                    "than the envelope header"
                )
            crc, n = _HEADER.unpack(data[len(_MAGIC):head_end])
            payload = data[head_end:]
            if len(payload) != n:
                raise ValidationError(
                    f"truncated checkpoint: envelope declares {n} payload "
                    f"bytes but {len(payload)} are present"
                )
            if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                raise ValidationError(
                    "corrupted checkpoint: CRC-32 mismatch (bytes were "
                    "altered after to_bytes(); refusing to load state "
                    "that could be silently wrong)"
                )
        else:
            # legacy un-enveloped pickle (written before the checksum)
            payload = data
        try:
            ckpt = pickle.loads(payload)
        except ValidationError:
            raise
        except Exception as exc:
            raise ValidationError(
                f"corrupted checkpoint: payload does not unpickle ({exc})"
            ) from exc
        if not isinstance(ckpt, cls):
            raise ValidationError(
                f"not a Checkpoint: deserialized {type(ckpt).__name__}"
            )
        if ckpt.version != CHECKPOINT_VERSION:
            raise ValidationError(
                f"checkpoint version {ckpt.version} is not supported "
                f"(this library writes version {CHECKPOINT_VERSION})"
            )
        return ckpt

    def merged(self, base: "Checkpoint") -> "Checkpoint":
        """Hydrate an incremental delta against its ``base`` full snapshot.

        Returns a new *full* :class:`Checkpoint` at this delta's sweep
        cursor: arrays whose values were elided as clean take them from
        ``base``; everything else (layouts, counters, history) comes
        from the delta, which always captures it.  Raises unless
        ``base`` is the full snapshot this delta was diffed against.
        """
        if _kind_of(self) != "incremental":
            raise ValidationError(
                f"merged() applies to incremental checkpoints, not {_kind_of(self)!r}"
            )
        if _kind_of(base) != "full":
            raise ValidationError("merge base must be a full checkpoint")
        if getattr(base, "ckpt_id", None) != self.base_id:
            raise ValidationError(
                f"incremental checkpoint was diffed against base "
                f"{self.base_id!r}, not {getattr(base, 'ckpt_id', None)!r} "
                "-- merging against the wrong base would mix states"
            )
        states = []
        for state, bstate in zip(self.programs, base.programs):
            snaps = []
            for snap, bsnap in zip(state["arrays"], bstate["arrays"]):
                if snap["data"] is None:
                    snap = dict(snap, data=bsnap["data"])
                snaps.append(snap)
            states.append(dict(state, arrays=snaps))
        return Checkpoint(
            runs=self.runs, history=self.history, programs=states,
            calibration=getattr(self, "calibration", None),
            sweep=self.sweep, kind="full",
        )

    def describe(self) -> dict:
        """Summary for logs/benchmarks: counts, grids, total bytes."""
        nbytes = sum(
            snap["data"].nbytes
            for state in self.programs for snap in state["arrays"]
            if snap["data"] is not None
        )
        return {
            "version": self.version,
            "runs": self.runs,
            "programs": len(self.programs),
            "arrays": sum(len(s["arrays"]) for s in self.programs),
            "grids": [s["grid_shape"] for s in self.programs],
            "nbytes": nbytes,
            "kind": _kind_of(self),
            "sweep": getattr(self, "sweep", 0),
            "calibrated": getattr(self, "calibration", None) is not None,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        d = self.describe()
        return (
            f"Checkpoint(programs={d['programs']}, arrays={d['arrays']}, "
            f"runs={d['runs']}, nbytes={d['nbytes']})"
        )


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------


def _kind_of(ckpt) -> str:
    """``ckpt.kind``, tolerating pickles written before the field."""
    return getattr(ckpt, "kind", "full")


def _storage_of(array):
    """The block-owning array beneath ``array`` (sections peel off)."""
    while not hasattr(array, "_blocks"):
        array = array.base
    return array


def _loop_programs(session) -> list:
    """The session's live programs, compile order; all must be loop
    programs (parsub routines are opaque: no static arrays to capture,
    no loops to retarget)."""
    programs = session.live_programs()
    for p in programs:
        if p.routine is not None:
            raise ValidationError(
                "elastic operations need compiled loop programs; this "
                "session holds an opaque parsub Program (wrap the state "
                "it touches in a loop program, or checkpoint/morph a "
                "session without it)"
            )
    return programs


def _storage_arrays(program) -> list:
    """Unique storage arrays of a loop program, loop-traversal order.

    Deterministic by construction (loops and their array scans are
    ordered), which is what lets a checkpoint restore into a different
    process: both sides enumerate the same program the same way.
    """
    out, seen = [], set()
    for loop in program.loops:
        for arr in loop.arrays():
            storage = _storage_of(arr)
            if storage.uid not in seen:
                seen.add(storage.uid)
                out.append(storage)
    return out


def _refuse_sections(program) -> None:
    for loop in program.loops:
        for arr in loop.arrays():
            if getattr(arr, "base", None) is not None:
                raise ValidationError(
                    f"cannot morph a program over array Sections "
                    f"({arr.name!r} views another array's storage): a "
                    "section snapshots its base's layout, which the morph "
                    "replaces -- run on the base arrays and re-slice after"
                )


def _all_locks(programs) -> ExitStack:
    """Drain in-flight work: hold every program's run lock at once.

    Runs of one Program serialize on its lock, so acquiring all of them
    guarantees no sweep is mid-flight while state is captured or moved.
    Acquisition is in compile order (every caller uses the same order,
    so two concurrent elastic operations cannot deadlock each other).
    """
    stack = ExitStack()
    for p in programs:
        stack.enter_context(p.lock)
    return stack


def _grid_of(state: dict) -> ProcessorGrid:
    return ProcessorGrid(state["grid_shape"], ranks=state["grid_ranks"])


def _same_grid(a: ProcessorGrid, b: ProcessorGrid) -> bool:
    return a.shape == b.shape and a.key() == b.key()


def _retarget_loop(loop: Doall, new_grid: ProcessorGrid) -> Doall:
    """Rebuild one loop on a new grid (ranges/body/on reused).

    ``Doall.ranges`` are normalized inclusive ``(lo, hi, step)`` triples
    -- re-passable as-is.  An ``Owner`` clause follows its array (which
    has already been repartitioned onto the new grid); an ``OnProc``
    clause is re-pinned to the new grid, which requires matching ndim.
    """
    on = loop.on
    if isinstance(on, OnProc):
        on = OnProc(new_grid, on.coord_exprs)
    return Doall(loop.vars, loop.ranges, on, loop.body, new_grid)


def _refreeze(session, program, new_grid: ProcessorGrid | None = None) -> None:
    """Re-derive a program's frozen plans (the "recompile" step).

    With ``new_grid``, the loops are first rebuilt on it.  Freezing at
    retarget time mirrors what ``repro.compile`` does at compile time,
    so the first run after a morph/restore is already an all-hit replay
    -- trace-identical to any later run.
    """
    if new_grid is not None and not _same_grid(program.grid, new_grid):
        program.loops = [_retarget_loop(lp, new_grid) for lp in program.loops]
        program.grid = new_grid
    for loop in program.loops:
        session.plans.analysis(loop)


# ----------------------------------------------------------------------
# Checkpoint / restore
# ----------------------------------------------------------------------


def _snap_clean(snap: dict, bsnap: dict) -> bool:
    """True when ``snap`` is value- and layout-identical to ``bsnap``
    (its base-snapshot counterpart) and may elide its data."""
    return (
        snap["name"] == bsnap["name"]
        and snap["spec_key"] == bsnap["spec_key"]
        and snap["grid_shape"] == bsnap["grid_shape"]
        and np.array_equal(snap["grid_ranks"], bsnap["grid_ranks"])
        and snap["comm_epoch"] == bsnap["comm_epoch"]
        and np.array_equal(snap["data"], bsnap["data"])
    )


def checkpoint(session, *, sweep: int = 0, base: Checkpoint | None = None,
               programs: list | None = None) -> Checkpoint:
    """Capture ``session``'s run state into a :class:`Checkpoint`.

    Collective over nothing -- this is a host-side snapshot taken with
    every captured program's run lock held (no sweep can be mid-flight).
    Array values are captured as global numpy arrays, layouts as
    (grid, per-dimension specs, comm epoch); bindings are state the
    arrays already hold, so they are captured with the values.

    ``sweep`` stamps the checkpoint's sweep cursor (how many sweeps of
    the current run span it reflects); recovery resumes there instead
    of sweep 0.  ``programs`` scopes capture to an explicit program
    list (default: every live loop program) -- mid-run checkpoints
    scope to the running program so they never have to wait on another
    program's in-flight sweep.  With ``base`` (a prior *full* snapshot
    of the same scope), the result is an *incremental* checkpoint:
    arrays whose values and layout are unchanged since ``base`` elide
    their data (``data=None``) and are re-hydrated by
    :meth:`Checkpoint.merged` -- the cheap per-sweep-boundary snapshot
    that makes ``checkpoint_every=`` affordable.  ``base`` may itself
    be a hydrated ``merged()`` result: the checkpointed-run drivers
    chain each boundary's delta against the *previous* boundary's
    snapshot (not the sweep-0 base), so an array that changed once and
    then went quiescent elides its data again at later boundaries.
    """
    if programs is None:
        programs = _loop_programs(session)
    if base is not None and _kind_of(base) != "full":
        raise ValidationError(
            "incremental checkpoints diff against a *full* base snapshot"
        )
    with _all_locks(programs):
        states = []
        for p in programs:
            snaps = []
            for arr in _storage_arrays(p):
                snaps.append({
                    "name": arr.name,
                    "shape": arr.shape,
                    "dtype": str(arr.dtype),
                    "specs": arr.dist.specs,
                    "spec_key": arr.dist.spec_key(),
                    "grid_shape": arr.grid.shape,
                    "grid_ranks": np.asarray(arr.grid.ranks),
                    "comm_epoch": arr.comm_epoch,
                    "data": arr.to_global(),
                })
            states.append({
                "grid_shape": p.grid.shape,
                "grid_ranks": np.asarray(p.grid.ranks),
                "arrays": snaps,
            })
        if base is not None:
            if len(states) != len(base.programs):
                raise ValidationError(
                    f"incremental checkpoint scope ({len(states)} program(s)) "
                    f"does not match its base ({len(base.programs)})"
                )
            for state, bstate in zip(states, base.programs):
                if len(state["arrays"]) != len(bstate["arrays"]):
                    raise ValidationError(
                        "incremental checkpoint array count does not match "
                        "its base"
                    )
                state["arrays"] = [
                    dict(snap, data=None) if _snap_clean(snap, bsnap) else snap
                    for snap, bsnap in zip(state["arrays"], bstate["arrays"])
                ]
        return Checkpoint(
            runs=session.runs, history=list(session.history), programs=states,
            calibration=getattr(session, "calibration", None),
            sweep=sweep,
            kind="full" if base is None else "incremental",
            base_id=None if base is None else base.ckpt_id,
        )


def restore(session, ckpt: Checkpoint, *, base: Checkpoint | None = None,
            programs: list | None = None, counters: bool = True) -> None:
    """Load a :class:`Checkpoint` back into ``session``.

    Programs pair up in compile order, arrays in loop-traversal order;
    names and shapes are verified.  Arrays whose live layout already
    matches the snapshot get a pure value write -- no epoch bump, so
    every warm schedule and plan keeps replaying and the next run is
    bit-identical to the uninterrupted one.  Arrays on a different
    layout (or grid) are re-laid out to the snapshot's first, and the
    owning program's plans are re-frozen against the restored layout --
    the recompile half of recompile-or-replay.  The session's run
    counter and trace history are restored too (pass
    ``counters=False`` to restore array state only -- what supervised
    mid-run recovery wants, since the retried sweeps *do* happen and
    the run ledger should say so).

    An *incremental* checkpoint needs its ``base`` full snapshot to
    re-hydrate (or hydrate explicitly with :meth:`Checkpoint.merged`);
    ``programs`` restricts restore to an explicit scope matching the
    one the checkpoint captured.
    """
    if not isinstance(ckpt, Checkpoint):
        raise ValidationError(f"restore() needs a Checkpoint, got {type(ckpt).__name__}")
    if _kind_of(ckpt) == "incremental":
        if base is None:
            raise ValidationError(
                "restoring an incremental checkpoint needs base= (the full "
                "snapshot it was diffed against), or hydrate it first with "
                "Checkpoint.merged(base)"
            )
        ckpt = ckpt.merged(base)
    if programs is None:
        programs = _loop_programs(session)
    if len(programs) != len(ckpt.programs):
        raise ValidationError(
            f"checkpoint holds {len(ckpt.programs)} program(s) but the "
            f"session has {len(programs)} live one(s); restore needs a "
            "structurally matching session"
        )
    with _all_locks(programs):
        for p, state in zip(programs, ckpt.programs):
            arrays = _storage_arrays(p)
            if len(arrays) != len(state["arrays"]):
                raise ValidationError(
                    f"program array count mismatch: checkpoint has "
                    f"{len(state['arrays'])}, live program has {len(arrays)}"
                )
            changed = False
            for arr, snap in zip(arrays, state["arrays"]):
                if arr.name != snap["name"] or arr.shape != tuple(snap["shape"]):
                    raise ValidationError(
                        f"array mismatch: checkpoint snapshot "
                        f"{snap['name']!r}{tuple(snap['shape'])} does not "
                        f"match live array {arr.name!r}{arr.shape}"
                    )
                agrid = _grid_of(snap)
                if not _same_grid(arr.grid, agrid) \
                        or arr.dist.spec_key() != snap["spec_key"]:
                    arr.redistribute(snap["specs"], grid=agrid)
                    session.cache.invalidate_array(arr)
                    changed = True
                arr.from_global(snap["data"])
            target = _grid_of(state)
            if changed or not _same_grid(p.grid, target):
                _refreeze(session, p, target)
        if counters:
            with session._lock:
                session.runs = ckpt.runs
                session.history = list(ckpt.history)[-session.max_history:]
                # older pickles predate the field: leave the session's
                # own calibration alone rather than clearing it
                cal = getattr(ckpt, "calibration", None)
                if cal is not None:
                    session.calibration = cal


# ----------------------------------------------------------------------
# Morph
# ----------------------------------------------------------------------


def morph(session, new_grid: ProcessorGrid, *, machine=None):
    """Move ``session``'s live programs onto ``new_grid``, preserving state.

    The elastic drill: (1) drain -- every live program's run lock is
    taken, so no sweep is in flight; (2) quiesce -- multiprocessing
    worker pools are closed, returning adopted shared-memory blocks to
    private storage (pools respawn lazily on the new rank set at the
    next run); (3) repartition -- every live storage array moves
    old-grid -> new-grid keeping its per-dimension specs, as one SPMD
    launch over the union of the rank sets through the cached
    inter-grid repartition path (morphing back replays the same
    schedules); (4) retarget -- loops are rebuilt on ``new_grid`` and
    their plans re-frozen, so the first post-morph run is an all-hit
    replay, bit-identical in results and trace to an uninterrupted run
    on ``new_grid``.

    Returns the repartition launch's trace (``None`` when every array
    was already on ``new_grid``).  Arrays keep their per-dimension
    distribution kinds; a grid whose ndim differs from the old one
    raises (per-dim specs cannot be re-bound), as does a program over
    array sections -- see ``docs/elasticity.md`` for the failure modes.
    """
    programs = _loop_programs(session)
    for p in programs:
        _refuse_sections(p)
    mach = machine if machine is not None else session.machine
    if mach is None:
        mach = getattr(session.backend, "machine", None)
    if mach is None:
        raise ValidationError(
            "no machine: give the Session one or pass machine= to morph()"
        )

    with _all_locks(programs):
        session.close_backend()

        moves, seen = [], set()
        for p in programs:
            for arr in _storage_arrays(p):
                if arr.uid in seen:
                    continue
                seen.add(arr.uid)
                if _same_grid(arr.grid, new_grid):
                    continue
                moves.append((arr, arr.dist.specs, arr.grid.union(new_grid)))

        trace = None
        if moves:
            launch_grid = new_grid
            for _arr, _specs, scope in moves:
                launch_grid = launch_grid.union(scope)

            def _relayout(ctx):
                for arr, specs, scope in moves:
                    if scope.contains(ctx.rank):
                        yield from ctx.redistribute(arr, specs, grid=new_grid)

            trace = session.run(
                _relayout, machine=mach, grid=launch_grid, backend="simulator"
            )

        for p in programs:
            _refreeze(session, p, new_grid)
        with session._lock:
            if session.grid is not None:
                session.grid = new_grid
    return trace


__all__ = ["Checkpoint", "checkpoint", "restore", "morph", "CHECKPOINT_VERSION"]
