"""Elastic processor-set morphing and durable session state.

The paper's claim is that one program runs unchanged across machine
layouts because communication is compiled from the distribution clauses;
this module extends the claim to layouts that change *mid-run* -- the
Varuna-style elasticity a long-lived deployment needs when capacity
appears or vanishes.  Three primitives, all built on machinery that
already existed:

* :func:`checkpoint` / :func:`restore` -- serialize a Session's run
  state (array contents, layouts, grids, comm epochs, run history) into
  a :class:`Checkpoint` and load it back, into the same Session or a
  freshly compiled twin.  A restore that lands on the current layout is
  a pure value write -- caches stay warm, so replay after restore is
  bit-identical to the uninterrupted run; a restore onto a different
  layout re-lays the arrays out and re-freezes the loop plans, the same
  recompile-or-replay contract every run already honors.

* :func:`morph` -- move a Session's live programs onto a *different*
  processor grid (grow or shrink the rank set).  In-flight work is
  drained (every program's run lock is held), multiprocessing worker
  pools are quiesced so shared-memory blocks return to private storage,
  every live array is repartitioned old-grid -> new-grid through the
  cached inter-grid repartition path (one SPMD launch over the union of
  the rank sets -- morphing back replays the same schedules), the loops
  are rebuilt on the new grid, and their plans are re-frozen so the
  first post-morph run is already a replay.  Worker pools respawn
  lazily on the new rank set at the next multiprocessing run.

Invariants, lifecycle, and failure modes are documented in
``docs/elasticity.md``; the morph drill and the checkpoint round-trip
property tests live in ``tests/elastic/``.
"""

from __future__ import annotations

import pickle
from contextlib import ExitStack

import numpy as np

from repro.lang.doall import Doall, OnProc
from repro.lang.procs import ProcessorGrid
from repro.util.errors import ValidationError

#: Checkpoint wire-format version; bump on incompatible layout changes.
CHECKPOINT_VERSION = 1


class Checkpoint:
    """A Session's serialized run state.

    Produced by :func:`checkpoint` / :meth:`repro.Session.checkpoint`;
    consumed by :func:`restore`.  Holds, per live program, one snapshot
    per storage array -- global values, per-dimension distribution
    specs, owning grid, comm epoch -- plus the session's run counter
    and trace history.  The whole object round-trips through
    :meth:`to_bytes` / :meth:`from_bytes` (pickle: numpy blocks, dist
    specs, grids, and traces are all plain data).

    A checkpoint matches programs *structurally*: restore pairs the
    target session's live programs with the snapshot's, in compile
    order, and each program's arrays in loop-traversal order -- so a
    checkpoint also restores into a fresh process that compiled the
    same program (names and shapes are verified, not assumed).
    """

    def __init__(self, runs: int, history: list, programs: list,
                 calibration=None):
        self.version = CHECKPOINT_VERSION
        #: session launch counter at capture time
        self.runs = runs
        #: traces of the session's launch history at capture time
        self.history = history
        #: one dict per live program: grid + ordered array snapshots
        self.programs = programs
        #: the session's host calibration
        #: (:class:`~repro.machine.calibrate.CalibratedCostModel`) at
        #: capture time, or None -- restoring carries it over, so a
        #: restored session keeps autotuning without re-profiling.
        #: Read with ``getattr(ckpt, "calibration", None)`` so pickles
        #: written before this field existed still load.
        self.calibration = calibration

    def to_bytes(self) -> bytes:
        """Serialize (pickle); inverse of :meth:`from_bytes`."""
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Checkpoint":
        ckpt = pickle.loads(data)
        if not isinstance(ckpt, cls):
            raise ValidationError(
                f"not a Checkpoint: deserialized {type(ckpt).__name__}"
            )
        if ckpt.version != CHECKPOINT_VERSION:
            raise ValidationError(
                f"checkpoint version {ckpt.version} is not supported "
                f"(this library writes version {CHECKPOINT_VERSION})"
            )
        return ckpt

    def describe(self) -> dict:
        """Summary for logs/benchmarks: counts, grids, total bytes."""
        nbytes = sum(
            snap["data"].nbytes
            for state in self.programs for snap in state["arrays"]
        )
        return {
            "version": self.version,
            "runs": self.runs,
            "programs": len(self.programs),
            "arrays": sum(len(s["arrays"]) for s in self.programs),
            "grids": [s["grid_shape"] for s in self.programs],
            "nbytes": nbytes,
            "calibrated": getattr(self, "calibration", None) is not None,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        d = self.describe()
        return (
            f"Checkpoint(programs={d['programs']}, arrays={d['arrays']}, "
            f"runs={d['runs']}, nbytes={d['nbytes']})"
        )


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------


def _storage_of(array):
    """The block-owning array beneath ``array`` (sections peel off)."""
    while not hasattr(array, "_blocks"):
        array = array.base
    return array


def _loop_programs(session) -> list:
    """The session's live programs, compile order; all must be loop
    programs (parsub routines are opaque: no static arrays to capture,
    no loops to retarget)."""
    programs = session.live_programs()
    for p in programs:
        if p.routine is not None:
            raise ValidationError(
                "elastic operations need compiled loop programs; this "
                "session holds an opaque parsub Program (wrap the state "
                "it touches in a loop program, or checkpoint/morph a "
                "session without it)"
            )
    return programs


def _storage_arrays(program) -> list:
    """Unique storage arrays of a loop program, loop-traversal order.

    Deterministic by construction (loops and their array scans are
    ordered), which is what lets a checkpoint restore into a different
    process: both sides enumerate the same program the same way.
    """
    out, seen = [], set()
    for loop in program.loops:
        for arr in loop.arrays():
            storage = _storage_of(arr)
            if storage.uid not in seen:
                seen.add(storage.uid)
                out.append(storage)
    return out


def _refuse_sections(program) -> None:
    for loop in program.loops:
        for arr in loop.arrays():
            if getattr(arr, "base", None) is not None:
                raise ValidationError(
                    f"cannot morph a program over array Sections "
                    f"({arr.name!r} views another array's storage): a "
                    "section snapshots its base's layout, which the morph "
                    "replaces -- run on the base arrays and re-slice after"
                )


def _all_locks(programs) -> ExitStack:
    """Drain in-flight work: hold every program's run lock at once.

    Runs of one Program serialize on its lock, so acquiring all of them
    guarantees no sweep is mid-flight while state is captured or moved.
    Acquisition is in compile order (every caller uses the same order,
    so two concurrent elastic operations cannot deadlock each other).
    """
    stack = ExitStack()
    for p in programs:
        stack.enter_context(p.lock)
    return stack


def _grid_of(state: dict) -> ProcessorGrid:
    return ProcessorGrid(state["grid_shape"], ranks=state["grid_ranks"])


def _same_grid(a: ProcessorGrid, b: ProcessorGrid) -> bool:
    return a.shape == b.shape and a.key() == b.key()


def _retarget_loop(loop: Doall, new_grid: ProcessorGrid) -> Doall:
    """Rebuild one loop on a new grid (ranges/body/on reused).

    ``Doall.ranges`` are normalized inclusive ``(lo, hi, step)`` triples
    -- re-passable as-is.  An ``Owner`` clause follows its array (which
    has already been repartitioned onto the new grid); an ``OnProc``
    clause is re-pinned to the new grid, which requires matching ndim.
    """
    on = loop.on
    if isinstance(on, OnProc):
        on = OnProc(new_grid, on.coord_exprs)
    return Doall(loop.vars, loop.ranges, on, loop.body, new_grid)


def _refreeze(session, program, new_grid: ProcessorGrid | None = None) -> None:
    """Re-derive a program's frozen plans (the "recompile" step).

    With ``new_grid``, the loops are first rebuilt on it.  Freezing at
    retarget time mirrors what ``repro.compile`` does at compile time,
    so the first run after a morph/restore is already an all-hit replay
    -- trace-identical to any later run.
    """
    if new_grid is not None and not _same_grid(program.grid, new_grid):
        program.loops = [_retarget_loop(lp, new_grid) for lp in program.loops]
        program.grid = new_grid
    for loop in program.loops:
        session.plans.analysis(loop)


# ----------------------------------------------------------------------
# Checkpoint / restore
# ----------------------------------------------------------------------


def checkpoint(session) -> Checkpoint:
    """Capture ``session``'s run state into a :class:`Checkpoint`.

    Collective over nothing -- this is a host-side snapshot taken with
    every live program's run lock held (no sweep can be mid-flight).
    Array values are captured as global numpy arrays, layouts as
    (grid, per-dimension specs, comm epoch); bindings are state the
    arrays already hold, so they are captured with the values.
    """
    programs = _loop_programs(session)
    with _all_locks(programs):
        states = []
        for p in programs:
            snaps = []
            for arr in _storage_arrays(p):
                snaps.append({
                    "name": arr.name,
                    "shape": arr.shape,
                    "dtype": str(arr.dtype),
                    "specs": arr.dist.specs,
                    "spec_key": arr.dist.spec_key(),
                    "grid_shape": arr.grid.shape,
                    "grid_ranks": np.asarray(arr.grid.ranks),
                    "comm_epoch": arr.comm_epoch,
                    "data": arr.to_global(),
                })
            states.append({
                "grid_shape": p.grid.shape,
                "grid_ranks": np.asarray(p.grid.ranks),
                "arrays": snaps,
            })
        return Checkpoint(
            runs=session.runs, history=list(session.history), programs=states,
            calibration=getattr(session, "calibration", None),
        )


def restore(session, ckpt: Checkpoint) -> None:
    """Load a :class:`Checkpoint` back into ``session``.

    Programs pair up in compile order, arrays in loop-traversal order;
    names and shapes are verified.  Arrays whose live layout already
    matches the snapshot get a pure value write -- no epoch bump, so
    every warm schedule and plan keeps replaying and the next run is
    bit-identical to the uninterrupted one.  Arrays on a different
    layout (or grid) are re-laid out to the snapshot's first, and the
    owning program's plans are re-frozen against the restored layout --
    the recompile half of recompile-or-replay.  The session's run
    counter and trace history are restored too.
    """
    if not isinstance(ckpt, Checkpoint):
        raise ValidationError(f"restore() needs a Checkpoint, got {type(ckpt).__name__}")
    programs = _loop_programs(session)
    if len(programs) != len(ckpt.programs):
        raise ValidationError(
            f"checkpoint holds {len(ckpt.programs)} program(s) but the "
            f"session has {len(programs)} live one(s); restore needs a "
            "structurally matching session"
        )
    with _all_locks(programs):
        for p, state in zip(programs, ckpt.programs):
            arrays = _storage_arrays(p)
            if len(arrays) != len(state["arrays"]):
                raise ValidationError(
                    f"program array count mismatch: checkpoint has "
                    f"{len(state['arrays'])}, live program has {len(arrays)}"
                )
            changed = False
            for arr, snap in zip(arrays, state["arrays"]):
                if arr.name != snap["name"] or arr.shape != tuple(snap["shape"]):
                    raise ValidationError(
                        f"array mismatch: checkpoint snapshot "
                        f"{snap['name']!r}{tuple(snap['shape'])} does not "
                        f"match live array {arr.name!r}{arr.shape}"
                    )
                agrid = _grid_of(snap)
                if not _same_grid(arr.grid, agrid) \
                        or arr.dist.spec_key() != snap["spec_key"]:
                    arr.redistribute(snap["specs"], grid=agrid)
                    session.cache.invalidate_array(arr)
                    changed = True
                arr.from_global(snap["data"])
            target = _grid_of(state)
            if changed or not _same_grid(p.grid, target):
                _refreeze(session, p, target)
        with session._lock:
            session.runs = ckpt.runs
            session.history = list(ckpt.history)[-session.max_history:]
            # older pickles predate the field: leave the session's own
            # calibration alone rather than clearing it
            cal = getattr(ckpt, "calibration", None)
            if cal is not None:
                session.calibration = cal


# ----------------------------------------------------------------------
# Morph
# ----------------------------------------------------------------------


def morph(session, new_grid: ProcessorGrid, *, machine=None):
    """Move ``session``'s live programs onto ``new_grid``, preserving state.

    The elastic drill: (1) drain -- every live program's run lock is
    taken, so no sweep is in flight; (2) quiesce -- multiprocessing
    worker pools are closed, returning adopted shared-memory blocks to
    private storage (pools respawn lazily on the new rank set at the
    next run); (3) repartition -- every live storage array moves
    old-grid -> new-grid keeping its per-dimension specs, as one SPMD
    launch over the union of the rank sets through the cached
    inter-grid repartition path (morphing back replays the same
    schedules); (4) retarget -- loops are rebuilt on ``new_grid`` and
    their plans re-frozen, so the first post-morph run is an all-hit
    replay, bit-identical in results and trace to an uninterrupted run
    on ``new_grid``.

    Returns the repartition launch's trace (``None`` when every array
    was already on ``new_grid``).  Arrays keep their per-dimension
    distribution kinds; a grid whose ndim differs from the old one
    raises (per-dim specs cannot be re-bound), as does a program over
    array sections -- see ``docs/elasticity.md`` for the failure modes.
    """
    programs = _loop_programs(session)
    for p in programs:
        _refuse_sections(p)
    mach = machine if machine is not None else session.machine
    if mach is None:
        mach = getattr(session.backend, "machine", None)
    if mach is None:
        raise ValidationError(
            "no machine: give the Session one or pass machine= to morph()"
        )

    with _all_locks(programs):
        session.close_backend()

        moves, seen = [], set()
        for p in programs:
            for arr in _storage_arrays(p):
                if arr.uid in seen:
                    continue
                seen.add(arr.uid)
                if _same_grid(arr.grid, new_grid):
                    continue
                moves.append((arr, arr.dist.specs, arr.grid.union(new_grid)))

        trace = None
        if moves:
            launch_grid = new_grid
            for _arr, _specs, scope in moves:
                launch_grid = launch_grid.union(scope)

            def _relayout(ctx):
                for arr, specs, scope in moves:
                    if scope.contains(ctx.rank):
                        yield from ctx.redistribute(arr, specs, grid=new_grid)

            trace = session.run(
                _relayout, machine=mach, grid=launch_grid, backend="simulator"
            )

        for p in programs:
            _refreeze(session, p, new_grid)
        with session._lock:
            if session.grid is not None:
                session.grid = new_grid
    return trace


__all__ = ["Checkpoint", "checkpoint", "restore", "morph", "CHECKPOINT_VERSION"]
