"""Distributed LU factorization: the cyclic-distribution showcase.

Section 2 of the paper introduces the cyclic pattern as "especially
useful in numerical linear algebra, in which the elements are
distributed in a round-robin fashion across the processors."  The
reason is load balance: Gaussian elimination's active window shrinks,
so a block row distribution starves the early processors while a
cyclic one keeps every processor busy until the end.

This module factors a dense matrix without pivoting (diagonally
dominant input assumed, like the paper's tridiagonal solver) using one
doall per elimination step:

    doall (i, j) on owner(A(i, *)):
        A[i, j] = A[i, j] - (A[i, k] / A[k, k]) * A[k, j]

with a companion doall computing the multiplier column.  The pivot row
broadcast is exactly the ghost communication the compiler derives from
the constant subscript ``A[k, j]``.  The benchmark compares block vs
cyclic row distributions: same program, same answers, very different
load balance.
"""

from __future__ import annotations

import numpy as np

from repro.lang import Assign, DistArray, Doall, Owner, ProcessorGrid, Ref, loopvars
from repro.machine.simulator import Machine
from repro.util.errors import ValidationError


def lu_reference(A: np.ndarray) -> np.ndarray:
    """Sequential in-place LU (Doolittle, no pivoting); returns packed LU."""
    A = np.asarray(A, dtype=float).copy()
    n = A.shape[0]
    if A.shape != (n, n):
        raise ValidationError("LU requires a square matrix")
    for k in range(n - 1):
        if A[k, k] == 0.0:
            raise ValidationError(f"zero pivot at step {k}")
        A[k + 1 :, k] /= A[k, k]
        A[k + 1 :, k + 1 :] -= np.outer(A[k + 1 :, k], A[k, k + 1 :])
    return A


def lu_unpack(LU: np.ndarray):
    """Split a packed LU into (L, U) with unit lower diagonal."""
    L = np.tril(LU, -1) + np.eye(LU.shape[0])
    U = np.triu(LU)
    return L, U


def lu_distributed(
    machine: Machine,
    grid: ProcessorGrid,
    A0: np.ndarray,
    dist: str = "cyclic",
    session=None,
):
    """Row-distributed LU on the simulated machine; returns (LU, trace).

    ``dist`` picks the row distribution: "cyclic" (the paper's
    recommendation for linear algebra) or "block" (the strawman whose
    load imbalance the benchmark quantifies).
    """
    n = A0.shape[0]
    if A0.shape != (n, n):
        raise ValidationError("LU requires a square matrix")
    if grid.ndim != 1:
        raise ValidationError("LU uses a 1-D processor grid (rows distributed)")
    A = DistArray((n, n), grid, dist=(dist, "*"), name="A")
    A.from_global(A0)
    i, j = loopvars("i j")

    # one pair of loops per elimination step; plans cache per step
    mult_loops = []
    elim_loops = []
    for k in range(n - 1):
        mult_loops.append(
            Doall(
                vars=(i,),
                ranges=[(k + 1, n - 1)],
                on=Owner(A, (i, None)),
                body=[Assign(A[i, k], A[i, k] / Ref(A, (k, k)))],
                grid=grid,
            )
        )
        elim_loops.append(
            Doall(
                vars=(i, j),
                ranges=[(k + 1, n - 1), (k + 1, n - 1)],
                on=Owner(A, (i, None)),
                body=[Assign(A[i, j], A[i, j] - A[i, k] * A[k, j])],
                grid=grid,
            )
        )

    def program(ctx):
        for k in range(n - 1):
            yield from ctx.doall(mult_loops[k])
            yield from ctx.doall(elim_loops[k])

    from repro.session import run_in

    trace = run_in(program, machine, grid, session)
    return A.to_global(), trace
