"""Variable-coefficient ADI (paper section 4's closing remark).

"Programming ADI with variable coefficients is not much different,
except that there are a number of additional details not germane to
this paper."  This module supplies those details: the PDE

    a(x,y) Uxx + b(x,y) Uyy + c(x,y) U = F

with coefficient *fields* held in distributed arrays.  Two things
change relative to :mod:`repro.tensor.adi`:

* the residual doall multiplies stencil differences by coefficient
  array references (the expression AST supports Ref * Ref products, so
  the loop body is still a single Assign);
* every grid line carries its own tridiagonal system, assembled from
  the processor's local coefficient block -- which is exactly the
  multi-system shape the pipelined solver of Listing 6 exists for.

The iteration is the same defect-correction Peaceman-Rachford scheme;
for smooth positive a, b (and c <= 0) the split operators remain
negative definite and the sweep contracts.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.pipelined import pipelined_node_program
from repro.kernels.substructured import ContiguousMapping, ShuffleMapping, tri_node_program
from repro.kernels.thomas import thomas_solve
from repro.lang import Assign, DistArray, Doall, Owner, ProcessorGrid, loopvars
from repro.machine.simulator import Machine
from repro.machine.translate import translate_ranks
from repro.util.errors import ValidationError
from repro.util.indexing import block_bounds


def default_tau_varcoef(n: int, a: np.ndarray, b: np.ndarray) -> float:
    """PR tau from coefficient-field extremes."""
    amin = float(min(a.min(), b.min()))
    amax = float(max(a.max(), b.max()))
    if amin <= 0:
        raise ValidationError("diffusion coefficients must be positive")
    lam_min = np.pi**2 * amin
    lam_max = 4.0 * n * n * amax
    return 1.0 / np.sqrt(lam_min * lam_max)


def _apply_L(u, a, b, c, n):
    """Variable-coefficient operator on interior points."""
    h2 = (1.0 / n) ** 2
    out = np.zeros_like(u)
    out[1:-1, 1:-1] = (
        a[1:-1, 1:-1] * (u[2:, 1:-1] - 2 * u[1:-1, 1:-1] + u[:-2, 1:-1]) / h2
        + b[1:-1, 1:-1] * (u[1:-1, 2:] - 2 * u[1:-1, 1:-1] + u[1:-1, :-2]) / h2
        + c[1:-1, 1:-1] * u[1:-1, 1:-1]
    )
    return out


def _line_diags(coef_line: np.ndarray, c_line: np.ndarray, n: int, tau: float):
    """Per-line diagonals of (I - tau (coef d2 + c/2)), identity boundaries."""
    h2 = (1.0 / n) ** 2
    lo = np.zeros(n + 1)
    di = np.ones(n + 1)
    up = np.zeros(n + 1)
    t = tau * coef_line[1:-1] / h2
    lo[1:-1] = -t
    up[1:-1] = -t
    di[1:-1] = 1.0 + 2.0 * t - tau * c_line[1:-1] / 2.0
    return lo, di, up


def adi_varcoef_reference(
    f: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    iters: int,
    tau: float | None = None,
) -> np.ndarray:
    """Sequential variable-coefficient PR-ADI."""
    n = f.shape[0] - 1
    if not (f.shape == a.shape == b.shape == c.shape):
        raise ValidationError("f, a, b, c must share a shape")
    if tau is None:
        tau = default_tau_varcoef(n, a, b)
    u = np.zeros_like(f)
    for _ in range(iters):
        r = f - _apply_L(u, a, b, c, n)
        r[0, :] = r[-1, :] = 0.0
        r[:, 0] = r[:, -1] = 0.0
        w = np.zeros_like(f)
        for j in range(n + 1):
            lo, di, up = _line_diags(a[:, j], c[:, j], n, tau)
            w[:, j] = thomas_solve(lo, di, up, r[:, j])
        v = np.zeros_like(f)
        for i in range(n + 1):
            lo, di, up = _line_diags(b[i, :], c[i, :], n, tau)
            v[i, :] = thomas_solve(lo, di, up, w[i, :])
        u = u - 2.0 * tau * v
    return u


# ----------------------------------------------------------------------
# Distributed version
# ----------------------------------------------------------------------


def _build_residual_loop(r, u, F, A, B, C, n, grid):
    i, j = loopvars("i j")
    h2inv = float(n * n)
    lap = (
        A[i, j] * (h2inv * (u[i + 1, j] - 2.0 * u[i, j] + u[i - 1, j]))
        + B[i, j] * (h2inv * (u[i, j + 1] - 2.0 * u[i, j] + u[i, j - 1]))
        + C[i, j] * u[i, j]
    )
    return Doall(
        vars=(i, j),
        ranges=[(1, n - 1), (1, n - 1)],
        on=Owner(r, (i, j)),
        body=[Assign(r[i, j], F[i, j] - lap)],
        grid=grid,
    )


def _solve_lines_var(ctx, grid, rhs_arr, out_arr, coef_arr, c_arr, n, tau,
                     axis, pipelined, phase):
    """Per-line variable-coefficient tridiagonal solves along ``axis``."""
    me = ctx.rank
    coords = grid.coords_of(me)
    if axis == 0:
        group = grid[:, coords[1]].linear
        my_pos = coords[0]
    else:
        group = grid[coords[0], :].linear
        my_pos = coords[1]
    p = len(group)
    lo, hi = block_bounds(n + 1, p, my_pos)
    rhs_local = rhs_arr.local(me)
    out_local = out_arr.local(me)
    coef_local = coef_arr.local(me)
    c_local = c_arr.local(me)
    sys_dim = 1 - axis
    bd = rhs_arr.dim(sys_dim)
    gd = rhs_arr.grid_dim_of(sys_dim)
    sys_coord = coords[gd] if gd is not None else 0
    my_lines = bd.owned_indices(sys_coord)
    h2 = (1.0 / n) ** 2

    def col(arr, s):
        return arr[:, s] if axis == 0 else arr[s, :]

    def diags_for(s_local):
        # local coefficient slice covers only rows lo..hi of the line
        coef = col(coef_local, s_local)
        cc = col(c_local, s_local)
        t = tau * coef / h2
        low = -t
        dia = 1.0 + 2.0 * t - tau * cc / 2.0
        upp = (-t).copy()  # distinct buffer: boundary rows mutate low/upp
        # identity boundary rows live on the first/last processor blocks
        if lo == 0:
            low[0], dia[0], upp[0] = 0.0, 1.0, 0.0
        if hi == n + 1:
            low[-1], dia[-1], upp[-1] = 0.0, 1.0, 0.0
        return low, dia, upp

    if pipelined:
        outs = [dict() for _ in range(len(my_lines))]
        blocks = []
        for s_local in range(len(my_lines)):
            low, dia, upp = diags_for(s_local)
            blocks.append((low, dia, upp, col(rhs_local, s_local).copy()))
        sys_ids = [(phase, axis, int(gl)) for gl in my_lines]
        prog = pipelined_node_program(
            my_pos, p, blocks, ShuffleMapping(p), outs, sys_ids=sys_ids
        )
        yield from translate_ranks(prog, group)
        for s_local in range(len(my_lines)):
            if axis == 0:
                out_local[:, s_local] = outs[s_local][my_pos]
            else:
                out_local[s_local, :] = outs[s_local][my_pos]
    else:
        for s_local, gline in enumerate(my_lines):
            low, dia, upp = diags_for(s_local)
            out = {}
            prog = tri_node_program(
                my_pos, p, (low, dia, upp, col(rhs_local, s_local).copy()),
                ContiguousMapping(p), out, sys_id=(phase, axis, int(gline)),
            )
            yield from translate_ranks(prog, group)
            if axis == 0:
                out_local[:, s_local] = out[my_pos]
            else:
                out_local[s_local, :] = out[my_pos]


def adi_varcoef_solve(
    machine: Machine,
    grid: ProcessorGrid,
    f: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    iters: int,
    tau: float | None = None,
    pipelined: bool = True,
    session=None,
):
    """Distributed variable-coefficient ADI; returns (u_global, trace).

    Runs in ``session`` (a fresh one per call when omitted).
    """
    n = f.shape[0] - 1
    if not (f.shape == a.shape == b.shape == c.shape):
        raise ValidationError("f, a, b, c must share a shape")
    if grid.ndim != 2:
        raise ValidationError("requires a 2-D processor grid")
    for s in grid.shape:
        if s & (s - 1):
            raise ValidationError("grid extents must be powers of two")
    if tau is None:
        tau = default_tau_varcoef(n, a, b)

    dist = ("block", "block")
    u = DistArray(f.shape, grid, dist=dist, name="u")
    F = DistArray(f.shape, grid, dist=dist, name="F")
    A = DistArray(f.shape, grid, dist=dist, name="a")
    B = DistArray(f.shape, grid, dist=dist, name="b")
    C = DistArray(f.shape, grid, dist=dist, name="c")
    r = DistArray(f.shape, grid, dist=dist, name="r")
    w = DistArray(f.shape, grid, dist=dist, name="w")
    v = DistArray(f.shape, grid, dist=dist, name="v")
    for arr, val in ((F, f), (A, a), (B, b), (C, c)):
        arr.from_global(val)

    resid_loop = _build_residual_loop(r, u, F, A, B, C, n, grid)
    i, j = loopvars("i j")
    update_loop = Doall(
        vars=(i, j),
        ranges=[(1, n - 1), (1, n - 1)],
        on=Owner(u, (i, j)),
        body=[Assign(u[i, j], u[i, j] - (2.0 * tau) * v[i, j])],
        grid=grid,
    )

    def program(ctx):
        for it in range(iters):
            yield from ctx.doall(resid_loop)
            yield from _solve_lines_var(
                ctx, grid, r, w, A, C, n, tau, 0, pipelined, phase=(it, "x")
            )
            yield from _solve_lines_var(
                ctx, grid, w, v, B, C, n, tau, 1, pipelined, phase=(it, "y")
            )
            yield from ctx.doall(update_loop)

    from repro.session import run_in

    trace = run_in(program, machine, grid, session)
    return u.to_global(), trace
