"""Tensor product array computations (paper sections 4-5).

Multi-dimensional algorithms built by applying one-dimensional kernels
to lower-dimensional slices of distributed arrays:

* :mod:`repro.tensor.kron` -- Kronecker-product operators and axis-wise
  application utilities (the algebraic definition of "tensor product
  computation");
* :mod:`repro.tensor.poisson` -- model problems, discrete operators and
  sequential reference solvers shared by the algorithms and tests;
* :mod:`repro.tensor.jacobi` -- Listing 3's Jacobi iteration on the DSL;
* :mod:`repro.tensor.adi` -- Listings 7-8: ADI with non-pipelined and
  pipelined parallel tridiagonal solves;
* :mod:`repro.tensor.multigrid2d` -- Listing 11: 2-D multigrid with
  zebra line relaxation and y-semi-coarsening;
* :mod:`repro.tensor.multigrid3d` -- Listings 9-10: 3-D multigrid with
  zebra plane relaxation and z-semi-coarsening, plane solves running on
  processor-grid slices.
"""

from repro.tensor.kron import kron_matvec, kron_matmat, apply_along_axis
from repro.tensor.poisson import (
    laplacian_2d,
    laplacian_3d,
    manufactured_2d,
    manufactured_3d,
)
from repro.tensor.jacobi import jacobi_kf1, jacobi_reference
from repro.tensor.adi import adi_solve, adi_reference
from repro.tensor.multigrid2d import mg2_solve, mg2_reference
from repro.tensor.multigrid3d import mg3_solve, mg3_reference

__all__ = [
    "kron_matvec",
    "kron_matmat",
    "apply_along_axis",
    "laplacian_2d",
    "laplacian_3d",
    "manufactured_2d",
    "manufactured_3d",
    "jacobi_kf1",
    "jacobi_reference",
    "adi_solve",
    "adi_reference",
    "mg2_solve",
    "mg2_reference",
    "mg3_solve",
    "mg3_reference",
]
