"""Kronecker-product operators and axis-wise application.

A "tensor product computation" in the paper's sense manipulates a
multidimensional array by applying 1-D operations along its slices;
algebraically that is the action of ``A_1 (x) A_2 (x) ... (x) A_d`` on a
vectorized d-dimensional array, computed mode-by-mode without ever
forming the Kronecker product.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.util.errors import ValidationError


def apply_along_axis(A: np.ndarray, x: np.ndarray, axis: int) -> np.ndarray:
    """Mode product: apply matrix ``A`` along one axis of ``x``.

    Equivalent to ``np.tensordot`` + transpose but kept explicit: this is
    the sequential heart of every tensor product algorithm in the paper.
    """
    x = np.asarray(x)
    if not 0 <= axis < x.ndim:
        raise ValidationError(f"axis {axis} out of range for ndim {x.ndim}")
    if A.shape[1] != x.shape[axis]:
        raise ValidationError(
            f"operator of width {A.shape[1]} applied to extent {x.shape[axis]}"
        )
    moved = np.moveaxis(x, axis, 0)
    out = np.tensordot(A, moved, axes=(1, 0))
    return np.moveaxis(out, 0, axis)


def kron_matvec(mats: Sequence[np.ndarray], x: np.ndarray) -> np.ndarray:
    """Action of ``kron(mats[0], ..., mats[-1])`` on the tensor ``x``.

    ``x`` must have ndim == len(mats) with ``x.shape[k] == mats[k].shape[1]``.
    Returns a tensor shaped by the operators' row counts.  Cost is
    O(n^{d+1}) instead of the O(n^{2d}) dense product.
    """
    x = np.asarray(x)
    if x.ndim != len(mats):
        raise ValidationError(
            f"{len(mats)} operators require a {len(mats)}-d tensor, got ndim {x.ndim}"
        )
    out = x
    for axis, A in enumerate(mats):
        out = apply_along_axis(np.asarray(A), out, axis)
    return out


def kron_matmat(mats: Sequence[np.ndarray]) -> np.ndarray:
    """Explicit Kronecker product of several matrices (testing helper)."""
    out = np.asarray(mats[0])
    for A in mats[1:]:
        out = np.kron(out, np.asarray(A))
    return out


def solve_along_axis(
    solver: Callable[[np.ndarray], np.ndarray], x: np.ndarray, axis: int
) -> np.ndarray:
    """Apply a 1-D solver to every line of ``x`` along ``axis``.

    ``solver`` maps a (n, m) right-hand-side stack to a (n, m) solution
    stack, so implementations can vectorize over lines (as
    :func:`repro.kernels.thomas.thomas_solve_many` does).
    """
    x = np.asarray(x, dtype=float)
    moved = np.moveaxis(x, axis, 0)
    flat = moved.reshape(moved.shape[0], -1)
    out = solver(flat)
    if out.shape != flat.shape:
        raise ValidationError("solver changed the stack shape")
    return np.moveaxis(out.reshape(moved.shape), 0, axis)
