"""ADI iteration (paper section 4, Listings 7-8).

Peaceman-Rachford ADI in defect-correction form for

    a Uxx + b Uyy + c U = F,   homogeneous Dirichlet boundaries.

Each iteration computes the residual r = F - L u (one stencil doall,
same communication as a Jacobi step -- exactly what the paper says of
``resid``), then solves tridiagonal systems along every x line and every
y line and updates u:

    (I - tau L1) w = r        L1 = a d2/dx2 + c/2
    (I - tau L2) v = w        L2 = b d2/dy2 + c/2
    u <- u - 2 tau v

(the minus sign: r = -L e for the error e, and L is negative definite)

For commuting negative-definite L1, L2 the error amplification per
sweep is (1 - m1)(1 - m2) / ((1 + m1)(1 + m2)) with m_i = -tau lambda_i,
always below one -- the classical PR convergence.

Two variants, as in the paper:

* ``pipelined=False`` (Listing 7): each line is a separate call to the
  parallel tridiagonal solver ``tri`` over the owning processor-grid
  slice;
* ``pipelined=True`` (Listing 8): all of a slice's lines stream through
  one pipelined multi-system solve (``mtrixc``/``mtriyc``).
"""

from __future__ import annotations

import numpy as np

from repro.compiler.commsched import uid_chain
from repro.compiler.schedule import DEFAULT_PLANS, plans_of
from repro.kernels.pipelined import pipelined_node_program
from repro.kernels.substructured import ContiguousMapping, ShuffleMapping, tri_node_program
from repro.kernels.thomas import thomas_solve_many
from repro.lang import Assign, DistArray, Doall, Owner, ProcessorGrid, loopvars
from repro.machine.ops import Mark
from repro.machine.simulator import Machine
from repro.machine.translate import translate_ranks
from repro.tensor.poisson import Coeffs2D, laplacian_2d
from repro.util.errors import ValidationError
from repro.util.indexing import block_bounds


def _line_system(n: int, h2: float, coef: float, shift: float, tau: float):
    """Diagonals of (I - tau (coef * d2 + shift)) with identity boundaries."""
    b = np.zeros(n + 1)
    a = np.ones(n + 1)
    c = np.zeros(n + 1)
    t = tau * coef / h2
    b[1:-1] = -t
    c[1:-1] = -t
    a[1:-1] = 1.0 + 2.0 * t - tau * shift
    return b, a, c


def default_tau(n: int, coeffs: Coeffs2D = Coeffs2D()) -> float:
    """Single-parameter PR tau: 1/sqrt(lambda_min * lambda_max)."""
    lam_min = np.pi**2 * min(coeffs.a, coeffs.b)
    lam_max = 4.0 * n * n * max(coeffs.a, coeffs.b)
    return 1.0 / np.sqrt(lam_min * lam_max)


def adi_reference(
    f: np.ndarray,
    iters: int,
    coeffs: Coeffs2D = Coeffs2D(),
    tau: float | None = None,
) -> np.ndarray:
    """Sequential PR-ADI (the numerics the distributed version must match)."""
    n = f.shape[0] - 1
    if f.shape[0] != f.shape[1]:
        raise ValidationError("ADI example uses square grids")
    if tau is None:
        tau = default_tau(n, coeffs)
    hx2 = (1.0 / n) ** 2
    hy2 = (1.0 / n) ** 2
    bx, ax, cx = _line_system(n, hx2, coeffs.a, coeffs.c / 2.0, tau)
    by, ay, cy = _line_system(n, hy2, coeffs.b, coeffs.c / 2.0, tau)
    u = np.zeros_like(f)
    for _ in range(iters):
        r = f - laplacian_2d(u, coeffs)
        r[0, :] = r[-1, :] = 0.0
        r[:, 0] = r[:, -1] = 0.0
        w = thomas_solve_many(bx, ax, cx, r)          # lines along x (axis 0)
        v = thomas_solve_many(by, ay, cy, w.T).T      # lines along y (axis 1)
        u = u - 2.0 * tau * v
    return u


# ----------------------------------------------------------------------
# Distributed version
# ----------------------------------------------------------------------


def _build_residual_loop(r, u, F, n, hx2, hy2, coeffs, grid):
    i, j = loopvars("i j")
    lap = (
        (coeffs.a / hx2) * (u[i + 1, j] - 2.0 * u[i, j] + u[i - 1, j])
        + (coeffs.b / hy2) * (u[i, j + 1] - 2.0 * u[i, j] + u[i, j - 1])
        + coeffs.c * u[i, j]
    )
    return Doall(
        vars=(i, j),
        ranges=[(1, n - 1), (1, n - 1)],
        on=Owner(r, (i, j)),
        body=[Assign(r[i, j], F[i, j] - lap)],
        grid=grid,
    )


def _build_update_loop(u, v, n, tau, grid):
    i, j = loopvars("i j")
    return Doall(
        vars=(i, j),
        ranges=[(1, n - 1), (1, n - 1)],
        on=Owner(u, (i, j)),
        body=[Assign(u[i, j], u[i, j] - (2.0 * tau) * v[i, j])],
        grid=grid,
    )


class _LinePlan:
    """One rank's precomputed share of a line-solve sweep.

    Deriving the solver group, block bounds and owned lines is pure
    layout information -- loop-invariant across ADI iterations -- so it
    is computed once per (grid, array layout, axis, rank) and replayed
    every sweep, mirroring the compiler's cached communication
    schedules.
    """

    __slots__ = ("group", "p", "my_pos", "lo", "hi", "my_lines")

    def __init__(self, grid, rhs_arr, axis, me):
        coords = grid.coords_of(me)
        if axis == 0:
            group_grid = grid[:, coords[1]]
            my_pos = coords[0]
            line_dim, sys_dim = 0, 1
        else:
            group_grid = grid[coords[0], :]
            my_pos = coords[1]
            line_dim, sys_dim = 1, 0
        self.group = group_grid.linear
        self.p = len(self.group)
        self.my_pos = my_pos
        n_line = rhs_arr.shape[line_dim]
        self.lo, self.hi = block_bounds(n_line, self.p, my_pos)
        # global indices of the lines (systems) I hold along sys_dim
        sys_bd = rhs_arr.dim(sys_dim)
        gd = rhs_arr.grid_dim_of(sys_dim)
        sys_coord = coords[gd] if gd is not None else 0
        self.my_lines = sys_bd.owned_indices(sys_coord)


def _line_plan(ctx, grid, rhs_arr, axis, me) -> tuple[_LinePlan, bool]:
    """Cached :class:`_LinePlan` under the ``"adi-line"`` plan kind.

    Line plans ride in the Session-owned
    :class:`~repro.compiler.schedule.PlanCache` (the default plan cache
    on the legacy session-less path), so ``Session.stats()`` sees
    line-solver reuse next to doall plans and ``clear_plan_cache()`` /
    redistribution purges cover them in one story.  Partial eviction is
    harmless here (a plan rebuild is purely local and deterministic --
    no protocol divergence), so the cache's plain LRU cap suffices.
    """
    key = (grid.key(), rhs_arr.uid, rhs_arr.comm_epoch, axis, me)
    return plans_of(ctx).get(
        "adi-line",
        key,
        lambda: _LinePlan(grid, rhs_arr, axis, me),
        uids=uid_chain(rhs_arr),
    )


def clear_line_plan_cache() -> None:
    """Drop the ADI line plans from the *default* plan cache.

    Line plans live in the Session-owned plan cache now (pass
    ``session=`` to ``adi_solve`` and clear/drop that Session instead);
    this reaches only plans compiled on the legacy session-less path.
    """
    DEFAULT_PLANS.clear_kind("adi-line")


def _solve_lines(ctx, grid, rhs_arr, out_arr, diags, axis, pipelined, phase):
    """Solve a tridiagonal system along ``axis`` for every grid line.

    axis 0: systems run along x; lines indexed by j; the solver group is
    my processor-grid column.  axis 1: transposed.  Implements the
    doall-of-parsub-calls of Listings 7-8.
    """
    b, a, c = diags
    me = ctx.rank
    plan, was_cached = _line_plan(ctx, grid, rhs_arr, axis, me)
    yield Mark(
        "commsched/hit" if was_cached else "commsched/build",
        payload=("adi-lines", axis),
    )
    group = plan.group
    p = plan.p
    my_pos = plan.my_pos
    lo, hi = plan.lo, plan.hi
    rhs_local = rhs_arr.local(me)
    out_local = out_arr.local(me)
    my_lines = plan.my_lines

    def line_block(s_local):
        if axis == 0:
            return rhs_local[:, s_local]
        return rhs_local[s_local, :]

    def store(s_local, x):
        if axis == 0:
            out_local[:, s_local] = x
        else:
            out_local[s_local, :] = x

    if pipelined:
        outs: list[dict[int, np.ndarray]] = [{} for _ in range(len(my_lines))]
        blocks = [
            (b[lo:hi], a[lo:hi], c[lo:hi], line_block(s_local).copy())
            for s_local in range(len(my_lines))
        ]
        sys_ids = [(phase, axis, int(gline)) for gline in my_lines]
        prog = pipelined_node_program(
            my_pos, p, blocks, ShuffleMapping(p), outs, sys_ids=sys_ids
        )
        yield from translate_ranks(prog, group)
        for s_local in range(len(my_lines)):
            store(s_local, outs[s_local][my_pos])
    else:
        for s_local, gline in enumerate(my_lines):
            out: dict[int, np.ndarray] = {}
            blk = (b[lo:hi], a[lo:hi], c[lo:hi], line_block(s_local).copy())
            prog = tri_node_program(
                my_pos, p, blk, ContiguousMapping(p), out,
                sys_id=(phase, axis, int(gline)),
            )
            yield from translate_ranks(prog, group)
            store(s_local, out[my_pos])


def adi_solve(
    machine: Machine,
    grid: ProcessorGrid,
    f: np.ndarray,
    iters: int,
    coeffs: Coeffs2D = Coeffs2D(),
    tau: float | None = None,
    pipelined: bool = False,
    session=None,
):
    """Distributed ADI (Listing 7, or Listing 8 when ``pipelined``).

    Requires a 2-D processor grid with power-of-two extents.  Runs in
    ``session`` (a fresh one per call when omitted, so repeated solves
    never alias each other's schedules).  Returns (u_global, trace).
    """
    n = f.shape[0] - 1
    if f.shape[0] != f.shape[1]:
        raise ValidationError("ADI example uses square grids")
    if grid.ndim != 2:
        raise ValidationError("ADI requires a 2-D processor grid")
    for s in grid.shape:
        if s & (s - 1):
            raise ValidationError("grid extents must be powers of two")
    if n + 1 < 2 * max(grid.shape):
        raise ValidationError("grid too coarse for this processor array")
    if tau is None:
        tau = default_tau(n, coeffs)
    hx2 = (1.0 / n) ** 2
    hy2 = (1.0 / n) ** 2
    bx, ax, cx = _line_system(n, hx2, coeffs.a, coeffs.c / 2.0, tau)
    by, ay, cy = _line_system(n, hy2, coeffs.b, coeffs.c / 2.0, tau)

    dist = ("block", "block")
    u = DistArray(f.shape, grid, dist=dist, name="u")
    F = DistArray(f.shape, grid, dist=dist, name="F")
    r = DistArray(f.shape, grid, dist=dist, name="r")
    w = DistArray(f.shape, grid, dist=dist, name="w")
    v = DistArray(f.shape, grid, dist=dist, name="v")
    F.from_global(f)

    resid_loop = _build_residual_loop(r, u, F, n, hx2, hy2, coeffs, grid)
    update_loop = _build_update_loop(u, v, n, tau, grid)

    def program(ctx):
        for it in range(iters):
            yield from ctx.doall(resid_loop)
            yield from _solve_lines(
                ctx, grid, r, w, (bx, ax, cx), 0, pipelined, phase=(it, "x")
            )
            yield from _solve_lines(
                ctx, grid, w, v, (by, ay, cy), 1, pipelined, phase=(it, "y")
            )
            yield from ctx.doall(update_loop)

    from repro.session import run_in

    trace = run_in(program, machine, grid, session)
    return u.to_global(), trace
