"""Three-dimensional multigrid with zebra plane relaxation (Listings 9-10).

Solves ``a Uxx + b Uyy + g Uzz + c U = F`` with homogeneous Dirichlet
boundaries.  Exactly the structure of Listing 9:

* ``resid3`` -- a 7-point stencil doall;
* **zebra plane relaxation**: for every even z-plane (then every odd
  one) solve the plane's correction problem

      (a dxx + b dyy + (c - 2 g/hz^2)) delta = r(*, *, k)

  by calling :class:`~repro.tensor.multigrid2d.MG2` on the plane
  *section* ``u[:, :, k]``, which inherits a one-dimensional slice of
  the processor array -- the paper's central compositionality claim.
  Planes owned by different processor-grid columns relax concurrently;
* **semi-coarsening in z** (``rest3``/``intrp3``): full weighting across
  planes and Listing 10's even/odd plane interpolation, both doalls;
* recursion until nz == 2, where the single interior plane's solve is
  the coarsest-level correction.

With ``dist=("*", "*", "block")`` the planes are entirely local and the
plane solves run sequentially per processor -- the alternative
distribution discussed at the end of section 5; the distribution
ablation benchmark compares the two.

All loops are built once (in ``__init__``) and re-executed every V-cycle,
so they ride the compiler's cached communication schedules: each doall's
plan is compiled once per process (one ``commsched/build`` trace mark,
recorded by whichever rank compiles it first), and every other execution
-- the remaining ranks of that sweep and all later sweeps -- replays the
frozen gather/scatter schedule (``commsched/hit``).
``trace.schedule_hit_rate()`` reports the reuse, counted per rank per
call.
"""

from __future__ import annotations

import numpy as np

from repro.lang import Assign, DistArray, Doall, Owner, ProcessorGrid, loopvars
from repro.machine.ops import Compute, Mark
from repro.machine.simulator import Machine
from repro.tensor.multigrid2d import MG2, mg2_vcycle_ref
from repro.tensor.poisson import Coeffs2D, Coeffs3D
from repro.util.errors import ValidationError


def _check_pow2(n: int, what: str) -> None:
    if n < 2 or (n & (n - 1)):
        raise ValidationError(f"{what} must be a power of two >= 2, got {n}")


class MG3:
    """Multigrid hierarchy for one 3-D problem (z-semi-coarsened)."""

    def __init__(
        self,
        u: DistArray,
        f: DistArray,
        grid: ProcessorGrid,
        coeffs: Coeffs3D = Coeffs3D(),
        plane_cycles: int = 2,
        name: str = "mg3",
    ):
        nx, ny, nz = (s - 1 for s in u.shape)
        _check_pow2(nz, "nz")
        _check_pow2(ny, "ny")
        self.grid = grid
        self.coeffs = coeffs
        self.plane_cycles = plane_cycles
        self.nx, self.ny = nx, ny
        dist = MG2._dist_of(u)
        self.levels: list[dict] = []
        nz_l = nz
        lvl = 0
        while True:
            if lvl == 0:
                ul, fl = u, f
            else:
                ul = DistArray((nx + 1, ny + 1, nz_l + 1), grid, dist=dist,
                               name=f"{name}_u{lvl}")
                fl = DistArray((nx + 1, ny + 1, nz_l + 1), grid, dist=dist,
                               name=f"{name}_f{lvl}")
            rl = DistArray((nx + 1, ny + 1, nz_l + 1), grid, dist=dist,
                           name=f"{name}_r{lvl}")
            dl = DistArray((nx + 1, ny + 1, nz_l + 1), grid, dist=dist,
                           name=f"{name}_d{lvl}")
            self.levels.append(self._build_level(ul, fl, rl, dl, nz_l))
            if nz_l <= 2:
                break
            nz_l //= 2
            lvl += 1
        for lev in range(len(self.levels) - 1):
            fine, coarse = self.levels[lev], self.levels[lev + 1]
            fine["restrict"] = self._build_restrict(fine["r"], coarse["f"], fine["nz"])
            fine["interp_even"], fine["interp_odd"] = self._build_interp(
                fine["u"], coarse["u"], fine["nz"]
            )

    # ------------------------------------------------------------------

    def _build_level(self, u, f, r, d, nz):
        c = self.coeffs
        nx, ny = self.nx, self.ny
        hx2, hy2, hz2 = (1.0 / nx) ** 2, (1.0 / ny) ** 2, (1.0 / nz) ** 2
        i, j, k = loopvars("i j k")
        lap = (
            (c.a / hx2) * (u[i + 1, j, k] - 2.0 * u[i, j, k] + u[i - 1, j, k])
            + (c.b / hy2) * (u[i, j + 1, k] - 2.0 * u[i, j, k] + u[i, j - 1, k])
            + (c.g / hz2) * (u[i, j, k + 1] - 2.0 * u[i, j, k] + u[i, j, k - 1])
            + c.c * u[i, j, k]
        )
        resid = Doall(
            vars=(i, j, k),
            ranges=[(1, nx - 1), (1, ny - 1), (1, nz - 1)],
            on=Owner(u, (i, j, k)),
            body=[Assign(r[i, j, k], f[i, j, k] - lap)],
            grid=self.grid,
        )
        # per-plane MG2 hierarchies for the shifted 2-D correction problem
        plane_coeffs = Coeffs2D(a=c.a, b=c.b, c=c.c - 2.0 * c.g / hz2)
        plane_mgs: dict[int, MG2] = {}
        add_loops: dict[int, Doall] = {}
        for kk in range(1, nz):
            u_sec = u[:, :, kk]
            d_sec = d[:, :, kk]
            r_sec = r[:, :, kk]
            mg = MG2(d_sec, r_sec, u_sec.grid, plane_coeffs,
                     name=f"pl{nz}_{kk}")
            plane_mgs[kk] = mg
            ii, jj = loopvars("i j")
            add_loops[kk] = Doall(
                vars=(ii, jj),
                ranges=[(1, nx - 1), (1, ny - 1)],
                on=Owner(u_sec, (ii, jj)),
                body=[Assign(u_sec[ii, jj], u_sec[ii, jj] + d_sec[ii, jj])],
                grid=u_sec.grid,
            )
        return {
            "u": u, "f": f, "r": r, "d": d, "nz": nz,
            "resid": resid, "plane_mgs": plane_mgs, "add": add_loops,
        }

    def _build_restrict(self, r_fine, f_coarse, nz_fine):
        nzc = nz_fine // 2
        i, j, kc = loopvars("i j kc")
        return Doall(
            vars=(i, j, kc),
            ranges=[(1, self.nx - 1), (1, self.ny - 1), (1, nzc - 1)],
            on=Owner(f_coarse, (i, j, kc)),
            body=[
                Assign(
                    f_coarse[i, j, kc],
                    0.25 * (r_fine[i, j, 2 * kc - 1] + 2.0 * r_fine[i, j, 2 * kc]
                            + r_fine[i, j, 2 * kc + 1]),
                )
            ],
            grid=self.grid,
        )

    def _build_interp(self, u_fine, u_coarse, nz_fine):
        i, j, k = loopvars("i j k")
        even = Doall(
            vars=(i, j, k),
            ranges=[(1, self.nx - 1), (1, self.ny - 1), (2, nz_fine - 2, 2)],
            on=Owner(u_fine, (i, j, k)),
            body=[Assign(u_fine[i, j, k], u_fine[i, j, k] + u_coarse[i, j, k / 2])],
            grid=self.grid,
        ) if nz_fine >= 4 else None
        odd = Doall(
            vars=(i, j, k),
            ranges=[(1, self.nx - 1), (1, self.ny - 1), (1, nz_fine - 1, 2)],
            on=Owner(u_fine, (i, j, k)),
            body=[
                Assign(
                    u_fine[i, j, k],
                    u_fine[i, j, k]
                    + 0.5 * (u_coarse[i, j, (k - 1) / 2] + u_coarse[i, j, (k + 1) / 2]),
                )
            ],
            grid=self.grid,
        )
        return even, odd

    # ------------------------------------------------------------------

    def _zebra_planes(self, ctx, level: int, parity: str):
        """Zebra relaxation on planes of one parity (Listing 9's doalls)."""
        lv = self.levels[level]
        nz = lv["nz"]
        yield from ctx.doall(lv["resid"])
        lo = 2 if parity == "even" else 1
        me = ctx.rank
        for kk in range(lo, nz, 2):
            mg = lv["plane_mgs"][kk]
            sec_grid = mg.grid
            if not sec_grid.contains(me):
                continue  # another processor column owns this plane
            yield Mark("mg3/plane", payload=(level, kk))
            d_sec = lv["d"][:, :, kk]
            if d_sec.grid.contains(me):
                d_sec.local(me).fill(0.0)
                yield Compute(flops=float(d_sec.local(me).size), label="zero_delta")
            yield from mg.solve(ctx, self.plane_cycles)
            yield from ctx.doall(lv["add"][kk])

    def vcycle(self, ctx, level: int = 0):
        """Listing 9: relax even planes, odd planes, then coarse-grid."""
        lv = self.levels[level]
        yield Mark("mg3/level", payload=(level, lv["nz"]))
        yield from self._zebra_planes(ctx, level, "even")
        yield from self._zebra_planes(ctx, level, "odd")
        if level + 1 < len(self.levels):
            yield from ctx.doall(lv["resid"])
            coarse = self.levels[level + 1]
            me = ctx.rank
            for arr in (coarse["f"], coarse["u"]):
                arr.local(me).fill(0.0)
            yield Compute(flops=float(coarse["f"].local(me).size), label="zero_coarse")
            yield from ctx.doall(lv["restrict"])
            yield from self.vcycle(ctx, level + 1)
            if lv["interp_even"] is not None:
                yield from ctx.doall(lv["interp_even"])
            yield from ctx.doall(lv["interp_odd"])

    def solve(self, ctx, cycles: int):
        for _ in range(cycles):
            yield from self.vcycle(ctx)


# ----------------------------------------------------------------------
# Sequential reference (identical arithmetic)
# ----------------------------------------------------------------------


def _lap3(u, nx, ny, nz, c: Coeffs3D):
    hx2, hy2, hz2 = (1.0 / nx) ** 2, (1.0 / ny) ** 2, (1.0 / nz) ** 2
    out = np.zeros_like(u)
    core = u[1:-1, 1:-1, 1:-1]
    out[1:-1, 1:-1, 1:-1] = (
        c.a * (u[2:, 1:-1, 1:-1] - 2 * core + u[:-2, 1:-1, 1:-1]) / hx2
        + c.b * (u[1:-1, 2:, 1:-1] - 2 * core + u[1:-1, :-2, 1:-1]) / hy2
        + c.g * (u[1:-1, 1:-1, 2:] - 2 * core + u[1:-1, 1:-1, :-2]) / hz2
        + c.c * core
    )
    return out


def _zebra_planes_ref(u, f, nx, ny, nz, coeffs: Coeffs3D, parity, plane_cycles):
    hz2 = (1.0 / nz) ** 2
    r = f - _lap3(u, nx, ny, nz, coeffs)
    plane_coeffs = Coeffs2D(a=coeffs.a, b=coeffs.b, c=coeffs.c - 2.0 * coeffs.g / hz2)
    lo = 2 if parity == "even" else 1
    for kk in range(lo, nz, 2):
        delta = np.zeros((nx + 1, ny + 1))
        for _ in range(plane_cycles):
            mg2_vcycle_ref(delta, r[:, :, kk], plane_coeffs)
        u[1:-1, 1:-1, kk] += delta[1:-1, 1:-1]


def mg3_vcycle_ref(u, f, coeffs: Coeffs3D, plane_cycles: int):
    nx, ny, nz = (s - 1 for s in u.shape)
    _zebra_planes_ref(u, f, nx, ny, nz, coeffs, "even", plane_cycles)
    _zebra_planes_ref(u, f, nx, ny, nz, coeffs, "odd", plane_cycles)
    if nz > 2:
        r = f - _lap3(u, nx, ny, nz, coeffs)
        nzc = nz // 2
        fc = np.zeros((nx + 1, ny + 1, nzc + 1))
        kc = np.arange(1, nzc)
        fc[1:-1, 1:-1, 1:nzc] = 0.25 * (
            r[1:-1, 1:-1, 2 * kc - 1]
            + 2.0 * r[1:-1, 1:-1, 2 * kc]
            + r[1:-1, 1:-1, 2 * kc + 1]
        )
        uc = np.zeros_like(fc)
        mg3_vcycle_ref(uc, fc, coeffs, plane_cycles)
        ke = np.arange(2, nz - 1, 2)
        u[1:-1, 1:-1, ke] += uc[1:-1, 1:-1, ke // 2]
        ko = np.arange(1, nz, 2)
        u[1:-1, 1:-1, ko] += 0.5 * (
            uc[1:-1, 1:-1, (ko - 1) // 2] + uc[1:-1, 1:-1, (ko + 1) // 2]
        )


def mg3_reference(
    f: np.ndarray,
    cycles: int,
    coeffs: Coeffs3D = Coeffs3D(),
    plane_cycles: int = 2,
) -> np.ndarray:
    """Sequential mg3: ``cycles`` V-cycles from a zero initial guess."""
    u = np.zeros_like(np.asarray(f, dtype=float))
    for _ in range(cycles):
        mg3_vcycle_ref(u, np.asarray(f, dtype=float), coeffs, plane_cycles)
    return u


def mg3_solve(
    machine: Machine,
    grid: ProcessorGrid,
    f: np.ndarray,
    cycles: int,
    coeffs: Coeffs3D = Coeffs3D(),
    plane_cycles: int = 2,
    dist=("*", "block", "block"),
    session=None,
):
    """Distributed mg3; returns (u_global, trace).

    ``dist`` selects the section-5 distribution alternative:
    ``("*", "block", "block")`` (plane solves parallel over grid columns)
    or ``("*", "*", "block")`` (plane solves sequential per processor).
    """
    n_dist = sum(1 for s in dist if s != "*")
    if grid.ndim != n_dist:
        raise ValidationError("grid ndim must match distributed dims")
    u = DistArray(f.shape, grid, dist=dist, name="u3")
    F = DistArray(f.shape, grid, dist=dist, name="f3")
    F.from_global(f)
    mg = MG3(u, F, grid, coeffs, plane_cycles=plane_cycles)

    def program(ctx):
        yield from mg.solve(ctx, cycles)

    from repro.session import run_in

    trace = run_in(program, machine, grid, session)
    return u.to_global(), trace
