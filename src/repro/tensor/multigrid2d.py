"""Two-dimensional multigrid with zebra line relaxation (Listing 11).

Solves ``a Uxx + b Uyy + c U = F`` on an (nx+1) x (ny+1) grid with
homogeneous Dirichlet boundaries.  The algorithm is the paper's ``mg2``:

* **zebra relaxation**: solve every even-numbered y-line exactly (a
  tridiagonal system along x), then every odd-numbered line.  The x
  dimension is undistributed (``dist (*, block)``), so each line solve
  is the local ``seqtri`` of Listing 11, while the right-hand-side
  stencil (neighbor lines) is a compiled doall with automatic ghost
  exchange;
* **semi-coarsening**: the grid coarsens in y only; restriction is
  full weighting across lines and interpolation is Listing 10's
  even/odd-line formula, both expressed as doalls whose rational ``j/2``
  subscripts the affine compiler evaluates exactly;
* recursion bottoms out at ny == 2, where the single interior line's
  exact solve makes the coarsest level direct.

The same class serves the plane solves of :mod:`repro.tensor.multigrid3d`
by operating on plane *sections* of three-dimensional arrays, running on
the processor-grid slice the section inherits -- exactly how ``mg2``
receives ``u(*, *, k)`` and a one-dimensional processor array in the
paper.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.pipelined import pipelined_node_program
from repro.kernels.substructured import ShuffleMapping
from repro.kernels.thomas import thomas_solve_many
from repro.lang import Assign, DistArray, Doall, Owner, ProcessorGrid, loopvars
from repro.lang.array import BaseDistArray
from repro.machine.ops import Compute, Mark
from repro.machine.simulator import Machine
from repro.machine.translate import translate_ranks
from repro.tensor.poisson import Coeffs2D
from repro.util.errors import ValidationError
from repro.util.indexing import block_bounds


def _check_pow2(n: int, what: str) -> None:
    if n < 2 or (n & (n - 1)):
        raise ValidationError(f"{what} must be a power of two >= 2, got {n}")


class MG2:
    """Multigrid hierarchy for one 2-D problem on one (sub)grid.

    Construction precompiles every doall of every level; ``vcycle`` is a
    generator of machine ops executed SPMD by the grid's ranks.
    """

    def __init__(
        self,
        u: BaseDistArray,
        f: BaseDistArray,
        grid: ProcessorGrid,
        coeffs: Coeffs2D = Coeffs2D(),
        name: str = "mg2",
    ):
        nx = u.shape[0] - 1
        ny = u.shape[1] - 1
        _check_pow2(ny, "ny")
        if u.shape != f.shape:
            raise ValidationError("u and f must share a shape")
        self.grid = grid
        self.coeffs = coeffs
        self.nx = nx
        self.levels: list[dict] = []
        ny_l = ny
        lvl = 0
        while True:
            if lvl == 0:
                ul, fl = u, f
            else:
                ul = DistArray((nx + 1, ny_l + 1), grid, dist=self._dist_of(u),
                               name=f"{name}_u{lvl}")
                fl = DistArray((nx + 1, ny_l + 1), grid, dist=self._dist_of(u),
                               name=f"{name}_f{lvl}")
            tmp = DistArray((nx + 1, ny_l + 1), grid, dist=self._dist_of(u),
                            name=f"{name}_t{lvl}")
            rl = DistArray((nx + 1, ny_l + 1), grid, dist=self._dist_of(u),
                           name=f"{name}_r{lvl}")
            self.levels.append(self._build_level(ul, fl, tmp, rl, ny_l))
            if ny_l <= 2:
                break
            ny_l //= 2
            lvl += 1
        # link restriction/interpolation loops between adjacent levels
        for lev in range(len(self.levels) - 1):
            fine = self.levels[lev]
            coarse = self.levels[lev + 1]
            fine["restrict"] = self._build_restrict(fine["r"], coarse["f"], fine["ny"])
            fine["interp_even"], fine["interp_odd"] = self._build_interp(
                fine["u"], coarse["u"], fine["ny"]
            )

    @staticmethod
    def _dist_of(arr: BaseDistArray):
        """Per-dim distribution spec string for temp allocation."""
        specs = []
        for k in range(arr.ndim):
            specs.append("*" if arr.grid_dim_of(k) is None else "block")
        return tuple(specs)

    # ------------------------------------------------------------------
    # Loop construction
    # ------------------------------------------------------------------

    def _build_level(self, u, f, tmp, r, ny):
        c = self.coeffs
        nx = self.nx
        hx2 = (1.0 / nx) ** 2
        hy2 = (1.0 / ny) ** 2
        i, j = loopvars("i j")
        rhs = f[i, j] - (c.b / hy2) * (u[i, j - 1] + u[i, j + 1])
        zebra = {}
        for parity, lo in (("even", 2), ("odd", 1)):
            hi = ny - 2 if parity == "even" else ny - 1
            if hi < lo:
                zebra[parity] = None
                continue
            zebra[parity] = Doall(
                vars=(i, j),
                ranges=[(1, nx - 1), (lo, hi, 2)],
                on=Owner(u, (i, j)),
                body=[Assign(tmp[i, j], rhs)],
                grid=self.grid,
            )
        lap = (
            (c.a / hx2) * (u[i + 1, j] - 2.0 * u[i, j] + u[i - 1, j])
            + (c.b / hy2) * (u[i, j + 1] - 2.0 * u[i, j] + u[i, j - 1])
            + c.c * u[i, j]
        )
        resid = Doall(
            vars=(i, j),
            ranges=[(1, nx - 1), (1, ny - 1)],
            on=Owner(u, (i, j)),
            body=[Assign(r[i, j], f[i, j] - lap)],
            grid=self.grid,
        )
        # line system along x shared by all lines at this level
        diag = c.c - 2.0 * c.a / hx2 - 2.0 * c.b / hy2
        off = c.a / hx2
        bx = np.zeros(nx + 1)
        ax = np.ones(nx + 1)
        cx = np.zeros(nx + 1)
        bx[1:-1] = off
        cx[1:-1] = off
        ax[1:-1] = diag
        return {
            "u": u, "f": f, "tmp": tmp, "r": r, "ny": ny,
            "zebra": zebra, "resid": resid, "line": (bx, ax, cx),
        }

    def _build_restrict(self, r_fine, f_coarse, ny_fine):
        nyc = ny_fine // 2
        i, jc = loopvars("i jc")
        return Doall(
            vars=(i, jc),
            ranges=[(1, self.nx - 1), (1, nyc - 1)],
            on=Owner(f_coarse, (i, jc)),
            body=[
                Assign(
                    f_coarse[i, jc],
                    0.25 * (r_fine[i, 2 * jc - 1] + 2.0 * r_fine[i, 2 * jc]
                            + r_fine[i, 2 * jc + 1]),
                )
            ],
            grid=self.grid,
        )

    def _build_interp(self, u_fine, u_coarse, ny_fine):
        i, j = loopvars("i j")
        even = Doall(
            vars=(i, j),
            ranges=[(1, self.nx - 1), (2, ny_fine - 2, 2)],
            on=Owner(u_fine, (i, j)),
            body=[Assign(u_fine[i, j], u_fine[i, j] + u_coarse[i, j / 2])],
            grid=self.grid,
        ) if ny_fine >= 4 else None
        odd = Doall(
            vars=(i, j),
            ranges=[(1, self.nx - 1), (1, ny_fine - 1, 2)],
            on=Owner(u_fine, (i, j)),
            body=[
                Assign(
                    u_fine[i, j],
                    u_fine[i, j]
                    + 0.5 * (u_coarse[i, (j - 1) / 2] + u_coarse[i, (j + 1) / 2]),
                )
            ],
            grid=self.grid,
        )
        return even, odd

    # ------------------------------------------------------------------
    # Execution (SPMD generators)
    # ------------------------------------------------------------------

    def _my_parity_lines(self, u, rank, ny, parity):
        """Interior lines of one parity owned by this rank along dim 1."""
        bd = u.dim(1)
        g = u.grid_dim_of(1)
        coord = u.grid.coords_of(rank)[g] if g is not None else 0
        owned = bd.owned_indices(coord)
        want = 0 if parity == "even" else 1
        lines = [int(j) for j in owned if 0 < j < ny and j % 2 == want]
        loc = [int(bd.local_index(j)) for j in lines]
        return lines, loc

    def _zebra_sweep(self, ctx, level: int, parity: str):
        """One half-sweep: rhs doall + exact line solves.

        When the x dimension is undistributed (the paper's default) each
        line solve is the local ``seqtri`` of Listing 11.  When x is
        *distributed* -- the three-dimensional processor array variant
        section 5 discusses -- the lines of this parity stream through
        the pipelined parallel tridiagonal solver over the x-subgrid.
        """
        lv = self.levels[level]
        loop = lv["zebra"][parity]
        if loop is None:
            return
        yield from ctx.doall(loop)
        u, tmp, ny = lv["u"], lv["tmp"], lv["ny"]
        me = ctx.rank
        bx, ax, cx = lv["line"]
        lines, loc = self._my_parity_lines(u, me, ny, parity)
        ul = u.local(me)
        tl = tmp.local(me)
        g0 = u.grid_dim_of(0)
        if g0 is None:
            # local path: every line solve is sequential (Listing 11 seqtri)
            if not lines:
                return
            rhs = tl[:, loc].copy()
            rhs[0, :] = 0.0
            rhs[-1, :] = 0.0
            sol = thomas_solve_many(bx, ax, cx, rhs)
            ul[:, loc] = sol
            yield Compute(flops=8.0 * (self.nx + 1) * len(lines), label="zebra_lines")
            return
        # parallel path: distribute each line solve over the x-subgrid
        coords = u.grid.coords_of(me)
        key = [coords[d] for d in range(u.grid.ndim)]
        key[g0] = slice(None)
        group_grid = u.grid[tuple(key)]
        group = group_grid.linear
        p = len(group)
        my_pos = coords[g0]
        lo, hi = block_bounds(self.nx + 1, p, my_pos)
        phase = ctx.next_tag(group_grid)
        blocks = []
        for s_local in loc:
            rhs_line = tl[:, s_local].copy()
            if lo == 0:
                rhs_line[0] = 0.0
            if hi == self.nx + 1:
                rhs_line[-1] = 0.0
            blocks.append((bx[lo:hi], ax[lo:hi], cx[lo:hi], rhs_line))
        outs = [dict() for _ in blocks]
        sys_ids = [(phase, j) for j in lines]
        prog = pipelined_node_program(
            my_pos, p, blocks, ShuffleMapping(p), outs, sys_ids=sys_ids
        )
        yield from translate_ranks(prog, group)
        for s_local, out in zip(loc, outs):
            ul[:, s_local] = out[my_pos]

    def _zero(self, ctx, arr):
        if arr.grid.contains(ctx.rank):
            arr.local(ctx.rank).fill(0.0)
            yield Compute(flops=float(arr.local(ctx.rank).size), label="zero")

    def vcycle(self, ctx, level: int = 0):
        """One V(1,1) cycle from ``level`` downward (generator of ops)."""
        lv = self.levels[level]
        yield Mark("mg2/level", payload=(level, lv["ny"]))
        yield from self._zebra_sweep(ctx, level, "even")
        yield from self._zebra_sweep(ctx, level, "odd")
        if level + 1 < len(self.levels):
            yield from ctx.doall(lv["resid"])
            coarse = self.levels[level + 1]
            yield from self._zero(ctx, coarse["f"])
            yield from ctx.doall(lv["restrict"])
            yield from self._zero(ctx, coarse["u"])
            yield from self.vcycle(ctx, level + 1)
            if lv["interp_even"] is not None:
                yield from ctx.doall(lv["interp_even"])
            yield from ctx.doall(lv["interp_odd"])
            yield from self._zebra_sweep(ctx, level, "even")
            yield from self._zebra_sweep(ctx, level, "odd")

    def solve(self, ctx, cycles: int):
        for _ in range(cycles):
            yield from self.vcycle(ctx)


# ----------------------------------------------------------------------
# Sequential reference (identical arithmetic)
# ----------------------------------------------------------------------


def _zebra_sweep_ref(u, f, ny, nx, coeffs, parity):
    hx2 = (1.0 / nx) ** 2
    hy2 = (1.0 / ny) ** 2
    lo = 2 if parity == "even" else 1
    hi = ny - 2 if parity == "even" else ny - 1
    if hi < lo:
        return
    diag = coeffs.c - 2.0 * coeffs.a / hx2 - 2.0 * coeffs.b / hy2
    off = coeffs.a / hx2
    bx = np.zeros(nx + 1)
    ax = np.ones(nx + 1)
    cx = np.zeros(nx + 1)
    bx[1:-1] = off
    cx[1:-1] = off
    ax[1:-1] = diag
    lines = list(range(lo, hi + 1, 2))
    rhs = np.zeros((nx + 1, len(lines)))
    for col, j in enumerate(lines):
        rhs[1:-1, col] = f[1:-1, j] - (coeffs.b / hy2) * (u[1:-1, j - 1] + u[1:-1, j + 1])
    sol = thomas_solve_many(bx, ax, cx, rhs)
    for col, j in enumerate(lines):
        u[:, j] = sol[:, col]


def mg2_vcycle_ref(u, f, coeffs: Coeffs2D):
    """Sequential V-cycle with the same sweeps/transfer operators."""
    nx = u.shape[0] - 1
    ny = u.shape[1] - 1
    _zebra_sweep_ref(u, f, ny, nx, coeffs, "even")
    _zebra_sweep_ref(u, f, ny, nx, coeffs, "odd")
    if ny > 2:
        r = f - _lap2(u, nx, ny, coeffs)
        nyc = ny // 2
        fc = np.zeros((nx + 1, nyc + 1))
        jc = np.arange(1, nyc)
        fc[1:-1, 1:nyc] = 0.25 * (
            r[1:-1, 2 * jc - 1] + 2.0 * r[1:-1, 2 * jc] + r[1:-1, 2 * jc + 1]
        )
        uc = np.zeros_like(fc)
        mg2_vcycle_ref(uc, fc, coeffs)
        je = np.arange(2, ny - 1, 2)
        u[1:-1, je] += uc[1:-1, je // 2]
        jo = np.arange(1, ny, 2)
        u[1:-1, jo] += 0.5 * (uc[1:-1, (jo - 1) // 2] + uc[1:-1, (jo + 1) // 2])
        _zebra_sweep_ref(u, f, ny, nx, coeffs, "even")
        _zebra_sweep_ref(u, f, ny, nx, coeffs, "odd")


def _lap2(u, nx, ny, coeffs):
    hx2 = (1.0 / nx) ** 2
    hy2 = (1.0 / ny) ** 2
    out = np.zeros_like(u)
    out[1:-1, 1:-1] = (
        coeffs.a * (u[2:, 1:-1] - 2 * u[1:-1, 1:-1] + u[:-2, 1:-1]) / hx2
        + coeffs.b * (u[1:-1, 2:] - 2 * u[1:-1, 1:-1] + u[1:-1, :-2]) / hy2
        + coeffs.c * u[1:-1, 1:-1]
    )
    return out


def mg2_reference(
    f: np.ndarray, cycles: int, coeffs: Coeffs2D = Coeffs2D()
) -> np.ndarray:
    """Sequential mg2: ``cycles`` V-cycles from a zero initial guess."""
    u = np.zeros_like(np.asarray(f, dtype=float))
    for _ in range(cycles):
        mg2_vcycle_ref(u, np.asarray(f, dtype=float), coeffs)
    return u


def mg2_solve(
    machine: Machine,
    grid: ProcessorGrid,
    f: np.ndarray,
    cycles: int,
    coeffs: Coeffs2D = Coeffs2D(),
    session=None,
):
    """Distributed mg2 on a 1-D processor grid; returns (u, trace)."""
    if grid.ndim != 1:
        raise ValidationError("mg2 runs on a 1-D processor grid")
    u = DistArray(f.shape, grid, dist=("*", "block"), name="u2")
    F = DistArray(f.shape, grid, dist=("*", "block"), name="f2")
    F.from_global(f)
    mg = MG2(u, F, grid, coeffs)

    def program(ctx):
        yield from mg.solve(ctx, cycles)

    from repro.session import run_in

    trace = run_in(program, machine, grid, session)
    return u.to_global(), trace
