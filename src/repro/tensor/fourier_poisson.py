"""Fourier-tridiagonal fast Poisson solver (kernel composition).

The introduction's claim is that tensor product algorithms combine 1-D
kernels -- "cubic spline fitting routines, Fast Fourier Transforms ...
but tridiagonal solvers are the most commonly used."  This module
composes *both* distributed kernels into the classic FACR-style fast
solver for

    Uxx + Uyy = F,   periodic in x, homogeneous Dirichlet in y,

on an nx x (ny+1) grid:

1. FFT every x-row of F (binary-exchange kernel along the distributed
   x dimension);
2. for each Fourier mode k solve the tridiagonal system
   ``(d2/dy2 - lambda_k) u_hat_k = f_hat_k`` along y (pipelined
   multi-system substructured kernel);
3. inverse FFT back to physical space.

The zero mode with all-Dirichlet data is well posed; correctness is
verified against a dense solve in the tests.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.fft import fft_node_program
from repro.kernels.thomas import thomas_solve
from repro.machine.ops import Compute, Recv, Send
from repro.machine.simulator import Machine
from repro.session import launch
from repro.util.errors import ValidationError


def _eigenvalues_x(nx: int) -> np.ndarray:
    """Eigenvalues of the periodic second-difference operator / hx^2."""
    hx2 = (1.0 / nx) ** 2
    k = np.arange(nx)
    return (2.0 * np.cos(2.0 * np.pi * k / nx) - 2.0) / hx2


def _mode_system(lam: float, ny: int):
    """Diagonals of (d2/dy2 + lam) with Dirichlet identity boundaries."""
    hy2 = (1.0 / ny) ** 2
    b = np.zeros(ny + 1)
    a = np.ones(ny + 1)
    c = np.zeros(ny + 1)
    b[1:-1] = 1.0 / hy2
    c[1:-1] = 1.0 / hy2
    a[1:-1] = -2.0 / hy2 + lam
    return b, a, c


def fourier_poisson_reference(f: np.ndarray) -> np.ndarray:
    """Sequential Fourier-tridiagonal solve (periodic-x, Dirichlet-y)."""
    nx, ny1 = f.shape
    ny = ny1 - 1
    if nx & (nx - 1):
        raise ValidationError("nx must be a power of two")
    fh = np.fft.fft(f, axis=0)
    fh[:, 0] = 0.0
    fh[:, -1] = 0.0
    lam = _eigenvalues_x(nx)
    uh = np.zeros_like(fh)
    for k in range(nx):
        b, a, c = _mode_system(lam[k], ny)
        uh[k, :].real = thomas_solve(b, a, c, fh[k, :].real)
        uh[k, :].imag = thomas_solve(b, a, c, fh[k, :].imag)
    return np.real(np.fft.ifft(uh, axis=0))


def apply_operator(u: np.ndarray) -> np.ndarray:
    """Periodic-x / Dirichlet-y 5-point operator (for residual checks)."""
    nx, ny1 = u.shape
    ny = ny1 - 1
    hx2 = (1.0 / nx) ** 2
    hy2 = (1.0 / ny) ** 2
    out = np.zeros_like(u)
    out[:, 1:-1] = (
        (np.roll(u, -1, axis=0)[:, 1:-1] - 2 * u[:, 1:-1] + np.roll(u, 1, axis=0)[:, 1:-1]) / hx2
        + (u[:, 2:] - 2 * u[:, 1:-1] + u[:, :-2]) / hy2
    )
    return out


def fourier_poisson_solve(
    machine: Machine, f: np.ndarray, p: int, session=None
) -> tuple[np.ndarray, object]:
    """Distributed Fourier-tridiagonal solve on ``p`` simulated processors.

    The x dimension (FFT direction) is block-distributed; after the
    forward transforms each processor owns a block of Fourier modes.
    Since y is undistributed the per-mode tridiagonal solves are local
    Thomas solves, with the parallelism across modes -- the dual
    arrangement to ADI's distributed line solves.  Returns (u, trace).
    """
    nx, ny1 = f.shape
    ny = ny1 - 1
    if nx & (nx - 1):
        raise ValidationError("nx must be a power of two")
    if p & (p - 1) or p > nx:
        raise ValidationError("p must be a power of two <= nx")
    nb = nx // p
    lam = _eigenvalues_x(nx)
    out_inv: dict[tuple[int, int], np.ndarray] = {}

    def node(rank: int):
        lo, hi = rank * nb, (rank + 1) * nb
        # forward FFT of my rows, one column at a time (x-direction FFTs)
        fh_block = np.empty((nb, ny + 1), dtype=complex)
        for col in range(ny + 1):
            col_out: dict[int, np.ndarray] = {}
            yield from _fft_column(rank, p, nx, f[lo:hi, col], col_out, ("fwd", col))
            fh_block[:, col] = col_out[rank]
        fh_block[:, 0] = 0.0
        fh_block[:, -1] = 0.0
        # mode solves: my nb modes, each a local tridiagonal along y
        uh_block = np.empty_like(fh_block)
        for s in range(nb):
            b, a, c = _mode_system(lam[lo + s], ny)
            uh_block[s, :].real = thomas_solve(b, a, c, fh_block[s, :].real)
            uh_block[s, :].imag = thomas_solve(b, a, c, fh_block[s, :].imag)
        yield Compute(flops=16.0 * (ny + 1) * nb, label="mode_solves")
        # inverse FFT: conj trick, column by column
        for col in range(ny + 1):
            col_out = {}
            yield from _fft_column(
                rank, p, nx, np.conj(uh_block[:, col]), col_out, ("inv", col)
            )
            out_inv[(rank, col)] = np.real(np.conj(col_out[rank])) / nx

    def _fft_column(rank, p, n, data, col_out, ns):
        # run the fft kernel with tags namespaced per column/direction
        gen = fft_node_program(rank, p, n, data, col_out)
        send_value = None
        while True:
            try:
                op = gen.send(send_value)
            except StopIteration:
                return
            send_value = None
            if isinstance(op, Send):
                op = Send(op.dst, op.data, tag=(ns, op.tag), nbytes=op.nbytes)
            elif isinstance(op, Recv):
                op = Recv(src=op.src, tag=(ns, op.tag))
            send_value = yield op

    trace = launch({r: node(r) for r in range(p)}, machine, session)
    u = np.empty((nx, ny + 1))
    for rank in range(p):
        lo, hi = rank * nb, (rank + 1) * nb
        for col in range(ny + 1):
            u[lo:hi, col] = out_inv[(rank, col)]
    return u, trace
