"""Model problems: discrete operators and manufactured solutions.

All the paper's examples solve constant-coefficient elliptic problems

    a*Uxx + b*Uyy (+ g*Uzz) + c*U = F

on the unit square/cube with homogeneous Dirichlet boundaries, on grids
of (n+1) points per dimension (indices 0..n, boundaries at 0 and n).
This module provides the discrete operators, right-hand sides with
known exact solutions, and residual/error norms shared by algorithms,
tests, and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import ValidationError


@dataclass(frozen=True)
class Coeffs2D:
    """PDE coefficients of ``a Uxx + b Uyy + c U = F``."""

    a: float = 1.0
    b: float = 1.0
    c: float = 0.0


@dataclass(frozen=True)
class Coeffs3D:
    """PDE coefficients of ``a Uxx + b Uyy + g Uzz + c U = F``."""

    a: float = 1.0
    b: float = 1.0
    g: float = 1.0
    c: float = 0.0


def laplacian_2d(u: np.ndarray, coeffs: Coeffs2D = Coeffs2D()) -> np.ndarray:
    """Apply the 5-point operator on interior points (boundary rows zero)."""
    nx, ny = u.shape[0] - 1, u.shape[1] - 1
    hx2, hy2 = (1.0 / nx) ** 2, (1.0 / ny) ** 2
    out = np.zeros_like(u)
    out[1:-1, 1:-1] = (
        coeffs.a * (u[2:, 1:-1] - 2 * u[1:-1, 1:-1] + u[:-2, 1:-1]) / hx2
        + coeffs.b * (u[1:-1, 2:] - 2 * u[1:-1, 1:-1] + u[1:-1, :-2]) / hy2
        + coeffs.c * u[1:-1, 1:-1]
    )
    return out


def laplacian_3d(u: np.ndarray, coeffs: Coeffs3D = Coeffs3D()) -> np.ndarray:
    """Apply the 7-point operator on interior points (boundary planes zero)."""
    nx, ny, nz = u.shape[0] - 1, u.shape[1] - 1, u.shape[2] - 1
    hx2, hy2, hz2 = (1.0 / nx) ** 2, (1.0 / ny) ** 2, (1.0 / nz) ** 2
    out = np.zeros_like(u)
    core = u[1:-1, 1:-1, 1:-1]
    out[1:-1, 1:-1, 1:-1] = (
        coeffs.a * (u[2:, 1:-1, 1:-1] - 2 * core + u[:-2, 1:-1, 1:-1]) / hx2
        + coeffs.b * (u[1:-1, 2:, 1:-1] - 2 * core + u[1:-1, :-2, 1:-1]) / hy2
        + coeffs.g * (u[1:-1, 1:-1, 2:] - 2 * core + u[1:-1, 1:-1, :-2]) / hz2
        + coeffs.c * core
    )
    return out


def manufactured_2d(n: int, coeffs: Coeffs2D = Coeffs2D()):
    """Exact solution sin(pi x) sin(2 pi y) and its discrete-friendly rhs.

    Returns (u_exact, f) on the (n+1)x(n+1) grid; ``f`` is the *discrete*
    operator applied to u_exact, so the discrete solve should reproduce
    u_exact to solver tolerance (no discretization error in tests).
    """
    if n < 2:
        raise ValidationError("need n >= 2")
    x = np.linspace(0.0, 1.0, n + 1)
    y = np.linspace(0.0, 1.0, n + 1)
    u = np.sin(np.pi * x)[:, None] * np.sin(2 * np.pi * y)[None, :]
    u[0, :] = u[-1, :] = 0.0
    u[:, 0] = u[:, -1] = 0.0
    f = laplacian_2d(u, coeffs)
    return u, f


def manufactured_3d(n: int, coeffs: Coeffs3D = Coeffs3D()):
    """3-D analogue of :func:`manufactured_2d`."""
    if n < 2:
        raise ValidationError("need n >= 2")
    x = np.linspace(0.0, 1.0, n + 1)
    u = (
        np.sin(np.pi * x)[:, None, None]
        * np.sin(2 * np.pi * x)[None, :, None]
        * np.sin(np.pi * x)[None, None, :]
    )
    u[0], u[-1] = 0.0, 0.0
    u[:, 0], u[:, -1] = 0.0, 0.0
    u[:, :, 0], u[:, :, -1] = 0.0, 0.0
    f = laplacian_3d(u, coeffs)
    return u, f


def residual_norm_2d(u, f, coeffs: Coeffs2D = Coeffs2D()) -> float:
    """Max-norm of f - L u on interior points."""
    r = f - laplacian_2d(u, coeffs)
    return float(np.max(np.abs(r[1:-1, 1:-1]))) if u.shape[0] > 2 else 0.0


def residual_norm_3d(u, f, coeffs: Coeffs3D = Coeffs3D()) -> float:
    r = f - laplacian_3d(u, coeffs)
    return float(np.max(np.abs(r[1:-1, 1:-1, 1:-1]))) if u.shape[0] > 2 else 0.0
