"""Chaos API: first-class fault injection for resilience testing.

The multiprocessing backend has always carried a fault-injection hook
(``mpbackend._FAULT_INJECTION``) so the elastic tests could kill ranks
mid-Jacobi; this module promotes it into a small supported surface that
tests, benchmarks, and operators drill recovery with:

* :func:`kill_rank` -- arm a kill/raise at a given worker sweep, with
  an optional slow-death delay (delayed recovery) and a firing budget
  (``times=``) so a *transient* fault disarms itself after N pool
  failures and the Supervisor's retry then succeeds;
* :func:`corrupt_checkpoint_bytes` -- deterministically flip one bit
  of a serialized checkpoint, for exercising the
  :meth:`~repro.elastic.Checkpoint.from_bytes` integrity check.

Everything here is deliberately *parent-side* plumbing over the one
worker-side hook: workers inherit the armed spec at fork time, the
parent observes pool failures through ``mpbackend._FAULT_OBSERVER``
and disarms the spec when the budget is spent.  Arm faults *before*
the pool spawns (the first run of a program spawns it); an armed fault
survives pool respawns until disarmed, which is exactly what "kill a
worker every K sweeps" needs -- each respawned pool restarts its sweep
counter, so the same spec fires again K sweeps into the retry.

See ``docs/resilience.md`` for how the Supervisor and the resilience
drill (``benchmarks/bench_resilience.py``) use this module.
"""

from __future__ import annotations

from repro.machine import mpbackend
from repro.util.errors import ValidationError

_ACTIONS = ("exit", "raise")


class KillRank:
    """An armed kill-rank-at-sweep fault (context manager).

    While armed, worker ``rank`` (an int, or a tuple of ranks) of any
    multiprocessing pool that forks dies at the start of its ``sweep``-th
    sweep -- by ``os._exit`` (``action="exit"``: no goodbye on the
    pipe, peers break out of the barrier) or by raising inside the
    sweep driver (``action="raise"``: the worker reports a traceback).
    ``delay_s`` sleeps before dying, modeling a slow death / delayed
    recovery.  ``times`` bounds how many *pool failures* the fault
    causes before it disarms itself (``None`` = never disarms): the
    parent counts failures via the backend's fault observer -- only
    failures whose ranks intersect the armed rank(s), so an unrelated
    crash elsewhere never consumes the budget -- and after the budget
    is spent the Supervisor's next retry runs clean.  ``fired`` records
    *every* observed pool failure, caused or not.

    Use as a context manager (or call :meth:`arm`/:meth:`disarm`);
    only one fault can be armed at a time.
    """

    def __init__(self, rank, sweep: int, *, action: str = "exit",
                 delay_s: float = 0.0, times: int | None = 1):
        if action not in _ACTIONS:
            raise ValidationError(
                f"unknown fault action {action!r}; pick one of {_ACTIONS}"
            )
        if times is not None and times < 1:
            raise ValidationError("times= must be >= 1 (or None for unbounded)")
        self.spec = {"rank": rank, "sweep": int(sweep), "action": action}
        if delay_s:
            self.spec["delay_s"] = float(delay_s)
        #: remaining pool failures before self-disarm (None = unbounded)
        self.remaining = times
        #: failed-rank tuples of every pool failure observed while armed
        self.fired: list[tuple] = []
        self._armed = False

    def arm(self) -> "KillRank":
        if mpbackend._FAULT_INJECTION is not None:
            raise ValidationError(
                "another fault is already armed; disarm it first "
                "(one fault at a time keeps drills interpretable)"
            )
        mpbackend._FAULT_INJECTION = self.spec
        mpbackend._FAULT_OBSERVER = self._observe
        self._armed = True
        return self

    def disarm(self) -> None:
        if mpbackend._FAULT_INJECTION is self.spec:
            mpbackend._FAULT_INJECTION = None
        if mpbackend._FAULT_OBSERVER is self._observe:
            mpbackend._FAULT_OBSERVER = None
        self._armed = False

    def _observe(self, failed_ranks: tuple) -> None:
        failed = tuple(failed_ranks)
        self.fired.append(failed)
        if self.remaining is None:
            return
        rank = self.spec["rank"]
        mine = set(rank) if isinstance(rank, (tuple, list, set)) else {rank}
        if not mine.intersection(failed):
            # an unrelated pool failure (e.g. a genuine crash on another
            # rank) must not consume the firing budget: the armed fault
            # did not cause it and has yet to fire
            return
        self.remaining -= 1
        if self.remaining <= 0 and self._armed:
            # budget spent: the fault becomes a no-op for respawned
            # pools (workers fork after this point see no spec)
            if mpbackend._FAULT_INJECTION is self.spec:
                mpbackend._FAULT_INJECTION = None

    def __enter__(self) -> "KillRank":
        return self.arm()

    def __exit__(self, *exc) -> None:
        self.disarm()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"KillRank(spec={self.spec}, remaining={self.remaining}, "
            f"fired={len(self.fired)})"
        )


def kill_rank(rank, sweep: int, *, action: str = "exit",
              delay_s: float = 0.0, times: int | None = 1) -> KillRank:
    """Build (un-armed) a :class:`KillRank` fault; see its docstring.

    >>> from repro.faults import kill_rank
    >>> f = kill_rank((2, 3), sweep=1, times=2)
    >>> f.spec["action"], f.remaining
    ('exit', 2)
    """
    return KillRank(rank, sweep, action=action, delay_s=delay_s, times=times)


def corrupt_checkpoint_bytes(blob: bytes, *, offset: int | None = None,
                             bit: int = 0) -> bytes:
    """Flip one bit of a serialized checkpoint, deterministically.

    ``offset`` indexes the byte to damage (default: the middle of the
    payload, past the envelope header so the corruption hits state, not
    the magic); ``bit`` picks the bit within it.  The result must make
    :meth:`repro.elastic.Checkpoint.from_bytes` raise
    :class:`~repro.util.errors.ValidationError` -- that contract is
    what the regression tests pin.
    """
    blob = bytes(blob)
    if not blob:
        raise ValidationError("cannot corrupt an empty byte string")
    if offset is None:
        from repro.elastic import _HEADER, _MAGIC
        head = len(_MAGIC) + _HEADER.size
        offset = head + (len(blob) - head) // 2 if len(blob) > head else len(blob) // 2
    if not 0 <= offset < len(blob):
        raise ValidationError(
            f"offset {offset} out of range for {len(blob)}-byte blob"
        )
    if not 0 <= bit < 8:
        raise ValidationError("bit must be in [0, 8)")
    damaged = bytearray(blob)
    damaged[offset] ^= 1 << bit
    return bytes(damaged)


__all__ = ["KillRank", "kill_rank", "corrupt_checkpoint_bytes"]
