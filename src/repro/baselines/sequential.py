"""Listing 1: the sequential Jacobi program.

Kept deliberately minimal -- this is the "before" of the paper's
program-length comparison, so its line count matters; see
:mod:`repro.baselines.loc`.
"""

from __future__ import annotations

import numpy as np


def jacobi_sequential(f: np.ndarray, iters: int) -> np.ndarray:
    """Sequential Jacobi for Poisson on an (n+1)x(n+1) grid (Listing 1)."""
    X = np.zeros_like(f)
    for _ in range(iters):
        tmp = X.copy()
        X[1:-1, 1:-1] = (
            0.25 * (tmp[2:, 1:-1] + tmp[:-2, 1:-1] + tmp[1:-1, 2:] + tmp[1:-1, :-2])
            - f[1:-1, 1:-1]
        )
    return X
