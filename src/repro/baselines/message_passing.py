"""Listing 2: the hand-written message-passing Jacobi.

This is the program the paper's constructs replace: every processor
owns an (m+2)x(m+2) block with an explicit halo; the programmer writes
the guarded sends and receives to all four neighbors, keeps the tags
straight, orders communication to avoid deadlock, and assembles the
result.  Its length and fragility -- not its speed -- are the point:
``bench_loc_ratio`` measures the former and ``bench_kf1_parity`` shows
the compiled KF1 version matches its performance.
"""

from __future__ import annotations

import numpy as np

from repro.machine.ops import Compute, Recv, Send
from repro.machine.simulator import Machine
from repro.util.errors import ValidationError
from repro.util.indexing import block_bounds


def mp_jacobi_node(
    ip: int,
    jp: int,
    p: int,
    f_block: np.ndarray,
    iters: int,
    out: dict,
):
    """Node program for processor P(ip, jp) -- a direct Listing 2 port.

    ``f_block`` is this processor's block of f (without halo); the solved
    block lands in ``out[(ip, jp)]``.
    """
    mi, mj = f_block.shape
    # local solution block with a one-cell halo all around
    X = np.zeros((mi + 2, mj + 2))
    tmpX = np.zeros((mi + 2, mj + 2))

    def rank(i, j):
        return i * p + j

    for it in range(iters):
        # copy interior of solution into the temporary array
        tmpX[1:-1, 1:-1] = X[1:-1, 1:-1]
        yield Compute(flops=float(mi * mj), label="copy")

        # send edge values to North, South, West and East neighbors
        if ip > 0:
            yield Send(rank(ip - 1, jp), X[1, 1:-1].copy(), tag=("N", it, ip, jp))
        if ip < p - 1:
            yield Send(rank(ip + 1, jp), X[mi, 1:-1].copy(), tag=("S", it, ip, jp))
        if jp > 0:
            yield Send(rank(ip, jp - 1), X[1:-1, 1].copy(), tag=("W", it, ip, jp))
        if jp < p - 1:
            yield Send(rank(ip, jp + 1), X[1:-1, mj].copy(), tag=("E", it, ip, jp))

        # receive edge values from neighbors into the halo
        if ip < p - 1:
            tmpX[mi + 1, 1:-1] = yield Recv(
                src=rank(ip + 1, jp), tag=("N", it, ip + 1, jp)
            )
        if ip > 0:
            tmpX[0, 1:-1] = yield Recv(src=rank(ip - 1, jp), tag=("S", it, ip - 1, jp))
        if jp < p - 1:
            tmpX[1:-1, mj + 1] = yield Recv(
                src=rank(ip, jp + 1), tag=("W", it, ip, jp + 1)
            )
        if jp > 0:
            tmpX[1:-1, 0] = yield Recv(src=rank(ip, jp - 1), tag=("E", it, ip, jp - 1))

        # update the solution block
        X[1:-1, 1:-1] = (
            0.25
            * (tmpX[2:, 1:-1] + tmpX[:-2, 1:-1] + tmpX[1:-1, 2:] + tmpX[1:-1, :-2])
            - f_block
        )
        yield Compute(flops=6.0 * mi * mj, label="update")

    out[(ip, jp)] = X[1:-1, 1:-1].copy()


def jacobi_message_passing(
    machine: Machine, p: int, f: np.ndarray, iters: int
):
    """Run Listing 2's Jacobi on a p x p processor array.

    Returns (X_global, trace); X matches the sequential Listing 1 result
    exactly (the halo holds zeros at physical boundaries, as the paper's
    (m+2)x(m+2) declaration arranges).
    """
    n1 = f.shape[0]
    if f.shape[0] != f.shape[1]:
        raise ValidationError("square grids only")
    if machine.n_procs < p * p:
        raise ValidationError("machine too small")
    # distribute interior rows/cols (boundary ring is fixed at zero)
    interior = n1 - 2
    if interior < p:
        raise ValidationError("grid too coarse for this processor array")
    row_bounds = [block_bounds(interior, p, i) for i in range(p)]
    out: dict = {}

    programs = {}
    for ip in range(p):
        for jp in range(p):
            rlo, rhi = row_bounds[ip]
            clo, chi = row_bounds[jp]
            blk = f[1 + rlo : 1 + rhi, 1 + clo : 1 + chi].copy()
            programs[ip * p + jp] = mp_jacobi_node(ip, jp, p, blk, iters, out)
    trace = machine.run(programs)

    X = np.zeros_like(f)
    for ip in range(p):
        for jp in range(p):
            rlo, rhi = row_bounds[ip]
            clo, chi = row_bounds[jp]
            X[1 + rlo : 1 + rhi, 1 + clo : 1 + chi] = out[(ip, jp)]
    return X, trace
