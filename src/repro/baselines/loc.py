"""Program-length accounting (the section 6 five-to-ten-times claim).

Counts effective lines of code -- non-blank, non-comment, with
docstrings removed -- of the Python callables implementing each version
of an algorithm, so the benchmark can report the measured
message-passing : sequential : KF1 length ratios for this codebase.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Callable

from repro.util.errors import ValidationError


def _strip_docstrings(tree: ast.AST) -> ast.AST:
    for node in ast.walk(tree):
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Module)
        ):
            body = getattr(node, "body", [])
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                node.body = body[1:] or [ast.Pass()]
    return tree


def count_loc(fn: Callable) -> int:
    """Effective LoC of a callable: docstrings, comments, blanks removed."""
    try:
        src = textwrap.dedent(inspect.getsource(fn))
    except (OSError, TypeError) as exc:
        raise ValidationError(f"cannot fetch source of {fn!r}: {exc}") from None
    tree = _strip_docstrings(ast.parse(src))
    rendered = ast.unparse(tree)
    return sum(1 for line in rendered.splitlines() if line.strip())


def loc_report(versions: dict[str, Callable | list[Callable]]) -> dict[str, int]:
    """LoC per named version; list values sum their parts.

    Example::

        loc_report({
            "sequential": jacobi_sequential,
            "message_passing": [mp_jacobi_node, jacobi_message_passing],
            "kf1": [build_jacobi_loop, jacobi_kf1],
        })
    """
    out = {}
    for name, fns in versions.items():
        if callable(fns):
            fns = [fns]
        out[name] = sum(count_loc(f) for f in fns)
    return out
