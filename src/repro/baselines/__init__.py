"""Comparison baselines for the paper's expressiveness claims.

* :mod:`repro.baselines.sequential` -- Listing 1-style sequential codes;
* :mod:`repro.baselines.message_passing` -- Listing 2-style explicit
  message-passing codes written directly against the machine API, the
  style the paper argues against;
* :mod:`repro.baselines.loc` -- program-length accounting backing the
  section 6 claim that message-passing versions are "five to ten times
  longer than the sequential version".
"""

from repro.baselines.sequential import jacobi_sequential
from repro.baselines.message_passing import jacobi_message_passing, mp_jacobi_node
from repro.baselines.loc import count_loc, loc_report

__all__ = [
    "jacobi_sequential",
    "jacobi_message_passing",
    "mp_jacobi_node",
    "count_loc",
    "loc_report",
]
