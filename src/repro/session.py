"""First-class compile-and-run API: :class:`Session` and :class:`Program`.

The paper's whole pitch is that communication is *compiled once* from
the distribution clauses and then replayed.  This module makes that
lifecycle explicit:

* a :class:`Session` owns everything that used to be process-global
  mutable state -- the transfer-:class:`~repro.compiler.commsched.ScheduleCache`,
  the compiled-plan :class:`~repro.compiler.schedule.PlanCache`, the
  run-id counter, and the trace history.  Two Sessions never share
  schedules, so concurrent workloads (or test cases) are isolated by
  construction;
* :func:`compile` lowers a program -- a :class:`~repro.lang.doall.Doall`
  (or list of them), KF1 source text, a parsed
  :class:`~repro.lang.kf1.KF1Program`, or a parsub generator function --
  into a :class:`Program` whose communication schedules are frozen at
  compile time;
* ``Program.run(**bindings)`` launches the program on the simulated
  machine, replaying the cached schedules on every run;
  ``Program.estimate`` predicts its critical path without executing,
  ``Program.schedules``/``Program.stats`` expose the frozen transfer
  schedules and per-direction reuse rates, and ``Program.explain``
  renders the message pattern the compiler derived.

The deprecated shims (:func:`repro.lang.context.run_spmd`, session-less
``KaliCtx``) route through the *implicit default Session* returned by
:func:`default_session`, which wraps the historical process-global
caches -- so legacy code behaves bit-identically while migrated code
gets owned state.

>>> import numpy as np
>>> from repro import Machine, ProcessorGrid, Session
>>> import repro
>>> src = '''
... processors procs(2)
... real x(0:7) dist (block)
... real y(0:7) dist (block)
... doall (i) = [1, 6] on owner(y(i))
...   y(i) = x(i-1) + x(i+1)
... end doall
... '''
>>> sess = Session(Machine(n_procs=2))
>>> prog = repro.compile(src, session=sess)   # schedules frozen here
>>> t1 = prog.run(x=np.arange(8.0))           # bindings load the arrays
>>> prog.arrays["y"].to_global()[1:7]
array([ 2.,  4.,  6.,  8., 10., 12.])
>>> t2 = prog.run()                           # replays the frozen schedules
>>> t2.schedule_hit_rate("gather") == 1.0
True
>>> sorted(prog.stats()["plans"])             # the session saw the compiles
['doall']
"""

from __future__ import annotations

import threading
import warnings
import weakref
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.compiler.commsched import ScheduleCache
from repro.compiler.estimate import LoopEstimate, estimate_doall
from repro.compiler.schedule import PlanCache
from repro.lang.context import KaliCtx, next_run_id
from repro.lang.doall import Doall
from repro.lang.kf1 import KF1Program, parse_program
from repro.lang.procs import ProcessorGrid
from repro.machine.backend import Backend
from repro.machine.costmodel import CostModel
from repro.machine.simulator import Machine
from repro.machine.trace import Trace
from repro.util.errors import ValidationError


def _check_backend(backend) -> None:
    if backend is None or isinstance(backend, Backend):
        return
    if backend in ("simulator", "multiprocessing"):
        return
    raise ValidationError(
        f"unknown backend {backend!r}: expected 'simulator', "
        "'multiprocessing', or a Backend instance"
    )


class Session:
    """Owns one workload's compile-and-run state.

    Parameters
    ----------
    machine:
        Default simulated machine for :meth:`run`/:meth:`launch` (each
        call may override it).
    grid:
        Default processor grid for :meth:`run`.
    cost:
        Cost model used by ``Program.estimate`` when none is passed;
        defaults to the machine's.
    backend:
        Default execution backend for launches: ``None``/``"simulator"``
        runs on the machine's event-driven simulator (reference
        semantics), ``"multiprocessing"`` executes compiled loop
        programs on real shared-memory worker processes (results,
        accounting, and cost-model traces bit-identical to the
        simulator), and a :class:`~repro.machine.backend.Backend`
        instance is used as-is.  Each run may override it.

    A Session owns its :class:`~repro.compiler.commsched.ScheduleCache`
    (wire transfer schedules: gathers, repartitions), its
    :class:`~repro.compiler.schedule.PlanCache` (compiled doall analyses
    with their frozen gather/scatter schedules, ADI line plans), a
    run-id counter, and ``history`` -- the traces of every launch.  No
    state leaks between Sessions: caches warmed in one are invisible to
    another.

    >>> s = Session()
    >>> s.stats()["schedules"]["hits"], s.stats()["runs"]
    (0, 0)
    """

    def __init__(
        self,
        machine: Machine | None = None,
        grid: ProcessorGrid | None = None,
        cost: CostModel | None = None,
        *,
        backend: "str | Backend | None" = None,
        compiled: bool = True,
        marks: str = "full",
        max_schedule_entries: int = 256,
        max_plan_entries: int = 4096,
        max_history: int = 256,
    ):
        if max_history <= 0:
            raise ValidationError("Session needs max_history >= 1")
        if marks not in ("full", "cheap"):
            raise ValidationError(f"marks must be 'full' or 'cheap', got {marks!r}")
        _check_backend(backend)
        self.machine = machine
        self.grid = grid
        self.cost = cost if cost is not None else getattr(machine, "cost", None)
        #: default execution backend (see the class docstring); the
        #: ``"multiprocessing"`` string form lazily builds (and caches)
        #: one MultiprocessingBackend around the resolved machine
        self.backend = backend
        self._mp_backend = None
        #: default doall executor mode for launches from this Session:
        #: True replays compiled StepPlans (the fast path), False runs
        #: the interpreted reference executor.  Each run (and each
        #: ``ctx.doall`` call) may override it.
        self.compiled = compiled
        #: default mark mode: "full" records every schedule Mark,
        #: "cheap" aggregates steady-state schedule events into
        #: ``Trace.mark_counts`` (identical hit-rate reporting, no
        #: per-op mark objects).
        self.marks = marks
        #: transfer-schedule cache (gather/scatter/repartition wire schedules)
        self.cache = ScheduleCache(max_entries=max_schedule_entries)
        #: compiled-plan cache (doall analyses, line-solver plans, ...)
        self.plans = PlanCache(max_entries=max_plan_entries)
        #: traces of recent launches, oldest first; bounded at
        #: ``max_history`` (traces hold full per-message event lists, so
        #: an unbounded log would leak across long sweeps).  ``runs``
        #: counts every launch ever, trimmed or not.
        self.history: list[Trace] = []
        self.max_history = max_history
        self.runs = 0
        # guards the run counter, the history append/trim, and the lazy
        # multiprocessing-backend construction: traces hold full
        # per-message event lists, so a torn append/trim under
        # concurrent launches (the serving layer runs one Session per
        # worker thread, but a Session is also safe to share) would
        # corrupt the log
        self._lock = threading.RLock()
        #: weak refs to every Program compiled into this Session, in
        #: compile order -- the program set the elastic operations
        #: (checkpoint/restore/morph) act on.  Weak so a discarded
        #: Program doesn't pin its arrays for the Session's lifetime.
        self._programs: list = []
        #: host calibration (:class:`~repro.machine.calibrate.
        #: CalibratedCostModel`) the tuner prefers over :attr:`cost`
        #: when set; captured into checkpoints and restored with them
        self.calibration = None
        #: the :class:`~repro.tune.TuneResult` behind the most recent
        #: ``morph("auto")`` grid choice (None until one runs)
        self.last_tune = None
        #: the :class:`~repro.supervise.RecoveryLog` of the Supervisor
        #: watching this Session (None until one adopts it); surfaced
        #: through :meth:`stats` so operators see recovery events where
        #: they already look for cache accounting
        self.recovery = None

    # -- launching ---------------------------------------------------------

    def _resolve(self, machine: Machine | None, grid: ProcessorGrid | None):
        machine = machine if machine is not None else self.machine
        grid = grid if grid is not None else self.grid
        if machine is None:
            raise ValidationError(
                "no machine: pass one to the Session or to this call"
            )
        if grid is None:
            raise ValidationError("no grid: pass one to the Session or to this call")
        if grid.size > machine.n_procs:
            raise ValidationError(
                f"grid of {grid.size} procs exceeds machine size {machine.n_procs}"
            )
        return machine, grid

    def _resolve_backend(self, backend, machine) -> Backend:
        """The Backend a launch executes on (the machine itself, by default).

        ``backend`` overrides the Session default; the
        ``"multiprocessing"`` string form wraps ``machine`` in one
        cached :class:`~repro.machine.mpbackend.MultiprocessingBackend`
        per Session (so its worker pool persists across runs).
        """
        if backend is None:
            backend = self.backend
        _check_backend(backend)
        if backend is None or backend == "simulator":
            return machine
        if backend == "multiprocessing":
            with self._lock:
                cached = self._mp_backend
                if cached is None or cached.machine is not machine:
                    from repro.machine.mpbackend import MultiprocessingBackend

                    if cached is not None:
                        cached.close()
                    cached = MultiprocessingBackend(machine)
                    self._mp_backend = cached
                return cached
        return backend

    def run(
        self,
        routine: Callable,
        *args: Any,
        machine: Machine | None = None,
        grid: ProcessorGrid | None = None,
        backend: "str | Backend | None" = None,
        compiled: bool | None = None,
        marks: str | None = None,
        **kwargs: Any,
    ) -> Trace:
        """Run ``routine(ctx, *args, **kwargs)`` on every rank of the grid.

        The launch of the paper's main program: the "real" processor
        array is ``grid`` and the top-level parsub is ``routine``.  Each
        rank's :class:`~repro.lang.context.KaliCtx` is bound to this
        Session, so every collective inside consults this Session's
        caches.  The trace is appended to :attr:`history` and returned.
        ``machine``/``grid`` override the Session defaults, and
        ``compiled``/``marks`` override its executor and mark modes for
        this launch; a routine parameter with any of these names must be
        bound via ``functools.partial`` (or the :func:`run_spmd` shim,
        which forwards kwargs verbatim).
        """
        return self._launch_routine(
            machine, grid, routine, args, kwargs,
            compiled=compiled, marks=marks, backend=backend,
        )

    def _launch_routine(
        self, machine, grid, routine, args, kwargs,
        compiled: bool | None = None, marks: str | None = None,
        backend=None,
    ) -> Trace:
        """Launch core with no keyword capture: ``kwargs`` go to the
        routine untouched (the run_spmd shim relies on this to keep the
        legacy signature, where ``machine``/``grid`` were positional)."""
        if machine is None and self.machine is None:
            # a Backend instance can stand in for the machine it wraps
            resolved = backend if backend is not None else self.backend
            machine = getattr(resolved, "machine", None)
        machine, grid = self._resolve(machine, grid)
        runner = self._resolve_backend(backend, machine)
        # Launch identities are unique across sessions *and* processes
        # (keyed by pid + counter): a run id scopes cache decisions and
        # staging tokens, and two Sessions sharing one explicit
        # ScheduleCache -- or a forked worker inheriting the counter --
        # must never reuse an id.  Ids never enter traces, so this does
        # not affect determinism.
        run_id = next_run_id()
        ctxs = {
            rank: KaliCtx(
                rank, grid, run_id=run_id, session=self,
                compiled=compiled, marks=marks,
            )
            for rank in grid.linear
        }
        programs = {
            rank: routine(ctxs[rank], *args, **kwargs) for rank in grid.linear
        }
        trace = runner.run(programs)
        self._fold_mark_counts(trace, ctxs.values())
        return self._record(trace)

    @staticmethod
    def _fold_mark_counts(trace: Trace, ctxs) -> None:
        """Aggregate cheap-marks counters from the ranks into the trace."""
        merged: dict[tuple, int] = trace.mark_counts
        cheap = False
        for ctx in ctxs:
            cheap = cheap or ctx.marks == "cheap"
            for key, n in ctx.mark_counts.items():
                merged[key] = merged.get(key, 0) + n
        if cheap:
            trace.level = "cheap"

    def launch(self, programs: dict, machine: Machine | None = None) -> Trace:
        """Run pre-built per-rank node programs (no contexts involved).

        The hand-message-passing escape hatch used by the 1-D kernel
        drivers and baselines: ``programs`` maps rank to a generator of
        machine ops.  The trace still lands in :attr:`history`, so a
        Session sees every launch of its workload, not just doalls.
        """
        machine = machine if machine is not None else self.machine
        if machine is None:
            raise ValidationError(
                "no machine: pass one to the Session or to this call"
            )
        return self._record(machine.run(programs))

    def _record(self, trace: Trace) -> Trace:
        with self._lock:
            self.runs += 1
            self.history.append(trace)
            if len(self.history) > self.max_history:
                del self.history[: -self.max_history]
        return trace

    # -- compilation -------------------------------------------------------

    def compile(
        self,
        obj,
        *,
        grid: ProcessorGrid | None = None,
        tune: bool = False,
        tune_budget: int | None = None,
        tune_space=None,
    ) -> "Program":
        """Compile ``obj`` into a :class:`Program` bound to this Session.

        See the module-level :func:`compile` for the accepted forms and
        the ``tune`` knobs.
        """
        return compile(
            obj, session=self, grid=grid,
            tune=tune, tune_budget=tune_budget, tune_space=tune_space,
        )

    # -- elasticity --------------------------------------------------------

    def _register_program(self, program: "Program") -> None:
        with self._lock:
            self._programs.append(weakref.ref(program))

    def live_programs(self) -> list:
        """Programs compiled into this Session that are still alive,
        compile order (dead weak refs are pruned as a side effect)."""
        with self._lock:
            out, refs = [], []
            for ref in self._programs:
                p = ref()
                if p is not None:
                    refs.append(ref)
                    out.append(p)
            self._programs = refs
            return out

    def close_backend(self) -> None:
        """Shut down this Session's multiprocessing worker pools.

        Closing un-adopts every shared-memory block back into private
        array storage, so array layouts may change safely afterwards;
        pools respawn lazily at the next multiprocessing run.  Also
        closes an explicitly-passed MultiprocessingBackend default.
        """
        from repro.machine.mpbackend import MultiprocessingBackend

        with self._lock:
            if self._mp_backend is not None:
                self._mp_backend.close()
                self._mp_backend = None
            if isinstance(self.backend, MultiprocessingBackend):
                self.backend.close()

    def checkpoint(self) -> "Any":
        """Snapshot this Session's run state; see :func:`repro.checkpoint`."""
        from repro.elastic import checkpoint

        return checkpoint(self)

    def restore(self, ckpt, **kwargs) -> None:
        """Load a :class:`~repro.elastic.Checkpoint` back; see
        :func:`repro.restore` (``base=``/``programs=``/``counters=``
        pass through)."""
        from repro.elastic import restore

        restore(self, ckpt, **kwargs)

    def morph(
        self,
        new_grid: "ProcessorGrid | str",
        *,
        machine: Machine | None = None,
        cost: CostModel | None = None,
    ):
        """Move this Session's live programs onto ``new_grid``; see
        :func:`repro.morph`.

        ``new_grid="auto"`` asks the autotuner for the target: every
        grid shape of the current rank-count that fits the machine is
        scored with the exact estimator (arrays keep their distribution
        kinds -- exactly the layouts a morph can reach) under ``cost``
        (default: this Session's :attr:`calibration`, then its
        :attr:`cost`), and the predicted-best grid wins.  The
        :class:`~repro.tune.TuneResult` behind the choice lands on
        :attr:`last_tune`; the morph itself is then the ordinary
        explicit morph, bit-identical to calling it with that grid.
        """
        from repro.elastic import morph

        if isinstance(new_grid, str):
            if new_grid != "auto":
                raise ValidationError(
                    f"morph grid must be a ProcessorGrid or 'auto', "
                    f"got {new_grid!r}"
                )
            from repro.tune import auto_grid

            new_grid, self.last_tune = auto_grid(
                self, machine=machine, cost=cost,
            )
        return morph(self, new_grid, machine=machine)

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        """Aggregate cache accounting: schedule and plan hit/miss counts,
        per-direction and per-kind breakdowns, the launch count, and --
        when a :class:`~repro.supervise.Supervisor` watches this Session
        -- its :class:`~repro.supervise.RecoveryLog` summary."""
        return {
            "runs": self.runs,
            "schedules": self.cache.stats(),
            "directions": self.cache.direction_stats(),
            "plans": self.plans.kind_stats(),
            "recovery": None if self.recovery is None else self.recovery.summary(),
        }

    def hit_rates(self) -> dict[str, float]:
        """Replay rates per schedule direction *and* plan kind.

        Merges the wire-schedule directions (``gather``/``scatter``/
        ``repartition`` from ``ctx.cached_gather``/``ctx.redistribute``)
        with the compiled-plan kinds (``doall``, ``adi-line``), so a
        pure-doall program still reports its compile-once/replay-forever
        ratio here, e.g. ``{"doall": 0.99}``.  The direction and kind
        namespaces are disjoint.
        """
        out: dict[str, float] = {}
        for source in (self.cache.by_direction, self.plans.by_kind):
            for name, v in source.items():
                total = v["hits"] + v["misses"]
                out[name] = v["hits"] / total if total else 0.0
        return out

    def clear(self) -> None:
        """Drop every cached schedule and plan (the traces stay)."""
        self.cache.clear()
        self.plans.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Session(machine={self.machine!r}, grid="
            f"{None if self.grid is None else self.grid.shape}, "
            f"runs={self.runs}, plans={len(self.plans)}, "
            f"schedules={len(self.cache)})"
        )


class Program:
    """A compiled program: loops with frozen communication schedules,
    bound to the :class:`Session` that compiled them.

    Build one with :func:`repro.compile` / :meth:`Session.compile`; the
    doall analyses (and their gather/scatter
    :class:`~repro.compiler.commsched.TransferSchedule` objects) are
    derived eagerly at compile time, so every :meth:`run` -- including
    the first -- replays them.
    """

    def __init__(
        self,
        session: Session,
        *,
        loops: Sequence[Doall] = (),
        arrays: dict[str, Any] | None = None,
        routine: Callable | None = None,
        grid: ProcessorGrid | None = None,
    ):
        self.session = session
        self.loops = list(loops)
        #: name -> DistArray for binding inputs / reading results
        self.arrays = dict(arrays or {})
        #: names shared by several distinct arrays: unbindable by name
        self.ambiguous_names: set[str] = set()
        self.routine = routine
        self.grid = grid
        #: the :class:`~repro.tune.TuneResult` of a ``compile(...,
        #: tune=True)`` search (None when compiled without tuning)
        self.tune_result = None
        #: mid-run checkpoint slots written by ``run(checkpoint_every=k)``:
        #: the full (hydrated) snapshot the latest delta was diffed
        #: against -- deltas chain boundary-to-boundary -- and the
        #: latest (possibly incremental) one; read back hydrated via
        #: :meth:`latest_checkpoint`, which is what supervised recovery
        #: restores from
        self.ckpt_base = None
        self.ckpt_latest = None
        #: serializes runs of *this* Program: its arrays (and the
        #: StepPlan workspaces of its analyses) are the mutable state a
        #: run reads and writes, so two concurrent ``run``/``run_batch``
        #: calls on one Program execute one-after-the-other.  Distinct
        #: Programs -- even ones sharing a Session or its caches --
        #: run concurrently; the serving layer (:mod:`repro.serve`)
        #: relies on exactly this split.
        self.lock = threading.RLock()

    # -- execution ---------------------------------------------------------

    def run(
        self,
        *args: Any,
        iters: int = 1,
        overlap: bool = False,
        compiled: bool | None = None,
        marks: str | None = None,
        machine: Machine | None = None,
        backend: "str | Backend | None" = None,
        bindings: dict[str, np.ndarray] | None = None,
        session: Session | None = None,
        checkpoint_every: int | None = None,
        **kwargs: Any,
    ) -> Trace:
        """Execute the program; returns the :class:`~repro.machine.trace.Trace`.

        For loop programs, keyword arguments (or the explicit
        ``bindings`` dict) name arrays to load from global numpy values
        before running, ``iters`` repeats the whole loop sequence, and
        ``overlap=True`` runs the overlap-aware executor.  For parsub
        programs, ``*args``/``**kwargs`` are forwarded to the routine.
        Each run replays the schedules frozen at compile time --
        re-running never re-derives communication.

        ``compiled`` (default True, from the Session) picks the
        executor: the compiled fast path resolves each loop's cached
        analysis once per run and replays its frozen per-rank
        :class:`~repro.compiler.commgen.StepPlan` every sweep -- no
        per-sweep cache probe, no expression interpretation;
        ``compiled=False`` runs the interpreted reference executor.
        Results, traces, and cache accounting are bit-identical between
        the two.  ``marks="cheap"`` additionally aggregates steady-state
        schedule marks into ``Trace.mark_counts`` instead of per-op
        records (default "full" is unchanged behavior).

        ``backend`` (default from the Session) picks the execution
        backend.  With ``"multiprocessing"`` (or a
        :class:`~repro.machine.mpbackend.MultiprocessingBackend`
        instance) the compiled loop path executes on real shared-memory
        worker processes -- results, schedule accounting, and the
        cost-model-stamped trace stay bit-identical to the simulator;
        parsub routines and ``compiled=False`` runs fall back to the
        backend's inner reference machine.

        ``session`` overrides the Session the launch executes in (the
        serving layer checks out pooled Sessions whose caches are
        shared, so a Program compiled anywhere replays its frozen
        schedules there).  Runs of one Program are serialized on
        :attr:`lock` -- its arrays and plan workspaces are the mutable
        state -- while distinct Programs run concurrently.

        ``checkpoint_every=k`` (loop programs only) snapshots array
        state at every k-th sweep boundary: a full
        :class:`~repro.elastic.Checkpoint` of this program before the
        first sweep, then a cheap *incremental* one after each k-sweep
        leg (per-array dirty deltas against the *previous* boundary's
        snapshot, chained so an array that stops changing elides its
        data again), landing on :attr:`ckpt_base`/:attr:`ckpt_latest`.  The run executes as
        ``ceil(iters/k)`` chunked legs -- results are identical to one
        un-chunked run (the split-iters invariant the elastic tests
        pin), though each leg records its own trace in the session
        history and the returned trace covers the final leg only.
        Recovery (:class:`repro.supervise.Supervisor`) restores
        :meth:`latest_checkpoint` and resumes from its sweep cursor
        instead of sweep 0.
        """
        with self.lock:
            if checkpoint_every is not None:
                return self._run_checkpointed(
                    args, kwargs, checkpoint_every=checkpoint_every,
                    iters=iters, overlap=overlap, compiled=compiled,
                    marks=marks, machine=machine, backend=backend,
                    bindings=bindings, session=session,
                )
            return self._run(
                args, kwargs, iters=iters, overlap=overlap,
                compiled=compiled, marks=marks, machine=machine,
                backend=backend, bindings=bindings, session=session,
            )

    def _run(
        self, args, kwargs, *, iters, overlap, compiled, marks,
        machine, backend, bindings, session,
    ) -> Trace:
        sess = session if session is not None else self.session
        if iters < 1:
            raise ValidationError(f"iters must be >= 1, got {iters}")
        if compiled is None:
            compiled = sess.compiled
        if self.routine is not None:
            if bindings is not None:
                raise ValidationError("bindings apply to loop programs only")
            if overlap:
                raise ValidationError(
                    "overlap applies to loop programs only; a parsub "
                    "routine chooses per call via ctx.doall(loop, "
                    "overlap=True)"
                )
            routine, niters = self.routine, iters

            def _program(ctx):
                for _ in range(niters):
                    yield from routine(ctx, *args, **kwargs)

            return sess.run(
                _program, machine=machine, grid=self.grid,
                backend=backend, compiled=compiled, marks=marks,
            )

        if args:
            raise ValidationError(
                "positional arguments apply to parsub programs only; "
                "pass loop-program inputs as name=array bindings"
            )
        merged = dict(bindings or {})
        merged.update(kwargs)
        self._apply_bindings(merged)
        loops, niters = self.loops, iters

        if compiled and loops:
            # Backends that lower frozen loop replays to real parallel
            # execution take the whole run here; the generic path below
            # stays generator-driven on the (possibly inner) simulator.
            resolved = backend if backend is not None else sess.backend
            mach = machine if machine is not None else sess.machine
            if mach is None:
                mach = getattr(resolved, "machine", None)
            mach, grid = sess._resolve(mach, self.grid)
            runner = sess._resolve_backend(backend, mach)
            if hasattr(runner, "run_loops"):
                trace = runner.run_loops(
                    sess, loops, grid,
                    iters=niters, overlap=overlap, marks=marks,
                )
                return sess._record(trace)

        if compiled:
            # The steady-state fast path: resolve each loop's analysis
            # at its first execution (one cache probe per loop per rank
            # per *run*), then replay the frozen StepPlans directly --
            # later sweeps skip the structural-key walk and count as-if
            # hits so the accounting matches the interpreted path's
            # per-sweep probes.  Loop programs contain no redistribution,
            # so a pinned analysis cannot go stale within a run; between
            # runs the probe picks up any layout change.
            from repro.compiler.schedule import replay_analysis

            def _program(ctx):
                plans = ctx.session.plans
                resolved: list = [None] * len(loops)
                for _ in range(niters):
                    for n, loop in enumerate(loops):
                        if resolved[n] is None:
                            analysis, reused = plans.analysis(loop)
                            resolved[n] = analysis
                        else:
                            analysis, reused = resolved[n], True
                            plans.count_replay("doall")
                        yield from replay_analysis(
                            ctx, analysis, overlap=overlap,
                            compiled=True, reused=reused,
                        )
        else:
            def _program(ctx):
                for _ in range(niters):
                    for loop in loops:
                        yield from ctx.doall(loop, overlap=overlap, compiled=False)

        return sess.run(
            _program, machine=machine, grid=self.grid,
            backend=backend, compiled=compiled, marks=marks,
        )

    def _apply_bindings(self, merged: dict) -> None:
        """Load ``{name: global array}`` bindings into the live arrays."""
        for name, value in merged.items():
            if name in self.ambiguous_names:
                raise ValidationError(
                    f"binding {name!r} is ambiguous: several distinct "
                    "arrays share that name; give them unique names"
                )
            if name not in self.arrays:
                raise ValidationError(
                    f"unknown binding {name!r}: this program's arrays are "
                    f"{sorted(self.arrays)}"
                )
            self.arrays[name].from_global(np.asarray(value))

    def _run_checkpointed(
        self, args, kwargs, *, checkpoint_every, iters, overlap,
        compiled, marks, machine, backend, bindings, session,
    ) -> Trace:
        """Chunked-leg driver behind ``run(checkpoint_every=k)``.

        Relies on the split-iters invariant -- ``run(iters=a)`` then
        ``run(iters=b)`` leaves the same state as ``run(iters=a+b)`` --
        so sweeping in legs with a snapshot between them changes no
        result.  Bindings apply once, before the sweep-0 base snapshot,
        so a restore of *any* checkpoint of this run already has them.
        """
        from repro.elastic import checkpoint as _checkpoint

        self._require_loops("checkpoint_every=")
        if args:
            raise ValidationError(
                "positional arguments apply to parsub programs only; "
                "pass loop-program inputs as name=array bindings"
            )
        if checkpoint_every < 1:
            raise ValidationError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        if iters < 1:
            raise ValidationError(f"iters must be >= 1, got {iters}")
        sess = session if session is not None else self.session
        merged = dict(bindings or {})
        merged.update(kwargs)
        self._apply_bindings(merged)
        base = _checkpoint(sess, sweep=0, programs=[self])
        self.ckpt_base = base
        self.ckpt_latest = base
        prev = base   # each boundary's delta diffs against the previous one
        trace, done = None, 0
        while done < iters:
            leg = min(checkpoint_every, iters - done)
            trace = self._run(
                (), {}, iters=leg, overlap=overlap, compiled=compiled,
                marks=marks, machine=machine, backend=backend,
                bindings=None, session=session,
            )
            done += leg
            inc = _checkpoint(
                sess, sweep=done, base=prev, programs=[self]
            )
            self.ckpt_base = prev
            self.ckpt_latest = inc
            prev = inc.merged(prev)
        return trace

    def latest_checkpoint(self):
        """The most recent mid-run checkpoint, hydrated to a full
        :class:`~repro.elastic.Checkpoint` (None until a
        ``run(checkpoint_every=k)`` takes one).  Its ``sweep`` cursor
        says how many sweeps of that run it reflects -- restore it and
        run ``iters - sweep`` more to finish the interrupted run.
        """
        ck = self.ckpt_latest
        if ck is None:
            return None
        if getattr(ck, "kind", "full") == "incremental":
            return ck.merged(self.ckpt_base)
        return ck

    def run_batch(
        self,
        bindings: Sequence[dict],
        *,
        iters: int = 1,
        overlap: bool = False,
        marks: str | None = None,
        machine: Machine | None = None,
        backend: "str | Backend | None" = None,
        session: Session | None = None,
    ) -> "BatchResult":
        """Execute this loop program over many bindings as one batched sweep.

        ``bindings`` is a sequence of ``{name: global array}`` dicts --
        the same keyword bindings :meth:`run` takes -- one per ensemble
        member.  Instead of looping ``run`` per member, the whole
        ensemble executes as a *single vectorized run*: every array
        block gains a leading batch axis, the frozen schedules replay
        once per sweep with each payload slot widened by the batch
        factor, and the compiled rhs closures evaluate all members in
        one numpy call.  Wire message **counts** are identical to one
        single-binding run; compute and bytes honestly scale by the
        batch size.  See
        :func:`repro.compiler.schedule.replay_batch_analysis`.

        Each member starts from the program's pre-call array state with
        its own bindings applied -- exactly what a fresh ``run`` per
        member would see -- and results are **bit-identical** to that
        looped reference (the property tests assert it).  After the
        call, the live arrays hold the *last* member's final state, again
        matching the loop; per-member results come back stacked on
        :class:`BatchResult`.

        ``session`` overrides the launch Session (pooled serving);
        ``marks``/``machine`` are as in :meth:`run`.  The batched
        executor is always the compiled path (there is no interpreted
        batch twin) and runs on the **simulator backend only**: passing
        any other ``backend`` raises :class:`ValidationError` (it used
        to be silently ignored), and a Session whose *default* backend
        is non-simulator is routed to the simulator with an explicit
        ``UserWarning`` -- see "run_batch limitations" in
        ``docs/api.md``.
        """
        with self.lock:
            return self._run_batch(
                bindings, iters=iters, overlap=overlap, marks=marks,
                machine=machine, backend=backend, session=session,
            )

    def _run_batch(
        self, bindings, *, iters, overlap, marks, machine, session,
        backend=None,
    ) -> "BatchResult":
        sess = session if session is not None else self.session
        self._require_loops("run_batch()")
        # Batched replay has no multiprocessing twin yet (ROADMAP item):
        # an explicitly requested non-simulator backend is an error, not
        # a silent simulator run; a non-simulator *session default* is
        # routed to the simulator with a warning, since the caller never
        # named a backend for this call.
        if backend is not None and backend != "simulator" \
                and not isinstance(backend, Machine):
            raise ValidationError(
                "run_batch() executes on the simulator backend only "
                f"(got backend={backend!r}); batched execution on the "
                "multiprocessing backend is not implemented -- run it "
                "without backend=, or loop Program.run per binding"
            )
        if backend is None and sess.backend is not None \
                and sess.backend != "simulator":
            warnings.warn(
                "run_batch() executes on the simulator backend; the "
                f"session's default backend ({sess.backend!r}) is "
                "ignored for this call",
                UserWarning,
                stacklevel=3,
            )
        bindings = [dict(b) for b in bindings]
        if not bindings:
            raise ValidationError("run_batch() needs at least one binding")
        if iters < 1:
            raise ValidationError(f"iters must be >= 1, got {iters}")
        for b in bindings:
            for name in b:
                if name in self.ambiguous_names:
                    raise ValidationError(
                        f"binding {name!r} is ambiguous: several distinct "
                        "arrays share that name; give them unique names"
                    )
                if name not in self.arrays:
                    raise ValidationError(
                        f"unknown binding {name!r}: this program's arrays "
                        f"are {sorted(self.arrays)}"
                    )
        nbatch = len(bindings)
        loops, niters = self.loops, iters
        grid = self.grid

        arrays: dict[int, Any] = {}
        for loop in loops:
            for arr in loop.arrays():
                if getattr(arr, "base", None) is not None:
                    raise ValidationError(
                        "run_batch() cannot batch a program over array "
                        f"Sections ({arr.name!r} views another array's "
                        "storage); run the base arrays directly"
                    )
                arrays[arr.uid] = arr

        # Stage the batched shadow blocks: member b's initial state is
        # the pre-call array contents with bindings[b] applied, staged
        # through the live arrays (from_global owns the scatter logic)
        # and restored between members so bindings never leak across.
        snap = {
            (uid, r): arr.local(r).copy()
            for uid, arr in arrays.items() for r in grid.linear
        }
        blocks = {
            (uid, r): np.empty((nbatch,) + arr.local(r).shape, dtype=arr.dtype)
            for uid, arr in arrays.items() for r in grid.linear
        }
        for b, binding in enumerate(bindings):
            for (uid, r), saved in snap.items():
                arrays[uid].local(r)[...] = saved
            for name, value in binding.items():
                self.arrays[name].from_global(np.asarray(value))
            for (uid, r), batched in blocks.items():
                batched[b] = arrays[uid].local(r)

        from repro.compiler.schedule import replay_batch_analysis

        # Same resolve-once steady-state discipline as the compiled
        # path in _run: one cache probe per loop per rank per run,
        # replays counted as-if hits.
        def _program(ctx):
            me = ctx.rank
            myblocks = {
                uid: batched for (uid, r), batched in blocks.items() if r == me
            }
            plans = ctx.session.plans
            resolved: list = [None] * len(loops)
            for _ in range(niters):
                for n, loop in enumerate(loops):
                    if resolved[n] is None:
                        analysis, reused = plans.analysis(loop)
                        resolved[n] = analysis
                    else:
                        analysis, reused = resolved[n], True
                        plans.count_replay("doall")
                    yield from replay_batch_analysis(
                        ctx, analysis, myblocks, nbatch,
                        overlap=overlap, reused=reused,
                    )

        trace = sess.run(
            _program, machine=machine, grid=grid, marks=marks,
            backend="simulator",
        )

        # Write back member by member, collecting each one's global
        # view; member order leaves the live arrays holding the last
        # member's final state -- what a run-per-binding loop leaves.
        named = {
            name: arr for name, arr in self.arrays.items()
            if getattr(arr, "uid", None) in arrays
        }
        results = {
            name: np.empty((nbatch,) + arr.shape, dtype=arr.dtype)
            for name, arr in named.items()
        }
        for b in range(nbatch):
            for (uid, r), batched in blocks.items():
                arrays[uid].local(r)[...] = batched[b]
            for name, arr in named.items():
                results[name][b] = arr.to_global()
        return BatchResult(trace, nbatch, results)

    # -- static analysis ---------------------------------------------------

    def _require_loops(self, what: str) -> None:
        if not self.loops:
            raise ValidationError(
                f"{what} needs compiled loops; this Program wraps an opaque "
                "parsub routine"
            )

    def loop_estimates(self) -> list[LoopEstimate]:
        """One :class:`~repro.compiler.estimate.LoopEstimate` per loop."""
        self._require_loops("loop_estimates()")
        # count=False: static lookups must not inflate the replay stats
        return [
            estimate_doall(loop, plans=self.session.plans, count=False)
            for loop in self.loops
        ]

    def estimate(self, cost: CostModel | None = None, overlap: bool = False) -> float:
        """Predicted critical-path time of one sweep (all loops, in order).

        Wraps :meth:`LoopEstimate.predicted_time` per loop and sums --
        loops execute back to back.  ``cost`` defaults to the Session's.
        """
        cost = cost if cost is not None else self.session.cost
        if cost is None:
            raise ValidationError(
                "no cost model: pass one or give the Session a machine/cost"
            )
        return sum(
            est.predicted_time(cost, overlap=overlap)
            for est in self.loop_estimates()
        )

    def schedules(self) -> dict[str, list]:
        """The frozen per-rank TransferSchedules, by direction.

        ``{"gather": [...], "scatter": [...]}`` -- exactly the schedules
        every :meth:`run` replays; derived at compile time from the
        distribution clauses alone.
        """
        self._require_loops("schedules()")
        out: dict[str, list] = {"gather": [], "scatter": []}
        for analysis in self._analyses():
            for plans in analysis.read_plans:
                for rank in analysis.ranks:
                    ts = plans[rank].transfer
                    if ts is not None:
                        out["gather"].append(ts)
            for stmt_idx in range(len(analysis.stmts)):
                for rank in analysis.ranks:
                    ts = analysis.write_plans[stmt_idx][rank].transfer
                    if ts is not None:
                        out["scatter"].append(ts)
        return out

    def _analyses(self):
        # count=False: static lookups must not inflate the replay stats
        return [
            self.session.plans.analysis(loop, count=False)[0]
            for loop in self.loops
        ]

    def stats(self) -> dict:
        """Session-level reuse accounting: per-direction schedule hit
        rates, per-kind plan hit/miss counts, and the launch count."""
        s = self.session.stats()
        return {
            "runs": s["runs"],
            "directions": s["directions"],
            "hit_rates": self.session.hit_rates(),
            "plans": s["plans"],
        }

    def explain(self) -> str:
        """The message pattern derived at compile time, human-readable.

        One block per loop: per-rank iteration counts, flops, and the
        exact messages/bytes each rank sends and receives every sweep --
        read off the frozen schedules, so what it says is what replays.
        """
        self._require_loops("explain()")
        lines: list[str] = []
        for n, (loop, est) in enumerate(zip(self.loops, self.loop_estimates())):
            head = ",".join(v.name for v in loop.vars)
            total_msgs = sum(r.msgs_out for r in est.per_rank)
            total_bytes = sum(r.bytes_out for r in est.per_rank)
            lines.append(
                f"loop {n}: doall[{head}] over grid {loop.grid.shape} -- "
                f"{total_msgs} msgs / {total_bytes} bytes per sweep"
            )
            for r in est.per_rank:
                lines.append(
                    f"  rank {r.rank}: {r.iterations} points, "
                    f"{r.flops:.0f} flops, out {r.msgs_out} msgs/"
                    f"{r.bytes_out}B, in {r.msgs_in} msgs/{r.bytes_in}B"
                )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.routine is not None:
            return f"Program(parsub {getattr(self.routine, '__name__', '?')})"
        return (
            f"Program({len(self.loops)} loop(s), arrays="
            f"{sorted(self.arrays)}, grid="
            f"{None if self.grid is None else self.grid.shape})"
        )


class BatchResult:
    """Stacked per-member results of one :meth:`Program.run_batch`.

    ``result[name]`` is a ``(nbatch,) + array shape`` numpy array whose
    slice ``[b]`` is bit-identical to what ``Program.run`` with
    ``bindings[b]`` would have left in ``Program.arrays[name]``.
    ``trace`` is the single batched run's trace (one sweep's message
    count, batch-scaled compute).
    """

    def __init__(self, trace: Trace, nbatch: int, results: dict[str, np.ndarray]):
        self.trace = trace
        self.nbatch = nbatch
        self.results = results

    def __getitem__(self, name: str) -> np.ndarray:
        return self.results[name]

    def __contains__(self, name: str) -> bool:
        return name in self.results

    def keys(self):
        return self.results.keys()

    def __len__(self) -> int:
        return self.nbatch

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BatchResult(nbatch={self.nbatch}, "
            f"arrays={sorted(self.results)})"
        )


def run_batch(program: Program, bindings: Sequence[dict], **kwargs) -> BatchResult:
    """Run ``program`` over many bindings as one batched ensemble sweep.

    Module-level convenience for :meth:`Program.run_batch`; see there
    for semantics (bit-identical to a run-per-binding loop, one
    schedule replay for the whole ensemble).
    """
    return program.run_batch(bindings, **kwargs)


def compile(
    obj,
    session: Session | None = None,
    *,
    machine: Machine | None = None,
    grid: ProcessorGrid | None = None,
    tune: bool = False,
    tune_budget: int | None = None,
    tune_space=None,
) -> Program:
    """Compile a program into a :class:`Program` artifact.

    ``obj`` may be:

    * a :class:`~repro.lang.doall.Doall` loop, or a sequence of them
      (executed in order per sweep);
    * KF1 source text, or a parsed :class:`~repro.lang.kf1.KF1Program`
      -- this is what makes KF1 listings executable without hand-wiring:
      the parsed arrays are exposed on ``Program.arrays`` for bindings
      and results;
    * a parsub generator function ``def routine(ctx, ...)`` (opaque: it
      runs under the Session but has no static loop analyses).

    Communication analysis runs *now*: each loop's plan -- including the
    frozen gather/scatter TransferSchedules -- is derived into the
    Session's plan cache, so every subsequent ``Program.run`` replays
    it.  With no ``session``, a fresh one is created around ``machine``
    (isolation by default); pass an explicit Session to share warmed
    schedules between programs.

    ``tune=True`` runs a budgeted :func:`repro.tune.tune` search over
    layouts before returning (loop programs only) and applies the
    winner, so the returned Program is already frozen on the chosen
    layout; the :class:`~repro.tune.TuneResult` lands on
    ``Program.tune_result``.  ``tune_budget`` caps how many candidates
    execute (default: one quarter of the enumeration) and
    ``tune_space`` overrides the derived :class:`~repro.tune.TuneSpace`.
    The search prefers the Session's host calibration
    (``Session.calibration``) over its simulated cost model.
    """
    if session is None:
        session = Session(machine=machine, grid=grid)
    elif machine is not None:
        # never mutate or second-guess a caller's Session: the machine
        # belongs to the Session (or to run()), not to compilation
        raise ValidationError(
            "pass machine to the Session or to run(), not to "
            "compile(session=...)"
        )

    if isinstance(obj, str):
        obj = parse_program(obj)
    if isinstance(obj, KF1Program):
        program = Program(
            session,
            loops=obj.loops,
            arrays=dict(obj.arrays),
            grid=obj.grid,
        )
    elif isinstance(obj, Doall):
        arrays, ambiguous = _loop_arrays([obj])
        program = Program(session, loops=[obj], arrays=arrays, grid=obj.grid)
        program.ambiguous_names = ambiguous
    elif isinstance(obj, Iterable) and not callable(obj):
        loops = list(obj)
        if not loops or not all(isinstance(lp, Doall) for lp in loops):
            raise ValidationError(
                "compile() of a sequence needs one or more Doall loops"
            )
        gkeys = {lp.grid.key() for lp in loops}
        if len(gkeys) != 1:
            raise ValidationError(
                "compile() loops must share one processor grid; wrap "
                "multi-grid programs in a parsub routine instead"
            )
        arrays, ambiguous = _loop_arrays(loops)
        program = Program(
            session, loops=loops, arrays=arrays, grid=loops[0].grid
        )
        program.ambiguous_names = ambiguous
    elif callable(obj):
        program = Program(
            session,
            routine=obj,
            grid=grid if grid is not None else session.grid,
        )
    else:
        raise ValidationError(
            f"cannot compile {type(obj).__name__}: expected a Doall, a "
            "sequence of Doalls, KF1 source, a KF1Program, or a parsub "
            "routine"
        )

    if grid is not None and program.loops and grid.key() != program.grid.key():
        raise ValidationError(
            "grid mismatch: loop/KF1 programs carry their own grid "
            f"{program.grid.shape}; omit grid= or pass a matching one"
        )
    for loop in program.loops:
        session.plans.analysis(loop)  # freeze schedules at compile time
    session._register_program(program)
    if tune:
        from repro.tune import tune as _tune

        result = _tune(program, space=tune_space, budget=tune_budget)
        result.apply()
        program.tune_result = result
    return program


def run_in(
    routine: Callable,
    machine: Machine,
    grid: ProcessorGrid,
    session: Session | None = None,
) -> Trace:
    """Run a parsub in ``session``, or in a fresh one when none is given.

    The launch path shared by the tensor solvers: an explicit Session
    observes (and reuses) the solver's caches across calls; omitting it
    gives each call its own Session, so repeated solves never alias each
    other's schedules.
    """
    if session is None:
        session = Session(machine, grid)
    return session.run(routine, machine=machine, grid=grid)


def launch(programs: dict, machine: Machine, session: Session | None = None) -> Trace:
    """Run pre-built per-rank node programs, in a Session if given.

    The one launch path for drivers that build node programs by hand
    (the 1-D kernels, the message-passing baselines): with a ``session``
    the trace is recorded in its history, without one this is plain
    ``machine.run``.
    """
    if session is not None:
        return session.launch(programs, machine=machine)
    return machine.run(programs)


def _loop_arrays(loops: Sequence[Doall]) -> tuple[dict[str, Any], set[str]]:
    """Name -> array map plus the set of ambiguous names.

    Two *distinct* arrays under one name (DistArray's default name is
    ``"A"``, so this is easy to do accidentally) cannot be bound or read
    by name; such programs still compile and run — only the name-based
    slots are withheld, and ``Program.run`` rejects bindings to them.
    """
    out: dict[str, Any] = {}
    ambiguous: set[str] = set()
    for loop in loops:
        for arr in loop.arrays():
            other = out.setdefault(arr.name, arr)
            if other is not arr:
                ambiguous.add(arr.name)
    for name in ambiguous:
        del out[name]
    return out, ambiguous


# ----------------------------------------------------------------------
# The implicit default Session behind the deprecated shims
# ----------------------------------------------------------------------

_DEFAULT_SESSION: Session | None = None


def default_session() -> Session:
    """The implicit Session the deprecated shims route through.

    Wraps the historical process-global caches
    (:data:`repro.compiler.commsched.DEFAULT_CACHE`, the default plan
    cache, the process-wide run-id counter), so legacy ``run_spmd``
    code produces bit-identical traces to the pre-Session library.
    Everything except those shims should hold an explicit Session.
    """
    global _DEFAULT_SESSION
    if _DEFAULT_SESSION is None:
        from repro.compiler import commsched
        from repro.compiler import schedule as _schedule

        s = Session()
        s.cache = commsched.DEFAULT_CACHE
        s.plans = _schedule.DEFAULT_PLANS
        _DEFAULT_SESSION = s
    return _DEFAULT_SESSION
