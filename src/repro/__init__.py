"""repro: KF1 parallel language constructs for tensor product computations.

A full reproduction of Mehrotra & Van Rosendale, "Parallel Language
Constructs for Tensor Product Computations on Loosely Coupled
Architectures" (ICASE 89-41 / SC 1989), built on a deterministic
simulated multicomputer.

Layers (see DESIGN.md):

* :mod:`repro.machine` -- the simulated distributed-memory machine;
* :mod:`repro.lang` -- processor arrays, distributions, distributed
  arrays, doall loops (the paper's language constructs);
* :mod:`repro.compiler` -- strip-mining, communication generation,
  scheduling, performance estimation;
* :mod:`repro.kernels` -- 1-D kernels: tridiagonal solvers (sequential,
  substructured, pipelined, cyclic reduction), FFT, splines;
* :mod:`repro.tensor` -- tensor product algorithms: Jacobi, ADI, 2-D and
  3-D multigrid with zebra relaxation;
* :mod:`repro.baselines` -- sequential and hand-message-passing
  comparison codes.

Quickstart (the two-phase compile-and-run API; see docs/api.md)::

    import numpy as np
    import repro

    session = repro.Session(repro.Machine(n_procs=4))
    program = repro.compile('''
        processors procs(2, 2)
        real X(0:64, 0:64) dist (block, block)
        real f(0:64, 0:64) dist (block, block)
        doall (i, j) = [1, 63] * [1, 63] on owner(X(i, j))
          X(i, j) = 0.25*(X(i+1, j) + X(i-1, j) + X(i, j+1) + X(i, j-1)) - f(i, j)
        end doall
    ''', session=session)
    trace = program.run(f=np.zeros((65, 65)), iters=10)
    print(trace.summary(), program.stats()["hit_rates"])
"""

from repro.machine import (
    ANY,
    Backend,
    Barrier,
    Complete,
    Compute,
    CostModel,
    Hypercube,
    Line,
    Machine,
    Mark,
    Mesh2D,
    Now,
    Recv,
    Ring,
    Send,
    Torus2D,
    Trace,
)
from repro.machine.mpbackend import MultiprocessingBackend
from repro.lang import (
    Assign,
    Block,
    BlockCyclic,
    Cyclic,
    DistArray,
    Distribution,
    Doall,
    KF1Program,
    KaliCtx,
    OnProc,
    Owner,
    ProcessorGrid,
    Star,
    loopvars,
    parse_program,
    run_spmd,
)
from repro.compiler import (
    GatherSchedule,
    PlanCache,
    ScheduleCache,
    build_gather_schedule,
    cached_inspector_gather,
    clear_schedule_cache,
    estimate_doall,
    execute_gather,
    inspector_gather,
)
from repro.elastic import Checkpoint, checkpoint, morph, restore
from repro.machine.calibrate import CalibratedCostModel, calibrate, fit_calibration
from repro.tune import TuneResult, TuneSpace, tune
from repro.session import (
    BatchResult,
    Program,
    Session,
    compile,
    default_session,
    run_batch,
)
from repro.serve import Server, SessionPool
from repro.supervise import RecoveryLog, Supervisor, SupervisorPolicy
from repro import faults
from repro.util.errors import (
    CompileError,
    DeadlockError,
    DistributionError,
    MachineError,
    ReproDeprecationWarning,
    ReproError,
    ServerOverloadError,
    ValidationError,
)

__version__ = "0.2.0"

__all__ = [
    "__version__",
    # sessions and programs (the two-phase compile-and-run API)
    "Session", "Program", "compile", "default_session",
    # serving (pooled sessions, threaded front end, batched ensembles)
    "SessionPool", "Server", "run_batch", "BatchResult",
    # elasticity (grid morphing, durable session state)
    "Checkpoint", "checkpoint", "restore", "morph",
    # resilience (supervised runs, recovery policy, chaos API)
    "Supervisor", "SupervisorPolicy", "RecoveryLog", "faults",
    # tuning (host calibration, prune-then-execute layout search)
    "tune", "TuneResult", "TuneSpace",
    "calibrate", "CalibratedCostModel", "fit_calibration",
    # machine
    "Machine", "Backend", "MultiprocessingBackend", "CostModel", "Trace",
    "Complete", "Line", "Ring", "Mesh2D", "Torus2D", "Hypercube",
    "Compute", "Send", "Recv", "Barrier", "Mark", "Now", "ANY",
    # language
    "ProcessorGrid", "DistArray", "Distribution",
    "Block", "Cyclic", "BlockCyclic", "Star",
    "Doall", "Owner", "OnProc", "Assign", "loopvars",
    "KaliCtx", "KF1Program", "parse_program",
    # compiler
    "estimate_doall", "inspector_gather",
    "GatherSchedule", "ScheduleCache", "PlanCache", "build_gather_schedule",
    "execute_gather", "cached_inspector_gather", "clear_schedule_cache",
    # deprecated shims
    "run_spmd",
    # errors
    "ReproError", "MachineError", "DeadlockError",
    "DistributionError", "CompileError", "ValidationError",
    "ServerOverloadError", "ReproDeprecationWarning",
]
