"""repro: KF1 parallel language constructs for tensor product computations.

A full reproduction of Mehrotra & Van Rosendale, "Parallel Language
Constructs for Tensor Product Computations on Loosely Coupled
Architectures" (ICASE 89-41 / SC 1989), built on a deterministic
simulated multicomputer.

Layers (see DESIGN.md):

* :mod:`repro.machine` -- the simulated distributed-memory machine;
* :mod:`repro.lang` -- processor arrays, distributions, distributed
  arrays, doall loops (the paper's language constructs);
* :mod:`repro.compiler` -- strip-mining, communication generation,
  scheduling, performance estimation;
* :mod:`repro.kernels` -- 1-D kernels: tridiagonal solvers (sequential,
  substructured, pipelined, cyclic reduction), FFT, splines;
* :mod:`repro.tensor` -- tensor product algorithms: Jacobi, ADI, 2-D and
  3-D multigrid with zebra relaxation;
* :mod:`repro.baselines` -- sequential and hand-message-passing
  comparison codes.

Quickstart::

    import numpy as np
    from repro import Machine, ProcessorGrid
    from repro.tensor import jacobi_kf1

    machine = Machine(n_procs=4)
    grid = ProcessorGrid((2, 2))
    f = np.zeros((65, 65))
    x, trace = jacobi_kf1(machine, grid, f, iters=10)
    print(trace.summary())
"""

from repro.machine import (
    ANY,
    Barrier,
    Complete,
    Compute,
    CostModel,
    Hypercube,
    Line,
    Machine,
    Mark,
    Mesh2D,
    Now,
    Recv,
    Ring,
    Send,
    Torus2D,
    Trace,
)
from repro.lang import (
    Assign,
    Block,
    BlockCyclic,
    Cyclic,
    DistArray,
    Distribution,
    Doall,
    KaliCtx,
    OnProc,
    Owner,
    ProcessorGrid,
    Star,
    loopvars,
    run_spmd,
)
from repro.compiler import (
    GatherSchedule,
    ScheduleCache,
    build_gather_schedule,
    cached_inspector_gather,
    clear_schedule_cache,
    estimate_doall,
    execute_gather,
    inspector_gather,
)
from repro.util.errors import (
    CompileError,
    DeadlockError,
    DistributionError,
    MachineError,
    ReproError,
    ValidationError,
)

__version__ = "0.1.0"

__all__ = [
    "__version__",
    # machine
    "Machine", "CostModel", "Trace",
    "Complete", "Line", "Ring", "Mesh2D", "Torus2D", "Hypercube",
    "Compute", "Send", "Recv", "Barrier", "Mark", "Now", "ANY",
    # language
    "ProcessorGrid", "DistArray", "Distribution",
    "Block", "Cyclic", "BlockCyclic", "Star",
    "Doall", "Owner", "OnProc", "Assign", "loopvars",
    "KaliCtx", "run_spmd",
    # compiler
    "estimate_doall", "inspector_gather",
    "GatherSchedule", "ScheduleCache", "build_gather_schedule",
    "execute_gather", "cached_inspector_gather", "clear_schedule_cache",
    # errors
    "ReproError", "MachineError", "DeadlockError",
    "DistributionError", "CompileError", "ValidationError",
]
