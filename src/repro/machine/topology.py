"""Interconnect topologies for the simulated multicomputer.

A topology only has to answer two questions for the simulator: how many
processors exist, and how many link hops separate two of them.  Closed
forms are used for the standard topologies; :class:`GraphTopology` falls
back to networkx all-pairs shortest paths for arbitrary interconnects.
"""

from __future__ import annotations

from functools import lru_cache

import networkx as nx

from repro.util.errors import ValidationError


class Topology:
    """Abstract interconnect: ``n_procs`` nodes with a hop metric."""

    n_procs: int

    def hops(self, src: int, dst: int) -> int:
        """Number of link hops between ``src`` and ``dst``."""
        raise NotImplementedError

    def check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.n_procs:
            raise ValidationError(
                f"rank {rank} out of range for {type(self).__name__}({self.n_procs})"
            )

    def neighbors(self, rank: int) -> list[int]:
        """Ranks directly connected to ``rank`` (hops == 1)."""
        self.check_rank(rank)
        return [q for q in range(self.n_procs) if q != rank and self.hops(rank, q) == 1]

    def diameter(self) -> int:
        """Maximum hop distance over all processor pairs."""
        return max(
            self.hops(a, b) for a in range(self.n_procs) for b in range(self.n_procs)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n_procs={self.n_procs})"


class Complete(Topology):
    """Crossbar: every pair of distinct processors is one hop apart."""

    def __init__(self, n_procs: int):
        if n_procs <= 0:
            raise ValidationError("n_procs must be positive")
        self.n_procs = n_procs

    def hops(self, src: int, dst: int) -> int:
        self.check_rank(src)
        self.check_rank(dst)
        return 0 if src == dst else 1


class Line(Topology):
    """Open 1-D chain of processors."""

    def __init__(self, n_procs: int):
        if n_procs <= 0:
            raise ValidationError("n_procs must be positive")
        self.n_procs = n_procs

    def hops(self, src: int, dst: int) -> int:
        self.check_rank(src)
        self.check_rank(dst)
        return abs(src - dst)


class Ring(Topology):
    """Closed 1-D ring of processors."""

    def __init__(self, n_procs: int):
        if n_procs <= 0:
            raise ValidationError("n_procs must be positive")
        self.n_procs = n_procs

    def hops(self, src: int, dst: int) -> int:
        self.check_rank(src)
        self.check_rank(dst)
        d = abs(src - dst)
        return min(d, self.n_procs - d)


class Mesh2D(Topology):
    """Open 2-D mesh; ranks are row-major over ``rows x cols``."""

    def __init__(self, rows: int, cols: int):
        if rows <= 0 or cols <= 0:
            raise ValidationError("mesh dimensions must be positive")
        self.rows = rows
        self.cols = cols
        self.n_procs = rows * cols

    def coords(self, rank: int) -> tuple[int, int]:
        self.check_rank(rank)
        return divmod(rank, self.cols)

    def rank_of(self, r: int, c: int) -> int:
        if not (0 <= r < self.rows and 0 <= c < self.cols):
            raise ValidationError(f"coords ({r},{c}) outside {self.rows}x{self.cols}")
        return r * self.cols + c

    def hops(self, src: int, dst: int) -> int:
        (r1, c1), (r2, c2) = self.coords(src), self.coords(dst)
        return abs(r1 - r2) + abs(c1 - c2)


class Torus2D(Mesh2D):
    """2-D mesh with wraparound links in both dimensions."""

    def hops(self, src: int, dst: int) -> int:
        (r1, c1), (r2, c2) = self.coords(src), self.coords(dst)
        dr = abs(r1 - r2)
        dc = abs(c1 - c2)
        return min(dr, self.rows - dr) + min(dc, self.cols - dc)


class Hypercube(Topology):
    """Binary hypercube of dimension ``dim`` (2**dim processors).

    This is the canonical 1989 interconnect; the substructured solver's
    shuffle mapping keeps every reduction-step exchange at one hop here.
    """

    def __init__(self, dim: int):
        if dim < 0:
            raise ValidationError("hypercube dimension must be >= 0")
        self.dim = dim
        self.n_procs = 1 << dim

    def hops(self, src: int, dst: int) -> int:
        self.check_rank(src)
        self.check_rank(dst)
        return (src ^ dst).bit_count()

    @staticmethod
    def for_procs(n_procs: int) -> "Hypercube":
        """Smallest hypercube holding ``n_procs`` processors."""
        if n_procs <= 0:
            raise ValidationError("n_procs must be positive")
        dim = (n_procs - 1).bit_length()
        return Hypercube(dim)


class GraphTopology(Topology):
    """Arbitrary interconnect given as a networkx graph over ranks 0..n-1."""

    def __init__(self, graph: nx.Graph):
        n = graph.number_of_nodes()
        if n == 0:
            raise ValidationError("topology graph is empty")
        if set(graph.nodes) != set(range(n)):
            raise ValidationError("graph nodes must be exactly range(n)")
        if not nx.is_connected(graph):
            raise ValidationError("topology graph must be connected")
        self.n_procs = n
        self._graph = graph

    @lru_cache(maxsize=None)
    def _dist_from(self, src: int) -> dict[int, int]:
        return nx.single_source_shortest_path_length(self._graph, src)

    def hops(self, src: int, dst: int) -> int:
        self.check_rank(src)
        self.check_rank(dst)
        return self._dist_from(src)[dst]

    def neighbors(self, rank: int) -> list[int]:
        self.check_rank(rank)
        return sorted(self._graph.neighbors(rank))
