"""Rank translation for running kernels on processor-grid slices.

Kernel node programs (tridiagonal solvers, FFT) address processors by
dense internal ranks 0..p-1.  When such a kernel runs on a slice of the
real processor array (e.g. one column of a 2-D grid, as every ADI line
solve does), the internal ranks must be mapped to the slice's machine
ranks.  ``translate_ranks`` rewrites Send destinations, Recv sources and
Barrier groups of a node program through the group table -- the runtime
equivalent of KF1 passing ``procs(*, jp)`` to a parsub.
"""

from __future__ import annotations

from typing import Sequence

from repro.machine.ops import ANY, Barrier, Recv, Send


def translate_ranks(program, group: Sequence[int]):
    """Wrap a node program, mapping internal ranks through ``group``.

    ``group[i]`` is the machine rank playing internal rank ``i``.  The
    wrapped generator forwards values and return results transparently.
    """
    table = list(group)
    send_value = None
    while True:
        try:
            op = program.send(send_value)
        except StopIteration as stop:
            return stop.value
        send_value = None
        if isinstance(op, Send):
            op = Send(dst=table[op.dst], data=op.data, tag=op.tag, nbytes=op.nbytes)
        elif isinstance(op, Recv):
            src = op.src if op.src is ANY else table[op.src]
            op = Recv(src=src, tag=op.tag)
        elif isinstance(op, Barrier):
            op = Barrier(group=tuple(table[r] for r in op.group), tag=op.tag)
        send_value = yield op
