"""Simulated loosely coupled multicomputer.

This subpackage is the hardware substitute for the paper's distributed
memory machine (see DESIGN.md section 2).  Node programs are Python
generators yielding :mod:`repro.machine.ops` objects; the
:class:`~repro.machine.simulator.Machine` advances per-processor logical
clocks, routes messages under an alpha-beta-per-hop cost model over a
configurable topology, detects deadlock, and records a full execution
trace.

The simulator is the *reference* implementation of the
:class:`~repro.machine.backend.Backend` contract; the shared-memory
:class:`~repro.machine.mpbackend.MultiprocessingBackend` (imported
lazily -- not here -- to keep worker forks cheap) executes compiled
loop programs on real processes with bit-identical results and traces.
"""

from repro.machine.backend import Backend
from repro.machine.costmodel import CostModel
from repro.machine.topology import (
    Topology,
    Ring,
    Mesh2D,
    Torus2D,
    Hypercube,
    Complete,
    Line,
)
from repro.machine.ops import Compute, Send, Recv, Barrier, Mark, Now, ANY
from repro.machine.simulator import Machine
from repro.machine.trace import Trace
from repro.machine import collectives

__all__ = [
    "Backend",
    "CostModel",
    "Topology",
    "Ring",
    "Line",
    "Mesh2D",
    "Torus2D",
    "Hypercube",
    "Complete",
    "Compute",
    "Send",
    "Recv",
    "Barrier",
    "Mark",
    "Now",
    "ANY",
    "Machine",
    "Trace",
    "collectives",
]
