"""Communication and computation cost model.

The model is the classic Hockney / postal model extended with a per-hop
term for store-and-forward era networks:

    message time = alpha + beta * nbytes + gamma_hop * hops
    compute time = flop_time * flops

The 1989 default is deliberately latency-dominated (``alpha`` large
relative to ``beta * word``), matching the hypercube-generation machines
the paper targets; presets for other regimes are provided so benchmarks
can sweep the model where a claim depends on it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.util.errors import ValidationError


@dataclass(frozen=True)
class CostModel:
    """Timing parameters of the simulated machine.

    Attributes
    ----------
    alpha:
        Message startup latency in seconds.
    beta:
        Transfer time per byte in seconds.
    gamma_hop:
        Extra per-hop time in seconds (store-and-forward routing).
    flop_time:
        Seconds per floating point operation.
    send_overhead:
        Time the *sender* is occupied per message (CPU injection cost).
    word_bytes:
        Bytes per floating point word, used by helpers that count words.
    """

    alpha: float = 100e-6
    beta: float = 1e-6
    gamma_hop: float = 10e-6
    flop_time: float = 1e-6
    send_overhead: float = 50e-6
    word_bytes: int = 8

    def __post_init__(self) -> None:
        for name in ("alpha", "beta", "gamma_hop", "flop_time", "send_overhead"):
            if getattr(self, name) < 0:
                raise ValidationError(f"CostModel.{name} must be >= 0")
        if self.word_bytes <= 0:
            raise ValidationError("CostModel.word_bytes must be positive")

    def message_time(self, nbytes: int, hops: int = 1) -> float:
        """In-flight time of a message of ``nbytes`` over ``hops`` links."""
        if nbytes < 0:
            raise ValidationError(f"negative message size {nbytes}")
        if hops < 0:
            raise ValidationError(f"negative hop count {hops}")
        return self.alpha + self.beta * nbytes + self.gamma_hop * hops

    def message_time_words(self, nwords: int, hops: int = 1) -> float:
        """Message time for ``nwords`` floating point words."""
        return self.message_time(nwords * self.word_bytes, hops)

    def compute_time(self, flops: float) -> float:
        """Time to execute ``flops`` floating point operations."""
        if flops < 0:
            raise ValidationError(f"negative flop count {flops}")
        return self.flop_time * flops

    def overlapped_time(self, compute_s: float, comm_s: float) -> float:
        """Critical-path time of computation overlapped with communication.

        When a processor can keep computing while messages are in flight
        (asynchronous sends + a schedule that knows its interior points in
        advance), the two phases cost their maximum, not their sum -- the
        longer one hides the shorter.

        >>> CostModel.balanced().overlapped_time(3e-3, 2e-3)
        0.003
        """
        if compute_s < 0 or comm_s < 0:
            raise ValidationError("overlapped_time needs non-negative phases")
        return max(compute_s, comm_s)

    def scaled(self, **kwargs: float) -> "CostModel":
        """Return a copy with some parameters replaced."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------

    @staticmethod
    def hypercube_1989() -> "CostModel":
        """Hypercube-era machine: milliseconds of latency, ~1 Mflop/s."""
        return CostModel(
            alpha=500e-6,
            beta=2e-6,
            gamma_hop=50e-6,
            flop_time=1e-6,
            send_overhead=200e-6,
        )

    @staticmethod
    def balanced() -> "CostModel":
        """Communication and computation roughly balanced (default)."""
        return CostModel()

    @staticmethod
    def fast_network() -> "CostModel":
        """Network much faster than compute: near-PRAM regime."""
        return CostModel(
            alpha=1e-6,
            beta=1e-9,
            gamma_hop=0.0,
            flop_time=1e-6,
            send_overhead=0.5e-6,
        )

    @staticmethod
    def zero_comm() -> "CostModel":
        """Free communication; isolates algorithmic load balance."""
        return CostModel(
            alpha=0.0, beta=0.0, gamma_hop=0.0, flop_time=1e-6, send_overhead=0.0
        )
