"""Operations node programs may yield to the simulator.

A node program is a Python generator.  It yields op objects; the
simulator executes the op, charges simulated time, and resumes the
generator (sending back a value for ops that produce one, e.g.
:class:`Recv`).  Collective helpers in :mod:`repro.machine.collectives`
compose these primitives with ``yield from``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

import numpy as np

from repro.util.errors import ValidationError


class _Any:
    """Wildcard matcher for Recv source/tag."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "ANY"


#: Wildcard accepted by :class:`Recv` for ``src`` and ``tag``.
ANY = _Any()


def payload_nbytes(data: Any) -> int:
    """Estimate the wire size of a message payload in bytes.

    numpy arrays report their true buffer size; Python scalars count as
    one 8-byte word; containers are the sum of their elements plus one
    word of framing each.  ``None`` (pure synchronization) is free.
    """
    if data is None:
        return 0
    if isinstance(data, np.ndarray):
        return int(data.nbytes)
    if isinstance(data, (np.generic,)):
        return int(data.nbytes)
    if isinstance(data, (int, float, complex, bool)):
        return 8
    if isinstance(data, str):
        return len(data.encode())
    if isinstance(data, dict):
        return 8 + sum(payload_nbytes(k) + payload_nbytes(v) for k, v in data.items())
    if isinstance(data, (tuple, list, set, frozenset)):
        return 8 + sum(payload_nbytes(item) for item in data)
    return 64  # conservative default for unknown objects


def frozen_by_value(data: np.ndarray) -> bool:
    """True when an array payload is by-value without a copy.

    A payload is by-value when no live reference can mutate the memory
    the receiver will read: the array is read-only and so is every
    ndarray beneath it, down to a read-only *owner* of the buffer.  That
    covers both a frozen owning array and a read-only slice view of one
    (the frozen value vectors schedule replays hand out).  A read-only
    view of *writable* storage (``np.broadcast_to`` of a live buffer,
    say) fails the walk -- the sender can still mutate it through the
    base -- as does any base that is not an ndarray (memoryview-backed
    arrays, arbitrary buffer exports), conservatively.
    """
    a = data
    while True:
        if a.flags.writeable:
            return False
        base = a.base
        if base is None:
            return a.flags.owndata
        if not isinstance(base, np.ndarray):
            return False
        a = base


@dataclass(frozen=True)
class Compute:
    """Charge local computation time.

    Exactly one of ``flops`` or ``seconds`` must be given; ``flops`` is
    converted through the machine cost model.
    """

    flops: float | None = None
    seconds: float | None = None
    label: str | None = None

    def __post_init__(self) -> None:
        if (self.flops is None) == (self.seconds is None):
            raise ValidationError("Compute requires exactly one of flops/seconds")
        value = self.flops if self.flops is not None else self.seconds
        if value is not None and value < 0:
            raise ValidationError("Compute amount must be >= 0")


@dataclass(frozen=True)
class Send:
    """Asynchronous message send to processor ``dst``.

    The payload is snapshotted (numpy arrays copied) at send time, so
    later mutation by the sender cannot be observed by the receiver --
    this is what makes the copy-in semantics of doall loops safe.  A
    payload already frozen by the sender (``writeable=False``, see
    :func:`repro.compiler.commsched.freeze_payload`) is by-value
    already and ships without the copy.
    """

    dst: int
    data: Any = None
    tag: Hashable = 0
    nbytes: int | None = None

    def size(self) -> int:
        return self.nbytes if self.nbytes is not None else payload_nbytes(self.data)


@dataclass(frozen=True)
class Recv:
    """Blocking receive; evaluates to the message payload.

    ``src`` and ``tag`` may each be :data:`ANY`.  Matching is FIFO per
    (src, tag) channel and by arrival time across channels for wildcards.
    """

    src: int | _Any = ANY
    tag: Hashable = ANY


@dataclass(frozen=True)
class Barrier:
    """Synchronize a group of ranks; all leave at the latest entry time.

    Every rank in ``group`` must yield a Barrier with the same ``group``
    and ``tag``.
    """

    group: tuple[int, ...]
    tag: Hashable = "barrier"

    def __post_init__(self) -> None:
        if len(self.group) == 0:
            raise ValidationError("Barrier group must be non-empty")
        if len(set(self.group)) != len(self.group):
            raise ValidationError("Barrier group has duplicate ranks")


@dataclass(frozen=True)
class Mark:
    """Annotate the trace with a labelled, timestamped event.

    Used by kernels to expose algorithm phases (e.g. reduction steps) so
    benchmarks can regenerate the paper's data-flow figures from traces.
    """

    label: str
    payload: Any = None


@dataclass(frozen=True)
class Now:
    """Evaluates to the processor's current simulated clock (seconds)."""
