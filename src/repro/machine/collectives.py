"""Collective operations composed from point-to-point messages.

Each collective is a generator helper used inside node programs with
``yield from``; the return value (if any) comes back through the
``StopIteration`` value, so e.g.::

    total = yield from collectives.allreduce(rank, group, x, op=operator.add, tag=t)

All collectives use binomial trees over the *position* of a rank inside
``group``, so they work on arbitrary processor subsets (processor-array
slices, in the paper's terms).  Tags must be distinct per collective
invocation and identical across the group -- the language layer's
context allocates them.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Hashable, Sequence

from repro.machine.ops import Recv, Send
from repro.util.errors import ValidationError


def _position(rank: int, group: Sequence[int]) -> int:
    try:
        return list(group).index(rank)
    except ValueError:
        raise ValidationError(f"rank {rank} not in group {list(group)!r}") from None


def bcast(rank: int, group: Sequence[int], data: Any, *, root: int, tag: Hashable):
    """Broadcast ``data`` from ``root`` to every rank in ``group``."""
    group = list(group)
    size = len(group)
    rpos = _position(root, group)
    me = (_position(rank, group) - rpos) % size  # root-relative position
    value = data if rank == root else None
    # binomial tree: at round k, positions < 2**k forward to position + 2**k
    mask = 1
    while mask < size:
        mask <<= 1
    recv_done = me == 0
    k = 1
    while k < size:
        k <<= 1
    # walk rounds from the top so low positions send early
    rounds = []
    step = 1
    while step < size:
        rounds.append(step)
        step <<= 1
    for step in rounds:
        if me < step:
            peer = me + step
            if peer < size:
                dst = group[(peer + rpos) % size]
                yield Send(dst, value, tag=(tag, "bcast", peer))
        elif me < 2 * step and not recv_done:
            value = yield Recv(src=group[(me - step + rpos) % size], tag=(tag, "bcast", me))
            recv_done = True
    return value


def reduce(
    rank: int,
    group: Sequence[int],
    data: Any,
    *,
    root: int,
    tag: Hashable,
    op: Callable[[Any, Any], Any] = operator.add,
):
    """Reduce values from all ranks onto ``root``; others return None."""
    group = list(group)
    size = len(group)
    rpos = _position(root, group)
    me = (_position(rank, group) - rpos) % size
    value = data
    step = 1
    while step < size:
        if me % (2 * step) == 0:
            peer = me + step
            if peer < size:
                other = yield Recv(
                    src=group[(peer + rpos) % size], tag=(tag, "reduce", me, step)
                )
                value = op(value, other)
        elif me % (2 * step) == step:
            parent = me - step
            yield Send(
                group[(parent + rpos) % size], value, tag=(tag, "reduce", parent, step)
            )
            return None
        step <<= 1
    return value if rank == root else None


def allreduce(
    rank: int,
    group: Sequence[int],
    data: Any,
    *,
    tag: Hashable,
    op: Callable[[Any, Any], Any] = operator.add,
):
    """Reduce then broadcast: every rank returns the combined value."""
    group = list(group)
    root = group[0]
    value = yield from reduce(rank, group, data, root=root, tag=(tag, "ar_r"), op=op)
    value = yield from bcast(rank, group, value, root=root, tag=(tag, "ar_b"))
    return value


def gather(rank: int, group: Sequence[int], data: Any, *, root: int, tag: Hashable):
    """Gather one value per rank onto ``root`` as a list ordered by group.

    Flat (non-tree) gather: each non-root sends directly to root.  The
    list positions follow ``group`` order.  Non-roots return None.
    """
    group = list(group)
    if rank == root:
        out = [None] * len(group)
        out[_position(root, group)] = data
        for pos, src in enumerate(group):
            if src == root:
                continue
            out[pos] = yield Recv(src=src, tag=(tag, "gather", pos))
        return out
    yield Send(root, data, tag=(tag, "gather", _position(rank, group)))
    return None


def scatter(
    rank: int,
    group: Sequence[int],
    items: Sequence[Any] | None,
    *,
    root: int,
    tag: Hashable,
):
    """Scatter ``items`` (given at root, one per group rank) to the group."""
    group = list(group)
    if rank == root:
        if items is None or len(items) != len(group):
            raise ValidationError("scatter needs len(items) == len(group) at root")
        mine = items[_position(root, group)]
        for pos, dst in enumerate(group):
            if dst == root:
                continue
            yield Send(dst, items[pos], tag=(tag, "scatter", pos))
        return mine
    value = yield Recv(src=root, tag=(tag, "scatter", _position(rank, group)))
    return value


def allgather(rank: int, group: Sequence[int], data: Any, *, tag: Hashable):
    """Gather to group[0] then broadcast the full list to everyone."""
    group = list(group)
    root = group[0]
    items = yield from gather(rank, group, data, root=root, tag=(tag, "ag_g"))
    items = yield from bcast(rank, group, items, root=root, tag=(tag, "ag_b"))
    return items


def barrier_via_messages(rank: int, group: Sequence[int], *, tag: Hashable):
    """Message-based barrier (allreduce of nothing); for testing Barrier."""
    yield from allreduce(rank, group, 0, tag=(tag, "bar"), op=lambda a, b: 0)
    return None
