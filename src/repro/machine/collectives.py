"""Collective operations composed from point-to-point messages.

Each collective is a generator helper used inside node programs with
``yield from``; the return value (if any) comes back through the
``StopIteration`` value, so e.g.::

    total = yield from collectives.allreduce(rank, group, x, op=operator.add, tag=t)

All collectives use binomial trees over the *position* of a rank inside
``group``, so they work on arbitrary processor subsets (processor-array
slices, in the paper's terms).  Tags must be distinct per collective
invocation and identical across the group -- the language layer's
context allocates them.

Tree shapes are not re-derived per call: a :class:`TreeTable` tabulates
the binomial-tree routing of one (group, root) pair -- every rank's
receive source and ordered send destinations for broadcasts, child and
parent links for reductions -- and is cached process-wide, the
machine-layer analogue of the compiler's cached transfer schedules (and
of :class:`repro.kernels.substructured.TreeRouting`).  Wire behavior
(message order and tags) is identical to deriving the tree inline.
"""

from __future__ import annotations

import operator
from collections import OrderedDict
from typing import Any, Callable, Hashable, Sequence

from repro.machine.ops import Recv, Send
from repro.util.errors import ValidationError


def _position(rank: int, group: Sequence[int]) -> int:
    try:
        return list(group).index(rank)
    except ValueError:
        raise ValidationError(f"rank {rank} not in group {list(group)!r}") from None


class TreeTable:
    """Tabulated binomial-tree routing of one ``(group, root)`` pair.

    For every root-relative position the table precomputes the broadcast
    receive source and ordered send destinations, and the reduction
    child links and parent link, with machine ranks already resolved --
    so collective calls do no modular arithmetic or round scanning.
    """

    __slots__ = (
        "group",
        "root",
        "size",
        "_pos",
        "bcast_recv",
        "bcast_sends",
        "reduce_children",
        "reduce_parent",
    )

    def __init__(self, group: Sequence[int], root: int):
        group = tuple(group)
        self.group = group
        self.root = root
        size = self.size = len(group)
        rpos = _position(root, group)
        self._pos = {r: (p - rpos) % size for p, r in enumerate(group)}

        def rank_at(pos: int) -> int:
            return group[(pos + rpos) % size]

        steps = []
        step = 1
        while step < size:
            steps.append(step)
            step <<= 1

        #: position -> source rank of the single broadcast receive
        #: (None at the root position).
        self.bcast_recv: list[int | None] = [None] * size
        #: position -> [(dst rank, dst position), ...] in round order.
        self.bcast_sends: list[list[tuple[int, int]]] = [[] for _ in range(size)]
        #: position -> [(child rank, step), ...] in round order.
        self.reduce_children: list[list[tuple[int, int]]] = [[] for _ in range(size)]
        #: position -> (parent rank, parent position, step) or None.
        self.reduce_parent: list[tuple[int, int, int] | None] = [None] * size

        for me in range(size):
            if me > 0:
                up = 1 << (me.bit_length() - 1)  # highest power of two <= me
                self.bcast_recv[me] = rank_at(me - up)
            for step in steps:
                if me < step and me + step < size:
                    self.bcast_sends[me].append((rank_at(me + step), me + step))
            low = me & -me if me else 0  # lowest set bit
            for step in steps:
                if low and step >= low:
                    break
                if me + step < size:
                    self.reduce_children[me].append((rank_at(me + step), step))
            if me > 0:
                self.reduce_parent[me] = (rank_at(me - low), me - low, low)

    def pos_of(self, rank: int) -> int:
        """Root-relative position of a member rank."""
        try:
            return self._pos[rank]
        except KeyError:
            raise ValidationError(
                f"rank {rank} not in group {list(self.group)!r}"
            ) from None


#: Process-wide tree-routing tables, keyed by (group, root).  LRU-bounded
#: like every other cache in the repo: rebuilding an evicted table is
#: always safe (tables are derived deterministically from the key).
_TREE_TABLES: OrderedDict[tuple, TreeTable] = OrderedDict()
_TREE_TABLES_MAX = 512
_TREE_STATS = {"hits": 0, "builds": 0}


def get_tree_table(group: Sequence[int], root: int) -> tuple[TreeTable, bool]:
    """Cached table for ``(group, root)``; returns ``(table, was_cached)``."""
    key = (tuple(group), root)
    table = _TREE_TABLES.get(key)
    if table is not None:
        _TREE_STATS["hits"] += 1
        _TREE_TABLES.move_to_end(key)
        return table, True
    table = TreeTable(group, root)
    _TREE_TABLES[key] = table
    while len(_TREE_TABLES) > _TREE_TABLES_MAX:
        _TREE_TABLES.popitem(last=False)
    _TREE_STATS["builds"] += 1
    return table, False


def tree_table_stats() -> dict[str, int]:
    """Reuse counters of the tree-table cache."""
    return {"entries": len(_TREE_TABLES), **_TREE_STATS}


def clear_tree_tables() -> None:
    """Drop all cached tree tables (mostly for tests)."""
    _TREE_TABLES.clear()
    _TREE_STATS["hits"] = 0
    _TREE_STATS["builds"] = 0


def bcast(rank: int, group: Sequence[int], data: Any, *, root: int, tag: Hashable):
    """Broadcast ``data`` from ``root`` to every rank in ``group``.

    Binomial tree: a rank at root-relative position ``me`` receives once
    from position ``me - 2**floor(log2 me)`` and forwards to positions
    ``me + step`` for every round ``step > me``, all served from the
    cached :class:`TreeTable`.
    """
    table, _ = get_tree_table(group, root)
    me = table.pos_of(rank)
    value = data if rank == root else None
    src = table.bcast_recv[me]
    if src is not None:
        value = yield Recv(src=src, tag=(tag, "bcast", me))
    for dst, dst_pos in table.bcast_sends[me]:
        yield Send(dst, value, tag=(tag, "bcast", dst_pos))
    return value


def reduce(
    rank: int,
    group: Sequence[int],
    data: Any,
    *,
    root: int,
    tag: Hashable,
    op: Callable[[Any, Any], Any] = operator.add,
):
    """Reduce values from all ranks onto ``root``; others return None."""
    table, _ = get_tree_table(group, root)
    me = table.pos_of(rank)
    value = data
    for child, step in table.reduce_children[me]:
        other = yield Recv(src=child, tag=(tag, "reduce", me, step))
        value = op(value, other)
    parent = table.reduce_parent[me]
    if parent is not None:
        parent_rank, parent_pos, step = parent
        yield Send(parent_rank, value, tag=(tag, "reduce", parent_pos, step))
        return None
    return value if rank == root else None


def allreduce(
    rank: int,
    group: Sequence[int],
    data: Any,
    *,
    tag: Hashable,
    op: Callable[[Any, Any], Any] = operator.add,
):
    """Reduce then broadcast: every rank returns the combined value."""
    group = list(group)
    root = group[0]
    value = yield from reduce(rank, group, data, root=root, tag=(tag, "ar_r"), op=op)
    value = yield from bcast(rank, group, value, root=root, tag=(tag, "ar_b"))
    return value


def gather(rank: int, group: Sequence[int], data: Any, *, root: int, tag: Hashable):
    """Gather one value per rank onto ``root`` as a list ordered by group.

    Flat (non-tree) gather: each non-root sends directly to root.  The
    list positions follow ``group`` order.  Non-roots return None.
    """
    group = list(group)
    if rank == root:
        out = [None] * len(group)
        out[_position(root, group)] = data
        for pos, src in enumerate(group):
            if src == root:
                continue
            out[pos] = yield Recv(src=src, tag=(tag, "gather", pos))
        return out
    yield Send(root, data, tag=(tag, "gather", _position(rank, group)))
    return None


def scatter(
    rank: int,
    group: Sequence[int],
    items: Sequence[Any] | None,
    *,
    root: int,
    tag: Hashable,
):
    """Scatter ``items`` (given at root, one per group rank) to the group."""
    group = list(group)
    if rank == root:
        if items is None or len(items) != len(group):
            raise ValidationError("scatter needs len(items) == len(group) at root")
        mine = items[_position(root, group)]
        for pos, dst in enumerate(group):
            if dst == root:
                continue
            yield Send(dst, items[pos], tag=(tag, "scatter", pos))
        return mine
    value = yield Recv(src=root, tag=(tag, "scatter", _position(rank, group)))
    return value


def allgather(rank: int, group: Sequence[int], data: Any, *, tag: Hashable):
    """Gather to group[0] then broadcast the full list to everyone."""
    group = list(group)
    root = group[0]
    items = yield from gather(rank, group, data, root=root, tag=(tag, "ag_g"))
    items = yield from bcast(rank, group, items, root=root, tag=(tag, "ag_b"))
    return items


def barrier_via_messages(rank: int, group: Sequence[int], *, tag: Hashable):
    """Message-based barrier (allreduce of nothing); for testing Barrier."""
    yield from allreduce(rank, group, 0, tag=(tag, "bar"), op=lambda a, b: 0)
    return None
