"""Host calibration of the cost model (Varuna-style ``profile.py``).

The estimator (:mod:`repro.compiler.estimate`) is *exact* on simulated
time because simulated time is defined by the very
:class:`~repro.machine.costmodel.CostModel` it reads.  To predict real
host seconds -- the quantity the autotuner (:mod:`repro.tune`) ranks
layouts by -- the coefficients must come from measurement, not from
1989 presets.  This module measures them:

* **compute** -- steady-state replays of small single-processor doall
  programs, one family per ufunc kind (``stencil``: the add/mul chains
  of the paper's relaxations; ``axpy``: multiply-accumulate updates;
  ``scale``: pure copy/scale traffic).  Each family is timed at several
  sizes through the full compiled fast path, so what is measured is
  exactly what replay executes: the frozen
  :class:`~repro.compiler.commgen.StepPlan` closures.  A per-family
  least-squares line gives seconds-per-flop and a per-sweep overhead
  intercept (generator machinery, event heap -- real costs the postal
  model has no coefficient for).
* **transfers** -- two-rank ghost-exchange programs whose per-sweep
  message count and byte volume are varied independently (more stencil
  arrays -> more messages; wider rows -> more bytes), timed on the
  requested backend (``"simulator"``: in-process numpy copies through
  the schedule executor; ``"multiprocessing"``: real shared-memory
  worker transfers).  After subtracting the fitted compute share, a
  least-squares plane gives per-message latency (``alpha``) and
  per-byte bandwidth (``beta``).

:func:`fit_calibration` turns a sample table into a
:class:`CalibratedCostModel` deterministically -- same table, same
coefficients -- so fits are testable without timing anything.
:func:`calibrate` runs measurement + fit, optionally caching the result
per host (JSON, versioned); a calibration also ships inside a
:class:`~repro.elastic.Checkpoint` (``Session.checkpoint(calibration=...)``)
so a restored session can keep tuning without re-profiling.

>>> from repro.machine.calibrate import Sample, fit_calibration
>>> table = [Sample("compute", "stencil", flops=1e6, seconds=2e-3),
...          Sample("compute", "stencil", flops=2e6, seconds=4e-3),
...          Sample("transfer", "simulator", msgs=2, nbytes=1600,
...                 flops=0.0, seconds=3.2e-5),
...          Sample("transfer", "simulator", msgs=4, nbytes=1600,
...                 flops=0.0, seconds=5.2e-5)]
>>> cal = fit_calibration(table, backend="simulator")
>>> round(cal.flop_time * 1e9, 3)                     # 2 ns/flop
2.0
>>> round(cal.alpha * 1e6, 3)                         # 10 us/message
10.0
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import asdict, dataclass, field, fields, replace

from repro.machine.costmodel import CostModel
from repro.util.errors import ValidationError

#: Calibration wire-format version; bump on incompatible field changes.
CALIBRATION_VERSION = 1

#: The compute families measured, in order; each exercises a different
#: ufunc mix through the compiled StepPlan closures.
COMPUTE_KINDS = ("stencil", "axpy", "scale")


@dataclass(frozen=True)
class Sample:
    """One timed observation of the machine.

    ``kind`` is ``"compute"`` (label = ufunc family, ``flops`` per
    sweep) or ``"transfer"`` (label = backend name; ``msgs``/``nbytes``
    per sweep, ``flops`` the compute share to subtract).  ``seconds``
    is host wall time per sweep (min over repetitions).
    """

    kind: str
    label: str
    flops: float = 0.0
    msgs: int = 0
    nbytes: int = 0
    seconds: float = 0.0


@dataclass(frozen=True)
class CalibratedCostModel(CostModel):
    """A :class:`CostModel` whose coefficients were fitted on this host.

    Drop-in everywhere a CostModel goes (``Program.estimate``, the
    simulator, :func:`repro.tune.tune`), plus the provenance the tuner
    needs: which host and backend were measured, the per-ufunc-kind
    seconds-per-flop, the per-sweep replay overhead the postal model
    has no coefficient for, fit quality (R² per fit), and the raw
    sample table itself (so a fit can be audited or re-run).

    Serialization: :meth:`to_dict`/:meth:`from_dict` round-trip through
    plain JSON-able data (versioned -- loading a different
    ``CALIBRATION_VERSION`` raises), :meth:`save`/:meth:`load` do the
    same through a file, which is how a calibration is cached per host;
    the object also pickles, which is how a
    :class:`~repro.elastic.Checkpoint` ships it.
    """

    #: wire-format version of this calibration
    version: int = CALIBRATION_VERSION
    #: host fingerprint the samples were measured on
    host: str = ""
    #: backend the transfer samples were measured on
    backend_name: str = "simulator"
    #: per-sweep replay overhead of one loop (seconds): generator
    #: machinery, event heap -- charged once per loop per sweep by the
    #: host-seconds predictor, on top of the postal-model terms
    sweep_overhead: float = 0.0
    #: per-ufunc-kind seconds per flop, ``((kind, s/flop), ...)``
    ufunc_flop_times: tuple = ()
    #: fit quality per fitted line/plane, ``((fit name, R²), ...)``
    r2: tuple = ()
    #: the raw sample table the fit consumed (auditable provenance);
    #: excluded from equality so two fits of one table compare equal
    samples: tuple = field(default=(), compare=False)

    def fit_report(self) -> dict:
        """Fit quality and provenance: R², residuals, raw samples.

        Residuals are recomputed from the stored samples against the
        fitted coefficients (seconds, measured - predicted), so the
        report always reflects exactly this model.
        """
        residuals = []
        for s in self.samples:
            if s.kind == "compute":
                pred = self.sweep_overhead + self.flop_time * s.flops
            else:
                pred = (
                    self.sweep_overhead
                    + self.flop_time * s.flops
                    + self.alpha * s.msgs
                    + self.beta * s.nbytes
                )
            residuals.append(
                {"kind": s.kind, "label": s.label,
                 "measured_s": s.seconds, "predicted_s": pred,
                 "residual_s": s.seconds - pred}
            )
        return {
            "version": self.version,
            "host": self.host,
            "backend": self.backend_name,
            "coefficients": {
                "flop_time": self.flop_time,
                "alpha": self.alpha,
                "beta": self.beta,
                "send_overhead": self.send_overhead,
                "gamma_hop": self.gamma_hop,
                "sweep_overhead": self.sweep_overhead,
            },
            "ufunc_flop_times": dict(self.ufunc_flop_times),
            "r2": dict(self.r2),
            "residuals": residuals,
            "samples": [asdict(s) for s in self.samples],
        }

    # -- serialization (per-host caching, checkpoint shipping) ----------

    def to_dict(self) -> dict:
        """Plain JSON-able form; inverse of :meth:`from_dict`."""
        out = {
            f.name: getattr(self, f.name)
            for f in fields(self) if f.name != "samples"
        }
        out["ufunc_flop_times"] = [list(p) for p in self.ufunc_flop_times]
        out["r2"] = [list(p) for p in self.r2]
        out["samples"] = [asdict(s) for s in self.samples]
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "CalibratedCostModel":
        version = data.get("version")
        if version != CALIBRATION_VERSION:
            raise ValidationError(
                f"calibration version {version} is not supported (this "
                f"library writes version {CALIBRATION_VERSION})"
            )
        kwargs = dict(data)
        kwargs["ufunc_flop_times"] = tuple(
            (str(k), float(v)) for k, v in data.get("ufunc_flop_times", [])
        )
        kwargs["r2"] = tuple((str(k), float(v)) for k, v in data.get("r2", []))
        kwargs["samples"] = tuple(
            Sample(**s) for s in data.get("samples", [])
        )
        known = {f.name for f in fields(cls)}
        unknown = set(kwargs) - known
        if unknown:
            raise ValidationError(
                f"unknown calibration fields: {sorted(unknown)}"
            )
        return cls(**kwargs)

    def save(self, path: str) -> str:
        """Write this calibration as JSON (the per-host cache format)."""
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2)
            fh.write("\n")
        return path

    @classmethod
    def load(cls, path: str) -> "CalibratedCostModel":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))


def host_fingerprint() -> str:
    """A string identifying the measured host (cache key component)."""
    return f"{platform.node()}/{platform.machine()}/{platform.python_version()}"


# ----------------------------------------------------------------------
# Fitting (pure: same sample table -> same coefficients)
# ----------------------------------------------------------------------


def _lsq_line(xs, ys) -> tuple[float, float]:
    """Least-squares ``y = c0 + c1*x`` with both coefficients clipped
    at zero (negative costs are measurement noise, never physics)."""
    import numpy as np

    A = np.stack([np.ones(len(xs)), np.asarray(xs, float)], axis=1)
    sol, *_ = np.linalg.lstsq(A, np.asarray(ys, float), rcond=None)
    return max(0.0, float(sol[0])), max(0.0, float(sol[1]))


def _lsq_plane_origin(x1, x2, ys) -> tuple[float, float]:
    """Least-squares ``y = a*x1 + b*x2`` through the origin, clipped."""
    import numpy as np

    A = np.stack([np.asarray(x1, float), np.asarray(x2, float)], axis=1)
    sol, *_ = np.linalg.lstsq(A, np.asarray(ys, float), rcond=None)
    return max(0.0, float(sol[0])), max(0.0, float(sol[1]))


def _r2(measured, predicted) -> float:
    import numpy as np

    m = np.asarray(measured, float)
    p = np.asarray(predicted, float)
    ss_res = float(np.sum((m - p) ** 2))
    ss_tot = float(np.sum((m - m.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def fit_calibration(
    samples, *, host: str = "", backend: str = "simulator"
) -> CalibratedCostModel:
    """Fit :class:`CalibratedCostModel` coefficients from a sample table.

    Deterministic: the fit is plain least squares over the table, so two
    calls with the same samples return equal models (the property
    ``tests/tune/test_calibrate.py`` pins).  Compute samples fit one
    line per ufunc family (``seconds = overhead + s_per_flop * flops``);
    the global ``flop_time`` is the flops-weighted mean of the family
    slopes and ``sweep_overhead`` the mean intercept.  Transfer samples,
    after subtracting their fitted compute share, fit
    ``seconds = alpha * msgs + beta * nbytes`` through the origin.
    ``send_overhead`` and ``gamma_hop`` are zero: on a shared-memory
    host the whole per-message fixed cost is measured in one place, and
    there is no store-and-forward hop to charge.
    """
    samples = tuple(samples)
    compute = [s for s in samples if s.kind == "compute"]
    transfer = [s for s in samples if s.kind == "transfer"]
    if not compute:
        raise ValidationError("fit_calibration needs at least one compute sample")

    per_kind: list[tuple[str, float]] = []
    intercepts: list[float] = []
    weights: list[float] = []
    comp_pred: list[float] = []
    for kind in sorted({s.label for s in compute}):
        rows = [s for s in compute if s.label == kind]
        c0, slope = _lsq_line([s.flops for s in rows], [s.seconds for s in rows])
        per_kind.append((kind, slope))
        intercepts.append(c0)
        weights.append(sum(s.flops for s in rows))
    total_w = sum(weights) or 1.0
    flop_time = sum(s * w for (_, s), w in zip(per_kind, weights)) / total_w
    sweep_overhead = sum(intercepts) / len(intercepts)
    for s in compute:
        comp_pred.append(sweep_overhead + flop_time * s.flops)
    r2_list = [("compute", _r2([s.seconds for s in compute], comp_pred))]

    alpha = beta = 0.0
    if transfer:
        resid = [
            max(0.0, s.seconds - sweep_overhead - flop_time * s.flops)
            for s in transfer
        ]
        alpha, beta = _lsq_plane_origin(
            [s.msgs for s in transfer], [s.nbytes for s in transfer], resid
        )
        pred = [alpha * s.msgs + beta * s.nbytes for s in transfer]
        r2_list.append(("transfer", _r2(resid, pred)))

    return CalibratedCostModel(
        alpha=alpha,
        beta=beta,
        gamma_hop=0.0,
        flop_time=flop_time,
        send_overhead=0.0,
        version=CALIBRATION_VERSION,
        host=host or host_fingerprint(),
        backend_name=backend,
        sweep_overhead=sweep_overhead,
        ufunc_flop_times=tuple(per_kind),
        r2=tuple(r2_list),
        samples=samples,
    )


# ----------------------------------------------------------------------
# Measurement (the impure half: real host seconds)
# ----------------------------------------------------------------------


def _time_sweeps(program, iters: int, reps: int, backend=None) -> float:
    """Best-of-``reps`` host seconds per sweep of a steady-state replay."""
    program.run(iters=iters, backend=backend)  # warm: freeze plans, spawn pools
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        program.run(iters=iters, backend=backend)
        best = min(best, time.perf_counter() - t0)
    return best / iters


def _compute_program(kind: str, n: int):
    """One-processor loop exercising one ufunc family's closures."""
    from repro.lang import Assign, DistArray, Doall, Owner, ProcessorGrid, loopvars
    from repro.machine.simulator import Machine
    from repro.session import Session, compile as compile_program

    grid = ProcessorGrid((1,))
    X = DistArray((n,), grid, dist=("block",), name="X")
    Y = DistArray((n,), grid, dist=("block",), name="Y")
    F = DistArray((n,), grid, dist=("block",), name="F")
    (i,) = loopvars("i")
    if kind == "stencil":
        rhs = 0.25 * (X[i - 1] + X[i + 1]) - F[i]
    elif kind == "axpy":
        rhs = F[i] * X[i] + Y[i]
    elif kind == "scale":
        rhs = 2.0 * X[i]
    else:  # pragma: no cover - defensive
        raise ValidationError(f"unknown compute family {kind!r}")
    loop = Doall(
        vars=(i,), ranges=[(1, n - 2)], on=Owner(Y, (i,)),
        body=[Assign(Y[i], rhs)], grid=grid,
    )
    sess = Session(Machine(n_procs=1))
    return compile_program(loop, session=sess)


def _transfer_program(n_arrays: int, n: int):
    """Two-rank row-ghost exchange: ``n_arrays`` stencil reads, each
    shipping one boundary row of ``n`` words per rank per sweep."""
    from repro.lang import Assign, DistArray, Doall, Owner, ProcessorGrid, loopvars
    from repro.machine.simulator import Machine
    from repro.session import Session, compile as compile_program

    grid = ProcessorGrid((2,))
    m = 8  # rows per rank: small, so bytes are dominated by n
    reads = [
        DistArray((2 * m, n), grid, dist=("block", "*"), name=f"X{k}")
        for k in range(n_arrays)
    ]
    Y = DistArray((2 * m, n), grid, dist=("block", "*"), name="Y")
    i, j = loopvars("i j")
    rhs = reads[0][i - 1, j] + reads[0][i + 1, j]
    for X in reads[1:]:
        rhs = rhs + X[i - 1, j] + X[i + 1, j]
    loop = Doall(
        vars=(i, j), ranges=[(1, 2 * m - 2), (0, n - 1)],
        on=Owner(Y, (i, j)), body=[Assign(Y[i, j], rhs)], grid=grid,
    )
    sess = Session(Machine(n_procs=2))
    return compile_program(loop, session=sess)


def measure_samples(
    *,
    backend: str = "simulator",
    sizes=(4096, 16384, 65536),
    transfer_widths=(256, 2048, 8192),
    transfer_arrays=(1, 2, 4),
    iters: int = 4,
    reps: int = 3,
) -> list[Sample]:
    """Measure a calibration sample table on this host.

    Compute families run single-processor (no wire traffic) through the
    compiled replay path; transfer programs run two ranks on the
    requested ``backend``.  Sizes are per-sweep problem sizes; every
    observation is the best of ``reps`` timed runs of ``iters`` sweeps.
    """
    from repro.compiler.estimate import estimate_doall

    if backend not in ("simulator", "multiprocessing"):
        raise ValidationError(
            f"calibrate backend must be 'simulator' or 'multiprocessing', "
            f"got {backend!r}"
        )
    samples: list[Sample] = []
    for kind in COMPUTE_KINDS:
        for n in sizes:
            prog = _compute_program(kind, n)
            est = estimate_doall(prog.loops[0], plans=prog.session.plans,
                                 count=False)
            secs = _time_sweeps(prog, iters, reps)
            samples.append(
                Sample("compute", kind, flops=est.total_flops(), seconds=secs)
            )

    run_backend = None if backend == "simulator" else backend
    for n_arrays in transfer_arrays:
        for width in transfer_widths:
            prog = _transfer_program(n_arrays, width)
            est = estimate_doall(prog.loops[0], plans=prog.session.plans,
                                 count=False)
            secs = _time_sweeps(prog, iters, reps, backend=run_backend)
            samples.append(
                Sample(
                    "transfer", backend,
                    flops=est.total_flops(),
                    msgs=est.total_messages(),
                    nbytes=est.total_bytes(),
                    seconds=secs,
                )
            )
            prog.session.close_backend()
    return samples


def calibrate(
    *,
    backend: str = "simulator",
    cache: str | None = None,
    refresh: bool = False,
    **measure_kwargs,
) -> CalibratedCostModel:
    """Measure this host and fit a :class:`CalibratedCostModel`.

    ``cache`` names a JSON file: when it exists (and matches this host,
    backend, and :data:`CALIBRATION_VERSION`) the stored calibration is
    returned without re-measuring; otherwise measurement runs and the
    result is written there.  ``refresh=True`` forces re-measurement.
    Remaining keyword arguments go to :func:`measure_samples`.
    """
    host = host_fingerprint()
    if cache and not refresh and os.path.exists(cache):
        try:
            cal = CalibratedCostModel.load(cache)
        except (ValidationError, ValueError, KeyError, TypeError):
            cal = None
        if cal is not None and cal.host == host and cal.backend_name == backend:
            return cal
    cal = fit_calibration(
        measure_samples(backend=backend, **measure_kwargs),
        host=host, backend=backend,
    )
    if cache:
        cal.save(cache)
    return cal


__all__ = [
    "CALIBRATION_VERSION",
    "COMPUTE_KINDS",
    "Sample",
    "CalibratedCostModel",
    "fit_calibration",
    "measure_samples",
    "calibrate",
    "host_fingerprint",
]

# keep dataclasses.replace usable on the frozen subclass (scaled() path)
_ = replace
