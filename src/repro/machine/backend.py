"""The execution-backend contract behind the ``Machine`` interface.

The paper's runtime contract is small: a machine runs one *node
program* -- a generator of :mod:`repro.machine.ops` objects -- per
processor, routes the messages they exchange, and returns a
:class:`~repro.machine.trace.Trace`.  Everything above that line
(compiler, schedules, solvers, Sessions) is backend-agnostic; this
module names the line.

:class:`Backend` is the abstract contract.  Two implementations exist:

* :class:`~repro.machine.simulator.Machine` -- the deterministic
  event-driven simulator.  It is the *reference semantics*: all timing
  in a trace is defined by its cost model, and every other backend must
  produce results, schedule accounting, and traces bit-identical to it.
* :class:`~repro.machine.mpbackend.MultiprocessingBackend` -- real
  shared-memory parallel execution of compiled loop programs on forked
  rank workers, with the simulator kept inside as the trace oracle.

``n_procs``/``topology``/``cost`` describe the machine being modeled;
they are identical across backends wrapping the same machine, so cost
estimates and trace timings never depend on where the floats were
actually computed.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Generator, Iterable

from repro.machine.costmodel import CostModel
from repro.machine.topology import Topology
from repro.machine.trace import Trace

#: A node program: a generator yielding machine ops.
NodeProgram = Generator[Any, Any, Any]


class Backend(ABC):
    """Abstract execution backend: runs node programs, returns a Trace.

    The op vocabulary a backend must implement is exactly
    :mod:`repro.machine.ops`: ``Compute``, ``Send``, ``Recv``,
    ``Barrier``, ``Mark``, ``Now``.  Message semantics are by-value
    (payloads snapshotted at send time) and receives match FIFO per
    ``(src, tag)`` channel; see the simulator for the normative
    behavior.
    """

    #: interconnect of the modeled machine
    topology: Topology
    #: timing model stamped onto traces
    cost: CostModel

    @property
    def n_procs(self) -> int:
        """Number of processors of the modeled machine."""
        return self.topology.n_procs

    @abstractmethod
    def run(
        self,
        programs: dict[int, NodeProgram] | Callable[[int], NodeProgram],
        ranks: Iterable[int] | None = None,
    ) -> Trace:
        """Run node programs to completion and return the trace.

        ``programs`` is either a dict mapping rank -> generator, or a
        factory called with each rank in ``ranks`` (default: all
        ranks).
        """
