"""Deterministic event-driven simulator for the multicomputer.

Each processor runs a node program (a generator of ops).  The simulator
keeps a priority queue of resume/arrival events keyed on
``(time, sequence)`` so runs are exactly reproducible.  When every live
processor is blocked on a receive and no message is in flight, a
:class:`~repro.util.errors.DeadlockError` is raised naming each blocked
processor and what it was waiting for -- the failure mode the paper
calls out as endemic to hand-written message passing code.

Sends are asynchronous: the sender pays only its injection overhead and
the message flies while the sender keeps executing.  Communication/
computation overlap therefore falls out of op ordering alone -- a node
program that yields a Compute op between posting its sends and blocking
on its receives (the overlap-aware doall executor's split interior/
boundary Compute ops) advances its clock during the flight time, and a
later Recv of an already-arrived message costs nothing.  The simulator
needs no special overlap mode; :meth:`Trace.overlap_fraction` measures
how much compute the schedule actually hid.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Generator, Hashable, Iterable

import numpy as np

from repro.machine.backend import Backend
from repro.machine.costmodel import CostModel
from repro.machine.ops import (
    ANY,
    Barrier,
    Compute,
    Mark,
    Now,
    Recv,
    Send,
    frozen_by_value,
)
from repro.machine.topology import Complete, Topology
from repro.machine.trace import ComputeRecord, MarkRecord, MessageRecord, Trace
from repro.util.errors import DeadlockError, MachineError

NodeProgram = Generator[Any, Any, Any]


def _snapshot(data: Any) -> Any:
    """Copy mutable payloads at send time (message has by-value semantics).

    Arrays frozen by the sender
    (:func:`repro.compiler.commsched.freeze_payload` sets
    ``writeable=False`` on payloads the schedule executor already built
    fresh) are by-value already and ship without a copy -- the hot
    replay path never pays for a second snapshot.  The skip accepts a
    frozen owning array *or* a read-only view whose whole base chain is
    frozen down to a read-only owner
    (:func:`repro.machine.ops.frozen_by_value`): a read-only slice of a
    frozen value vector is just as immutable as the vector itself.  A
    read-only view of live (writable) storage -- ``np.broadcast_to`` of
    a mutable buffer, say -- is not by-value, since the sender can
    still mutate it through the base, so it is copied like any other
    mutable payload.  Ad-hoc sends of live buffers keep their exact
    historical semantics.
    """
    if isinstance(data, np.ndarray):
        if frozen_by_value(data):
            return data
        return data.copy()
    if isinstance(data, list):
        return [_snapshot(x) for x in data]
    if isinstance(data, tuple):
        return tuple(_snapshot(x) for x in data)
    if isinstance(data, dict):
        return {k: _snapshot(v) for k, v in data.items()}
    return data


@dataclass
class _Proc:
    rank: int
    gen: NodeProgram
    clock: float = 0.0
    blocked_on: tuple[Any, Any] | None = None  # (src, tag) when waiting on recv
    in_barrier: Hashable | None = None
    done: bool = False
    # messages that arrived but were not yet consumed: (src, tag) -> deque
    mailbox: dict[tuple[int, Hashable], deque] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.mailbox = {}


class Machine(Backend):
    """A simulated distributed-memory machine.

    This is the reference :class:`~repro.machine.backend.Backend`: its
    event-driven execution defines the semantics (and the cost-model
    timings) every other backend must reproduce bit-for-bit.

    Parameters
    ----------
    n_procs:
        Number of processors; ignored if ``topology`` is given.
    topology:
        Interconnect; defaults to :class:`Complete` over ``n_procs``.
    cost:
        Timing model; defaults to :meth:`CostModel.balanced`.
    """

    def __init__(
        self,
        n_procs: int | None = None,
        topology: Topology | None = None,
        cost: CostModel | None = None,
    ):
        if topology is None:
            if n_procs is None:
                raise MachineError("Machine requires n_procs or topology")
            topology = Complete(n_procs)
        elif n_procs is not None and n_procs != topology.n_procs:
            raise MachineError(
                f"n_procs={n_procs} disagrees with topology ({topology.n_procs})"
            )
        self.topology = topology
        self.cost = cost if cost is not None else CostModel.balanced()

    @property
    def n_procs(self) -> int:
        return self.topology.n_procs

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(
        self,
        programs: dict[int, NodeProgram] | Callable[[int], NodeProgram],
        ranks: Iterable[int] | None = None,
        trace: Trace | None = None,
    ) -> Trace:
        """Run node programs to completion and return the trace.

        ``programs`` is either a dict mapping rank -> generator, or a
        factory called with each rank in ``ranks`` (default: all ranks).
        ``trace`` lets a caller supply the (empty) Trace to fill, so the
        records are observable while the run is still in progress --
        records are immutable once published there (consume times are
        stamped by *rebuilding* the record, never by mutating it).
        """
        if callable(programs) and not isinstance(programs, dict):
            use_ranks = list(ranks) if ranks is not None else list(range(self.n_procs))
            progs = {r: programs(r) for r in use_ranks}
        else:
            progs = dict(programs)
        for r in progs:
            self.topology.check_rank(r)

        procs = {r: _Proc(r, g) for r, g in progs.items()}
        if trace is None:
            trace = Trace(n_procs=self.n_procs)
        seq = itertools.count()
        # event heap entries: (time, seqno, kind, payload)
        #   kind "resume": payload = (rank, value_to_send)
        #   kind "arrive": payload = MessageRecord-in-progress tuple
        heap: list[tuple[float, int, str, Any]] = []
        in_flight = 0
        barriers: dict[tuple[Hashable, tuple[int, ...]], list[int]] = {}

        def push(time: float, kind: str, payload: Any) -> None:
            heapq.heappush(heap, (time, next(seq), kind, payload))

        for r in procs:
            push(0.0, "resume", (r, None))

        def try_match(proc: _Proc) -> tuple[Any, float] | None:
            """Find the earliest-arrived mailbox message matching the block."""
            src, tag = proc.blocked_on  # type: ignore[misc]
            best_key = None
            best_time = None
            for (msrc, mtag), q in proc.mailbox.items():
                if not q:
                    continue
                if src is not ANY and msrc != src:
                    continue
                if tag is not ANY and mtag != tag:
                    continue
                t = q[0][0]
                if best_time is None or t < best_time:
                    best_time = t
                    best_key = (msrc, mtag)
            if best_key is None:
                return None
            arrive_t, data, rec_idx = procs_mail_pop(proc, best_key)
            return (data, arrive_t, rec_idx)

        def procs_mail_pop(proc: _Proc, key: tuple[int, Hashable]):
            arrive_t, data, rec_idx = proc.mailbox[key].popleft()
            if not proc.mailbox[key]:
                del proc.mailbox[key]
            return arrive_t, data, rec_idx

        def advance(proc: _Proc, send_value: Any) -> None:
            """Drive one processor until it blocks, sleeps, or finishes."""
            nonlocal in_flight
            value = send_value
            while True:
                try:
                    op = proc.gen.send(value)
                except StopIteration:
                    proc.done = True
                    trace.finish_times[proc.rank] = proc.clock
                    return
                value = None
                if isinstance(op, Compute):
                    dt = (
                        op.seconds
                        if op.seconds is not None
                        else self.cost.compute_time(op.flops)  # type: ignore[arg-type]
                    )
                    start = proc.clock
                    proc.clock += dt
                    trace.computes.append(
                        ComputeRecord(proc.rank, start, proc.clock, op.label)
                    )
                    if dt > 0.0:
                        push(proc.clock, "resume", (proc.rank, None))
                        return
                    continue
                if isinstance(op, Send):
                    self.topology.check_rank(op.dst)
                    if op.dst not in procs:
                        raise MachineError(
                            f"proc {proc.rank} sends to rank {op.dst} "
                            "which runs no program"
                        )
                    nbytes = op.size()
                    hops = self.topology.hops(proc.rank, op.dst)
                    t_send = proc.clock
                    proc.clock += self.cost.send_overhead
                    t_arrive = t_send + self.cost.message_time(nbytes, hops)
                    rec = MessageRecord(
                        src=proc.rank,
                        dst=op.dst,
                        tag=op.tag,
                        nbytes=nbytes,
                        hops=hops,
                        t_send=t_send,
                        t_arrive=t_arrive,
                    )
                    trace.messages.append(rec)
                    rec_idx = len(trace.messages) - 1
                    in_flight += 1
                    push(
                        t_arrive,
                        "arrive",
                        (op.dst, proc.rank, op.tag, _snapshot(op.data), rec_idx),
                    )
                    if self.cost.send_overhead > 0.0:
                        push(proc.clock, "resume", (proc.rank, None))
                        return
                    continue
                if isinstance(op, Recv):
                    proc.blocked_on = (op.src, op.tag)
                    match = try_match(proc)
                    if match is not None:
                        data, arrive_t, rec_idx = match
                        proc.clock = max(proc.clock, arrive_t)
                        proc.blocked_on = None
                        _stamp_recv(rec_idx, proc.clock)
                        value = data
                        continue
                    return  # stay blocked; arrival will resume us
                if isinstance(op, Barrier):
                    key = (op.tag, tuple(sorted(op.group)))
                    if proc.rank not in op.group:
                        raise MachineError(
                            f"proc {proc.rank} entered barrier {op.tag!r} "
                            "it does not belong to"
                        )
                    barriers.setdefault(key, []).append(proc.rank)
                    proc.in_barrier = key
                    waiting = barriers[key]
                    if len(waiting) == len(op.group):
                        release = max(procs[r].clock for r in waiting)
                        for r in waiting:
                            procs[r].in_barrier = None
                            procs[r].clock = release
                            push(release, "resume", (r, None))
                        del barriers[key]
                    return
                if isinstance(op, Mark):
                    trace.marks.append(
                        MarkRecord(proc.rank, proc.clock, op.label, op.payload)
                    )
                    continue
                if isinstance(op, Now):
                    value = proc.clock
                    continue
                raise MachineError(
                    f"proc {proc.rank} yielded unknown op {op!r}"
                )

        def _stamp_recv(rec_idx: int, t_recv: float) -> None:
            # message records are frozen dataclasses and may already
            # have been hashed, pickled, or merged by an observer (the
            # multiprocessing backend shares traces across processes),
            # so the consume time is stamped by *rebuilding* the record
            # -- published records are never mutated in place
            old = trace.messages[rec_idx]
            trace.messages[rec_idx] = MessageRecord(
                src=old.src,
                dst=old.dst,
                tag=old.tag,
                nbytes=old.nbytes,
                hops=old.hops,
                t_send=old.t_send,
                t_arrive=old.t_arrive,
                t_recv=t_recv,
            )

        while heap:
            _time, _s, kind, payload = heapq.heappop(heap)
            if kind == "resume":
                rank, val = payload
                proc = procs[rank]
                if proc.done:
                    continue
                advance(proc, val)
            elif kind == "arrive":
                dst, src, tag, data, rec_idx = payload
                in_flight -= 1
                proc = procs[dst]
                if proc.done:
                    raise MachineError(
                        f"message {tag!r} from {src} arrived at finished proc {dst}"
                    )
                proc.mailbox.setdefault((src, tag), deque()).append(
                    (_time, data, rec_idx)
                )
                if proc.blocked_on is not None:
                    match = try_match(proc)
                    if match is not None:
                        mdata, arrive_t, midx = match
                        proc.clock = max(proc.clock, arrive_t)
                        proc.blocked_on = None
                        _stamp_recv(midx, proc.clock)
                        advance(proc, mdata)
            else:  # pragma: no cover - defensive
                raise MachineError(f"unknown event kind {kind!r}")

        blocked = {
            r: p.blocked_on for r, p in procs.items() if not p.done and p.blocked_on
        }
        stuck_barrier = {r: p.in_barrier for r, p in procs.items() if p.in_barrier}
        # each stuck rank's undelivered mailbox keys: the near-miss
        # messages that arrived but matched nothing, which is usually
        # the whole diagnosis of a mismatched send/recv pair
        pending = {
            r: sorted((k for k, q in p.mailbox.items() if q), key=repr)
            for r, p in procs.items()
            if not p.done
        }
        if blocked:
            raise DeadlockError(blocked, pending=pending)
        if stuck_barrier:
            raise DeadlockError(
                {r: ("barrier", key) for r, key in stuck_barrier.items()},
                pending=pending,
            )
        unfinished = [r for r, p in procs.items() if not p.done]
        if unfinished:  # pragma: no cover - defensive
            raise MachineError(f"procs {unfinished} never finished")
        leftovers = [
            (r, key)
            for r, p in procs.items()
            for key, q in p.mailbox.items()
            if q
        ]
        if leftovers:
            raise MachineError(f"unconsumed messages at exit: {leftovers}")
        return trace
