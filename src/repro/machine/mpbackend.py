"""Shared-memory multiprocessing backend: real parallel replay of
compiled loop programs.

The simulator executes N ranks inside one Python process; this backend
executes them as N *real* forked worker processes, one per grid rank,
and keeps everything else -- results, schedule accounting, and the
cost-model-stamped trace -- bit-identical to the simulator.  The design
lowers exactly the frozen artifacts the compiler already produces:

* **plan shipping**: each rank's frozen
  :class:`~repro.compiler.commgen.StepPlan` (closures, workspaces,
  store coordinates) and :class:`~repro.compiler.commsched.TransferSchedule`
  index arrays are materialized in the parent and inherited by the
  workers at ``fork`` time -- shipped once per plan freeze, never per
  sweep.  Fork is mandatory: plans contain compiled closures that
  cannot (and should never need to) be pickled.
* **shared-memory array storage**: every distributed array block the
  program touches is *adopted* into a
  :mod:`multiprocessing.shared_memory` segment before the workers fork,
  so worker stores are immediately visible to the parent (``to_global``
  and bindings keep working unchanged) and gather/scatter value vectors
  move through preallocated shared slots -- no pickling, no payload
  copies through a queue, per sweep.
* **steady-state replay as real execution**: a sweep is two (three with
  remote writes) barrier-separated phases per loop -- fill the gather
  slots and do local moves; drain slots into workspaces, evaluate the
  prebound statement closures, store; apply incoming scatter values.
  The phase structure realizes the same copy-in/copy-out semantics the
  event-driven simulator enforces through virtual time, so the floats
  are bit-identical.
* **the simulator as trace oracle**: trace *timings* are statements of
  the cost model, not of the host machine, so the backend derives its
  trace by running the inner reference :class:`Machine` over data-free
  shadow op streams (:func:`repro.compiler.schedule.shadow_replay_analysis`)
  that mirror the replay exactly -- same marks, flops, tags, and byte
  counts.  Shadow traces are cached per (plans, iters, mode), so
  repeated runs of one program pay for the oracle once.

Generic (non-loop) node programs -- parsub routines, hand-written
message passing -- are delegated to the inner simulator unchanged:
generators close over arbitrary shared state and are exactly what the
reference backend exists to execute.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import time
import traceback
import weakref
from collections import OrderedDict
from multiprocessing import shared_memory
from typing import Any, Callable, Iterable

import numpy as np

from repro.machine.backend import Backend, NodeProgram
from repro.machine.costmodel import CostModel
from repro.machine.simulator import Machine
from repro.machine.topology import Topology
from repro.machine.trace import Trace
from repro.util.errors import MachineError, ValidationError

#: Live worker pools, closed at interpreter exit as a safety net (the
#: backend closes its pool deterministically; this catches abandoned
#: backends so shared-memory segments never outlive the parent).
_ALL_POOLS: "weakref.WeakSet[_WorkerPool]" = weakref.WeakSet()


@atexit.register
def _close_all_pools() -> None:  # pragma: no cover - interpreter exit
    for pool in list(_ALL_POOLS):
        pool.close()


#: Fault injection: ``{"rank": r, "sweep": s, "action": a}`` makes
#: worker ``r`` fail at the start of its ``s``-th sweep (counted across
#: runs within one pool's life) -- ``"raise"`` raises inside the sweep
#: driver (the worker reports a traceback), ``"exit"`` kills the
#: process outright (``os._exit``, no goodbye on the pipe).  An
#: optional ``"delay_s"`` sleeps before failing (a slow death: peers
#: block in the barrier for that long, modeling delayed recovery).
#: Workers inherit the value at fork time, so set it *before* the pool
#: spawns and clear it after; ``None`` (the default) is dead code on
#: the hot path.  The supported way to drive this is the
#: :mod:`repro.faults` chaos API, which also arms :data:`_FAULT_OBSERVER`
#: to count firings and disarm transient faults.
_FAULT_INJECTION: dict | None = None

#: Parent-side hook called with the sorted failed-rank tuple whenever a
#: pool run fails, *before* the MachineError is raised.  Installed by
#: :mod:`repro.faults` to implement fault budgets (``times=``); ``None``
#: means no observer.
_FAULT_OBSERVER = None


def _maybe_inject_fault(rank: int, sweeps_done: int) -> None:
    spec = _FAULT_INJECTION
    if not spec:
        return
    target = spec.get("rank")
    if rank != target and not (
        not isinstance(target, int) and rank in target
    ):
        return
    if sweeps_done != spec.get("sweep", 0):
        return
    delay = spec.get("delay_s", 0.0)
    if delay:
        time.sleep(delay)
    if spec.get("action") == "exit":
        os._exit(1)
    raise RuntimeError(
        f"injected fault on rank {rank} at sweep {sweeps_done}"
    )


class MultiprocessingBackend(Backend):
    """Execute compiled loop programs on real shared-memory workers.

    Wraps an inner reference :class:`~repro.machine.simulator.Machine`
    that defines the modeled hardware (topology, cost model) and serves
    as the trace oracle.  ``run`` on arbitrary node programs delegates
    to it; the parallel fast path (:meth:`run_loops`) engages for
    frozen loop :class:`~repro.session.Program` replays, which
    ``Program.run(backend=...)`` routes here.

    One persistent worker pool is kept per backend, keyed on the plan
    identities, array layout epochs, and grid of the last program run;
    running a different program (or redistributing an array) tears the
    pool down and respawns against the new frozen plans.  Call
    :meth:`close` (or use the backend as a context manager) to release
    the workers and shared-memory segments deterministically.
    """

    def __init__(
        self,
        machine: Machine | None = None,
        *,
        n_procs: int | None = None,
        topology: Topology | None = None,
        cost: CostModel | None = None,
    ):
        if machine is None:
            machine = Machine(n_procs=n_procs, topology=topology, cost=cost)
        elif n_procs is not None or topology is not None or cost is not None:
            raise ValidationError(
                "pass either a machine or its parameters, not both"
            )
        #: the inner reference simulator: defines topology/cost, runs
        #: generic node programs, and produces the oracle traces
        self.machine = machine
        try:
            self._mp = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX hosts
            raise ValidationError(
                "the multiprocessing backend requires the 'fork' start "
                "method (compiled plans hold closures that cannot be "
                "pickled); this platform does not provide it"
            ) from None
        self._pool: _WorkerPool | None = None
        # oracle-trace templates: key -> (strong analysis refs, Trace).
        # The refs pin the analyses so a key's embedded id()s can never
        # alias a recycled object.
        self._oracle: OrderedDict[tuple, tuple[tuple, Trace]] = OrderedDict()

    # -- Backend surface ---------------------------------------------------

    @property
    def topology(self) -> Topology:  # type: ignore[override]
        return self.machine.topology

    @property
    def cost(self) -> CostModel:  # type: ignore[override]
        return self.machine.cost

    def run(
        self,
        programs: dict[int, NodeProgram] | Callable[[int], NodeProgram],
        ranks: Iterable[int] | None = None,
        trace: Trace | None = None,
    ) -> Trace:
        """Run arbitrary node programs on the inner reference machine.

        Generator node programs close over shared in-process state
        (arrays, caches, staged repartitions), so the reference
        semantics *is* their parallel semantics; only frozen loop
        replays (:meth:`run_loops`) have the data-flow structure that
        lowers onto real processes.
        """
        return self.machine.run(programs, ranks=ranks, trace=trace)

    # -- the parallel fast path --------------------------------------------

    def run_loops(
        self,
        session,
        loops,
        grid,
        *,
        iters: int = 1,
        overlap: bool = False,
        marks: str | None = None,
    ) -> Trace:
        """Replay a frozen loop program with real parallel workers.

        Mirrors ``Program.run``'s compiled driver exactly: resolve each
        loop's analysis once per rank per run (cache accounting
        identical to the simulator path), execute ``iters`` sweeps on
        the worker pool, and return the oracle trace.  The caller
        (``Program.run``) records the trace in the session history.
        """
        ranks = list(grid.linear)
        if grid.size > self.n_procs:
            raise ValidationError(
                f"grid of {grid.size} procs exceeds machine size {self.n_procs}"
            )
        plans = session.plans
        analyses: list = []
        reused_by_rank: list[dict[int, bool]] = []
        for loop in loops:
            per_rank: dict[int, bool] = {}
            analysis = None
            for rank in ranks:
                analysis, reused = plans.analysis(loop)
                per_rank[rank] = reused
            analyses.append(analysis)
            reused_by_rank.append(per_rank)
        # later sweeps replay the resolved analyses without re-probing,
        # and count as as-if hits -- the same accounting contract as the
        # simulator path's compiled driver
        for _ in range(iters - 1):
            for _loop in loops:
                for _rank in ranks:
                    plans.count_replay("doall")

        pool = self._ensure_pool(analyses, grid)
        pool.run_sweeps(iters)

        return self._oracle_trace(
            session, analyses, grid, iters, overlap, marks, reused_by_rank
        )

    # -- worker pool management --------------------------------------------

    def _ensure_pool(self, analyses, grid) -> "_WorkerPool":
        key = _pool_key(analyses, grid)
        pool = self._pool
        if pool is not None:
            if pool.key == key and pool.alive():
                return pool
            pool.close()
            self._pool = None
        pool = _WorkerPool(self._mp, analyses, grid, key)
        self._pool = pool
        return pool

    def close(self) -> None:
        """Release the worker pool and its shared-memory segments.

        Array blocks adopted into shared memory are copied back into
        private storage first, so the arrays stay fully usable.  The
        backend itself remains usable: the next ``run_loops`` respawns
        a pool.
        """
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "MultiprocessingBackend":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- the trace oracle --------------------------------------------------

    def _oracle_trace(
        self, session, analyses, grid, iters, overlap, marks, reused_by_rank
    ) -> Trace:
        marks_mode = marks if marks is not None else getattr(session, "marks", "full")
        key = (
            tuple(id(a) for a in analyses),
            grid.key(),
            id(self.machine),
            iters,
            overlap,
            marks_mode,
            tuple(tuple(sorted(d.items())) for d in reused_by_rank),
        )
        entry = self._oracle.get(key)
        if entry is None:
            template = self._shadow_run(
                session, analyses, grid, iters, overlap, marks_mode, reused_by_rank
            )
            self._oracle[key] = entry = (tuple(analyses), template)
            while len(self._oracle) > 32:
                self._oracle.popitem(last=False)
        else:
            self._oracle.move_to_end(key)
        template = entry[1]
        # materialize a fresh Trace per run; record objects are immutable
        # once a run finishes, so sharing them across materializations is
        # safe while the lists/dicts stay caller-owned
        return Trace(
            n_procs=template.n_procs,
            computes=list(template.computes),
            messages=list(template.messages),
            marks=list(template.marks),
            finish_times=dict(template.finish_times),
            level=template.level,
            mark_counts=dict(template.mark_counts),
        )

    def _shadow_run(
        self, session, analyses, grid, iters, overlap, marks_mode, reused_by_rank
    ) -> Trace:
        from repro.compiler.schedule import shadow_replay_analysis
        from repro.lang.context import KaliCtx, next_run_id
        from repro.session import Session

        run_id = next_run_id()
        ctxs = {
            rank: KaliCtx(
                rank, grid, run_id=run_id, session=session,
                compiled=True, marks=marks_mode,
            )
            for rank in grid.linear
        }

        def shadow(ctx):
            first = True
            for _ in range(iters):
                for n, analysis in enumerate(analyses):
                    reused = reused_by_rank[n][ctx.rank] if first else True
                    yield from shadow_replay_analysis(
                        ctx, analysis, overlap=overlap, reused=reused
                    )
                first = False

        programs = {rank: shadow(ctxs[rank]) for rank in grid.linear}
        trace = self.machine.run(programs)
        Session._fold_mark_counts(trace, ctxs.values())
        return trace

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MultiprocessingBackend({self.machine!r}, "
            f"pool={'up' if self._pool is not None else 'down'})"
        )


# ----------------------------------------------------------------------
# Worker pool: shared-memory adoption, slot table, forked rank workers
# ----------------------------------------------------------------------


def _storage_of(array):
    """The block-owning array beneath ``array`` (sections peel off)."""
    while not hasattr(array, "_blocks"):
        array = array.base
    return array


def _pool_key(analyses, grid) -> tuple:
    """Identity of the frozen state a pool was built against.

    Embeds the analysis identities (the plans shipped at fork time) and
    every touched array's storage identity + layout epoch, so a
    redistribution -- or a different program -- forces a respawn
    against fresh plans and fresh block adoption.
    """
    arrays = []
    seen: set[int] = set()
    for analysis in analyses:
        for arr in analysis.loop.arrays():
            base = _storage_of(arr)
            if id(base) not in seen:
                seen.add(id(base))
                arrays.append(base)
    return (
        grid.key(),
        tuple(id(a) for a in analyses),
        tuple((id(arr), arr.comm_epoch) for arr in arrays),
    )


class _LoopStep:
    """One rank's worker-side recipe for one loop of the program.

    Everything is pre-resolved to concrete ndarrays (shared-memory
    block views, transfer slots, plan workspaces) in the parent before
    the fork; the per-sweep drive is pure array copies and the plan's
    prebound closures.
    """

    __slots__ = (
        "gather_sends",   # (slot, block, src_idx): slot[...] = block[src_idx]
        "local_moves",    # (buf, dst_idx, block, src_idx)
        "gather_recvs",   # (buf, dst_idx, slot): buf[dst_idx] = slot
        "evals",          # the StepPlan's prebound rhs closures
        "stores",         # per stmt: ("box"|"flat"|"transfer", ...) | None
        "scatter_recvs",  # (block, piece, slot): block[piece] = slot
        "has_remote",     # loop-level: any rank scatters (phase C exists)
    )

    def __init__(self):
        self.gather_sends: list[tuple] = []
        self.local_moves: list[tuple] = []
        self.gather_recvs: list[tuple] = []
        self.evals: list = []
        self.stores: list = []
        self.scatter_recvs: list[tuple] = []
        self.has_remote = False


def _build_script(analyses, me: int, slots: dict) -> list[_LoopStep]:
    """Resolve one rank's frozen plans against the shared slot table."""
    steps: list[_LoopStep] = []
    for n, analysis in enumerate(analyses):
        plan = analysis.step_plan(me)
        step = _LoopStep()
        step.evals = plan.evals
        step.has_remote = analysis.has_remote_writes
        for wire, array, sched, buf in plan.reads:
            if sched is None:
                continue
            block = (
                array.local(me)
                if (sched.sends or sched.self_src is not None)
                else None
            )
            for dst, src_idx in sched.sends:
                step.gather_sends.append((slots[(n, wire, me, dst)], block, src_idx))
            if buf is not None and sched.self_src is not None:
                step.local_moves.append((buf, sched.self_dst, block, sched.self_src))
            if buf is not None:
                for src, dst_idx in sched.recvs:
                    step.gather_recvs.append((buf, dst_idx, slots[(n, wire, src, me)]))
        for store in plan.stores:
            if store is None:
                step.stores.append(None)
                continue
            kind = store[0]
            if kind == "box":
                _, array, locs, perm, boxshape = store
                step.stores.append(("box", array.local(me), locs, perm, boxshape))
            elif kind == "flat":
                _, array, locs = store
                step.stores.append(("flat", array.local(me), locs))
            else:  # "transfer": scatter through the slot table
                _, array, sched, wire = store
                block = array.local(me)
                sends = [
                    (slots[(n, wire, me, dst)], sel) for dst, sel in sched.sends
                ]
                step.stores.append(
                    ("transfer", block, sched.self_dst, sched.self_src, sends)
                )
                for src, piece in sched.recvs:
                    step.scatter_recvs.append(
                        (block, piece, slots[(n, wire, src, me)])
                    )
        steps.append(step)
    return steps


def _run_step(step: _LoopStep, barrier) -> None:
    """One sweep of one loop on one worker.

    Phase A fills this rank's outgoing gather slots from its (pre-store)
    blocks and copies owned data into the plan workspaces -- the
    barrier then guarantees every rank's copy-in snapshot is complete
    before any rank stores, which is exactly the ordering the simulator
    enforces by sending pre-store payloads.  Phase B drains incoming
    slots into the workspaces, evaluates the prebound closures, and
    stores (filling scatter slots for remote writes).  Phase C -- only
    when the loop scatters at all -- applies incoming scatter values
    after a second barrier.  The trailing barrier protects slot reuse
    by the next loop/sweep.  Every rank executes the same barrier
    count per step (the phase structure depends only on loop-level
    facts), so the pool can never split-brain.
    """
    for slot, block, src_idx in step.gather_sends:
        slot[...] = block[src_idx]
    for buf, dst_idx, block, src_idx in step.local_moves:
        buf[dst_idx] = block[src_idx]
    barrier.wait()
    for buf, dst_idx, slot in step.gather_recvs:
        buf[dst_idx] = slot
    values_by_stmt = [None if fn is None else fn() for fn in step.evals]
    for values, store in zip(values_by_stmt, step.stores):
        if store is None:
            continue
        kind = store[0]
        if kind == "box":
            _, block, locs, perm, boxshape = store
            block[locs] = values.transpose(perm).reshape(boxshape)
        elif kind == "flat":
            _, block, locs = store
            block[locs] = values.reshape(-1)
        else:
            _, block, self_dst, self_src, sends = store
            flat = None if values is None else values.reshape(-1)
            if self_src is not None:
                block[self_dst] = flat[self_src]
            for slot, sel in sends:
                slot[...] = flat[sel]
    if step.has_remote:
        barrier.wait()
        for block, piece, slot in step.scatter_recvs:
            block[piece] = slot
    barrier.wait()


def _worker_main(rank: int, conn, barrier, steps: list[_LoopStep]) -> None:
    """Persistent rank worker: drive sweeps on command until told to exit."""
    sweeps_done = 0
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        if msg[0] == "exit":
            return
        if msg[0] != "run":  # pragma: no cover - defensive
            conn.send(("err", rank, f"unknown command {msg!r}"))
            continue
        try:
            for _ in range(msg[1]):
                _maybe_inject_fault(rank, sweeps_done)
                for step in steps:
                    _run_step(step, barrier)
                sweeps_done += 1
            conn.send(("ok", rank))
        except Exception:
            # break the other ranks out of their barriers, then report
            try:
                barrier.abort()
            except Exception:  # pragma: no cover - defensive
                pass
            conn.send(("err", rank, traceback.format_exc()))


class _WorkerPool:
    """Forked rank workers + the shared-memory state they execute on."""

    def __init__(self, mp, analyses, grid, key: tuple):
        self.key = key
        self.ranks = list(grid.linear)
        self._closed = False
        self._segments: list[shared_memory.SharedMemory] = []
        # (storage array, rank, shm view, original private block)
        self._adopted: list[tuple] = []
        self._slots: dict[tuple, np.ndarray] = {}
        self._procs: dict[int, Any] = {}
        self._pipes: dict[int, Any] = {}
        self._barrier = mp.Barrier(len(self.ranks))
        _ALL_POOLS.add(self)
        try:
            self._adopt_arrays(analyses)
            self._build_slots(analyses, grid)
            # materialize every rank's script *before* the first fork so
            # all workers inherit identical frozen state
            scripts = {
                rank: _build_script(analyses, rank, self._slots)
                for rank in self.ranks
            }
            for rank in self.ranks:
                parent_conn, child_conn = mp.Pipe()
                proc = mp.Process(
                    target=_worker_main,
                    args=(rank, child_conn, self._barrier, scripts[rank]),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._procs[rank] = proc
                self._pipes[rank] = parent_conn
        except BaseException:
            self.close()
            raise

    # -- shared-memory adoption -------------------------------------------

    def _shm_ndarray(self, shape, dtype) -> np.ndarray:
        nbytes = int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
        seg = shared_memory.SharedMemory(create=True, size=max(1, nbytes))
        self._segments.append(seg)
        return np.ndarray(shape, dtype=dtype, buffer=seg.buf)

    def _adopt_arrays(self, analyses) -> None:
        """Move every touched array's blocks into shared memory.

        The shm-backed view *replaces* the private block in the array's
        own ``_blocks`` dict, so the parent's bindings (``from_global``)
        and reads (``to_global``) flow through shared memory untouched
        -- and the forked workers observe binding writes made between
        runs.  ``close`` copies the contents back and restores the
        private blocks.
        """
        seen: set[int] = set()
        for analysis in analyses:
            for arr in analysis.loop.arrays():
                storage = _storage_of(arr)
                if id(storage) in seen:
                    continue
                seen.add(id(storage))
                for rank, block in list(storage._blocks.items()):
                    view = self._shm_ndarray(block.shape, block.dtype)
                    view[...] = block
                    storage._blocks[rank] = view
                    self._adopted.append((storage, rank, view, block))

    def _build_slots(self, analyses, grid) -> None:
        """One shared slot per frozen message: the wire, minus the wire.

        Keyed ``(loop_idx, wire_kind, src, dst)``; each schedule sends
        at most one message per (destination, wire) per sweep, so a
        slot is written exactly once between barriers.  Gather slots
        take the sender's open-mesh payload shape (identical to the
        receiver's workspace positions shape -- both sides froze the
        same per-dimension global index lists); scatter slots are flat
        value runs.
        """
        for n, analysis in enumerate(analyses):
            for arr_idx, plans in enumerate(analysis.read_plans):
                for rank in self.ranks:
                    plan = plans[rank]
                    sched = plan.transfer
                    if sched is None:
                        continue
                    for dst, src_idx in sched.sends:
                        shape = tuple(int(np.asarray(a).size) for a in src_idx)
                        self._slots[(n, f"gh{arr_idx}", rank, dst)] = (
                            self._shm_ndarray(shape, plan.array.dtype)
                        )
            for stmt_idx, wplans in enumerate(analysis.write_plans):
                dtype = analysis.stmts[stmt_idx].lhs_array.dtype
                for rank in self.ranks:
                    sched = wplans[rank].transfer
                    if sched is None:
                        continue
                    for dst, sel in sched.sends:
                        shape = (int(np.asarray(sel).size),)
                        self._slots[(n, f"wr{stmt_idx}", rank, dst)] = (
                            self._shm_ndarray(shape, dtype)
                        )

    # -- driving ----------------------------------------------------------

    def alive(self) -> bool:
        return (
            not self._closed
            and bool(self._procs)
            and all(p.is_alive() for p in self._procs.values())
        )

    def run_sweeps(self, iters: int) -> None:
        """Execute ``iters`` full sweeps (all loops, in order) on all ranks.

        Completions are collected round-robin over every outstanding
        rank, never blocking on one: a rank killed outright (e.g. by
        the OOM killer, or the fault-injection tests' ``os._exit``)
        leaves its *peers* stuck in the sweep barrier, so waiting on
        ranks in order would deadlock on the first stuck peer and never
        reach the dead one.  The first death detected aborts the
        barrier, which breaks the peers out (they report
        BrokenBarrierError tracebacks); every failure is then raised as
        one MachineError with per-rank sections.
        """
        if self._closed:
            raise MachineError("worker pool is closed")
        for conn in self._pipes.values():
            conn.send(("run", iters))
        failures: list[tuple[int, str]] = []
        pending = dict(self._pipes)
        while pending:
            for rank in list(pending):
                conn = pending[rank]
                if conn.poll(0.05):
                    try:
                        msg = conn.recv()
                    except (EOFError, OSError):
                        # poll() also returns True on EOF: the worker
                        # died between finishing a send and our read,
                        # or without sending at all
                        failures.append(
                            (rank, "worker process died (pipe closed)")
                        )
                        self._abort_barrier()
                    else:
                        if msg[0] == "err":
                            failures.append((rank, msg[2]))
                    del pending[rank]
                elif not self._procs[rank].is_alive():
                    failures.append((rank, "worker process died"))
                    # release peers stuck waiting for the dead rank
                    self._abort_barrier()
                    del pending[rank]
        if failures:
            self.close()
            failed_ranks = tuple(sorted(rank for rank, _ in failures))
            observer = _FAULT_OBSERVER
            if observer is not None:
                try:
                    observer(failed_ranks)
                except Exception:  # pragma: no cover - defensive
                    pass
            detail = "\n".join(
                f"-- rank {rank} --\n{tb}" for rank, tb in failures
            )
            err = MachineError(
                "multiprocessing backend worker failure:\n" + detail
            )
            #: consumed by the Supervisor's RecoveryLog
            err.failed_ranks = failed_ranks
            raise err

    def _abort_barrier(self) -> None:
        try:
            self._barrier.abort()
        except Exception:  # pragma: no cover - defensive
            pass

    # -- teardown ----------------------------------------------------------

    def close(self) -> None:
        """Stop workers, un-adopt arrays, release shared memory."""
        if self._closed:
            return
        self._closed = True
        for conn in self._pipes.values():
            try:
                conn.send(("exit",))
            except (OSError, ValueError):
                pass
        for proc in self._procs.values():
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=5.0)
        for conn in self._pipes.values():
            conn.close()
        # drop every parent-side reference into the segments (Process
        # objects hold the scripts via their args) before closing them
        self._procs = {}
        self._pipes = {}
        self._slots = {}
        for storage, rank, view, block in self._adopted:
            if storage._blocks.get(rank) is view:
                block[...] = view
                storage._blocks[rank] = block
        self._adopted = []
        for seg in self._segments:
            try:
                seg.close()
            except BufferError:  # pragma: no cover - lingering view
                pass
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments = []
