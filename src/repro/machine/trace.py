"""Execution traces: the simulator's record of what happened when.

The trace is the measurement instrument for every benchmark in this
reproduction: processor utilization (pipelined-solver claim), message
counts and volumes (distribution-tuning claim), and Mark events (the
data-flow-graph figures).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable


def _merge_intervals(ivals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Union of intervals as a sorted, non-overlapping list."""
    out: list[tuple[float, float]] = []
    for lo, hi in sorted(ivals):
        if out and lo <= out[-1][1]:
            out[-1] = (out[-1][0], max(out[-1][1], hi))
        else:
            out.append((lo, hi))
    return out


@dataclass(frozen=True)
class ComputeRecord:
    proc: int
    start: float
    end: float
    label: str | None = None


@dataclass(frozen=True)
class MessageRecord:
    src: int
    dst: int
    tag: Hashable
    nbytes: int
    hops: int
    t_send: float
    t_arrive: float
    t_recv: float | None = None


@dataclass(frozen=True)
class MarkRecord:
    proc: int
    time: float
    label: str
    payload: Any = None


@dataclass
class Trace:
    """Complete record of one simulated run.

    ``level`` records how marks were collected: ``"full"`` (default)
    keeps every :class:`MarkRecord`; ``"cheap"`` means the run was
    launched with cheap-marks mode (``Session.run(marks="cheap")``), in
    which steady-state schedule events were *counted* into
    ``mark_counts`` instead of materialized as records -- message and
    byte accounting is unaffected, and :meth:`schedule_counts` /
    :meth:`schedule_hit_rate` fold the counters in, but
    :meth:`schedule_events` only sees the (rare) marks that were still
    recorded.  ``mark_counts`` maps ``(label, direction)`` to an event
    count, e.g. ``("commsched/hit", "gather") -> 12``.
    """

    n_procs: int
    computes: list[ComputeRecord] = field(default_factory=list)
    messages: list[MessageRecord] = field(default_factory=list)
    marks: list[MarkRecord] = field(default_factory=list)
    finish_times: dict[int, float] = field(default_factory=dict)
    level: str = "full"
    mark_counts: dict[tuple, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    def makespan(self) -> float:
        """Latest event time across all processors."""
        times = [0.0]
        times.extend(self.finish_times.values())
        times.extend(c.end for c in self.computes)
        times.extend(m.t_arrive for m in self.messages)
        return max(times)

    def busy_time(self, proc: int) -> float:
        """Total compute-busy seconds of one processor."""
        return sum(c.end - c.start for c in self.computes if c.proc == proc)

    def total_busy_time(self) -> float:
        return sum(c.end - c.start for c in self.computes)

    def utilization(self, proc: int | None = None) -> float:
        """Busy fraction of one processor, or average over all of them."""
        span = self.makespan()
        if span <= 0.0:
            return 0.0
        if proc is not None:
            return self.busy_time(proc) / span
        return self.total_busy_time() / (span * self.n_procs)

    def message_count(self) -> int:
        return len(self.messages)

    def total_bytes(self) -> int:
        return sum(m.nbytes for m in self.messages)

    def comm_time(self) -> float:
        """Sum of in-flight message times (not wall time)."""
        return sum(m.t_arrive - m.t_send for m in self.messages)

    def overlap_fraction(self) -> float:
        """Fraction of compute-busy time overlapped with communication.

        For each processor, the portion of its compute intervals during
        which at least one message *destined to it* was in flight,
        summed over processors and divided by total busy time.  A
        serialized executor (all ghosts received before any compute)
        scores near zero; an overlap-aware executor that computes
        interior points while ghosts fly scores the hidden fraction.
        Returns 0.0 when there is no compute at all.

        >>> t = Trace(n_procs=2)
        >>> t.computes.append(ComputeRecord(proc=1, start=0.0, end=2.0))
        >>> t.messages.append(MessageRecord(src=0, dst=1, tag="gh", nbytes=8,
        ...                                 hops=1, t_send=0.0, t_arrive=1.0))
        >>> t.overlap_fraction()
        0.5
        """
        busy = self.total_busy_time()
        if busy <= 0.0:
            return 0.0
        inbound: dict[int, list[tuple[float, float]]] = {}
        for m in self.messages:
            if m.t_arrive > m.t_send:
                inbound.setdefault(m.dst, []).append((m.t_send, m.t_arrive))
        merged = {p: _merge_intervals(iv) for p, iv in inbound.items()}
        overlapped = 0.0
        for c in self.computes:
            for lo, hi in merged.get(c.proc, ()):
                overlapped += max(0.0, min(c.end, hi) - max(c.start, lo))
        return overlapped / busy

    # ------------------------------------------------------------------
    # Communication-schedule reuse (inspector/executor amortization)
    # ------------------------------------------------------------------

    #: Label prefix used by the compiler/runtime for schedule events:
    #: ``commsched/hit`` (a cached schedule was replayed),
    #: ``commsched/miss`` (an irregular-gather schedule had to be built),
    #: ``commsched/build`` (a doall communication plan was compiled).
    #: Every event's payload leads with the transfer *direction*:
    #: ``"gather"`` (cached irregular gathers), ``"scatter"`` (doall
    #: remote-write schedules), ``"repartition"`` (redistribution
    #: schedules), or ``"doall"`` (whole-loop plan compiles/replays).
    SCHED_PREFIX = "commsched/"

    def schedule_events(self, direction: str | None = None) -> list[MarkRecord]:
        """Schedule cache events, optionally filtered by direction."""
        out = [m for m in self.marks if m.label.startswith(self.SCHED_PREFIX)]
        if direction is not None:
            out = [
                m for m in out
                if isinstance(m.payload, tuple)
                and m.payload
                and m.payload[0] == direction
            ]
        return out

    def schedule_counts(self, direction: str | None = None) -> dict[str, int]:
        """Event counts by kind, e.g. ``{"hit": 8, "build": 1}``.

        Pass ``direction`` to restrict to one transfer direction, e.g.
        ``schedule_counts("scatter")`` counts only the doall write-side
        schedule events.

        >>> t = Trace(n_procs=2)
        >>> t.marks.append(MarkRecord(0, 0.0, "commsched/miss", ("gather", "A")))
        >>> t.marks.append(MarkRecord(1, 0.1, "commsched/hit", ("gather", "A")))
        >>> t.marks.append(MarkRecord(0, 0.2, "commsched/hit", ("scatter", "B")))
        >>> t.schedule_counts("gather")
        {'miss': 1, 'hit': 1}
        >>> t.schedule_hit_rate("gather")
        0.5
        >>> t.schedule_directions()
        {'gather': {'miss': 1, 'hit': 1}, 'scatter': {'hit': 1}}

        Cheap-marks counters contribute too:

        >>> t.mark_counts[("commsched/hit", "gather")] = 5
        >>> t.schedule_counts("gather")
        {'miss': 1, 'hit': 6}
        """
        out: dict[str, int] = {}
        for m in self.schedule_events(direction):
            kind = m.label[len(self.SCHED_PREFIX):]
            out[kind] = out.get(kind, 0) + 1
        for (label, dirn), n in self.mark_counts.items():
            if not label.startswith(self.SCHED_PREFIX):
                continue
            if direction is not None and dirn != direction:
                continue
            kind = label[len(self.SCHED_PREFIX):]
            out[kind] = out.get(kind, 0) + n
        return out

    def schedule_hit_rate(self, direction: str | None = None) -> float:
        """Fraction of schedule lookups served from cache (0.0 if none).

        Benchmarks report this as the reuse rate: hits over all events
        (hits + misses + builds), counted per rank per call.  A build is
        recorded once per process-wide compile -- the other ranks of
        that same collective execution count as hits, since they fetch
        the shared plan instead of deriving it.  Pass ``direction`` to
        report one direction alone, e.g. ``schedule_hit_rate("gather")``
        vs. ``schedule_hit_rate("scatter")``.
        """
        counts = self.schedule_counts(direction)
        total = sum(counts.values())
        if total == 0:
            return 0.0
        return counts.get("hit", 0) / total

    def schedule_directions(self) -> dict[str, dict[str, int]]:
        """Per-direction event counts, e.g. ``{"gather": {"hit": 4,
        "miss": 2}, "scatter": {"hit": 3, "build": 1}}``."""
        out: dict[str, dict[str, int]] = {}
        for m in self.schedule_events():
            if not (isinstance(m.payload, tuple) and m.payload):
                continue
            direction = m.payload[0]
            kind = m.label[len(self.SCHED_PREFIX):]
            d = out.setdefault(direction, {})
            d[kind] = d.get(kind, 0) + 1
        for (label, direction), n in self.mark_counts.items():
            if not label.startswith(self.SCHED_PREFIX):
                continue
            kind = label[len(self.SCHED_PREFIX):]
            d = out.setdefault(direction, {})
            d[kind] = d.get(kind, 0) + n
        return out

    # ------------------------------------------------------------------
    # Mark-based analysis (data-flow figures)
    # ------------------------------------------------------------------

    def marks_with(self, label: str) -> list[MarkRecord]:
        """All marks whose label equals ``label``."""
        return [m for m in self.marks if m.label == label]

    def marks_prefixed(self, prefix: str) -> list[MarkRecord]:
        """All marks whose label starts with ``prefix``."""
        return [m for m in self.marks if m.label.startswith(prefix)]

    def active_procs_by_payload(self, label: str) -> dict[Any, list[int]]:
        """Group processors by mark payload (e.g. step number -> procs).

        Used to regenerate the paper's Figure 3 data-flow graph: each
        reduction/substitution step marks its active processors and the
        payload identifies the step.
        """
        out: dict[Any, list[int]] = {}
        for m in self.marks_with(label):
            out.setdefault(m.payload, []).append(m.proc)
        for procs in out.values():
            procs.sort()
        return out

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def gantt(self, width: int = 72) -> str:
        """Plain-text Gantt chart of compute activity per processor."""
        span = self.makespan()
        lines = []
        if span <= 0.0:
            return "\n".join(f"P{p:<3} |" + " " * width + "|" for p in range(self.n_procs))
        for p in range(self.n_procs):
            row = [" "] * width
            for c in self.computes:
                if c.proc != p:
                    continue
                lo = int(c.start / span * (width - 1))
                hi = max(lo, int(c.end / span * (width - 1)))
                for x in range(lo, hi + 1):
                    row[x] = "#"
            lines.append(f"P{p:<3} |{''.join(row)}| busy={self.busy_time(p):.4g}s")
        lines.append(f"makespan={span:.6g}s  util={self.utilization():.3f}")
        return "\n".join(lines)

    def summary(self) -> dict[str, float]:
        """Headline numbers for benchmark reporting."""
        return {
            "makespan": self.makespan(),
            "utilization": self.utilization(),
            "messages": float(self.message_count()),
            "bytes": float(self.total_bytes()),
            "busy_time": self.total_busy_time(),
        }
