"""Strip-mining: partition doall iterations among processors.

For each rank of the loop grid we compute, per loop variable, the numpy
array of iteration values that rank executes.  The ``on`` clause supplies
the constraints: ``Owner(X, (e0, e1, ...))`` assigns iteration points to
the processor owning the referenced element; ``OnProc(grid, (e,))``
assigns them to explicit grid coordinates.  Constraints are separable by
construction (each affine expression involves at most one loop variable,
as in all the paper's examples), so iteration sets are products of
per-variable index arrays.
"""

from __future__ import annotations

import numpy as np

from repro.lang.doall import Doall, OnProc, Owner
from repro.util.errors import CompileError


class IterSet:
    """Iteration set of one rank: per-variable index arrays (a box product)."""

    __slots__ = ("vars", "arrays", "empty")

    def __init__(self, vars: tuple, arrays: dict[str, np.ndarray]):
        self.vars = vars
        self.arrays = arrays
        self.empty = any(a.size == 0 for a in arrays.values())

    def count(self) -> int:
        if self.empty:
            return 0
        n = 1
        for a in self.arrays.values():
            n *= int(a.size)
        return n

    def env(self) -> dict[str, np.ndarray]:
        """Loop-variable environment with broadcast-ready shapes.

        Variable k of d gets shape (1, ..., len_k, ..., 1) so affine
        evaluation broadcasts to the full iteration box lazily.
        """
        d = len(self.vars)
        out = {}
        for k, v in enumerate(self.vars):
            arr = self.arrays[v.name]
            shape = [1] * d
            shape[k] = arr.size
            out[v.name] = arr.reshape(shape)
        return out

    def shape(self) -> tuple[int, ...]:
        return tuple(int(self.arrays[v.name].size) for v in self.vars)


def _full_ranges(loop: Doall) -> dict[str, np.ndarray]:
    out = {}
    for v, (lo, hi, step) in zip(loop.vars, loop.ranges):
        out[v.name] = np.arange(lo, hi + 1, step, dtype=np.int64)
    return out


def _constraints(loop: Doall) -> tuple[list, list]:
    """Extract (var_constraints, proc_constraints) from the on clause.

    var_constraints: list of (var, fn(idx_array) -> grid_coord_array, grid_dim)
    proc_constraints: list of (grid_dim, required_coord) from constant exprs.
    """
    var_cons = []
    proc_cons = []
    if isinstance(loop.on, Owner):
        arr = loop.on.array
        for k, e in enumerate(loop.on.idx):
            if e is None:
                continue
            g = arr.grid_dim_of(k)
            if g is None:
                continue  # star dimension: no placement constraint
            bd = arr.dim(k)
            if e.is_constant():
                coord = int(bd.owner(e.evaluate({})))
                proc_cons.append((g, coord))
                continue
            v = e.single_var()
            if v is None:
                raise CompileError(
                    f"on-clause index {e!r} must involve at most one loop variable"
                )

            def fn(idx, e=e, v=v, bd=bd):
                return bd.owner(e.evaluate({v.name: idx}))

            var_cons.append((v, fn, g))
        # The owner's grid coordinates are relative to arr.grid; translate
        # to loop.grid coordinates by requiring the grids to share layout.
        if arr.grid.key() != loop.grid.key() or arr.grid.shape != loop.grid.shape:
            raise CompileError(
                "Owner() array must live on the loop grid itself; "
                "use OnProc for subset placement"
            )
    elif isinstance(loop.on, OnProc):
        if loop.on.grid.key() != loop.grid.key():
            raise CompileError("OnProc grid must be the loop grid")
        for g, e in enumerate(loop.on.coord_exprs):
            if e is None:
                continue
            if e.is_constant():
                proc_cons.append((g, int(e.evaluate({}))))
                continue
            v = e.single_var()
            if v is None:
                raise CompileError(
                    f"OnProc coordinate {e!r} must involve at most one loop variable"
                )

            def fn(idx, e=e, v=v):
                return e.evaluate({v.name: idx})

            var_cons.append((v, fn, g))
    else:  # pragma: no cover - defensive
        raise CompileError(f"unknown on clause {loop.on!r}")
    return var_cons, proc_cons


def stripmine(loop: Doall) -> dict[int, IterSet]:
    """Iteration sets for every rank of the loop grid."""
    full = _full_ranges(loop)
    var_cons, proc_cons = _constraints(loop)
    grid = loop.grid

    # Precompute per-variable coordinate arrays once, reuse for all ranks.
    coord_arrays = []
    for v, fn, g in var_cons:
        coord_arrays.append((v, fn(full[v.name]), g))

    out: dict[int, IterSet] = {}
    for rank in grid.linear:
        coords = grid.coords_of(rank)
        if any(coords[g] != c for g, c in proc_cons):
            out[rank] = IterSet(
                loop.vars, {v.name: np.empty(0, dtype=np.int64) for v in loop.vars}
            )
            continue
        masks: dict[str, np.ndarray] = {}
        for v, carr, g in coord_arrays:
            m = carr == coords[g]
            masks[v.name] = masks[v.name] & m if v.name in masks else m
        sets = {}
        for v in loop.vars:
            arr = full[v.name]
            if v.name in masks:
                arr = arr[masks[v.name]]
            sets[v.name] = arr
        out[rank] = IterSet(loop.vars, sets)
    return out
