"""Static per-loop performance estimation.

The paper (section 2) promises "performance estimation tools, which will
indicate which parts of a program will compile into efficient executable
code, and which will not."  This module is that tool: from a loop's
static analysis and a machine cost model it predicts per-rank compute
time, message counts and volumes, the loop's critical-path time, and a
parallel-efficiency figure -- without executing anything.

Message counts and byte volumes are read straight off the frozen
gather/scatter :class:`~repro.compiler.commsched.TransferSchedule`
objects the executor replays, so they are exact by construction.  Time
is predicted in both executor modes: serialized (compute after all
ghosts arrive) and overlapped (``predicted_time(cost, overlap=True)``:
interior compute hidden behind the in-flight ghost time, matching the
overlap-aware executor's split Compute ops).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Callable

from repro.compiler.schedule import DEFAULT_PLANS, PlanCache
from repro.lang.doall import Doall
from repro.machine.costmodel import CostModel


@dataclass
class RankEstimate:
    rank: int
    iterations: int
    flops: float
    msgs_out: int
    msgs_in: int
    bytes_out: int
    bytes_in: int
    #: the gather-direction (ghost) share of ``msgs_in``/``bytes_in``.
    #: Only these can hide interior compute: scatter-direction values
    #: (remote writes) are produced *after* the compute phase, so their
    #: receive time is a serialized tail in both executor modes.
    gather_msgs_in: int = 0
    gather_bytes_in: int = 0
    #: flops of the ghost-independent interior points (reads all locally
    #: owned); the overlap-aware prediction hides these behind the
    #: in-flight time of the incoming ghost messages.  Either a float or
    #: a zero-argument callable resolved (and cached) on first use, so a
    #: serialized-only prediction never pays for the interior derivation
    #: (``bench_dist_tuning`` estimates many candidate layouts that are
    #: never run, let alone overlapped).
    interior_flops: "float | Callable[[], float]" = 0.0

    def resolved_interior_flops(self) -> float:
        if callable(self.interior_flops):
            self.interior_flops = float(self.interior_flops())
        return self.interior_flops

    def compute_time(self, cost: CostModel) -> float:
        return cost.compute_time(self.flops)

    def comm_time(self, cost: CostModel) -> float:
        """Serialized communication time seen by this rank (upper bound)."""
        return (
            self.msgs_out * cost.send_overhead
            + self.msgs_in * cost.alpha
            + cost.beta * self.bytes_in
        )

    def inflight_time(self, cost: CostModel) -> float:
        """Time this rank's incoming *ghost* data spends on the wire.

        Gather-direction messages only: remote-write (scatter) values do
        not exist until after the compute phase and cannot overlap it.
        """
        return self.gather_msgs_in * cost.alpha + cost.beta * self.gather_bytes_in

    def scatter_tail_time(self, cost: CostModel) -> float:
        """Receive time of incoming remote-write values (post-compute)."""
        return (self.msgs_in - self.gather_msgs_in) * cost.alpha + cost.beta * (
            self.bytes_in - self.gather_bytes_in
        )

    def overlapped_time(self, cost: CostModel) -> float:
        """Critical path with interior compute hidden behind the ghosts.

        The rank posts its sends (paying injection overhead), computes
        its interior points while the incoming ghost messages are in
        flight (the longer of the two dominates), finishes the boundary
        points, then receives any remote-write values -- the timeline of
        the overlap-aware doall executor.
        """
        interior = cost.compute_time(self.resolved_interior_flops())
        boundary = cost.compute_time(self.flops - self.resolved_interior_flops())
        return (
            self.msgs_out * cost.send_overhead
            + cost.overlapped_time(interior, self.inflight_time(cost))
            + boundary
            + self.scatter_tail_time(cost)
        )


@dataclass
class LoopEstimate:
    """Whole-loop prediction: the performance tool's report."""

    per_rank: list[RankEstimate] = field(default_factory=list)

    def total_flops(self) -> float:
        return sum(r.flops for r in self.per_rank)

    def total_messages(self) -> int:
        return sum(r.msgs_out for r in self.per_rank)

    def total_bytes(self) -> int:
        return sum(r.bytes_out for r in self.per_rank)

    def predicted_time(self, cost: CostModel, overlap: bool = False) -> float:
        """Critical-path estimate: slowest rank's compute + comm.

        With ``overlap=True`` each rank's interior compute is hidden
        behind the in-flight time of its incoming ghost messages (the
        overlap-aware executor's timeline) instead of being summed --
        predicting the overlapped critical path, not the serialized sum.

        >>> from repro.machine.costmodel import CostModel
        >>> est = LoopEstimate(per_rank=[RankEstimate(
        ...     rank=0, iterations=8, flops=80.0, interior_flops=60.0,
        ...     msgs_out=0, msgs_in=1, bytes_out=0, bytes_in=8,
        ...     gather_msgs_in=1, gather_bytes_in=8)])
        >>> cost = CostModel(alpha=1e-4, beta=0.0, gamma_hop=0.0,
        ...                  flop_time=1e-6, send_overhead=0.0)
        >>> round(est.predicted_time(cost), 7)            # 80us + 100us
        0.00018
        >>> round(est.predicted_time(cost, overlap=True), 7)  # max(60,100)+20us
        0.00012
        """
        if not self.per_rank:
            return 0.0
        if overlap:
            return max(r.overlapped_time(cost) for r in self.per_rank)
        return max(r.compute_time(cost) + r.comm_time(cost) for r in self.per_rank)

    def predicted_efficiency(self, cost: CostModel, overlap: bool = False) -> float:
        """Ideal-time / (p * predicted time); 1.0 is perfect scaling."""
        p = len(self.per_rank)
        t = self.predicted_time(cost, overlap=overlap)
        if p == 0 or t <= 0:
            return 1.0
        ideal = cost.compute_time(self.total_flops()) / p
        return min(1.0, ideal / t)

    def load_imbalance(self) -> float:
        """max/mean iteration count over ranks (1.0 is perfectly balanced)."""
        counts = [r.iterations for r in self.per_rank]
        if not counts or sum(counts) == 0:
            return 1.0
        mean = sum(counts) / len(counts)
        return max(counts) / mean if mean else 1.0

    def report(self, cost: CostModel) -> str:
        """Human-readable report, one line per rank plus a summary."""
        lines = ["rank  iters      flops    out(msgs/bytes)   in(msgs/bytes)"]
        for r in self.per_rank:
            lines.append(
                f"{r.rank:>4}  {r.iterations:>6} {r.flops:>10.0f}"
                f"   {r.msgs_out:>3}/{r.bytes_out:<8}   {r.msgs_in:>3}/{r.bytes_in:<8}"
            )
        lines.append(
            f"predicted time {self.predicted_time(cost):.6g}s, "
            f"efficiency {self.predicted_efficiency(cost):.3f}, "
            f"imbalance {self.load_imbalance():.3f}"
        )
        return "\n".join(lines)


def _lists_nbytes(lists, itemsize: int) -> int:
    n = 1
    for x in lists:
        n *= int(x.size)
    return n * itemsize


def estimate_doall(
    loop: Doall, plans: PlanCache | None = None, count: bool = True
) -> LoopEstimate:
    """Predict the communication and computation of one doall loop.

    ``plans`` selects the plan cache the analysis is compiled into (a
    Session's, via ``Program.estimate``); the default plan cache is used
    when omitted, so estimating and then executing the same loop shares
    one compile.  ``count=False`` keeps a cached lookup out of the hit
    statistics (a static estimate is not a replay).
    """
    analysis, _ = (plans if plans is not None else DEFAULT_PLANS).analysis(
        loop, count=count
    )
    return estimate_from_analysis(analysis)


def estimate_from_analysis(analysis) -> LoopEstimate:
    """Build the per-rank estimate from an already-compiled analysis."""
    out = LoopEstimate()
    for rank in analysis.ranks:
        iters = analysis.iters[rank]
        est = RankEstimate(
            rank=rank,
            iterations=iters.count(),
            flops=analysis.rank_flops(rank),
            msgs_out=0,
            msgs_in=0,
            bytes_out=0,
            bytes_in=0,
            interior_flops=partial(analysis.rank_interior_flops, rank),
        )
        for plans in analysis.read_plans:
            # the frozen gather schedule is the wire truth: each send is
            # one open-mesh box read, each recv one box of ghost values
            ts = plans[rank].transfer
            if ts is None:
                continue
            itemsize = plans[rank].array.dtype.itemsize
            for _dst, locs in ts.sends:
                est.msgs_out += 1
                est.bytes_out += _lists_nbytes(locs, itemsize)
            for _src, pos in ts.recvs:
                est.msgs_in += 1
                est.bytes_in += _lists_nbytes(pos, itemsize)
                est.gather_msgs_in += 1
                est.gather_bytes_in += _lists_nbytes(pos, itemsize)
        for stmt_idx, sa in enumerate(analysis.stmts):
            # the frozen scatter schedule makes the write side exactly
            # predictable: remote-write messages carry values only
            ts = analysis.write_plans[stmt_idx][rank].transfer
            if ts is not None:
                itemsize = sa.lhs_array.dtype.itemsize
                for _dst, sel in ts.sends:
                    est.msgs_out += 1
                    est.bytes_out += int(sel.size) * itemsize
                for _src, locs in ts.recvs:
                    est.msgs_in += 1
                    est.bytes_in += int(locs[0].size) * itemsize
        out.per_rank.append(est)
    return out
