"""Static per-loop performance estimation.

The paper (section 2) promises "performance estimation tools, which will
indicate which parts of a program will compile into efficient executable
code, and which will not."  This module is that tool: from a loop's
static analysis and a machine cost model it predicts per-rank compute
time, message counts and volumes, the loop's critical-path time, and a
parallel-efficiency figure -- without executing anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.schedule import get_analysis
from repro.lang.doall import Doall
from repro.machine.costmodel import CostModel


@dataclass
class RankEstimate:
    rank: int
    iterations: int
    flops: float
    msgs_out: int
    msgs_in: int
    bytes_out: int
    bytes_in: int

    def compute_time(self, cost: CostModel) -> float:
        return cost.compute_time(self.flops)

    def comm_time(self, cost: CostModel) -> float:
        """Serialized communication time seen by this rank (upper bound)."""
        return (
            self.msgs_out * cost.send_overhead
            + self.msgs_in * cost.alpha
            + cost.beta * self.bytes_in
        )


@dataclass
class LoopEstimate:
    """Whole-loop prediction: the performance tool's report."""

    per_rank: list[RankEstimate] = field(default_factory=list)

    def total_flops(self) -> float:
        return sum(r.flops for r in self.per_rank)

    def total_messages(self) -> int:
        return sum(r.msgs_out for r in self.per_rank)

    def total_bytes(self) -> int:
        return sum(r.bytes_out for r in self.per_rank)

    def predicted_time(self, cost: CostModel) -> float:
        """Critical-path estimate: slowest rank's compute + comm."""
        if not self.per_rank:
            return 0.0
        return max(r.compute_time(cost) + r.comm_time(cost) for r in self.per_rank)

    def predicted_efficiency(self, cost: CostModel) -> float:
        """Ideal-time / (p * predicted time); 1.0 is perfect scaling."""
        p = len(self.per_rank)
        t = self.predicted_time(cost)
        if p == 0 or t <= 0:
            return 1.0
        ideal = cost.compute_time(self.total_flops()) / p
        return min(1.0, ideal / t)

    def load_imbalance(self) -> float:
        """max/mean iteration count over ranks (1.0 is perfectly balanced)."""
        counts = [r.iterations for r in self.per_rank]
        if not counts or sum(counts) == 0:
            return 1.0
        mean = sum(counts) / len(counts)
        return max(counts) / mean if mean else 1.0

    def report(self, cost: CostModel) -> str:
        """Human-readable report, one line per rank plus a summary."""
        lines = ["rank  iters      flops    out(msgs/bytes)   in(msgs/bytes)"]
        for r in self.per_rank:
            lines.append(
                f"{r.rank:>4}  {r.iterations:>6} {r.flops:>10.0f}"
                f"   {r.msgs_out:>3}/{r.bytes_out:<8}   {r.msgs_in:>3}/{r.bytes_in:<8}"
            )
        lines.append(
            f"predicted time {self.predicted_time(cost):.6g}s, "
            f"efficiency {self.predicted_efficiency(cost):.3f}, "
            f"imbalance {self.load_imbalance():.3f}"
        )
        return "\n".join(lines)


def _lists_nbytes(lists, itemsize: int) -> int:
    n = 1
    for x in lists:
        n *= int(x.size)
    return n * itemsize


def estimate_doall(loop: Doall) -> LoopEstimate:
    """Predict the communication and computation of one doall loop."""
    analysis, _ = get_analysis(loop)
    out = LoopEstimate()
    for rank in analysis.ranks:
        iters = analysis.iters[rank]
        est = RankEstimate(
            rank=rank,
            iterations=iters.count(),
            flops=analysis.rank_flops(rank),
            msgs_out=0,
            msgs_in=0,
            bytes_out=0,
            bytes_in=0,
        )
        for plans in analysis.read_plans:
            plan = plans[rank]
            itemsize = plan.array.dtype.itemsize
            for lists in plan.send_to.values():
                est.msgs_out += 1
                est.bytes_out += _lists_nbytes(lists, itemsize)
            for lists in plan.recv_from.values():
                est.msgs_in += 1
                est.bytes_in += _lists_nbytes(lists, itemsize)
        for stmt_idx, sa in enumerate(analysis.stmts):
            # the frozen scatter schedule makes the write side exactly
            # predictable: remote-write messages carry values only
            ts = analysis.write_plans[stmt_idx][rank].transfer
            if ts is not None:
                itemsize = sa.lhs_array.dtype.itemsize
                for _dst, sel in ts.sends:
                    est.msgs_out += 1
                    est.bytes_out += int(sel.size) * itemsize
                for _src, locs in ts.recvs:
                    est.msgs_in += 1
                    est.bytes_in += int(locs[0].size) * itemsize
        out.per_rank.append(est)
    return out
