"""The KF1 mini-compiler.

Given a :class:`~repro.lang.doall.Doall`, this package performs the
transformations the paper attributes to the Kali compiler:

* **strip-mining** (:mod:`repro.compiler.stripmine`): partition the
  iteration space among processors according to the ``on`` clause;
* **access analysis** (:mod:`repro.compiler.access`): per-processor
  needed-element sets for every array reference;
* **communication generation** (:mod:`repro.compiler.commgen`): matching
  send/receive sets from the overlap of owned and needed data;
* **scheduling** (:mod:`repro.compiler.schedule`): the per-processor node
  program implementing copy-in/copy-out semantics;
* **performance estimation** (:mod:`repro.compiler.estimate`): the static
  per-loop communication/compute predictor the paper proposes as the
  companion tool;
* **dynamic inspection** (:mod:`repro.compiler.inspector`): the runtime
  gather fallback for irregular references (paper's reference [17]).
"""

from repro.compiler.schedule import execute_doall, clear_plan_cache
from repro.compiler.estimate import estimate_doall, LoopEstimate
from repro.compiler.inspector import inspector_gather

__all__ = [
    "execute_doall",
    "clear_plan_cache",
    "estimate_doall",
    "LoopEstimate",
    "inspector_gather",
]
