"""The KF1 mini-compiler.

Given a :class:`~repro.lang.doall.Doall`, this package performs the
transformations the paper attributes to the Kali compiler:

* **strip-mining** (:mod:`repro.compiler.stripmine`): partition the
  iteration space among processors according to the ``on`` clause;
* **access analysis** (:mod:`repro.compiler.access`): per-processor
  needed-element sets for every array reference;
* **communication generation** (:mod:`repro.compiler.commgen`): matching
  send/receive sets from the overlap of owned and needed data, frozen
  into per-rank communication schedules (precomputed gather/scatter
  position arrays) at analysis time;
* **scheduling** (:mod:`repro.compiler.schedule`): the per-processor node
  program implementing copy-in/copy-out semantics.  Analyses are cached
  by structural loop key, so a loop re-executed every sweep replays its
  frozen schedule instead of re-deriving communication sets -- the
  replay/compile events appear in traces as ``commsched/hit`` and
  ``commsched/build`` marks;
* **performance estimation** (:mod:`repro.compiler.estimate`): the static
  per-loop communication/compute predictor the paper proposes as the
  companion tool;
* **dynamic inspection** (:mod:`repro.compiler.inspector`): the runtime
  two-round gather fallback for irregular references (paper's reference
  [17], the Crowley/Saltz inspector/executor scheme).

The bidirectional TransferSchedule subsystem lives in
:mod:`repro.compiler.commsched`: a
:class:`~repro.compiler.commsched.TransferSchedule` is one rank's
compiled share of a collective transfer -- a **gather** (the inspector ->
schedule -> executor pipeline for irregular references: a one-time
inspection builds the schedule, the vectorized executor replays it with
a single round of coalesced per-owner messages), a **scatter** (the
frozen remote-write plans of doall loops), or a **repartition** (the
owner-to-owner relayout behind ``DistArray.redistribute`` /
``ctx.redistribute``).  All three replay through one executor
(:func:`~repro.compiler.commsched.execute_transfer`) and share the
``commsched/*`` trace-mark vocabulary.  Caching: gather schedules key on
the array's ``uid``/``comm_epoch`` and an index-pattern fingerprint, so
redistribution (which bumps the epoch) orphans them; repartition
schedules key on the (from-layout, to-layout) spec pair instead, so
repeated layout flips replay forever; scatter schedules ride in the
structurally-keyed doall plan cache.
"""

from repro.compiler.schedule import (
    DEFAULT_PLANS,
    PlanCache,
    clear_plan_cache,
    drop_plan,
    execute_doall,
    plans_of,
)
from repro.compiler.estimate import estimate_doall, LoopEstimate
from repro.compiler.inspector import inspector_gather
from repro.compiler.commsched import (
    DEFAULT_CACHE,
    GatherSchedule,
    ScheduleCache,
    TransferSchedule,
    build_gather_schedule,
    build_repartition_schedule,
    cached_inspector_gather,
    cached_repartition,
    clear_schedule_cache,
    execute_gather,
    execute_repartition,
    execute_transfer,
    index_fingerprint,
    repartition_key,
    repartition_pieces,
    schedule_key,
)

__all__ = [
    "execute_doall",
    "PlanCache",
    "DEFAULT_PLANS",
    "plans_of",
    "clear_plan_cache",
    "drop_plan",
    "estimate_doall",
    "LoopEstimate",
    "inspector_gather",
    # the bidirectional TransferSchedule subsystem
    "TransferSchedule",
    "GatherSchedule",
    "ScheduleCache",
    "DEFAULT_CACHE",
    "execute_transfer",
    "build_gather_schedule",
    "execute_gather",
    "build_repartition_schedule",
    "execute_repartition",
    "cached_repartition",
    "repartition_key",
    "repartition_pieces",
    "cached_inspector_gather",
    "clear_schedule_cache",
    "index_fingerprint",
    "schedule_key",
]
