"""The KF1 mini-compiler.

Given a :class:`~repro.lang.doall.Doall`, this package performs the
transformations the paper attributes to the Kali compiler:

* **strip-mining** (:mod:`repro.compiler.stripmine`): partition the
  iteration space among processors according to the ``on`` clause;
* **access analysis** (:mod:`repro.compiler.access`): per-processor
  needed-element sets for every array reference;
* **communication generation** (:mod:`repro.compiler.commgen`): matching
  send/receive sets from the overlap of owned and needed data, frozen
  into per-rank communication schedules (precomputed gather/scatter
  position arrays) at analysis time;
* **scheduling** (:mod:`repro.compiler.schedule`): the per-processor node
  program implementing copy-in/copy-out semantics.  Analyses are cached
  by structural loop key, so a loop re-executed every sweep replays its
  frozen schedule instead of re-deriving communication sets -- the
  replay/compile events appear in traces as ``commsched/hit`` and
  ``commsched/build`` marks;
* **performance estimation** (:mod:`repro.compiler.estimate`): the static
  per-loop communication/compute predictor the paper proposes as the
  companion tool;
* **dynamic inspection** (:mod:`repro.compiler.inspector`): the runtime
  two-round gather fallback for irregular references (paper's reference
  [17], the Crowley/Saltz inspector/executor scheme).

The inspector -> schedule -> executor pipeline for irregular references
lives in :mod:`repro.compiler.commsched`: a one-time inspection builds a
first-class :class:`~repro.compiler.commsched.GatherSchedule` (who needs
what from whom, with precomputed permutation arrays), and the vectorized
executor replays it with a single round of coalesced per-owner messages.
Caching applies whenever the index pattern and the array layout are both
unchanged: schedules are keyed on the array's ``uid``/``comm_epoch`` and
an index-pattern fingerprint, and redistribution bumps the epoch so every
stale schedule (and cached doall plan) is rebuilt on next use.
"""

from repro.compiler.schedule import execute_doall, clear_plan_cache, drop_plan
from repro.compiler.estimate import estimate_doall, LoopEstimate
from repro.compiler.inspector import inspector_gather
from repro.compiler.commsched import (
    DEFAULT_CACHE,
    GatherSchedule,
    ScheduleCache,
    build_gather_schedule,
    cached_inspector_gather,
    clear_schedule_cache,
    execute_gather,
    index_fingerprint,
    schedule_key,
)

__all__ = [
    "execute_doall",
    "clear_plan_cache",
    "drop_plan",
    "estimate_doall",
    "LoopEstimate",
    "inspector_gather",
    # inspector -> schedule -> executor pipeline
    "GatherSchedule",
    "ScheduleCache",
    "DEFAULT_CACHE",
    "build_gather_schedule",
    "execute_gather",
    "cached_inspector_gather",
    "clear_schedule_cache",
    "index_fingerprint",
    "schedule_key",
]
