"""Communication-set generation and the whole-loop static analysis.

:class:`LoopAnalysis` is the compile step of the paper's KF1 compiler:
from the loop alone (no execution) it derives, for every rank,

* the iteration set (strip-mining),
* the needed-element box product per read array,
* matching (src, dst) transfer sets: ``owned(src) ∩ needed(dst)``,
* the write plan: local stores plus any remote-write scatter sets.

Everything is deterministic and derivable by every rank independently,
which is why the generated sends and receives match without any runtime
negotiation -- the property the paper relies on for affine loops.

The analysis result is *frozen* into per-rank communication schedules
on both sides: :meth:`ReadPlan.freeze` compiles open-mesh local
coordinates for every outgoing coalesced ghost message and scatter
positions for every incoming one, and the write analysis compiles each
statement's remote-write sets into a scatter-direction
:class:`~repro.compiler.commsched.TransferSchedule` (value-vector
selections out, local-block coordinates in).  The executor in
:mod:`repro.compiler.schedule` replays these precomputed arrays on
every sweep, so repeated doall executions (the common case) pay for
communication-set derivation exactly once.
"""

from __future__ import annotations

import numpy as np

from repro.compiler import access as acc
from repro.compiler.stripmine import IterSet, stripmine
from repro.lang.array import BaseDistArray
from repro.lang.doall import Doall


class ReadPlan:
    """Gather plan (and compiled communication schedule) for one array
    on one rank.

    The ``recv_from``/``send_to``/``own_overlap`` global index lists are
    the analysis result; the ``*_locs``/``*_pos`` fields are the frozen
    executor schedule derived from them once at compile time: open-mesh
    local-block coordinates for every outgoing coalesced message and
    workspace scatter positions for every incoming one, so re-executing
    the loop every sweep replays precomputed permutation arrays instead
    of re-deriving them.
    """

    __slots__ = (
        "array",
        "needed",
        "recv_from",
        "send_to",
        "own_overlap",
        "send_locs",
        "own_locs",
        "own_pos",
        "recv_pos",
    )

    def __init__(self, array: BaseDistArray):
        self.array = array
        self.needed: list[np.ndarray] | None = None
        # rank -> per-dim global index lists
        self.recv_from: dict[int, list[np.ndarray]] = {}
        self.send_to: dict[int, list[np.ndarray]] = {}
        self.own_overlap: list[np.ndarray] | None = None
        # -- frozen executor schedule (see freeze()) --------------------
        self.send_locs: dict[int, tuple] = {}
        self.own_locs: tuple | None = None
        self.own_pos: tuple | None = None
        self.recv_pos: dict[int, tuple] = {}

    def freeze(self, rank: int) -> None:
        """Compile the index lists into reusable gather/scatter arrays."""
        array = self.array
        if self.needed is not None:
            for src, lists in self.recv_from.items():
                self.recv_pos[src] = np.ix_(
                    *(acc.positions_in(n, g) for n, g in zip(self.needed, lists))
                )
            if self.own_overlap is not None:
                self.own_pos = np.ix_(
                    *(
                        acc.positions_in(n, g)
                        for n, g in zip(self.needed, self.own_overlap)
                    )
                )
        if array.grid.contains(rank):
            if self.own_overlap is not None:
                self.own_locs = np.ix_(*local_positions(array, self.own_overlap))
            for dst, lists in self.send_to.items():
                self.send_locs[dst] = np.ix_(*local_positions(array, lists))


class WritePlan:
    """Write plan (frozen scatter schedule) for one statement on one rank.

    ``transfer`` is the frozen scatter-direction
    :class:`~repro.compiler.commsched.TransferSchedule` derived once at
    compile time: selection arrays into the statement's flat value
    vector for every outgoing coalesced value message and for the local
    store, and precomputed local-block coordinates for every incoming
    one.  The executor in :mod:`repro.compiler.schedule` replays these
    arrays every sweep -- no owner computation, no index lists on the
    wire (messages carry values only) -- mirroring the frozen
    :class:`ReadPlan` on the read side.  ``transfer`` is None when the
    statement moves no messages on this rank.

    For the all-local fast path (every write lands on the executing
    rank -- the paper's stencils) the store is frozen as ``local_box``
    instead: an open-mesh local-coordinate box plus the axis mapping
    from the iteration box, O(extent-per-dim) memory rather than
    O(iteration-points) coordinate arrays.  ``local_box`` is None when
    the lhs is not box-decomposable (e.g. ``A[i, i]``); the executor
    then derives flat coordinates per sweep, as the seed did.
    """

    __slots__ = ("transfer", "local_box")

    def __init__(self):
        self.transfer = None
        self.local_box = None


class LoopAnalysis:
    """Static analysis of one doall loop over its whole grid."""

    def __init__(self, loop: Doall):
        self.loop = loop
        self.ranks = loop.grid.linear
        self.iters: dict[int, IterSet] = stripmine(loop)
        self.stmts = [acc.StmtAccess(st) for st in loop.body]
        self.writes_local = acc.writes_are_local(loop)

        # ---- read analysis ------------------------------------------------
        read_map = acc.arrays_read(loop)
        self.read_arrays: list[BaseDistArray] = [a for a, _ in read_map.values()]
        self.read_refs: list[list] = [refs for _, refs in read_map.values()]
        # needed[arr_idx][rank] -> per-dim lists or None
        self.needed: list[dict[int, list[np.ndarray] | None]] = []
        self.read_plans: list[dict[int, ReadPlan]] = []
        for array, refs in zip(self.read_arrays, self.read_refs):
            needed = {
                r: acc.needed_lists(array, refs, self.iters[r]) for r in self.ranks
            }
            self.needed.append(needed)
            owned = {r: acc.owned_lists(array, r) for r in self.ranks}
            plans: dict[int, ReadPlan] = {}
            for me in self.ranks:
                plans[me] = ReadPlan(array)
                plans[me].needed = needed[me]
            if array.replicated:
                # Full copy everywhere: needs are satisfied locally.
                for me in self.ranks:
                    plans[me].own_overlap = needed[me]
                self.read_plans.append(plans)
                continue
            for me in self.ranks:
                plans[me].own_overlap = acc.intersect_lists(needed[me], owned[me])
                for q in self.ranks:
                    if q == me:
                        continue
                    inter = acc.intersect_lists(needed[me], owned[q])
                    if inter is not None:
                        plans[me].recv_from[q] = inter
                        plans[q].send_to[me] = inter
            self.read_plans.append(plans)

        # ---- freeze: compile plans into reusable comm schedules -----------
        for plans in self.read_plans:
            for me, plan in plans.items():
                plan.freeze(me)

        # ---- write analysis: freeze scatter schedules ---------------------
        # write_plans[stmt_idx][rank].  Like the read side, the analysis
        # result is frozen once: selection arrays into each rank's flat
        # value vector (what to store locally / send to each owner) and
        # local-block coordinates for every incoming value message, so
        # the executor never re-derives owners or payload index lists
        # and remote-write messages carry values only.
        from repro.compiler.commsched import TransferSchedule

        def transfer_of(plan):
            if plan.transfer is None:
                plan.transfer = TransferSchedule("scatter")
            return plan.transfer

        self.write_plans: list[dict[int, WritePlan]] = []
        for sa in self.stmts:
            plans = {r: WritePlan() for r in self.ranks}
            for r in self.ranks:
                iters = self.iters[r]
                if iters.empty:
                    continue
                idx_arrays = sa.lhs_index_arrays(iters)
                if self.writes_local:
                    plans[r].local_box = freeze_box_store(
                        sa.lhs_array, idx_arrays, iters.shape()
                    )
                    continue
                shape = iters.shape()
                full_idx = [
                    np.broadcast_to(np.asarray(a), shape).reshape(-1)
                    for a in idx_arrays
                ]
                ts = transfer_of(plans[r])
                owners = sa.lhs_array.owner_ranks_vec(tuple(idx_arrays))
                owners = np.broadcast_to(owners, shape).reshape(-1)
                for dst in (int(d) for d in np.unique(owners)):
                    sel = np.nonzero(owners == dst)[0]
                    piece = tuple(
                        local_positions(sa.lhs_array, [g[sel] for g in full_idx])
                    )
                    if dst == r:
                        ts.self_src = sel
                        ts.self_dst = piece
                        continue
                    ts.sends.append((dst, sel))
                    if dst in plans:
                        transfer_of(plans[dst]).recvs.append((r, piece))
            self.write_plans.append(plans)
        self.has_remote_writes = any(
            plan.transfer is not None
            and (plan.transfer.sends or plan.transfer.recvs)
            for plans in self.write_plans
            for plan in plans.values()
        )

    # ------------------------------------------------------------------

    def flops_per_point(self) -> float:
        """Flop estimate per iteration point over the whole body."""
        return float(sum(sa.stmt.rhs.flops() + 1 for sa in self.stmts))

    def rank_flops(self, rank: int) -> float:
        return self.iters[rank].count() * self.flops_per_point()


def freeze_box_store(array: BaseDistArray, idx_arrays, iters_shape: tuple):
    """Freeze an all-local write as an open-mesh box store.

    Returns ``(locs, perm, shape)`` -- a precomputed local-coordinate
    open mesh, the transpose order mapping the iteration box onto
    array-dimension order, and the target box shape -- or None when the
    lhs index expressions do not decompose into one independent loop
    axis per array dimension (e.g. ``A[i, i]``, or a loop variable
    absent from the lhs so distinct iterations collide); the executor
    then falls back to per-sweep flat coordinates.  The box costs
    O(extent-per-dim) memory in the cached analysis, where per-point
    coordinate arrays would cost O(iteration-points) per statement.
    """
    d = len(iters_shape)
    lists: list[np.ndarray] = []
    axes: list[int | None] = []
    seen: set[int] = set()
    for a in idx_arrays:
        a = np.asarray(a)
        if a.size == 1:
            axes.append(None)
            lists.append(a.reshape(1))
        elif a.ndim == d:
            varying = [ax for ax in range(d) if a.shape[ax] > 1]
            if (
                len(varying) != 1
                or a.shape[varying[0]] != iters_shape[varying[0]]
                or varying[0] in seen
            ):
                return None
            seen.add(varying[0])
            axes.append(varying[0])
            lists.append(a.reshape(-1))
        else:
            return None
    leftover = [ax for ax in range(d) if ax not in seen]
    if any(iters_shape[ax] > 1 for ax in leftover):
        return None  # an unconsumed iteration axis would collide writes
    perm = tuple([ax for ax in axes if ax is not None] + leftover)
    dims = local_positions(array, lists)
    return np.ix_(*dims), perm, tuple(x.size for x in dims)


def local_positions(dims_owner, lists: list[np.ndarray]) -> list[np.ndarray]:
    """Translate per-dim global index lists into local-block index lists.

    ``dims_owner`` is anything exposing ``dim(k)`` bound distributions
    (an array or a :class:`~repro.lang.dist.Distribution`); translation
    is rank-independent for every supported distribution.  The one
    shared helper for the read side, the write side, and repartition.
    """
    return [
        np.asarray(dims_owner.dim(k).local_index(g), dtype=np.int64)
        for k, g in enumerate(lists)
    ]
