"""Communication-set generation and the whole-loop static analysis.

:class:`LoopAnalysis` is the compile step of the paper's KF1 compiler:
from the loop alone (no execution) it derives, for every rank,

* the iteration set (strip-mining),
* the needed-element box product per read array,
* matching (src, dst) transfer sets: ``owned(src) ∩ needed(dst)``,
* the write plan: local stores plus any remote-write scatter sets.

Everything is deterministic and derivable by every rank independently,
which is why the generated sends and receives match without any runtime
negotiation -- the property the paper relies on for affine loops.

The analysis result is *frozen* into per-rank
:class:`~repro.compiler.commsched.TransferSchedule` objects on both
sides: :meth:`ReadPlan.freeze` compiles each rank's share of the ghost
exchange into a gather-direction schedule (open-mesh local-block
coordinates out, workspace scatter positions in), and the write
analysis compiles each statement's remote-write sets into a
scatter-direction schedule (value-vector selections out, local-block
coordinates in).  The executor in :mod:`repro.compiler.schedule`
replays both through
:func:`~repro.compiler.commsched.execute_transfer`'s wire halves on
every sweep, so repeated doall executions (the common case) pay for
communication-set derivation exactly once and every direction data
moves shares one executor and one trace vocabulary.

The analysis also derives the *interior* iteration count per rank: the
points whose reads are all locally owned and can therefore be computed
while ghost messages are still in flight.  The overlap-aware executor
splits its Compute op on this count; see ``LoopAnalysis.interior_count``.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.compiler import access as acc
from repro.compiler.stripmine import IterSet, stripmine
from repro.lang.array import BaseDistArray
from repro.lang.doall import Doall
from repro.lang.expr import compile_expr
from repro.util.errors import CompileError


class ReadPlan:
    """Gather plan (and compiled communication schedule) for one array
    on one rank.

    The ``recv_from``/``send_to``/``own_overlap`` global index lists are
    the analysis result; ``transfer`` is the frozen gather-direction
    :class:`~repro.compiler.commsched.TransferSchedule` derived from
    them once at compile time: open-mesh local-block coordinates for
    every outgoing coalesced ghost message (source side) and workspace
    scatter positions for every incoming one (destination side), with
    the own-data overlap as the schedule's local move.  Re-executing the
    loop every sweep replays this schedule through the shared transfer
    executor instead of re-deriving index arrays -- the read side of the
    wire path is the same code path as the write side and repartition.
    ``transfer`` is None when the rank neither reads nor owns any part
    of the array.
    """

    __slots__ = ("array", "needed", "recv_from", "send_to", "own_overlap", "transfer")

    def __init__(self, array: BaseDistArray):
        self.array = array
        self.needed: list[np.ndarray] | None = None
        # rank -> per-dim global index lists
        self.recv_from: dict[int, list[np.ndarray]] = {}
        self.send_to: dict[int, list[np.ndarray]] = {}
        self.own_overlap: list[np.ndarray] | None = None
        #: frozen gather-direction TransferSchedule (see freeze())
        self.transfer: "TransferSchedule | None" = None

    def freeze(self, rank: int) -> None:
        """Compile the index lists into a gather TransferSchedule."""
        from repro.compiler.commsched import TransferSchedule

        array = self.array
        ts = TransferSchedule("gather", rank=rank, grid=array.grid)
        if self.needed is not None:
            for src in sorted(self.recv_from):
                lists = self.recv_from[src]
                pos = np.ix_(
                    *(acc.positions_in(n, g) for n, g in zip(self.needed, lists))
                )
                ts.recvs.append((src, pos))
            if self.own_overlap is not None:
                ts.self_dst = np.ix_(
                    *(
                        acc.positions_in(n, g)
                        for n, g in zip(self.needed, self.own_overlap)
                    )
                )
        if array.grid.contains(rank):
            if self.own_overlap is not None:
                ts.self_src = np.ix_(*local_positions(array, self.own_overlap))
            for dst in sorted(self.send_to):
                ts.sends.append((dst, np.ix_(*local_positions(array, self.send_to[dst]))))
        elif self.own_overlap is not None:
            # only reachable for a replicated array on a sub-grid: the
            # rank "overlaps" every element but stores no copy to read
            raise CompileError(
                f"rank {rank} reads replicated array {array.name!r} but "
                "owns no copy of it (the array's grid does not contain "
                "the rank); replicate on the loop grid instead"
            )
        if ts.sends or ts.recvs or ts.self_src is not None:
            self.transfer = ts


class WritePlan:
    """Write plan (frozen scatter schedule) for one statement on one rank.

    ``transfer`` is the frozen scatter-direction
    :class:`~repro.compiler.commsched.TransferSchedule` derived once at
    compile time: selection arrays into the statement's flat value
    vector for every outgoing coalesced value message and for the local
    store, and precomputed local-block coordinates for every incoming
    one.  The executor in :mod:`repro.compiler.schedule` replays these
    arrays every sweep -- no owner computation, no index lists on the
    wire (messages carry values only) -- mirroring the frozen
    :class:`ReadPlan` on the read side.  ``transfer`` is None when the
    statement moves no messages on this rank.

    For the all-local fast path (every write lands on the executing
    rank -- the paper's stencils) the store is frozen as ``local_box``
    instead: an open-mesh local-coordinate box plus the axis mapping
    from the iteration box, O(extent-per-dim) memory rather than
    O(iteration-points) coordinate arrays.  ``local_box`` is None when
    the lhs is not box-decomposable (e.g. ``A[i, i]``); the executor
    then derives flat coordinates per sweep, as the seed did.
    """

    __slots__ = ("transfer", "local_box")

    def __init__(self):
        self.transfer = None
        self.local_box = None


class LoopAnalysis:
    """Static analysis of one doall loop over its whole grid."""

    def __init__(self, loop: Doall):
        self.loop = loop
        self.ranks = loop.grid.linear
        self.iters: dict[int, IterSet] = stripmine(loop)
        self.stmts = [acc.StmtAccess(st) for st in loop.body]
        self.writes_local = acc.writes_are_local(loop)
        # Strings the executor stamps on every sweep's ops (Compute
        # labels, commsched mark payloads): joined once here, never in
        # the replay loop.
        self.var_label = ",".join(v.name for v in loop.vars)
        self.scatter_names = ",".join(sa.lhs_array.name for sa in self.stmts)
        #: per-rank compiled replay recipes, built lazily by
        #: :meth:`step_plan` and dropped together with the analysis
        #: (the cache entry is the only owner), so layout invalidation
        #: (``drop_plans_for_array``) retires compiled closures exactly
        #: when it retires the schedules they were built against.
        #: Keyed by rank for single-run plans and ``(rank, nbatch)`` for
        #: batched ones (``Program.run_batch``).
        self.step_plans: dict[object, "StepPlan"] = {}
        # guards the two lazy memoizations (step plans, interior
        # counts): an analysis may be shared across Sessions through a
        # shared PlanCache, and everything else on it is immutable
        # after construction (the contract that makes sharing sound)
        self._memo_lock = threading.Lock()

        # ---- read analysis ------------------------------------------------
        read_map = acc.arrays_read(loop)
        self.read_arrays: list[BaseDistArray] = [a for a, _ in read_map.values()]
        self.read_refs: list[list] = [refs for _, refs in read_map.values()]
        self.read_names = ",".join(a.name for a in self.read_arrays)
        # needed[arr_idx][rank] -> per-dim lists or None
        self.needed: list[dict[int, list[np.ndarray] | None]] = []
        self.read_plans: list[dict[int, ReadPlan]] = []
        # per read array: rank -> owned lists snapshot (None entry for
        # arrays replicated at analysis time).  The lazy interior
        # derivation must consult this snapshot, never the array's live
        # layout -- a post-analysis redistribution would otherwise leak
        # into an estimate frozen under the old layout.
        self._read_owned: list[dict[int, list[np.ndarray] | None] | None] = []
        for array, refs in zip(self.read_arrays, self.read_refs):
            needed = {
                r: acc.needed_lists(array, refs, self.iters[r]) for r in self.ranks
            }
            self.needed.append(needed)
            owned = {r: acc.owned_lists(array, r) for r in self.ranks}
            self._read_owned.append(None if array.replicated else owned)
            plans: dict[int, ReadPlan] = {}
            for me in self.ranks:
                plans[me] = ReadPlan(array)
                plans[me].needed = needed[me]
            if array.replicated:
                # Full copy everywhere: needs are satisfied locally.
                for me in self.ranks:
                    plans[me].own_overlap = needed[me]
                self.read_plans.append(plans)
                continue
            for me in self.ranks:
                plans[me].own_overlap = acc.intersect_lists(needed[me], owned[me])
                for q in self.ranks:
                    if q == me:
                        continue
                    inter = acc.intersect_lists(needed[me], owned[q])
                    if inter is not None:
                        plans[me].recv_from[q] = inter
                        plans[q].send_to[me] = inter
            self.read_plans.append(plans)

        # ---- freeze: compile plans into reusable comm schedules -----------
        for plans in self.read_plans:
            for me, plan in plans.items():
                plan.freeze(me)
        self.has_read_transfers = any(
            plan.transfer is not None
            and (plan.transfer.sends or plan.transfer.recvs)
            for plans in self.read_plans
            for plan in plans.values()
        )

        # ---- interior analysis: what can compute before ghosts arrive -----
        # interior_count(rank) counts the iteration points whose every
        # rhs read is locally owned by that rank.  These points can be
        # evaluated while the ghost messages of the same sweep are still
        # in flight, so the overlap-aware executor splits its Compute op
        # on this boundary.  Derived lazily per rank (the serialized
        # executor never asks) and memoized with the cached analysis.
        self._interior_counts: dict[int, int] = {}

        # ---- write analysis: freeze scatter schedules ---------------------
        # write_plans[stmt_idx][rank].  Like the read side, the analysis
        # result is frozen once: selection arrays into each rank's flat
        # value vector (what to store locally / send to each owner) and
        # local-block coordinates for every incoming value message, so
        # the executor never re-derives owners or payload index lists
        # and remote-write messages carry values only.
        from repro.compiler.commsched import TransferSchedule

        def transfer_of(plan):
            if plan.transfer is None:
                plan.transfer = TransferSchedule("scatter")
            return plan.transfer

        self.write_plans: list[dict[int, WritePlan]] = []
        for sa in self.stmts:
            plans = {r: WritePlan() for r in self.ranks}
            for r in self.ranks:
                iters = self.iters[r]
                if iters.empty:
                    continue
                idx_arrays = sa.lhs_index_arrays(iters)
                if self.writes_local:
                    plans[r].local_box = freeze_box_store(
                        sa.lhs_array, idx_arrays, iters.shape()
                    )
                    continue
                shape = iters.shape()
                full_idx = [
                    np.broadcast_to(np.asarray(a), shape).reshape(-1)
                    for a in idx_arrays
                ]
                ts = transfer_of(plans[r])
                owners = sa.lhs_array.owner_ranks_vec(tuple(idx_arrays))
                owners = np.broadcast_to(owners, shape).reshape(-1)
                for dst in (int(d) for d in np.unique(owners)):
                    sel = np.nonzero(owners == dst)[0]
                    piece = tuple(
                        local_positions(sa.lhs_array, [g[sel] for g in full_idx])
                    )
                    if dst == r:
                        ts.self_src = sel
                        ts.self_dst = piece
                        continue
                    ts.sends.append((dst, sel))
                    if dst in plans:
                        transfer_of(plans[dst]).recvs.append((r, piece))
            self.write_plans.append(plans)
        self.has_remote_writes = any(
            plan.transfer is not None
            and (plan.transfer.sends or plan.transfer.recvs)
            for plans in self.write_plans
            for plan in plans.values()
        )

    # ------------------------------------------------------------------

    def step_plan(self, rank: int, nbatch: int | None = None) -> "StepPlan":
        """This rank's compiled replay recipe (built once, memoized).

        The plan freezes everything the interpreted executor re-derives
        per sweep -- workspace buffers, per-reference fetch positions,
        lowered rhs closures, lhs store coordinates -- so steady-state
        replay is a straight drive over prebound numpy calls.  Living on
        the analysis, a plan's lifetime is exactly the analysis's cache
        entry lifetime: redistribution keys it away and
        ``drop_plans_for_array`` purges it eagerly.

        ``nbatch`` asks for the *batched* variant of the recipe: the
        same schedules and closures with a leading batch axis of that
        extent threaded through every workspace, fetch, and store (see
        ``Program.run_batch``).  Batched plans memoize under
        ``(rank, nbatch)`` next to the single-run plans.
        """
        key = rank if nbatch is None else (rank, nbatch)
        plan = self.step_plans.get(key)
        if plan is None:
            with self._memo_lock:
                plan = self.step_plans.get(key)
                if plan is None:
                    plan = StepPlan(self, rank, nbatch=nbatch)
                    self.step_plans[key] = plan
        return plan

    def interior_count(self, rank: int) -> int:
        """Iteration points of ``rank`` whose reads are all locally owned.

        Computed from the exact per-reference index arrays (not the box
        over-approximation of the needed lists), so the count is what the
        executor could genuinely evaluate before any ghost arrives.
        Memoized: the analysis is cached and replayed every sweep.
        """
        if rank in self._interior_counts:
            return self._interior_counts[rank]
        with self._memo_lock:
            if rank not in self._interior_counts:
                self._interior_counts[rank] = self._derive_interior_count(rank)
        return self._interior_counts[rank]

    def _derive_interior_count(self, rank: int) -> int:
        iters = self.iters[rank]
        if iters.empty:
            return 0
        mask = np.ones(iters.shape(), dtype=bool)
        for (array, refs), owned_by_rank in zip(
            zip(self.read_arrays, self.read_refs), self._read_owned
        ):
            if owned_by_rank is None:
                continue  # replicated at analysis time: reads all local
            owned = owned_by_rank[rank]
            if owned is None:
                return 0  # rank owns nothing: every point waits on ghosts
            for ref in refs:
                for k in range(array.ndim):
                    vals = np.asarray(acc.eval_index(ref.idx[k], iters))
                    mask = mask & np.isin(vals, owned[k])
            if not mask.any():
                return 0
        return int(np.count_nonzero(mask))

    def flops_per_point(self) -> float:
        """Flop estimate per iteration point over the whole body."""
        return float(sum(sa.stmt.rhs.flops() + 1 for sa in self.stmts))

    def rank_flops(self, rank: int) -> float:
        return self.iters[rank].count() * self.flops_per_point()

    def rank_interior_flops(self, rank: int) -> float:
        """Flops of ``rank``'s ghost-independent (interior) points."""
        return self.interior_count(rank) * self.flops_per_point()


class StepPlan:
    """One rank's compiled replay recipe for a doall loop.

    Everything the interpreted executor re-derives per sweep is frozen
    here once, at plan-build time:

    * persistent gather workspaces (one buffer per read array, reused
      every sweep -- the local move plus the schedule receives overwrite
      every needed element, so no per-sweep allocation or clearing);
    * per-statement rhs closures lowered by
      :func:`~repro.lang.expr.compile_expr`: each array reference is
      pre-bound to its workspace positions (a slice view when the
      positions form a contiguous box -- the paper's stencils -- else a
      precomputed fancy gather), so replay never touches the expression
      AST or evaluates an affine index;
    * per-statement store recipes: the open-mesh box (or its slice
      form), frozen flat coordinates for non-box-decomposable writes
      (which the interpreted path re-derives every sweep), or the
      scatter TransferSchedule for remote writes;
    * the Compute labels and flop charges.

    The plan deliberately captures *arrays*, never their local blocks:
    store targets are resolved through ``array.local(rank)`` on each
    sweep, so a block swapped by redistribution can never be written
    through a stale captured buffer -- and the plan itself lives on the
    :class:`LoopAnalysis`, whose cache key embeds every array's comm
    epoch and which ``drop_plans_for_array`` purges eagerly.

    The executor in :mod:`repro.compiler.schedule` drives the plan; the
    replayed op stream (messages, marks, computes) is bit-identical to
    the interpreted path's, which the equivalence tests assert.

    **Batched plans.**  Built with ``nbatch=B``, the plan is the recipe
    for executing the loop over ``B`` independent parameter bindings at
    once (``Program.run_batch``): every workspace gains a leading batch
    axis, every frozen fetch and store selection is prefixed with
    ``slice(None)`` on that axis, and the rhs closures broadcast over it
    for free (:func:`~repro.lang.expr.compile_expr` closures are plain
    numpy ufunc chains).  The *schedules* are shared untouched with the
    single-run plan -- same sends, same receives, same tags -- so the
    wire message **count** is identical to one single-binding sweep;
    only the payload slots widen by the batch factor.  Batched store
    recipes address the batched shadow blocks the batch driver owns
    (``blocks[array.uid]``), never the live single-member arrays.
    """

    __slots__ = (
        "rank",
        "nbatch",
        "analysis",
        "shape",
        "n_points",
        "flops",
        "label",
        "label_interior",
        "label_boundary",
        "reads",
        "evals",
        "stores",
        "_split",
    )

    def __init__(self, analysis: LoopAnalysis, rank: int,
                 nbatch: int | None = None):
        self.rank = rank
        self.nbatch = nbatch
        self.analysis = analysis
        iters = analysis.iters[rank]
        self.shape = iters.shape()
        self.n_points = iters.count()
        scale = 1 if nbatch is None else nbatch
        self.flops = self.n_points * analysis.flops_per_point() * scale
        self.label = f"doall[{analysis.var_label}]"
        self.label_interior = f"{self.label}/interior"
        self.label_boundary = f"{self.label}/boundary"
        # overlap split (interior/boundary flop charges), derived lazily
        # like LoopAnalysis.interior_count -- serialized replays never ask
        self._split: tuple | None = None
        # the batch axis: batched buffers get a leading extent-B axis and
        # batched selections a slice(None) prefix; single-run plans get
        # neither, keeping their recipes byte-identical to before
        lead_shape = () if nbatch is None else (nbatch,)
        lead_sel = () if nbatch is None else (slice(None),)

        # ---- read side: persistent workspaces + send/recv recipes ------
        #: (wire kind, array, gather schedule | None, workspace | None)
        self.reads: list[tuple] = []
        bufs: dict[int, np.ndarray] = {}
        needed_of: dict[int, list[np.ndarray]] = {}
        for arr_idx, plans in enumerate(analysis.read_plans):
            plan = plans[rank]
            array = plan.array
            buf = None
            if plan.needed is not None:
                buf = np.empty(
                    lead_shape + tuple(n.size for n in plan.needed),
                    dtype=array.dtype,
                )
                bufs[id(array)] = buf
                needed_of[id(array)] = plan.needed
            self.reads.append((f"gh{arr_idx}", array, plan.transfer, buf))

        # ---- statement rhs closures ------------------------------------
        def resolve(ref):
            buf = bufs[id(ref.array)]
            needed = needed_of[id(ref.array)]
            pos = tuple(
                acc.positions_in(n, np.asarray(acc.eval_index(e, iters)))
                for n, e in zip(needed, ref.idx)
            )
            box = freeze_positions(pos)
            # batch prefix: with the advanced indices consecutive after
            # the leading slice, numpy keeps their broadcast dims in
            # place, so the fetch shape is exactly (B,) + single shape
            sel = lead_sel + (pos if box is None else box)
            return lambda: buf[sel]

        shape = lead_shape + self.shape
        #: per-statement closures producing the broadcast value box
        self.evals: list = []
        for sa in analysis.stmts:
            if self.n_points == 0:
                self.evals.append(None)
                continue
            fn = compile_expr(sa.stmt.rhs, resolve)
            dt = sa.lhs_array.dtype
            self.evals.append(
                lambda fn=fn, dt=dt: np.broadcast_to(
                    np.asarray(fn(), dtype=dt), shape
                )
            )

        # ---- statement store recipes -----------------------------------
        #: per-statement: ("box", array, locs, perm, shape) |
        #: ("flat", array, locs) | ("transfer", sched, kind) | None
        self.stores: list[tuple | None] = []
        for stmt_idx, sa in enumerate(analysis.stmts):
            wplan = analysis.write_plans[stmt_idx][rank]
            if analysis.writes_local:
                if self.n_points == 0:
                    self.stores.append(None)
                elif wplan.local_box is not None:
                    locs, perm, boxshape = wplan.local_box
                    box = freeze_positions(locs)
                    if nbatch is not None:
                        # pre-prefix the recipe so the batch driver's
                        # store is the same one-liner as the single one:
                        # transpose order shifts past the batch axis
                        perm = (0,) + tuple(ax + 1 for ax in perm)
                        boxshape = (nbatch,) + boxshape
                    self.stores.append(
                        ("box", sa.lhs_array,
                         lead_sel + (locs if box is None else box),
                         perm, boxshape)
                    )
                else:
                    # non-box-decomposable all-local write: freeze the
                    # flat coordinates the interpreted fallback
                    # (_flat_local_store) re-derives every sweep
                    self.stores.append(
                        ("flat", sa.lhs_array,
                         lead_sel + frozen_flat_store(sa, iters))
                    )
            else:
                sched = wplan.transfer
                self.stores.append(
                    None if sched is None
                    else ("transfer", sa.lhs_array, sched, f"wr{stmt_idx}")
                )

    def charges(self, overlap: bool) -> tuple:
        """(interior points, interior flops, boundary points, boundary
        flops) for the requested overlap mode; the split is derived
        lazily and memoized (serialized replays never pay for it).  A
        batched plan scales both point counts and flops by its batch
        extent -- the ensemble honestly does B members' work per
        sweep."""
        scale = 1 if self.nbatch is None else self.nbatch
        if not overlap:
            return 0, 0.0, self.n_points * scale, self.flops
        if self._split is None:
            fpp = self.analysis.flops_per_point() * scale
            interior = self.analysis.interior_count(self.rank)
            remaining = self.n_points - interior
            self._split = (
                interior * scale, interior * fpp,
                remaining * scale, remaining * fpp,
            )
        return self._split


def freeze_positions(pos) -> tuple | None:
    """Slice form of a broadcast-ready index tuple, or None.

    ``pos`` is a tuple of per-dimension position arrays as the workspace
    fetch and the box store use them.  When it denotes a box -- each
    entry varies along its own axis only, its values form a contiguous
    ascending run, and slice indexing yields the *same result shape* the
    fancy broadcast would (they differ when the indexed array has more
    dimensions than the loop nest, e.g. ``A[i, k]`` in a 1-var loop) --
    the equivalent basic (slice) indexing reads or writes the same
    elements without the per-call fancy-index gather, returning views on
    reads.  Anything else (strided runs, diagonal patterns,
    multi-variable indices) returns None and the caller keeps the
    precomputed fancy arrays.
    """
    d = len(pos)
    arrays = [np.asarray(p) for p in pos]
    fancy_shape = np.broadcast_shapes(*(p.shape for p in arrays))
    out = []
    sizes = []
    for k, p in enumerate(arrays):
        if p.ndim not in (0, d):
            return None
        if any(p.shape[ax] > 1 for ax in range(p.ndim) if ax != k):
            return None
        flat = p.reshape(-1)
        if flat.size == 0:
            return None
        if flat.size > 1 and not np.all(np.diff(flat) == 1):
            return None
        sizes.append(int(flat.size))
        out.append(slice(int(flat[0]), int(flat[-1]) + 1))
    if tuple(fancy_shape) != tuple(sizes):
        return None
    return tuple(out)


def frozen_flat_store(sa, iters: IterSet) -> tuple:
    """Frozen local flat coordinates of a non-box-decomposable lhs.

    The per-sweep fallback in the interpreted executor derives these
    from the lhs index expressions on every execution; they only depend
    on the iteration set and the (epoch-keyed) layout, so the compiled
    plan computes them once.
    """
    array = sa.lhs_array
    shape = iters.shape()
    idx_arrays = sa.lhs_index_arrays(iters)
    full_idx = [
        np.broadcast_to(np.asarray(a), shape).reshape(-1) for a in idx_arrays
    ]
    return tuple(
        np.asarray(array.dim(k).local_index(full_idx[k]), dtype=np.int64)
        for k in range(array.ndim)
    )


def freeze_box_store(array: BaseDistArray, idx_arrays, iters_shape: tuple):
    """Freeze an all-local write as an open-mesh box store.

    Returns ``(locs, perm, shape)`` -- a precomputed local-coordinate
    open mesh, the transpose order mapping the iteration box onto
    array-dimension order, and the target box shape -- or None when the
    lhs index expressions do not decompose into one independent loop
    axis per array dimension (e.g. ``A[i, i]``, or a loop variable
    absent from the lhs so distinct iterations collide); the executor
    then falls back to per-sweep flat coordinates.  The box costs
    O(extent-per-dim) memory in the cached analysis, where per-point
    coordinate arrays would cost O(iteration-points) per statement.
    """
    d = len(iters_shape)
    lists: list[np.ndarray] = []
    axes: list[int | None] = []
    seen: set[int] = set()
    for a in idx_arrays:
        a = np.asarray(a)
        if a.size == 1:
            axes.append(None)
            lists.append(a.reshape(1))
        elif a.ndim == d:
            varying = [ax for ax in range(d) if a.shape[ax] > 1]
            if (
                len(varying) != 1
                or a.shape[varying[0]] != iters_shape[varying[0]]
                or varying[0] in seen
            ):
                return None
            seen.add(varying[0])
            axes.append(varying[0])
            lists.append(a.reshape(-1))
        else:
            return None
    leftover = [ax for ax in range(d) if ax not in seen]
    if any(iters_shape[ax] > 1 for ax in leftover):
        return None  # an unconsumed iteration axis would collide writes
    perm = tuple([ax for ax in axes if ax is not None] + leftover)
    dims = local_positions(array, lists)
    return np.ix_(*dims), perm, tuple(x.size for x in dims)


def local_positions(dims_owner, lists: list[np.ndarray]) -> list[np.ndarray]:
    """Translate per-dim global index lists into local-block index lists.

    ``dims_owner`` is anything exposing ``dim(k)`` bound distributions
    (an array or a :class:`~repro.lang.dist.Distribution`); translation
    is rank-independent for every supported distribution.  The one
    shared helper for the read side, the write side, and repartition.
    """
    return [
        np.asarray(dims_owner.dim(k).local_index(g), dtype=np.int64)
        for k, g in enumerate(lists)
    ]
