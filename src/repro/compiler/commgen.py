"""Communication-set generation and the whole-loop static analysis.

:class:`LoopAnalysis` is the compile step of the paper's KF1 compiler:
from the loop alone (no execution) it derives, for every rank,

* the iteration set (strip-mining),
* the needed-element box product per read array,
* matching (src, dst) transfer sets: ``owned(src) ∩ needed(dst)``,
* the write plan: local stores plus any remote-write scatter sets.

Everything is deterministic and derivable by every rank independently,
which is why the generated sends and receives match without any runtime
negotiation -- the property the paper relies on for affine loops.

The analysis result is *frozen* into per-rank communication schedules
(:meth:`ReadPlan.freeze`): open-mesh local coordinates for every
outgoing coalesced ghost message and scatter positions for every
incoming one.  The executor in :mod:`repro.compiler.schedule` replays
these precomputed arrays on every sweep, so repeated doall executions
(the common case) pay for communication-set derivation exactly once.
"""

from __future__ import annotations

import numpy as np

from repro.compiler import access as acc
from repro.compiler.stripmine import IterSet, stripmine
from repro.lang.array import BaseDistArray
from repro.lang.doall import Doall


class ReadPlan:
    """Gather plan (and compiled communication schedule) for one array
    on one rank.

    The ``recv_from``/``send_to``/``own_overlap`` global index lists are
    the analysis result; the ``*_locs``/``*_pos`` fields are the frozen
    executor schedule derived from them once at compile time: open-mesh
    local-block coordinates for every outgoing coalesced message and
    workspace scatter positions for every incoming one, so re-executing
    the loop every sweep replays precomputed permutation arrays instead
    of re-deriving them.
    """

    __slots__ = (
        "array",
        "needed",
        "recv_from",
        "send_to",
        "own_overlap",
        "send_locs",
        "own_locs",
        "own_pos",
        "recv_pos",
    )

    def __init__(self, array: BaseDistArray):
        self.array = array
        self.needed: list[np.ndarray] | None = None
        # rank -> per-dim global index lists
        self.recv_from: dict[int, list[np.ndarray]] = {}
        self.send_to: dict[int, list[np.ndarray]] = {}
        self.own_overlap: list[np.ndarray] | None = None
        # -- frozen executor schedule (see freeze()) --------------------
        self.send_locs: dict[int, tuple] = {}
        self.own_locs: tuple | None = None
        self.own_pos: tuple | None = None
        self.recv_pos: dict[int, tuple] = {}

    def freeze(self, rank: int) -> None:
        """Compile the index lists into reusable gather/scatter arrays."""
        array = self.array
        if self.needed is not None:
            for src, lists in self.recv_from.items():
                self.recv_pos[src] = np.ix_(
                    *(acc.positions_in(n, g) for n, g in zip(self.needed, lists))
                )
            if self.own_overlap is not None:
                self.own_pos = np.ix_(
                    *(
                        acc.positions_in(n, g)
                        for n, g in zip(self.needed, self.own_overlap)
                    )
                )
        if array.grid.contains(rank):
            if self.own_overlap is not None:
                self.own_locs = np.ix_(*local_positions(array, rank, self.own_overlap))
            for dst, lists in self.send_to.items():
                self.send_locs[dst] = np.ix_(*local_positions(array, rank, lists))


class WritePlan:
    """Write plan for one statement on one rank."""

    __slots__ = ("all_local", "recv_count", "send_ranks")

    def __init__(self):
        self.all_local = True
        self.recv_count = 0
        self.send_ranks: list[int] = []


class LoopAnalysis:
    """Static analysis of one doall loop over its whole grid."""

    def __init__(self, loop: Doall):
        self.loop = loop
        self.ranks = loop.grid.linear
        self.iters: dict[int, IterSet] = stripmine(loop)
        self.stmts = [acc.StmtAccess(st) for st in loop.body]
        self.writes_local = acc.writes_are_local(loop)

        # ---- read analysis ------------------------------------------------
        read_map = acc.arrays_read(loop)
        self.read_arrays: list[BaseDistArray] = [a for a, _ in read_map.values()]
        self.read_refs: list[list] = [refs for _, refs in read_map.values()]
        # needed[arr_idx][rank] -> per-dim lists or None
        self.needed: list[dict[int, list[np.ndarray] | None]] = []
        self.read_plans: list[dict[int, ReadPlan]] = []
        for array, refs in zip(self.read_arrays, self.read_refs):
            needed = {
                r: acc.needed_lists(array, refs, self.iters[r]) for r in self.ranks
            }
            self.needed.append(needed)
            owned = {r: acc.owned_lists(array, r) for r in self.ranks}
            plans: dict[int, ReadPlan] = {}
            for me in self.ranks:
                plans[me] = ReadPlan(array)
                plans[me].needed = needed[me]
            if array.replicated:
                # Full copy everywhere: needs are satisfied locally.
                for me in self.ranks:
                    plans[me].own_overlap = needed[me]
                self.read_plans.append(plans)
                continue
            for me in self.ranks:
                plans[me].own_overlap = acc.intersect_lists(needed[me], owned[me])
                for q in self.ranks:
                    if q == me:
                        continue
                    inter = acc.intersect_lists(needed[me], owned[q])
                    if inter is not None:
                        plans[me].recv_from[q] = inter
                        plans[q].send_to[me] = inter
            self.read_plans.append(plans)

        # ---- freeze: compile plans into reusable comm schedules -----------
        for plans in self.read_plans:
            for me, plan in plans.items():
                plan.freeze(me)

        # ---- write analysis -----------------------------------------------
        # write_plans[stmt_idx][rank]
        self.write_plans: list[dict[int, WritePlan]] = []
        if self.writes_local:
            for _ in self.stmts:
                self.write_plans.append({r: WritePlan() for r in self.ranks})
        else:
            for sa in self.stmts:
                plans = {r: WritePlan() for r in self.ranks}
                # senders per destination, derived from every rank's writes
                for r in self.ranks:
                    iters = self.iters[r]
                    if iters.empty:
                        continue
                    idx_arrays = sa.lhs_index_arrays(iters)
                    owners = sa.lhs_array.owner_ranks_vec(tuple(idx_arrays))
                    owners_flat = np.unique(owners)
                    for dst in owners_flat:
                        dst = int(dst)
                        if dst == r:
                            continue
                        plans[r].all_local = False
                        plans[r].send_ranks.append(dst)
                        if dst in plans:
                            plans[dst].recv_count += 1
                self.write_plans.append(plans)

    # ------------------------------------------------------------------

    def flops_per_point(self) -> float:
        """Flop estimate per iteration point over the whole body."""
        return float(sum(sa.stmt.rhs.flops() + 1 for sa in self.stmts))

    def rank_flops(self, rank: int) -> float:
        return self.iters[rank].count() * self.flops_per_point()


def local_positions(array: BaseDistArray, rank: int, lists: list[np.ndarray]):
    """Translate per-dim global index lists into local-block index lists."""
    coords = array.grid.coords_of(rank)
    out = []
    for k, g in enumerate(lists):
        out.append(np.asarray(array.dim(k).local_index(g), dtype=np.int64))
    return out
