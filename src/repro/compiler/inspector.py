"""Runtime inspector/executor for irregular references.

When subscripts are data-dependent (indirect indexing), the static
analysis of :mod:`repro.compiler.commgen` cannot derive matching
communication sets; the paper defers to runtime gathering (its reference
[17], Crowley/Saltz et al. -- the PARTI lineage).  ``inspector_gather``
implements that two-round protocol:

1. *inspection*: every rank tells every owner which of its elements it
   needs (possibly an empty request);
2. *execution*: owners reply with the requested values.

Every rank of the grid must call this collectively.  Returns the
requested values in request order.

When the index pattern is loop-invariant across sweeps, the inspection
round can be amortized: :mod:`repro.compiler.commsched` records the
result of one inspection as a first-class gather-direction
:class:`~repro.compiler.commsched.TransferSchedule` and replays it
through :func:`~repro.compiler.commsched.execute_transfer` with a
single round of coalesced value messages.  The helpers below
(:func:`partition_requests`, :func:`local_locations`, :func:`read_local`)
are shared by both paths so the schedule replay is bit-identical to a
fresh inspection.
"""

from __future__ import annotations

import numpy as np

from repro.lang.array import BaseDistArray
from repro.lang.procs import ProcessorGrid
from repro.util.errors import ValidationError


def normalize_indices(array: BaseDistArray, indices) -> np.ndarray:
    """Validate and canonicalize a request-index array to (n, ndim) int64."""
    if indices is None:
        indices = np.empty((0, array.ndim), dtype=np.int64)
    indices = np.asarray(indices, dtype=np.int64)
    if indices.ndim != 2 or indices.shape[1] != array.ndim:
        raise ValidationError(
            f"indices must have shape (n, {array.ndim}), got {indices.shape}"
        )
    return indices


def partition_requests(
    members: list[int], array: BaseDistArray, indices: np.ndarray
) -> tuple[dict[int, np.ndarray], dict[int, np.ndarray]]:
    """Split a rank's requests by owning rank.

    Returns ``(requests, order)`` where ``requests[q]`` are the global
    index rows owned by rank ``q`` and ``order[q]`` their positions in
    the original request (the permutation that scatters q's reply back
    into the output).
    """
    if indices.shape[0]:
        owners = array.owner_ranks_vec(tuple(indices.T))
    else:
        owners = np.empty(0, dtype=np.int64)
    requests: dict[int, np.ndarray] = {}
    order: dict[int, np.ndarray] = {}
    for q in members:
        sel = np.nonzero(owners == q)[0]
        requests[q] = indices[sel]
        order[q] = sel
    return requests, order


def local_locations(array: BaseDistArray, idx: np.ndarray) -> tuple[np.ndarray, ...]:
    """Local-block coordinates of global index rows (one array per dim)."""
    return tuple(
        np.asarray(array.dim(k).local_index(idx[:, k]), dtype=np.int64)
        for k in range(array.ndim)
    )


def read_local(array: BaseDistArray, rank: int, idx: np.ndarray) -> np.ndarray:
    """Bulk-read global index rows from ``rank``'s local block."""
    return np.asarray(array.local(rank)[local_locations(array, idx)])


def inspector_gather(
    ctx,
    grid: ProcessorGrid,
    array: BaseDistArray,
    indices: np.ndarray | None,
    tag=None,
):
    """Gather arbitrary global elements of ``array`` at runtime.

    Parameters
    ----------
    ctx:
        The rank's :class:`~repro.lang.context.KaliCtx`.
    grid:
        Grid performing the collective gather (must include all owners).
    array:
        Source distributed array.
    indices:
        Integer array of shape (n, array.ndim) of global indices this
        rank wants; None or empty for no requests.

    Yields machine ops; evaluates to an ``array.dtype`` array of length n.

    The protocol itself lives in
    :func:`repro.compiler.commsched.build_gather_schedule` -- one
    implementation serves both the one-shot gather (the schedule is
    discarded here) and the cached inspector -> schedule -> executor
    pipeline, which is what guarantees cached replays are bit-identical
    to a fresh inspection.
    """
    from repro.compiler.commsched import build_gather_schedule

    _sched, out = yield from build_gather_schedule(ctx, grid, array, indices, tag=tag)
    return out


def _read_local(array: BaseDistArray, rank: int, idx: np.ndarray) -> np.ndarray:
    """Backwards-compatible alias of :func:`read_local`."""
    return read_local(array, rank, idx)
