"""Runtime inspector/executor for irregular references.

When subscripts are data-dependent (indirect indexing), the static
analysis of :mod:`repro.compiler.commgen` cannot derive matching
communication sets; the paper defers to runtime gathering (its reference
[17], Crowley/Saltz et al.).  ``inspector_gather`` implements that
two-round protocol:

1. *inspection*: every rank tells every owner which of its elements it
   needs (possibly an empty request);
2. *execution*: owners reply with the requested values.

Every rank of the grid must call this collectively.  Returns the
requested values in request order.
"""

from __future__ import annotations

import numpy as np

from repro.lang.array import BaseDistArray
from repro.lang.procs import ProcessorGrid
from repro.machine.ops import Recv, Send
from repro.util.errors import ValidationError


def inspector_gather(
    ctx,
    grid: ProcessorGrid,
    array: BaseDistArray,
    indices: np.ndarray | None,
    tag=None,
):
    """Gather arbitrary global elements of ``array`` at runtime.

    Parameters
    ----------
    ctx:
        The rank's :class:`~repro.lang.context.KaliCtx`.
    grid:
        Grid performing the collective gather (must include all owners).
    array:
        Source distributed array.
    indices:
        Integer array of shape (n, array.ndim) of global indices this
        rank wants; None or empty for no requests.

    Yields machine ops; evaluates to a float array of length n.
    """
    if not array.grid.is_subset_of(grid):
        raise ValidationError("array owners must participate in inspector_gather")
    me = ctx.rank
    if tag is None:
        tag = ctx.next_tag(grid)
    members = grid.linear

    if indices is None:
        indices = np.empty((0, array.ndim), dtype=np.int64)
    indices = np.asarray(indices, dtype=np.int64)
    if indices.ndim != 2 or indices.shape[1] != array.ndim:
        raise ValidationError(
            f"indices must have shape (n, {array.ndim}), got {indices.shape}"
        )

    # --- round 1: send requests to owners -------------------------------
    if indices.shape[0]:
        owners = array.owner_ranks_vec(tuple(indices.T))
    else:
        owners = np.empty(0, dtype=np.int64)
    requests: dict[int, np.ndarray] = {}
    order: dict[int, np.ndarray] = {}
    for q in members:
        sel = np.nonzero(owners == q)[0]
        requests[q] = indices[sel]
        order[q] = sel
    for q in members:
        if q == me:
            continue
        yield Send(q, requests[q], tag=(tag, "req", me))

    # --- round 1b: receive all requests ---------------------------------
    incoming: dict[int, np.ndarray] = {}
    for q in members:
        if q == me:
            incoming[q] = requests[me]
            continue
        incoming[q] = yield Recv(src=q, tag=(tag, "req", q))

    # --- round 2: reply with values -------------------------------------
    i_own = array.grid.contains(me)
    for q in members:
        req = incoming[q]
        if q == me:
            continue
        if req.shape[0] and not i_own:
            raise ValidationError(f"rank {me} asked for data it does not own")
        values = _read_local(array, me, req) if req.shape[0] else np.empty(0)
        yield Send(q, values, tag=(tag, "rep", me))

    out = np.empty(indices.shape[0], dtype=array.dtype)
    for q in members:
        if q == me:
            if requests[me].shape[0]:
                out[order[me]] = _read_local(array, me, requests[me])
            continue
        values = yield Recv(src=q, tag=(tag, "rep", q))
        if order[q].size:
            out[order[q]] = values
    return out


def _read_local(array: BaseDistArray, rank: int, idx: np.ndarray) -> np.ndarray:
    block = array.local(rank)
    locs = tuple(
        np.asarray(array.dim(k).local_index(idx[:, k]), dtype=np.int64)
        for k in range(array.ndim)
    )
    return np.asarray(block[locs])
