"""The bidirectional TransferSchedule subsystem: cached communication
schedules for gathers, scatters, and repartitions.

The inspector/executor protocol of :mod:`repro.compiler.inspector` pays
for *two* message rounds on every call: one to tell the owners what is
needed, one for the owners to reply.  When the index pattern is
loop-invariant across ``doall`` sweeps -- the common case for irregular
solvers and the exact amortization the PARTI lineage exploits -- the
first round only ever needs to run once.  PR 1 turned the *read* side of
that observation into a first-class object; this module generalizes it
into one bidirectional abstraction used by every communication layer:

* :class:`TransferSchedule` -- one rank's compiled share of a collective
  data transfer.  A schedule is a set of precomputed *moves*: outgoing
  coalesced messages (peer + source-side index arrays), incoming ones
  (peer + destination-side index arrays), and an optional local move.
  The ``direction`` field says how the index arrays are interpreted:

  - ``"gather"``: sources are local-block coordinates on the owners,
    destinations are positions in the requester's output vector;
  - ``"scatter"``: sources are positions in the writer's flat value
    vector, destinations are local-block coordinates on the owners
    (the write side of a doall loop, see :mod:`repro.compiler.commgen`);
  - ``"repartition"``: sources are old-layout local-block boxes,
    destinations are new-layout local-block boxes (the owner-to-owner
    relayout behind ``DistArray.redistribute``);

* :func:`execute_transfer` -- the one vectorized executor all three
  directions replay through: post the precomputed coalesced sends, do
  the local move, scatter incoming messages through the precomputed
  index arrays.  No request round, no index lists on the wire.  Its two
  wire halves, :func:`transfer_sends` and :func:`transfer_recvs`, are
  exposed separately so an overlap-aware caller (the doall executor in
  :mod:`repro.compiler.schedule`) can interleave local computation
  between posting the sends and draining the receives;

* :func:`build_gather_schedule` -- the one-time inspection phase for
  gathers.  It runs the same two-round protocol as ``inspector_gather``
  (so the build sweep costs no more than an uncached sweep) while
  recording the schedule, and returns ``(schedule, values)``;

* :func:`build_repartition_schedule` -- the static builder for
  repartitions.  Owner-to-owner moves are fully derivable from the two
  layouts (no inspection round at all): each rank sends only the
  intersections of its old block with the new owners' blocks;

* :class:`ScheduleCache` -- a keyed store of transfer schedules with
  per-direction hit/miss accounting.  Gather schedules key on array
  identity + distribution epoch + index-pattern fingerprint; repartition
  schedules key on the (from-layout, to-layout) spec pair -- *not* the
  epoch -- so repeated layout flips (ADI's row/column sweeps) replay the
  same schedules forever.

Cached transfers are **collective**: every rank of the grid must call
them, and all ranks must keep or change their patterns together (SPMD
discipline).  If ranks diverge -- some replaying, some rebuilding -- the
simulator detects the mismatched protocols (deadlock or unconsumed
messages) rather than computing wrong answers silently.

Replays are announced to the trace with ``Mark("commsched/hit")`` /
``Mark("commsched/miss")`` events whose payload leads with the transfer
direction; see :meth:`repro.machine.trace.Trace.schedule_counts` for
per-direction reuse reporting.
"""

from __future__ import annotations

import hashlib
import itertools
import threading
from collections import OrderedDict

import numpy as np

from repro.compiler.inspector import (
    local_locations,
    normalize_indices,
    partition_requests,
)
from repro.lang.array import BaseDistArray
from repro.lang.procs import ProcessorGrid
from repro.machine.ops import Barrier, Mark, Recv, Send, frozen_by_value
from repro.util.errors import ValidationError

#: Transfer directions understood by the subsystem.
DIRECTIONS = ("gather", "scatter", "repartition")


def _mark(ctx, label: str, payload: tuple):
    """Yield a schedule Mark, or aggregate it in cheap-marks mode.

    Contexts running with ``marks="cheap"`` (steady-state replay) count
    the event on the context instead of constructing a per-op
    :class:`~repro.machine.ops.Mark`; the Session folds the counters
    into ``Trace.mark_counts`` after the run, so
    :meth:`~repro.machine.trace.Trace.schedule_counts` and the hit-rate
    reporting see identical numbers either way.
    """
    if getattr(ctx, "marks", "full") == "cheap":
        ctx.count_mark(label, payload[0])
        return
    yield Mark(label, payload=payload)


def index_fingerprint(indices: np.ndarray) -> str:
    """Stable fingerprint of an index pattern (shape + contents)."""
    h = hashlib.sha1()
    h.update(repr(indices.shape).encode())
    h.update(np.ascontiguousarray(indices, dtype=np.int64).tobytes())
    return h.hexdigest()


def schedule_key(
    grid: ProcessorGrid, array: BaseDistArray, indices: np.ndarray, rank: int,
    fingerprint: str | None = None,
) -> tuple:
    """Cache key of one rank's share of a collective gather.

    Keyed on the array's identity *and* its ``comm_epoch`` so that
    redistribution (which bumps the epoch) orphans every schedule built
    against the old layout.  The rank is part of the key because two
    ranks with identical request patterns still play different roles as
    senders.  Pass ``fingerprint`` when the caller already hashed the
    index pattern -- the fingerprint walks the whole index array, so a
    replay must pay for it exactly once per call, not once per use.
    """
    return (
        "gather",
        array.uid,
        array.comm_epoch,
        grid.key(),
        rank,
        fingerprint if fingerprint is not None else index_fingerprint(indices),
    )


def repartition_key(
    array: BaseDistArray, new_dist, rank: int,
    new_grid: ProcessorGrid | None = None,
) -> tuple:
    """Cache key of one rank's share of a collective repartition.

    Deliberately keyed on the *(from-layout, to-layout)* pair -- source
    grid + specs, destination grid + specs -- instead of the comm epoch:
    a repartition schedule describes a layout transition, so it stays
    valid every time the array is again in the ``from`` layout -- which
    is exactly what makes repeated layout flips (block -> cyclic ->
    block -> ...) and repeated grid morphs (shrink -> grow -> shrink)
    pure cache hits.  ``new_grid`` defaults to the array's own grid
    (the classic same-grid relayout).
    """
    to_grid = new_grid if new_grid is not None else array.grid
    return (
        "repartition",
        array.uid,
        array.grid.key(),
        array.dist.spec_key(),
        to_grid.key(),
        new_dist.spec_key(),
        rank,
    )


class TransferSchedule:
    """One rank's compiled communication schedule for a collective
    transfer (gather, scatter, or repartition).

    ``sends`` pairs a destination rank with *source-side* index arrays
    (what to read before sending); ``recvs`` pairs a source rank with
    *destination-side* index arrays (where to store the incoming
    values); ``self_src``/``self_dst`` describe the message-free local
    move.  :func:`execute_transfer` replays any direction against
    caller-supplied ``read``/``write`` functions.

    The doall compiler freezes one gather-direction schedule per read
    array (``ReadPlan.transfer``) and one scatter-direction schedule per
    statement with remote writes (``WritePlan.transfer``), so every byte
    a doall moves -- reads, writes, and redistributions alike -- replays
    through the same object and executor.

    **Immutability contract.**  A schedule is mutable only while its
    builder assembles it; once published (stored in a
    :class:`ScheduleCache`, frozen onto a plan, or returned from a
    builder) every field is read-only forever.  Replay never writes to
    the schedule -- it reads the frozen index arrays and writes only
    caller-owned buffers -- which is exactly what lets one schedule
    object be replayed concurrently from many serving threads
    (:mod:`repro.serve`) with no per-schedule lock.  Code that wants a
    different schedule must build a new one, never edit a published one.

    >>> s = TransferSchedule("scatter", rank=1)
    >>> s.sends.append((0, [0, 1]))       # send value-vector picks 0,1 to rank 0
    >>> s.replay_message_count()
    1
    >>> TransferSchedule("sideways")
    Traceback (most recent call last):
        ...
    repro.util.errors.ValidationError: unknown transfer direction 'sideways'
    """

    __slots__ = (
        "direction",
        "key",
        "group",
        "uid_chain",
        "rank",
        "grid",
        "to_grid",
        "n_out",
        "epoch",
        "fingerprint",
        "from_spec",
        "to_spec",
        "self_src",
        "self_dst",
        "sends",
        "recvs",
    )

    def __init__(self, direction: str, key=None, rank: int = -1, grid=None,
                 n_out: int = 0, epoch: int | None = None, fingerprint: str = "",
                 group=None, uid_chain=(), from_spec=None, to_spec=None,
                 to_grid=None):
        if direction not in DIRECTIONS:
            raise ValidationError(f"unknown transfer direction {direction!r}")
        self.direction = direction
        self.key = key
        #: identity of the collective build this schedule came from; all
        #: ranks of one build share it (the build tag is SPMD-identical),
        #: which lets the cache evict a collective's entries atomically.
        self.group = group
        #: uids of the array and, for sections, every base beneath it --
        #: so invalidating a base array also reaches section schedules.
        self.uid_chain = uid_chain
        self.rank = rank
        self.grid = grid
        self.n_out = n_out
        #: comm epoch the schedule was built against; None for epoch-
        #: independent schedules (repartitions pin layouts via specs).
        self.epoch = epoch
        self.fingerprint = fingerprint
        #: layout transition (repartition only): Distribution spec keys.
        self.from_spec = from_spec
        self.to_spec = to_spec
        #: destination grid of an inter-grid repartition; None means the
        #: transfer stays on ``grid`` (gathers, scatters, same-grid
        #: repartitions).
        self.to_grid = to_grid
        #: local move: source-side and destination-side index arrays.
        self.self_src = None
        self.self_dst = None
        #: (dst rank, source-side index arrays) per outgoing message.
        self.sends: list[tuple[int, object]] = []
        #: (src rank, destination-side index arrays) per incoming message.
        self.recvs: list[tuple[int, object]] = []

    def replay_message_count(self) -> int:
        """Messages this rank sends+receives per replay sweep."""
        return len(self.sends) + len(self.recvs)

    def check_replayable(self, array: BaseDistArray) -> None:
        """Refuse to replay against an array whose layout moved on."""
        if self.epoch is not None and self.epoch != array.comm_epoch:
            raise ValidationError(
                f"stale {self.direction} schedule: the array was "
                f"redistributed (schedule epoch {self.epoch}, array epoch "
                f"{array.comm_epoch}); rebuild via the builder or a "
                "ScheduleCache"
            )
        if self.from_spec is not None and getattr(array, "dist", None) is not None \
                and array.dist.spec_key() != self.from_spec:
            raise ValidationError(
                f"stale {self.direction} schedule: the array is no longer "
                f"in the schedule's source layout {self.from_spec!r}"
            )
        if self.direction == "repartition" and self.grid is not None \
                and array.grid.key() != self.grid.key():
            raise ValidationError(
                f"stale {self.direction} schedule: the array moved to a "
                f"different grid (schedule source grid {self.grid.key()}, "
                f"array grid {array.grid.key()}); rebuild via the builder "
                "or a ScheduleCache"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TransferSchedule({self.direction}, rank={self.rank}, "
            f"n_out={self.n_out}, sends={len(self.sends)}, "
            f"recvs={len(self.recvs)})"
        )


#: Backwards-compatible name: PR 1's gather schedule is a
#: direction="gather" TransferSchedule.
GatherSchedule = TransferSchedule


def freeze_payload(values) -> np.ndarray:
    """Make a message payload by-value without a simulator-side copy.

    Schedule replays build every outgoing payload fresh (a fancy-index
    read of the source block or value vector), so the simulator's
    send-time deep copy -- there to give mutable ad-hoc payloads
    by-value semantics -- is pure waste on the hot path.  Freezing the
    array (``writeable=False``) marks it as already-by-value: the
    simulator ships it as-is.  A payload that is already by-value --
    frozen and owning, or a read-only view whose whole base chain is
    frozen (:func:`repro.machine.ops.frozen_by_value`), e.g. a slice of
    a frozen value vector -- passes through untouched, so replaying a
    schedule against frozen inputs never degenerates into a per-sweep
    copy.  Anything else that is not a fresh owning writable array (a
    live view, shared storage) is copied first, so copy-in semantics
    can never be broken by a read callable that hands out live storage.
    """
    values = np.asarray(values)
    if frozen_by_value(values):
        return values
    if values.base is not None or not values.flags.owndata \
            or not values.flags.writeable:
        values = values.copy()
    values.flags.writeable = False
    return values


def transfer_sends(ctx, sched: TransferSchedule, read, tag=None, kind: str = "val"):
    """First wire half of a transfer: post the precomputed coalesced sends.

    ``read(idx)`` must return the values at source-side index arrays
    ``idx``.  Payloads are frozen (:func:`freeze_payload`), so the
    simulator skips its send-time snapshot copy.  Sends are asynchronous
    machine ops: the sender pays only its injection overhead, so a
    caller may keep computing while the messages are in flight (see
    :func:`execute_transfer` for the composed serialized path).
    """
    me = ctx.rank
    for dst, src_idx in sched.sends:
        yield Send(dst, freeze_payload(read(src_idx)), tag=(tag, kind, me))


def transfer_local_move(sched: TransferSchedule, read, write) -> None:
    """Perform the schedule's message-free local move (if any)."""
    if sched.self_src is not None:
        write(sched.self_dst, read(sched.self_src))


def transfer_recvs(ctx, sched: TransferSchedule, write, tag=None, kind: str = "val"):
    """Second wire half of a transfer: drain the precomputed receives.

    ``write(idx, values)`` must store values at destination-side index
    arrays.  Blocks (in simulated time) until each expected message has
    arrived; messages are consumed in schedule order.
    """
    for src, dst_idx in sched.recvs:
        values = yield Recv(src=src, tag=(tag, kind, src))
        write(dst_idx, values)


def execute_transfer(ctx, sched: TransferSchedule, read, write,
                     tag=None, kind: str = "val"):
    """Replay any transfer schedule through ``read``/``write`` callables.

    ``read(idx)`` must return the values at source-side index arrays
    ``idx``; ``write(idx, values)`` must store values at destination-side
    index arrays.  The executor posts all precomputed coalesced sends
    (:func:`transfer_sends`), performs the local move, then consumes
    incoming messages in schedule order (:func:`transfer_recvs`).
    Collective over the schedule's peer set; yields machine ops.

    A schedule whose moves are all local yields no ops at all:

    >>> import numpy as np
    >>> from types import SimpleNamespace
    >>> sched = TransferSchedule("gather", rank=0)
    >>> sched.self_src = np.array([2, 0])   # read source positions 2, 0 ...
    >>> sched.self_dst = np.array([0, 1])   # ... into output positions 0, 1
    >>> src = np.array([10.0, 20.0, 30.0])
    >>> out = np.zeros(2)
    >>> list(execute_transfer(SimpleNamespace(rank=0), sched,
    ...                       src.__getitem__, out.__setitem__))
    []
    >>> out
    array([30., 10.])
    """
    yield from transfer_sends(ctx, sched, read, tag=tag, kind=kind)
    transfer_local_move(sched, read, write)
    yield from transfer_recvs(ctx, sched, write, tag=tag, kind=kind)


# ----------------------------------------------------------------------
# Gather direction: inspector -> schedule -> executor
# ----------------------------------------------------------------------


def build_gather_schedule(
    ctx,
    grid: ProcessorGrid,
    array: BaseDistArray,
    indices: np.ndarray | None,
    tag=None,
    fingerprint: str | None = None,
):
    """One-time inspection: build this rank's gather TransferSchedule.

    Runs the same collective two-round protocol as ``inspector_gather``
    (every rank must call this), recording who-needs-what-from-whom.
    Yields machine ops; evaluates to ``(schedule, values)`` where
    ``values`` are the gathered elements of this first sweep -- so the
    build doubles as an uncached gather and costs no extra messages.
    ``fingerprint`` lets a caller that already hashed ``indices`` (the
    cache probe) pass the digest down instead of recomputing it; it is
    stored on the schedule, which replays key off it from then on.
    """
    if not array.grid.is_subset_of(grid):
        raise ValidationError("array owners must participate in a gather schedule")
    me = ctx.rank
    if tag is None:
        tag = ctx.next_tag(grid)
    members = grid.linear

    indices = normalize_indices(array, indices)
    if fingerprint is None:
        fingerprint = index_fingerprint(indices)
    sched = TransferSchedule(
        "gather",
        key=schedule_key(grid, array, indices, me, fingerprint=fingerprint),
        rank=me,
        grid=grid,
        n_out=indices.shape[0],
        epoch=array.comm_epoch,
        fingerprint=fingerprint,
        # the run id disambiguates builds from different launches, whose
        # per-grid tag counters restart and would otherwise collide
        group=(array.uid, array.comm_epoch, grid.key(),
               getattr(ctx, "run_id", None), tag),
        uid_chain=uid_chain(array),
    )

    # --- round 1: send requests to owners -------------------------------
    requests, order = partition_requests(members, array, indices)
    for q in members:
        if q == me:
            continue
        yield Send(q, requests[q], tag=(tag, "req", me))

    # --- round 1b: receive all requests, record the send schedule -------
    incoming: dict[int, np.ndarray] = {}
    for q in members:
        if q == me:
            incoming[q] = requests[me]
            continue
        incoming[q] = yield Recv(src=q, tag=(tag, "req", q))

    i_own = array.grid.contains(me)
    for q in members:
        req = incoming[q]
        if q == me:
            continue
        if req.shape[0] and not i_own:
            raise ValidationError(
                f"rank {q} requested elements of {array.name!r} from "
                f"rank {me}, which owns no part of it"
            )
        if req.shape[0]:
            locs = local_locations(array, req)
            sched.sends.append((q, locs))
            values = np.asarray(array.local(me)[locs])
        else:
            values = np.empty(0, dtype=array.dtype)
        yield Send(q, values, tag=(tag, "rep", me))

    # --- round 2: receive replies, record the permutation arrays --------
    out = np.empty(indices.shape[0], dtype=array.dtype)
    if requests[me].shape[0]:
        sched.self_src = local_locations(array, requests[me])
        sched.self_dst = order[me]
        out[sched.self_dst] = np.asarray(array.local(me)[sched.self_src])
    for q in members:
        if q == me:
            continue
        values = yield Recv(src=q, tag=(tag, "rep", q))
        if order[q].size:
            sched.recvs.append((q, order[q]))
            out[order[q]] = values
    return sched, out


def uid_chain(array: BaseDistArray) -> tuple:
    """uids of ``array`` and every base beneath it (section chains)."""
    chain = []
    a = array
    while a is not None:
        chain.append(a.uid)
        a = getattr(a, "base", None)
    return tuple(chain)


def execute_gather(ctx, sched: TransferSchedule, array: BaseDistArray, tag=None):
    """Replay a gather schedule against the array's *current* values.

    The fast path: owners bulk-gather their precomputed local locations
    (one vectorized fancy-index read and one coalesced message per
    requester) and requesters scatter replies through the precomputed
    permutation arrays.  No request round.  Collective over the grid the
    schedule was built on.  Yields machine ops; evaluates to the same
    values a fresh ``inspector_gather`` with the original indices would
    return.
    """
    sched.check_replayable(array)
    me = ctx.rank
    if me != sched.rank:
        raise ValidationError(
            f"rank {me} replaying a schedule built for rank {sched.rank}"
        )
    if tag is None:
        tag = ctx.next_tag(sched.grid)

    out = np.empty(sched.n_out, dtype=array.dtype)
    yield from execute_transfer(
        ctx,
        sched,
        read=lambda locs: np.asarray(array.local(me)[locs]),
        write=out.__setitem__,
        tag=tag,
    )
    return out


# ----------------------------------------------------------------------
# Repartition direction: owner-to-owner relayout
# ----------------------------------------------------------------------


def _check_repartitionable(array) -> None:
    """Repartition needs a whole DistArray: a layout of its own plus the
    staging/commit hooks.  Sections inherit their base array's layout --
    redistribute the base and take a fresh slice instead."""
    if getattr(array, "dist", None) is None or not hasattr(array, "_stage_repartition"):
        raise ValidationError(
            f"cannot repartition {array.name!r}: only whole DistArrays "
            "carry a redistributable layout (redistribute the base array "
            "and re-slice any sections of it)"
        )


def repartition_pieces(array, new_dist, rank: int | None = None, new_grid=None):
    """Owner-to-owner moves realizing a relayout of ``array``.

    Yields ``(src, dst, src_locs, dst_locs)`` tuples: the values at
    old-layout local box ``src_locs`` of rank ``src`` land at new-layout
    local box ``dst_locs`` of rank ``dst``.  The moves partition the
    whole array (every element moves exactly once per destination), so
    no global materialization is ever needed -- each rank sends only the
    intersections of its old block with the new owners' blocks.

    When ``rank`` is given, only the pieces involving that rank (as
    source or destination) are derived and yielded -- the per-rank
    schedule build needs O(P) intersections, not the full P^2
    enumeration the host-side relayout uses.

    ``new_grid`` makes the relayout *inter-grid*: sources are the ranks
    of ``array.grid``, destinations the ranks of ``new_grid`` -- the
    rank sets may grow, shrink, or be disjoint.  A rank in only one of
    the two grids plays only that side's role.  Defaults to the array's
    own grid (the classic same-grid relayout).

    Because per-dimension ownership is independent, every intersection
    is a box product of per-dimension index-list intersections -- the
    same machinery the doall read analysis uses.
    """
    from repro.compiler.access import intersect_lists
    from repro.compiler.commgen import local_positions

    grid = array.grid
    to_grid = new_grid if new_grid is not None else grid
    old = array.dist
    src_ranks = grid.linear
    dst_ranks = to_grid.linear

    owned_cache: dict[tuple, list] = {}

    def owned(dist, g, r):
        key = (id(dist), id(g), r)
        if key not in owned_cache:
            owned_cache[key] = dist.owned_lists(g.coords_of(r))
        return owned_cache[key]

    def locs(dist, lists):
        return np.ix_(*local_positions(dist, lists))

    if old.replicated:
        # every rank of the old grid already stores the full array: a
        # destination that is also a source re-slices locally; a
        # destination new to the array is fed by one canonical source
        # (the first old rank), so each element still moves exactly
        # once per destination
        for dst in dst_ranks:
            src = dst if grid.contains(dst) else src_ranks[0]
            if rank is not None and rank not in (src, dst):
                continue
            box = owned(new_dist, to_grid, dst)
            yield src, dst, locs(old, box), locs(new_dist, box)
        return

    if rank is None:
        pairs = ((src, dst) for dst in dst_ranks for src in src_ranks)
    else:
        recv_side = (
            ((src, rank) for src in src_ranks) if to_grid.contains(rank) else ()
        )
        send_side = (
            ((rank, dst) for dst in dst_ranks if dst != rank or not to_grid.contains(rank))
            if grid.contains(rank) else ()
        )
        pairs = itertools.chain(recv_side, send_side)
    for src, dst in pairs:
        inter = intersect_lists(
            owned(new_dist, to_grid, dst), owned(old, grid, src)
        )
        if inter is None:
            continue
        yield src, dst, locs(old, inter), locs(new_dist, inter)


def build_repartition_schedule(
    array, new_dist, rank: int, group=None, new_grid=None,
) -> TransferSchedule:
    """Build one rank's repartition TransferSchedule (static, no messages).

    Unlike gathers, repartitions need no inspection round: both layouts
    are globally known, so every rank derives its own sends, receives,
    and local move deterministically.  Build and replay therefore have
    identical wire behavior -- caching saves the derivation work, not a
    protocol round.  ``new_grid`` builds the inter-grid form: ``rank``
    may belong to either grid (or both) and gets only that side's moves.
    """
    _check_repartitionable(array)
    to_grid = new_grid if new_grid is not None else array.grid
    sched = TransferSchedule(
        "repartition",
        key=repartition_key(array, new_dist, rank, new_grid=to_grid),
        rank=rank,
        grid=array.grid,
        to_grid=to_grid,
        epoch=None,
        from_spec=array.dist.spec_key(),
        to_spec=new_dist.spec_key(),
        group=group,
        uid_chain=uid_chain(array),
    )
    pieces = repartition_pieces(array, new_dist, rank=rank, new_grid=to_grid)
    for src, dst, src_locs, dst_locs in pieces:
        if src == rank and dst == rank:
            sched.self_src = src_locs
            sched.self_dst = dst_locs
        elif src == rank:
            sched.sends.append((dst, src_locs))
        elif dst == rank:
            sched.recvs.append((src, dst_locs))
    return sched


def _no_write(idx, values):  # pragma: no cover - guarded by piece derivation
    raise ValidationError(
        "repartition schedule delivered values to a rank outside the "
        "destination grid"
    )


def execute_repartition(ctx, array, sched: TransferSchedule, new_dist, tag=None,
                        new_grid=None):
    """Collective executor of one rank's share of a repartition.

    Sends this rank's old-block intersections (snapshotted by the Send
    op), assembles the rank's new-layout block from the local move and
    incoming messages, then commits the relayout through the array's
    staging protocol: the layout swap (and the comm-epoch bump that
    invalidates gather schedules and doall plans) happens exactly once,
    after a commit barrier guarantees every rank has finished reading
    its old block.

    With ``new_grid`` the repartition is inter-grid: ranks of the old
    grid read and send, ranks of the new grid allocate and stage
    new-layout blocks, and the commit barrier spans the *union* of the
    two rank sets -- every rank of either grid must call this.
    """
    sched.check_replayable(array)
    me = ctx.rank
    to_grid = new_grid if new_grid is not None else array.grid
    union = array.grid.union(to_grid)
    if tag is None:
        tag = ctx.next_tag(union)
    old_block = array.local(me) if array.grid.contains(me) else None
    if to_grid.contains(me):
        coords = to_grid.coords_of(me)
        new_block = np.zeros(new_dist.local_shape(coords), dtype=array.dtype)
        write = new_block.__setitem__
    else:
        new_block = None
        write = _no_write

    yield from execute_transfer(
        ctx,
        sched,
        read=lambda locs: np.ascontiguousarray(old_block[locs]),
        write=write,
        tag=tag,
    )

    # the staging token identifies this collective call: the run id
    # guards against tag reuse across launches, the tag against a rank
    # racing into the next repartition before slower ranks commit this one
    token = (getattr(ctx, "run_id", None), tag)
    if new_block is not None:
        array._stage_repartition(me, new_block, token)
    yield Barrier(group=tuple(union.linear), tag=(tag, "commit"))
    array._commit_repartition(new_dist, token, new_grid=to_grid)


# ----------------------------------------------------------------------
# Cache
# ----------------------------------------------------------------------


class _CallDecision:
    """Shared hit/miss verdict for one collective gather call.

    Simulated ranks reach the same collective call at different event
    times while sharing one cache object, so per-rank lookups against
    live cache state can disagree (an eviction or store between two
    ranks' lookups would make one replay while the other rebuilds -- a
    protocol mismatch).  The first rank to arrive fixes the verdict for
    everyone; schedules evicted while a hit verdict is outstanding are
    retained here until every rank has consumed it.

    Repartitions need no decision: their build and replay paths have
    identical wire behavior, so mixed hit/miss across ranks is harmless.
    """

    __slots__ = ("kind", "group", "retained", "consumed", "expect")

    def __init__(self, kind: str, group, expect: int):
        self.kind = kind  # "hit" | "miss"
        self.group = group
        self.retained: dict[int, TransferSchedule] = {}
        self.consumed = 0
        self.expect = expect


class ScheduleCache:
    """Keyed store of transfer schedules with per-direction accounting.

    One cache is shared by all simulated ranks (the schedules themselves
    are per-rank; the key includes the rank).  Beyond ``max_entries``
    the least-recently-used entries are evicted -- in whole
    per-collective *groups* (every rank's schedule from one build goes
    together), never one rank at a time.  Whether a given collective
    gather call replays or rebuilds is decided once, by the first rank
    to reach the call, and applied to every rank of that call (see
    :class:`_CallDecision`), so cache mutations between two ranks'
    lookups can never split a collective into mixed replay/rebuild.
    Stale gather entries from redistributed arrays simply never hit
    again because their key embeds the comm epoch; repartition entries
    key on the layout-spec pair instead and survive redistribution by
    design (that is their reuse story).

    The cache is also **thread-safe**, so one instance can be shared by
    many Sessions serving concurrent runs (:mod:`repro.serve`).  All
    bookkeeping -- probes, verdicts, counters, LRU touches, stores,
    evictions -- happens under one re-entrant lock, and the lock is
    never held across a ``yield``: replay and build run unlocked, which
    is sound because a stored :class:`TransferSchedule` is *immutable*
    -- its index arrays, peer lists, and local move are frozen at build
    time and never mutated afterwards, so any number of threads may
    replay one schedule object concurrently (each replay reads the
    schedule and writes only caller-owned buffers).  Do not mutate a
    schedule after :meth:`store`; rebuild instead.  Per-call verdicts
    are scoped by run id (concurrent runs interleave their collective
    calls, so the single "current run" slot of the single-threaded
    design would thrash); finished or aborted runs' verdicts are pruned
    LRU-style once :data:`MAX_RUN_SCOPES` distinct runs have been seen.

    >>> cache = ScheduleCache(max_entries=4)
    >>> cache.stats()
    {'entries': 0, 'hits': 0, 'misses': 0, 'evictions': 0}
    >>> cache.direction_stats()
    {}
    >>> ScheduleCache(max_entries=0)
    Traceback (most recent call last):
        ...
    repro.util.errors.ValidationError: ScheduleCache needs max_entries >= 1
    """

    #: distinct run ids whose call verdicts are kept live; beyond this
    #: the least-recently-seen run's verdicts are pruned (an aborted
    #: run's leftovers must not accumulate forever, and a finished
    #: run's tags can never be probed again)
    MAX_RUN_SCOPES = 64

    #: evicted-group tombstones kept live; a tombstone only matters
    #: while its collective's build is still in flight, so an LRU bound
    #: far above any realistic rank count is safe
    MAX_TOMBSTONES = 4096

    def __init__(self, max_entries: int = 256):
        if max_entries <= 0:
            raise ValidationError("ScheduleCache needs max_entries >= 1")
        self.max_entries = max_entries
        # guards every mutable field below; re-entrant so locked paths
        # may call locked helpers (store -> eviction).  Never held
        # across a yield: builds and replays run unlocked against
        # immutable schedules.
        self._lock = threading.RLock()
        self._entries: dict[tuple, TransferSchedule] = {}
        # group id -> keys of that collective build, LRU-ordered by the
        # group's most recent touch (hits refresh the whole group)
        self._groups: OrderedDict[tuple, set] = OrderedDict()
        # open per-call verdicts, keyed by (run id, (array uid, epoch,
        # call tag)): per-grid tag counters restart every run, so a
        # verdict left behind by an aborted run must not be matched by
        # a later run's identical tags -- and concurrent runs must each
        # see their own verdicts, not trample a shared slot
        self._decisions: dict[tuple, _CallDecision] = {}
        # run ids seen by _decide, LRU-ordered; pruning one drops its
        # leftover verdicts (see MAX_RUN_SCOPES)
        self._run_scopes: OrderedDict = OrderedDict()
        # groups evicted while their build might still be in flight: a
        # straggler rank's late store must not re-create the group with
        # a subset of its ranks (a later identical call would then split
        # into hit-on-some / miss-on-others).  LRU-bounded; group ids
        # embed run id + tag, so stale tombstones can never match a new
        # build.
        self._tombstones: OrderedDict = OrderedDict()
        # array uid -> comm epoch this cache last purged stale entries
        # for (repartition runs the purge once per collective)
        self._purged_epochs: dict[int, int] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: per-direction hit/miss counters, e.g. ``{"gather": {"hits": 3,
        #: "misses": 1}}``
        self.by_direction: dict[str, dict[str, int]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def _count(self, direction: str, outcome: str) -> None:
        d = self.by_direction.setdefault(direction, {"hits": 0, "misses": 0})
        d[outcome] += 1

    def store(self, sched: TransferSchedule) -> None:
        with self._lock:
            if sched.group in self._tombstones:
                return  # group already evicted; a partial re-insert diverges
            old = self._entries.get(sched.key)
            if old is not None:
                self._discard_from_group(old)
            self._entries[sched.key] = sched
            self._groups.setdefault(sched.group, set()).add(sched.key)
            self._groups.move_to_end(sched.group)
            while len(self._entries) > self.max_entries:
                # never evict the collective currently being stored: its
                # remaining ranks have yet to add their entries, and a
                # half-present group is exactly the divergence hazard
                victim = next(
                    (g for g in self._groups if g != sched.group), None
                )
                if victim is None:
                    break  # one in-flight collective larger than the cache
                self._evict_group(victim)

    def _evict_group(self, group) -> None:
        self._tombstones[group] = None
        self._tombstones.move_to_end(group)
        while len(self._tombstones) > self.MAX_TOMBSTONES:
            self._tombstones.popitem(last=False)
        for k in self._groups.pop(group):
            sched = self._entries.pop(k)
            self.evictions += 1
            # ranks that have not yet consumed an outstanding hit
            # verdict on this group still need their schedule
            for decision in self._decisions.values():
                if decision.kind == "hit" and decision.group == group:
                    decision.retained[sched.rank] = sched

    def _discard_from_group(self, sched: TransferSchedule) -> None:
        members = self._groups.get(sched.group)
        if members is not None:
            members.discard(sched.key)
            if not members:
                del self._groups[sched.group]

    def invalidate_array(self, array: BaseDistArray) -> int:
        """Drop every layout-dependent schedule built for ``array`` --
        including schedules built on sections of it -- and return the
        count.  Repartition schedules are layout *transitions* keyed on
        their spec pair, not on the live layout, so they survive: they
        are exactly what makes the next flip back a cache hit.
        """
        with self._lock:
            doomed = [
                k for k, s in self._entries.items()
                if array.uid in s.uid_chain and s.direction != "repartition"
            ]
            for k in doomed:
                self._discard_from_group(self._entries.pop(k))
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._groups.clear()
            self._decisions.clear()
            self._run_scopes.clear()
            self._tombstones.clear()
            self._purged_epochs.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.by_direction = {}

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def direction_stats(self) -> dict[str, dict[str, int]]:
        """Per-direction hit/miss counters (directions seen so far)."""
        with self._lock:
            return {d: dict(v) for d, v in self.by_direction.items()}

    # ------------------------------------------------------------------

    def _touch_run(self, run_id) -> None:
        """Mark ``run_id`` live; prune the oldest runs' leftover verdicts.

        Verdicts are normally deleted when every rank consumes them; a
        run that errors out mid-collective leaks its open ones.  The
        single-threaded design cleared everything whenever the run id
        changed, which breaks once concurrent runs interleave -- so
        scopes age out LRU-style instead.
        """
        scopes = self._run_scopes
        scopes[run_id] = None
        scopes.move_to_end(run_id)
        while len(scopes) > self.MAX_RUN_SCOPES:
            dead, _ = scopes.popitem(last=False)
            doomed = [k for k in self._decisions if k[0] == dead]
            for k in doomed:
                del self._decisions[k]

    def _decide(self, call_id, key, grid: ProcessorGrid, run_id) -> _CallDecision:
        self._touch_run(run_id)
        dkey = (run_id, call_id)
        decision = self._decisions.get(dkey)
        if decision is None:
            sched = self._entries.get(key)
            decision = _CallDecision(
                kind="hit" if sched is not None else "miss",
                group=sched.group if sched is not None else None,
                expect=grid.size,
            )
            self._decisions[dkey] = decision
        return decision

    def _consume(self, dkey, decision: _CallDecision) -> None:
        decision.consumed += 1
        if decision.consumed >= decision.expect:
            self._decisions.pop(dkey, None)

    def gather(self, ctx, grid: ProcessorGrid, array: BaseDistArray, indices):
        """Collective cached gather (generator; use ``yield from``).

        On a miss the full inspection runs and the schedule is stored;
        on a hit the schedule is replayed.  Either way the gathered
        values are returned and a ``commsched/hit``/``commsched/miss``
        Mark is recorded for reuse reporting.  The verdict is collective:
        all ranks of one call replay, or all rebuild.
        """
        indices = normalize_indices(array, indices)
        me = ctx.rank
        tag = ctx.next_tag(grid)
        call_id = (array.uid, array.comm_epoch, tag)
        # hash the index pattern exactly once per call: the same digest
        # keys the probe, stamps the miss mark, and lands on the built
        # schedule (whose stored fingerprint serves every later replay)
        fingerprint = index_fingerprint(indices)
        key = schedule_key(grid, array, indices, me, fingerprint=fingerprint)
        run_id = getattr(ctx, "run_id", None)
        # verdict + accounting under the lock, in one critical section
        # (a concurrent store/eviction between a probe and its counter
        # bump must not split them); the replay/build below runs
        # unlocked -- schedules are immutable once stored
        with self._lock:
            decision = self._decide(call_id, key, grid, run_id)
            if decision.kind == "hit":
                sched = self._entries.get(key)
                if sched is not None and sched.group != decision.group:
                    sched = None  # same fingerprint, different collective
                if sched is None:
                    sched = decision.retained.get(me)
                if sched is None:
                    raise ValidationError(
                        f"divergent index pattern: rank {me} brought a "
                        "request set that does not belong to the schedule "
                        "the rest of the grid is replaying (all ranks of a "
                        "cached gather must keep or change their patterns "
                        "together)"
                    )
                self.hits += 1
                self._count("gather", "hits")
                if sched.group in self._groups:
                    self._groups.move_to_end(sched.group)
            else:
                sched = None
                self.misses += 1
                self._count("gather", "misses")
            self._consume((run_id, call_id), decision)

        if sched is not None:
            yield from _mark(
                ctx, "commsched/hit",
                ("gather", array.name, sched.fingerprint[:8]),
            )
            result = yield from execute_gather(ctx, sched, array, tag=tag)
            return result

        yield from _mark(
            ctx, "commsched/miss",
            ("gather", array.name, fingerprint[:8]),
        )
        sched, values = yield from build_gather_schedule(
            ctx, grid, array, indices, tag=tag, fingerprint=fingerprint
        )
        self.store(sched)
        return values

    def repartition(self, ctx, array, dist, new_grid=None):
        """Collective cached repartition (generator; use ``yield from``).

        Re-lays ``array`` out under ``dist`` with owner-to-owner
        messages only, building (miss) or replaying (hit) this rank's
        repartition schedule.  Because build and replay have identical
        wire behavior, the verdict is per-rank -- no collective decision
        protocol is needed.

        ``new_grid`` moves the array to a *different* grid (grow or
        shrink the rank set -- the elastic-morphing primitive); the
        call is then collective over the union of the two grids, and the
        schedule caches under the (from-grid+specs, to-grid+specs) pair
        so morphing back replays.  Without it, every rank of
        ``array.grid`` must call this.  The layout swap commits once,
        behind a barrier.
        """
        from repro.lang.dist import Distribution

        _check_repartitionable(array)
        to_grid = new_grid if new_grid is not None else array.grid
        new_dist = Distribution(dist, array.shape, to_grid.shape)
        me = ctx.rank
        union = array.grid.union(to_grid)
        tag = ctx.next_tag(union)
        key = repartition_key(array, new_dist, me, new_grid=to_grid)
        label = f"{array.dist.spec_key()}->{new_dist.spec_key()}"
        if to_grid.key() != array.grid.key():
            label += f" @grid{array.grid.shape}->{to_grid.shape}"
        with self._lock:
            sched = self._entries.get(key)
            if sched is not None:
                self.hits += 1
                self._count("repartition", "hits")
                if sched.group in self._groups:
                    self._groups.move_to_end(sched.group)
            else:
                self.misses += 1
                self._count("repartition", "misses")
        if sched is not None:
            yield from _mark(ctx, "commsched/hit", ("repartition", array.name, label))
        else:
            yield from _mark(ctx, "commsched/miss", ("repartition", array.name, label))
            sched = build_repartition_schedule(
                array, new_dist, me, new_grid=to_grid,
                # one group per collective call: run id + tag identify it
                group=(array.uid, array.grid.key(), to_grid.key(),
                       sched_group_specs(array, new_dist),
                       getattr(ctx, "run_id", None), tag),
            )
            self.store(sched)
        yield from execute_repartition(
            ctx, array, sched, new_dist, tag=tag, new_grid=to_grid
        )
        # this cache just watched the layout change: purge its own
        # orphaned layout-dependent schedules (their keys embed the old
        # epoch, so they could never hit again -- this stops the leak).
        # The commit already purged the default cache and doall plans,
        # and the scan runs once per collective, not once per rank.
        if self is not DEFAULT_CACHE:
            epoch = array.comm_epoch  # post-commit epoch
            with self._lock:
                purge = self._purged_epochs.get(array.uid) != epoch
                if purge:
                    self._purged_epochs[array.uid] = epoch
            if purge:
                self.invalidate_array(array)


def sched_group_specs(array, new_dist) -> tuple:
    """Group-identity component for a repartition collective."""
    return (array.dist.spec_key(), new_dist.spec_key())


#: Default process-wide cache used by :func:`cached_inspector_gather`.
DEFAULT_CACHE = ScheduleCache()


def cached_inspector_gather(ctx, grid, array, indices, cache: ScheduleCache | None = None):
    """Cached variant of ``inspector_gather`` for loop-invariant patterns.

    First call with a given (array layout, index pattern) runs the full
    two-round inspection and caches the schedule; subsequent calls
    replay it with one round of coalesced value messages.  Collective:
    every rank of ``grid`` must call this with a consistent cache, and
    -- stricter than the uncached gather -- all ranks must keep or
    change their index patterns *together*.  A workload where one
    rank's requests vary per sweep while others' stay fixed (e.g.
    adaptive refinement) is legal for ``inspector_gather`` but raises a
    ``divergent index pattern`` error here; keep such gathers uncached.
    """
    return (cache if cache is not None else DEFAULT_CACHE).gather(
        ctx, grid, array, indices
    )


def cached_repartition(ctx, array, dist, cache: ScheduleCache | None = None,
                       new_grid=None):
    """Cached collective repartition through the default cache.

    See :meth:`ScheduleCache.repartition`.  Generator; ``yield from`` it
    on every rank of ``array.grid`` (with ``new_grid``: every rank of
    the union of the two grids).
    """
    return (cache if cache is not None else DEFAULT_CACHE).repartition(
        ctx, array, dist, new_grid=new_grid
    )


def clear_schedule_cache() -> None:
    """Reset the default transfer-schedule cache (mostly for tests)."""
    DEFAULT_CACHE.clear()
