"""Cached communication schedules for irregular gathers.

The inspector/executor protocol of :mod:`repro.compiler.inspector` pays
for *two* message rounds on every call: one to tell the owners what is
needed, one for the owners to reply.  When the index pattern is
loop-invariant across ``doall`` sweeps -- the common case for irregular
solvers and the exact amortization the PARTI lineage exploits -- the
first round only ever needs to run once.  This module turns its result
into a first-class object:

* :class:`GatherSchedule` -- one rank's compiled share of a collective
  gather: precomputed permutation arrays mapping each owner's reply into
  the output, precomputed local-block coordinates for every outgoing
  coalesced value message, and the epoch of the array distribution it
  was built against;
* :func:`build_gather_schedule` -- the one-time inspection phase.  It
  runs the same two-round protocol as ``inspector_gather`` (so the build
  sweep costs no more than an uncached sweep) while recording the
  schedule, and returns ``(schedule, values)``;
* :func:`execute_gather` -- the vectorized executor.  Replaying a
  schedule sends only the non-empty per-owner value messages (a single
  bulk numpy gather each) and skips the request round entirely:
  at least 2x fewer messages per sweep than a fresh inspection, with
  bit-identical results;
* :class:`ScheduleCache` -- a keyed store (array identity + distribution
  epoch + index-pattern fingerprint) so repeated calls with an unchanged
  pattern transparently reuse the schedule.  Redistribution bumps the
  array's ``comm_epoch`` (see ``BaseDistArray.invalidate_schedules``),
  which invalidates every schedule built against the old layout.

The cached gather is **collective**: like the underlying protocol, every
rank of the grid must call it, and all ranks must keep or change their
index patterns together (SPMD discipline).  If ranks diverge -- some
replaying, some rebuilding -- the simulator detects the mismatched
protocols (deadlock or unconsumed messages) rather than computing wrong
answers silently.

Replays are announced to the trace with ``Mark("commsched/hit")`` /
``Mark("commsched/miss")`` events; see
:meth:`repro.machine.trace.Trace.schedule_counts` for reuse reporting.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

import numpy as np

from repro.compiler.inspector import (
    local_locations,
    normalize_indices,
    partition_requests,
    read_local,
)
from repro.lang.array import BaseDistArray
from repro.lang.procs import ProcessorGrid
from repro.machine.ops import Mark, Recv, Send
from repro.util.errors import ValidationError


def index_fingerprint(indices: np.ndarray) -> str:
    """Stable fingerprint of an index pattern (shape + contents)."""
    h = hashlib.sha1()
    h.update(repr(indices.shape).encode())
    h.update(np.ascontiguousarray(indices, dtype=np.int64).tobytes())
    return h.hexdigest()


def schedule_key(
    grid: ProcessorGrid, array: BaseDistArray, indices: np.ndarray, rank: int
) -> tuple:
    """Cache key of one rank's share of a collective gather.

    Keyed on the array's identity *and* its ``comm_epoch`` so that
    redistribution (which bumps the epoch) orphans every schedule built
    against the old layout.  The rank is part of the key because two
    ranks with identical request patterns still play different roles as
    senders.
    """
    return (
        "gather",
        array.uid,
        array.comm_epoch,
        grid.key(),
        rank,
        index_fingerprint(indices),
    )


class GatherSchedule:
    """One rank's compiled communication schedule for a collective gather.

    Produced by :func:`build_gather_schedule`; replayed (any number of
    times, against current array values) by :func:`execute_gather`.
    """

    __slots__ = (
        "key",
        "group",
        "uid_chain",
        "rank",
        "grid",
        "n_out",
        "epoch",
        "fingerprint",
        "self_locs",
        "self_pos",
        "recv_from",
        "send_to",
    )

    def __init__(self, key, rank: int, grid: ProcessorGrid, n_out: int,
                 epoch: int, fingerprint: str, group=None, uid_chain=()):
        self.key = key
        #: identity of the collective build this schedule came from; all
        #: ranks of one build share it (the build tag is SPMD-identical),
        #: which lets the cache evict a collective's entries atomically.
        self.group = group
        #: uids of the array and, for sections, every base beneath it --
        #: so invalidating a base array also reaches section schedules.
        self.uid_chain = uid_chain
        self.rank = rank
        self.grid = grid
        self.n_out = n_out
        self.epoch = epoch
        self.fingerprint = fingerprint
        #: local-block coordinates of the elements this rank both wants
        #: and owns, with their positions in the output (no message).
        self.self_locs: tuple[np.ndarray, ...] | None = None
        self.self_pos: np.ndarray | None = None
        #: (src rank, output positions) per non-empty incoming reply.
        self.recv_from: list[tuple[int, np.ndarray]] = []
        #: (dst rank, local-block coordinates) per non-empty outgoing
        #: coalesced value message.
        self.send_to: list[tuple[int, tuple[np.ndarray, ...]]] = []

    def replay_message_count(self) -> int:
        """Messages this rank sends+receives per replay sweep."""
        return len(self.send_to) + len(self.recv_from)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GatherSchedule(rank={self.rank}, n_out={self.n_out}, "
            f"sends={len(self.send_to)}, recvs={len(self.recv_from)})"
        )


def build_gather_schedule(
    ctx,
    grid: ProcessorGrid,
    array: BaseDistArray,
    indices: np.ndarray | None,
    tag=None,
):
    """One-time inspection: build this rank's :class:`GatherSchedule`.

    Runs the same collective two-round protocol as ``inspector_gather``
    (every rank must call this), recording who-needs-what-from-whom.
    Yields machine ops; evaluates to ``(schedule, values)`` where
    ``values`` are the gathered elements of this first sweep -- so the
    build doubles as an uncached gather and costs no extra messages.
    """
    if not array.grid.is_subset_of(grid):
        raise ValidationError("array owners must participate in a gather schedule")
    me = ctx.rank
    if tag is None:
        tag = ctx.next_tag(grid)
    members = grid.linear

    indices = normalize_indices(array, indices)
    uid_chain = []
    a = array
    while a is not None:
        uid_chain.append(a.uid)
        a = getattr(a, "base", None)
    sched = GatherSchedule(
        key=schedule_key(grid, array, indices, me),
        rank=me,
        grid=grid,
        n_out=indices.shape[0],
        epoch=array.comm_epoch,
        fingerprint=index_fingerprint(indices),
        # the run id disambiguates builds from different launches, whose
        # per-grid tag counters restart and would otherwise collide
        group=(array.uid, array.comm_epoch, grid.key(),
               getattr(ctx, "run_id", None), tag),
        uid_chain=tuple(uid_chain),
    )

    # --- round 1: send requests to owners -------------------------------
    requests, order = partition_requests(members, array, indices)
    for q in members:
        if q == me:
            continue
        yield Send(q, requests[q], tag=(tag, "req", me))

    # --- round 1b: receive all requests, record the send schedule -------
    incoming: dict[int, np.ndarray] = {}
    for q in members:
        if q == me:
            incoming[q] = requests[me]
            continue
        incoming[q] = yield Recv(src=q, tag=(tag, "req", q))

    i_own = array.grid.contains(me)
    for q in members:
        req = incoming[q]
        if q == me:
            continue
        if req.shape[0] and not i_own:
            raise ValidationError(
                f"rank {q} requested elements of {array.name!r} from "
                f"rank {me}, which owns no part of it"
            )
        if req.shape[0]:
            locs = local_locations(array, req)
            sched.send_to.append((q, locs))
            values = np.asarray(array.local(me)[locs])
        else:
            values = np.empty(0, dtype=array.dtype)
        yield Send(q, values, tag=(tag, "rep", me))

    # --- round 2: receive replies, record the permutation arrays --------
    out = np.empty(indices.shape[0], dtype=array.dtype)
    if requests[me].shape[0]:
        sched.self_locs = local_locations(array, requests[me])
        sched.self_pos = order[me]
        out[sched.self_pos] = np.asarray(array.local(me)[sched.self_locs])
    for q in members:
        if q == me:
            continue
        values = yield Recv(src=q, tag=(tag, "rep", q))
        if order[q].size:
            sched.recv_from.append((q, order[q]))
            out[order[q]] = values
    return sched, out


def execute_gather(ctx, sched: GatherSchedule, array: BaseDistArray, tag=None):
    """Replay a schedule against the array's *current* values.

    The fast path: owners bulk-gather their precomputed local locations
    (one vectorized fancy-index read and one coalesced message per
    requester) and requesters scatter replies through the precomputed
    permutation arrays.  No request round.  Collective over the grid the
    schedule was built on.  Yields machine ops; evaluates to the same
    values a fresh ``inspector_gather`` with the original indices would
    return.
    """
    if sched.epoch != array.comm_epoch:
        raise ValidationError(
            "stale gather schedule: the array was redistributed "
            f"(schedule epoch {sched.epoch}, array epoch {array.comm_epoch}); "
            "rebuild via build_gather_schedule or a ScheduleCache"
        )
    me = ctx.rank
    if me != sched.rank:
        raise ValidationError(
            f"rank {me} replaying a schedule built for rank {sched.rank}"
        )
    if tag is None:
        tag = ctx.next_tag(sched.grid)

    for dst, locs in sched.send_to:
        yield Send(dst, np.asarray(array.local(me)[locs]), tag=(tag, "val", me))

    out = np.empty(sched.n_out, dtype=array.dtype)
    if sched.self_pos is not None:
        out[sched.self_pos] = np.asarray(array.local(me)[sched.self_locs])
    for src, pos in sched.recv_from:
        values = yield Recv(src=src, tag=(tag, "val", src))
        out[pos] = values
    return out


class _CallDecision:
    """Shared hit/miss verdict for one collective gather call.

    Simulated ranks reach the same collective call at different event
    times while sharing one cache object, so per-rank lookups against
    live cache state can disagree (an eviction or store between two
    ranks' lookups would make one replay while the other rebuilds -- a
    protocol mismatch).  The first rank to arrive fixes the verdict for
    everyone; schedules evicted while a hit verdict is outstanding are
    retained here until every rank has consumed it.
    """

    __slots__ = ("kind", "group", "retained", "consumed", "expect")

    def __init__(self, kind: str, group, expect: int):
        self.kind = kind  # "hit" | "miss"
        self.group = group
        self.retained: dict[int, GatherSchedule] = {}
        self.consumed = 0
        self.expect = expect


class ScheduleCache:
    """Keyed store of gather schedules with hit/miss accounting.

    One cache is shared by all simulated ranks (the schedules themselves
    are per-rank; the key includes the rank).  Beyond ``max_entries``
    the least-recently-used entries are evicted -- in whole
    per-collective *groups* (every rank's schedule from one build goes
    together), never one rank at a time.  Whether a given collective
    call replays or rebuilds is decided once, by the first rank to reach
    the call, and applied to every rank of that call (see
    :class:`_CallDecision`), so cache mutations between two ranks'
    lookups can never split a collective into mixed replay/rebuild.
    Stale entries from redistributed arrays simply never hit again
    because the key embeds the comm epoch.
    """

    def __init__(self, max_entries: int = 256):
        if max_entries <= 0:
            raise ValidationError("ScheduleCache needs max_entries >= 1")
        self.max_entries = max_entries
        self._entries: dict[tuple, GatherSchedule] = {}
        # group id -> keys of that collective build, LRU-ordered by the
        # group's most recent touch (hits refresh the whole group)
        self._groups: OrderedDict[tuple, set] = OrderedDict()
        # open per-call verdicts, keyed by (array uid, epoch, call tag);
        # scoped to one run (per-grid tag counters restart every run, so
        # a verdict left behind by an aborted run must not be matched by
        # the next run's identical tags)
        self._decisions: dict[tuple, _CallDecision] = {}
        self._decisions_run: int | None = None
        # groups evicted while their build might still be in flight: a
        # straggler rank's late store must not re-create the group with
        # a subset of its ranks (a later identical call would then split
        # into hit-on-some / miss-on-others).  Cleared on run change.
        self._tombstones: set = set()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def store(self, sched: GatherSchedule) -> None:
        if sched.group in self._tombstones:
            return  # group already evicted; a partial re-insert diverges
        old = self._entries.get(sched.key)
        if old is not None:
            self._discard_from_group(old)
        self._entries[sched.key] = sched
        self._groups.setdefault(sched.group, set()).add(sched.key)
        self._groups.move_to_end(sched.group)
        while len(self._entries) > self.max_entries:
            # never evict the collective currently being stored: its
            # remaining ranks have yet to add their entries, and a
            # half-present group is exactly the divergence hazard
            victim = next((g for g in self._groups if g != sched.group), None)
            if victim is None:
                break  # one in-flight collective larger than the cache
            self._evict_group(victim)

    def _evict_group(self, group) -> None:
        self._tombstones.add(group)
        for k in self._groups.pop(group):
            sched = self._entries.pop(k)
            self.evictions += 1
            # ranks that have not yet consumed an outstanding hit
            # verdict on this group still need their schedule
            for decision in self._decisions.values():
                if decision.kind == "hit" and decision.group == group:
                    decision.retained[sched.rank] = sched

    def _discard_from_group(self, sched: GatherSchedule) -> None:
        members = self._groups.get(sched.group)
        if members is not None:
            members.discard(sched.key)
            if not members:
                del self._groups[sched.group]

    def invalidate_array(self, array: BaseDistArray) -> int:
        """Drop every schedule built for ``array`` -- including schedules
        built on sections of it -- and return the count."""
        doomed = [
            k for k, s in self._entries.items() if array.uid in s.uid_chain
        ]
        for k in doomed:
            self._discard_from_group(self._entries.pop(k))
        return len(doomed)

    def clear(self) -> None:
        self._entries.clear()
        self._groups.clear()
        self._decisions.clear()
        self._decisions_run = None
        self._tombstones.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    # ------------------------------------------------------------------

    def _decide(self, call_id, key, grid: ProcessorGrid, run_id) -> _CallDecision:
        if run_id != self._decisions_run:
            # a new launch: any verdicts an earlier (possibly aborted)
            # run left unconsumed are dead and must not be matched, and
            # no straggler store from a finished run can arrive anymore
            self._decisions.clear()
            self._tombstones.clear()
            self._decisions_run = run_id
        decision = self._decisions.get(call_id)
        if decision is None:
            sched = self._entries.get(key)
            decision = _CallDecision(
                kind="hit" if sched is not None else "miss",
                group=sched.group if sched is not None else None,
                expect=grid.size,
            )
            self._decisions[call_id] = decision
        return decision

    def _consume(self, call_id, decision: _CallDecision) -> None:
        decision.consumed += 1
        if decision.consumed >= decision.expect:
            del self._decisions[call_id]

    def gather(self, ctx, grid: ProcessorGrid, array: BaseDistArray, indices):
        """Collective cached gather (generator; use ``yield from``).

        On a miss the full inspection runs and the schedule is stored;
        on a hit the schedule is replayed.  Either way the gathered
        values are returned and a ``commsched/hit``/``commsched/miss``
        Mark is recorded for reuse reporting.  The verdict is collective:
        all ranks of one call replay, or all rebuild.
        """
        indices = normalize_indices(array, indices)
        me = ctx.rank
        tag = ctx.next_tag(grid)
        call_id = (array.uid, array.comm_epoch, tag)
        key = schedule_key(grid, array, indices, me)
        decision = self._decide(call_id, key, grid, getattr(ctx, "run_id", None))

        if decision.kind == "hit":
            sched = self._entries.get(key)
            if sched is not None and sched.group != decision.group:
                sched = None  # same fingerprint, different collective
            if sched is None:
                sched = decision.retained.get(me)
            if sched is None:
                raise ValidationError(
                    f"divergent index pattern: rank {me} brought a request "
                    "set that does not belong to the schedule the rest of "
                    "the grid is replaying (all ranks of a cached gather "
                    "must keep or change their patterns together)"
                )
            self.hits += 1
            if sched.group in self._groups:
                self._groups.move_to_end(sched.group)
            self._consume(call_id, decision)
            yield Mark(
                "commsched/hit",
                payload=("gather", array.name, sched.fingerprint[:8]),
            )
            result = yield from execute_gather(ctx, sched, array, tag=tag)
            return result

        self.misses += 1
        self._consume(call_id, decision)
        yield Mark(
            "commsched/miss",
            payload=("gather", array.name, index_fingerprint(indices)[:8]),
        )
        sched, values = yield from build_gather_schedule(
            ctx, grid, array, indices, tag=tag
        )
        self.store(sched)
        return values


#: Default process-wide cache used by :func:`cached_inspector_gather`.
DEFAULT_CACHE = ScheduleCache()


def cached_inspector_gather(ctx, grid, array, indices, cache: ScheduleCache | None = None):
    """Cached variant of ``inspector_gather`` for loop-invariant patterns.

    First call with a given (array layout, index pattern) runs the full
    two-round inspection and caches the schedule; subsequent calls
    replay it with one round of coalesced value messages.  Collective:
    every rank of ``grid`` must call this with a consistent cache, and
    -- stricter than the uncached gather -- all ranks must keep or
    change their index patterns *together*.  A workload where one
    rank's requests vary per sweep while others' stay fixed (e.g.
    adaptive refinement) is legal for ``inspector_gather`` but raises a
    ``divergent index pattern`` error here; keep such gathers uncached.
    """
    return (cache if cache is not None else DEFAULT_CACHE).gather(
        ctx, grid, array, indices
    )


def clear_schedule_cache() -> None:
    """Reset the default gather-schedule cache (mostly for tests)."""
    DEFAULT_CACHE.clear()
