"""Per-processor execution of compiled doall loops.

``execute_doall(ctx, loop)`` is a generator of machine ops implementing
one rank's share of the loop:

1. send every ``owned ∩ needed(q)`` region (payload snapshotted -> the
   receiver observes pre-loop values: copy-in);
2. receive ghost regions into a workspace indexed by the needed lists;
3. evaluate all statement right-hand sides vectorized over the local
   iteration box (one Compute op charges the flop count);
4. apply local writes; exchange and apply remote writes (scatter).

Analyses are cached by structural loop key, so loops re-executed every
iteration (the common case) compile once.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.compiler import access as acc
from repro.compiler.commgen import LoopAnalysis, local_positions
from repro.lang.doall import Doall
from repro.lang.expr import BinOp, Const, Ref
from repro.machine.ops import ANY, Compute, Recv, Send
from repro.util.errors import CompileError

_PLAN_CACHE: dict[Any, LoopAnalysis] = {}


def clear_plan_cache() -> None:
    """Drop all cached loop analyses (mostly for tests)."""
    _PLAN_CACHE.clear()


def get_analysis(loop: Doall) -> LoopAnalysis:
    key = loop.key()
    analysis = _PLAN_CACHE.get(key)
    if analysis is None:
        analysis = LoopAnalysis(loop)
        _PLAN_CACHE[key] = analysis
    return analysis


class _Workspace:
    """Gathered read data for one array on one rank."""

    __slots__ = ("needed", "data")

    def __init__(self, needed: list[np.ndarray], dtype):
        self.needed = needed
        self.data = np.empty([n.size for n in needed], dtype=dtype)

    def put(self, lists: list[np.ndarray], values: np.ndarray) -> None:
        pos = [acc.positions_in(n, g) for n, g in zip(self.needed, lists)]
        self.data[np.ix_(*pos)] = values

    def fetch(self, idx_arrays: list[np.ndarray]) -> np.ndarray:
        pos = tuple(
            acc.positions_in(n, np.asarray(g)) for n, g in zip(self.needed, idx_arrays)
        )
        return self.data[pos]


def _eval_expr(expr, workspaces: dict[int, _Workspace], iters) -> np.ndarray | float:
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Ref):
        ws = workspaces[id(expr.array)]
        idx = [acc.eval_index(e, iters) for e in expr.idx]
        return ws.fetch(idx)
    if isinstance(expr, BinOp):
        left = _eval_expr(expr.left, workspaces, iters)
        right = _eval_expr(expr.right, workspaces, iters)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        return left / right
    raise CompileError(f"cannot evaluate expression {expr!r}")


def execute_doall(ctx, loop: Doall):
    """Yield the machine ops realizing this rank's share of ``loop``."""
    me = ctx.rank
    if not loop.grid.contains(me):
        raise CompileError(f"rank {me} executing doall outside its grid")
    analysis = get_analysis(loop)
    tag = ctx.next_tag(loop.grid)
    iters = analysis.iters[me]

    # ---- phase 1: ghost sends (pre-write snapshots) ----------------------
    for arr_idx, plans in enumerate(analysis.read_plans):
        plan = plans[me]
        array = plan.array
        if not array.grid.contains(me):
            continue
        block = array.local(me)
        for dst, lists in sorted(plan.send_to.items()):
            locs = local_positions(array, me, lists)
            values = block[np.ix_(*locs)]
            yield Send(dst, values, tag=(tag, "gh", arr_idx, me))

    # ---- phase 2: assemble workspaces ------------------------------------
    workspaces: dict[int, _Workspace] = {}
    for arr_idx, plans in enumerate(analysis.read_plans):
        plan = plans[me]
        array = plan.array
        if plan.needed is None:
            continue  # no iterations here; nothing to read
        ws = _Workspace(plan.needed, array.dtype)
        if plan.own_overlap is not None:
            locs = local_positions(array, me, plan.own_overlap)
            ws.put(plan.own_overlap, array.local(me)[np.ix_(*locs)])
        for src, lists in sorted(plan.recv_from.items()):
            values = yield Recv(src=src, tag=(tag, "gh", arr_idx, src))
            ws.put(lists, values)
        workspaces[id(array)] = ws

    # ---- phase 3: evaluate and write -------------------------------------
    n_points = iters.count()
    if n_points:
        yield Compute(
            flops=n_points * analysis.flops_per_point(),
            label=f"doall[{','.join(v.name for v in loop.vars)}]",
        )

    remote_payloads: list[tuple[int, tuple, Any]] = []
    for stmt_idx, sa in enumerate(analysis.stmts):
        wplan = analysis.write_plans[stmt_idx][me]
        if n_points:
            values = _eval_expr(sa.stmt.rhs, workspaces, iters)
            values = np.broadcast_to(np.asarray(values, dtype=sa.lhs_array.dtype),
                                     iters.shape())
            idx_arrays = sa.lhs_index_arrays(iters)
            full_idx = [
                np.broadcast_to(np.asarray(a), iters.shape()).reshape(-1)
                for a in idx_arrays
            ]
            flat_vals = values.reshape(-1)
            if analysis.writes_local and wplan.all_local:
                owners_mask = None
            else:
                owners = sa.lhs_array.owner_ranks_vec(tuple(idx_arrays))
                owners = np.broadcast_to(owners, iters.shape()).reshape(-1)
                owners_mask = owners
            if owners_mask is None:
                mine = slice(None)
                _store_local(sa.lhs_array, me, full_idx, flat_vals, mine)
            else:
                mine = owners_mask == me
                if np.any(mine):
                    _store_local(sa.lhs_array, me, full_idx, flat_vals, mine)
                for dst in sorted(set(int(d) for d in np.unique(owners_mask)) - {me}):
                    sel = owners_mask == dst
                    payload = (
                        [g[sel] for g in full_idx],
                        flat_vals[sel],
                    )
                    remote_payloads.append(
                        (dst, (tag, "wr", stmt_idx), payload)
                    )

    # ---- phase 4: remote-write exchange -----------------------------------
    for dst, wtag, payload in remote_payloads:
        yield Send(dst, payload, tag=wtag)
    for stmt_idx, sa in enumerate(analysis.stmts):
        wplan = analysis.write_plans[stmt_idx][me]
        for _ in range(wplan.recv_count):
            lists, values = yield Recv(src=ANY, tag=(tag, "wr", stmt_idx))
            _store_remote(sa.lhs_array, me, lists, values)


def _store_local(array, rank, full_idx, flat_vals, sel) -> None:
    block = array.local(rank)
    locs = tuple(
        np.asarray(array.dim(k).local_index(full_idx[k][sel]), dtype=np.int64)
        for k in range(array.ndim)
    )
    block[locs] = flat_vals[sel]


def _store_remote(array, rank, lists, values) -> None:
    block = array.local(rank)
    locs = tuple(
        np.asarray(array.dim(k).local_index(lists[k]), dtype=np.int64)
        for k in range(array.ndim)
    )
    block[locs] = values
